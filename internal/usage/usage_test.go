package usage

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/statsdb"
	"repro/internal/telemetry"
)

const eps = 1e-6

func almost(a, b float64) bool { return math.Abs(a-b) < eps }

// TestSamplerExactTimeline is the paper's §4.1 sharing example driven
// through the sampler: 3 jobs of 1000 reference CPU-seconds on a 2-CPU
// node all finish at 1500 with share 2/3, and every 600-second bucket
// must integrate that trajectory exactly.
func TestSamplerExactTimeline(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("n", 2, 1.0)
	s := NewSampler(c, Options{Interval: 600})
	for _, label := range []string{"a", "b", "c"} {
		n.Submit(label, 1000, nil)
	}
	s.Start(2400)
	e.RunUntil(2400)
	s.Finalize(e.Now())

	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4: %+v", len(samples), samples)
	}
	want := []Sample{
		{Node: "n", Start: 0, End: 600, Utilization: 1, MeanShare: 2.0 / 3, MeanActive: 3, PeakActive: 3, ContentionSecs: 600},
		{Node: "n", Start: 600, End: 1200, Utilization: 1, MeanShare: 2.0 / 3, MeanActive: 3, PeakActive: 3, ContentionSecs: 600},
		{Node: "n", Start: 1200, End: 1800, Utilization: 0.5, MeanShare: 2.0 / 3, MeanActive: 1.5, PeakActive: 3, ContentionSecs: 300, IdleSecs: 300},
		{Node: "n", Start: 1800, End: 2400, Utilization: 0, MeanShare: 1, MeanActive: 0, PeakActive: 0, IdleSecs: 600},
	}
	for i, w := range want {
		g := samples[i]
		if g.Node != w.Node || !almost(g.Start, w.Start) || !almost(g.End, w.End) ||
			!almost(g.Utilization, w.Utilization) || !almost(g.MeanShare, w.MeanShare) ||
			!almost(g.MeanActive, w.MeanActive) || g.PeakActive != w.PeakActive ||
			!almost(g.ContentionSecs, w.ContentionSecs) || !almost(g.IdleSecs, w.IdleSecs) ||
			!almost(g.DownSecs, w.DownSecs) {
			t.Errorf("sample %d = %+v, want %+v", i, g, w)
		}
	}

	windows := s.Windows()
	if len(windows) != 2 {
		t.Fatalf("got %d windows, want contention+idle: %+v", len(windows), windows)
	}
	cw, iw := windows[0], windows[1]
	if cw.Kind != WindowContention || !almost(cw.Start, 0) || !almost(cw.End, 1500) ||
		cw.PeakActive != 3 || !almost(cw.MeanShare, 2.0/3) {
		t.Errorf("contention window = %+v, want [0,1500] peak 3 share 2/3", cw)
	}
	if iw.Kind != WindowIdle || !almost(iw.Start, 1500) || !almost(iw.End, 2400) {
		t.Errorf("idle window = %+v, want [1500,2400]", iw)
	}
}

// TestWindowMergeAcrossChurn: a job finishing and its successor starting
// at the same virtual instant must not split the contention window — the
// factory's incremental workloads do this 96 times per run.
func TestWindowMergeAcrossChurn(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("n", 1, 1.0)
	s := NewSampler(c, Options{Interval: 600})
	// A (100) and B (1000) share the single CPU; A finishes at 200 and
	// its done callback submits C at the same instant, so contention
	// closes and reopens at t=200 with zero gap.
	n.Submit("a", 100, func() { n.Submit("c", 2000, nil) })
	n.Submit("b", 1000, nil)
	e.Run()
	s.Finalize(e.Now())

	var cont []Window
	for _, w := range s.Windows() {
		if w.Kind == WindowContention {
			cont = append(cont, w)
		}
	}
	if len(cont) != 1 {
		t.Fatalf("got %d contention windows, want 1 merged: %+v", len(cont), cont)
	}
	// B finishes at 2000 (share 1/2 throughout); the merged window spans
	// [0, 2000] even though contention churned at 200.
	w := cont[0]
	if !almost(w.Start, 0) || !almost(w.End, 2000) || w.PeakActive != 2 || !almost(w.MeanShare, 0.5) {
		t.Errorf("merged window = %+v, want [0,2000] peak 2 share 0.5", w)
	}
}

// TestSeparateWindowsAcrossRealGap: contention separated by positive
// uncontended sim-time stays two windows.
func TestSeparateWindowsAcrossRealGap(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("n", 1, 1.0)
	s := NewSampler(c, Options{Interval: 600})
	n.Submit("a", 100, nil)
	n.Submit("b", 100, nil) // both done at 200; contention [0,200]
	e.At(300, func() {
		n.Submit("c", 100, nil)
		n.Submit("d", 100, nil) // contention [300,500]
	})
	e.Run()
	s.Finalize(e.Now())
	var cont []Window
	for _, w := range s.Windows() {
		if w.Kind == WindowContention {
			cont = append(cont, w)
		}
	}
	if len(cont) != 2 {
		t.Fatalf("got %d contention windows, want 2: %+v", len(cont), cont)
	}
	if !almost(cont[0].Start, 0) || !almost(cont[0].End, 200) ||
		!almost(cont[1].Start, 300) || !almost(cont[1].End, 500) {
		t.Errorf("windows = %+v, want [0,200] and [300,500]", cont)
	}
}

// TestMinWindowFilter drops windows shorter than the floor.
func TestMinWindowFilter(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("n", 1, 1.0)
	s := NewSampler(c, Options{Interval: 600, MinWindow: 150})
	n.Submit("a", 50, nil)
	n.Submit("b", 50, nil) // contention [0,100]: below the floor
	e.Run()
	s.Finalize(e.Now())
	for _, w := range s.Windows() {
		if w.Kind == WindowContention {
			t.Errorf("short contention window survived MinWindow: %+v", w)
		}
	}
}

// TestDownNodeAccounting: failed time lands in DownSecs and closes any
// open contention window.
func TestDownNodeAccounting(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("n", 1, 1.0)
	s := NewSampler(c, Options{Interval: 1000})
	n.Submit("a", 200, nil)
	n.Submit("b", 200, nil) // contended from 0
	e.At(100, func() { n.Fail() })
	e.At(400, func() { n.Repair() })
	e.Run() // jobs freeze 100..400, finish at 100+300(down)+300 = 700
	s.Finalize(1000)

	samples := s.Samples()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	g := samples[0]
	if !almost(g.DownSecs, 300) || !almost(g.ContentionSecs, 400) || !almost(g.IdleSecs, 300) {
		t.Errorf("sample = %+v, want down 300 / contention 400 / idle 300", g)
	}
	// The fail at 100 closes the first contention stretch; repair reopens
	// it. Both survive (separated by down time, not a zero gap).
	var cont []Window
	for _, w := range s.Windows() {
		if w.Kind == WindowContention {
			cont = append(cont, w)
		}
	}
	if len(cont) != 2 || !almost(cont[0].End, 100) || !almost(cont[1].Start, 400) {
		t.Errorf("contention windows = %+v, want [0,100] and [400,700]", cont)
	}
}

// TestJobShareAggregation: increment labels "x[i/n]" collapse into one
// per-day family row with the observed mean share.
func TestJobShareAggregation(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("n", 1, 1.0)
	s := NewSampler(c, Options{Interval: 600})
	// Two increments of "sim:f" back to back, sharing with "other".
	n.Submit("sim:f[0/2]", 100, func() { n.Submit("sim:f[1/2]", 100, nil) })
	n.Submit("other", 1000, nil)
	e.Run()
	s.Finalize(e.Now())

	shares := s.JobShares()
	if len(shares) != 2 {
		t.Fatalf("got %d job shares, want 2: %+v", len(shares), shares)
	}
	f := shares[1] // sorted by (node, job, day): "other" < "sim:f"
	if f.Job != "sim:f" || f.Jobs != 2 || f.Day != 0 {
		t.Fatalf("aggregate = %+v, want sim:f with 2 jobs", f)
	}
	// Both increments ran at share 1/2 (always sharing with "other").
	if !almost(f.MeanShare(), 0.5) || !almost(f.RunSecs, 400) {
		t.Errorf("mean share %v over %v run secs, want 0.5 over 400", f.MeanShare(), f.RunSecs)
	}
}

// TestMeanShareOver integrates the flushed timeline.
func TestMeanShareOver(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("n", 2, 1.0)
	s := NewSampler(c, Options{Interval: 600})
	for _, label := range []string{"a", "b", "c"} {
		n.Submit(label, 1000, nil)
	}
	e.RunUntil(2400)
	s.Finalize(e.Now())

	if got := s.MeanShareOver("n", 0, 1500); !almost(got, 2.0/3) {
		t.Errorf("MeanShareOver(0,1500) = %v, want 2/3", got)
	}
	if got := s.MeanShareOver("n", 1800, 2400); !almost(got, 1) {
		t.Errorf("MeanShareOver over idle time = %v, want 1", got)
	}
	if got := s.MeanShareOver("nosuch", 0, 1); !almost(got, 1) {
		t.Errorf("MeanShareOver on unknown node = %v, want 1", got)
	}
}

// TestSamplerTelemetry checks the gauges and counters the monitor's
// alert rules evaluate.
func TestSamplerTelemetry(t *testing.T) {
	tel := telemetry.New()
	e := sim.NewEngine()
	c := cluster.New(e)
	n1 := c.AddNode("n1", 1, 1.0)
	c.AddNode("n2", 1, 1.0)
	s := NewSampler(c, Options{Interval: 100, Telemetry: tel})
	reg := tel.Registry()

	n1.Submit("a", 1000, nil)
	n1.Submit("b", 1000, nil) // n1 contended, n2 idle → imbalance
	e.RunUntil(300)
	s.Tick()

	labels := telemetry.Labels{"node": "n1"}
	if got := reg.Gauge(MetricNodeShare, labels).Value(); !almost(got, 0.5) {
		t.Errorf("node share gauge = %v, want 0.5", got)
	}
	if got := reg.Gauge(MetricNodeActive, labels).Value(); !almost(got, 2) {
		t.Errorf("node active gauge = %v, want 2", got)
	}
	if got := reg.Gauge(MetricContentionAge, labels).Value(); !almost(got, 300) {
		t.Errorf("contention age = %v, want 300", got)
	}
	if got := reg.Gauge(MetricIdleWhileSat, nil).Value(); !almost(got, 1) {
		t.Errorf("idle-while-saturated = %v, want 1 (n2)", got)
	}
	if got := reg.Gauge(MetricImbalanceAge, nil).Value(); !almost(got, 300) {
		t.Errorf("imbalance age = %v, want 300", got)
	}
	if got := reg.Counter(MetricSamplesTotal, nil).Value(); !almost(got, 2*3) {
		t.Errorf("samples counter = %v, want 6 (2 nodes × 3 buckets)", got)
	}
	if got := reg.Counter(MetricContentionTotal, labels).Value(); !almost(got, 1) {
		t.Errorf("contention windows counter = %v, want 1", got)
	}
}

// TestStatusGrid checks the rolling dashboard snapshot: column cap and
// node summaries.
func TestStatusGrid(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("n", 2, 1.0)
	s := NewSampler(c, Options{Interval: 100, StatusCols: 3})
	n.Submit("a", 1000, nil)
	s.Start(1000)
	e.RunUntil(1000)

	st := s.Status()
	if len(st.Grid.Nodes) != 1 || st.Grid.Nodes[0] != "n" {
		t.Fatalf("grid nodes = %v", st.Grid.Nodes)
	}
	if len(st.Grid.Utilization[0]) != 3 {
		t.Fatalf("grid cols = %d, want StatusCols cap 3", len(st.Grid.Utilization[0]))
	}
	// 10 buckets flushed; the grid shows the last 3, starting at 700.
	if !almost(st.Grid.Start, 700) {
		t.Errorf("grid start = %v, want 700", st.Grid.Start)
	}
	if len(st.Nodes) != 1 || st.Nodes[0].CPUs != 2 {
		t.Errorf("node summaries = %+v", st.Nodes)
	}
}

// TestCondenseGrid checks the full-campaign heatmap re-bucketing:
// duration-weighted means, NaN for empty cells.
func TestCondenseGrid(t *testing.T) {
	samples := []Sample{
		{Node: "a", Start: 0, End: 100, Utilization: 1, MeanShare: 0.5},
		{Node: "a", Start: 100, End: 200, Utilization: 0, MeanShare: 1},
		{Node: "b", Start: 100, End: 200, Utilization: 0.5, MeanShare: 1},
	}
	g := CondenseGrid([]string{"a", "b"}, samples, 2)
	if !almost(g.Start, 0) || !almost(g.Step, 100) {
		t.Fatalf("grid origin = (%v, %v), want (0, 100)", g.Start, g.Step)
	}
	if !almost(g.Utilization[0][0], 1) || !almost(g.Utilization[0][1], 0) {
		t.Errorf("row a = %v, want [1 0]", g.Utilization[0])
	}
	if !math.IsNaN(g.Utilization[1][0]) || !almost(g.Utilization[1][1], 0.5) {
		t.Errorf("row b = %v, want [NaN 0.5]", g.Utilization[1])
	}
	if !almost(g.Share[0][0], 0.5) || !almost(g.Share[1][0], 1) {
		t.Errorf("share rows = %v, want a=0.5 and empty-cell default 1", g.Share)
	}

	// A sample straddling two columns splits its weight.
	g = CondenseGrid([]string{"a"}, []Sample{
		{Node: "a", Start: 0, End: 100, Utilization: 1},
		{Node: "a", Start: 100, End: 300, Utilization: 0.4},
	}, 3)
	if !almost(g.Utilization[0][1], 0.4) || !almost(g.Utilization[0][2], 0.4) {
		t.Errorf("straddling sample = %v, want 0.4 in cols 1 and 2", g.Utilization[0])
	}
	if g := CondenseGrid([]string{"a"}, nil, 4); len(g.Utilization) != 0 {
		t.Errorf("empty timeline produced a grid: %+v", g)
	}
}

// fixedShares is a canned ShareSource for drift tests.
type fixedShares struct{ v float64 }

func (f fixedShares) MeanShareOver(string, float64, float64) float64 { return f.v }

// TestComputeDrift joins a plan against synthetic outcomes: skipping
// rules, move detection, deltas, and ordering.
func TestComputeDrift(t *testing.T) {
	plan := &core.Plan{
		Nodes: []core.NodeInfo{{Name: "n1", CPUs: 2, Speed: 1}, {Name: "n2", CPUs: 2, Speed: 1}},
		Runs: []core.Run{
			{Name: "a", Work: 1000, Start: 0},
			{Name: "b", Work: 4000, Start: 3600},
			{Name: "c", Work: 100, Start: 0},
		},
		Assign: map[string]string{"a": "n1", "b": "n1", "c": "n1"},
	}
	pred := core.Prediction{Completion: map[string]float64{
		"a": 1000, "b": 7600, "c": math.Inf(1),
	}}
	outcomes := []Outcome{
		{Run: "a", Node: "n2", Start: 0, End: 1300, Finished: true},    // moved, 300 late
		{Run: "b", Node: "n1", Start: 3600, End: 7000, Finished: true}, // 600 early
		{Run: "c", Node: "n1", Start: 0, End: 200, Finished: true},     // Inf prediction: skipped
		{Run: "d", Node: "n1", Start: 0, End: 0, Finished: false},      // never finished: skipped
	}
	ds := ComputeDrift(plan, pred, outcomes, fixedShares{0.5})
	if len(ds) != 2 {
		t.Fatalf("got %d drifts, want 2: %+v", len(ds), ds)
	}
	// Sorted worst |delta| first: b (600) before a (300).
	if ds[0].Run != "b" || ds[1].Run != "a" {
		t.Fatalf("order = [%s %s], want [b a]", ds[0].Run, ds[1].Run)
	}
	b, a := ds[0], ds[1]
	if !almost(b.EndDelta, -600) || !almost(b.RelError, 600.0/4000) || b.Moved {
		t.Errorf("drift b = %+v, want delta -600, rel 0.15, not moved", b)
	}
	if !almost(a.EndDelta, 300) || !almost(a.RelError, 0.3) || !a.Moved || a.ActualNode != "n2" {
		t.Errorf("drift a = %+v, want delta 300, rel 0.3, moved to n2", a)
	}
	if !almost(a.MeanShare, 0.5) {
		t.Errorf("mean share = %v, want the share source's 0.5", a.MeanShare)
	}

	sum := Summarize(ds)
	if sum.Runs != 2 || sum.Late != 1 || sum.Moved != 1 ||
		!almost(sum.MeanAbs, 450) || !almost(sum.MaxAbs, 600) || sum.WorstRun != "b" ||
		!almost(sum.MeanRel, (0.3+0.15)/2) || !almost(sum.MeanShare, 0.5) {
		t.Errorf("summary = %+v", sum)
	}
	if got := Summarize(nil); got.Runs != 0 || !almost(got.MeanShare, 1) {
		t.Errorf("empty summary = %+v", got)
	}

	// nil share source reports share 1.
	ds = ComputeDrift(plan, pred, outcomes[:1], nil)
	if len(ds) != 1 || !almost(ds[0].MeanShare, 1) {
		t.Errorf("nil share source drift = %+v, want share 1", ds)
	}
}

// TestStatsdbRoundTrip: the v3 migration creates the tables once, loads
// are append-only, and non-finite floats are normalized before insert.
func TestStatsdbRoundTrip(t *testing.T) {
	db := statsdb.NewDB()
	samples := []Sample{
		{Node: "n1", Start: 0, End: 900, Utilization: 0.5, MeanShare: 0.75, MeanActive: 2, PeakActive: 3},
		{Node: "n1", Start: 900, End: 1800, Utilization: math.NaN(), MeanShare: math.Inf(1)},
	}
	tbl, err := LoadSamples(db, samples)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("node_usage rows = %d, want 2", tbl.Len())
	}
	if got := statsdb.SchemaVersion(db); got != 3 {
		t.Fatalf("schema version = %d, want 3", got)
	}
	// The NaN/Inf sample landed as zeros, not an insert error.
	row := tbl.Row(1)
	if row[3].Float() != 0 || row[4].Float() != 0 {
		t.Errorf("non-finite floats persisted as %v/%v, want 0/0", row[3].Float(), row[4].Float())
	}
	if !tbl.Indexed("node") {
		t.Error("node_usage missing node index")
	}

	ds := []Drift{{Run: "f", Day: 3, PlannedNode: "n1", ActualNode: "n2", Moved: true,
		PredEnd: 1000, ActualEnd: 1300, EndDelta: 300, RelError: 0.3, MeanShare: 0.5}}
	dtbl, err := LoadDrift(db, ds)
	if err != nil {
		t.Fatal(err)
	}
	if dtbl.Len() != 1 || !dtbl.Indexed("forecast") {
		t.Fatalf("drift table: %d rows, indexed=%v", dtbl.Len(), dtbl.Indexed("forecast"))
	}

	// Loading again is pure append: the migration must not re-run or fail.
	if _, err := LoadSamples(db, samples[:1]); err != nil {
		t.Fatalf("second load: %v", err)
	}
	if tbl.Len() != 3 {
		t.Errorf("rows after second load = %d, want 3", tbl.Len())
	}

	if _, err := LoadSamples(db, []Sample{{}}); err == nil {
		t.Error("sample with empty node did not error")
	}
	if _, err := LoadDrift(db, []Drift{{}}); err == nil {
		t.Error("drift with empty run did not error")
	}
}

// TestReportAndDriftReport smoke-test the plain-text renderings.
func TestReportAndDriftReport(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("n", 1, 1.0)
	s := NewSampler(c, Options{Interval: 600})
	n.Submit("a", 100, nil)
	n.Submit("b", 100, nil)
	e.Run()
	s.Finalize(e.Now())
	rep := s.Report(5)
	for _, want := range []string{"node", "contention", "1 contention"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	dr := DriftReport([]Drift{{Run: "f", PlannedNode: "n1", ActualNode: "n2", Moved: true,
		PredEnd: 1000, ActualEnd: 1300, EndDelta: 300, RelError: 0.3, MeanShare: 0.5}})
	for _, want := range []string{"f", "n2", "1 late", "1 moved"} {
		if !strings.Contains(dr, want) {
			t.Errorf("drift report missing %q:\n%s", want, dr)
		}
	}
}
