// Package usage is the cluster utilization observatory: a sim-time
// sampler driven by cluster job-lifecycle events that records per-node,
// per-interval CPU-share timelines, detects contention windows (k > c,
// per-job share < 1) and idle windows, aggregates per-job share
// histories, and computes plan-vs-actual drift against a ForeMan
// schedule.
//
// ForeMan's §4.1 planning rests on the c/k CPU-sharing model, but the
// seed factory recorded nothing about how shares actually evolved —
// saturation, idle capacity, and drift between plan and reality were
// invisible. This package closes that loop the way Tuor et al.
// (arXiv:1905.09219) argue schedulers need: utilization is collected
// continuously, queryable next to run statistics (statsdb tables
// node_usage and drift, schema v3), and watchable live
// (/api/utilization and the dashboard heatmap).
//
// The sampler is exact, not polled: cluster events close the current
// piecewise-constant segment at the virtual instant the job population
// changes, so interval samples integrate the true share trajectory
// rather than a point sample of it. Between events the per-interval tick
// only splits segments at bucket boundaries and refreshes age gauges.
package usage

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Metric names exported by the sampler when telemetry is attached.
const (
	MetricNodeShare       = "usage_node_share"
	MetricNodeActive      = "usage_node_active"
	MetricContentionAge   = "usage_node_contention_age_seconds"
	MetricImbalanceAge    = "usage_imbalance_age_seconds"
	MetricIdleWhileSat    = "usage_idle_while_saturated_nodes"
	MetricSamplesTotal    = "usage_samples_total"
	MetricContentionTotal = "usage_contention_windows_total"
)

// Window kinds.
const (
	WindowContention = "contention"
	WindowIdle       = "idle"
)

// DefaultInterval is the timeline bucket width in sim seconds (15 min).
const DefaultInterval = 900.0

// Options configure a Sampler.
type Options struct {
	// Interval is the timeline bucket width in sim seconds
	// (default DefaultInterval).
	Interval float64
	// MinWindow drops contention/idle windows shorter than this many sim
	// seconds (default 0: keep every window with positive length).
	MinWindow float64
	// StatusCols caps the number of timeline buckets included in the
	// Status heatmap grid (default 288 = 3 days at 15 min). The full
	// timeline is always available through Samples.
	StatusCols int
	// Telemetry, when non-nil, receives the usage gauges and counters.
	Telemetry *telemetry.Telemetry
}

// Sample is one node×interval cell of the utilization timeline.
type Sample struct {
	Node  string  `json:"node"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Utilization is consumed capacity over available capacity:
	// ∫ rate dt / (CPUs × speed × elapsed).
	Utilization float64 `json:"utilization"`
	// MeanShare is the time-average per-job CPU share min(1, c/k) over
	// the interval's running time (1 when nothing ran).
	MeanShare float64 `json:"mean_share"`
	// MeanActive and PeakActive summarize the job population k.
	MeanActive float64 `json:"mean_active"`
	PeakActive int     `json:"peak_active"`
	// ContentionSecs, IdleSecs, and DownSecs partition the interval.
	ContentionSecs float64 `json:"contention_secs"`
	IdleSecs       float64 `json:"idle_secs"`
	DownSecs       float64 `json:"down_secs"`
}

// Window is one maximal contention or idle stretch on a node. A
// contention window is open while k > c (every serial job's share is
// below 1); an idle window while k = 0 on an up node.
type Window struct {
	Node  string  `json:"node"`
	Kind  string  `json:"kind"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// PeakActive is the largest k seen inside a contention window.
	PeakActive int `json:"peak_active,omitempty"`
	// MeanShare is the time-average per-job share inside a contention
	// window (below 1 by construction).
	MeanShare float64 `json:"mean_share,omitempty"`
}

// Duration returns the window length in sim seconds.
func (w Window) Duration() float64 { return w.End - w.Start }

// JobShare aggregates the share history of one job family on one node
// and day: all cluster jobs whose label shares the same base (the text
// before any '[', so the 96 increments of "sim:forecast-x[i/96]"
// collapse into one row).
type JobShare struct {
	Job       string  `json:"job"` // base label, e.g. "sim:forecast-tillamook"
	Node      string  `json:"node"`
	Day       int     `json:"day"` // zero-based campaign day of first submit
	First     float64 `json:"first"`
	Last      float64 `json:"last"`
	Jobs      int     `json:"jobs"`       // lifecycle jobs aggregated
	RunSecs   float64 `json:"run_secs"`   // Σ active seconds
	ShareSecs float64 `json:"share_secs"` // ∫ share dt over active time
	Cancelled int     `json:"cancelled"`
}

// MeanShare returns the time-average CPU share the job family received
// while active (1 when it never accumulated running time).
func (j JobShare) MeanShare() float64 {
	if j.RunSecs <= 0 {
		return 1
	}
	return j.ShareSecs / j.RunSecs
}

// nodeState carries one node's open segment, current-bucket
// accumulators, lifetime totals, and open windows.
type nodeState struct {
	node *cluster.Node
	cpus int

	// Open segment: constant (k, down) since last.
	last     float64
	k        int
	down     bool
	lastBusy float64

	// Current bucket accumulators.
	bucketStart float64
	busyAcc     float64
	shareInt    float64
	runSecs     float64
	activeInt   float64
	peak        int
	contSecs    float64
	idleSecs    float64
	downSecs    float64

	// Lifetime totals (flushed buckets + nothing pending).
	totContention float64
	totIdle       float64
	totDown       float64

	// Open windows: start time, or NaN when closed.
	contOpen     float64
	contPeak     int
	contShareInt float64
	idleOpen     float64

	// Pending contention window awaiting a real gap: job-increment churn
	// closes and reopens contention at the same virtual instant, so a
	// stretch is only final once contention stays closed for positive
	// sim-time.
	pendValid    bool
	pend         Window
	pendShareInt float64

	// Cumulative run- and share-seconds since sampler start. Every job
	// active on a PS node accrues the identical (dt, share·dt), so a
	// job's contribution is the cumulative delta between its submit and
	// finish — settled lazily instead of iterating active jobs per event
	// (the map walk dominated sampler overhead).
	cumRun   float64
	cumShare float64

	// Classification the cluster-wide imbalance counters track:
	// contended (k > c, up) or idle (k = 0, up).
	wasContended bool
	wasIdle      bool

	// dirty marks the node as touched by the current event instant; its
	// window/gauge refresh is deferred to settleLocked so only the
	// settled end-of-burst state is classified.
	dirty bool

	// Jobs currently executing, scanned linearly: k is at most a few
	// per node, and short slices beat a map keyed by long labels on the
	// per-event path.
	active []activeEntry
	// Share aggregates keyed by base label, holding each family's
	// current-day entry. Keeping the map per node lets submits hash one
	// short string instead of a (node, base, day) composite — the global
	// lookup was half the sampler's event-path cost.
	aggs map[string]*JobShare
	// lastAgg caches the aggregate touched by the node's previous submit
	// or finish. A run's increments finish and resubmit back to back, so
	// the successor's submit finds its family here without hashing.
	lastAgg *JobShare

	samples []Sample

	gShare   *telemetry.Gauge
	gActive  *telemetry.Gauge
	gContAge *telemetry.Gauge
}

// Sampler records cluster utilization. Create with NewSampler, wire with
// Start, and stop with Finalize. All exported methods are safe for
// concurrent use: the HTTP server snapshots Status while the simulation
// drives events.
type Sampler struct {
	mu     sync.Mutex
	eng    *sim.Engine
	cl     *cluster.Cluster
	opts   Options
	nodes  map[string]*nodeState
	states []*nodeState // name-ordered; the hot paths iterate this
	order  []string

	// Incremental counts behind the imbalance gauges, maintained by
	// refreshLocked so the per-event path never re-scans the cluster.
	contendedNodes int
	idleUpNodes    int

	// lastNS short-circuits the node lookup: events arrive in per-node
	// bursts (a submit and its eventual finish, increment churn).
	lastNS *nodeState

	// Nodes touched at the dirtyAt instant, awaiting their deferred
	// refresh. Many events share one virtual instant (a job increment
	// finishing and its successor starting), and only the settled state
	// at the end of the burst matters for windows and gauges.
	dirty   []*nodeState
	dirtyAt float64

	allAggs       []*JobShare // every aggregate ever created, for reporting
	windows       []Window
	imbalanceOpen float64
	finalized     bool

	reg      *telemetry.Registry
	cSamples *telemetry.Counter
	gIdleSat *telemetry.Gauge
	gImbAge  *telemetry.Gauge
}

// NewSampler builds a sampler over the cluster's current nodes and
// subscribes to its lifecycle events. Nodes added later are not tracked.
func NewSampler(cl *cluster.Cluster, opts Options) *Sampler {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.StatusCols <= 0 {
		opts.StatusCols = 288
	}
	s := &Sampler{
		eng:           cl.Engine(),
		cl:            cl,
		opts:          opts,
		nodes:         make(map[string]*nodeState),
		imbalanceOpen: math.NaN(),
	}
	if opts.Telemetry != nil {
		s.reg = opts.Telemetry.Registry()
		s.reg.Describe(MetricNodeShare, "Current per-job CPU share min(1, c/k) on the node (1 when idle).")
		s.reg.Describe(MetricNodeActive, "Jobs currently executing on the node.")
		s.reg.Describe(MetricContentionAge, "Age of the node's open contention window (0 when uncontended).")
		s.reg.Describe(MetricImbalanceAge, "Age of the current idle-while-saturated imbalance (0 when balanced).")
		s.reg.Describe(MetricIdleWhileSat, "Idle up nodes while at least one node is in contention.")
		s.reg.Describe(MetricSamplesTotal, "Timeline samples recorded by the usage sampler.")
		s.reg.Describe(MetricContentionTotal, "Contention windows opened, by node.")
		s.cSamples = s.reg.Counter(MetricSamplesTotal, nil)
		s.gIdleSat = s.reg.Gauge(MetricIdleWhileSat, nil)
		s.gImbAge = s.reg.Gauge(MetricImbalanceAge, nil)
	}
	now := s.eng.Now()
	for _, n := range cl.Nodes() {
		ns := &nodeState{
			node:        n,
			cpus:        n.CPUs(),
			last:        now,
			k:           n.Active(),
			down:        n.Down(),
			lastBusy:    n.BusySeconds(),
			bucketStart: now,
			aggs:        make(map[string]*JobShare),
			contOpen:    math.NaN(),
			idleOpen:    math.NaN(),
		}
		if s.reg != nil {
			labels := telemetry.Labels{"node": n.Name()}
			ns.gShare = s.reg.Gauge(MetricNodeShare, labels)
			ns.gActive = s.reg.Gauge(MetricNodeActive, labels)
			ns.gContAge = s.reg.Gauge(MetricContentionAge, labels)
			ns.gShare.Set(1)
		}
		ns.wasContended = !ns.down && ns.k > ns.cpus
		ns.wasIdle = !ns.down && ns.k == 0
		if ns.wasContended {
			s.contendedNodes++
		}
		if ns.wasIdle {
			s.idleUpNodes++
		}
		s.nodes[n.Name()] = ns
		s.states = append(s.states, ns)
		s.order = append(s.order, n.Name())
	}
	cl.OnEvent(s.onEvent)
	return s
}

// Interval returns the timeline bucket width in sim seconds.
func (s *Sampler) Interval() float64 { return s.opts.Interval }

// Start schedules the per-interval tick on the engine until horizon —
// the tick flushes timeline buckets on schedule and keeps the age and
// imbalance gauges fresh even when no job events fire.
func (s *Sampler) Start(horizon float64) {
	interval := s.opts.Interval
	// The horizon bounds the timeline length; reserving it up front keeps
	// sample appends out of the allocator on the event path.
	if expect := int((horizon-s.eng.Now())/interval) + 2; expect > 0 && expect < 1<<20 {
		s.mu.Lock()
		for _, ns := range s.states {
			if cap(ns.samples) < expect {
				ns.samples = append(make([]Sample, 0, expect), ns.samples...)
			}
		}
		s.mu.Unlock()
	}
	sched := s.eng.Scope("usage")
	var tick func()
	tick = func() {
		s.Tick()
		if s.eng.Now()+interval <= horizon {
			sched.After(interval, tick)
		}
	}
	sched.After(interval, tick)
}

// Tick advances every node's timeline to the current virtual time.
func (s *Sampler) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.eng.Now()
	if len(s.dirty) > 0 {
		s.settleLocked()
	}
	for _, ns := range s.states {
		s.advanceLocked(ns, now)
		// Between events the node's state cannot transition, so a refresh
		// at tick time only recomputes age gauges — skip it entirely when
		// no registry is attached.
		if s.reg != nil {
			s.refreshLocked(ns, now)
		}
	}
	if s.reg != nil {
		s.refreshClusterLocked(now)
	}
}

// shareOf is the paper's per-job CPU share: min(1, c/k).
func shareOf(k, cpus int) float64 {
	if k <= 0 {
		return 1
	}
	return math.Min(1, float64(cpus)/float64(k))
}

// openJob is one executing job's link to its aggregate: the node's
// cumulative counters at submit time, subtracted out when it finishes.
type openJob struct {
	agg       *JobShare
	baseRun   float64
	baseShare float64
}

// activeEntry is one executing job in a node's active list.
type activeEntry struct {
	label string
	oj    openJob
}

// baseLabel strips the increment suffix from a job label:
// "sim:forecast-x[3/96]" → "sim:forecast-x".
func baseLabel(label string) string {
	if i := strings.IndexByte(label, '['); i >= 0 {
		return label[:i]
	}
	return label
}

// onEvent is the cluster lifecycle observer. It does only bookkeeping —
// integrate the closing segment, track k/down incrementally from the
// event kind, settle job aggregates — and defers window and gauge
// classification to settleLocked once the instant's event burst is over.
func (s *Sampler) onEvent(ev cluster.JobEvent) {
	s.mu.Lock()
	ns := s.lastNS
	if ns == nil || ns.node.Name() != ev.Node {
		ns = s.nodes[ev.Node]
		if ns == nil {
			s.mu.Unlock()
			return
		}
		s.lastNS = ns
	}
	if len(s.dirty) > 0 && ev.Time != s.dirtyAt {
		s.settleLocked()
	}
	s.advanceLocked(ns, ev.Time)
	switch ev.Kind {
	case cluster.EventSubmit:
		ns.k++
		base := baseLabel(ev.Job)
		day := int(ev.Time / 86400)
		agg := ns.lastAgg
		if agg == nil || agg.Day != day || agg.Job != base {
			agg = ns.aggs[base]
			if agg == nil || agg.Day != day {
				agg = &JobShare{
					Job:   base,
					Node:  ev.Node,
					Day:   day,
					First: ev.Time,
				}
				ns.aggs[base] = agg
				s.allAggs = append(s.allAggs, agg)
			}
			ns.lastAgg = agg
		}
		agg.Jobs++
		ns.active = append(ns.active, activeEntry{label: ev.Job,
			oj: openJob{agg: agg, baseRun: ns.cumRun, baseShare: ns.cumShare}})
	case cluster.EventFinish, cluster.EventCancel:
		ns.k--
		for i := range ns.active {
			if ns.active[i].label != ev.Job {
				continue
			}
			oj := ns.active[i].oj
			oj.agg.RunSecs += ns.cumRun - oj.baseRun
			oj.agg.ShareSecs += ns.cumShare - oj.baseShare
			oj.agg.Last = ev.Time
			ns.lastAgg = oj.agg
			if ev.Kind == cluster.EventCancel {
				oj.agg.Cancelled++
			}
			ns.active[i] = ns.active[len(ns.active)-1]
			ns.active = ns.active[:len(ns.active)-1]
			break
		}
	case cluster.EventFail:
		ns.down = true
	case cluster.EventRepair:
		ns.down = false
	}
	if !ns.dirty {
		ns.dirty = true
		s.dirty = append(s.dirty, ns)
	}
	s.dirtyAt = ev.Time
	s.mu.Unlock()
}

// settleLocked runs the deferred refresh for every node touched at the
// last event instant. Deferring until the burst is over means a stretch
// of contention interrupted for zero sim-time never even registers as
// closed, and the per-event path stays at pure bookkeeping cost.
func (s *Sampler) settleLocked() {
	for _, ns := range s.dirty {
		ns.dirty = false
		s.refreshLocked(ns, s.dirtyAt)
	}
	s.dirty = s.dirty[:0]
	s.refreshClusterLocked(s.dirtyAt)
}

// advanceLocked integrates the node's open segment up to now, splitting
// it at bucket boundaries and flushing completed buckets. The segment's
// (k, down) is constant over the whole stretch, so the busy-seconds
// delta distributes linearly and the integration is exact.
func (s *Sampler) advanceLocked(ns *nodeState, now float64) {
	if now <= ns.last {
		return
	}
	busyNow := ns.node.BusySeconds()
	total := now - ns.last
	busyDelta := busyNow - ns.lastBusy
	share := shareOf(ns.k, ns.cpus)
	for ns.last < now {
		end := math.Min(now, ns.bucketStart+s.opts.Interval)
		dt := end - ns.last
		ns.busyAcc += busyDelta * (dt / total)
		ns.activeInt += float64(ns.k) * dt
		if ns.k > ns.peak {
			ns.peak = ns.k
		}
		switch {
		case ns.down:
			ns.downSecs += dt
		case ns.k == 0:
			ns.idleSecs += dt
		default:
			ns.shareInt += share * dt
			ns.runSecs += dt
			ns.cumRun += dt
			ns.cumShare += share * dt
			if ns.k > ns.cpus {
				ns.contSecs += dt
				ns.contShareInt += share * dt
			}
		}
		ns.last = end
		if end >= ns.bucketStart+s.opts.Interval {
			s.flushBucketLocked(ns, end)
		}
	}
	ns.lastBusy = busyNow
}

// flushBucketLocked emits the current bucket as a Sample and resets the
// accumulators for the next one starting at end.
func (s *Sampler) flushBucketLocked(ns *nodeState, end float64) {
	elapsed := end - ns.bucketStart
	if elapsed <= 0 {
		return
	}
	sm := Sample{
		Node:           ns.node.Name(),
		Start:          ns.bucketStart,
		End:            end,
		Utilization:    ns.busyAcc / (ns.node.Capacity() * elapsed),
		MeanShare:      1,
		MeanActive:     ns.activeInt / elapsed,
		PeakActive:     ns.peak,
		ContentionSecs: ns.contSecs,
		IdleSecs:       ns.idleSecs,
		DownSecs:       ns.downSecs,
	}
	if ns.runSecs > 0 {
		sm.MeanShare = ns.shareInt / ns.runSecs
	}
	ns.samples = append(ns.samples, sm)
	ns.totContention += ns.contSecs
	ns.totIdle += ns.idleSecs
	ns.totDown += ns.downSecs
	ns.bucketStart = end
	ns.busyAcc, ns.shareInt, ns.runSecs, ns.activeInt = 0, 0, 0, 0
	ns.peak, ns.contSecs, ns.idleSecs, ns.downSecs = 0, 0, 0, 0
	s.cSamples.Inc()
}

// refreshLocked classifies the node's settled state — k and down are
// maintained incrementally by onEvent — transitions contention/idle
// windows, and updates the per-node gauges.
func (s *Sampler) refreshLocked(ns *nodeState, now float64) {
	contended := !ns.down && ns.k > ns.cpus
	idle := !ns.down && ns.k == 0

	if contended != ns.wasContended {
		if contended {
			s.contendedNodes++
		} else {
			s.contendedNodes--
		}
		ns.wasContended = contended
	}
	if idle != ns.wasIdle {
		if idle {
			s.idleUpNodes++
		} else {
			s.idleUpNodes--
		}
		ns.wasIdle = idle
	}

	if contended {
		if math.IsNaN(ns.contOpen) {
			ns.contOpen = now
			ns.contPeak = ns.k
			ns.contShareInt = 0
			if s.reg != nil {
				s.reg.Counter(MetricContentionTotal, telemetry.Labels{"node": ns.node.Name()}).Inc()
			}
		} else if ns.k > ns.contPeak {
			ns.contPeak = ns.k
		}
	} else if !math.IsNaN(ns.contOpen) {
		s.closeWindowLocked(ns, WindowContention, now)
	}
	if idle {
		if math.IsNaN(ns.idleOpen) {
			ns.idleOpen = now
		}
	} else if !math.IsNaN(ns.idleOpen) {
		s.closeWindowLocked(ns, WindowIdle, now)
	}

	if s.reg != nil {
		ns.gShare.Set(shareOf(ns.k, ns.cpus))
		ns.gActive.Set(float64(ns.k))
		if math.IsNaN(ns.contOpen) {
			ns.gContAge.Set(0)
		} else {
			ns.gContAge.Set(now - ns.contOpen)
		}
	}
}

// closeWindowLocked records the node's open window of the given kind.
// Contention stretches interrupted for zero sim-time (a job increment
// finishing and its successor starting at the same virtual instant)
// merge into one window; the merged window is final once contention
// stays closed past the instant, and is flushed by the next
// non-contiguous stretch or by Finalize.
func (s *Sampler) closeWindowLocked(ns *nodeState, kind string, now float64) {
	switch kind {
	case WindowContention:
		start := ns.contOpen
		ns.contOpen = math.NaN()
		if now <= start {
			return // zero-length churn; any pending stretch survives
		}
		if ns.pendValid && start <= ns.pend.End+1e-9 {
			ns.pend.End = now
			if ns.contPeak > ns.pend.PeakActive {
				ns.pend.PeakActive = ns.contPeak
			}
			ns.pendShareInt += ns.contShareInt
		} else {
			s.flushPendingLocked(ns)
			ns.pend = Window{Node: ns.node.Name(), Kind: kind, Start: start, End: now, PeakActive: ns.contPeak}
			ns.pendShareInt = ns.contShareInt
			ns.pendValid = true
		}
	case WindowIdle:
		w := Window{Node: ns.node.Name(), Kind: kind, Start: ns.idleOpen, End: now}
		ns.idleOpen = math.NaN()
		if w.Duration() > 0 && w.Duration() >= s.opts.MinWindow {
			s.windows = append(s.windows, w)
		}
	}
}

// flushPendingLocked finalizes the node's pending contention stretch.
func (s *Sampler) flushPendingLocked(ns *nodeState) {
	if !ns.pendValid {
		return
	}
	ns.pendValid = false
	w := ns.pend
	if dur := w.Duration(); dur > 0 && dur >= s.opts.MinWindow {
		w.MeanShare = ns.pendShareInt / dur
		s.windows = append(s.windows, w)
	}
}

// refreshClusterLocked updates the idle-while-saturated imbalance from
// the incrementally maintained node counts: idle up nodes count only
// while at least one node is contended. O(1) — it runs on every cluster
// event.
func (s *Sampler) refreshClusterLocked(now float64) {
	idle := 0
	if s.contendedNodes > 0 {
		idle = s.idleUpNodes
	}
	if idle > 0 {
		if math.IsNaN(s.imbalanceOpen) {
			s.imbalanceOpen = now
		}
	} else {
		s.imbalanceOpen = math.NaN()
	}
	if s.reg != nil {
		if math.IsNaN(s.imbalanceOpen) {
			s.gImbAge.Set(0)
		} else {
			s.gImbAge.Set(now - s.imbalanceOpen)
		}
		s.gIdleSat.Set(float64(idle))
	}
}

// Finalize advances every node to now, flushes the partial trailing
// bucket, and closes open windows. Call once, when the campaign is over.
func (s *Sampler) Finalize(now float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return
	}
	s.finalized = true
	if len(s.dirty) > 0 {
		s.settleLocked()
	}
	for _, ns := range s.states {
		s.advanceLocked(ns, now)
		if now > ns.bucketStart {
			s.flushBucketLocked(ns, now)
		}
		if !math.IsNaN(ns.contOpen) {
			s.closeWindowLocked(ns, WindowContention, now)
		}
		s.flushPendingLocked(ns)
		if !math.IsNaN(ns.idleOpen) {
			s.closeWindowLocked(ns, WindowIdle, now)
		}
		// Settle jobs still executing: their share history counts up to
		// the finalization instant, though Last stays unset (they never
		// finished).
		for _, e := range ns.active {
			e.oj.agg.RunSecs += ns.cumRun - e.oj.baseRun
			e.oj.agg.ShareSecs += ns.cumShare - e.oj.baseShare
		}
		ns.active = nil
	}
	sort.Slice(s.windows, func(i, j int) bool {
		if s.windows[i].Start != s.windows[j].Start {
			return s.windows[i].Start < s.windows[j].Start
		}
		return s.windows[i].Node < s.windows[j].Node
	})
}

// Samples returns the full timeline, node-major then time-ordered.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, ns := range s.states {
		total += len(ns.samples)
	}
	out := make([]Sample, 0, total)
	for _, ns := range s.states {
		out = append(out, ns.samples...)
	}
	return out
}

// Windows returns the detected contention and idle windows, by start
// time. Windows still open are only visible after Finalize.
func (s *Sampler) Windows() []Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Window(nil), s.windows...)
}

// JobShares returns the per-job share aggregates, sorted by (node, job,
// day). Jobs still executing contribute their accrual so far.
func (s *Sampler) JobShares() []JobShare {
	s.mu.Lock()
	defer s.mu.Unlock()
	type delta struct{ run, share float64 }
	open := make(map[*JobShare]delta)
	for _, ns := range s.states {
		for _, e := range ns.active {
			d := open[e.oj.agg]
			d.run += ns.cumRun - e.oj.baseRun
			d.share += ns.cumShare - e.oj.baseShare
			open[e.oj.agg] = d
		}
	}
	out := make([]JobShare, 0, len(s.allAggs))
	for _, a := range s.allAggs {
		c := *a
		if d, ok := open[a]; ok {
			c.RunSecs += d.run
			c.ShareSecs += d.share
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Job != out[j].Job {
			return out[i].Job < out[j].Job
		}
		return out[i].Day < out[j].Day
	})
	return out
}

// MeanShareOver returns the time-average per-job share on a node across
// [start, end], integrated from the flushed timeline (1 when the window
// holds no running time). It backs the drift report's observed-share
// column.
func (s *Sampler) MeanShareOver(node string, start, end float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns := s.nodes[node]
	if ns == nil || end <= start {
		return 1
	}
	var shareInt, runSecs float64
	for _, sm := range overlappingSamples(ns.samples, start, end) {
		lo, hi := math.Max(sm.Start, start), math.Min(sm.End, end)
		if hi <= lo {
			continue
		}
		frac := (hi - lo) / (sm.End - sm.Start)
		// runSecs within the sample = elapsed − idle − down.
		run := (sm.End - sm.Start - sm.IdleSecs - sm.DownSecs) * frac
		shareInt += sm.MeanShare * run
		runSecs += run
	}
	if runSecs <= 0 {
		return 1
	}
	return shareInt / runSecs
}

// DownSecsOver returns the node's down time overlapping [start, end],
// pro-rated within partially overlapped timeline buckets. Forensic blame
// attribution charges this to the failure component.
func (s *Sampler) DownSecsOver(node string, start, end float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns := s.nodes[node]
	if ns == nil || end <= start {
		return 0
	}
	var down float64
	for _, sm := range overlappingSamples(ns.samples, start, end) {
		lo, hi := math.Max(sm.Start, start), math.Min(sm.End, end)
		if hi <= lo || sm.End <= sm.Start {
			continue
		}
		down += sm.DownSecs * (hi - lo) / (sm.End - sm.Start)
	}
	return down
}

// overlappingSamples narrows a node's flushed timeline (disjoint buckets
// in start order) to the ones that can intersect [start, end] — binary
// search on both ends, so window queries over a long campaign cost
// O(log n + overlap) instead of a full rescan per query.
func overlappingSamples(ss []Sample, start, end float64) []Sample {
	lo := sort.Search(len(ss), func(i int) bool { return ss[i].End > start })
	hi := lo + sort.Search(len(ss)-lo, func(i int) bool { return ss[lo+i].Start >= end })
	return ss[lo:hi]
}

// NodeSummary is one node's aggregate standing in the Status snapshot.
type NodeSummary struct {
	Name           string  `json:"name"`
	CPUs           int     `json:"cpus"`
	Speed          float64 `json:"speed"`
	Active         int     `json:"active"`
	Down           bool    `json:"down,omitempty"`
	Share          float64 `json:"share"`
	Utilization    float64 `json:"utilization"` // lifetime
	ContentionSecs float64 `json:"contention_secs"`
	IdleSecs       float64 `json:"idle_secs"`
	DownSecs       float64 `json:"down_secs"`
}

// Grid is the nodes×time heatmap the dashboard renders: one row per
// node, one column per timeline bucket, values in [0, 1].
type Grid struct {
	Nodes       []string    `json:"nodes"`
	Start       float64     `json:"start"`
	Step        float64     `json:"step"`
	Utilization [][]float64 `json:"utilization"`
	Share       [][]float64 `json:"share"`
}

// Status is the observatory's snapshot for /api/utilization.
type Status struct {
	Now      float64       `json:"now"`
	Interval float64       `json:"interval"`
	Nodes    []NodeSummary `json:"nodes"`
	Grid     Grid          `json:"grid"`
	Windows  []Window      `json:"windows"`
}

// Status snapshots the sampler. The grid covers the most recent
// StatusCols buckets; windows are capped to the most recent 200.
func (s *Sampler) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.eng.Now()
	st := Status{Now: now, Interval: s.opts.Interval}

	// Bucket index range across all nodes (buckets are aligned: every
	// node starts at the same sampler epoch).
	maxBuckets := 0
	for _, name := range s.order {
		if n := len(s.nodes[name].samples); n > maxBuckets {
			maxBuckets = n
		}
	}
	first := 0
	if maxBuckets > s.opts.StatusCols {
		first = maxBuckets - s.opts.StatusCols
	}
	cols := maxBuckets - first
	st.Grid = Grid{Nodes: append([]string(nil), s.order...), Step: s.opts.Interval}
	for _, name := range s.order {
		ns := s.nodes[name]
		util := make([]float64, cols)
		share := make([]float64, cols)
		for i := range share {
			share[i] = 1
		}
		for i, sm := range ns.samples {
			if i < first {
				continue
			}
			if st.Grid.Start == 0 && i == first {
				st.Grid.Start = sm.Start
			}
			util[i-first] = sm.Utilization
			share[i-first] = sm.MeanShare
		}
		st.Grid.Utilization = append(st.Grid.Utilization, util)
		st.Grid.Share = append(st.Grid.Share, share)

		cont, idle, down := ns.totContention+ns.contSecs, ns.totIdle+ns.idleSecs, ns.totDown+ns.downSecs
		st.Nodes = append(st.Nodes, NodeSummary{
			Name:           name,
			CPUs:           ns.cpus,
			Speed:          ns.node.Speed(),
			Active:         ns.k,
			Down:           ns.down,
			Share:          shareOf(ns.k, ns.cpus),
			Utilization:    ns.node.Utilization(),
			ContentionSecs: cont,
			IdleSecs:       idle,
			DownSecs:       down,
		})
	}
	ws := s.windows
	if len(ws) > 200 {
		ws = ws[len(ws)-200:]
	}
	st.Windows = append([]Window(nil), ws...)
	return st
}

// Report renders the observatory's plain-text summary: per-node totals
// and the most significant contention and idle windows.
func (s *Sampler) Report(maxWindows int) string {
	st := s.Status()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %4s %6s %11s %14s %11s %11s\n",
		"node", "cpus", "speed", "utilization", "contention", "idle", "down")
	for _, n := range st.Nodes {
		fmt.Fprintf(&b, "%-10s %4d %6.2f %10.1f%% %13s %11s %11s\n",
			n.Name, n.CPUs, n.Speed, 100*n.Utilization,
			hhmm(n.ContentionSecs), hhmm(n.IdleSecs), hhmm(n.DownSecs))
	}
	all := s.Windows() // uncapped: the longest windows may be old
	var cont []Window
	for _, w := range all {
		if w.Kind == WindowContention {
			cont = append(cont, w)
		}
	}
	fmt.Fprintf(&b, "windows: %d contention, %d idle\n", len(cont), len(all)-len(cont))
	sort.Slice(cont, func(i, j int) bool { return cont[i].Duration() > cont[j].Duration() })
	for i, w := range cont {
		if i >= maxWindows {
			break
		}
		fmt.Fprintf(&b, "  contention %-10s %s → %s (%s, peak k=%d, mean share %.2f)\n",
			w.Node, hhmm(w.Start), hhmm(w.End), hhmm(w.Duration()), w.PeakActive, w.MeanShare)
	}
	return b.String()
}

// CondenseGrid re-buckets a full timeline into at most cols columns
// spanning the whole campaign — the end-of-run heatmap, where the live
// dashboard's rolling window would only show the idle drain. Values are
// duration-weighted means; columns with no samples are NaN (rendered as
// "no data"). Node order follows nodes; samples for other nodes are
// ignored.
func CondenseGrid(nodes []string, samples []Sample, cols int) Grid {
	if cols <= 0 {
		cols = 96
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		lo = math.Min(lo, s.Start)
		hi = math.Max(hi, s.End)
	}
	g := Grid{Nodes: append([]string(nil), nodes...)}
	if hi <= lo {
		return g
	}
	g.Start = lo
	g.Step = (hi - lo) / float64(cols)
	rowOf := make(map[string]int, len(nodes))
	for i, n := range nodes {
		rowOf[n] = i
	}
	util := make([][]float64, len(nodes))
	share := make([][]float64, len(nodes))
	weight := make([][]float64, len(nodes))
	shareW := make([][]float64, len(nodes))
	for i := range util {
		util[i] = make([]float64, cols)
		share[i] = make([]float64, cols)
		weight[i] = make([]float64, cols)
		shareW[i] = make([]float64, cols)
	}
	for _, s := range samples {
		row, ok := rowOf[s.Node]
		if !ok {
			continue
		}
		run := s.End - s.Start - s.IdleSecs - s.DownSecs
		for c := int((s.Start - lo) / g.Step); c < cols; c++ {
			cLo, cHi := lo+float64(c)*g.Step, lo+float64(c+1)*g.Step
			overlap := math.Min(s.End, cHi) - math.Max(s.Start, cLo)
			if overlap <= 0 {
				break
			}
			frac := overlap / (s.End - s.Start)
			util[row][c] += s.Utilization * overlap
			weight[row][c] += overlap
			share[row][c] += s.MeanShare * run * frac
			shareW[row][c] += run * frac
		}
	}
	for i := range util {
		for c := range util[i] {
			if weight[i][c] > 0 {
				util[i][c] /= weight[i][c]
			} else {
				util[i][c] = math.NaN()
			}
			if shareW[i][c] > 0 {
				share[i][c] /= shareW[i][c]
			} else {
				share[i][c] = 1
			}
		}
	}
	g.Utilization = util
	g.Share = share
	return g
}

// hhmm renders seconds as h:mm for reports.
func hhmm(sec float64) string {
	sign := ""
	if sec < 0 {
		sign = "-"
		sec = -sec
	}
	h := int(sec) / 3600
	m := (int(sec) % 3600) / 60
	return fmt.Sprintf("%s%d:%02d", sign, h, m)
}
