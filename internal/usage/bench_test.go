package usage

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/factory"
	"repro/internal/sim"
)

// benchCampaign drives a synthetic multi-day campaign: forecasts×days
// incremental runs (incs increments each) packed onto a small cluster,
// with enough co-location to keep the sampler's event path hot. When
// sampled is true a Sampler with the default interval observes the whole
// thing. Returns the final virtual time.
func benchCampaign(forecasts, days, incs int, sampled bool) float64 {
	e := sim.NewEngine()
	c := cluster.New(e)
	nodes := []*cluster.Node{
		c.AddNode("n1", 2, 1.0),
		c.AddNode("n2", 2, 1.0),
		c.AddNode("n3", 2, 0.8),
	}
	var s *Sampler
	horizon := float64(days) * 86400
	if sampled {
		s = NewSampler(c, Options{})
		s.Start(horizon)
	}
	for d := 0; d < days; d++ {
		for f := 0; f < forecasts; f++ {
			n := nodes[f%len(nodes)]
			name := fmt.Sprintf("f%02d", f)
			start := float64(d)*86400 + float64(f%4)*900
			e.At(start, func() {
				var next func(i int)
				next = func(i int) {
					if i >= incs {
						return
					}
					n.Submit(fmt.Sprintf("%s[%d/%d]", name, i, incs),
						20000.0/float64(incs), func() { next(i + 1) })
				}
				next(0)
			})
		}
	}
	e.Run()
	if s != nil {
		s.Finalize(e.Now())
	}
	return e.Now()
}

// benchFactory runs a fig8 factory campaign — the workload the sampler
// actually rides on, with estimation, planning, and log writing per day —
// optionally observed by a Sampler. days > 0 truncates the campaign for
// quick benchmarks; days <= 0 runs the standard campaign unmodified.
func benchFactory(days int, sampled bool) {
	cfg := factory.Figure8Scenario()
	if days > 0 {
		cfg.Days = days
		var kept []factory.Event
		for _, e := range cfg.Events {
			if e.EventDay() < cfg.StartDay+cfg.Days {
				kept = append(kept, e)
			}
		}
		cfg.Events = kept
	}
	c, err := factory.New(cfg)
	if err != nil {
		panic(err)
	}
	var s *Sampler
	if sampled {
		s = NewSampler(c.Cluster(), Options{})
		s.Start(c.Horizon())
	}
	c.Run()
	if s != nil {
		s.Finalize(c.Engine().Now())
	}
}

// BenchmarkCampaignBaseline is the synthetic event-churn workload with no
// sampler: nothing but cluster lifecycle events, the harshest possible
// denominator for sampler overhead.
func BenchmarkCampaignBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchCampaign(8, 4, 24, false)
	}
}

// BenchmarkCampaignSampled is the same workload observed by a Sampler;
// the delta against Baseline is the sampler's raw event-path cost.
func BenchmarkCampaignSampled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchCampaign(8, 4, 24, true)
	}
}

// BenchmarkFactoryBaseline is a 6-day fig8 factory campaign, unsampled.
func BenchmarkFactoryBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchFactory(6, false)
	}
}

// BenchmarkFactorySampled is the 6-day fig8 campaign under observation;
// the delta against FactoryBaseline is the overhead the 5% budget is
// about.
func BenchmarkFactorySampled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchFactory(6, true)
	}
}

// TestEmitBenchReport measures the sampler's slowdown on the standard
// fig8 campaign and writes a machine-readable report to the file named
// by BENCH_OUT; `make bench` sets it and CI uploads the result as an
// artifact. Without BENCH_OUT the test is skipped.
//
// Methodology: baseline and sampled campaigns run as ABBA pairs (the
// order within a pair alternates so heap growth and machine drift cancel
// instead of always penalizing one side), and the reported overhead is
// the median of the per-pair ratios — a single noisy pair on a shared
// machine cannot swing it.
func TestEmitBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("BENCH_OUT not set")
	}
	const pairs = 8
	days := factory.Figure8Scenario().Days
	benchFactory(0, false) // warm-up
	benchFactory(0, true)
	var base, withSampler, ratios []float64
	for i := 0; i < pairs; i++ {
		var b, s float64
		if i%2 == 0 {
			t0 := time.Now()
			benchFactory(0, false)
			b = time.Since(t0).Seconds()
			t1 := time.Now()
			benchFactory(0, true)
			s = time.Since(t1).Seconds()
		} else {
			t1 := time.Now()
			benchFactory(0, true)
			s = time.Since(t1).Seconds()
			t0 := time.Now()
			benchFactory(0, false)
			b = time.Since(t0).Seconds()
		}
		base = append(base, b)
		withSampler = append(withSampler, s)
		ratios = append(ratios, 100*(s-b)/b)
	}
	sort.Float64s(ratios)
	overhead := (ratios[pairs/2-1] + ratios[pairs/2]) / 2
	mean := func(xs []float64) float64 {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	report := map[string]any{
		"scenario":            "fig8",
		"days":                days,
		"pairs":               pairs,
		"baseline_seconds":    mean(base),
		"sampled_seconds":     mean(withSampler),
		"overhead_pct":        overhead,
		"overhead_budget_pct": 5.0,
	}
	if overhead > 5 {
		t.Errorf("sampler overhead %.1f%% exceeds the 5%% budget", overhead)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, data)
}
