package usage

import (
	"fmt"
	"math"

	"repro/internal/statsdb"
)

// Table names added by the schema v3 migration. Both tables join with
// runs: node_usage on node (and time overlap), drift on (forecast, day).
const (
	NodeUsageTableName = "node_usage"
	DriftTableName     = "drift"
)

// NodeUsageSchema returns the schema of the node_usage timeline table:
// one row per node×interval sample.
func NodeUsageSchema() statsdb.Schema {
	return statsdb.Schema{
		{Name: "node", Type: statsdb.String},
		{Name: "start", Type: statsdb.Float},
		{Name: "end", Type: statsdb.Float},
		{Name: "utilization", Type: statsdb.Float},
		{Name: "mean_share", Type: statsdb.Float},
		{Name: "mean_active", Type: statsdb.Float},
		{Name: "peak_active", Type: statsdb.Int},
		{Name: "contention_secs", Type: statsdb.Float},
		{Name: "idle_secs", Type: statsdb.Float},
		{Name: "down_secs", Type: statsdb.Float},
	}
}

// DriftSchema returns the schema of the plan-vs-actual drift table: one
// row per planned run with an observed completion.
func DriftSchema() statsdb.Schema {
	return statsdb.Schema{
		{Name: "forecast", Type: statsdb.String},
		{Name: "day", Type: statsdb.Int},
		{Name: "planned_node", Type: statsdb.String},
		{Name: "actual_node", Type: statsdb.String},
		{Name: "moved", Type: statsdb.Bool},
		{Name: "predicted_start", Type: statsdb.Float},
		{Name: "predicted_end", Type: statsdb.Float},
		{Name: "actual_start", Type: statsdb.Float},
		{Name: "actual_end", Type: statsdb.Float},
		{Name: "end_delta", Type: statsdb.Float},
		{Name: "rel_error", Type: statsdb.Float},
		{Name: "mean_share", Type: statsdb.Float},
	}
}

// Migrations returns the usage layer's schema migrations: v3 creates the
// node_usage and drift tables with their lookup indexes. Combine with
// harvest.Migrations() (v1, v2) when building a full database; Migrate
// tracks each version independently, so applying v3 to a database that
// already carries v1+v2 only adds the new tables.
func Migrations() []statsdb.Migration {
	return []statsdb.Migration{
		{
			Version: 3,
			Name:    "usage-tables",
			Apply: func(db *statsdb.DB) error {
				if db.Table(NodeUsageTableName) == nil {
					t, err := db.CreateTable(NodeUsageTableName, NodeUsageSchema())
					if err != nil {
						return err
					}
					if err := t.CreateIndex("node"); err != nil {
						return err
					}
				}
				if db.Table(DriftTableName) == nil {
					t, err := db.CreateTable(DriftTableName, DriftSchema())
					if err != nil {
						return err
					}
					if err := t.CreateIndex("forecast"); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

// finite guards statsdb's NaN rejection: non-finite floats (an unset
// share, an infinite prediction that slipped through) persist as 0.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// LoadSamples appends timeline samples into the node_usage table,
// creating it (via the v3 migration) if missing.
func LoadSamples(db *statsdb.DB, samples []Sample) (*statsdb.Table, error) {
	if _, err := statsdb.Migrate(db, Migrations()); err != nil {
		return nil, err
	}
	t := db.Table(NodeUsageTableName)
	for _, s := range samples {
		if s.Node == "" {
			return nil, fmt.Errorf("usage: sample with empty node")
		}
		err := t.Insert([]statsdb.Value{
			statsdb.StringVal(s.Node),
			statsdb.FloatVal(finite(s.Start)),
			statsdb.FloatVal(finite(s.End)),
			statsdb.FloatVal(finite(s.Utilization)),
			statsdb.FloatVal(finite(s.MeanShare)),
			statsdb.FloatVal(finite(s.MeanActive)),
			statsdb.IntVal(int64(s.PeakActive)),
			statsdb.FloatVal(finite(s.ContentionSecs)),
			statsdb.FloatVal(finite(s.IdleSecs)),
			statsdb.FloatVal(finite(s.DownSecs)),
		})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// LoadDrift appends drift records into the drift table, creating it (via
// the v3 migration) if missing.
func LoadDrift(db *statsdb.DB, ds []Drift) (*statsdb.Table, error) {
	if _, err := statsdb.Migrate(db, Migrations()); err != nil {
		return nil, err
	}
	t := db.Table(DriftTableName)
	for _, d := range ds {
		if d.Run == "" {
			return nil, fmt.Errorf("usage: drift record with empty run")
		}
		err := t.Insert([]statsdb.Value{
			statsdb.StringVal(d.Run),
			statsdb.IntVal(int64(d.Day)),
			statsdb.StringVal(d.PlannedNode),
			statsdb.StringVal(d.ActualNode),
			statsdb.BoolVal(d.Moved),
			statsdb.FloatVal(finite(d.PredStart)),
			statsdb.FloatVal(finite(d.PredEnd)),
			statsdb.FloatVal(finite(d.ActualStart)),
			statsdb.FloatVal(finite(d.ActualEnd)),
			statsdb.FloatVal(finite(d.EndDelta)),
			statsdb.FloatVal(finite(d.RelError)),
			statsdb.FloatVal(finite(d.MeanShare)),
		})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}
