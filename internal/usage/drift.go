package usage

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
)

// Outcome is the observed execution of one planned run: where it
// actually ran and when it actually started and ended, in seconds on the
// sampler's clock (for a one-day replay, seconds after midnight).
type Outcome struct {
	Run      string
	Day      int
	Node     string
	Start    float64
	End      float64
	Finished bool
}

// Drift is one plan-vs-actual comparison: ForeMan's planned assignment
// and predicted completion against the run's observed execution, with
// the mean CPU share the run's node delivered while it was active. A
// run finishing late with a low observed share drifted because of
// contention; late with share ≈ 1 means the work estimate itself was
// off — the distinction Bader et al. show plan-quality feedback needs.
type Drift struct {
	Run         string  `json:"run"`
	Day         int     `json:"day"`
	PlannedNode string  `json:"planned_node"`
	ActualNode  string  `json:"actual_node"`
	Moved       bool    `json:"moved"`
	PredStart   float64 `json:"predicted_start"`
	PredEnd     float64 `json:"predicted_end"`
	ActualStart float64 `json:"actual_start"`
	ActualEnd   float64 `json:"actual_end"`
	// EndDelta is actual − predicted completion (positive = late).
	EndDelta float64 `json:"end_delta"`
	// RelError is |EndDelta| over the predicted duration (floored at 1 s).
	RelError float64 `json:"rel_error"`
	// MeanShare is the observed time-average per-job CPU share on the
	// actual node across the run's lifetime.
	MeanShare float64 `json:"mean_share"`
}

// ShareSource yields observed mean shares; *Sampler implements it.
type ShareSource interface {
	MeanShareOver(node string, start, end float64) float64
}

// ComputeDrift joins a plan and its prediction against observed
// outcomes. Runs the planner dropped (no finite predicted completion)
// and outcomes that never finished are skipped — there is no completion
// to compare. shares may be nil (MeanShare reported as 1). Results are
// sorted by descending |EndDelta|: the worst drift first.
func ComputeDrift(plan *core.Plan, pred core.Prediction, outcomes []Outcome, shares ShareSource) []Drift {
	var out []Drift
	for _, o := range outcomes {
		if !o.Finished {
			continue
		}
		predEnd, ok := pred.Completion[o.Run]
		if !ok || math.IsInf(predEnd, 0) || math.IsNaN(predEnd) {
			continue
		}
		run, _ := plan.Run(o.Run)
		d := Drift{
			Run:         o.Run,
			Day:         o.Day,
			PlannedNode: plan.Assign[o.Run],
			ActualNode:  o.Node,
			PredStart:   run.Start,
			PredEnd:     predEnd,
			ActualStart: o.Start,
			ActualEnd:   o.End,
			EndDelta:    o.End - predEnd,
			MeanShare:   1,
		}
		d.Moved = d.PlannedNode != "" && d.PlannedNode != o.Node
		d.RelError = math.Abs(d.EndDelta) / math.Max(predEnd-run.Start, 1)
		if shares != nil {
			d.MeanShare = shares.MeanShareOver(o.Node, o.Start, o.End)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].EndDelta), math.Abs(out[j].EndDelta)
		if ai != aj {
			return ai > aj
		}
		return out[i].Run < out[j].Run
	})
	return out
}

// DriftSummary aggregates a drift set for the one-line report.
type DriftSummary struct {
	Runs      int     `json:"runs"`
	Moved     int     `json:"moved"`
	Late      int     `json:"late"` // EndDelta > 0
	MeanAbs   float64 `json:"mean_abs_delta"`
	MaxAbs    float64 `json:"max_abs_delta"`
	MeanRel   float64 `json:"mean_rel_error"`
	WorstRun  string  `json:"worst_run"`
	MeanShare float64 `json:"mean_share"`
}

// Summarize reduces a drift set to its headline numbers.
func Summarize(ds []Drift) DriftSummary {
	var s DriftSummary
	s.Runs = len(ds)
	if s.Runs == 0 {
		s.MeanShare = 1
		return s
	}
	var sumAbs, sumRel, sumShare float64
	for _, d := range ds {
		abs := math.Abs(d.EndDelta)
		sumAbs += abs
		sumRel += d.RelError
		sumShare += d.MeanShare
		if d.Moved {
			s.Moved++
		}
		if d.EndDelta > 0 {
			s.Late++
		}
		if abs > s.MaxAbs {
			s.MaxAbs = abs
			s.WorstRun = d.Run
		}
	}
	n := float64(s.Runs)
	s.MeanAbs = sumAbs / n
	s.MeanRel = sumRel / n
	s.MeanShare = sumShare / n
	return s
}

// DriftReport renders the drift table and summary as plain text.
func DriftReport(ds []Drift) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-10s %-10s %10s %10s %9s %7s %6s\n",
		"run", "planned", "actual", "pred end", "act end", "delta", "rel", "share")
	for _, d := range ds {
		moved := " "
		if d.Moved {
			moved = "*"
		}
		fmt.Fprintf(&b, "%-24s %-10s %-9s%s %10s %10s %9s %6.1f%% %6.2f\n",
			d.Run, d.PlannedNode, d.ActualNode, moved,
			hhmm(d.PredEnd), hhmm(d.ActualEnd), hhmm(d.EndDelta), 100*d.RelError, d.MeanShare)
	}
	s := Summarize(ds)
	fmt.Fprintf(&b, "drift: %d runs, %d late, %d moved; mean |delta| %s, max %s (%s); mean rel error %.1f%%, mean share %.2f\n",
		s.Runs, s.Late, s.Moved, hhmm(s.MeanAbs), hhmm(s.MaxAbs), s.WorstRun, 100*s.MeanRel, s.MeanShare)
	return b.String()
}
