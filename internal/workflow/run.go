package workflow

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/forecast"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// Default execution parameters. A run's simulation appends model output in
// DefaultIncrements chunks, and the master process re-scans for new data
// every DefaultPoll seconds — mirroring the repeated invocations of
// master_process.pl in the paper's Figure 4.
const (
	DefaultIncrements = 96
	DefaultPoll       = 60.0
	DefaultWorkers    = 1
)

// Config describes how one forecast run executes. SimNode/SimFS host the
// simulation and its model outputs; ProductNode/ProductFS host the master
// process, which observes input files in ProductFS and writes products
// there. In the factory's current architecture (and Architecture 1 of
// §4.2) these are the same node and filesystem; in Architecture 2 the
// products run at the public server against the rsync'd copies.
type Config struct {
	Spec        *forecast.Spec
	Dir         string // run directory, e.g. /runs/forecast-tillamook/2005-021
	SimNode     *cluster.Node
	SimFS       *vfs.FS
	ProductNode *cluster.Node
	ProductFS   *vfs.FS
	Increments  int     // simulation output increments (default DefaultIncrements)
	Workers     int     // max concurrent product tasks (default DefaultWorkers)
	Poll        float64 // master process scan interval (default DefaultPoll)
	OnSimDone   func(*Run)
	OnDone      func(*Run)

	// Telemetry, when non-nil, receives workflow metrics and spans; Span
	// is the parent (typically the factory's per-run span) under which
	// the simulation and product-task spans nest.
	Telemetry *telemetry.Telemetry
	Span      *telemetry.Span
}

// productState tracks incremental progress of one product.
type productState struct {
	spec       forecast.ProductSpec
	totalIn    float64 // total input bytes this product will consume
	consumed   float64 // input bytes processed so far
	dispatched float64 // input bytes handed to an in-flight task
	outWritten int64   // product bytes written so far
	active     bool

	// taskName ("prod:<name>") and mTasks (the per-class task counter)
	// are resolved once at startup so the dispatch path pays neither a
	// string concatenation nor a registry lookup per task.
	taskName string
	mTasks   *telemetry.Counter
}

func (p *productState) consumedFraction() float64 {
	if p.totalIn <= 0 {
		return 1
	}
	return p.consumed / p.totalIn
}

// Run is one executing forecast product run.
type Run struct {
	cfg Config
	eng *sim.Engine

	// Each output file grows only during the increments belonging to its
	// forecast day (1_salt.63 is complete halfway through a two-day run,
	// as in the paper's Figure 6): incBytes is the bytes appended per
	// active increment, incCount the number of active increments.
	incBytes   map[string]int64
	incCount   map[string]int
	days       int
	increments int
	incDone    int
	simJob     *cluster.Job

	engine *ProductEngine // nil for simulation-only runs

	started  float64
	simEnd   float64
	finished bool
	endTime  float64
	aborted  bool

	simSpan       *telemetry.Span
	mIncrements   *telemetry.Counter
	mSimWalltimes *telemetry.Histogram

	// Co-location interference factors (1.0 when the simulation and the
	// product workflows run on different nodes, as in Architecture 2).
	simFactor  float64
	prodFactor float64
}

// OutputsDir returns the run's model-output directory.
func (r *Run) OutputsDir() string { return r.cfg.Dir + "/outputs" }

// ProductsDir returns the run's data-product directory.
func (r *Run) ProductsDir() string { return r.cfg.Dir + "/products" }

// ProcessDir returns the master process's working directory ("process" in
// Figures 6/7 of the paper).
func (r *Run) ProcessDir() string { return r.cfg.Dir + "/process" }

// OutputPath returns the path of a model-output file in the run directory.
func (r *Run) OutputPath(name string) string { return r.OutputsDir() + "/" + name }

// ProductPath returns the path a product's data accumulates at.
func (r *Run) ProductPath(name string) string { return r.ProductsDir() + "/" + name + "/data" }

// Spec returns the run's forecast spec.
func (r *Run) Spec() *forecast.Spec { return r.cfg.Spec }

// Started returns the virtual time the run was started.
func (r *Run) Started() float64 { return r.started }

// Node returns the node the simulation executes on.
func (r *Run) Node() *cluster.Node { return r.cfg.SimNode }

// SimProgress returns the fraction of simulation increments completed.
func (r *Run) SimProgress() float64 {
	return float64(r.incDone) / float64(r.increments)
}

// SimFinishedAt returns when the simulation completed (0 if not yet).
func (r *Run) SimFinishedAt() float64 { return r.simEnd }

// FinishedAt returns when the whole run (simulation + all products)
// completed (0 if not yet).
func (r *Run) FinishedAt() float64 { return r.endTime }

// Finished reports whether the run has fully completed.
func (r *Run) Finished() bool { return r.finished }

// Walltime returns the run's wall-clock duration, or NaN if unfinished.
func (r *Run) Walltime() float64 {
	if !r.finished {
		return math.NaN()
	}
	return r.endTime - r.started
}

// ProductFraction reports a product's consumed-input fraction in [0, 1],
// or -1 for an unknown product (or a simulation-only run).
func (r *Run) ProductFraction(name string) float64 {
	if r.engine == nil {
		return -1
	}
	return r.engine.ConsumedFraction(name)
}

// IncrementBytes returns the bytes appended to the named output file per
// increment of its active window (the increments covering its forecast
// day).
func (r *Run) IncrementBytes(name string) int64 { return r.incBytes[name] }

// TotalOutputBytes returns the exact total size the named output file will
// reach; both producer and (possibly remote) consumer derive totals from
// it.
func (r *Run) TotalOutputBytes(name string) int64 {
	return r.incBytes[name] * int64(r.incCount[name])
}

// Start begins executing the run. It panics on invalid configuration;
// runs are constructed by this library's planners from validated specs.
func Start(eng *sim.Engine, cfg Config) *Run {
	if cfg.Spec == nil {
		panic("workflow: Start with nil spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("workflow: %v", err))
	}
	if cfg.SimNode == nil || cfg.SimFS == nil {
		panic("workflow: Start needs a simulation node and filesystem")
	}
	if len(cfg.Spec.Products) > 0 && (cfg.ProductNode == nil || cfg.ProductFS == nil) {
		panic("workflow: Start needs a product node and filesystem")
	}
	if cfg.Increments <= 0 {
		cfg.Increments = DefaultIncrements
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.Dir == "" {
		panic("workflow: Start needs a run directory")
	}

	r := &Run{
		cfg:        cfg,
		eng:        eng,
		increments: cfg.Increments,
		incBytes:   make(map[string]int64),
		started:    eng.Now(),
		simFactor:  1,
		prodFactor: 1,
	}
	if len(cfg.Spec.Products) > 0 && cfg.ProductNode == cfg.SimNode {
		// §4.2: running the simulation and product generation at the same
		// node makes both slower (memory and CPU interference).
		r.simFactor = forecast.SimColocationSlowdown
		r.prodFactor = forecast.ProductColocationSlowdown
	}
	r.incCount = make(map[string]int, len(cfg.Spec.Outputs))
	for _, o := range cfg.Spec.Outputs {
		if o.Day > r.days {
			r.days = o.Day
		}
	}
	if r.days < 1 {
		r.days = 1
	}
	totalOut := cfg.Spec.OutputBytes()
	for _, o := range cfg.Spec.Outputs {
		count := 0
		for i := 1; i <= cfg.Increments; i++ {
			if r.incrementDay(i) == o.Day {
				count++
			}
		}
		if count == 0 {
			// Degenerate (more days than increments): fold the file into
			// the final increment.
			count = 1
		}
		r.incCount[o.Name] = count
		per := int64(math.Round(totalOut * o.Share / float64(count)))
		if per < 1 {
			per = 1
		}
		r.incBytes[o.Name] = per
	}
	if tel := cfg.Telemetry; tel != nil {
		reg := tel.Registry()
		reg.Describe("workflow_sim_increments_total", "Simulation output increments completed.")
		reg.Describe("workflow_sim_walltime_seconds", "Simulation phase walltime per run.")
		r.mIncrements = reg.Counter("workflow_sim_increments_total", telemetry.Labels{"forecast": cfg.Spec.Name})
		r.mSimWalltimes = reg.Histogram("workflow_sim_walltime_seconds", nil, nil)
		r.simSpan = tel.Trace().Begin("simulation", "sim:"+cfg.Spec.Name, cfg.SimNode.Name(), cfg.Span)
	}
	if len(cfg.Spec.Products) > 0 {
		totals := make(map[string]int64, len(cfg.Spec.Outputs))
		for _, o := range cfg.Spec.Outputs {
			totals[o.Name] = r.TotalOutputBytes(o.Name)
		}
		r.engine = StartProducts(eng, ProductConfig{
			Products:    cfg.Spec.Products,
			Dir:         cfg.Dir,
			Node:        cfg.ProductNode,
			FS:          cfg.ProductFS,
			InputTotals: totals,
			Workers:     cfg.Workers,
			Poll:        cfg.Poll,
			WorkFactor:  r.prodFactor,
			OnDone:      func() { r.checkDone() },
			Telemetry:   cfg.Telemetry,
			Span:        cfg.Span,
		})
	}

	r.submitIncrement()
	return r
}

// Abort cancels all in-flight work. The run never completes; OnDone is not
// called. Used when a forecast is dropped mid-flight.
func (r *Run) Abort() {
	if r.finished || r.aborted {
		return
	}
	r.aborted = true
	if r.simJob != nil && !r.simJob.Finished() {
		r.simJob.Cancel()
	}
	if r.engine != nil {
		r.engine.Abort()
	}
}

// Aborted reports whether the run was aborted.
func (r *Run) Aborted() bool { return r.aborted }

// submitIncrement runs the next simulation chunk.
func (r *Run) submitIncrement() {
	work := r.simFactor * r.cfg.Spec.SimWork() / float64(r.increments)
	label := fmt.Sprintf("sim:%s[%d/%d]", r.cfg.Spec.Name, r.incDone+1, r.increments)
	r.simJob = r.cfg.SimNode.Submit(label, work, r.incrementDone)
}

// incrementDay maps a 1-based increment index to the forecast day it
// simulates.
func (r *Run) incrementDay(i int) int {
	day := (i*r.days + r.increments - 1) / r.increments
	if day < 1 {
		day = 1
	}
	if day > r.days {
		day = r.days
	}
	return day
}

// incrementDone appends the increment's output bytes and continues.
func (r *Run) incrementDone() {
	if r.aborted {
		return
	}
	r.incDone++
	day := r.incrementDay(r.incDone)
	for _, o := range r.cfg.Spec.Outputs {
		grow := o.Day == day
		if r.incCount[o.Name] == 1 {
			// Degenerate fold-in: append once, on the final increment of
			// the file's day (or the run for out-of-range days).
			grow = r.incDone == r.increments
		}
		if !grow {
			continue
		}
		if err := r.cfg.SimFS.Append(r.OutputPath(o.Name), r.incBytes[o.Name]); err != nil {
			panic(fmt.Sprintf("workflow: append output: %v", err))
		}
	}
	r.mIncrements.Inc()
	if r.incDone < r.increments {
		r.submitIncrement()
		return
	}
	r.simEnd = r.eng.Now()
	r.simJob = nil
	r.simSpan.EndSpan()
	r.mSimWalltimes.Observe(r.simEnd - r.started)
	if r.cfg.OnSimDone != nil {
		r.cfg.OnSimDone(r)
	}
	r.checkDone()
}

// checkDone finishes the run when the simulation and every product are
// complete.
func (r *Run) checkDone() {
	if r.finished || r.aborted || r.incDone < r.increments {
		return
	}
	if r.engine != nil && !r.engine.Finished() {
		return
	}
	r.finished = true
	r.endTime = r.eng.Now()
	if r.cfg.OnDone != nil {
		r.cfg.OnDone(r)
	}
}
