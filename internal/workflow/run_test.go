package workflow

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/forecast"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// fixture builds a one-node cluster and filesystem for local runs.
func fixture() (*sim.Engine, *cluster.Node, *vfs.FS) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("node1", 2, 1.0)
	fs := vfs.New(e.Now)
	return e, n, fs
}

func localConfig(spec *forecast.Spec, n *cluster.Node, fs *vfs.FS) Config {
	return Config{
		Spec:        spec,
		Dir:         "/runs/" + spec.Name + "/day1",
		SimNode:     n,
		SimFS:       fs,
		ProductNode: n,
		ProductFS:   fs,
	}
}

func TestSimOnlyRunWalltimeEqualsSimWork(t *testing.T) {
	e, n, fs := fixture()
	spec := forecast.NewSpec("f", "r", 960, 10000, 1)
	spec.Products = nil // simulation only
	var done *Run
	cfg := localConfig(spec, n, fs)
	cfg.OnDone = func(r *Run) { done = r }
	r := Start(e, cfg)
	e.Run()
	if done != r || !r.Finished() {
		t.Fatal("run did not finish")
	}
	if math.Abs(r.Walltime()-spec.SimWork()) > 1e-6 {
		t.Fatalf("walltime = %v, want %v", r.Walltime(), spec.SimWork())
	}
	if r.SimFinishedAt() != r.FinishedAt() {
		t.Fatal("sim-only run should finish when the simulation does")
	}
}

func TestOutputFilesReachExactTotals(t *testing.T) {
	e, n, fs := fixture()
	spec := forecast.NewSpec("f", "r", 960, 10000, 0)
	r := Start(e, localConfig(spec, n, fs))
	e.Run()
	for _, o := range spec.Outputs {
		got := fs.Size(r.OutputPath(o.Name))
		want := r.TotalOutputBytes(o.Name)
		if got != want {
			t.Fatalf("output %s: size %d, want %d", o.Name, got, want)
		}
		// A two-day run writes each day's files over half the increments.
		if want != r.IncrementBytes(o.Name)*DefaultIncrements/2 {
			t.Fatalf("output %s: totals inconsistent", o.Name)
		}
	}
}

func TestDayOneOutputsCompleteMidRun(t *testing.T) {
	// Paper, Figure 6: 1_salt.63 (day-1 salinity) is fully written about
	// halfway through the run, well before 2_salt.63.
	e, n, fs := fixture()
	spec := forecast.NewSpec("f", "r", 960, 10000, 1)
	spec.Products = nil
	r := Start(e, localConfig(spec, n, fs))
	e.RunUntil(spec.SimWork() * 0.55)
	if got, want := fs.Size(r.OutputPath("1_salt.63")), r.TotalOutputBytes("1_salt.63"); got != want {
		t.Fatalf("1_salt.63 at 55%%: %d of %d", got, want)
	}
	if got, want := fs.Size(r.OutputPath("2_salt.63")), r.TotalOutputBytes("2_salt.63"); got >= want {
		t.Fatalf("2_salt.63 already complete at 55%%: %d of %d", got, want)
	}
	e.Run()
	if got, want := fs.Size(r.OutputPath("2_salt.63")), r.TotalOutputBytes("2_salt.63"); got != want {
		t.Fatalf("2_salt.63 final: %d of %d", got, want)
	}
}

func TestProductsCompleteAfterSim(t *testing.T) {
	e, n, fs := fixture()
	spec := forecast.NewSpec("f", "r", 960, 10000, 6)
	r := Start(e, localConfig(spec, n, fs))
	e.Run()
	if !r.Finished() {
		t.Fatal("run did not finish")
	}
	if r.FinishedAt() < r.SimFinishedAt() {
		t.Fatal("run finished before its simulation")
	}
	for _, p := range spec.Products {
		size := fs.Size(r.ProductPath(p.Name))
		if size <= 0 {
			t.Fatalf("product %s produced no data", p.Name)
		}
	}
	if fs.Size(r.ProcessDir()+"/master.out") <= 0 {
		t.Fatal("process directory empty")
	}
}

func TestProductsGeneratedIncrementally(t *testing.T) {
	// Initial data products must be available well before the run ends —
	// the incremental-delivery property the paper emphasizes.
	e, n, fs := fixture()
	spec := forecast.NewSpec("f", "r", 1920, 20000, 4)
	r := Start(e, localConfig(spec, n, fs))
	simTime := spec.SimWork()
	e.RunUntil(simTime / 2)
	var early int64
	for _, p := range spec.Products {
		early += fs.Size(r.ProductPath(p.Name))
	}
	if early <= 0 {
		t.Fatal("no product data midway through the run")
	}
	e.Run()
	var final int64
	for _, p := range spec.Products {
		final += fs.Size(r.ProductPath(p.Name))
	}
	if early >= final {
		t.Fatalf("products did not keep growing: early=%d final=%d", early, final)
	}
}

func TestDependentProductLagsItsDependency(t *testing.T) {
	e, n, fs := fixture()
	spec := forecast.NewSpec("f", "r", 1920, 20000, 12) // includes animations with deps
	var anim *forecast.ProductSpec
	for i := range spec.Products {
		if len(spec.Products[i].DependsOn) > 0 {
			anim = &spec.Products[i]
			break
		}
	}
	if anim == nil {
		t.Fatal("catalog has no dependent product")
	}
	r := Start(e, localConfig(spec, n, fs))
	// Check at several points that the dependent product's consumed
	// fraction never exceeds its dependencies'.
	check := func() {
		a := r.ProductFraction(anim.Name)
		for _, dep := range anim.DependsOn {
			d := r.ProductFraction(dep)
			if a > d+1e-9 {
				t.Errorf("dependent %s at %.3f ahead of dependency %s at %.3f",
					anim.Name, a, dep, d)
			}
		}
	}
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		e.RunUntil(spec.SimWork() * frac)
		check()
	}
	e.Run()
	if !r.Finished() {
		t.Fatal("run did not finish")
	}
}

func TestWalltimeNaNWhileRunning(t *testing.T) {
	e, n, fs := fixture()
	spec := forecast.NewSpec("f", "r", 960, 10000, 2)
	r := Start(e, localConfig(spec, n, fs))
	if !math.IsNaN(r.Walltime()) {
		t.Fatal("Walltime should be NaN before completion")
	}
	e.Run()
	if math.IsNaN(r.Walltime()) {
		t.Fatal("Walltime should be set after completion")
	}
}

func TestAbortStopsAllWork(t *testing.T) {
	e, n, fs := fixture()
	spec := forecast.NewSpec("f", "r", 960, 10000, 4)
	cfg := localConfig(spec, n, fs)
	cfg.OnDone = func(*Run) { t.Error("aborted run reported done") }
	r := Start(e, cfg)
	e.At(spec.SimWork()/4, func() { r.Abort() })
	e.Run()
	if !r.Aborted() || r.Finished() {
		t.Fatal("abort state wrong")
	}
	if n.Active() != 0 {
		t.Fatalf("node still has %d active jobs after abort", n.Active())
	}
	r.Abort() // idempotent
}

func TestTwoRunsOnOneNodeContend(t *testing.T) {
	// Two sim-only runs on a 1-CPU node take twice as long each.
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("n", 1, 1.0)
	fs := vfs.New(e.Now)
	spec1 := forecast.NewSpec("f1", "r", 960, 10000, 1)
	spec1.Products = nil
	spec2 := forecast.NewSpec("f2", "r", 960, 10000, 1)
	spec2.Products = nil
	cfg1 := localConfig(spec1, n, fs)
	cfg2 := localConfig(spec2, n, fs)
	r1 := Start(e, cfg1)
	r2 := Start(e, cfg2)
	e.Run()
	want := 2 * spec1.SimWork()
	if math.Abs(r1.Walltime()-want) > 1 || math.Abs(r2.Walltime()-want) > 1 {
		t.Fatalf("walltimes %v, %v; want ≈%v", r1.Walltime(), r2.Walltime(), want)
	}
}

func TestRemoteProductGeneration(t *testing.T) {
	// Architecture-2 shape: products run on a second node against a
	// separate filesystem. Without rsync the inputs never appear there,
	// so the products wait; after manually mirroring, they finish.
	e := sim.NewEngine()
	c := cluster.New(e)
	client := c.AddNode("client", 1, 1.0)
	server := c.AddNode("server", 1, 1.0)
	clientFS := vfs.New(e.Now)
	serverFS := vfs.New(e.Now)
	spec := forecast.NewSpec("f", "r", 960, 10000, 3)
	cfg := Config{
		Spec:        spec,
		Dir:         "/runs/f/day1",
		SimNode:     client,
		SimFS:       clientFS,
		ProductNode: server,
		ProductFS:   serverFS,
	}
	r := Start(e, cfg)
	e.RunUntil(spec.SimWork() + 1000)
	if r.Finished() {
		t.Fatal("run finished without inputs at the server")
	}
	// Mirror the outputs instantaneously, as if rsync had delivered them.
	for _, o := range spec.Outputs {
		if err := serverFS.Append(r.OutputPath(o.Name), r.TotalOutputBytes(o.Name)); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if !r.Finished() {
		t.Fatal("run did not finish after inputs arrived")
	}
	// Products were computed at the server.
	for _, p := range spec.Products {
		if serverFS.Size(r.ProductPath(p.Name)) <= 0 {
			t.Fatalf("product %s missing at server", p.Name)
		}
		if clientFS.Exists(r.ProductPath(p.Name)) {
			t.Fatalf("product %s wrongly at client", p.Name)
		}
	}
}

func TestInvalidConfigsPanic(t *testing.T) {
	e, n, fs := fixture()
	spec := forecast.NewSpec("f", "r", 960, 10000, 2)
	cases := []Config{
		{},
		{Spec: spec},
		{Spec: spec, SimNode: n},
		{Spec: spec, SimNode: n, SimFS: fs}, // products but no product node
		{Spec: spec, SimNode: n, SimFS: fs, ProductNode: n, ProductFS: fs},    // missing dir
		{Spec: &forecast.Spec{Name: "bad"}, SimNode: n, SimFS: fs, Dir: "/x"}, // invalid spec
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: Start did not panic", i)
				}
			}()
			Start(e, cfg)
		}()
	}
}

func TestWorkersLimitConcurrency(t *testing.T) {
	e, n, fs := fixture()
	spec := forecast.NewSpec("f", "r", 1920, 20000, 8)
	cfg := localConfig(spec, n, fs)
	cfg.Workers = 2
	Start(e, cfg)
	maxActive := 0
	for tm := 100.0; tm < spec.SimWork()*3; tm += 100 {
		e.RunUntil(tm)
		// Node active = sim (≤1) + product tasks (≤Workers).
		if a := n.Active(); a > maxActive {
			maxActive = a
		}
		if e.Pending() == 0 {
			break
		}
	}
	e.Run()
	if maxActive > 3 {
		t.Fatalf("max concurrent node jobs = %d, want ≤ 3 (sim + 2 workers)", maxActive)
	}
	if maxActive < 2 {
		t.Fatalf("max concurrent node jobs = %d; products never overlapped sim", maxActive)
	}
}
