package workflow

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTopoSortLinearChain(t *testing.T) {
	d := NewDAG()
	d.AddEdge("a", "b")
	d.AddEdge("b", "c")
	order, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a,b,c" {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoSortTieBreaksByName(t *testing.T) {
	d := NewDAG()
	d.AddNode("z")
	d.AddNode("a")
	d.AddNode("m")
	order, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a,m,z" {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoSortDiamond(t *testing.T) {
	d := NewDAG()
	d.AddEdge("root", "left")
	d.AddEdge("root", "right")
	d.AddEdge("left", "sink")
	d.AddEdge("right", "sink")
	order, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["root"] != 0 || pos["sink"] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestCycleDetected(t *testing.T) {
	d := NewDAG()
	d.AddEdge("a", "b")
	d.AddEdge("b", "c")
	d.AddEdge("c", "a")
	if err := d.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestSelfLoopDetected(t *testing.T) {
	d := NewDAG()
	d.AddEdge("a", "a")
	if err := d.Validate(); err == nil {
		t.Fatal("self-loop not detected")
	}
}

func TestDuplicateEdgesIgnored(t *testing.T) {
	d := NewDAG()
	d.AddEdge("a", "b")
	d.AddEdge("a", "b")
	if got := d.Preds("b"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Preds(b) = %v", got)
	}
}

func TestNodesSorted(t *testing.T) {
	d := NewDAG()
	d.AddEdge("b", "a")
	d.AddNode("c")
	if strings.Join(d.Nodes(), ",") != "a,b,c" {
		t.Fatalf("Nodes = %v", d.Nodes())
	}
}

// Property: a topological order places every node after all of its
// predecessors, for random DAGs built with forward edges only.
func TestPropertyTopoRespectsEdges(t *testing.T) {
	f := func(edges []uint16) bool {
		d := NewDAG()
		names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for _, e := range edges {
			u := int(e) % len(names)
			v := int(e>>4) % len(names)
			if u < v { // forward edges only → acyclic
				d.AddEdge(names[u], names[v])
			} else if u != v {
				d.AddNode(names[u])
			}
		}
		order, err := d.TopoSort()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, n := range order {
			pos[n] = i
		}
		for _, n := range d.Nodes() {
			for _, p := range d.Preds(n) {
				if pos[p] >= pos[n] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
