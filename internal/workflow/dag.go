// Package workflow executes a single forecast product run: the numerical
// simulation producing model outputs incrementally, and the master process
// that launches product-generation tasks as new model data appears
// (§2.2 of the paper).
//
// It also provides a small generic DAG utility used to validate product
// dependency graphs and compute topological orders.
package workflow

import (
	"fmt"
	"sort"
)

// DAG is a directed acyclic graph over string-named nodes. Edges point
// from a dependency to its dependents (u must complete before v).
type DAG struct {
	nodes map[string]bool
	succ  map[string][]string
	pred  map[string][]string
}

// NewDAG creates an empty DAG.
func NewDAG() *DAG {
	return &DAG{
		nodes: make(map[string]bool),
		succ:  make(map[string][]string),
		pred:  make(map[string][]string),
	}
}

// AddNode adds a node; adding an existing node is a no-op.
func (d *DAG) AddNode(name string) {
	d.nodes[name] = true
}

// AddEdge adds a dependency edge from u to v (u before v), creating the
// nodes as needed. Duplicate edges are ignored.
func (d *DAG) AddEdge(u, v string) {
	d.AddNode(u)
	d.AddNode(v)
	for _, existing := range d.succ[u] {
		if existing == v {
			return
		}
	}
	d.succ[u] = append(d.succ[u], v)
	d.pred[v] = append(d.pred[v], u)
}

// Nodes returns all node names, sorted.
func (d *DAG) Nodes() []string {
	out := make([]string, 0, len(d.nodes))
	for n := range d.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Preds returns the dependencies of a node, sorted.
func (d *DAG) Preds(name string) []string {
	out := append([]string(nil), d.pred[name]...)
	sort.Strings(out)
	return out
}

// TopoSort returns a topological order, breaking ties by name so the
// result is deterministic. It returns an error naming a cycle member if
// the graph has a cycle.
func (d *DAG) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(d.nodes))
	for n := range d.nodes {
		indeg[n] = len(d.pred[n])
	}
	var ready []string
	for n, deg := range indeg {
		if deg == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		var unlocked []string
		for _, m := range d.succ[n] {
			indeg[m]--
			if indeg[m] == 0 {
				unlocked = append(unlocked, m)
			}
		}
		sort.Strings(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(order) != len(d.nodes) {
		for n, deg := range indeg {
			if deg > 0 {
				return nil, fmt.Errorf("workflow: dependency cycle involving %q", n)
			}
		}
	}
	return order, nil
}

// mergeSorted merges two sorted string slices.
func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Validate reports the first cycle error, or nil for a valid DAG.
func (d *DAG) Validate() error {
	_, err := d.TopoSort()
	return err
}
