package workflow

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/forecast"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Property: byte conservation. For random forecast shapes, the completed
// run's filesystem holds exactly the declared output totals, and each
// product's bytes equal its class ratio × scale × consumed input (within
// per-task rounding).
func TestPropertyRunByteConservation(t *testing.T) {
	f := func(tsRaw, sidesRaw uint16, prodRaw, incrRaw uint8) bool {
		ts := int(tsRaw%2000) + 200
		sides := int(sidesRaw%20000) + 2000
		nProducts := int(prodRaw%12) + 1
		increments := int(incrRaw%60) + 12

		e := sim.NewEngine()
		c := cluster.New(e)
		n := c.AddNode("n", 2, 1.0)
		fs := vfs.New(e.Now)
		spec := forecast.NewSpec("f", "r", ts, sides, nProducts)
		cfg := Config{
			Spec:        spec,
			Dir:         "/runs/f/d",
			SimNode:     n,
			SimFS:       fs,
			ProductNode: n,
			ProductFS:   fs,
			Increments:  increments,
		}
		r := Start(e, cfg)
		e.Run()
		if !r.Finished() {
			t.Logf("run did not finish (ts=%d sides=%d products=%d incr=%d)", ts, sides, nProducts, increments)
			return false
		}
		// Output totals are exact.
		for _, o := range spec.Outputs {
			if fs.Size(r.OutputPath(o.Name)) != r.TotalOutputBytes(o.Name) {
				t.Logf("output %s: %d != %d", o.Name, fs.Size(r.OutputPath(o.Name)), r.TotalOutputBytes(o.Name))
				return false
			}
		}
		// Product bytes match ratio × consumed input, within one rounding
		// unit per product task (bounded by number of tasks ≈ increments ×
		// products; use a generous 0.5 byte per possible task).
		for _, p := range spec.Products {
			var totalIn float64
			for _, in := range p.Inputs {
				totalIn += float64(r.TotalOutputBytes(in))
			}
			_, ratio := p.Class.Profile()
			want := ratio * p.Scale * totalIn
			got := float64(fs.Size(r.ProductPath(p.Name)))
			slack := 0.5*float64(increments) + 2
			if math.Abs(got-want) > slack {
				t.Logf("product %s: got %v, want %v ± %v", p.Name, got, want, slack)
				return false
			}
			// Every product fully consumed its input.
			if frac := r.ProductFraction(p.Name); math.Abs(frac-1) > 1e-6 {
				t.Logf("product %s consumed fraction %v", p.Name, frac)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: run walltime is invariant to the increment count for
// simulation-only runs (chunking is an implementation detail, not a
// workload change).
func TestPropertyWalltimeInvariantToIncrements(t *testing.T) {
	f := func(incrRaw uint8) bool {
		increments := int(incrRaw%90) + 6
		e := sim.NewEngine()
		c := cluster.New(e)
		n := c.AddNode("n", 2, 1.0)
		fs := vfs.New(e.Now)
		spec := forecast.NewSpec("f", "r", 960, 10000, 1)
		spec.Products = nil
		cfg := Config{
			Spec: spec, Dir: "/runs/f/d",
			SimNode: n, SimFS: fs,
			Increments: increments,
		}
		r := Start(e, cfg)
		e.Run()
		return math.Abs(r.Walltime()-spec.SimWork()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
