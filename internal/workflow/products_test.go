package workflow

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/forecast"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func engineFixture() (*sim.Engine, *cluster.Node, *vfs.FS) {
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("server", 1, 1.0)
	fs := vfs.New(e.Now)
	return e, n, fs
}

func TestProductEngineStandalone(t *testing.T) {
	e, n, fs := engineFixture()
	spec := forecast.NewSpec("f", "r", 960, 10000, 3)
	totals := map[string]int64{}
	for _, o := range spec.Outputs {
		totals[o.Name] = int64(spec.OutputBytes() * o.Share)
	}
	var doneAt float64
	pe := StartProducts(e, ProductConfig{
		Products:    spec.Products,
		Dir:         "/runs/f/d",
		Node:        n,
		FS:          fs,
		InputTotals: totals,
		OnDone:      func() { doneAt = e.Now() },
	})
	// Inputs appear all at once (as if rsync'd in one burst).
	for name, total := range totals {
		if err := fs.Append("/runs/f/d/outputs/"+name, total); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntil(7 * 86400)
	if !pe.Finished() || doneAt <= 0 || pe.FinishedAt() != doneAt {
		t.Fatalf("engine finished=%v doneAt=%v finishedAt=%v", pe.Finished(), doneAt, pe.FinishedAt())
	}
	for _, p := range spec.Products {
		if fs.Size(pe.ProductPath(p.Name)) <= 0 {
			t.Fatalf("product %s empty", p.Name)
		}
		if f := pe.ConsumedFraction(p.Name); f != 1 {
			t.Fatalf("product %s fraction %v", p.Name, f)
		}
	}
	if pe.ConsumedFraction("nope") != -1 {
		t.Fatal("unknown product should report -1")
	}
}

func TestProductEngineEmptyCatalogFinishesImmediately(t *testing.T) {
	e, n, fs := engineFixture()
	done := false
	pe := StartProducts(e, ProductConfig{
		Dir:    "/runs/f/d",
		Node:   n,
		FS:     fs,
		OnDone: func() { done = true },
	})
	if !pe.Finished() || !done {
		t.Fatal("empty catalog should finish at start")
	}
}

func TestProductEngineAbort(t *testing.T) {
	e, n, fs := engineFixture()
	spec := forecast.NewSpec("f", "r", 960, 10000, 2)
	totals := map[string]int64{}
	for _, o := range spec.Outputs {
		totals[o.Name] = 1000
		_ = fs.Append("/runs/f/d/outputs/"+o.Name, 1000)
	}
	pe := StartProducts(e, ProductConfig{
		Products:    spec.Products,
		Dir:         "/runs/f/d",
		Node:        n,
		FS:          fs,
		InputTotals: totals,
		OnDone:      func() { t.Error("aborted engine reported done") },
	})
	e.At(30, func() { pe.Abort() })
	e.RunUntil(86400)
	if pe.Finished() {
		t.Fatal("aborted engine finished")
	}
	pe.Abort() // idempotent
}

func TestProductEnginePanicsOnBadConfig(t *testing.T) {
	e, n, fs := engineFixture()
	spec := forecast.NewSpec("f", "r", 960, 10000, 1)
	cases := []ProductConfig{
		{Products: spec.Products, Dir: "/d", FS: fs},          // no node
		{Products: spec.Products, Dir: "/d", Node: n},         // no fs
		{Products: spec.Products, Node: n, FS: fs},            // no dir
		{Products: spec.Products, Dir: "/d", Node: n, FS: fs}, // no totals
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: StartProducts did not panic", i)
				}
			}()
			StartProducts(e, cfg)
		}()
	}
}
