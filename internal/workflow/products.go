package workflow

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/forecast"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// ProductConfig drives a standalone product engine: the master process of
// Figure 4/5, decoupled from the simulation so product generation can run
// at the compute node, at the public server, or partitioned across
// several secondary nodes (the §2.2 option the paper plans to revisit).
type ProductConfig struct {
	// Products is the (subset of the) catalog this engine computes.
	Products []forecast.ProductSpec
	// Dir is the run directory whose outputs/ the engine watches and
	// whose products/ and process/ it writes.
	Dir string
	// Node executes the product tasks; FS is where inputs are observed
	// and products written.
	Node *cluster.Node
	FS   *vfs.FS
	// InputTotals gives the exact final size of each model-output file
	// (by file name), so the engine knows when a product has consumed
	// everything.
	InputTotals map[string]int64
	Workers     int
	Poll        float64
	// WorkFactor scales product task cost (co-location interference).
	WorkFactor float64
	OnDone     func()

	// Telemetry, when non-nil, receives master-process metrics and
	// product-task spans, nested under Span.
	Telemetry *telemetry.Telemetry
	Span      *telemetry.Span
}

// ProductEngine incrementally computes data products as model-output
// bytes appear in its filesystem.
type ProductEngine struct {
	cfg       ProductConfig
	eng       *sim.Engine
	sched     sim.Scope // poll timers, labeled "workflow" for the kernel profiler
	products  []*productState
	byName    map[string]*productState
	active    int
	rrCursor  int
	pollTimer sim.Timer
	finished  bool
	aborted   bool
	endTime   float64

	depthPolls int // saturated polls since the last backlog scan

	mPolls      *telemetry.Counter
	mQueueDepth *telemetry.Gauge
	mActive     *telemetry.Gauge
}

// StartProducts launches a product engine. It panics on invalid
// configuration.
func StartProducts(eng *sim.Engine, cfg ProductConfig) *ProductEngine {
	if cfg.Node == nil || cfg.FS == nil {
		panic("workflow: StartProducts needs a node and filesystem")
	}
	if cfg.Dir == "" {
		panic("workflow: StartProducts needs a run directory")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.WorkFactor <= 0 {
		cfg.WorkFactor = 1
	}
	p := &ProductEngine{
		cfg:    cfg,
		eng:    eng,
		sched:  eng.Scope("workflow"),
		byName: make(map[string]*productState, len(cfg.Products)),
	}
	reg := cfg.Telemetry.Registry()
	if reg != nil {
		reg.Describe("workflow_master_polls_total", "Master-process scans for new model output.")
		reg.Describe("workflow_product_tasks_total", "Product tasks dispatched, by product class.")
		reg.Describe("workflow_product_queue_depth", "Products with pending input bytes awaiting a worker (sampled).")
		reg.Describe("workflow_product_active_tasks", "Product tasks currently executing.")
		p.mPolls = reg.Counter("workflow_master_polls_total", nil)
		p.mQueueDepth = reg.Gauge("workflow_product_queue_depth", nil)
		p.mActive = reg.Gauge("workflow_product_active_tasks", nil)
	}
	for _, spec := range cfg.Products {
		st := &productState{spec: spec, taskName: "prod:" + spec.Name}
		if reg != nil {
			st.mTasks = reg.Counter("workflow_product_tasks_total",
				telemetry.Labels{"class": spec.Class.String()})
		}
		for _, in := range spec.Inputs {
			total, ok := cfg.InputTotals[in]
			if !ok {
				panic(fmt.Sprintf("workflow: product %q reads %q with unknown total", spec.Name, in))
			}
			st.totalIn += float64(total)
		}
		p.products = append(p.products, st)
		p.byName[spec.Name] = st
	}
	if len(p.products) == 0 {
		p.finish()
		return p
	}
	p.pollTimer = p.sched.After(cfg.Poll, p.poll)
	return p
}

// Finished reports whether every product is complete.
func (p *ProductEngine) Finished() bool { return p.finished }

// FinishedAt returns the completion time (0 if unfinished).
func (p *ProductEngine) FinishedAt() float64 { return p.endTime }

// Abort cancels future work; OnDone is not called.
func (p *ProductEngine) Abort() {
	if p.finished || p.aborted {
		return
	}
	p.aborted = true
	if p.pollTimer.Active() {
		p.pollTimer.Cancel()
		p.pollTimer = sim.Timer{}
	}
}

// OutputPath returns a model-output path in the engine's run directory.
func (p *ProductEngine) OutputPath(name string) string {
	return p.cfg.Dir + "/outputs/" + name
}

// ProductPath returns a product's data path.
func (p *ProductEngine) ProductPath(name string) string {
	return p.cfg.Dir + "/products/" + name + "/data"
}

// processPath is the master process's log file.
func (p *ProductEngine) processPath() string { return p.cfg.Dir + "/process/master.out" }

// ConsumedFraction reports the named product's progress in [0, 1], or -1
// for an unknown product.
func (p *ProductEngine) ConsumedFraction(name string) float64 {
	st, ok := p.byName[name]
	if !ok {
		return -1
	}
	return st.consumedFraction()
}

// availableFraction returns how much of a product's total input is ready
// to process. A product reading several model-output files consumes each
// file's increments independently (day-1 salinity is processed while
// day-2 is still being simulated), so availability aggregates bytes
// across inputs; dependencies gate the whole product.
func (p *ProductEngine) availableFraction(st *productState) float64 {
	frac := 1.0
	if len(st.spec.Inputs) > 0 {
		var avail, total float64
		for _, in := range st.spec.Inputs {
			t := float64(p.cfg.InputTotals[in])
			a := float64(p.cfg.FS.Size(p.OutputPath(in)))
			if a > t {
				a = t
			}
			avail += a
			total += t
		}
		if total > 0 {
			frac = avail / total
		}
	}
	for _, dep := range st.spec.DependsOn {
		d, ok := p.byName[dep]
		if !ok {
			// Dependency computed by another partition: no local gating.
			continue
		}
		if f := d.consumedFraction(); f < frac {
			frac = f
		}
	}
	return frac
}

func (p *ProductEngine) poll() {
	p.pollTimer = sim.Timer{}
	if p.aborted || p.finished {
		return
	}
	p.mPolls.Inc()
	p.dispatch()
	p.updateQueueDepth()
	if !p.finished && !p.aborted {
		p.pollTimer = p.sched.After(p.cfg.Poll, p.poll)
	}
}

// queueDepthEvery throttles the backlog scan while workers are
// saturated. The gauge is a sampled instrument, so re-counting input
// availability on every 16th poll (~16 sim-minutes at the default poll
// interval) keeps it fresh enough without re-scanning the filesystem on
// every poll the way dispatch already had to.
const queueDepthEvery = 16

// updateQueueDepth records how many products have input ready but no
// worker — the master process's backlog.
func (p *ProductEngine) updateQueueDepth() {
	if p.mQueueDepth == nil {
		return
	}
	// dispatch just ran: if a worker is still idle, it exhausted a full
	// scan without finding pending input, so the backlog is exactly zero
	// and no availability re-scan is needed.
	if p.active < p.cfg.Workers {
		p.mQueueDepth.Set(0)
		return
	}
	p.depthPolls++
	if p.depthPolls%queueDepthEvery != 0 {
		return
	}
	depth := 0
	for _, st := range p.products {
		if st.active {
			continue
		}
		if p.availableFraction(st)*st.totalIn-st.consumed > 1 {
			depth++
		}
	}
	p.mQueueDepth.Set(float64(depth))
}

func (p *ProductEngine) dispatch() {
	n := len(p.products)
	for p.active < p.cfg.Workers {
		dispatched := false
		for i := 0; i < n; i++ {
			st := p.products[(p.rrCursor+i)%n]
			if st.active {
				continue
			}
			avail := p.availableFraction(st) * st.totalIn
			pending := avail - st.consumed
			if pending <= 1 {
				continue
			}
			p.rrCursor = (p.rrCursor + i + 1) % n
			p.startTask(st, pending)
			dispatched = true
			break
		}
		if !dispatched {
			return
		}
	}
}

func (p *ProductEngine) startTask(st *productState, bytes float64) {
	cpuPerMB, ratio := st.spec.Class.Profile()
	work := p.cfg.WorkFactor * cpuPerMB * st.spec.Scale * bytes / 1e6
	st.active = true
	st.dispatched = bytes
	p.active++
	p.mActive.Set(float64(p.active))
	// Per-task span args (e.g. the byte count) are deliberately omitted:
	// a campaign dispatches thousands of product tasks and a map
	// allocation per span is measurable against the telemetry overhead
	// budget. Aggregate byte counts live in the metrics registry instead.
	var span *telemetry.Span
	if tel := p.cfg.Telemetry; tel != nil {
		st.mTasks.Inc()
		span = tel.Trace().Begin("product", st.taskName, p.cfg.Node.Name(), p.cfg.Span)
	}
	p.cfg.Node.Submit(st.taskName, work, func() {
		if p.aborted {
			return
		}
		span.EndSpan()
		st.active = false
		st.consumed += st.dispatched
		p.active--
		p.mActive.Set(float64(p.active))
		outBytes := int64(math.Round(ratio * st.spec.Scale * st.dispatched))
		if outBytes > 0 {
			st.outWritten += outBytes
			if err := p.cfg.FS.Append(p.ProductPath(st.spec.Name), outBytes); err != nil {
				panic(fmt.Sprintf("workflow: append product: %v", err))
			}
		}
		if err := p.cfg.FS.Append(p.processPath(), 4096); err != nil {
			panic(fmt.Sprintf("workflow: append process log: %v", err))
		}
		st.dispatched = 0
		p.dispatch()
		p.checkDone()
	})
}

func (p *ProductEngine) checkDone() {
	if p.finished || p.aborted {
		return
	}
	for _, st := range p.products {
		if st.active || st.totalIn-st.consumed > 1 {
			return
		}
	}
	p.finish()
}

func (p *ProductEngine) finish() {
	p.finished = true
	p.endTime = p.eng.Now()
	if p.pollTimer.Active() {
		p.pollTimer.Cancel()
		p.pollTimer = sim.Timer{}
	}
	if p.cfg.OnDone != nil {
		p.cfg.OnDone()
	}
}
