// Package ps implements a fair-share ("processor sharing") resource on top
// of the discrete-event engine.
//
// A Resource has a total capacity C (work units per second) and a per-task
// cap M. When k tasks are active, each progresses at rate min(M, C/k).
// This single abstraction models both the paper's CPU-sharing assumption
// (§4.1: k serial forecast runs on a node with c CPUs of speed s each
// receive s·min(1, c/k) of a CPU) and a shared network link (capacity =
// bandwidth, cap = bandwidth).
//
// Whenever the set of active tasks changes, the resource settles every
// task's remaining work exactly (no numerical drift beyond float64
// arithmetic) and re-times its completion event.
package ps

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Resource is a fair-share resource. Create one with NewResource.
type Resource struct {
	eng      *sim.Engine
	sched    sim.Scope // completion events, labeled "ps" for the kernel profiler
	name     string
	capacity float64
	taskCap  float64
	tasks    map[*Task]struct{}
	frozen   bool  // when true (resource down), tasks make no progress
	taskSeq  int64 // monotonically identifies tasks for deterministic ordering

	// busyIntegral accumulates ∫ rate_total dt for utilization accounting.
	// totalRate caches Σ task rates, maintained by retimeAll, so settling
	// the integral is O(1) — callers like the usage sampler settle on
	// every timeline tick.
	busyIntegral float64
	lastAccount  float64
	totalRate    float64
}

// NewResource creates a fair-share resource. capacity is the aggregate rate
// (work units per second) and taskCap is the maximum rate a single task may
// consume. Both must be positive.
func NewResource(eng *sim.Engine, name string, capacity, taskCap float64) *Resource {
	if capacity <= 0 || taskCap <= 0 {
		panic(fmt.Sprintf("ps: resource %q needs positive capacity (%v) and task cap (%v)", name, capacity, taskCap))
	}
	return &Resource{
		eng:      eng,
		sched:    eng.Scope("ps"),
		name:     name,
		capacity: capacity,
		taskCap:  taskCap,
		tasks:    make(map[*Task]struct{}),
	}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the aggregate capacity in work units per second.
func (r *Resource) Capacity() float64 { return r.capacity }

// TaskCap returns the per-task rate cap.
func (r *Resource) TaskCap() float64 { return r.taskCap }

// Active returns the number of tasks currently sharing the resource.
func (r *Resource) Active() int { return len(r.tasks) }

// Frozen reports whether the resource is frozen (e.g. node down).
func (r *Resource) Frozen() bool { return r.frozen }

// rate returns the uniform per-task rate for k active tasks with the
// default cap (used for utilization accounting fast paths).
func (r *Resource) rate(k int) float64 {
	if k == 0 || r.frozen {
		return 0
	}
	return math.Min(r.taskCap, r.capacity/float64(k))
}

// waterFill computes the max-min fair allocation of the resource's
// capacity among tasks with per-task caps ("mega-jobs" spanning multiple
// CPUs get a larger cap — the extension footnote 1 of the paper
// anticipates). Tasks are filled lowest-cap first: each takes
// min(cap, remaining/left); leftovers flow to tasks that can use them.
func (r *Resource) waterFill(tasks []*Task) {
	if r.frozen {
		for _, t := range tasks {
			t.rate = 0
		}
		return
	}
	sorted := append([]*Task(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].cap != sorted[j].cap {
			return sorted[i].cap < sorted[j].cap
		}
		return sorted[i].seq < sorted[j].seq
	})
	remaining := r.capacity
	for i, t := range sorted {
		share := remaining / float64(len(sorted)-i)
		t.rate = math.Min(t.cap, share)
		remaining -= t.rate
	}
}

// Task is one unit of work executing on a Resource.
type Task struct {
	res       *Resource
	seq       int64 // submission order, for deterministic scheduling
	remaining float64
	rate      float64
	cap       float64 // per-task rate cap (default: the resource's)
	settled   float64 // virtual time remaining was last brought up to date
	timer     sim.Timer
	done      func()
	label     string
	started   float64
	finished  bool
	cancelled bool
}

// Submit adds a task with the given amount of work (in work units). done is
// invoked (may be nil) when the work completes. The label is diagnostic.
func (r *Resource) Submit(label string, work float64, done func()) *Task {
	return r.SubmitCapped(label, work, r.taskCap, done)
}

// SubmitCapped adds a task with its own rate cap, overriding the
// resource's default. A cap above the default models a parallel job that
// can consume several CPUs at once; the cap is clamped to the resource's
// total capacity.
func (r *Resource) SubmitCapped(label string, work, cap float64, done func()) *Task {
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("ps: task %q submitted with invalid work %v", label, work))
	}
	if cap <= 0 || math.IsNaN(cap) {
		panic(fmt.Sprintf("ps: task %q submitted with invalid cap %v", label, cap))
	}
	if cap > r.capacity {
		cap = r.capacity
	}
	r.taskSeq++
	t := &Task{
		res:       r,
		seq:       r.taskSeq,
		remaining: work,
		cap:       cap,
		settled:   r.eng.Now(),
		done:      done,
		label:     label,
		started:   r.eng.Now(),
	}
	r.settleAll()
	r.tasks[t] = struct{}{}
	r.retimeAll()
	return t
}

// Label returns the task's diagnostic label.
func (t *Task) Label() string { return t.label }

// Cap returns the task's rate cap.
func (t *Task) Cap() float64 { return t.cap }

// Rate returns the task's current progress rate.
func (t *Task) Rate() float64 { return t.rate }

// Started returns the virtual time the task was submitted.
func (t *Task) Started() float64 { return t.started }

// Finished reports whether the task has completed.
func (t *Task) Finished() bool { return t.finished }

// Cancelled reports whether the task was cancelled before completion.
func (t *Task) Cancelled() bool { return t.cancelled }

// Remaining returns the work left, settling progress up to the current time.
func (t *Task) Remaining() float64 {
	if t.finished || t.cancelled {
		return 0
	}
	now := t.res.eng.Now()
	return t.remaining - t.rate*(now-t.settled)
}

// AddWork increases the task's remaining work by extra units. This supports
// incremental workloads (a product task given a new data increment).
func (t *Task) AddWork(extra float64) {
	if extra < 0 {
		panic(fmt.Sprintf("ps: AddWork(%v) on task %q", extra, t.label))
	}
	if t.finished || t.cancelled {
		panic(fmt.Sprintf("ps: AddWork on finished/cancelled task %q", t.label))
	}
	r := t.res
	r.settleAll()
	t.remaining += extra
	r.retimeAll()
}

// Cancel removes the task from the resource without running its completion
// callback. Cancelling a finished or already-cancelled task is a no-op.
func (t *Task) Cancel() {
	if t.finished || t.cancelled {
		return
	}
	r := t.res
	r.settleAll()
	t.cancelled = true
	t.timer.Cancel()
	t.timer = sim.Timer{}
	delete(r.tasks, t)
	r.retimeAll()
}

// Freeze stops all progress on the resource (models a node going down while
// keeping its work queue intact). Tasks resume from their exact remaining
// work on Thaw.
func (r *Resource) Freeze() {
	if r.frozen {
		return
	}
	r.settleAll()
	r.frozen = true
	r.retimeAll()
}

// Thaw resumes a frozen resource.
func (r *Resource) Thaw() {
	if !r.frozen {
		return
	}
	r.settleAll()
	r.frozen = false
	r.retimeAll()
}

// SetCapacity changes the aggregate capacity (e.g. node speed change after
// a hardware upgrade) effective immediately. Per-task caps of running
// tasks scale by the taskCap ratio, so a serial task on an upgraded node
// speeds up like a freshly submitted one.
func (r *Resource) SetCapacity(capacity, taskCap float64) {
	if capacity <= 0 || taskCap <= 0 {
		panic(fmt.Sprintf("ps: SetCapacity(%v, %v) on %q", capacity, taskCap, r.name))
	}
	r.settleAll()
	ratio := taskCap / r.taskCap
	for t := range r.tasks {
		t.cap = math.Min(t.cap*ratio, capacity)
	}
	r.capacity = capacity
	r.taskCap = taskCap
	r.retimeAll()
}

// BusySeconds returns the accumulated capacity-seconds consumed so far
// (∫ total rate dt), settled to the current time. Dividing by
// capacity × elapsed gives utilization.
func (r *Resource) BusySeconds() float64 {
	r.accountTo(r.eng.Now())
	return r.busyIntegral
}

func (r *Resource) accountTo(now float64) {
	dt := now - r.lastAccount
	if dt > 0 {
		r.busyIntegral += r.totalRate * dt
	}
	r.lastAccount = now
}

// settleAll brings every task's remaining work up to the current instant.
func (r *Resource) settleAll() {
	now := r.eng.Now()
	r.accountTo(now)
	for t := range r.tasks {
		dt := now - t.settled
		if dt > 0 {
			t.remaining -= t.rate * dt
			if t.remaining < 0 {
				// Guard against float rounding; the completion event fires
				// the callback, so a tiny negative here is only cosmetic.
				t.remaining = 0
			}
		}
		t.settled = now
	}
}

// retimeAll recomputes every task's rate and completion timer. Must be
// called with all tasks settled to Now.
func (r *Resource) retimeAll() {
	now := r.eng.Now()
	tasks := make([]*Task, 0, len(r.tasks))
	for t := range r.tasks {
		tasks = append(tasks, t)
	}
	// Stable order: map iteration must not influence timer scheduling
	// (ties at the same instant fire in submission order).
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].seq < tasks[j].seq })
	r.waterFill(tasks)
	r.totalRate = 0
	for _, t := range tasks {
		r.totalRate += t.rate
	}
	for _, t := range tasks {
		t.timer.Cancel()
		t.timer = sim.Timer{}
		if t.rate <= 0 {
			continue // frozen: no completion until thawed
		}
		eta := now + t.remaining/t.rate
		tt := t
		t.timer = r.sched.At(eta, func() { r.complete(tt) })
	}
}

// complete finishes a task whose completion event fired.
func (r *Resource) complete(t *Task) {
	r.settleAll()
	t.finished = true
	t.remaining = 0
	t.timer = sim.Timer{}
	delete(r.tasks, t)
	r.retimeAll()
	if t.done != nil {
		t.done()
	}
}
