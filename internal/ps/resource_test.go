package ps

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

const eps = 1e-6

func almost(a, b float64) bool { return math.Abs(a-b) < eps }

func TestSingleTaskRunsAtCap(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 2.0, 1.0) // 2 CPUs, serial task
	var doneAt float64
	r.Submit("job", 100, func() { doneAt = e.Now() })
	e.Run()
	if !almost(doneAt, 100) {
		t.Fatalf("single serial task on 2-CPU node finished at %v, want 100", doneAt)
	}
}

func TestTwoTasksOnTwoCPUsDoNotInterfere(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 2.0, 1.0)
	var t1, t2 float64
	r.Submit("a", 100, func() { t1 = e.Now() })
	r.Submit("b", 50, func() { t2 = e.Now() })
	e.Run()
	if !almost(t1, 100) || !almost(t2, 50) {
		t.Fatalf("finish times %v, %v; want 100, 50", t1, t2)
	}
}

func TestThreeTasksShareTwoCPUs(t *testing.T) {
	// Paper §4.1: three forecasts on a 2-CPU node each get 2/3 of a CPU.
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 2.0, 1.0)
	var finish []float64
	for i := 0; i < 3; i++ {
		r.Submit("job", 100, func() { finish = append(finish, e.Now()) })
	}
	e.Run()
	// All three progress at 2/3; they finish together at 150.
	for _, f := range finish {
		if !almost(f, 150) {
			t.Fatalf("finish times %v, want all 150", finish)
		}
	}
}

func TestDepartureSpeedsUpRemainder(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1.0, 1.0) // 1 CPU
	var tShort, tLong float64
	r.Submit("short", 10, func() { tShort = e.Now() })
	r.Submit("long", 30, func() { tLong = e.Now() })
	e.Run()
	// Both at rate 1/2 until short finishes: short needs 20s.
	// Long then has 30-10=20 left at rate 1: finishes at 40.
	if !almost(tShort, 20) {
		t.Fatalf("short finished at %v, want 20", tShort)
	}
	if !almost(tLong, 40) {
		t.Fatalf("long finished at %v, want 40", tLong)
	}
}

func TestLateArrivalSlowsExisting(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1.0, 1.0)
	var tA float64
	r.Submit("a", 100, func() { tA = e.Now() })
	e.At(50, func() {
		r.Submit("b", 100, nil)
	})
	e.Run()
	// a runs alone for 50s (50 done), then shares: 50 left at rate 1/2 = 100s more.
	if !almost(tA, 150) {
		t.Fatalf("a finished at %v, want 150", tA)
	}
}

func TestRemainingSettlesMidFlight(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1.0, 1.0)
	task := r.Submit("a", 100, nil)
	e.At(30, func() {
		if !almost(task.Remaining(), 70) {
			t.Errorf("Remaining at t=30 is %v, want 70", task.Remaining())
		}
	})
	e.Run()
	if task.Remaining() != 0 {
		t.Fatalf("Remaining after finish = %v, want 0", task.Remaining())
	}
	if !task.Finished() {
		t.Fatal("task should be finished")
	}
}

func TestCancelRemovesTask(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1.0, 1.0)
	var aDone, bDone float64
	a := r.Submit("a", 100, func() { aDone = e.Now() })
	r.Submit("b", 100, func() { bDone = e.Now() })
	e.At(20, func() { a.Cancel() })
	e.Run()
	if aDone != 0 {
		t.Fatal("cancelled task ran its done callback")
	}
	if !a.Cancelled() {
		t.Fatal("task should report cancelled")
	}
	// b: 20s at 1/2 (10 done), then alone: 90 left at rate 1 → 110.
	if !almost(bDone, 110) {
		t.Fatalf("b finished at %v, want 110", bDone)
	}
	// Cancelling again is a no-op.
	a.Cancel()
}

func TestAddWorkExtendsTask(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1.0, 1.0)
	var done float64
	task := r.Submit("a", 50, func() { done = e.Now() })
	e.At(20, func() { task.AddWork(30) })
	e.Run()
	if !almost(done, 80) {
		t.Fatalf("task finished at %v, want 80", done)
	}
}

func TestFreezeAndThaw(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1.0, 1.0)
	var done float64
	r.Submit("a", 100, func() { done = e.Now() })
	e.At(30, func() { r.Freeze() })
	e.At(80, func() { r.Thaw() })
	e.Run()
	// 30s of work, 50s frozen, 70s more work: finishes at 150.
	if !almost(done, 150) {
		t.Fatalf("task finished at %v, want 150", done)
	}
}

func TestSubmitWhileFrozenWaits(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1.0, 1.0)
	r.Freeze()
	var done float64
	r.Submit("a", 10, func() { done = e.Now() })
	e.At(100, func() { r.Thaw() })
	e.Run()
	if !almost(done, 110) {
		t.Fatalf("task finished at %v, want 110", done)
	}
}

func TestSetCapacityRescales(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1.0, 1.0)
	var done float64
	r.Submit("a", 100, func() { done = e.Now() })
	e.At(50, func() { r.SetCapacity(2.0, 2.0) }) // node upgraded to 2× speed
	e.Run()
	// 50 done at rate 1, 50 left at rate 2 → finishes at 75.
	if !almost(done, 75) {
		t.Fatalf("task finished at %v, want 75", done)
	}
}

func TestZeroWorkTaskCompletesImmediately(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1.0, 1.0)
	var done bool
	r.Submit("zero", 0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-work task never completed")
	}
	if e.Now() != 0 {
		t.Fatalf("zero-work task advanced clock to %v", e.Now())
	}
}

func TestBusySecondsTracksUtilization(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 2.0, 1.0)
	r.Submit("a", 100, nil) // runs alone: 100s at rate 1 on capacity 2
	e.Run()
	if !almost(r.BusySeconds(), 100) {
		t.Fatalf("BusySeconds = %v, want 100", r.BusySeconds())
	}
}

func TestResourceAccessors(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu:n1", 2.0, 1.0)
	if r.Name() != "cpu:n1" || r.Capacity() != 2.0 || r.TaskCap() != 1.0 {
		t.Fatal("accessors wrong")
	}
	if r.Frozen() {
		t.Fatal("new resource frozen")
	}
	r.Freeze()
	if !r.Frozen() {
		t.Fatal("Freeze not reported")
	}
	r.Freeze() // idempotent
	r.Thaw()
	r.Thaw() // idempotent
	if r.Frozen() {
		t.Fatal("Thaw not reported")
	}
	task := r.Submit("a", 10, nil)
	if task.Label() != "a" || task.Started() != 0 {
		t.Fatal("task accessors wrong")
	}
	e.Run()
	if !task.Finished() || task.Cancelled() {
		t.Fatal("task state wrong")
	}
}

func TestAddWorkOnFinishedTaskPanics(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1, 1)
	task := r.Submit("a", 1, nil)
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("AddWork on finished task did not panic")
		}
	}()
	task.AddWork(1)
}

func TestAddWorkNegativePanics(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1, 1)
	task := r.Submit("a", 100, nil)
	defer func() {
		if recover() == nil {
			t.Error("negative AddWork did not panic")
		}
	}()
	task.AddWork(-1)
}

func TestInvalidConstruction(t *testing.T) {
	e := sim.NewEngine()
	for _, tc := range []struct{ c, m float64 }{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewResource(%v, %v) did not panic", tc.c, tc.m)
				}
			}()
			NewResource(e, "bad", tc.c, tc.m)
		}()
	}
}

func TestNegativeWorkPanics(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1.0, 1.0)
	defer func() {
		if recover() == nil {
			t.Error("negative work did not panic")
		}
	}()
	r.Submit("bad", -5, nil)
}

// Property: total work conserved. For any set of task sizes, the sum of
// (finish_time_i × average rate) equals the submitted work; equivalently
// the makespan of k equal tasks of work W on capacity C with cap M is
// W / min(M, C/k) and BusySeconds equals the total work.
func TestPropertyEqualTasksMakespan(t *testing.T) {
	f := func(nRaw uint8, wRaw uint16, cpusRaw uint8) bool {
		n := int(nRaw%8) + 1
		w := float64(wRaw%5000) + 1
		cpus := float64(cpusRaw%4) + 1
		e := sim.NewEngine()
		r := NewResource(e, "cpu", cpus, 1.0)
		finishes := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			r.Submit("job", w, func() { finishes = append(finishes, e.Now()) })
		}
		end := e.Run()
		rate := math.Min(1.0, cpus/float64(n))
		want := w / rate
		if !almost(end, want) {
			t.Logf("n=%d w=%v cpus=%v: end=%v want=%v", n, w, cpus, end, want)
			return false
		}
		// Work conservation.
		if !almost(r.BusySeconds(), w*float64(n)) {
			t.Logf("busy=%v want=%v", r.BusySeconds(), w*float64(n))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: in processor sharing, tasks finish in order of their work, and
// every task's sojourn time is at least its isolated service time.
func TestPropertySojournAndOrdering(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 10 {
			return true
		}
		e := sim.NewEngine()
		r := NewResource(e, "cpu", 1.0, 1.0)
		type result struct {
			work   float64
			finish float64
		}
		results := make([]result, len(sizesRaw))
		for i, sRaw := range sizesRaw {
			w := float64(sRaw%1000) + 1
			i := i
			results[i].work = w
			r.Submit("job", w, func() { results[i].finish = e.Now() })
		}
		e.Run()
		for i, res := range results {
			if res.finish+eps < res.work {
				t.Logf("task %d finished at %v before isolated time %v", i, res.finish, res.work)
				return false
			}
			for j, other := range results {
				if res.work < other.work && res.finish > other.finish+eps {
					t.Logf("task %d (w=%v) finished after task %d (w=%v)", i, res.work, j, other.work)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
