package ps

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCappedTaskAloneUsesItsCap(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 2.0, 1.0) // 2 CPUs
	var done float64
	// A width-2 mega-job alone consumes both CPUs.
	r.SubmitCapped("mega", 100, 2.0, func() { done = e.Now() })
	e.Run()
	if !almost(done, 50) {
		t.Fatalf("mega-job finished at %v, want 50", done)
	}
}

func TestCapClampedToCapacity(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 2.0, 1.0)
	task := r.SubmitCapped("mega", 100, 99, nil)
	if task.Cap() != 2.0 {
		t.Fatalf("cap = %v, want clamped to 2", task.Cap())
	}
	e.Run()
}

func TestMegaJobYieldsToSerialJobsFairly(t *testing.T) {
	// 2 CPUs: a serial job (cap 1) and a mega-job (cap 2). Max-min: the
	// serial job gets 1, the mega-job the remaining 1.
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 2.0, 1.0)
	var tSerial, tMega float64
	r.Submit("serial", 100, func() { tSerial = e.Now() })
	r.SubmitCapped("mega", 100, 2.0, func() { tMega = e.Now() })
	e.Run()
	if !almost(tSerial, 100) {
		t.Fatalf("serial finished at %v, want 100 (full CPU)", tSerial)
	}
	// Mega: rate 1 until t=100 (100 work left... it had 100, did 100) —
	// both finish at 100.
	if !almost(tMega, 100) {
		t.Fatalf("mega finished at %v, want 100", tMega)
	}
}

func TestMegaJobSoaksLeftoverCapacity(t *testing.T) {
	// 3 CPUs: two serial jobs (1 each) + one mega-job (cap 3) → mega gets
	// the leftover 1 CPU while they run, then all 3 CPUs.
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 3.0, 1.0)
	var tMega float64
	r.Submit("s1", 50, nil)
	r.Submit("s2", 50, nil)
	r.SubmitCapped("mega", 200, 3.0, func() { tMega = e.Now() })
	e.Run()
	// Phase 1 (t ≤ 50): mega at rate 1 → 50 done. Phase 2: alone at rate
	// 3 → 150 left → 50 more seconds. Total 100.
	if !almost(tMega, 100) {
		t.Fatalf("mega finished at %v, want 100", tMega)
	}
}

func TestInvalidCapPanics(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("zero cap did not panic")
		}
	}()
	r.SubmitCapped("bad", 10, 0, nil)
}

func TestRateAccessor(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "cpu", 2.0, 1.0)
	a := r.Submit("a", 100, nil)
	if !almost(a.Rate(), 1.0) {
		t.Fatalf("rate = %v, want 1", a.Rate())
	}
	for i := 0; i < 3; i++ {
		r.Submit("other", 100, nil)
	}
	if !almost(a.Rate(), 0.5) {
		t.Fatalf("rate with 4 tasks on 2 CPUs = %v, want 0.5", a.Rate())
	}
	e.Run()
}

// Property: water-filling is max-min fair — rates never exceed caps, the
// total never exceeds capacity, and capacity is fully used whenever some
// task is below its cap (work-conserving).
func TestPropertyWaterFillingInvariants(t *testing.T) {
	f := func(capsRaw []uint8, capacityRaw uint8) bool {
		if len(capsRaw) == 0 || len(capsRaw) > 8 {
			return true
		}
		capacity := 1 + float64(capacityRaw%8)
		e := sim.NewEngine()
		r := NewResource(e, "cpu", capacity, capacity)
		var tasks []*Task
		for i, c := range capsRaw {
			cap := 0.25 + float64(c%12)*0.25
			tasks = append(tasks, r.SubmitCapped(string(rune('a'+i)), 1e6, cap, nil))
		}
		var total float64
		anyBelowCap := false
		for _, task := range tasks {
			if task.Rate() > task.Cap()+eps {
				return false
			}
			if task.Rate() < task.Cap()-eps {
				anyBelowCap = true
			}
			total += task.Rate()
		}
		if total > capacity+eps {
			return false
		}
		// Work conservation: if anyone is throttled below its cap, the
		// whole capacity must be in use.
		if anyBelowCap && math.Abs(total-capacity) > eps {
			return false
		}
		// Max-min: a task below its cap must have rate ≥ every other
		// task's rate (no one smaller-capped starves it).
		for _, a := range tasks {
			if a.Rate() < a.Cap()-eps {
				for _, b := range tasks {
					if b.Rate() > a.Rate()+eps && b.Rate() > b.Cap()-eps {
						continue // b is at its (smaller) cap — fine
					}
					if b.Rate() > a.Rate()+eps {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
