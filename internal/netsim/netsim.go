// Package netsim models the factory's local area network: point-to-point
// links with finite bandwidth shared fairly among concurrent transfers, and
// an rsync-like agent that periodically mirrors growing files from one
// virtual filesystem to another.
//
// The paper's data-flow architectures (§4.2) both run `rsync` in the
// background to incrementally copy completed portions of model outputs and
// data products to the public server; the Rsync type reproduces that
// behaviour, including the lag between data being produced and appearing
// at the server.
package netsim

import (
	"fmt"

	"repro/internal/ps"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// Link is a network path with a fixed bandwidth in bytes per second.
// Concurrent transfers share the bandwidth fairly.
type Link struct {
	name string
	res  *ps.Resource
	eng  *sim.Engine

	bytesMoved float64

	tel      *telemetry.Telemetry
	mBytes   *telemetry.Counter
	mLatency *telemetry.Histogram
}

// NewLink creates a link with the given bandwidth (bytes/second).
func NewLink(eng *sim.Engine, name string, bandwidth float64) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("netsim: link %q needs positive bandwidth, got %v", name, bandwidth))
	}
	return &Link{
		name: name,
		eng:  eng,
		res:  ps.NewResource(eng, "link:"+name, bandwidth, bandwidth),
	}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the link's capacity in bytes per second.
func (l *Link) Bandwidth() float64 { return l.res.Capacity() }

// Active returns the number of in-flight transfers.
func (l *Link) Active() int { return l.res.Active() }

// BytesMoved returns the total bytes delivered over the link so far.
func (l *Link) BytesMoved() float64 { return l.bytesMoved }

// Instrument attaches telemetry to the link: net_bytes_moved_total and a
// transfer-latency histogram, both labelled by link, plus one "transfer"
// span per Transfer on the track "link:<name>". A nil argument detaches.
func (l *Link) Instrument(tel *telemetry.Telemetry) {
	l.tel = tel
	reg := tel.Registry()
	if reg == nil {
		l.mBytes, l.mLatency = nil, nil
		return
	}
	reg.Describe("net_bytes_moved_total", "Bytes delivered over a network link.")
	reg.Describe("net_transfer_latency_seconds", "Start-to-delivery latency of link transfers.")
	l.mBytes = reg.Counter("net_bytes_moved_total", telemetry.Labels{"link": l.name})
	l.mLatency = reg.Histogram("net_transfer_latency_seconds", nil, telemetry.Labels{"link": l.name})
}

// Transfer moves size bytes over the link, invoking done on delivery.
func (l *Link) Transfer(label string, size float64, done func()) *ps.Task {
	start := l.eng.Now()
	var span *telemetry.Span
	if l.tel != nil {
		span = l.tel.Trace().Begin("transfer", label, "link:"+l.name, nil)
		span.SetArg("bytes", fmt.Sprintf("%.0f", size))
	}
	return l.res.Submit(label, size, func() {
		l.bytesMoved += size
		l.mBytes.Add(size)
		l.mLatency.Observe(l.eng.Now() - start)
		span.EndSpan()
		if done != nil {
			done()
		}
	})
}

// Observer receives a notification each time rsync delivers bytes for a
// file at the destination: the virtual time, the destination path, and the
// destination file's size after the delivery.
type Observer func(t float64, path string, destSize int64)

// Rsync periodically mirrors files under a set of source roots to the same
// paths in a destination filesystem. Each scan starts one transfer per file
// covering the bytes appended since the last delivered offset; a file with
// a transfer already in flight is picked up again on a later scan, exactly
// like repeated rsync invocations over a growing file.
type Rsync struct {
	eng      *sim.Engine
	src, dst *vfs.FS
	link     *Link
	interval float64
	roots    []string

	sent     map[string]int64 // bytes delivered to dst per path
	inflight map[string]bool
	observer Observer
	sched    sim.Scope // scan timers, labeled "netsim" for the kernel profiler
	timer    sim.Timer
	stopped  bool
}

// NewRsync creates an rsync agent mirroring the given roots (directories or
// files) from src to dst over link, scanning every interval seconds.
// observer may be nil. Call Start to begin scanning.
func NewRsync(eng *sim.Engine, src, dst *vfs.FS, link *Link, interval float64, roots []string, observer Observer) *Rsync {
	if interval <= 0 {
		panic(fmt.Sprintf("netsim: rsync interval must be positive, got %v", interval))
	}
	return &Rsync{
		eng:      eng,
		sched:    eng.Scope("netsim"),
		src:      src,
		dst:      dst,
		link:     link,
		interval: interval,
		roots:    append([]string(nil), roots...),
		sent:     make(map[string]int64),
		inflight: make(map[string]bool),
		observer: observer,
	}
}

// Start begins periodic scanning. The first scan happens one interval from
// now (rsync in the factory is started alongside the run scripts). Start
// after Stop re-arms the agent — the factory restarts rsync daemons
// between campaigns.
func (r *Rsync) Start() {
	if r.timer.Active() {
		return
	}
	r.stopped = false
	r.timer = r.sched.After(r.interval, r.tick)
}

// Stop halts future scans. In-flight transfers complete normally.
func (r *Rsync) Stop() {
	r.stopped = true
	r.timer.Cancel()
	r.timer = sim.Timer{}
}

// Delivered returns the number of bytes delivered to the destination for
// the given path.
func (r *Rsync) Delivered(path string) int64 { return r.sent[path] }

// Synced reports whether every file under the roots has been fully
// delivered (source size equals delivered bytes and nothing is in flight).
func (r *Rsync) Synced() bool {
	synced := true
	r.eachSourceFile(func(info vfs.FileInfo) {
		if r.sent[info.Path] < info.Size || r.inflight[info.Path] {
			synced = false
		}
	})
	return synced
}

func (r *Rsync) eachSourceFile(fn func(info vfs.FileInfo)) {
	for _, root := range r.roots {
		if !r.src.Exists(root) {
			continue
		}
		_ = r.src.Walk(root, func(info vfs.FileInfo) error {
			if !info.IsDir {
				fn(info)
			}
			return nil
		})
	}
}

// tick runs one scan and reschedules.
func (r *Rsync) tick() {
	r.timer = sim.Timer{}
	r.scan()
	if !r.stopped {
		r.timer = r.sched.After(r.interval, r.tick)
	}
}

// scan starts transfers for every file with undelivered bytes.
func (r *Rsync) scan() {
	r.eachSourceFile(func(info vfs.FileInfo) {
		path := info.Path
		if r.inflight[path] {
			return
		}
		delta := info.Size - r.sent[path]
		if delta <= 0 {
			return
		}
		r.inflight[path] = true
		r.link.Transfer("rsync:"+path, float64(delta), func() {
			r.deliver(path, delta)
		})
	})
}

// deliver applies a completed transfer to the destination filesystem.
func (r *Rsync) deliver(path string, delta int64) {
	r.inflight[path] = false
	r.sent[path] += delta
	if err := r.dst.Append(path, delta); err != nil {
		panic(fmt.Sprintf("netsim: rsync deliver %s: %v", path, err))
	}
	if r.observer != nil {
		r.observer(r.eng.Now(), path, r.dst.Size(path))
	}
}
