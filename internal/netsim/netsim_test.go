package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/vfs"
)

const eps = 1e-6

func almost(a, b float64) bool { return math.Abs(a-b) < eps }

func TestSingleTransferTakesSizeOverBandwidth(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "lan", 1000) // 1000 B/s
	var done float64
	l.Transfer("f", 5000, func() { done = e.Now() })
	e.Run()
	if !almost(done, 5) {
		t.Fatalf("transfer finished at %v, want 5", done)
	}
	if !almost(l.BytesMoved(), 5000) {
		t.Fatalf("BytesMoved = %v, want 5000", l.BytesMoved())
	}
}

func TestConcurrentTransfersShareBandwidth(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "lan", 1000)
	var t1, t2 float64
	l.Transfer("a", 1000, func() { t1 = e.Now() })
	l.Transfer("b", 1000, func() { t2 = e.Now() })
	e.Run()
	if !almost(t1, 2) || !almost(t2, 2) {
		t.Fatalf("transfers finished at %v, %v; want both 2 (shared link)", t1, t2)
	}
}

func TestLinkAccessors(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "lan", 1e6)
	if l.Name() != "lan" || l.Bandwidth() != 1e6 || l.Active() != 0 {
		t.Fatal("accessors wrong")
	}
	l.Transfer("x", 100, nil)
	if l.Active() != 1 {
		t.Fatalf("Active = %d, want 1", l.Active())
	}
	e.Run()
}

func TestInvalidLinkPanics(t *testing.T) {
	e := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	NewLink(e, "bad", 0)
}

func newRsyncFixture(t *testing.T) (*sim.Engine, *vfs.FS, *vfs.FS, *Link) {
	t.Helper()
	e := sim.NewEngine()
	src := vfs.New(e.Now)
	dst := vfs.New(e.Now)
	l := NewLink(e, "lan", 1000)
	return e, src, dst, l
}

func TestRsyncMirrorsStaticFile(t *testing.T) {
	e, src, dst, l := newRsyncFixture(t)
	if err := src.Append("/out/1_salt.63", 2000); err != nil {
		t.Fatal(err)
	}
	r := NewRsync(e, src, dst, l, 10, []string{"/out"}, nil)
	r.Start()
	e.RunUntil(100)
	if got := dst.Size("/out/1_salt.63"); got != 2000 {
		t.Fatalf("dst size = %d, want 2000", got)
	}
	if !r.Synced() {
		t.Fatal("rsync should report synced")
	}
	if r.Delivered("/out/1_salt.63") != 2000 {
		t.Fatalf("Delivered = %d, want 2000", r.Delivered("/out/1_salt.63"))
	}
	r.Stop()
}

func TestRsyncFollowsGrowingFile(t *testing.T) {
	e, src, dst, l := newRsyncFixture(t)
	// Grow the file by 500 bytes every 5 seconds for 50 seconds.
	for i := 0; i < 10; i++ {
		d := float64(i * 5)
		e.At(d, func() {
			if err := src.Append("/out/f", 500); err != nil {
				t.Error(err)
			}
		})
	}
	r := NewRsync(e, src, dst, l, 10, []string{"/out"}, nil)
	r.Start()
	e.RunUntil(200) // rsync ticks forever by design; bound virtual time
	if got := dst.Size("/out/f"); got != 5000 {
		t.Fatalf("dst size = %d, want 5000", got)
	}
	r.Stop()
}

func TestRsyncObserverSeesMonotonicSizes(t *testing.T) {
	e, src, dst, l := newRsyncFixture(t)
	_ = src.Append("/out/f", 3000)
	e.At(25, func() { _ = src.Append("/out/f", 1000) })
	var times []float64
	var sizes []int64
	r := NewRsync(e, src, dst, l, 10, []string{"/out"}, func(tm float64, path string, size int64) {
		times = append(times, tm)
		sizes = append(sizes, size)
	})
	r.Start()
	e.RunUntil(200)
	r.Stop()
	if len(sizes) == 0 {
		t.Fatal("observer never called")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] || times[i] < times[i-1] {
			t.Fatalf("observer sequence not monotonic: times=%v sizes=%v", times, sizes)
		}
	}
	if sizes[len(sizes)-1] != 4000 {
		t.Fatalf("final observed size = %d, want 4000", sizes[len(sizes)-1])
	}
}

func TestRsyncMultipleRoots(t *testing.T) {
	e, src, dst, l := newRsyncFixture(t)
	_ = src.Append("/outputs/a", 100)
	_ = src.Append("/products/b", 200)
	_ = src.Append("/ignored/c", 300)
	r := NewRsync(e, src, dst, l, 5, []string{"/outputs", "/products"}, nil)
	r.Start()
	e.RunUntil(50)
	r.Stop()
	if dst.Size("/outputs/a") != 100 || dst.Size("/products/b") != 200 {
		t.Fatal("watched roots not mirrored")
	}
	if dst.Exists("/ignored/c") {
		t.Fatal("unwatched root was mirrored")
	}
}

func TestRsyncMissingRootIgnored(t *testing.T) {
	e, src, dst, l := newRsyncFixture(t)
	r := NewRsync(e, src, dst, l, 5, []string{"/not-yet"}, nil)
	r.Start()
	e.RunUntil(20)
	// Root appears later.
	_ = src.Append("/not-yet/f", 100)
	e.RunUntil(40)
	if dst.Size("/not-yet/f") != 100 {
		t.Fatalf("late root not mirrored: %d", dst.Size("/not-yet/f"))
	}
	r.Stop()
}

func TestRsyncStopHaltsScans(t *testing.T) {
	e, src, dst, l := newRsyncFixture(t)
	_ = src.Append("/out/f", 100)
	r := NewRsync(e, src, dst, l, 5, []string{"/out"}, nil)
	r.Start()
	e.RunUntil(7) // one scan at t=5, transfer finishes at 5.1
	r.Stop()
	_ = src.Append("/out/f", 900)
	e.RunUntil(100)
	if dst.Size("/out/f") != 100 {
		t.Fatalf("dst size = %d, want 100 (stopped before growth)", dst.Size("/out/f"))
	}
	if r.Synced() {
		t.Fatal("Synced should be false with undelivered bytes")
	}
}

func TestRsyncLagIsBoundedByIntervalPlusTransfer(t *testing.T) {
	e, src, dst, l := newRsyncFixture(t)
	_ = src.Append("/out/f", 1000)
	var deliveredAt float64
	r := NewRsync(e, src, dst, l, 10, []string{"/out"}, func(tm float64, _ string, _ int64) {
		deliveredAt = tm
	})
	r.Start()
	e.RunUntil(50)
	r.Stop()
	// First scan at t=10, transfer of 1000 B at 1000 B/s → t=11.
	if !almost(deliveredAt, 11) {
		t.Fatalf("delivered at %v, want 11", deliveredAt)
	}
}

func TestRsyncInvalidIntervalPanics(t *testing.T) {
	e, src, dst, l := newRsyncFixture(t)
	defer func() {
		if recover() == nil {
			t.Error("zero interval did not panic")
		}
	}()
	NewRsync(e, src, dst, l, 0, nil, nil)
}

// Property: rsync conserves bytes — after enough scans, every destination
// file's size equals its source's, and the link moved exactly the total
// delivered, for random growth patterns.
func TestPropertyRsyncConservation(t *testing.T) {
	f := func(growth []uint16, intervalRaw uint8) bool {
		if len(growth) == 0 || len(growth) > 20 {
			return true
		}
		e := sim.NewEngine()
		src := vfs.New(e.Now)
		dst := vfs.New(e.Now)
		l := NewLink(e, "lan", 1e6)
		interval := float64(intervalRaw%50) + 5
		var total int64
		for i, g := range growth {
			d := float64(i * 13)
			bytes := int64(g) + 1
			total += bytes
			path := "/out/f" + string(rune('a'+i%4))
			e.At(d, func() {
				if err := src.Append(path, bytes); err != nil {
					t.Error(err)
				}
			})
		}
		r := NewRsync(e, src, dst, l, interval, []string{"/out"}, nil)
		r.Start()
		e.RunUntil(float64(len(growth)*13) + 10*interval + 100)
		r.Stop()
		if dst.TreeSize("/out") != total {
			t.Logf("delivered %d of %d", dst.TreeSize("/out"), total)
			return false
		}
		if int64(l.BytesMoved()) != total {
			t.Logf("link moved %v, want %d", l.BytesMoved(), total)
			return false
		}
		return r.Synced()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRsyncOneInflightPerFile(t *testing.T) {
	e, src, dst, l := newRsyncFixture(t)
	// Big file: transfer takes 100s, scans every 10s. Only one transfer
	// should be in flight at a time for the same file.
	_ = src.Append("/out/f", 100000)
	r := NewRsync(e, src, dst, l, 10, []string{"/out"}, nil)
	r.Start()
	maxActive := 0
	for i := 0; i < 50; i++ {
		e.RunUntil(float64(i * 5))
		if l.Active() > maxActive {
			maxActive = l.Active()
		}
	}
	e.RunUntil(300)
	r.Stop()
	if maxActive != 1 {
		t.Fatalf("max in-flight transfers = %d, want 1", maxActive)
	}
	if dst.Size("/out/f") != 100000 {
		t.Fatalf("dst size = %d, want 100000", dst.Size("/out/f"))
	}
	r.Stop()
}

// Regression: Start after Stop used to be a permanent no-op — the stopped
// flag was never cleared, so a restarted rsync daemon silently mirrored
// nothing for the rest of the campaign.
func TestRsyncRestartAfterStop(t *testing.T) {
	e, src, dst, l := newRsyncFixture(t)
	if err := src.Append("/out/f", 1000); err != nil {
		t.Fatal(err)
	}
	r := NewRsync(e, src, dst, l, 10, []string{"/out"}, nil)
	r.Start()
	e.RunUntil(100)
	if got := dst.Size("/out/f"); got != 1000 {
		t.Fatalf("dst size before stop = %d, want 1000", got)
	}

	r.Stop()
	e.At(110, func() { _ = src.Append("/out/f", 500) })
	e.RunUntil(200)
	if got := dst.Size("/out/f"); got != 1000 {
		t.Fatalf("dst size grew to %d while stopped", got)
	}

	r.Start()
	e.RunUntil(300)
	if got := dst.Size("/out/f"); got != 1500 {
		t.Fatalf("dst size after restart = %d, want 1500 — Start after Stop is a no-op", got)
	}
	if !r.Synced() {
		t.Fatal("restarted rsync should report synced")
	}
	r.Stop()
}
