package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// fakeClock is a settable sim-time source.
type fakeClock struct{ now float64 }

func (c *fakeClock) Now() float64 { return c.now }

func TestSpanHierarchy(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.Now)

	campaign := tr.Begin("campaign", "campaign-2005", "factory", nil)
	clk.now = 100
	day := tr.Begin("day", "day-021", "factory", campaign)
	run := tr.Begin("run", "forecast-tillamook/21", "fnode01", day)
	run.SetArg("forecast", "forecast-tillamook")
	clk.now = 500
	sim := tr.Begin("simulation", "sim:forecast-tillamook", "", run)
	if sim.Track != "fnode01" {
		t.Fatalf("child track = %q, want inherited fnode01", sim.Track)
	}
	clk.now = 900
	sim.EndSpan()
	run.EndSpan()
	day.EndSpan()
	clk.now = 1000
	campaign.EndSpan()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("len(spans) = %d, want 4", len(spans))
	}
	if spans[0].Parent != 0 || spans[1].Parent != spans[0].ID ||
		spans[2].Parent != spans[1].ID || spans[3].Parent != spans[2].ID {
		t.Fatalf("parent chain broken: %+v", spans)
	}
	if spans[3].Start != 500 || spans[3].End != 900 {
		t.Fatalf("sim span [%v, %v], want [500, 900]", spans[3].Start, spans[3].End)
	}
	if spans[2].Args["forecast"] != "forecast-tillamook" {
		t.Fatalf("run span args = %v", spans[2].Args)
	}
	if run.Duration() != 800 {
		t.Fatalf("run duration = %v, want 800", run.Duration())
	}
}

func TestEndOpenMarksInterrupted(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.Now)
	s := tr.Begin("run", "r", "n", nil)
	clk.now = 50
	tr.EndOpen()
	if !s.Finished() {
		t.Fatal("EndOpen left span unfinished")
	}
	got := tr.Spans()[0]
	if got.End != 50 || got.Args["interrupted"] != "true" {
		t.Fatalf("span = %+v", got)
	}
	// Double-end is a no-op.
	clk.now = 99
	s.EndSpan()
	if tr.Spans()[0].End != 50 {
		t.Fatal("EndSpan after EndOpen moved the end time")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.Now)
	a := tr.Begin("run", "runA", "fnode01", nil)
	clk.now = 2
	b := tr.Begin("transfer", "rsync:x", "lan", a)
	clk.now = 3
	b.EndSpan()
	clk.now = 5
	a.EndSpan()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, buf.String())
	}
	// 2 thread_name metadata events + 2 complete events.
	var meta, complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Name != "thread_name" || e.Args["name"] == "" {
				t.Fatalf("bad metadata event %+v", e)
			}
		case "X":
			complete++
			if e.Name == "runA" && (e.Ts != 0 || e.Dur != 5e6) {
				t.Fatalf("runA event ts=%v dur=%v, want 0 and 5e6 µs", e.Ts, e.Dur)
			}
			if e.Name == "rsync:x" && (e.Ts != 2e6 || e.Dur != 1e6) {
				t.Fatalf("rsync event ts=%v dur=%v", e.Ts, e.Dur)
			}
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("events: %d metadata + %d complete, want 2 + 2", meta, complete)
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.Begin("cat", "n", "track", nil)
				s.SetArg("i", "x")
				s.EndSpan()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*200 {
		t.Fatalf("len = %d, want %d", tr.Len(), 8*200)
	}
}
