package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): `# HELP` / `# TYPE` headers per family, one
// line per series, histograms as cumulative `_bucket{le="..."}` series
// plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			switch f.Kind {
			case KindCounter, KindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n",
					f.Name, promLabels(s.Labels, "", 0), promFloat(s.Value)); err != nil {
					return err
				}
			case KindHistogram:
				for i, bound := range s.Bounds {
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.Name, promLabels(s.Labels, "le", bound), s.Cumulative[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.Name, promLabels(s.Labels, "le", math.Inf(1)), s.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, promLabels(s.Labels, "", 0), promFloat(s.Value)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, promLabels(s.Labels, "", 0), s.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// promLabels renders a label set, optionally with an extra `le` bound
// label (histogram buckets), as `{k="v",...}` or "" when empty.
func promLabels(labels Labels, extraKey string, bound float64) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, promFloat(bound))
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a float the way Prometheus expects (+Inf, not +Inf64).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// jsonSeries mirrors SeriesSnapshot with stable JSON field names.
type jsonSeries struct {
	Labels     Labels    `json:"labels,omitempty"`
	Value      float64   `json:"value"`
	Count      uint64    `json:"count,omitempty"`
	Bounds     []float64 `json:"bounds,omitempty"`
	Cumulative []uint64  `json:"cumulative,omitempty"`
}

type jsonFamily struct {
	Name   string       `json:"name"`
	Kind   string       `json:"kind"`
	Help   string       `json:"help,omitempty"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders the registry as a JSON array of metric families, for
// programmatic consumers that do not speak the Prometheus text format.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := r.Snapshot()
	out := make([]jsonFamily, 0, len(fams))
	for _, f := range fams {
		jf := jsonFamily{Name: f.Name, Kind: f.Kind.String(), Help: f.Help}
		for _, s := range f.Series {
			jf.Series = append(jf.Series, jsonSeries{
				Labels: s.Labels, Value: s.Value, Count: s.Count,
				Bounds: s.Bounds, Cumulative: s.Cumulative,
			})
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
