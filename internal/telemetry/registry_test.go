package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", nil)
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("depth", Labels{"queue": "products"})
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Same (name, labels) returns the same series.
	if r.Counter("events_total", nil) != c {
		t.Fatal("counter series not deduplicated")
	}
	if r.Gauge("depth", Labels{"queue": "products"}) != g {
		t.Fatal("gauge series not deduplicated")
	}
	if r.Gauge("depth", Labels{"queue": "other"}) == g {
		t.Fatal("distinct labels must make a distinct series")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{1, 10, 100}, nil)
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 560.5 {
		t.Fatalf("sum = %v, want 560.5", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindHistogram {
		t.Fatalf("snapshot = %+v", snap)
	}
	s := snap[0].Series[0]
	// Cumulative counts at bounds 1, 10, 100: 1, 3, 4; +Inf via Count=5.
	want := []uint64{1, 3, 4}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d", i, s.Cumulative[i], w)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", nil)
	c.Inc()
	r.Gauge("y", nil).Set(3)
	r.Histogram("z", nil, nil).Observe(1)
	if c.Value() != 0 || r.Snapshot() != nil {
		t.Fatal("nil registry must be inert")
	}
	var tel *Telemetry
	tel.Registry().Counter("x", nil).Inc()
	tel.Trace().Begin("a", "b", "c", nil).EndSpan()
	tel.SetClock(nil)

	var tr *Tracer
	sp := tr.Begin("a", "b", "c", nil)
	sp.SetArg("k", "v")
	sp.EndSpan()
	if sp != nil || tr.Spans() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}

func TestKindClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a metric name across kinds must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", nil)
	r.Gauge("m", nil)
}

// TestConcurrentWriters exercises the registry under parallel writers of
// every instrument kind — the acceptance gate for `go test -race`.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			labels := Labels{"worker": string(rune('a' + w%4))}
			for i := 0; i < iters; i++ {
				r.Counter("ops_total", labels).Inc()
				r.Gauge("depth", labels).Set(float64(i))
				r.Histogram("lat", nil, labels).Observe(float64(i % 97))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	var total float64
	for _, f := range r.Snapshot() {
		if f.Name != "ops_total" {
			continue
		}
		for _, s := range f.Series {
			total += s.Value
		}
	}
	if total != workers*iters {
		t.Fatalf("ops_total = %v, want %d", total, workers*iters)
	}
}

// TestDescribeThenConcurrentFirstUse covers the race between Describe
// pre-declaring a family and its first concurrent instrument use
// resolving the family kind.
func TestDescribeThenConcurrentFirstUse(t *testing.T) {
	r := NewRegistry()
	r.Describe("racy_total", "pre-declared")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("racy_total", nil).Inc()
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Help != "pre-declared" || snap[0].Kind != KindCounter {
		t.Fatalf("snapshot = %+v, want one described counter family", snap)
	}
	if got := snap[0].Series[0].Value; got != 8 {
		t.Fatalf("racy_total = %v, want 8", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Describe("runs_total", "Completed factory runs.")
	r.Counter("runs_total", Labels{"forecast": "f1"}).Add(3)
	r.Gauge("clock_seconds", nil).Set(86400)
	h := r.Histogram("walltime_seconds", []float64{100, 1000}, nil)
	h.Observe(50)
	h.Observe(5000)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP runs_total Completed factory runs.",
		"# TYPE runs_total counter",
		`runs_total{forecast="f1"} 3`,
		"# TYPE clock_seconds gauge",
		"clock_seconds 86400",
		`walltime_seconds_bucket{le="100"} 1`,
		`walltime_seconds_bucket{le="1000"} 1`,
		`walltime_seconds_bucket{le="+Inf"} 2`,
		"walltime_seconds_sum 5050",
		"walltime_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", Labels{"k": "v"}).Inc()
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var fams []map[string]any
	if err := json.Unmarshal(b.Bytes(), &fams); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(fams) != 1 || fams[0]["name"] != "a_total" || fams[0]["kind"] != "counter" {
		t.Fatalf("families = %+v", fams)
	}
}
