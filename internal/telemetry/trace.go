package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Span is one timed operation in the factory's hierarchy:
// campaign → day → run → {simulation, product task, rsync transfer,
// planner pass}. Spans are created by Tracer.Begin and closed by End; a
// nil Span ignores all operations, so call sites need no telemetry
// checks.
type Span struct {
	tracer *Tracer

	ID     int64
	Parent int64 // 0 = root
	Cat    string
	Name   string
	// Track groups spans onto one display row (a Chrome trace "thread"):
	// the node name for runs and tasks, "factory" for campaign/day spans,
	// the link name for transfers.
	Track string
	Start float64 // sim seconds
	End   float64 // sim seconds; valid once Finished
	Args  map[string]string

	finished bool
}

// Finished reports whether the span has ended.
func (s *Span) Finished() bool {
	if s == nil {
		return false
	}
	if s.tracer == nil { // detached copy from Spans()
		return s.finished
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.finished
}

// Duration returns End-Start for a finished span, else the time elapsed
// so far.
func (s *Span) Duration() float64 {
	if s == nil {
		return 0
	}
	if s.tracer == nil {
		return s.End - s.Start
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.finished {
		return s.End - s.Start
	}
	return s.tracer.clock() - s.Start
}

// SetArg attaches a key/value annotation (forecast name, day, bytes...).
func (s *Span) SetArg(key, value string) {
	if s == nil {
		return
	}
	if s.tracer != nil {
		s.tracer.mu.Lock()
		defer s.tracer.mu.Unlock()
	}
	if s.Args == nil {
		s.Args = make(map[string]string, 4)
	}
	s.Args[key] = value
}

// Arg reads an annotation ("" when absent or on nil).
func (s *Span) Arg(key string) string {
	if s == nil {
		return ""
	}
	if s.tracer == nil {
		return s.Args[key]
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.Args[key]
}

// EndSpan closes the span at the tracer's current sim time. Ending an
// already-ended, detached, or nil span is a no-op.
func (s *Span) EndSpan() {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.mu.Lock()
	if !s.finished {
		s.finished = true
		s.End = s.tracer.clock()
	}
	s.tracer.mu.Unlock()
}

// Tracer records sim-time spans. Create with NewTracer; a nil Tracer
// hands out nil spans. Safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	clock func() float64
	next  int64
	spans []*Span
	// arena is the current backing chunk for span storage. Campaigns
	// record tens of thousands of short spans; carving them out of fixed
	// chunks keeps Begin from being one heap allocation (and one GC
	// object) per span. Chunks are never grown, so &arena[i] stays valid.
	arena []Span
}

// tracerChunk is the span-arena chunk size.
const tracerChunk = 256

// NewTracer returns a tracer reading sim time from clock (nil clock
// pins time at 0 until SetClock installs a real one).
func NewTracer(clock func() float64) *Tracer {
	t := &Tracer{}
	t.SetClock(clock)
	return t
}

// SetClock installs the sim-time source, typically Engine.Now. The
// factory wires this automatically for the Telemetry it is given.
func (t *Tracer) SetClock(clock func() float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	t.clock = clock
	t.mu.Unlock()
}

// Begin opens a span under parent (nil for a root span) at the current
// sim time.
func (t *Tracer) Begin(cat, name, track string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.next++
	if len(t.arena) == cap(t.arena) {
		t.arena = make([]Span, 0, tracerChunk)
	}
	t.arena = append(t.arena, Span{
		tracer: t,
		ID:     t.next,
		Cat:    cat,
		Name:   name,
		Track:  track,
		Start:  t.clock(),
	})
	s := &t.arena[len(t.arena)-1]
	if parent != nil {
		s.Parent = parent.ID
		if s.Track == "" {
			s.Track = parent.Track
		}
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// EndOpen closes every unfinished span at the current sim time — called
// once when a campaign stops so interrupted runs still export with their
// observed extent.
func (t *Tracer) EndOpen() {
	if t == nil {
		return
	}
	t.mu.Lock()
	now := t.clock()
	for _, s := range t.spans {
		if !s.finished {
			s.finished = true
			s.End = now
			if s.Args == nil {
				s.Args = make(map[string]string, 1)
			}
			s.Args["interrupted"] = "true"
		}
	}
	t.mu.Unlock()
}

// Len returns the number of spans recorded so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of all recorded spans in creation order.
// Unfinished spans are reported with End equal to the current sim time.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		c := *s
		c.tracer = nil
		if !s.finished {
			c.End = now
		}
		if len(s.Args) > 0 {
			c.Args = make(map[string]string, len(s.Args))
			for k, v := range s.Args {
				c.Args[k] = v
			}
		}
		out[i] = c
	}
	return out
}

// chromeEvent is one Chrome trace-event object. ph "X" is a complete
// event (ts + dur); ph "M" is metadata (thread names).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders all spans as Chrome trace-event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev. Sim seconds map to
// trace microseconds; each Track becomes a named thread.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()

	// Assign stable thread ids per track, in first-appearance order.
	tids := make(map[string]int)
	var tracks []string
	for _, s := range spans {
		if _, ok := tids[s.Track]; !ok {
			tids[s.Track] = len(tids) + 1
			tracks = append(tracks, s.Track)
		}
	}
	sort.Strings(tracks)
	for i, track := range tracks {
		tids[track] = i + 1
	}

	events := make([]chromeEvent, 0, len(spans)+len(tracks))
	for _, track := range tracks {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[track],
			Args: map[string]string{"name": track},
		})
	}
	for _, s := range spans {
		args := s.Args
		if args == nil {
			args = map[string]string{}
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   s.Start * 1e6,
			Dur:  (s.End - s.Start) * 1e6,
			Pid:  1,
			Tid:  tids[s.Track],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		TimeUnit    string        `json:"displayTimeUnit"`
	}{events, "ms"})
}

// Telemetry bundles the two collectors every instrumented component
// accepts: a metrics registry and a span tracer. A nil *Telemetry (and
// nil fields) disables collection with no call-site branching.
type Telemetry struct {
	Metrics *Registry
	Tracer  *Tracer
}

// New returns a Telemetry with a fresh registry and tracer. The tracer's
// clock starts pinned at 0; components owning a sim engine (factory
// campaigns, dataflow experiments) install their clock via SetClock.
func New() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Tracer: NewTracer(nil)}
}

// SetClock installs the sim-time source on the tracer (nil-safe).
func (t *Telemetry) SetClock(clock func() float64) {
	if t == nil {
		return
	}
	t.Tracer.SetClock(clock)
}

// Registry returns the metrics registry (nil on nil Telemetry), so
// instrumented components can write `tel.Registry().Counter(...)`
// without a nil check.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Metrics
}

// Trace returns the tracer (nil on nil Telemetry).
func (t *Telemetry) Trace() *Tracer {
	if t == nil {
		return nil
	}
	return t.Tracer
}
