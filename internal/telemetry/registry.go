// Package telemetry is the factory's measurement substrate: a
// concurrency-safe metrics registry (counters, gauges, histograms with
// labels) and a sim-time tracer producing hierarchical spans.
//
// The paper's §4.3 argument is that the forecast factory is only
// manageable when run behaviour is harvested into a queryable statistics
// store. The seed repository reconstructed behaviour after the fact by
// crawling log files; this package collects it online instead, the way
// Tuor et al. feed scheduler decisions from continuously collected run
// telemetry. Metrics export as Prometheus text and JSON; spans export as
// Chrome trace-event JSON (chrome://tracing) and load into
// internal/statsdb so they are SQL-queryable alongside run records.
//
// Every type in this package is nil-safe: methods on a nil *Registry,
// *Counter, *Gauge, *Histogram, *Tracer, or *Span are no-ops. Code
// instruments its hot paths unconditionally and pays (almost) nothing
// when telemetry is disabled.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus terms.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Labels attach dimensions to a metric series, e.g.
// {"forecast": "forecast-tillamook"}.
type Labels map[string]string

// Counter is a monotonically increasing metric series. The zero value via
// Registry.Counter is ready to use; a nil Counter ignores all operations.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative or NaN deltas are ignored (counters
// are monotone).
func (c *Counter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric series that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by a (possibly negative) delta.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultBuckets are histogram bucket upper bounds suited to the
// factory's second-scale latencies: 1 s up to 24 h, roughly ×4 apart.
var DefaultBuckets = []float64{1, 4, 15, 60, 300, 900, 3600, 14400, 43200, 86400}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1, last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one sample. NaN samples are ignored.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns bounds and cumulative counts.
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return bounds, cumulative, h.sum, h.count
}

// series is one labelled instance of a metric family.
type series struct {
	labels    Labels
	sortedKey string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series
}

// Registry holds metric families. It is safe for concurrent use; create
// one with NewRegistry. A nil Registry hands out nil instruments, whose
// operations are no-ops.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Describe sets a metric family's help text, shown as the Prometheus
// `# HELP` line. Describing an unknown name pre-declares nothing; the
// text attaches when the family is first created.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
		return
	}
	// Remember the help for the family once an instrument creates it.
	r.families[name] = &family{name: name, help: help, kind: -1, series: make(map[string]*series)}
}

// labelKey builds a canonical key for a label set.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// getSeries finds or creates the series for (name, kind, labels). It
// panics on a kind clash: reusing one metric name with two kinds is a
// programming error that would corrupt exports.
func (r *Registry) getSeries(name string, kind Kind, bounds []float64, labels Labels) *series {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind == -1 {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, kind: kind, bounds: bounds, series: make(map[string]*series)}
			r.families[name] = f
		} else if f.kind == -1 { // pre-declared by Describe
			f.kind = kind
			f.bounds = bounds
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}

	key := labelKey(labels)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labels: cloneLabels(labels), sortedKey: key}
	switch kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		b := f.bounds
		if len(b) == 0 {
			b = DefaultBuckets
		}
		s.hist = &Histogram{bounds: append([]float64(nil), b...), counts: make([]uint64, len(b)+1)}
	}
	f.series[key] = s
	return s
}

func cloneLabels(labels Labels) Labels {
	if len(labels) == 0 {
		return nil
	}
	out := make(Labels, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// Counter returns the counter series for (name, labels), creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.getSeries(name, KindCounter, nil, labels).counter
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.getSeries(name, KindGauge, nil, labels).gauge
}

// Histogram returns the histogram series for (name, labels). buckets (may
// be nil for DefaultBuckets) takes effect only when the family is first
// created.
func (r *Registry) Histogram(name string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) > 0 && !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("telemetry: histogram %q buckets are not sorted", name))
	}
	return r.getSeries(name, KindHistogram, buckets, labels).hist
}

// SeriesSnapshot is one exported series.
type SeriesSnapshot struct {
	Labels Labels
	// Value is the counter/gauge value; histograms report Sum here.
	Value float64
	// Histogram-only fields.
	Count      uint64
	Bounds     []float64
	Cumulative []uint64
}

// FamilySnapshot is one exported metric family.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Series []SeriesSnapshot
}

// Snapshot captures every family and series, sorted by name then label
// key, for exporters and tests.
func (r *Registry) Snapshot() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		if f.kind == -1 {
			continue // described but never used
		}
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{Labels: cloneLabels(s.labels)}
			switch f.kind {
			case KindCounter:
				ss.Value = s.counter.Value()
			case KindGauge:
				ss.Value = s.gauge.Value()
			case KindHistogram:
				ss.Bounds, ss.Cumulative, ss.Value, ss.Count = s.hist.snapshot()
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		out = append(out, fs)
	}
	return out
}
