package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestPrometheusLabelEscaping checks that label values containing quotes,
// backslashes, and newlines come out escaped per the text exposition
// format, so one hostile forecast name cannot corrupt the whole scrape.
func TestPrometheusLabelEscaping(t *testing.T) {
	cases := []struct{ name, value string }{
		{"quote", `run "tillamook"`},
		{"backslash", `C:\runs\day4`},
		{"newline", "line1\nline2"},
		{"mixed", "a\\b\"c\nd"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter("escaped_total", Labels{"forecast": tc.value}).Inc()
			var b bytes.Buffer
			if err := r.WritePrometheus(&b); err != nil {
				t.Fatal(err)
			}
			out := b.String()
			want := fmt.Sprintf("escaped_total{forecast=%q} 1", tc.value)
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
			// The series line must stay a single line: the raw newline may
			// not survive unescaped.
			for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
				if strings.HasPrefix(line, "escaped_total") && !strings.HasSuffix(line, " 1") {
					t.Errorf("series line split by unescaped newline: %q", line)
				}
			}
		})
	}
}

// TestWritePrometheusEmptyRegistry renders empty and nil registries: no
// families means no output, not an error.
func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var b bytes.Buffer
	if err := NewRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty registry wrote %q", b.String())
	}
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry: err=%v out=%q", err, b.String())
	}
}

// TestWriteJSONEmptyRegistry must produce an empty array, not null, so
// consumers can always range over the result.
func TestWriteJSONEmptyRegistry(t *testing.T) {
	var b bytes.Buffer
	if err := NewRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != "[]" {
		t.Errorf("empty registry JSON = %q, want []", got)
	}
}

// TestHistogramBucketBoundarySemantics pins down the `le` contract: an
// observation exactly at a bucket bound counts into that bucket.
func TestHistogramBucketBoundarySemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wt", []float64{10, 20}, nil)
	h.Observe(10) // exactly at the first bound: le="10"
	h.Observe(20) // exactly at the second bound: le="20"
	h.Observe(20.0000001)

	snap := r.Snapshot()
	s := snap[0].Series[0]
	if s.Cumulative[0] != 1 || s.Cumulative[1] != 2 {
		t.Fatalf("cumulative = %v, want [1 2] (bound values land in their own bucket)", s.Cumulative)
	}
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3 (overflow lands in +Inf only)", s.Count)
	}

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`wt_bucket{le="10"} 1`,
		`wt_bucket{le="20"} 2`,
		`wt_bucket{le="+Inf"} 3`,
		"wt_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusInfinityValues renders infinite gauge values in
// Prometheus spelling (+Inf / -Inf, not Go's +Inf64).
func TestPrometheusInfinityValues(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up", nil).Set(math.Inf(1))
	r.Gauge("down", nil).Set(math.Inf(-1))
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "up +Inf\n") || !strings.Contains(out, "down -Inf\n") {
		t.Errorf("infinite gauges rendered wrong:\n%s", out)
	}
}
