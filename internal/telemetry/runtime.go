package telemetry

import "runtime"

// Runtime metric names exported by RuntimeCollector.
const (
	MetricGoroutines  = "go_goroutines"
	MetricHeapAlloc   = "go_heap_alloc_bytes"
	MetricHeapObjects = "go_heap_objects"
	MetricGCPauses    = "go_gc_pause_seconds_total"
	MetricGCRuns      = "go_gc_runs_total"
)

// RuntimeCollector samples Go runtime health — goroutine count, heap
// bytes and objects, cumulative GC pause time and GC runs — into gauges
// on a registry. Unlike the sim-time metrics, these are wall-clock facts
// about the serving process; the control-room server collects them on
// every /metrics scrape so a leak or GC storm in the monitor itself is
// observable from the same dashboard as the factory.
type RuntimeCollector struct {
	gGoroutines  *Gauge
	gHeapAlloc   *Gauge
	gHeapObjects *Gauge
	gGCPauses    *Gauge
	gGCRuns      *Gauge
}

// NewRuntimeCollector registers the runtime gauges with reg and returns
// a collector. A nil registry yields a collector whose Collect is a
// no-op, matching the package's nil-safety convention.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	reg.Describe(MetricGoroutines, "Goroutines currently live in the serving process.")
	reg.Describe(MetricHeapAlloc, "Heap bytes allocated and still in use.")
	reg.Describe(MetricHeapObjects, "Heap objects allocated and still in use.")
	reg.Describe(MetricGCPauses, "Cumulative stop-the-world GC pause seconds.")
	reg.Describe(MetricGCRuns, "Completed GC cycles.")
	return &RuntimeCollector{
		gGoroutines:  reg.Gauge(MetricGoroutines, nil),
		gHeapAlloc:   reg.Gauge(MetricHeapAlloc, nil),
		gHeapObjects: reg.Gauge(MetricHeapObjects, nil),
		gGCPauses:    reg.Gauge(MetricGCPauses, nil),
		gGCRuns:      reg.Gauge(MetricGCRuns, nil),
	}
}

// Collect refreshes the gauges from the runtime. Safe on a nil collector.
func (c *RuntimeCollector) Collect() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.gGoroutines.Set(float64(runtime.NumGoroutine()))
	c.gHeapAlloc.Set(float64(ms.HeapAlloc))
	c.gHeapObjects.Set(float64(ms.HeapObjects))
	c.gGCPauses.Set(float64(ms.PauseTotalNs) / 1e9)
	c.gGCRuns.Set(float64(ms.NumGC))
}
