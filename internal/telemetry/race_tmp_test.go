package telemetry

import (
	"sync"
	"testing"
)

// Temporary review test: concurrent first-use of a Describe-pre-declared
// family races on family.kind.
func TestReviewDescribeRace(t *testing.T) {
	r := NewRegistry()
	r.Describe("racy_total", "pre-declared")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("racy_total", nil).Inc()
		}()
	}
	wg.Wait()
}
