package telemetry

import "testing"

func TestRuntimeCollectorPopulatesGauges(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	c.Collect()
	if g := reg.Gauge(MetricGoroutines, nil).Value(); g < 1 {
		t.Errorf("%s = %v, want at least the test goroutine", MetricGoroutines, g)
	}
	if h := reg.Gauge(MetricHeapAlloc, nil).Value(); h <= 0 {
		t.Errorf("%s = %v, want positive heap", MetricHeapAlloc, h)
	}
	if o := reg.Gauge(MetricHeapObjects, nil).Value(); o <= 0 {
		t.Errorf("%s = %v, want live objects", MetricHeapObjects, o)
	}
}

// The nil-registry and nil-collector paths are no-ops, matching the
// package convention.
func TestRuntimeCollectorNilSafety(t *testing.T) {
	NewRuntimeCollector(nil).Collect()
	var c *RuntimeCollector
	c.Collect()
}
