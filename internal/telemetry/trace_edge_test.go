package telemetry

import "testing"

// The forensics layer reconstructs causal chains from exported spans, so
// the tracer's edge behavior — out-of-order ends, interrupted spans,
// unfinished durations — must be exact. These tests pin it down.

func TestNestedSpansEndedOutOfOrder(t *testing.T) {
	clock := 0.0
	tr := NewTracer(func() float64 { return clock })
	parent := tr.Begin("run", "r", "n1", nil)
	clock = 10
	child := tr.Begin("simulation", "s", "", parent)
	// The parent ends before its child — a crashed workflow master whose
	// simulation stream is still draining.
	clock = 50
	parent.EndSpan()
	clock = 80
	child.EndSpan()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	p, c := byName["r"], byName["s"]
	if p.End != 50 || c.End != 80 {
		t.Errorf("ends = %v/%v, want 50/80 (each span keeps its own end)", p.End, c.End)
	}
	if c.Parent != p.ID {
		t.Errorf("child parent = %d, want %d: out-of-order ends must not break the hierarchy", c.Parent, p.ID)
	}
	// The child inherited the parent's track at Begin time.
	if c.Track != "n1" {
		t.Errorf("child track = %q, want inherited n1", c.Track)
	}
}

func TestEndOpenMarksOnlyUnfinishedSpans(t *testing.T) {
	clock := 0.0
	tr := NewTracer(func() float64 { return clock })
	done := tr.Begin("run", "done", "n1", nil)
	clock = 100
	done.EndSpan()
	open := tr.Begin("run", "open", "n1", nil)
	clock = 250
	tr.EndOpen()

	byName := map[string]Span{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
	}
	if got := byName["done"]; got.End != 100 || got.Arg("interrupted") != "" {
		t.Errorf("finished span was rewritten by EndOpen: %+v", got)
	}
	if got := byName["open"]; got.End != 250 || got.Arg("interrupted") != "true" {
		t.Errorf("open span not stamped interrupted at 250: %+v", got)
	}

	// EndSpan after EndOpen is a no-op: the interruption time stands
	// (the span ran 100 → 250).
	clock = 400
	open.EndSpan()
	if got := open.Duration(); got != 150 {
		t.Errorf("duration after late EndSpan = %v, want 150", got)
	}
}

func TestDurationOnUnfinishedSpans(t *testing.T) {
	clock := 0.0
	tr := NewTracer(func() float64 { return clock })
	s := tr.Begin("run", "r", "n1", nil)
	clock = 30
	// A live unfinished span reports elapsed time so far.
	if got := s.Duration(); got != 30 {
		t.Errorf("live unfinished duration = %v, want 30", got)
	}
	if s.Finished() {
		t.Error("span reports finished before EndSpan")
	}
	// A detached snapshot freezes the unfinished span at export time.
	snap := tr.Spans()[0]
	clock = 90
	if got := snap.Duration(); got != 30 {
		t.Errorf("detached unfinished duration = %v, want frozen 30", got)
	}
	if snap.Finished() {
		t.Error("detached copy of an unfinished span claims to be finished")
	}
	// The live span keeps tracking the clock, then freezes at EndSpan.
	if got := s.Duration(); got != 90 {
		t.Errorf("live duration after clock advance = %v, want 90", got)
	}
	s.EndSpan()
	clock = 500
	if got := s.Duration(); got != 90 {
		t.Errorf("finished duration = %v, want 90", got)
	}
	if !s.Finished() {
		t.Error("span not finished after EndSpan")
	}
	// Nil spans (disabled telemetry) are inert.
	var nilSpan *Span
	if nilSpan.Duration() != 0 || nilSpan.Finished() {
		t.Error("nil span must report zero duration, not finished")
	}
	nilSpan.EndSpan() // must not panic
}
