package plot

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapRender(t *testing.T) {
	out := Heatmap{
		Title: "cpu share",
		Rows:  []string{"fnode01", "fnode02"},
		Start: 0,
		Step:  3600,
		Cells: [][]float64{
			{0, 0.3, 1.0, math.NaN()},
			{1.0, 2.5, -1, 0.5},
		},
	}.Render()
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "cpu share") {
		t.Fatalf("missing title:\n%s", out)
	}
	// Row 1: zero → blank, 0.3 → light shade, 1.0 → full block, NaN → dot.
	if !strings.Contains(out, "fnode01 | ░█·|") {
		t.Errorf("fnode01 row wrong:\n%s", out)
	}
	// Row 2: values outside [0,1] clamp to the extremes.
	if !strings.Contains(out, "fnode02 |██ ▒|") {
		t.Errorf("fnode02 row not clamped:\n%s", out)
	}
	// Time axis spans the bucket range, legend explains the shades.
	if !strings.Contains(out, "00:00") || !strings.Contains(out, "04:00") {
		t.Errorf("missing time axis:\n%s", out)
	}
	if !strings.Contains(out, "scale:") || !strings.Contains(out, "█=1.00") {
		t.Errorf("missing shade legend:\n%s", out)
	}
}

// Width caps the rendered columns: older columns drop, and the axis
// start shifts to the first shown bucket.
func TestHeatmapWidthTruncation(t *testing.T) {
	cells := make([]float64, 10)
	for i := range cells {
		cells[i] = 1
	}
	out := Heatmap{
		Rows:  []string{"n"},
		Step:  3600,
		Cells: [][]float64{cells},
		Width: 4,
	}.Render()
	if !strings.Contains(out, "n |████|") {
		t.Errorf("row not truncated to width:\n%s", out)
	}
	// 10 buckets, 4 shown: axis starts at bucket 6 (06:00) and ends at 10:00.
	if !strings.Contains(out, "06:00") || !strings.Contains(out, "10:00") {
		t.Errorf("axis not shifted to shown range:\n%s", out)
	}
}

// A positive value too small for shade index 1 still renders a visible
// trace, and a missing row (fewer Cells than Rows) renders blank.
func TestHeatmapVisibleTraceAndMissingRow(t *testing.T) {
	out := Heatmap{
		Rows:  []string{"a", "b"},
		Step:  60,
		Cells: [][]float64{{0.01, 0.01}},
	}.Render()
	if !strings.Contains(out, "a |░░|") {
		t.Errorf("small positive values invisible:\n%s", out)
	}
	if !strings.Contains(out, "b |  |") {
		t.Errorf("missing row not blank:\n%s", out)
	}
}

func TestFormatClock(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{0, "00:00"},
		{3660, "01:01"},
		{-5, "00:00"},
		{90000, "1+01:00"},
	}
	for _, tc := range cases {
		if got := formatClock(tc.sec); got != tc.want {
			t.Errorf("formatClock(%v) = %q, want %q", tc.sec, got, tc.want)
		}
	}
}
