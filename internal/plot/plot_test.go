package plot

import (
	"math"
	"strings"
	"testing"
)

func TestChartRendersPoints(t *testing.T) {
	out := Chart{
		Title:  "walltime",
		XLabel: "day",
		YLabel: "seconds",
		Series: []Series{
			{Name: "tillamook", X: []float64{1, 2, 3}, Y: []float64{40000, 40000, 80000}},
		},
	}.Render()
	if !strings.Contains(out, "walltime") || !strings.Contains(out, "tillamook") {
		t.Fatalf("chart missing labels:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("chart missing points:\n%s", out)
	}
	if !strings.Contains(out, "x: day") {
		t.Fatalf("chart missing axis labels:\n%s", out)
	}
}

func TestChartMultipleSeriesDistinctMarkers(t *testing.T) {
	out := Chart{
		Series: []Series{
			{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
			{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
		},
	}.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("expected two marker kinds:\n%s", out)
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	if out := (Chart{}).Render(); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
	// Single point and NaN values must not panic.
	out := Chart{Series: []Series{
		{Name: "p", X: []float64{5, math.NaN()}, Y: []float64{7, 1}},
	}}.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point missing:\n%s", out)
	}
}

func TestCSVWideFormat(t *testing.T) {
	out := CSV("day", []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b,quoted", X: []float64{2}, Y: []float64{5}},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != `day,a,"b,quoted"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,10," {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,20,5" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestGanttRender(t *testing.T) {
	out := Gantt{
		Title: "factory day",
		Now:   43200,
		Bars: []GanttBar{
			{Node: "fnode01", Run: "tillamook", Start: 10800, End: 50000},
			{Node: "fnode01", Run: "newport", Start: 10800, End: 30000},
			{Node: "fnode02", Run: "columbia", Start: 7200, End: 60000},
		},
		Horizon: 86400,
	}.Render()
	for _, want := range []string{"factory day", "fnode01", "fnode02", "tillamook", "columbia", "A", "B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	// Overlapping runs on one node stack onto two sub-rows: fnode01
	// appears once as a label but two bar rows exist.
	if strings.Count(out, "fnode01") != 1 {
		t.Fatalf("node label repeated:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	barRows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") && strings.Contains(l, ".") {
			barRows++
		}
	}
	if barRows < 3 {
		t.Fatalf("expected ≥3 bar rows, got %d:\n%s", barRows, out)
	}
}

func TestGanttEmptyAndDefaults(t *testing.T) {
	out := Gantt{}.Render()
	if out == "" {
		t.Fatal("empty gantt rendered nothing")
	}
	// Sub-hour horizon renders seconds.
	out = Gantt{Bars: []GanttBar{{Node: "n", Run: "r", Start: 0, End: 100}}}.Render()
	if !strings.Contains(out, "100s") {
		t.Fatalf("horizon label missing:\n%s", out)
	}
}
