package plot

import (
	"fmt"
	"math"
	"strings"
)

// shades maps intensity in [0, 1] to a terminal cell, light to dark.
var shades = []rune{' ', '░', '▒', '▓', '█'}

// Heatmap renders a nodes×time intensity grid as text — the utilization
// view of the control room: one row per node, one column per timeline
// bucket, cell darkness proportional to the value in [0, 1]. Cells
// outside [0, 1] are clamped; NaN renders as '·' (no data).
type Heatmap struct {
	Title string
	Rows  []string    // row labels, top to bottom
	Start float64     // time of the first column, seconds
	Step  float64     // seconds per column
	Cells [][]float64 // Cells[i] is row i; rows may have differing lengths
	Width int         // max columns rendered (default 96); earlier columns drop
}

// Render draws the heatmap with a time axis and a shade legend.
func (h Heatmap) Render() string {
	width := h.Width
	if width <= 0 {
		width = 96
	}
	cols := 0
	for _, row := range h.Cells {
		if len(row) > cols {
			cols = len(row)
		}
	}
	first := 0
	if cols > width {
		first = cols - width
	}
	shown := cols - first

	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	label := 0
	for _, r := range h.Rows {
		if len(r) > label {
			label = len(r)
		}
	}
	for i, r := range h.Rows {
		fmt.Fprintf(&b, "%-*s |", label, r)
		var row []float64
		if i < len(h.Cells) {
			row = h.Cells[i]
		}
		for c := first; c < cols; c++ {
			if c >= len(row) {
				b.WriteRune(' ')
				continue
			}
			v := row[c]
			if math.IsNaN(v) {
				b.WriteRune('·')
				continue
			}
			v = math.Max(0, math.Min(1, v))
			idx := int(v * float64(len(shades)-1))
			if v > 0 && idx == 0 {
				idx = 1 // visible trace for any positive value
			}
			b.WriteRune(shades[idx])
		}
		b.WriteString("|\n")
	}
	if shown > 0 && h.Step > 0 {
		from := h.Start + float64(first)*h.Step
		to := h.Start + float64(cols)*h.Step
		axis := fmt.Sprintf("%s%s", strings.Repeat(" ", label+2), formatClock(from))
		right := formatClock(to)
		pad := label + 2 + shown - len(axis) - len(right)
		if pad < 1 {
			pad = 1
		}
		b.WriteString(axis + strings.Repeat(" ", pad) + right + "\n")
	}
	fmt.Fprintf(&b, "%sscale:", strings.Repeat(" ", label+2))
	for i, s := range shades {
		fmt.Fprintf(&b, " %c=%.2f", s, float64(i)/float64(len(shades)-1))
	}
	b.WriteString("\n")
	return b.String()
}

// formatClock renders seconds as d+hh:mm when past a day, else hh:mm.
func formatClock(sec float64) string {
	if sec < 0 {
		sec = 0
	}
	day := int(sec) / 86400
	rem := int(sec) % 86400
	if day > 0 {
		return fmt.Sprintf("%d+%02d:%02d", day, rem/3600, (rem%3600)/60)
	}
	return fmt.Sprintf("%02d:%02d", rem/3600, (rem%3600)/60)
}
