package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GanttBar is one run's placement for the Gantt view: a node row, a start
// time, and a predicted end time.
type GanttBar struct {
	Node  string
	Run   string
	Start float64
	End   float64
}

// Gantt renders the factory's day as text, in the spirit of the ForeMan
// monitoring display (Figure 3): one row per node, bars showing when each
// run executes, and a "now" marker. Bars on the same node stack onto
// sub-rows when they overlap (the multi-coloured rectangles of the paper's
// figure).
type Gantt struct {
	Title string
	Bars  []GanttBar
	Now   float64 // current time marker (0 = omit)
	Width int     // columns for the time axis (default 72)
	// Horizon is the time range rendered (default: max bar end).
	Horizon float64
}

// Render draws the chart.
func (g Gantt) Render() string {
	width := g.Width
	if width <= 0 {
		width = 72
	}
	horizon := g.Horizon
	for _, b := range g.Bars {
		if b.End > horizon {
			horizon = b.End
		}
	}
	if horizon <= 0 {
		horizon = 1
	}
	col := func(t float64) int {
		c := int(math.Round(t / horizon * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	byNode := make(map[string][]GanttBar)
	var nodes []string
	for _, b := range g.Bars {
		if _, ok := byNode[b.Node]; !ok {
			nodes = append(nodes, b.Node)
		}
		byNode[b.Node] = append(byNode[b.Node], b)
	}
	sort.Strings(nodes)

	var out strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&out, "%s\n", g.Title)
	}
	legendNo := 0
	legend := make(map[string]byte)
	symbolFor := func(run string) byte {
		if s, ok := legend[run]; ok {
			return s
		}
		s := byte('A' + legendNo%26)
		legendNo++
		legend[run] = s
		return s
	}

	for _, node := range nodes {
		bars := byNode[node]
		sort.Slice(bars, func(i, j int) bool {
			if bars[i].Start != bars[j].Start {
				return bars[i].Start < bars[j].Start
			}
			return bars[i].Run < bars[j].Run
		})
		// Pack bars into sub-rows: a bar joins the first sub-row whose
		// last bar ends before it starts.
		var rows [][]GanttBar
		for _, b := range bars {
			placed := false
			for i := range rows {
				last := rows[i][len(rows[i])-1]
				if col(last.End) < col(b.Start) {
					rows[i] = append(rows[i], b)
					placed = true
					break
				}
			}
			if !placed {
				rows = append(rows, []GanttBar{b})
			}
		}
		for ri, row := range rows {
			line := []byte(strings.Repeat(".", width))
			for _, b := range row {
				s, e := col(b.Start), col(b.End)
				sym := symbolFor(b.Run)
				for c := s; c <= e; c++ {
					line[c] = sym
				}
			}
			if g.Now > 0 {
				c := col(g.Now)
				if line[c] == '.' {
					line[c] = '|'
				}
			}
			label := node
			if ri > 0 {
				label = ""
			}
			fmt.Fprintf(&out, "%-10s |%s|\n", label, string(line))
		}
	}
	fmt.Fprintf(&out, "%-10s  %-*s%*s\n", "", width/2, "0", width-width/2, fmtDuration(horizon))
	// Legend in run-name order.
	var runs []string
	for run := range legend {
		runs = append(runs, run)
	}
	sort.Strings(runs)
	for _, run := range runs {
		fmt.Fprintf(&out, "%-10s  %c %s\n", "", legend[run], run)
	}
	return out.String()
}

func fmtDuration(seconds float64) string {
	if seconds >= 3600 {
		return fmt.Sprintf("%.1fh", seconds/3600)
	}
	return fmt.Sprintf("%.0fs", seconds)
}
