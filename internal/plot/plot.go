// Package plot renders the repository's experiment output: ASCII
// scatter/line charts for the paper's figures, CSV emission for external
// plotting, and the Gantt view of the ForeMan interface (Figure 3).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named (x, y) sequence.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers cycles through per-series point symbols.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Chart describes an ASCII chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 20)
	Series []Series
}

// Render draws the chart.
func (c Chart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 72
	}
	height := c.Height
	if height <= 0 {
		height = 20
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-row][col] = mark
		}
	}

	yAxis := func(row int) float64 {
		return maxY - (maxY-minY)*float64(row)/float64(height-1)
	}
	for row := 0; row < height; row++ {
		fmt.Fprintf(&b, "%10.4g |%s|\n", yAxis(row), string(grid[row]))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// CSV renders the series as a wide CSV: the union of x values in the first
// column, one column per series, blanks where a series has no value at
// that x.
func CSV(xHeader string, series []Series) string {
	xsSet := make(map[float64]bool)
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	lookup := make([]map[float64]float64, len(series))
	for i, s := range series {
		lookup[i] = make(map[float64]float64, len(s.X))
		for j := range s.X {
			lookup[i][s.X[j]] = s.Y[j]
		}
	}

	var b strings.Builder
	b.WriteString(csvEscape(xHeader))
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for i := range series {
			b.WriteByte(',')
			if y, ok := lookup[i][x]; ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
