package plot

import (
	"fmt"
	"math"
	"strings"
)

// ControlChart renders one SPC individuals chart as ASCII: the observed
// series with center line and control limits overlaid, out-of-control
// points highlighted, and changepoints marked on the axis. The same
// grid-scaling approach as Chart, specialized for the horizontal
// reference lines a control chart needs.
type ControlChart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 16)

	X []float64 // observation positions (seq or day)
	Y []float64 // observed values
	// Out marks out-of-control points (rendered '!'); Learning marks
	// baseline-collection points (rendered '.'); both are optional and
	// positional with X/Y.
	Out      []bool
	Learning []bool

	// Center and the control limits draw as horizontal lines; all three
	// are skipped when Center == UCL == LCL == 0 (unfitted series).
	Center float64
	UCL    float64
	LCL    float64

	// Changepoints are x positions marked '^' under the axis.
	Changepoints []float64
}

// Render draws the control chart.
func (c ControlChart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 72
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for i := range c.X {
		if math.IsNaN(c.X[i]) || math.IsNaN(c.Y[i]) {
			continue
		}
		points++
		minX, maxX = math.Min(minX, c.X[i]), math.Max(maxX, c.X[i])
		minY, maxY = math.Min(minY, c.Y[i]), math.Max(maxY, c.Y[i])
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	hasLimits := !(c.Center == 0 && c.UCL == 0 && c.LCL == 0)
	if hasLimits {
		// The limits must be visible even when every point sits inside.
		minY, maxY = math.Min(minY, c.LCL), math.Max(maxY, c.UCL)
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(y float64) int {
		return height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(height-1)))
	}
	colOf := func(x float64) int {
		return int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
	}
	drawLine := func(y float64, mark byte) {
		row := rowOf(y)
		if row < 0 || row >= height {
			return
		}
		for col := 0; col < width; col++ {
			grid[row][col] = mark
		}
	}
	if hasLimits {
		drawLine(c.UCL, '=')
		drawLine(c.LCL, '=')
		drawLine(c.Center, '-')
	}
	for i := range c.X {
		if math.IsNaN(c.X[i]) || math.IsNaN(c.Y[i]) {
			continue
		}
		mark := byte('*')
		if i < len(c.Learning) && c.Learning[i] {
			mark = '.'
		}
		if i < len(c.Out) && c.Out[i] {
			mark = '!'
		}
		grid[rowOf(c.Y[i])][colOf(c.X[i])] = mark
	}

	yAxis := func(row int) float64 {
		return maxY - (maxY-minY)*float64(row)/float64(height-1)
	}
	for row := 0; row < height; row++ {
		label := fmt.Sprintf("%10.4g", yAxis(row))
		switch row {
		case rowOf(c.UCL):
			if hasLimits {
				label = fmt.Sprintf("UCL %6.4g", c.UCL)
			}
		case rowOf(c.Center):
			if hasLimits {
				label = fmt.Sprintf("CL  %6.4g", c.Center)
			}
		case rowOf(c.LCL):
			if hasLimits {
				label = fmt.Sprintf("LCL %6.4g", c.LCL)
			}
		}
		fmt.Fprintf(&b, "%10s |%s|\n", label, string(grid[row]))
	}
	axis := []byte(strings.Repeat("-", width))
	for _, x := range c.Changepoints {
		if math.IsNaN(x) || x < minX || x > maxX {
			continue
		}
		axis[colOf(x)] = '^'
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", string(axis))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	legend := "* in control   ! rule violation   . learning"
	if len(c.Changepoints) > 0 {
		legend += "   ^ changepoint"
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", legend)
	return b.String()
}
