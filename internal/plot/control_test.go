package plot

import (
	"strings"
	"testing"
)

func TestControlChartRender(t *testing.T) {
	c := ControlChart{
		Title:        "run_time / fc",
		X:            []float64{0, 1, 2, 3, 4, 5},
		Y:            []float64{100, 101, 99, 100, 160, 140},
		Out:          []bool{false, false, false, false, true, false},
		Learning:     []bool{true, true, false, false, false, false},
		Center:       100,
		UCL:          110,
		LCL:          90,
		Changepoints: []float64{5},
		Width:        40,
		Height:       10,
	}
	out := c.Render()
	for _, want := range []string{"run_time / fc", "UCL", "CL ", "LCL", "!", ".", "*", "^", "changepoint"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The limit lines are drawn even though no point reaches LCL.
	if !strings.Contains(out, "=") || !strings.Contains(out, "-") {
		t.Fatalf("limit lines missing:\n%s", out)
	}
}

func TestControlChartEmpty(t *testing.T) {
	out := ControlChart{Title: "empty"}.Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart = %q", out)
	}
}
