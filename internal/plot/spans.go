package plot

import "repro/internal/telemetry"

// GanttFromSpans converts trace spans of one category into Gantt bars:
// the span's track (node name) becomes the row, and the bar is labelled
// by the forecast annotation when present, else the span name. This lets
// the ForeMan-style Gantt view render directly from a campaign's trace
// instead of a separately maintained schedule.
func GanttFromSpans(spans []telemetry.Span, cat string) []GanttBar {
	var bars []GanttBar
	for _, s := range spans {
		if s.Cat != cat {
			continue
		}
		label := s.Name
		if f := s.Args["forecast"]; f != "" {
			label = f
		}
		bars = append(bars, GanttBar{
			Node:  s.Track,
			Run:   label,
			Start: s.Start,
			End:   s.End,
		})
	}
	return bars
}
