package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

const eps = 1e-6

func almost(a, b float64) bool { return math.Abs(a-b) < eps }

func TestSerialJobOnReferenceNode(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("amb10", 2, 1.0)
	var done float64
	n.Submit("tillamook", 40000, func() { done = e.Now() })
	e.Run()
	if !almost(done, 40000) {
		t.Fatalf("job finished at %v, want 40000", done)
	}
}

func TestNodeSpeedScalesRuntime(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	fast := c.AddNode("fast", 2, 2.0)
	slow := c.AddNode("slow", 2, 0.5)
	var tFast, tSlow float64
	fast.Submit("a", 100, func() { tFast = e.Now() })
	slow.Submit("b", 100, func() { tSlow = e.Now() })
	e.Run()
	if !almost(tFast, 50) {
		t.Fatalf("fast node finished at %v, want 50", tFast)
	}
	if !almost(tSlow, 200) {
		t.Fatalf("slow node finished at %v, want 200", tSlow)
	}
}

func TestPaperCPUSharingExample(t *testing.T) {
	// §4.1: "if three forecasts run concurrently on a node with two CPUs,
	// ForeMan will compute the expected completion time of each assuming
	// each forecast gets 2/3 of the available CPU cycles."
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 2, 1.0)
	var finishes []float64
	for i := 0; i < 3; i++ {
		n.Submit("f", 1000, func() { finishes = append(finishes, e.Now()) })
	}
	e.Run()
	for _, f := range finishes {
		if !almost(f, 1500) {
			t.Fatalf("finishes = %v, want all 1500 (rate 2/3)", finishes)
		}
	}
}

func TestFailFreezesJobsAndRepairResumes(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 2, 1.0)
	var done float64
	n.Submit("f", 100, func() { done = e.Now() })
	e.At(40, func() { n.Fail() })
	e.At(90, func() { n.Repair() })
	e.Run()
	if !almost(done, 150) {
		t.Fatalf("job finished at %v, want 150 (40 run + 50 down + 60 run)", done)
	}
}

func TestSubmitToDownNodeWaits(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 1, 1.0)
	n.Fail()
	if !n.Down() {
		t.Fatal("node should be down")
	}
	var done float64
	n.Submit("f", 10, func() { done = e.Now() })
	e.At(100, func() { n.Repair() })
	e.Run()
	if !almost(done, 110) {
		t.Fatalf("job finished at %v, want 110", done)
	}
}

func TestDoubleFailAndRepairAreIdempotent(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 1, 1.0)
	n.Fail()
	n.Fail()
	n.Repair()
	n.Repair()
	if n.Down() {
		t.Fatal("node should be up")
	}
}

func TestJobCancelAndAccessors(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 1, 1.0)
	j := n.Submit("f", 100, func() { t.Error("cancelled job completed") })
	if j.Node() != n || j.Label() != "f" || j.Started() != 0 {
		t.Fatalf("accessors wrong: %v %v %v", j.Node(), j.Label(), j.Started())
	}
	e.At(10, func() { j.Cancel() })
	e.Run()
	if !j.Cancelled() || j.Finished() {
		t.Fatal("job state wrong after cancel")
	}
}

func TestClusterAccessors(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	c.AddNode("b", 2, 1.0)
	c.AddNode("a", 2, 2.0)
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0].Name() != "a" || nodes[1].Name() != "b" {
		t.Fatalf("Nodes() not name-sorted: %v, %v", nodes[0].Name(), nodes[1].Name())
	}
	if c.Node("a") == nil || c.Node("zz") != nil {
		t.Fatal("Node lookup wrong")
	}
	if !almost(c.TotalCapacity(), 2*2.0+2*1.0) {
		t.Fatalf("TotalCapacity = %v, want 6", c.TotalCapacity())
	}
	c.Node("a").Fail()
	if !almost(c.TotalCapacity(), 2.0) {
		t.Fatalf("TotalCapacity with a down = %v, want 2", c.TotalCapacity())
	}
	if c.Engine() != e {
		t.Fatal("Engine accessor wrong")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	c.AddNode("n", 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate node did not panic")
		}
	}()
	c.AddNode("n", 1, 1)
}

func TestInvalidNodeParamsPanic(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	for _, tc := range []struct {
		cpus  int
		speed float64
	}{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddNode(%d, %v) did not panic", tc.cpus, tc.speed)
				}
			}()
			c.AddNode("bad", tc.cpus, tc.speed)
		}()
	}
}

func TestUtilization(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 2, 1.0)
	n.Submit("f", 100, nil)
	e.RunUntil(200)
	// 100 CPU-seconds consumed over 200s × 2 CPUs = 0.25.
	if !almost(n.Utilization(), 0.25) {
		t.Fatalf("Utilization = %v, want 0.25", n.Utilization())
	}
}

func TestNodeAccessors(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 2, 1.5)
	if n.CPUs() != 2 || n.Speed() != 1.5 || n.Active() != 0 {
		t.Fatal("accessors wrong")
	}
	j := n.Submit("f", 100, nil)
	if n.Active() != 1 {
		t.Fatalf("Active = %d", n.Active())
	}
	e.RunUntil(10)
	// 10 s at rate 1.5 → 15 done of 100.
	if got := j.Remaining(); math.Abs(got-85) > eps {
		t.Fatalf("Remaining = %v, want 85", got)
	}
	j.AddWork(15)
	if got := j.Remaining(); math.Abs(got-100) > eps {
		t.Fatalf("Remaining after AddWork = %v, want 100", got)
	}
	e.Run()
	if !j.Finished() {
		t.Fatal("job should finish")
	}
}

func TestSubmitParallelMegaJob(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 4, 1.0)
	var done float64
	// Width clamps to the CPU count; width < 1 behaves serially.
	n.SubmitParallel("mega", 400, 99, func() { done = e.Now() })
	e.Run()
	if math.Abs(done-100) > eps {
		t.Fatalf("mega-job finished at %v, want 100 (4 CPUs)", done)
	}
	var serialDone float64
	n.SubmitParallel("serial", 100, 0, func() { serialDone = e.Now() })
	e.Run()
	if math.Abs(serialDone-200) > eps {
		t.Fatalf("width-0 job finished at %v, want 200 (serial)", serialDone)
	}
}

func TestParallelAndSerialShareFairly(t *testing.T) {
	// 3 CPUs: serial job keeps a full CPU; width-3 mega-job soaks the
	// other two.
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 3, 1.0)
	var tSerial, tMega float64
	n.Submit("serial", 100, func() { tSerial = e.Now() })
	n.SubmitParallel("mega", 500, 3, func() { tMega = e.Now() })
	e.Run()
	if math.Abs(tSerial-100) > eps {
		t.Fatalf("serial finished at %v, want 100", tSerial)
	}
	// Mega: 2/s for 100 s (200 done), then 3/s for the remaining 300 →
	// finishes at 200.
	if math.Abs(tMega-200) > eps {
		t.Fatalf("mega finished at %v, want 200", tMega)
	}
}

// Property: the paper's CPU-sharing rule. k identical serial jobs of work W
// started together on a node with c CPUs of speed s all finish at
// W / (s·min(1, c/k)).
func TestPropertyCPUSharingRule(t *testing.T) {
	f := func(kRaw, cRaw uint8, wRaw uint16, sRaw uint8) bool {
		k := int(kRaw%6) + 1
		cpus := int(cRaw%4) + 1
		w := float64(wRaw%10000) + 1
		speed := 0.5 + float64(sRaw%8)*0.25
		e := sim.NewEngine()
		c := New(e)
		n := c.AddNode("n", cpus, speed)
		for i := 0; i < k; i++ {
			n.Submit("f", w, nil)
		}
		end := e.Run()
		rate := speed * math.Min(1, float64(cpus)/float64(k))
		want := w / rate
		if math.Abs(end-want) > 1e-6*want {
			t.Logf("k=%d cpus=%d speed=%v w=%v: end=%v want=%v", k, cpus, speed, w, end, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Down nodes must not count as available capacity, and repairing restores
// exactly what failing removed.
func TestTotalCapacityAcrossFailRepair(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	c.AddNode("a", 2, 1.0)
	b := c.AddNode("b", 4, 0.5)
	if !almost(c.TotalCapacity(), 4) {
		t.Fatalf("TotalCapacity = %v, want 4", c.TotalCapacity())
	}
	b.Fail()
	if !almost(c.TotalCapacity(), 2) {
		t.Fatalf("TotalCapacity with b down = %v, want 2", c.TotalCapacity())
	}
	b.Repair()
	if !almost(c.TotalCapacity(), 4) {
		t.Fatalf("TotalCapacity after repair = %v, want 4", c.TotalCapacity())
	}
}

// Utilization's denominator keeps running while the node is down, and the
// numerator freezes: a node busy for 100s, down for 300s, then busy again
// for 100s has consumed 100 of 500 capacity-seconds per CPU.
func TestUtilizationAcrossDowntime(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 1, 1.0)
	n.Submit("f", 200, nil) // 1 CPU: rate 1, finishes after 200 busy seconds
	e.At(100, n.Fail)
	e.At(400, n.Repair)
	e.Run()
	// Timeline: busy [0,100], frozen [100,400], busy [400,500].
	if now := e.Now(); !almost(now, 500) {
		t.Fatalf("job finished at %v, want 500", now)
	}
	if u := n.Utilization(); !almost(u, 200.0/500.0) {
		t.Fatalf("Utilization = %v, want 0.4", u)
	}
	if b := n.BusySeconds(); !almost(b, 200) {
		t.Fatalf("BusySeconds = %v, want 200", b)
	}
}

// The lifecycle event stream: kinds and order, observer chaining, and the
// guarantee that observers see the post-transition resource state.
func TestOnEventStream(t *testing.T) {
	e := sim.NewEngine()
	c := New(e)
	n := c.AddNode("n", 1, 1.0)
	type seen struct {
		kind, job string
		active    int
		down      bool
	}
	var first, second []seen
	c.OnEvent(func(ev JobEvent) {
		first = append(first, seen{ev.Kind, ev.Job, n.Active(), n.Down()})
	})
	c.OnEvent(func(ev JobEvent) { // chained after the first observer
		second = append(second, seen{kind: ev.Kind})
	})
	n.Submit("a", 100, nil)
	j := n.Submit("b", 1000, nil)
	e.At(50, n.Fail)
	e.At(150, n.Repair)
	e.At(400, j.Cancel)
	e.Run()
	want := []seen{
		{"submit", "a", 1, false}, // a running
		{"submit", "b", 2, false}, // b joins, k=2
		{"fail", "", 2, true},     // frozen with both jobs intact
		{"repair", "", 2, false},  // thawed
		{"finish", "a", 1, false}, // a done; post-state k=1
		{"cancel", "b", 0, false}, // b cancelled; post-state k=0
	}
	if len(first) != len(want) {
		t.Fatalf("saw %d events %+v, want %d", len(first), first, len(want))
	}
	for i, w := range want {
		if first[i] != w {
			t.Fatalf("event %d = %+v, want %+v", i, first[i], w)
		}
	}
	if len(second) != len(first) {
		t.Fatalf("chained observer saw %d events, want %d", len(second), len(first))
	}
	for i := range second {
		if second[i].kind != first[i].kind {
			t.Fatalf("chained observer event %d kind %q, want %q", i, second[i].kind, first[i].kind)
		}
	}
}
