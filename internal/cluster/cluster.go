// Package cluster models the forecast factory's dedicated compute plant:
// a small set of multi-CPU nodes with known relative speeds, on which
// serial jobs execute under processor sharing.
//
// The model follows §4.1 of the paper exactly: a forecast run is serial
// (consumes at most one CPU), and when k runs share a node with c CPUs the
// available cycles are divided evenly, so each run progresses at
// speed × min(1, c/k). Work is measured in reference CPU-seconds: a job of
// work W finishes in W seconds when running alone on a speed-1.0 CPU.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/ps"
	"repro/internal/sim"
)

// Job and node lifecycle event kinds, delivered to Cluster.OnEvent
// observers. Submit/finish/cancel are per-job; fail/repair are per-node
// (Job is empty).
const (
	EventSubmit = "submit"
	EventFinish = "finish"
	EventCancel = "cancel"
	EventFail   = "fail"
	EventRepair = "repair"
)

// JobEvent is one lifecycle transition on the cluster: a job starting,
// finishing, or being cancelled, or a node going down or coming back.
// Events fire at the virtual instant the transition takes effect, after
// the node's resource state already reflects it — an observer reading
// Node.Active or Node.BusySeconds from the callback sees the new state.
type JobEvent struct {
	Kind string
	Node string
	Job  string // job label; empty for fail/repair
	Time float64
}

// Node is one compute node. Create nodes through Cluster.AddNode.
type Node struct {
	name  string
	cpus  int
	speed float64
	res   *ps.Resource
	down  bool
	eng   *sim.Engine
	cl    *Cluster

	// Accounting for utilization reports.
	created float64
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// CPUs returns the number of CPUs.
func (n *Node) CPUs() int { return n.cpus }

// Speed returns the node's relative speed (1.0 = reference).
func (n *Node) Speed() float64 { return n.speed }

// Down reports whether the node is failed.
func (n *Node) Down() bool { return n.down }

// Active returns the number of jobs currently executing on the node.
func (n *Node) Active() int { return n.res.Active() }

// Capacity returns the node's aggregate capacity (CPUs × speed) in
// reference CPU-seconds per second, regardless of up/down state.
func (n *Node) Capacity() float64 { return float64(n.cpus) * n.speed }

// BusySeconds returns the capacity-seconds consumed on the node so far
// (∫ total rate dt), settled to the current virtual time.
func (n *Node) BusySeconds() float64 { return n.res.BusySeconds() }

// Utilization returns the fraction of the node's total CPU capacity
// consumed since the node was created.
func (n *Node) Utilization() float64 {
	elapsed := n.eng.Now() - n.created
	if elapsed <= 0 {
		return 0
	}
	return n.res.BusySeconds() / (n.res.Capacity() * elapsed)
}

// emit delivers a lifecycle event to the cluster's observer, if any.
func (n *Node) emit(kind, job string) {
	if n.cl != nil && n.cl.onEvent != nil {
		n.cl.onEvent(JobEvent{Kind: kind, Node: n.name, Job: job, Time: n.eng.Now()})
	}
}

// Job is a serial job executing on a node.
type Job struct {
	task *ps.Task
	node *Node
}

// Node returns the node the job runs on.
func (j *Job) Node() *Node { return j.node }

// Remaining returns the job's remaining work in reference CPU-seconds.
func (j *Job) Remaining() float64 { return j.task.Remaining() }

// Finished reports whether the job has completed.
func (j *Job) Finished() bool { return j.task.Finished() }

// Cancelled reports whether the job was cancelled.
func (j *Job) Cancelled() bool { return j.task.Cancelled() }

// Label returns the job's diagnostic label.
func (j *Job) Label() string { return j.task.Label() }

// Started returns the virtual time the job was submitted.
func (j *Job) Started() float64 { return j.task.Started() }

// AddWork grows the job's remaining work (incremental workloads).
func (j *Job) AddWork(extra float64) { j.task.AddWork(extra) }

// Cancel removes the job without invoking its completion callback.
func (j *Job) Cancel() {
	if j.task.Finished() || j.task.Cancelled() {
		return
	}
	j.task.Cancel()
	j.node.emit(EventCancel, j.task.Label())
}

// Submit starts a serial job on the node. work is in reference
// CPU-seconds; done (may be nil) runs at completion. Submitting to a down
// node is allowed — the job waits frozen until the node is repaired, which
// models scripts queued against an unavailable machine.
func (n *Node) Submit(label string, work float64, done func()) *Job {
	t := n.res.Submit(label, work, func() {
		n.emit(EventFinish, label)
		if done != nil {
			done()
		}
	})
	n.emit(EventSubmit, label)
	return &Job{task: t, node: n}
}

// SubmitParallel starts a parallel "mega-job" that can consume up to
// width CPUs at once — the extension footnote 1 of the paper anticipates
// for parallel forecast codes. width is clamped to the node's CPU count;
// width ≤ 1 is a serial job. Sharing with other jobs follows max-min
// fairness: a mega-job only uses cycles serial jobs cannot.
func (n *Node) SubmitParallel(label string, work float64, width int, done func()) *Job {
	if width < 1 {
		width = 1
	}
	if width > n.cpus {
		width = n.cpus
	}
	t := n.res.SubmitCapped(label, work, float64(width)*n.speed, func() {
		n.emit(EventFinish, label)
		if done != nil {
			done()
		}
	})
	n.emit(EventSubmit, label)
	return &Job{task: t, node: n}
}

// Fail marks the node down. Running jobs stop progressing but keep their
// exact remaining work; they resume on Repair. This models the paper's
// "node becomes temporarily unavailable" scenario.
func (n *Node) Fail() {
	if n.down {
		return
	}
	n.down = true
	n.res.Freeze()
	n.emit(EventFail, "")
}

// Repair brings a failed node back.
func (n *Node) Repair() {
	if !n.down {
		return
	}
	n.down = false
	n.res.Thaw()
	n.emit(EventRepair, "")
}

// Cluster is a named collection of nodes sharing one simulation engine.
type Cluster struct {
	eng     *sim.Engine
	nodes   map[string]*Node
	order   []string
	onEvent func(JobEvent)
}

// New creates an empty cluster on the given engine.
func New(eng *sim.Engine) *Cluster {
	return &Cluster{eng: eng, nodes: make(map[string]*Node)}
}

// Engine returns the cluster's simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// OnEvent chains an observer for job and node lifecycle events after any
// previously registered one — the attachment point for the utilization
// sampler. Observers run synchronously at the virtual instant of each
// transition and must not mutate the cluster.
func (c *Cluster) OnEvent(fn func(JobEvent)) {
	if fn == nil {
		return
	}
	prev := c.onEvent
	c.onEvent = func(ev JobEvent) {
		if prev != nil {
			prev(ev)
		}
		fn(ev)
	}
}

// AddNode creates a node with the given CPU count and relative speed.
// Adding a duplicate name or non-positive parameters panics: cluster
// construction errors are programming errors in this library.
func (c *Cluster) AddNode(name string, cpus int, speed float64) *Node {
	if _, ok := c.nodes[name]; ok {
		panic(fmt.Sprintf("cluster: duplicate node %q", name))
	}
	if cpus <= 0 || speed <= 0 {
		panic(fmt.Sprintf("cluster: node %q needs positive cpus (%d) and speed (%v)", name, cpus, speed))
	}
	n := &Node{
		name:    name,
		cpus:    cpus,
		speed:   speed,
		eng:     c.eng,
		cl:      c,
		created: c.eng.Now(),
		res:     ps.NewResource(c.eng, "cpu:"+name, float64(cpus)*speed, speed),
	}
	c.nodes[name] = n
	c.order = append(c.order, name)
	sort.Strings(c.order)
	return n
}

// Node returns the named node, or nil.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// Nodes returns all nodes in name order.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, len(c.order))
	for i, name := range c.order {
		out[i] = c.nodes[name]
	}
	return out
}

// TotalCapacity returns the aggregate CPU capacity (CPUs × speed) of all
// nodes that are currently up, in reference CPU-seconds per second.
func (c *Cluster) TotalCapacity() float64 {
	var total float64
	for _, n := range c.nodes {
		if !n.down {
			total += float64(n.cpus) * n.speed
		}
	}
	return total
}
