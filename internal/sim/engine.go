// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a virtual clock measured in seconds (float64) and a
// priority queue of scheduled events. Events firing at the same instant are
// delivered in the order they were scheduled, which makes every simulation
// in this repository bit-reproducible: there is no wall-clock time, no
// goroutine scheduling, and no randomness inside the kernel.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/telemetry"
)

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     float64
	seq     int64
	queue   eventQueue
	running bool
	stopped bool

	fired int64 // events delivered since creation

	// Optional telemetry handles, resolved once by Instrument so the
	// per-event cost is a few nil-safe atomic operations.
	mEvents  *telemetry.Counter
	mClock   *telemetry.Gauge
	mPending *telemetry.Gauge
	mLag     *telemetry.Gauge
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsFired returns the number of events delivered since creation.
func (e *Engine) EventsFired() int64 { return e.fired }

// Instrument registers the engine's kernel metrics with a registry:
// sim_events_fired_total counts delivered events, sim_clock_seconds
// tracks the virtual clock, sim_pending_events gauges the event-queue
// length (a growing queue while the clock stalls is the signature of an
// engine pile-up), and sim_replay_lag_seconds (fed by ObserveReplayLag)
// shows how far a paced replay trails its wall-clock schedule. A nil
// registry detaches the instruments.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		e.mEvents, e.mClock, e.mPending, e.mLag = nil, nil, nil, nil
		return
	}
	reg.Describe("sim_events_fired_total", "Discrete events delivered by the simulation kernel.")
	reg.Describe("sim_clock_seconds", "Current virtual time of the simulation clock.")
	reg.Describe("sim_pending_events", "Events waiting in the simulation queue.")
	reg.Describe("sim_replay_lag_seconds", "Sim-time deficit of a paced replay against its wall-clock schedule.")
	e.mEvents = reg.Counter("sim_events_fired_total", nil)
	e.mClock = reg.Gauge("sim_clock_seconds", nil)
	e.mPending = reg.Gauge("sim_pending_events", nil)
	e.mLag = reg.Gauge("sim_replay_lag_seconds", nil)
	e.mPending.Set(float64(len(e.queue)))
}

// ObserveReplayLag records how far the virtual clock trails a paced
// replay's schedule: expected is the sim time the replay should have
// reached by now. Positive lag means the engine cannot keep up with the
// requested replay rate — a stall the dashboard makes visible.
func (e *Engine) ObserveReplayLag(expected float64) {
	e.mLag.Set(expected - e.now)
}

// Timer is a handle to a scheduled event. It can be cancelled before it
// fires; cancelling a fired or already-cancelled timer is a no-op.
type Timer struct {
	when  float64
	seq   int64
	index int // index in the heap, -1 once fired or cancelled
	fn    func()
	owner *Engine
}

// When returns the virtual time the timer is scheduled to fire at.
func (t *Timer) When() float64 { return t.when }

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && t.index >= 0 }

// Cancel removes the timer from the event queue. It is safe to call on a
// timer that has already fired or been cancelled, and on a nil timer.
func (t *Timer) Cancel() bool {
	if t == nil || t.index < 0 {
		return false
	}
	t.engineRemove()
	return true
}

// engineRemove is set up when the timer is scheduled; see Engine.At.
func (t *Timer) engineRemove() {
	if t.owner != nil {
		heap.Remove(&t.owner.queue, t.index)
		t.index = -1
		t.fn = nil
	}
}

// At schedules fn to run at absolute virtual time when. Scheduling in the
// past (before Now) panics, because it would silently corrupt causality.
// Scheduling exactly at Now is allowed and fires after all currently queued
// events for this instant that were scheduled earlier.
func (e *Engine) At(when float64, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if math.IsNaN(when) {
		panic("sim: At called with NaN time")
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, e.now))
	}
	e.seq++
	t := &Timer{when: when, seq: e.seq, fn: fn, owner: e}
	heap.Push(&e.queue, t)
	e.mPending.Set(float64(len(e.queue)))
	return t
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: After called with negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekNext returns the time of the next scheduled event, or +Inf when the
// queue is empty.
func (e *Engine) PeekNext() float64 {
	if len(e.queue) == 0 {
		return math.Inf(1)
	}
	return e.queue[0].when
}

// Stop makes the current Run or RunUntil call return after the in-flight
// event handler completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single next event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	t := heap.Pop(&e.queue).(*Timer)
	t.index = -1
	e.now = t.when
	e.fired++
	e.mEvents.Inc()
	e.mClock.Set(e.now)
	e.mPending.Set(float64(len(e.queue)))
	fn := t.fn
	t.fn = nil
	fn()
	return true
}

// Run fires events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() float64 {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil fires events with time <= deadline, then advances the clock to
// deadline (if it is later than the last event) and returns. Events after
// the deadline remain queued.
func (e *Engine) RunUntil(deadline float64) float64 {
	if e.running {
		panic("sim: RunUntil called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped && len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if !e.stopped && deadline > e.now {
		e.now = deadline
		e.mClock.Set(e.now)
	}
	return e.now
}

// eventQueue is a min-heap ordered by (when, seq).
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
