// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a virtual clock measured in seconds (float64) and a
// priority queue of scheduled events. Events firing at the same instant are
// delivered in the order they were scheduled, which makes every simulation
// in this repository bit-reproducible: there is no wall-clock time, no
// goroutine scheduling, and no randomness inside the kernel.
//
// Scheduling is labeled: every subsystem obtains a Scope (Engine.Scope)
// and schedules through it, so a kernel profiler (internal/engineprof,
// attached via SetProbe) can attribute event counts, handler wall-clock
// cost, and schedule→fire dwell to the subsystem that created each event.
// The plain At/After methods remain for one-off callers and tag their
// events "untagged" — a labeled campaign should have none.
//
// Event structures are pooled on a free list: a fired or cancelled event
// is recycled into the next schedule call, so a steady-state simulation
// allocates nothing per event beyond the caller's closure. Timer handles
// stay safe across recycling through a generation counter — a handle to a
// fired event never aliases the event's next life.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"repro/internal/telemetry"
)

// Untagged is the label attached to events scheduled through the plain
// At/After methods rather than a named Scope.
const Untagged = "untagged"

// Probe observes the kernel's event lifecycle. Attach one with SetProbe;
// the engine calls it synchronously on the simulation goroutine, so
// implementations decide their own locking if they are read concurrently.
// With no probe attached the event path pays a single nil check.
type Probe interface {
	// EventScheduled fires after an event enters the queue. pending is
	// the queue depth including the new event.
	EventScheduled(label string, now, when float64, pending int)
	// EventFired fires after an event's handler returns. born is the sim
	// time the event was scheduled (when-born = sim-time dwell), wall is
	// the handler's wall-clock cost, pending the queue depth at the
	// moment the event was popped (before the handler scheduled more).
	// Handler timing is sampled: wall is negative for fires whose
	// handler was not timed (see SetProbeSampling); counts stay exact.
	EventFired(label string, born, when float64, wall time.Duration, pending int)
	// EventCancelled fires after a pending event is removed by Cancel.
	EventCancelled(label string, born, when, now float64, pending int)
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     float64
	seq     int64
	queue   eventQueue
	free    []*event // recycled events; see Timer for the aliasing guard
	running bool
	stopped bool

	fired int64 // events delivered since creation

	probe Probe
	// probeEvery samples handler wall-clock timing: every probeEvery-th
	// fire is timed (reading the clock twice per event costs more than
	// the rest of the attached path on machines with a slow clocksource,
	// so exact per-event timing would blow the profiler's overhead
	// budget). probeTick counts down to the next timed fire.
	probeEvery int
	probeTick  int

	// Optional telemetry handles, resolved once by Instrument so the
	// per-event cost is a few nil-safe atomic operations.
	mEvents  *telemetry.Counter
	mClock   *telemetry.Gauge
	mPending *telemetry.Gauge
	mLag     *telemetry.Gauge
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsFired returns the number of events delivered since creation.
func (e *Engine) EventsFired() int64 { return e.fired }

// DefaultProbeSampleEvery is the default handler-timing sampling
// interval: one timed handler per this many fires.
const DefaultProbeSampleEvery = 16

// SetProbe attaches a kernel probe (nil detaches). The probe sees every
// schedule, fire, and cancel from this point on. Handler wall-clock
// timing is only measured while a probe is attached, and only on a
// sampled subset of fires (DefaultProbeSampleEvery; tune with
// SetProbeSampling) — untimed fires report a negative wall duration.
func (e *Engine) SetProbe(p Probe) {
	e.probe = p
	if e.probeEvery == 0 {
		e.probeEvery = DefaultProbeSampleEvery
	}
	e.probeTick = 0 // the next fire is timed
}

// SetProbeSampling times one handler per every n fires (n >= 1; 1 times
// every handler, at a measurable cost on machines where reading the
// clock is slow). Sampling is unbiased across labels: each label's
// handlers are timed in proportion to how often they fire.
func (e *Engine) SetProbeSampling(n int) {
	if n < 1 {
		n = 1
	}
	e.probeEvery = n
	e.probeTick = 0
}

// Instrument registers the engine's kernel metrics with a registry:
// sim_events_fired_total counts delivered events, sim_clock_seconds
// tracks the virtual clock, sim_pending_events gauges the event-queue
// length (a growing queue while the clock stalls is the signature of an
// engine pile-up), and sim_replay_lag_seconds (fed by ObserveReplayLag)
// shows how far a paced replay trails its wall-clock schedule. A nil
// registry detaches the instruments.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		e.mEvents, e.mClock, e.mPending, e.mLag = nil, nil, nil, nil
		return
	}
	reg.Describe("sim_events_fired_total", "Discrete events delivered by the simulation kernel.")
	reg.Describe("sim_clock_seconds", "Current virtual time of the simulation clock.")
	reg.Describe("sim_pending_events", "Events waiting in the simulation queue.")
	reg.Describe("sim_replay_lag_seconds", "Sim-time deficit of a paced replay against its wall-clock schedule.")
	e.mEvents = reg.Counter("sim_events_fired_total", nil)
	e.mClock = reg.Gauge("sim_clock_seconds", nil)
	e.mPending = reg.Gauge("sim_pending_events", nil)
	e.mLag = reg.Gauge("sim_replay_lag_seconds", nil)
	e.mPending.Set(float64(len(e.queue)))
}

// ObserveReplayLag records how far the virtual clock trails a paced
// replay's schedule: expected is the sim time the replay should have
// reached by now. Positive lag means the engine cannot keep up with the
// requested replay rate — a stall the dashboard makes visible.
func (e *Engine) ObserveReplayLag(expected float64) {
	e.mLag.Set(expected - e.now)
}

// event is the pooled kernel record behind a Timer handle. After it fires
// or is cancelled its generation is bumped and the struct returns to the
// engine's free list for the next schedule call.
type event struct {
	when  float64
	born  float64 // sim time the event was scheduled
	seq   int64
	index int // index in the heap, -1 once fired or cancelled
	gen   uint64
	label string
	fn    func()
	owner *Engine
}

// Timer is a handle to a scheduled event. The zero Timer is inert: Active
// reports false, Cancel is a no-op, When returns 0.
//
// Handles stay valid after the event fires or is cancelled even though
// the underlying event struct is recycled into later schedules: the
// handle carries the event's generation and its scheduled time, so
// Cancel/Active on a stale handle see the generation mismatch and report
// false instead of touching the event's next life, and When keeps
// answering with the original scheduled time.
type Timer struct {
	ev   *event
	gen  uint64
	when float64
}

// When returns the virtual time the timer was scheduled to fire at. It
// keeps answering after the timer fires or is cancelled.
func (t Timer) When() float64 { return t.when }

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Cancel removes the timer from the event queue, reporting whether it was
// still pending. It is safe on a fired, cancelled, or zero Timer: those
// report false and touch nothing (a fired event's struct may already be
// serving a different, live event).
func (t Timer) Cancel() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.index < 0 {
		return false
	}
	e := ev.owner
	heap.Remove(&e.queue, ev.index)
	if e.probe != nil {
		e.probe.EventCancelled(ev.label, ev.born, ev.when, e.now, len(e.queue))
	}
	e.recycle(ev)
	e.mPending.Set(float64(len(e.queue)))
	return true
}

// recycle retires an event (fired or cancelled) onto the free list. The
// generation bump invalidates every outstanding Timer handle to this
// life of the struct.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.label = ""
	ev.index = -1
	e.free = append(e.free, ev)
}

// Scope is a labeled scheduler over an engine. Every subsystem that
// schedules events creates one (Engine.Scope) and schedules through it,
// so the kernel profiler can attribute cost per subsystem. The zero
// Scope is not usable. Scopes are values: copying is free, and any number
// may share a label.
type Scope struct {
	e     *Engine
	label string
}

// Scope returns a labeled scheduler. An empty name falls back to the
// untagged scope.
func (e *Engine) Scope(name string) Scope {
	if name == "" {
		name = Untagged
	}
	return Scope{e: e, label: name}
}

// Label returns the scope's label.
func (s Scope) Label() string { return s.label }

// Engine returns the underlying engine.
func (s Scope) Engine() *Engine { return s.e }

// Now returns the engine's current virtual time.
func (s Scope) Now() float64 { return s.e.now }

// At schedules fn at absolute virtual time when, tagged with the scope's
// label. The same rules as Engine.At apply.
func (s Scope) At(when float64, fn func()) Timer {
	return s.e.schedule(s.label, when, fn)
}

// After schedules fn d seconds from now, tagged with the scope's label.
// Negative d panics.
func (s Scope) After(d float64, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: After called with negative delay %v", d))
	}
	return s.e.schedule(s.label, s.e.now+d, fn)
}

// At schedules fn to run at absolute virtual time when, in the untagged
// scope. Scheduling in the past (before Now) panics, because it would
// silently corrupt causality. Scheduling exactly at Now is allowed and
// fires after all currently queued events for this instant that were
// scheduled earlier.
func (e *Engine) At(when float64, fn func()) Timer {
	return e.schedule(Untagged, when, fn)
}

// After schedules fn to run d seconds from now, in the untagged scope.
// Negative d panics.
func (e *Engine) After(d float64, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: After called with negative delay %v", d))
	}
	return e.schedule(Untagged, e.now+d, fn)
}

// schedule enqueues one event, reusing a recycled event struct when the
// free list has one.
func (e *Engine) schedule(label string, when float64, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if math.IsNaN(when) {
		panic("sim: At called with NaN time")
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{owner: e}
	}
	ev.when, ev.born, ev.seq, ev.label, ev.fn = when, e.now, e.seq, label, fn
	heap.Push(&e.queue, ev)
	e.mPending.Set(float64(len(e.queue)))
	if e.probe != nil {
		e.probe.EventScheduled(label, e.now, when, len(e.queue))
	}
	return Timer{ev: ev, gen: ev.gen, when: when}
}

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekNext returns the time of the next scheduled event, or +Inf when the
// queue is empty.
func (e *Engine) PeekNext() float64 {
	if len(e.queue) == 0 {
		return math.Inf(1)
	}
	return e.queue[0].when
}

// Stop makes the current Run or RunUntil call return after the in-flight
// event handler completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single next event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.when
	e.fired++
	fn, label, born, when := ev.fn, ev.label, ev.born, ev.when
	// Recycle before running the handler: the handler's own scheduling
	// reuses this struct while it is still hot in cache, and the
	// generation bump has already invalidated stale handles.
	e.recycle(ev)
	e.mEvents.Inc()
	e.mClock.Set(e.now)
	e.mPending.Set(float64(len(e.queue)))
	if p := e.probe; p != nil {
		pending := len(e.queue)
		wall := time.Duration(-1)
		if e.probeTick <= 0 {
			e.probeTick = e.probeEvery
			t0 := time.Now()
			fn()
			wall = time.Since(t0)
		} else {
			fn()
		}
		e.probeTick--
		p.EventFired(label, born, when, wall, pending)
	} else {
		fn()
	}
	return true
}

// Run fires events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() float64 {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil fires events with time <= deadline, then advances the clock to
// deadline (if it is later than the last event) and returns. Events after
// the deadline remain queued.
func (e *Engine) RunUntil(deadline float64) float64 {
	if e.running {
		panic("sim: RunUntil called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped && len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if !e.stopped && deadline > e.now {
		e.now = deadline
		e.mClock.Set(e.now)
	}
	return e.now
}

// eventQueue is a min-heap ordered by (when, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
