package sim

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// Timer handles must stay meaningful after the event they named fires,
// even though the underlying event struct is recycled into later
// schedules.

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	fired := false
	timer := e.At(5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if timer.Active() {
		t.Fatal("fired timer should not be active")
	}
	if timer.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestWhenAfterFire(t *testing.T) {
	e := NewEngine()
	timer := e.At(42, func() {})
	e.Run()
	if timer.When() != 42 {
		t.Fatalf("When() after fire = %v, want 42 (the scheduled time)", timer.When())
	}
	// Recycle the struct into a new event at a different time; the stale
	// handle must keep answering with its own schedule.
	e.At(e.Now()+8, func() {})
	if timer.When() != 42 {
		t.Fatalf("When() after pool reuse = %v, want 42", timer.When())
	}
	e.Run()
}

// A stale handle to a fired event must not cancel the event that reused
// its pooled struct.
func TestStaleHandleDoesNotAliasReusedEvent(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func() {})
	e.Run() // fires and recycles the event struct
	reusedFired := false
	reused := e.At(e.Now()+1, func() { reusedFired = true })
	if stale.Cancel() {
		t.Fatal("stale Cancel reported true")
	}
	if stale.Active() {
		t.Fatal("stale handle reports active after its event fired")
	}
	if !reused.Active() {
		t.Fatal("live event lost to a stale handle's Cancel")
	}
	e.Run()
	if !reusedFired {
		t.Fatal("reused event did not fire")
	}
}

// Cancelled events recycle too; their handles must go inert without
// touching the struct's next life.
func TestCancelledTimerHandleStaysInert(t *testing.T) {
	e := NewEngine()
	timer := e.At(5, func() { t.Fatal("cancelled event fired") })
	if !timer.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	live := e.At(3, func() {})
	if timer.Cancel() {
		t.Fatal("second Cancel (post-recycle) should report true only for the live handle")
	}
	if !live.Active() {
		t.Fatal("live event cancelled through a stale handle")
	}
	e.Run()
}

// RunUntil's contract is inclusive: an event scheduled exactly at the
// deadline fires, and the clock lands exactly on the deadline.
func TestRunUntilDeadlineExactlyAtNextEvent(t *testing.T) {
	e := NewEngine()
	var fired []float64
	e.At(10, func() { fired = append(fired, 10) })
	e.At(10.000001, func() { fired = append(fired, 10.000001) })
	e.RunUntil(10)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want exactly the deadline event [10]", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
}

// ObserveReplayLag must survive the instruments being detached and
// re-attached mid-replay (the monitor can be restarted against a live
// engine).
func TestObserveReplayLagDetachReattach(t *testing.T) {
	e := NewEngine()
	reg := telemetry.NewRegistry()
	e.Instrument(reg)
	e.At(100, func() { e.ObserveReplayLag(150) })
	e.Run()
	if got := reg.Gauge("sim_replay_lag_seconds", nil).Value(); got != 50 {
		t.Fatalf("lag = %v, want 50", got)
	}
	e.Instrument(nil)
	e.ObserveReplayLag(500) // detached: must not panic, must not write
	if got := reg.Gauge("sim_replay_lag_seconds", nil).Value(); got != 50 {
		t.Fatalf("lag after detach = %v, want unchanged 50", got)
	}
	reg2 := telemetry.NewRegistry()
	e.Instrument(reg2)
	e.At(e.Now()+20, func() { e.ObserveReplayLag(e.Now() + 5) })
	e.Run()
	if got := reg2.Gauge("sim_replay_lag_seconds", nil).Value(); got != 5 {
		t.Fatalf("lag after re-attach = %v, want 5", got)
	}
}

// The free list makes the steady-state event path allocation-free: after
// warm-up, schedule+fire of a pooled event costs zero allocations beyond
// whatever closure the caller builds.
func TestEventPoolSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	// Warm the pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.At(e.Now(), nop)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.At(e.Now(), nop)
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f objects per event, want 0", allocs)
	}
}

// probeRecorder captures the probe callbacks for label assertions.
type probeRecorder struct {
	scheduled []string
	fired     []string
	cancelled []string
	dwell     map[string]float64
	wall      time.Duration
}

func (p *probeRecorder) EventScheduled(label string, now, when float64, pending int) {
	p.scheduled = append(p.scheduled, label)
}

func (p *probeRecorder) EventFired(label string, born, when float64, wall time.Duration, pending int) {
	p.fired = append(p.fired, label)
	if p.dwell == nil {
		p.dwell = map[string]float64{}
	}
	p.dwell[label] = when - born
	p.wall += wall
}

func (p *probeRecorder) EventCancelled(label string, born, when, now float64, pending int) {
	p.cancelled = append(p.cancelled, label)
}

func TestScopeLabelsReachProbe(t *testing.T) {
	e := NewEngine()
	rec := &probeRecorder{}
	e.SetProbe(rec)
	ps := e.Scope("ps")
	wf := e.Scope("workflow")
	ps.At(10, func() {})
	wf.After(25, func() {})
	e.After(5, func() {}) // plain After: untagged
	doomed := ps.At(30, func() {})
	doomed.Cancel()
	e.Run()

	wantScheduled := []string{"ps", "workflow", Untagged, "ps"}
	if len(rec.scheduled) != len(wantScheduled) {
		t.Fatalf("scheduled labels = %v, want %v", rec.scheduled, wantScheduled)
	}
	for i := range wantScheduled {
		if rec.scheduled[i] != wantScheduled[i] {
			t.Fatalf("scheduled labels = %v, want %v", rec.scheduled, wantScheduled)
		}
	}
	wantFired := []string{Untagged, "ps", "workflow"}
	if len(rec.fired) != len(wantFired) {
		t.Fatalf("fired labels = %v, want %v", rec.fired, wantFired)
	}
	for i := range wantFired {
		if rec.fired[i] != wantFired[i] {
			t.Fatalf("fired labels = %v, want %v", rec.fired, wantFired)
		}
	}
	if len(rec.cancelled) != 1 || rec.cancelled[0] != "ps" {
		t.Fatalf("cancelled labels = %v, want [ps]", rec.cancelled)
	}
	if got := rec.dwell["workflow"]; got != 25 {
		t.Fatalf("workflow dwell = %v, want 25 (schedule→fire lag)", got)
	}
	if e.Scope("").Label() != Untagged {
		t.Fatalf("empty scope label = %q, want %q", e.Scope("").Label(), Untagged)
	}
}

// Detaching the probe stops observation without disturbing the queue.
func TestSetProbeNilDetaches(t *testing.T) {
	e := NewEngine()
	rec := &probeRecorder{}
	e.SetProbe(rec)
	e.Scope("a").At(1, func() {})
	e.SetProbe(nil)
	e.Scope("a").At(2, func() {})
	e.Run()
	if len(rec.scheduled) != 1 {
		t.Fatalf("scheduled after detach = %v, want 1 entry", rec.scheduled)
	}
	if len(rec.fired) != 0 {
		t.Fatalf("fired after detach = %v, want none", rec.fired)
	}
	if e.EventsFired() != 2 {
		t.Fatalf("EventsFired = %d, want 2", e.EventsFired())
	}
}
