package sim

import (
	"testing"
	"time"
)

type nopProbe struct{}

func (nopProbe) EventScheduled(label string, now, when float64, pending int)                  {}
func (nopProbe) EventFired(label string, born, when float64, wall time.Duration, pending int) {}
func (nopProbe) EventCancelled(label string, born, when, now float64, pending int)            {}

func benchEvents(b *testing.B, attach Probe) {
	e := NewEngine()
	if attach != nil {
		e.SetProbe(attach)
	}
	s := e.Scope("bench")
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(e.Now(), nop)
		e.Step()
	}
}

func BenchmarkEventDetached(b *testing.B) { benchEvents(b, nil) }
func BenchmarkEventNopProbe(b *testing.B) { benchEvents(b, nopProbe{}) }
