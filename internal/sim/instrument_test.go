package sim

import (
	"testing"

	"repro/internal/telemetry"
)

func TestInstrumentKernelMetrics(t *testing.T) {
	e := NewEngine()
	reg := telemetry.NewRegistry()
	e.At(10, func() {})
	e.At(20, func() { e.At(30, func() {}) })
	e.Instrument(reg)

	pending := reg.Gauge("sim_pending_events", nil)
	if got := pending.Value(); got != 2 {
		t.Fatalf("sim_pending_events = %v immediately after Instrument, want 2", got)
	}
	e.Run()
	if got := reg.Counter("sim_events_fired_total", nil).Value(); got != 3 {
		t.Errorf("sim_events_fired_total = %v, want 3", got)
	}
	if got := reg.Gauge("sim_clock_seconds", nil).Value(); got != 30 {
		t.Errorf("sim_clock_seconds = %v, want 30", got)
	}
	if got := pending.Value(); got != 0 {
		t.Errorf("sim_pending_events = %v after drain, want 0", got)
	}
}

// Replay lag is the deficit between where a paced replay should be and
// where the clock is: positive when the engine trails, negative when it
// leads.
func TestObserveReplayLag(t *testing.T) {
	e := NewEngine()
	reg := telemetry.NewRegistry()
	e.Instrument(reg)
	e.At(100, func() { e.ObserveReplayLag(175) })
	e.Run()
	if got := reg.Gauge("sim_replay_lag_seconds", nil).Value(); got != 75 {
		t.Errorf("sim_replay_lag_seconds = %v, want 75", got)
	}
}

// Instrument(nil) detaches the handles; the event path and lag observer
// must stay safe without a registry.
func TestInstrumentDetach(t *testing.T) {
	e := NewEngine()
	e.Instrument(telemetry.NewRegistry())
	e.Instrument(nil)
	e.At(5, func() { e.ObserveReplayLag(10) })
	e.Run()
	if e.EventsFired() != 1 {
		t.Errorf("EventsFired = %d, want 1", e.EventsFired())
	}
}
