package sim

import (
	"math"
	"testing"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("final Now() = %v, want 3", e.Now())
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie-break order broken: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at float64
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNilFuncPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil function did not panic")
		}
	}()
	e.At(1, nil)
}

func TestNaNTimePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("NaN time did not panic")
		}
	}()
	e.At(math.NaN(), func() {})
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	timer := e.At(5, func() { fired = true })
	if !timer.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !timer.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if timer.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerWhen(t *testing.T) {
	e := NewEngine()
	timer := e.At(42, func() {})
	if timer.When() != 42 {
		t.Fatalf("When() = %v, want 42", timer.When())
	}
	e.Run()
}

func TestZeroTimerIsInert(t *testing.T) {
	var timer Timer
	if timer.Cancel() {
		t.Fatal("Cancel on zero timer should report false")
	}
	if timer.Active() {
		t.Fatal("zero timer should not be active")
	}
	if timer.When() != 0 {
		t.Fatalf("When() on zero timer = %v, want 0", timer.When())
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(1, func() { order = append(order, 1) })
	mid := e.At(2, func() { order = append(order, 2) })
	e.At(3, func() { order = append(order, 3) })
	mid.Cancel()
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	e := NewEngine()
	var fired []float64
	e.At(5, func() { fired = append(fired, 5) })
	e.At(15, func() { fired = append(fired, 15) })
	e.RunUntil(10)
	if len(fired) != 1 || fired[0] != 5 {
		t.Fatalf("fired = %v, want [5]", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 2 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [5 15]", fired)
	}
}

func TestRunUntilDeadlineBeforeNowDoesNotRewind(t *testing.T) {
	e := NewEngine()
	e.At(20, func() {})
	e.Run()
	e.RunUntil(10)
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20 (clock must not rewind)", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", e.Pending())
	}
}

func TestPeekNext(t *testing.T) {
	e := NewEngine()
	if !math.IsInf(e.PeekNext(), 1) {
		t.Fatal("PeekNext on empty queue should be +Inf")
	}
	e.At(7, func() {})
	if e.PeekNext() != 7 {
		t.Fatalf("PeekNext = %v, want 7", e.PeekNext())
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	e := NewEngine()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 100 {
			e.After(1, schedule)
		}
	}
	e.At(0, schedule)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("Now() = %v, want 99", e.Now())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(float64(j%97), func() {})
		}
		e.Run()
	}
}
