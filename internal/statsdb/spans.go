package statsdb

import (
	"fmt"
	"strconv"

	"repro/internal/telemetry"
)

// SpansTableName is the conventional name of the trace-span table.
const SpansTableName = "spans"

// SpansSchema returns the schema of the trace-span table: one tuple per
// telemetry span, so a campaign's timing can be probed with the same SQL
// used for run statistics (e.g. mean simulation walltime per node, or the
// rsync lag behind the producing run).
func SpansSchema() Schema {
	return Schema{
		{Name: "id", Type: Int},
		{Name: "parent", Type: Int},
		{Name: "cat", Type: String},
		{Name: "name", Type: String},
		{Name: "track", Type: String},
		{Name: "start", Type: Float},
		{Name: "end", Type: Float},
		{Name: "duration", Type: Float},
		{Name: "forecast", Type: String},
		{Name: "day", Type: Int},
		{Name: "node", Type: String},
		{Name: "interrupted", Type: Bool},
	}
}

// LoadSpans creates (or extends) the spans table from exported trace
// spans (telemetry.Tracer.Spans), indexing id, cat, and track. The
// forecast, day, and node columns are lifted from the span annotations of
// the same names (zero values when absent); interrupted marks spans
// closed by EndOpen rather than a normal end.
//
// Loads are idempotent the way UpsertRuns is: rows are keyed on the span
// id, so re-loading the same trace (a monitor flush followed by an
// end-of-campaign flush, or a harvester re-pass) updates rows in place
// instead of duplicating them. Span ids are only unique within one
// tracer; feed one statsdb spans table from one tracer.
func LoadSpans(db *DB, spans []telemetry.Span) (*Table, error) {
	t := db.Table(SpansTableName)
	if t == nil {
		var err error
		t, err = db.CreateTable(SpansTableName, SpansSchema())
		if err != nil {
			return nil, err
		}
		for _, col := range []string{"id", "cat", "track"} {
			if err := t.CreateIndex(col); err != nil {
				return nil, err
			}
		}
	}
	for _, s := range spans {
		day := 0
		if d := s.Args["day"]; d != "" {
			n, err := strconv.Atoi(d)
			if err != nil {
				return nil, fmt.Errorf("statsdb: span %d (%s) has non-integer day %q", s.ID, s.Name, d)
			}
			day = n
		}
		node := s.Args["node"]
		if node == "" {
			node = s.Track
		}
		row := []Value{
			IntVal(s.ID),
			IntVal(s.Parent),
			StringVal(s.Cat),
			StringVal(s.Name),
			StringVal(s.Track),
			FloatVal(s.Start),
			FloatVal(s.End),
			FloatVal(s.End - s.Start),
			StringVal(s.Args["forecast"]),
			IntVal(int64(day)),
			StringVal(node),
			BoolVal(s.Args["interrupted"] == "true"),
		}
		if ids := t.lookupRows("id", IntVal(s.ID)); len(ids) > 0 {
			if err := t.Update(ids[0], row); err != nil {
				return nil, err
			}
		} else if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}
