package statsdb

import (
	"testing"
)

func sqlFixture(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	tbl, err := db.CreateTable("runs", Schema{
		{Name: "forecast", Type: String},
		{Name: "day", Type: Int},
		{Name: "walltime", Type: Float},
		{Name: "code_version", Type: String},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]Value{
		{StringVal("tillamook"), IntVal(1), FloatVal(40000), StringVal("v1")},
		{StringVal("tillamook"), IntVal(2), FloatVal(40100), StringVal("v1")},
		{StringVal("tillamook"), IntVal(3), FloatVal(80000), StringVal("v2")},
		{StringVal("dev"), IntVal(1), FloatVal(32000), StringVal("v1")},
		{StringVal("dev"), IntVal(2), FloatVal(52000), StringVal("v3")},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSQLSelectStar(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query("SELECT * FROM runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || len(res.Columns) != 4 {
		t.Fatalf("shape %dx%d", len(res.Rows), len(res.Columns))
	}
}

func TestSQLFindForecastsUsingCodeVersion(t *testing.T) {
	// The paper's motivating query: "find all forecasts that use code
	// version X".
	db := sqlFixture(t)
	res, err := db.Query("SELECT forecast, day FROM runs WHERE code_version = 'v1'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLWhereConjunctionAndComparators(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query("SELECT forecast FROM runs WHERE walltime >= 40100 AND day <> 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // tillamook day 2, dev day 2
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLGroupByWithAggregates(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query(
		"SELECT forecast, COUNT(*), AVG(walltime) FROM runs GROUP BY forecast ORDER BY forecast")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "dev" || res.Rows[0][1].Int() != 2 || res.Rows[0][2].Float() != 42000 {
		t.Fatalf("dev row = %v", res.Rows[0])
	}
}

func TestSQLGlobalAggregate(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query("SELECT MAX(walltime), MIN(day) FROM runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 80000 || res.Rows[0][1].Int() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLOrderByAggregateDesc(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query(
		"SELECT forecast, AVG(walltime) FROM runs GROUP BY forecast ORDER BY AVG(walltime) DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "tillamook" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLOrderByColumnAscDesc(t *testing.T) {
	db := sqlFixture(t)
	asc, err := db.Query("SELECT walltime FROM runs ORDER BY walltime ASC")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := db.Query("SELECT walltime FROM runs ORDER BY walltime DESC")
	if err != nil {
		t.Fatal(err)
	}
	n := len(asc.Rows)
	for i := 0; i < n; i++ {
		if asc.Rows[i][0] != desc.Rows[n-1-i][0] {
			t.Fatal("ASC is not the reverse of DESC")
		}
	}
	if asc.Rows[0][0].Float() != 32000 {
		t.Fatalf("min = %v", asc.Rows[0][0])
	}
}

func TestSQLLimit(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query("SELECT * FROM runs LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLStringEscapes(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", Schema{{Name: "s", Type: String}})
	if err := tbl.Insert([]Value{StringVal("it's")}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT s FROM t WHERE s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLBoolAndFloatLiterals(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", Schema{{Name: "ok", Type: Bool}, {Name: "x", Type: Float}})
	_ = tbl.Insert([]Value{BoolVal(true), FloatVal(1.5)})
	_ = tbl.Insert([]Value{BoolVal(false), FloatVal(-2.5)})
	res, err := db.Query("SELECT x FROM t WHERE ok = true")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 1.5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res, err = db.Query("SELECT ok FROM t WHERE x <= -2.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Bool() {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLCaseInsensitiveKeywords(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query("select forecast from runs where day = 1 order by forecast desc")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "tillamook" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLSyntaxErrors(t *testing.T) {
	db := sqlFixture(t)
	bad := []string{
		"",
		"SELEC * FROM runs",
		"SELECT * FROMM runs",
		"SELECT * FROM missing",
		"SELECT * FROM runs WHERE",
		"SELECT * FROM runs WHERE day ~ 3",
		"SELECT * FROM runs WHERE day = ",
		"SELECT * FROM runs WHERE forecast = unquoted",
		"SELECT * FROM runs LIMIT x",
		"SELECT * FROM runs LIMIT -1",
		"SELECT * FROM runs trailing garbage",
		"SELECT COUNT( FROM runs",
		"SELECT SUM(*) FROM runs",
		"SELECT * FROM runs GROUP BY",
		"SELECT * FROM runs ORDER BY",
		"SELECT 'literal' FROM runs",
		"SELECT * FROM runs WHERE s = 'unterminated",
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("accepted bad SQL: %q", sql)
		}
	}
}

func TestSQLUngroupedColumnWithAggregateRejected(t *testing.T) {
	db := sqlFixture(t)
	if _, err := db.Query("SELECT forecast, COUNT(*) FROM runs"); err == nil {
		t.Fatal("ungrouped column with aggregate accepted")
	}
}

func TestSQLResultFloats(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query("SELECT day, walltime FROM runs WHERE forecast = 'tillamook' ORDER BY day")
	if err != nil {
		t.Fatal(err)
	}
	days, err := res.Floats("day")
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 3 || days[0] != 1 || days[2] != 3 {
		t.Fatalf("days = %v", days)
	}
	if _, err := res.Floats("missing"); err == nil {
		t.Fatal("Floats on missing column accepted")
	}
	res2, _ := db.Query("SELECT forecast FROM runs")
	if _, err := res2.Floats("forecast"); err == nil {
		t.Fatal("Floats on string column accepted")
	}
}
