package statsdb

import (
	"strings"
	"testing"

	"repro/internal/logs"
)

// joinFixture: runs on two nodes plus a nodes metadata table.
func joinFixture(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if _, err := LoadRuns(db, []*logs.RunRecord{
		rec("tillamook", 1, 40000, "v1"),
		rec("tillamook", 2, 40100, "v1"),
		rec("dev", 1, 16000, "v2"),
	}); err != nil {
		t.Fatal(err)
	}
	// dev ran on the fast node.
	fast := rec("dev", 2, 16100, "v2")
	fast.Node = "fnode02"
	tbl := db.Table("runs")
	if err := tbl.Insert([]Value{
		StringVal(fast.Forecast), StringVal(fast.Region), IntVal(int64(fast.Year)),
		IntVal(int64(fast.Day)), StringVal(fast.Node), StringVal(fast.CodeVersion),
		FloatVal(fast.CodeFactor), StringVal(fast.MeshName), IntVal(int64(fast.MeshSides)),
		IntVal(int64(fast.Timesteps)), FloatVal(fast.Start), FloatVal(fast.End),
		FloatVal(fast.Walltime), StringVal(fast.Status), IntVal(int64(fast.Products)),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadNodes(db, []NodeRow{
		{Name: "fnode01", CPUs: 2, Speed: 1.0},
		{Name: "fnode02", CPUs: 2, Speed: 2.0},
		{Name: "fnode03", CPUs: 2, Speed: 1.0}, // no runs
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestJoinMaterializesMatchingPairs(t *testing.T) {
	db := joinFixture(t)
	joined, err := Join(db.Table("runs"), db.Table("nodes"), "node", "name")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 4 { // every run matches exactly one node
		t.Fatalf("joined rows = %d, want 4", joined.Len())
	}
	// Qualified columns present.
	s := joined.Schema()
	if s.Index("runs.walltime") < 0 || s.Index("nodes.speed") < 0 {
		t.Fatalf("schema = %v", s)
	}
}

func TestJoinErrors(t *testing.T) {
	db := joinFixture(t)
	runs, nodes := db.Table("runs"), db.Table("nodes")
	if _, err := Join(nil, nodes, "a", "b"); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := Join(runs, nodes, "nope", "name"); err == nil {
		t.Fatal("unknown left column accepted")
	}
	if _, err := Join(runs, nodes, "node", "nope"); err == nil {
		t.Fatal("unknown right column accepted")
	}
	if _, err := Join(runs, nodes, "walltime", "name"); err == nil {
		t.Fatal("float-string join accepted")
	}
	if _, err := Join(runs, nodes, "day", "speed"); err != nil {
		t.Fatalf("int-float join rejected: %v", err)
	}
}

func TestSQLJoinQuery(t *testing.T) {
	db := joinFixture(t)
	// Speed-normalized walltime per forecast: the monitoring query the
	// plant metadata enables.
	res, err := db.Query(
		"SELECT forecast, AVG(walltime), AVG(speed) FROM runs JOIN nodes ON node = name " +
			"GROUP BY forecast ORDER BY forecast")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	dev := res.Rows[0]
	if dev[0].Str() != "dev" || dev[2].Float() != 1.5 {
		t.Fatalf("dev row = %v (avg speed of fnode01+fnode02 should be 1.5)", dev)
	}
}

func TestSQLJoinWithQualifiedColumns(t *testing.T) {
	db := joinFixture(t)
	res, err := db.Query(
		"SELECT runs.forecast, nodes.speed FROM runs JOIN nodes ON runs.node = nodes.name " +
			"WHERE nodes.speed >= 2.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "dev" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "runs.forecast" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestSQLJoinAmbiguousColumnRejected(t *testing.T) {
	db := NewDB()
	a, _ := db.CreateTable("a", Schema{{Name: "k", Type: Int}, {Name: "v", Type: Int}})
	b, _ := db.CreateTable("b", Schema{{Name: "k", Type: Int}, {Name: "v", Type: Int}})
	_ = a.Insert([]Value{IntVal(1), IntVal(10)})
	_ = b.Insert([]Value{IntVal(1), IntVal(20)})
	// "v" exists on both sides: selecting it unqualified is ambiguous.
	if _, err := db.Query("SELECT v FROM a JOIN b ON a.k = b.k"); err == nil {
		t.Fatal("ambiguous column accepted")
	}
	// "k" in ON is ambiguous without qualification.
	if _, err := db.Query("SELECT a.v FROM a JOIN b ON k = k"); err == nil {
		t.Fatal("ambiguous ON column accepted")
	}
	// Qualified works.
	res, err := db.Query("SELECT a.v, b.v FROM a JOIN b ON a.k = b.k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 10 || res.Rows[0][1].Int() != 20 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLJoinSyntaxErrors(t *testing.T) {
	db := joinFixture(t)
	bad := []string{
		"SELECT * FROM runs JOIN",
		"SELECT * FROM runs JOIN missing ON node = name",
		"SELECT * FROM runs JOIN nodes",
		"SELECT * FROM runs JOIN nodes ON node",
		"SELECT * FROM runs JOIN nodes ON node = ",
		"SELECT * FROM runs JOIN nodes ON node = nope",
		"SELECT * FROM runs JOIN nodes ON node = walltime", // both left side
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("accepted bad SQL: %q", sql)
		}
	}
}

func TestSQLJoinOrderByAggregate(t *testing.T) {
	db := joinFixture(t)
	res, err := db.Query(
		"SELECT forecast, MAX(walltime) FROM runs JOIN nodes ON node = name " +
			"GROUP BY forecast ORDER BY MAX(walltime) DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "tillamook" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinUnmatchedRowsDropped(t *testing.T) {
	// Inner join: nodes without runs do not appear.
	db := joinFixture(t)
	res, err := db.Query("SELECT nodes.name FROM runs JOIN nodes ON node = name GROUP BY nodes.name")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, row := range res.Rows {
		names = append(names, row[0].Str())
	}
	joinedNames := strings.Join(names, ",")
	if strings.Contains(joinedNames, "fnode03") {
		t.Fatalf("unmatched node appeared: %v", names)
	}
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
}

func TestLoadNodesValidation(t *testing.T) {
	db := NewDB()
	if _, err := LoadNodes(db, []NodeRow{{Name: ""}}); err == nil {
		t.Fatal("empty node name accepted")
	}
	if _, err := LoadNodes(db, []NodeRow{{Name: "n1", CPUs: 2, Speed: 1}}); err != nil {
		t.Fatal(err)
	}
	// Extending works.
	tbl, err := LoadNodes(db, []NodeRow{{Name: "n2", CPUs: 2, Speed: 1}})
	if err != nil || tbl.Len() != 2 {
		t.Fatalf("len=%d err=%v", tbl.Len(), err)
	}
}
