package statsdb

import (
	"fmt"
	"sort"
)

// Column declares one table column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// Index returns the position of a column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Table is a heap of typed rows with optional hash indexes. Create with
// DB.CreateTable or NewTable.
type Table struct {
	name    string
	schema  Schema
	rows    [][]Value
	indexes map[string]map[Value][]int // column name → value → row ids
}

// NewTable creates a table. Duplicate or empty column names are errors.
func NewTable(name string, schema Schema) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("statsdb: table needs a name")
	}
	if len(schema) == 0 {
		return nil, fmt.Errorf("statsdb: table %s needs at least one column", name)
	}
	seen := make(map[string]bool, len(schema))
	for _, c := range schema {
		if c.Name == "" {
			return nil, fmt.Errorf("statsdb: table %s has an unnamed column", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("statsdb: table %s has duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
	}
	return &Table{
		name:    name,
		schema:  append(Schema(nil), schema...),
		indexes: make(map[string]map[Value][]int),
	}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return append(Schema(nil), t.schema...) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// CreateIndex builds a hash index on a column. Indexing an indexed column
// again is a no-op.
func (t *Table) CreateIndex(column string) error {
	ci := t.schema.Index(column)
	if ci < 0 {
		return fmt.Errorf("statsdb: table %s has no column %q", t.name, column)
	}
	if _, ok := t.indexes[column]; ok {
		return nil
	}
	idx := make(map[Value][]int)
	for rowID, row := range t.rows {
		idx[row[ci]] = append(idx[row[ci]], rowID)
	}
	t.indexes[column] = idx
	return nil
}

// Indexed reports whether a column has a hash index.
func (t *Table) Indexed(column string) bool {
	_, ok := t.indexes[column]
	return ok
}

// IndexedColumns returns the indexed column names, sorted.
func (t *Table) IndexedColumns() []string {
	out := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Insert appends a row, enforcing arity and column types, and maintains
// all indexes.
func (t *Table) Insert(row []Value) error {
	if len(row) != len(t.schema) {
		return fmt.Errorf("statsdb: table %s expects %d values, got %d", t.name, len(t.schema), len(row))
	}
	for i, v := range row {
		if v.Type() != t.schema[i].Type {
			return fmt.Errorf("statsdb: table %s column %q expects %s, got %s",
				t.name, t.schema[i].Name, t.schema[i].Type, v.Type())
		}
		if err := checkValue(v); err != nil {
			return fmt.Errorf("statsdb: table %s column %q: %w", t.name, t.schema[i].Name, err)
		}
	}
	rowID := len(t.rows)
	t.rows = append(t.rows, append([]Value(nil), row...))
	for column, idx := range t.indexes {
		ci := t.schema.Index(column)
		idx[row[ci]] = append(idx[row[ci]], rowID)
	}
	return nil
}

// Row returns a copy of the i-th row.
func (t *Table) Row(i int) []Value {
	return append([]Value(nil), t.rows[i]...)
}

// DB is a named collection of tables.
type DB struct {
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable adds a table to the database.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("statsdb: table %s already exists", name)
	}
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// Table returns a table by name, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
