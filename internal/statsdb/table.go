package statsdb

import (
	"fmt"
	"sort"
)

// Column declares one table column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// Index returns the position of a column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Table is a heap of typed rows with optional hash indexes. Create with
// DB.CreateTable or NewTable.
type Table struct {
	name    string
	schema  Schema
	rows    [][]Value
	indexes map[string]map[Value][]int // column name → value → row ids
}

// NewTable creates a table. Duplicate or empty column names are errors.
func NewTable(name string, schema Schema) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("statsdb: table needs a name")
	}
	if len(schema) == 0 {
		return nil, fmt.Errorf("statsdb: table %s needs at least one column", name)
	}
	seen := make(map[string]bool, len(schema))
	for _, c := range schema {
		if c.Name == "" {
			return nil, fmt.Errorf("statsdb: table %s has an unnamed column", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("statsdb: table %s has duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
	}
	return &Table{
		name:    name,
		schema:  append(Schema(nil), schema...),
		indexes: make(map[string]map[Value][]int),
	}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return append(Schema(nil), t.schema...) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// CreateIndex builds a hash index on a column. Indexing an indexed column
// again is a no-op.
func (t *Table) CreateIndex(column string) error {
	ci := t.schema.Index(column)
	if ci < 0 {
		return fmt.Errorf("statsdb: table %s has no column %q", t.name, column)
	}
	if _, ok := t.indexes[column]; ok {
		return nil
	}
	idx := make(map[Value][]int)
	for rowID, row := range t.rows {
		idx[row[ci]] = append(idx[row[ci]], rowID)
	}
	t.indexes[column] = idx
	return nil
}

// Indexed reports whether a column has a hash index.
func (t *Table) Indexed(column string) bool {
	_, ok := t.indexes[column]
	return ok
}

// IndexedColumns returns the indexed column names, sorted.
func (t *Table) IndexedColumns() []string {
	out := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Insert appends a row, enforcing arity and column types, and maintains
// all indexes.
func (t *Table) Insert(row []Value) error {
	if len(row) != len(t.schema) {
		return fmt.Errorf("statsdb: table %s expects %d values, got %d", t.name, len(t.schema), len(row))
	}
	for i, v := range row {
		if v.Type() != t.schema[i].Type {
			return fmt.Errorf("statsdb: table %s column %q expects %s, got %s",
				t.name, t.schema[i].Name, t.schema[i].Type, v.Type())
		}
		if err := checkValue(v); err != nil {
			return fmt.Errorf("statsdb: table %s column %q: %w", t.name, t.schema[i].Name, err)
		}
	}
	rowID := len(t.rows)
	t.rows = append(t.rows, append([]Value(nil), row...))
	for column, idx := range t.indexes {
		ci := t.schema.Index(column)
		idx[row[ci]] = append(idx[row[ci]], rowID)
	}
	return nil
}

// Row returns a copy of the i-th row.
func (t *Table) Row(i int) []Value {
	return append([]Value(nil), t.rows[i]...)
}

// Update replaces row i in place, enforcing arity and column types, and
// maintains all indexes. Row ids are stable across updates, so index
// entries for unchanged columns stay valid.
func (t *Table) Update(i int, row []Value) error {
	if i < 0 || i >= len(t.rows) {
		return fmt.Errorf("statsdb: table %s has no row %d", t.name, i)
	}
	if len(row) != len(t.schema) {
		return fmt.Errorf("statsdb: table %s expects %d values, got %d", t.name, len(t.schema), len(row))
	}
	for ci, v := range row {
		if v.Type() != t.schema[ci].Type {
			return fmt.Errorf("statsdb: table %s column %q expects %s, got %s",
				t.name, t.schema[ci].Name, t.schema[ci].Type, v.Type())
		}
		if err := checkValue(v); err != nil {
			return fmt.Errorf("statsdb: table %s column %q: %w", t.name, t.schema[ci].Name, err)
		}
	}
	old := t.rows[i]
	for column, idx := range t.indexes {
		ci := t.schema.Index(column)
		if old[ci] == row[ci] {
			continue
		}
		ids := idx[old[ci]]
		for k, id := range ids {
			if id == i {
				ids = append(ids[:k], ids[k+1:]...)
				break
			}
		}
		if len(ids) == 0 {
			delete(idx, old[ci])
		} else {
			idx[old[ci]] = ids
		}
		idx[row[ci]] = append(idx[row[ci]], i)
	}
	t.rows[i] = append([]Value(nil), row...)
	return nil
}

// AddColumn widens the table with a new column, filling every existing
// row with def — the in-place half of a schema migration. Indexes on
// existing columns are untouched.
func (t *Table) AddColumn(col Column, def Value) error {
	if col.Name == "" {
		return fmt.Errorf("statsdb: table %s: new column needs a name", t.name)
	}
	if t.schema.Index(col.Name) >= 0 {
		return fmt.Errorf("statsdb: table %s already has column %q", t.name, col.Name)
	}
	if def.Type() != col.Type {
		return fmt.Errorf("statsdb: table %s column %q default is %s, want %s",
			t.name, col.Name, def.Type(), col.Type)
	}
	if err := checkValue(def); err != nil {
		return fmt.Errorf("statsdb: table %s column %q: %w", t.name, col.Name, err)
	}
	t.schema = append(t.schema, col)
	for i := range t.rows {
		t.rows[i] = append(t.rows[i], def)
	}
	return nil
}

// lookupRows returns the ids of rows whose column equals v, using the
// hash index when one exists and a scan otherwise.
func (t *Table) lookupRows(column string, v Value) []int {
	if idx, ok := t.indexes[column]; ok {
		return idx[v]
	}
	ci := t.schema.Index(column)
	if ci < 0 {
		return nil
	}
	var ids []int
	for i, row := range t.rows {
		if row[ci] == v {
			ids = append(ids, i)
		}
	}
	return ids
}

// DB is a named collection of tables.
type DB struct {
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable adds a table to the database.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("statsdb: table %s already exists", name)
	}
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// Table returns a table by name, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
