package statsdb

import (
	"fmt"

	"repro/internal/logs"
)

// RunsTableName is the conventional name of the run-statistics table.
const RunsTableName = "runs"

// Names of the provenance columns the harvester's schema migrations add
// to the runs table (see internal/harvest). Loading handles their
// presence or absence transparently.
const (
	ColHarvestedAt = "harvested_at"
	ColSourcePath  = "source_path"
)

// RunsSchema returns the base schema of the run-statistics table: one
// tuple per run execution, as harvested from run logs. Databases built by
// the harvester carry additional provenance columns on top (harvested_at,
// source_path) via migrations.
func RunsSchema() Schema {
	return Schema{
		{Name: "forecast", Type: String},
		{Name: "region", Type: String},
		{Name: "year", Type: Int},
		{Name: "day", Type: Int},
		{Name: "node", Type: String},
		{Name: "code_version", Type: String},
		{Name: "code_factor", Type: Float},
		{Name: "mesh", Type: String},
		{Name: "mesh_sides", Type: Int},
		{Name: "timesteps", Type: Int},
		{Name: "start", Type: Float},
		{Name: "end", Type: Float},
		{Name: "walltime", Type: Float},
		{Name: "status", Type: String},
		{Name: "products", Type: Int},
	}
}

// NodesTableName is the conventional name of the plant-metadata table.
const NodesTableName = "nodes"

// NodeRow is plant metadata for the nodes table.
type NodeRow struct {
	Name  string
	CPUs  int
	Speed float64
}

// LoadNodes creates (or extends) the nodes table, enabling joined queries
// such as speed-normalized walltimes per node.
func LoadNodes(db *DB, nodes []NodeRow) (*Table, error) {
	t := db.Table(NodesTableName)
	if t == nil {
		var err error
		t, err = db.CreateTable(NodesTableName, Schema{
			{Name: "name", Type: String},
			{Name: "cpus", Type: Int},
			{Name: "speed", Type: Float},
		})
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex("name"); err != nil {
			return nil, err
		}
	}
	for _, n := range nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("statsdb: node row with empty name")
		}
		err := t.Insert([]Value{StringVal(n.Name), IntVal(int64(n.CPUs)), FloatVal(n.Speed)})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// EnsureRunsTable finds or creates the runs table with the base schema,
// indexing the columns the factory's common queries probe: forecast name,
// code version, and node.
func EnsureRunsTable(db *DB) (*Table, error) {
	if t := db.Table(RunsTableName); t != nil {
		return t, nil
	}
	t, err := db.CreateTable(RunsTableName, RunsSchema())
	if err != nil {
		return nil, err
	}
	for _, col := range []string{"forecast", "code_version", "node"} {
		if err := t.CreateIndex(col); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// runRow renders a record as a row of the table's actual schema, so the
// same loader works before and after the provenance migrations widen the
// table. Unknown columns get zero values of their type.
func runRow(schema Schema, r *logs.RunRecord, harvestedAt float64) []Value {
	row := make([]Value, len(schema))
	for i, c := range schema {
		switch c.Name {
		case "forecast":
			row[i] = StringVal(r.Forecast)
		case "region":
			row[i] = StringVal(r.Region)
		case "year":
			row[i] = IntVal(int64(r.Year))
		case "day":
			row[i] = IntVal(int64(r.Day))
		case "node":
			row[i] = StringVal(r.Node)
		case "code_version":
			row[i] = StringVal(r.CodeVersion)
		case "code_factor":
			row[i] = FloatVal(r.CodeFactor)
		case "mesh":
			row[i] = StringVal(r.MeshName)
		case "mesh_sides":
			row[i] = IntVal(int64(r.MeshSides))
		case "timesteps":
			row[i] = IntVal(int64(r.Timesteps))
		case "start":
			row[i] = FloatVal(r.Start)
		case "end":
			row[i] = FloatVal(r.End)
		case "walltime":
			row[i] = FloatVal(r.Walltime)
		case "status":
			row[i] = StringVal(r.Status)
		case "products":
			row[i] = IntVal(int64(r.Products))
		case ColHarvestedAt:
			row[i] = FloatVal(harvestedAt)
		case ColSourcePath:
			row[i] = StringVal(r.SourcePath)
		default:
			switch c.Type {
			case Int:
				row[i] = IntVal(0)
			case Float:
				row[i] = FloatVal(0)
			case Bool:
				row[i] = BoolVal(false)
			default:
				row[i] = StringVal("")
			}
		}
	}
	return row
}

// UpsertStats counts what one upsert batch did.
type UpsertStats struct {
	Inserted int
	Updated  int
}

// UpsertRuns inserts records into the runs table, replacing any existing
// row with the same (forecast, day, start) key — one run execution —
// instead of appending a duplicate. This is what makes re-harvesting the
// same logs (a crash-recovery re-scan, a running log superseded by its
// completed version) idempotent. harvestedAt fills the harvested_at
// provenance column when the table carries it.
func UpsertRuns(db *DB, records []*logs.RunRecord, harvestedAt float64) (*Table, UpsertStats, error) {
	var stats UpsertStats
	t, err := EnsureRunsTable(db)
	if err != nil {
		return nil, stats, err
	}
	schema := t.schema
	di := schema.Index("day")
	si := schema.Index("start")
	for _, r := range records {
		if err := r.Validate(); err != nil {
			return nil, stats, fmt.Errorf("statsdb: load runs: %w", err)
		}
		row := runRow(schema, r, harvestedAt)
		replaced := false
		for _, id := range t.lookupRows("forecast", StringVal(r.Forecast)) {
			have := t.rows[id]
			if have[di].Int() == int64(r.Day) && have[si].Float() == r.Start {
				if err := t.Update(id, row); err != nil {
					return nil, stats, err
				}
				replaced = true
				stats.Updated++
				break
			}
		}
		if replaced {
			continue
		}
		if err := t.Insert(row); err != nil {
			return nil, stats, err
		}
		stats.Inserted++
	}
	return t, stats, nil
}

// LoadRuns creates (or extends) the runs table from crawled run records.
// Loading is an upsert keyed on (forecast, day, start): loading the same
// records twice leaves the table unchanged rather than duplicating rows.
func LoadRuns(db *DB, records []*logs.RunRecord) (*Table, error) {
	t, _, err := UpsertRuns(db, records, 0)
	return t, err
}

// ReadRuns converts the runs table back into run records — the inverse of
// UpsertRuns, so consumers built on []*logs.RunRecord (the estimator, the
// monitor's history seed) can feed from a harvested database. Provenance
// columns, when present, populate SourcePath; unknown columns are ignored.
func ReadRuns(db *DB) ([]*logs.RunRecord, error) {
	t := db.Table(RunsTableName)
	if t == nil {
		return nil, nil
	}
	out := make([]*logs.RunRecord, 0, t.Len())
	for i := 0; i < t.Len(); i++ {
		r := &logs.RunRecord{}
		for ci, c := range t.schema {
			v := t.rows[i][ci]
			switch c.Name {
			case "forecast":
				r.Forecast = v.Str()
			case "region":
				r.Region = v.Str()
			case "year":
				r.Year = int(v.Int())
			case "day":
				r.Day = int(v.Int())
			case "node":
				r.Node = v.Str()
			case "code_version":
				r.CodeVersion = v.Str()
			case "code_factor":
				r.CodeFactor = v.Float()
			case "mesh":
				r.MeshName = v.Str()
			case "mesh_sides":
				r.MeshSides = int(v.Int())
			case "timesteps":
				r.Timesteps = int(v.Int())
			case "start":
				r.Start = v.Float()
			case "end":
				r.End = v.Float()
			case "walltime":
				r.Walltime = v.Float()
			case "status":
				r.Status = v.Str()
			case "products":
				r.Products = int(v.Int())
			case ColSourcePath:
				r.SourcePath = v.Str()
			}
		}
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("statsdb: read runs row %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}
