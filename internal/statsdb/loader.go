package statsdb

import (
	"fmt"

	"repro/internal/logs"
)

// RunsTableName is the conventional name of the run-statistics table.
const RunsTableName = "runs"

// RunsSchema returns the schema of the run-statistics table: one tuple per
// run execution, as harvested from run logs.
func RunsSchema() Schema {
	return Schema{
		{Name: "forecast", Type: String},
		{Name: "region", Type: String},
		{Name: "year", Type: Int},
		{Name: "day", Type: Int},
		{Name: "node", Type: String},
		{Name: "code_version", Type: String},
		{Name: "code_factor", Type: Float},
		{Name: "mesh", Type: String},
		{Name: "mesh_sides", Type: Int},
		{Name: "timesteps", Type: Int},
		{Name: "start", Type: Float},
		{Name: "end", Type: Float},
		{Name: "walltime", Type: Float},
		{Name: "status", Type: String},
		{Name: "products", Type: Int},
	}
}

// NodesTableName is the conventional name of the plant-metadata table.
const NodesTableName = "nodes"

// NodeRow is plant metadata for the nodes table.
type NodeRow struct {
	Name  string
	CPUs  int
	Speed float64
}

// LoadNodes creates (or extends) the nodes table, enabling joined queries
// such as speed-normalized walltimes per node.
func LoadNodes(db *DB, nodes []NodeRow) (*Table, error) {
	t := db.Table(NodesTableName)
	if t == nil {
		var err error
		t, err = db.CreateTable(NodesTableName, Schema{
			{Name: "name", Type: String},
			{Name: "cpus", Type: Int},
			{Name: "speed", Type: Float},
		})
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex("name"); err != nil {
			return nil, err
		}
	}
	for _, n := range nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("statsdb: node row with empty name")
		}
		err := t.Insert([]Value{StringVal(n.Name), IntVal(int64(n.CPUs)), FloatVal(n.Speed)})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// LoadRuns creates (or extends) the runs table from crawled run records,
// indexing the columns the factory's common queries probe: forecast name,
// code version, and node.
func LoadRuns(db *DB, records []*logs.RunRecord) (*Table, error) {
	t := db.Table(RunsTableName)
	if t == nil {
		var err error
		t, err = db.CreateTable(RunsTableName, RunsSchema())
		if err != nil {
			return nil, err
		}
		for _, col := range []string{"forecast", "code_version", "node"} {
			if err := t.CreateIndex(col); err != nil {
				return nil, err
			}
		}
	}
	for _, r := range records {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("statsdb: load runs: %w", err)
		}
		row := []Value{
			StringVal(r.Forecast),
			StringVal(r.Region),
			IntVal(int64(r.Year)),
			IntVal(int64(r.Day)),
			StringVal(r.Node),
			StringVal(r.CodeVersion),
			FloatVal(r.CodeFactor),
			StringVal(r.MeshName),
			IntVal(int64(r.MeshSides)),
			IntVal(int64(r.Timesteps)),
			FloatVal(r.Start),
			FloatVal(r.End),
			FloatVal(r.Walltime),
			StringVal(r.Status),
			IntVal(int64(r.Products)),
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}
