package statsdb

import (
	"fmt"
	"sort"
	"strings"
)

// Op is a comparison operator in a predicate.
type Op int

// Predicate operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in SQL syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Pred is one column-vs-literal comparison. Predicates in a query are
// conjoined (AND).
type Pred struct {
	Col string
	Op  Op
	Val Value
}

// matches evaluates the predicate against a value.
func (p Pred) matches(v Value) (bool, error) {
	c, err := Compare(v, p.Val)
	if err != nil {
		return false, err
	}
	switch p.Op {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("statsdb: unknown operator %v", p.Op)
	}
}

// AggFn is an aggregate function.
type AggFn int

// Aggregate functions.
const (
	AggCount AggFn = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String renders the function name in SQL syntax.
func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFn(%d)", int(f))
	}
}

// Agg is one aggregate in a select list. Col is "*" for COUNT(*).
type Agg struct {
	Fn  AggFn
	Col string
}

// Label returns the result-column label, e.g. "avg(walltime)".
func (a Agg) Label() string {
	return strings.ToLower(a.Fn.String()) + "(" + a.Col + ")"
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Col  string // a selected column or aggregate label
	Desc bool
}

// Query is a single-table select. Build with Select, chain modifiers, and
// finish with Run.
type Query struct {
	table   *Table
	cols    []string
	aggs    []Agg
	preds   []Pred
	groupBy []string
	orderBy []OrderKey
	limit   int // 0 = no limit
	err     error
}

// Select starts a query over a table projecting the named columns (or all
// columns when none are given).
func Select(t *Table, cols ...string) *Query {
	q := &Query{table: t, limit: 0}
	if t == nil {
		q.err = fmt.Errorf("statsdb: Select on nil table")
		return q
	}
	if len(cols) == 0 {
		for _, c := range t.schema {
			q.cols = append(q.cols, c.Name)
		}
	} else {
		q.cols = append(q.cols, cols...)
	}
	return q
}

// Aggregate adds aggregate terms to the select list.
func (q *Query) Aggregate(aggs ...Agg) *Query {
	q.aggs = append(q.aggs, aggs...)
	return q
}

// Where adds AND-conjoined predicates.
func (q *Query) Where(preds ...Pred) *Query {
	q.preds = append(q.preds, preds...)
	return q
}

// GroupBy sets grouping columns. With grouping, the plain select list must
// be a subset of the grouping columns.
func (q *Query) GroupBy(cols ...string) *Query {
	q.groupBy = append(q.groupBy, cols...)
	return q
}

// OrderBy sets result ordering.
func (q *Query) OrderBy(keys ...OrderKey) *Query {
	q.orderBy = append(q.orderBy, keys...)
	return q
}

// Limit caps the number of result rows (0 = unlimited).
func (q *Query) Limit(n int) *Query {
	q.limit = n
	return q
}

// Result is a query result: named columns and rows.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Column returns the index of a result column, or -1.
func (r *Result) Column(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Floats extracts a numeric result column as float64s.
func (r *Result) Floats(name string) ([]float64, error) {
	ci := r.Column(name)
	if ci < 0 {
		return nil, fmt.Errorf("statsdb: result has no column %q", name)
	}
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		if !row[ci].IsNumeric() {
			return nil, fmt.Errorf("statsdb: column %q is not numeric", name)
		}
		out[i] = row[ci].Float()
	}
	return out, nil
}

// Explain describes the access path and operators the query will use,
// without executing it: "index probe on <col>" or "full scan", plus
// filter, group, order, and limit stages.
func (q *Query) Explain() (string, error) {
	if q.err != nil {
		return "", q.err
	}
	t := q.table
	var b strings.Builder
	probe := ""
	for _, p := range q.preds {
		if p.Op == OpEq && t.Indexed(p.Col) {
			probe = p.Col
			break
		}
	}
	if probe != "" {
		fmt.Fprintf(&b, "index probe on %s.%s", t.name, probe)
	} else {
		fmt.Fprintf(&b, "full scan of %s (%d rows)", t.name, t.Len())
	}
	if n := len(q.preds); n > 0 {
		fmt.Fprintf(&b, " | filter %d predicate(s)", n)
	}
	if len(q.groupBy) > 0 {
		fmt.Fprintf(&b, " | hash group by (%s)", strings.Join(q.groupBy, ", "))
	} else if len(q.aggs) > 0 {
		b.WriteString(" | aggregate")
	}
	if len(q.orderBy) > 0 {
		var keys []string
		for _, k := range q.orderBy {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			keys = append(keys, k.Col+" "+dir)
		}
		fmt.Fprintf(&b, " | sort (%s)", strings.Join(keys, ", "))
	}
	if q.limit > 0 {
		fmt.Fprintf(&b, " | limit %d", q.limit)
	}
	return b.String(), nil
}

// Run plans and executes the query.
//
// Planning: an equality predicate on an indexed column selects an index
// probe; remaining predicates filter the probed rows. Otherwise the table
// is scanned. Grouping hashes rows by group key; ordering is a stable sort
// over the result.
func (q *Query) Run() (*Result, error) {
	if q.err != nil {
		return nil, q.err
	}
	t := q.table

	// Resolve and validate referenced columns.
	for _, c := range q.cols {
		if t.schema.Index(c) < 0 {
			return nil, fmt.Errorf("statsdb: table %s has no column %q", t.name, c)
		}
	}
	for _, p := range q.preds {
		if t.schema.Index(p.Col) < 0 {
			return nil, fmt.Errorf("statsdb: table %s has no column %q", t.name, p.Col)
		}
	}
	for _, g := range q.groupBy {
		if t.schema.Index(g) < 0 {
			return nil, fmt.Errorf("statsdb: table %s has no column %q", t.name, g)
		}
	}
	for _, a := range q.aggs {
		if a.Col != "*" && t.schema.Index(a.Col) < 0 {
			return nil, fmt.Errorf("statsdb: table %s has no column %q", t.name, a.Col)
		}
		if a.Col == "*" && a.Fn != AggCount {
			return nil, fmt.Errorf("statsdb: %s(*) is not defined", a.Fn)
		}
	}
	if len(q.groupBy) > 0 {
		group := make(map[string]bool, len(q.groupBy))
		for _, g := range q.groupBy {
			group[g] = true
		}
		for _, c := range q.cols {
			if !group[c] {
				return nil, fmt.Errorf("statsdb: column %q selected but not grouped", c)
			}
		}
	}
	if len(q.aggs) > 0 && len(q.groupBy) == 0 && len(q.colsExplicit()) > 0 {
		return nil, fmt.Errorf("statsdb: plain columns with aggregates require GROUP BY")
	}

	rowIDs, err := q.plan()
	if err != nil {
		return nil, err
	}

	var res *Result
	if len(q.aggs) > 0 || len(q.groupBy) > 0 {
		res, err = q.aggregate(rowIDs)
	} else {
		res, err = q.project(rowIDs)
	}
	if err != nil {
		return nil, err
	}
	if err := q.order(res); err != nil {
		return nil, err
	}
	if q.limit > 0 && len(res.Rows) > q.limit {
		res.Rows = res.Rows[:q.limit]
	}
	return res, nil
}

// colsExplicit returns the select-list columns when aggregates are present
// (the implicit all-columns default does not count).
func (q *Query) colsExplicit() []string {
	if len(q.cols) == len(q.table.schema) {
		all := true
		for i, c := range q.cols {
			if c != q.table.schema[i].Name {
				all = false
				break
			}
		}
		if all {
			return nil
		}
	}
	return q.cols
}

// plan chooses index probe vs scan and applies all predicates.
func (q *Query) plan() ([]int, error) {
	t := q.table
	candidates := -1 // index into preds used for the probe
	for i, p := range q.preds {
		if p.Op == OpEq && t.Indexed(p.Col) {
			candidates = i
			break
		}
	}
	var ids []int
	if candidates >= 0 {
		probe := q.preds[candidates]
		ids = append(ids, t.indexes[probe.Col][probe.Val]...)
	} else {
		ids = make([]int, len(t.rows))
		for i := range t.rows {
			ids[i] = i
		}
	}
	var out []int
	for _, id := range ids {
		row := t.rows[id]
		keep := true
		for _, p := range q.preds {
			ok, err := p.matches(row[t.schema.Index(p.Col)])
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, id)
		}
	}
	sort.Ints(out) // deterministic row order regardless of access path
	return out, nil
}

// project emits the plain select list.
func (q *Query) project(rowIDs []int) (*Result, error) {
	t := q.table
	res := &Result{Columns: append([]string(nil), q.cols...)}
	cis := make([]int, len(q.cols))
	for i, c := range q.cols {
		cis[i] = t.schema.Index(c)
	}
	for _, id := range rowIDs {
		row := make([]Value, len(cis))
		for i, ci := range cis {
			row[i] = t.rows[id][ci]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// aggregate groups rows and computes aggregates per group (or one global
// group without GROUP BY).
func (q *Query) aggregate(rowIDs []int) (*Result, error) {
	t := q.table
	groupCols := q.groupBy
	selectCols := q.colsExplicit()
	if len(groupCols) == 0 {
		selectCols = nil
	}

	res := &Result{}
	res.Columns = append(res.Columns, selectCols...)
	for _, a := range q.aggs {
		res.Columns = append(res.Columns, a.Label())
	}

	type groupState struct {
		key    []Value
		accums []*accum
		order  int
	}
	groups := make(map[string]*groupState)
	var groupOrder []string

	keyOf := func(row []Value) (string, []Value) {
		if len(groupCols) == 0 {
			return "", nil
		}
		parts := make([]string, len(groupCols))
		vals := make([]Value, len(groupCols))
		for i, g := range groupCols {
			v := row[t.schema.Index(g)]
			parts[i] = fmt.Sprintf("%d\x00%s", v.Type(), v.String())
			vals[i] = v
		}
		return strings.Join(parts, "\x01"), vals
	}

	for _, id := range rowIDs {
		row := t.rows[id]
		key, vals := keyOf(row)
		g, ok := groups[key]
		if !ok {
			g = &groupState{key: vals, order: len(groupOrder)}
			for range q.aggs {
				g.accums = append(g.accums, &accum{})
			}
			groups[key] = g
			groupOrder = append(groupOrder, key)
		}
		for i, a := range q.aggs {
			if a.Col == "*" {
				g.accums[i].count++
				continue
			}
			v := row[t.schema.Index(a.Col)]
			if err := g.accums[i].observe(a, v); err != nil {
				return nil, err
			}
		}
	}
	if len(groupCols) == 0 && len(groupOrder) == 0 {
		// Aggregates over an empty selection still yield one row.
		g := &groupState{}
		for range q.aggs {
			g.accums = append(g.accums, &accum{})
		}
		groups[""] = g
		groupOrder = append(groupOrder, "")
	}

	// Emit groups in first-seen order; a subset of the select columns maps
	// group-key values into the output row.
	keyIdx := make(map[string]int, len(groupCols))
	for i, g := range groupCols {
		keyIdx[g] = i
	}
	for _, key := range groupOrder {
		g := groups[key]
		row := make([]Value, 0, len(res.Columns))
		for _, c := range selectCols {
			row = append(row, g.key[keyIdx[c]])
		}
		for i, a := range q.aggs {
			v, err := g.accums[i].result(a)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// accum accumulates one aggregate.
type accum struct {
	count  int64
	sum    float64
	min    Value
	max    Value
	seen   bool
	sawInt bool
	sawFlt bool
}

func (a *accum) observe(ag Agg, v Value) error {
	switch ag.Fn {
	case AggCount:
		a.count++
		return nil
	case AggSum, AggAvg:
		if !v.IsNumeric() {
			return fmt.Errorf("statsdb: %s over non-numeric column %q", ag.Fn, ag.Col)
		}
		a.count++
		a.sum += v.Float()
		if v.Type() == Int {
			a.sawInt = true
		} else {
			a.sawFlt = true
		}
		return nil
	case AggMin, AggMax:
		a.count++
		if !a.seen {
			a.min, a.max, a.seen = v, v, true
			return nil
		}
		cMin, err := Compare(v, a.min)
		if err != nil {
			return err
		}
		if cMin < 0 {
			a.min = v
		}
		cMax, err := Compare(v, a.max)
		if err != nil {
			return err
		}
		if cMax > 0 {
			a.max = v
		}
		return nil
	default:
		return fmt.Errorf("statsdb: unknown aggregate %v", ag.Fn)
	}
}

func (a *accum) result(ag Agg) (Value, error) {
	switch ag.Fn {
	case AggCount:
		return IntVal(a.count), nil
	case AggSum:
		if a.sawInt && !a.sawFlt {
			return IntVal(int64(a.sum)), nil
		}
		return FloatVal(a.sum), nil
	case AggAvg:
		if a.count == 0 {
			return FloatVal(0), nil
		}
		return FloatVal(a.sum / float64(a.count)), nil
	case AggMin:
		if !a.seen {
			return IntVal(0), nil
		}
		return a.min, nil
	case AggMax:
		if !a.seen {
			return IntVal(0), nil
		}
		return a.max, nil
	default:
		return Value{}, fmt.Errorf("statsdb: unknown aggregate %v", ag.Fn)
	}
}

// order applies ORDER BY to a result in place (stable).
func (q *Query) order(res *Result) error {
	if len(q.orderBy) == 0 {
		return nil
	}
	cis := make([]int, len(q.orderBy))
	for i, k := range q.orderBy {
		ci := res.Column(k.Col)
		if ci < 0 {
			return fmt.Errorf("statsdb: ORDER BY column %q is not in the result", k.Col)
		}
		cis[i] = ci
	}
	var sortErr error
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for k, key := range q.orderBy {
			c, err := Compare(res.Rows[i][cis[k]], res.Rows[j][cis[k]])
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if key.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}
