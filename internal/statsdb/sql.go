package statsdb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseQuery parses a SQL-subset SELECT statement against the database and
// returns an executable Query. The grammar:
//
//	SELECT select_list FROM table
//	    [WHERE pred (AND pred)*]
//	    [GROUP BY col (, col)*]
//	    [ORDER BY key (, key)*]
//	    [LIMIT n]
//
//	select_list := * | item (, item)*
//	item        := col | fn ( col | * )         fn ∈ COUNT SUM AVG MIN MAX
//	pred        := col op literal               op ∈ = != <> < <= > >=
//	key         := (col | fn(col)) [ASC | DESC]
//	literal     := number | 'string' | true | false
//
// Keywords are case-insensitive; identifiers are case-sensitive.
func (db *DB) ParseQuery(sql string) (*Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{db: db, toks: toks}
	q, err := p.parseSelect()
	if err != nil {
		return nil, fmt.Errorf("statsdb: parse %q: %w", sql, err)
	}
	return q, nil
}

// Query parses and runs a SQL statement in one call. A statement prefixed
// with EXPLAIN is planned but not executed; the result is a single "plan"
// row describing the access path.
func (db *DB) Query(sql string) (*Result, error) {
	trimmed := strings.TrimSpace(sql)
	if len(trimmed) >= 8 && strings.EqualFold(trimmed[:8], "EXPLAIN ") {
		q, err := db.ParseQuery(trimmed[8:])
		if err != nil {
			return nil, err
		}
		plan, err := q.Explain()
		if err != nil {
			return nil, err
		}
		return &Result{Columns: []string{"plan"}, Rows: [][]Value{{StringVal(plan)}}}, nil
	}
	q, err := db.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	return q.Run()
}

// token kinds.
type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokSymbol // punctuation and operators
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

// lex splits a SQL string into tokens.
func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(s) {
					return nil, fmt.Errorf("unterminated string literal")
				}
				if s[j] == '\'' {
					// '' escapes a quote inside the literal.
					if j+1 < len(s) && s[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String()})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(s) && unicode.IsDigit(rune(s[i+1]))):
			j := i + 1
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.' || s[j] == 'e' ||
				s[j] == 'E' || ((s[j] == '+' || s[j] == '-') && (s[j-1] == 'e' || s[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_' || s[j] == '.') {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		case strings.ContainsRune("(),*", c):
			toks = append(toks, token{tokSymbol, string(c)})
			i++
		case c == '=', c == '<', c == '>', c == '!':
			j := i + 1
			if j < len(s) && (s[j] == '=' || (c == '<' && s[j] == '>')) {
				j++
			}
			toks = append(toks, token{tokSymbol, s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

// sqlParser is a recursive-descent parser over the token stream.
type sqlParser struct {
	db   *DB
	toks []token
	pos  int
}

func (p *sqlParser) peek() token { return p.toks[p.pos] }

func (p *sqlParser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword consumes the next token if it is the given keyword
// (case-insensitive identifier).
func (p *sqlParser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *sqlParser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return nil
	}
	return fmt.Errorf("expected %q, found %q", sym, t.text)
}

var aggFns = map[string]AggFn{
	"COUNT": AggCount,
	"SUM":   AggSum,
	"AVG":   AggAvg,
	"MIN":   AggMin,
	"MAX":   AggMax,
}

// selectItem is a parsed select-list entry.
type selectItem struct {
	col   string
	agg   *Agg
	label string
}

func (p *sqlParser) parseSelect() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}

	var items []selectItem
	star := false
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.next()
		star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			items = append(items, item)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tname := p.next()
	if tname.kind != tokIdent {
		return nil, fmt.Errorf("expected table name, found %q", tname.text)
	}
	table := p.db.Table(tname.text)
	if table == nil {
		return nil, fmt.Errorf("unknown table %q", tname.text)
	}
	if p.keyword("JOIN") {
		var err error
		table, err = p.parseJoin(table)
		if err != nil {
			return nil, err
		}
	}

	var cols []string
	var aggs []Agg
	for _, it := range items {
		if it.agg != nil {
			aggs = append(aggs, *it.agg)
		} else {
			cols = append(cols, it.col)
		}
	}
	var q *Query
	switch {
	case star || (len(cols) == 0 && len(aggs) == 0):
		q = Select(table)
	case len(cols) == 0:
		// Aggregate-only select list: no plain columns projected.
		q = &Query{table: table}
	default:
		q = Select(table, cols...)
	}
	q.Aggregate(aggs...)

	if p.keyword("WHERE") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Where(pred)
			if p.keyword("AND") {
				continue
			}
			break
		}
	}

	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("expected column in GROUP BY, found %q", t.text)
			}
			q.GroupBy(t.text)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseOrderKey()
			if err != nil {
				return nil, err
			}
			q.OrderBy(key)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if p.keyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("expected number after LIMIT, found %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("invalid LIMIT %q", t.text)
		}
		q.Limit(n)
	}

	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("unexpected trailing input %q", t.text)
	}
	if err := resolveQueryColumns(q); err != nil {
		return nil, err
	}
	return q, nil
}

// parseJoin handles "JOIN right ON a = b" after the left table.
func (p *sqlParser) parseJoin(left *Table) (*Table, error) {
	rname := p.next()
	if rname.kind != tokIdent {
		return nil, fmt.Errorf("expected table name after JOIN, found %q", rname.text)
	}
	right := p.db.Table(rname.text)
	if right == nil {
		return nil, fmt.Errorf("unknown table %q", rname.text)
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	c1 := p.next()
	if c1.kind != tokIdent {
		return nil, fmt.Errorf("expected column in ON, found %q", c1.text)
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	c2 := p.next()
	if c2.kind != tokIdent {
		return nil, fmt.Errorf("expected column in ON, found %q", c2.text)
	}
	leftCol, rightCol, err := assignJoinSides(left, right, c1.text, c2.text)
	if err != nil {
		return nil, err
	}
	return Join(left, right, leftCol, rightCol)
}

// assignJoinSides figures out which ON operand belongs to which table,
// accepting "table.col" qualification or unambiguous bare names.
func assignJoinSides(left, right *Table, a, b string) (leftCol, rightCol string, err error) {
	side := func(name string) (onLeft bool, col string, err error) {
		if rest, ok := strings.CutPrefix(name, left.name+"."); ok {
			return true, rest, nil
		}
		if rest, ok := strings.CutPrefix(name, right.name+"."); ok {
			return false, rest, nil
		}
		inLeft := left.schema.Index(name) >= 0
		inRight := right.schema.Index(name) >= 0
		switch {
		case inLeft && inRight:
			return false, "", fmt.Errorf("statsdb: ON column %q is ambiguous; qualify it", name)
		case inLeft:
			return true, name, nil
		case inRight:
			return false, name, nil
		default:
			return false, "", fmt.Errorf("statsdb: ON column %q found in neither table", name)
		}
	}
	aLeft, aCol, err := side(a)
	if err != nil {
		return "", "", err
	}
	bLeft, bCol, err := side(b)
	if err != nil {
		return "", "", err
	}
	if aLeft == bLeft {
		return "", "", fmt.Errorf("statsdb: ON must reference one column from each table")
	}
	if aLeft {
		return aCol, bCol, nil
	}
	return bCol, aCol, nil
}

// resolveQueryColumns maps possibly-unqualified column references onto
// the (possibly joined) table's schema.
func resolveQueryColumns(q *Query) error {
	t := q.table
	var err error
	for i, c := range q.cols {
		if q.cols[i], err = resolveColumn(t, c); err != nil {
			return err
		}
	}
	for i := range q.preds {
		if q.preds[i].Col, err = resolveColumn(t, q.preds[i].Col); err != nil {
			return err
		}
	}
	for i := range q.groupBy {
		if q.groupBy[i], err = resolveColumn(t, q.groupBy[i]); err != nil {
			return err
		}
	}
	for i := range q.aggs {
		if q.aggs[i].Col == "*" {
			continue
		}
		if q.aggs[i].Col, err = resolveColumn(t, q.aggs[i].Col); err != nil {
			return err
		}
	}
	for i := range q.orderBy {
		col := q.orderBy[i].Col
		if open := strings.IndexByte(col, '('); open >= 0 && strings.HasSuffix(col, ")") {
			// Aggregate label, e.g. avg(walltime): resolve the inner
			// column so the label matches the resolved select list.
			inner := col[open+1 : len(col)-1]
			if inner != "*" {
				resolved, err := resolveColumn(t, inner)
				if err != nil {
					return err
				}
				q.orderBy[i].Col = col[:open+1] + resolved + ")"
			}
			continue
		}
		if q.orderBy[i].Col, err = resolveColumn(t, col); err != nil {
			return err
		}
	}
	return nil
}

func (p *sqlParser) parseSelectItem() (selectItem, error) {
	t := p.next()
	if t.kind != tokIdent {
		return selectItem{}, fmt.Errorf("expected column or aggregate, found %q", t.text)
	}
	if fn, ok := aggFns[strings.ToUpper(t.text)]; ok && p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.next()
		arg := p.next()
		var col string
		switch {
		case arg.kind == tokSymbol && arg.text == "*":
			col = "*"
		case arg.kind == tokIdent:
			col = arg.text
		default:
			return selectItem{}, fmt.Errorf("expected column or * in %s(), found %q", t.text, arg.text)
		}
		if err := p.expectSymbol(")"); err != nil {
			return selectItem{}, err
		}
		a := Agg{Fn: fn, Col: col}
		return selectItem{agg: &a, label: a.Label()}, nil
	}
	return selectItem{col: t.text}, nil
}

func (p *sqlParser) parsePred() (Pred, error) {
	col := p.next()
	if col.kind != tokIdent {
		return Pred{}, fmt.Errorf("expected column in WHERE, found %q", col.text)
	}
	opTok := p.next()
	if opTok.kind != tokSymbol {
		return Pred{}, fmt.Errorf("expected operator, found %q", opTok.text)
	}
	var op Op
	switch opTok.text {
	case "=":
		op = OpEq
	case "!=", "<>":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return Pred{}, fmt.Errorf("unknown operator %q", opTok.text)
	}
	val, err := p.parseLiteral()
	if err != nil {
		return Pred{}, err
	}
	return Pred{Col: col.text, Op: op, Val: val}, nil
}

func (p *sqlParser) parseLiteral() (Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if !strings.ContainsAny(t.text, ".eE") {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return IntVal(n), nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("invalid number %q", t.text)
		}
		return FloatVal(f), nil
	case tokString:
		return StringVal(t.text), nil
	case tokIdent:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			return BoolVal(true), nil
		case "FALSE":
			return BoolVal(false), nil
		}
		return Value{}, fmt.Errorf("expected literal, found identifier %q (string literals use single quotes)", t.text)
	default:
		return Value{}, fmt.Errorf("expected literal, found %q", t.text)
	}
}

func (p *sqlParser) parseOrderKey() (OrderKey, error) {
	t := p.next()
	if t.kind != tokIdent {
		return OrderKey{}, fmt.Errorf("expected column in ORDER BY, found %q", t.text)
	}
	col := t.text
	// Allow ordering by an aggregate label, e.g. ORDER BY avg(walltime).
	if fn, ok := aggFns[strings.ToUpper(col)]; ok && p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.next()
		arg := p.next()
		var argName string
		switch {
		case arg.kind == tokSymbol && arg.text == "*":
			argName = "*"
		case arg.kind == tokIdent:
			argName = arg.text
		default:
			return OrderKey{}, fmt.Errorf("expected column or * in ORDER BY aggregate, found %q", arg.text)
		}
		if err := p.expectSymbol(")"); err != nil {
			return OrderKey{}, err
		}
		col = Agg{Fn: fn, Col: argName}.Label()
	}
	key := OrderKey{Col: col}
	if p.keyword("DESC") {
		key.Desc = true
	} else {
		p.keyword("ASC")
	}
	return key, nil
}
