package statsdb

import (
	"testing"

	"repro/internal/telemetry"
)

func TestLoadSpansAnswersQueries(t *testing.T) {
	clock := 0.0
	tr := telemetry.NewTracer(func() float64 { return clock })
	campaign := tr.Begin("campaign", "campaign-2005", "factory", nil)
	day := tr.Begin("day", "day-001", "factory", campaign)
	run := tr.Begin("run", "tillamook/1", "fnode01", day)
	run.SetArg("forecast", "tillamook")
	run.SetArg("day", "1")
	run.SetArg("node", "fnode01")
	clock = 100
	sim := tr.Begin("simulation", "sim:tillamook", "", run)
	clock = 40100
	sim.EndSpan()
	run.EndSpan()
	clock = 86400
	day.EndSpan()
	campaign.EndSpan()

	db := NewDB()
	tbl, err := LoadSpans(db, tr.Spans())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tbl.Len())
	}
	for _, col := range []string{"cat", "track"} {
		if !tbl.Indexed(col) {
			t.Fatalf("column %s not indexed", col)
		}
	}

	// Span rows answer the monitoring questions of §4.3: how long did the
	// simulation phases on a node take?
	res, err := db.Query("SELECT MAX(duration) FROM spans WHERE cat = 'simulation' AND track = 'fnode01'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 40000 {
		t.Fatalf("rows = %v, want one row of 40000", res.Rows)
	}

	// Annotation lifting: forecast/day/node columns come from span args.
	res, err = db.Query("SELECT forecast, day, node FROM spans WHERE cat = 'run'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].Str() != "tillamook" || row[1].Int() != 1 || row[2].Str() != "fnode01" {
		t.Fatalf("run row = %v", row)
	}
}

func TestLoadSpansInterruptedAndBadDay(t *testing.T) {
	tr := telemetry.NewTracer(nil)
	s := tr.Begin("run", "r", "n", nil)
	_ = s
	tr.EndOpen() // closes the span with interrupted=true

	db := NewDB()
	if _, err := LoadSpans(db, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT name FROM spans WHERE interrupted = true")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "r" {
		t.Fatalf("rows = %v", res.Rows)
	}

	// A non-integer day annotation is a descriptive error, not a panic.
	bad := telemetry.NewTracer(nil)
	b := bad.Begin("run", "b", "n", nil)
	b.SetArg("day", "twenty")
	b.EndSpan()
	if _, err := LoadSpans(db, bad.Spans()); err == nil {
		t.Fatal("expected error for non-integer day annotation")
	}
}

// TestLoadSpansIdempotent re-loads the same trace (plus a continuation)
// and checks rows update in place: the monitor-flush-then-final-flush
// sequence must not duplicate spans.
func TestLoadSpansIdempotent(t *testing.T) {
	clock := 0.0
	tr := telemetry.NewTracer(func() float64 { return clock })
	run := tr.Begin("run", "tillamook/1", "fnode01", nil)
	clock = 500

	db := NewDB()
	// First load: mid-campaign, the run span is still open (End = now).
	if _, err := LoadSpans(db, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	// Second load of the identical export: no new rows.
	tbl, err := LoadSpans(db, tr.Spans())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("after duplicate load Len = %d, want 1", tbl.Len())
	}
	if !tbl.Indexed("id") {
		t.Fatal("span id not indexed")
	}

	// The campaign continues; the final flush carries the finished span
	// and a new child. The old row is updated, the child inserted.
	sim := tr.Begin("simulation", "sim:tillamook", "", run)
	clock = 900
	sim.EndSpan()
	run.EndSpan()
	if _, err := LoadSpans(db, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("after final flush Len = %d, want 2", tbl.Len())
	}
	res, err := db.Query("SELECT duration FROM spans WHERE cat = 'run'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 900 {
		t.Fatalf("run duration after re-load = %v, want one row of 900", res.Rows)
	}
}
