package statsdb

import (
	"strings"
	"testing"
)

func TestExplainChoosesIndexProbe(t *testing.T) {
	tbl := runsFixture(t)
	if err := tbl.CreateIndex("forecast"); err != nil {
		t.Fatal(err)
	}
	plan, err := Select(tbl).Where(Pred{"forecast", OpEq, StringVal("dev")}).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index probe on runs.forecast") {
		t.Fatalf("plan = %q, want index probe", plan)
	}
}

func TestExplainFallsBackToScan(t *testing.T) {
	tbl := runsFixture(t)
	// No index, and range predicates cannot use a hash index anyway.
	plan, err := Select(tbl).Where(Pred{"walltime", OpGt, FloatVal(40000)}).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "full scan of runs") {
		t.Fatalf("plan = %q, want full scan", plan)
	}
	if !strings.Contains(plan, "filter 1 predicate") {
		t.Fatalf("plan = %q, want filter stage", plan)
	}
}

func TestExplainRangePredicateOnIndexedColumnScans(t *testing.T) {
	tbl := runsFixture(t)
	if err := tbl.CreateIndex("day"); err != nil {
		t.Fatal(err)
	}
	plan, err := Select(tbl).Where(Pred{"day", OpGt, IntVal(1)}).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "full scan") {
		t.Fatalf("plan = %q; hash index is useless for ranges", plan)
	}
}

func TestExplainShowsAllStages(t *testing.T) {
	tbl := runsFixture(t)
	plan, err := Select(tbl, "forecast").
		Aggregate(Agg{AggAvg, "walltime"}).
		GroupBy("forecast").
		Where(Pred{"ok", OpEq, BoolVal(true)}).
		OrderBy(OrderKey{Col: "forecast", Desc: true}).
		Limit(5).
		Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hash group by (forecast)", "sort (forecast desc)", "limit 5", "filter"} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan = %q, missing %q", plan, want)
		}
	}
}

func TestExplainSQLStatement(t *testing.T) {
	db := sqlFixture(t)
	if err := db.Table("runs").CreateIndex("code_version"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("EXPLAIN SELECT forecast FROM runs WHERE code_version = 'v1' LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("result = %+v", res)
	}
	plan := res.Rows[0][0].Str()
	if !strings.Contains(plan, "index probe on runs.code_version") || !strings.Contains(plan, "limit 3") {
		t.Fatalf("plan = %q", plan)
	}
	// Case-insensitive keyword.
	if _, err := db.Query("explain select * from runs"); err != nil {
		t.Fatal(err)
	}
	// EXPLAIN of invalid SQL errors.
	if _, err := db.Query("EXPLAIN SELECT nope FROM nothing"); err == nil {
		t.Fatal("EXPLAIN of bad SQL accepted")
	}
}

func TestExplainNilTable(t *testing.T) {
	if _, err := Select(nil).Explain(); err == nil {
		t.Fatal("Explain on nil table accepted")
	}
}
