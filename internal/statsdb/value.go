// Package statsdb is the forecast factory's statistics database: a small
// in-memory relational engine holding one tuple per run execution,
// populated by crawling run-directory logs (§4.3.2 of the paper).
//
// It provides typed tables with hash indexes, a query API with predicate
// filtering, grouping/aggregation, ordering, and limits, and a SQL-subset
// front end (SELECT ... FROM ... WHERE ... GROUP BY ... ORDER BY ...
// LIMIT ...), so factory managers can ask questions like "find all
// forecasts that use code version X" or chart walltime trends per day.
package statsdb

import (
	"fmt"
	"math"
	"strconv"
)

// Type is a column type.
type Type int

// Column types supported by the engine.
const (
	Int Type = iota
	Float
	String
	Bool
)

// String names the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "STRING"
	case Bool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a typed scalar. Values are comparable and usable as map keys
// (hash-index probes); NaN floats are rejected at insert time to keep that
// property sound.
type Value struct {
	t Type
	i int64
	f float64
	s string
	b bool
}

// IntVal makes an INT value.
func IntVal(v int64) Value { return Value{t: Int, i: v} }

// FloatVal makes a FLOAT value.
func FloatVal(v float64) Value { return Value{t: Float, f: v} }

// StringVal makes a STRING value.
func StringVal(v string) Value { return Value{t: String, s: v} }

// BoolVal makes a BOOL value.
func BoolVal(v bool) Value { return Value{t: Bool, b: v} }

// Type returns the value's type.
func (v Value) Type() Type { return v.t }

// Int returns the INT payload (0 for other types).
func (v Value) Int() int64 { return v.i }

// Float returns the numeric payload, converting INT to float64.
func (v Value) Float() float64 {
	if v.t == Int {
		return float64(v.i)
	}
	return v.f
}

// Str returns the STRING payload ("" for other types).
func (v Value) Str() string { return v.s }

// Bool returns the BOOL payload (false for other types).
func (v Value) Bool() bool { return v.b }

// IsNumeric reports whether the value is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.t == Int || v.t == Float }

// String renders the value for display.
func (v Value) String() string {
	switch v.t {
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case String:
		return v.s
	case Bool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// Compare orders two values of the same type: -1, 0, or +1. Numeric types
// compare by numeric value, so INT and FLOAT are mutually comparable.
// Comparing other mixed types returns an error.
func Compare(a, b Value) (int, error) {
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.t != b.t {
		return 0, fmt.Errorf("statsdb: cannot compare %s with %s", a.t, b.t)
	}
	switch a.t {
	case String:
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		default:
			return 0, nil
		}
	case Bool:
		switch {
		case !a.b && b.b:
			return -1, nil
		case a.b && !b.b:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("statsdb: cannot compare values of type %s", a.t)
	}
}

// checkValue rejects values the engine cannot store (NaN breaks index
// hashing and ordering).
func checkValue(v Value) error {
	if v.t == Float && math.IsNaN(v.f) {
		return fmt.Errorf("statsdb: NaN float values are not storable")
	}
	return nil
}
