package statsdb

import (
	"fmt"
	"sort"
)

// MigrationsTableName is the bookkeeping table recording which schema
// migrations have been applied to a database.
const MigrationsTableName = "schema_migrations"

// Migration is one versioned, idempotently tracked schema change. The
// harvester uses migrations to let the runs table evolve (new provenance
// columns) without invalidating databases built by older code: Apply runs
// at most once per database, in version order.
type Migration struct {
	Version int64
	Name    string
	Apply   func(db *DB) error
}

// migrationsTable finds or creates the bookkeeping table.
func migrationsTable(db *DB) (*Table, error) {
	if t := db.Table(MigrationsTableName); t != nil {
		return t, nil
	}
	return db.CreateTable(MigrationsTableName, Schema{
		{Name: "version", Type: Int},
		{Name: "name", Type: String},
	})
}

// SchemaVersion returns the highest migration version recorded in the
// database (0 when none have been applied).
func SchemaVersion(db *DB) int64 {
	t := db.Table(MigrationsTableName)
	if t == nil {
		return 0
	}
	vi := t.Schema().Index("version")
	var max int64
	for i := 0; i < t.Len(); i++ {
		if v := t.Row(i)[vi].Int(); v > max {
			max = v
		}
	}
	return max
}

// Migrate applies every not-yet-applied migration in ascending version
// order and records it in the schema_migrations table. Versions must be
// positive and unique. It returns the versions applied by this call; a
// failing migration stops the sequence (earlier migrations stay recorded).
func Migrate(db *DB, migrations []Migration) ([]int64, error) {
	ms := append([]Migration(nil), migrations...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Version < ms[j].Version })
	for i, m := range ms {
		if m.Version <= 0 {
			return nil, fmt.Errorf("statsdb: migration %q has non-positive version %d", m.Name, m.Version)
		}
		if i > 0 && ms[i-1].Version == m.Version {
			return nil, fmt.Errorf("statsdb: duplicate migration version %d (%q, %q)",
				m.Version, ms[i-1].Name, m.Name)
		}
		if m.Apply == nil {
			return nil, fmt.Errorf("statsdb: migration %d (%q) has no Apply", m.Version, m.Name)
		}
	}
	t, err := migrationsTable(db)
	if err != nil {
		return nil, err
	}
	vi := t.Schema().Index("version")
	done := make(map[int64]bool, t.Len())
	for i := 0; i < t.Len(); i++ {
		done[t.Row(i)[vi].Int()] = true
	}
	var applied []int64
	for _, m := range ms {
		if done[m.Version] {
			continue
		}
		if err := m.Apply(db); err != nil {
			return applied, fmt.Errorf("statsdb: migration %d (%q): %w", m.Version, m.Name, err)
		}
		if err := t.Insert([]Value{IntVal(m.Version), StringVal(m.Name)}); err != nil {
			return applied, err
		}
		applied = append(applied, m.Version)
	}
	return applied, nil
}
