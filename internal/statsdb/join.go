package statsdb

import (
	"fmt"
	"strings"
)

// Join materializes the hash equi-join of two tables on left.leftCol =
// right.rightCol. The result is a new table whose columns are qualified
// as "<table>.<column>", queryable with the ordinary machinery — so the
// factory can ask questions that span run statistics and plant metadata
// ("average walltime per node speed class"), the kind of monitoring query
// §3's discussion of database-backed workflow management calls for.
//
// Rows pair in left-table order then right insertion order, so results
// are deterministic. The join keys must be mutually comparable (same type
// or both numeric).
func Join(left, right *Table, leftCol, rightCol string) (*Table, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("statsdb: Join with nil table")
	}
	li := left.schema.Index(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("statsdb: table %s has no column %q", left.name, leftCol)
	}
	ri := right.schema.Index(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("statsdb: table %s has no column %q", right.name, rightCol)
	}
	lt, rt := left.schema[li].Type, right.schema[ri].Type
	comparable := lt == rt ||
		((lt == Int || lt == Float) && (rt == Int || rt == Float))
	if !comparable {
		return nil, fmt.Errorf("statsdb: cannot join %s (%s) with %s (%s)",
			leftCol, lt, rightCol, rt)
	}

	schema := make(Schema, 0, len(left.schema)+len(right.schema))
	for _, c := range left.schema {
		schema = append(schema, Column{Name: left.name + "." + c.Name, Type: c.Type})
	}
	for _, c := range right.schema {
		schema = append(schema, Column{Name: right.name + "." + c.Name, Type: c.Type})
	}
	out, err := NewTable(left.name+"_join_"+right.name, schema)
	if err != nil {
		return nil, err
	}

	// Hash the right side. Numeric keys are normalized to Float so that
	// Int 2 joins Float 2.0.
	key := func(v Value) Value {
		if v.Type() == Int {
			return FloatVal(v.Float())
		}
		return v
	}
	build := make(map[Value][]int)
	for id, row := range right.rows {
		build[key(row[ri])] = append(build[key(row[ri])], id)
	}
	for _, lrow := range left.rows {
		for _, rid := range build[key(lrow[li])] {
			joined := make([]Value, 0, len(schema))
			joined = append(joined, lrow...)
			joined = append(joined, right.rows[rid]...)
			if err := out.Insert(joined); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// resolveColumn maps a possibly-unqualified column name onto a table's
// schema: an exact match wins; otherwise a unique ".name" suffix match is
// accepted (so "walltime" finds "runs.walltime" after a join). Ambiguous
// or unknown names error.
func resolveColumn(t *Table, name string) (string, error) {
	if t.schema.Index(name) >= 0 {
		return name, nil
	}
	var matches []string
	for _, c := range t.schema {
		if strings.HasSuffix(c.Name, "."+name) {
			matches = append(matches, c.Name)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return "", fmt.Errorf("statsdb: table %s has no column %q", t.name, name)
	default:
		return "", fmt.Errorf("statsdb: column %q is ambiguous in %s (%s)",
			name, t.name, strings.Join(matches, ", "))
	}
}
