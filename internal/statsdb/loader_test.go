package statsdb

import (
	"testing"

	"repro/internal/logs"
)

func rec(forecast string, day int, wall float64, code string) *logs.RunRecord {
	return &logs.RunRecord{
		Forecast:    forecast,
		Region:      "r",
		Year:        2005,
		Day:         day,
		Node:        "fnode01",
		CodeVersion: code,
		CodeFactor:  1,
		MeshName:    "m",
		MeshSides:   30000,
		Timesteps:   5760,
		Start:       0,
		End:         wall,
		Walltime:    wall,
		Status:      logs.StatusCompleted,
		Products:    8,
	}
}

func TestLoadRunsCreatesIndexedTable(t *testing.T) {
	db := NewDB()
	tbl, err := LoadRuns(db, []*logs.RunRecord{
		rec("tillamook", 1, 40000, "v1"),
		rec("tillamook", 2, 40100, "v1"),
		rec("dev", 1, 32000, "v2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for _, col := range []string{"forecast", "code_version", "node"} {
		if !tbl.Indexed(col) {
			t.Fatalf("column %s not indexed", col)
		}
	}
	// The paper's query works end to end over loaded data.
	res, err := db.Query("SELECT forecast FROM runs WHERE code_version = 'v1' GROUP BY forecast")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "tillamook" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLoadRunsAppendsToExistingTable(t *testing.T) {
	db := NewDB()
	if _, err := LoadRuns(db, []*logs.RunRecord{rec("a", 1, 100, "v")}); err != nil {
		t.Fatal(err)
	}
	tbl, err := LoadRuns(db, []*logs.RunRecord{rec("a", 2, 110, "v")})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d after second load", tbl.Len())
	}
}

func TestLoadRunsRejectsInvalidRecords(t *testing.T) {
	db := NewDB()
	bad := rec("a", 1, 100, "v")
	bad.Day = 0
	if _, err := LoadRuns(db, []*logs.RunRecord{bad}); err == nil {
		t.Fatal("invalid record accepted")
	}
}
