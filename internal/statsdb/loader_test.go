package statsdb

import (
	"testing"

	"repro/internal/logs"
)

func rec(forecast string, day int, wall float64, code string) *logs.RunRecord {
	return &logs.RunRecord{
		Forecast:    forecast,
		Region:      "r",
		Year:        2005,
		Day:         day,
		Node:        "fnode01",
		CodeVersion: code,
		CodeFactor:  1,
		MeshName:    "m",
		MeshSides:   30000,
		Timesteps:   5760,
		Start:       0,
		End:         wall,
		Walltime:    wall,
		Status:      logs.StatusCompleted,
		Products:    8,
	}
}

func TestLoadRunsCreatesIndexedTable(t *testing.T) {
	db := NewDB()
	tbl, err := LoadRuns(db, []*logs.RunRecord{
		rec("tillamook", 1, 40000, "v1"),
		rec("tillamook", 2, 40100, "v1"),
		rec("dev", 1, 32000, "v2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for _, col := range []string{"forecast", "code_version", "node"} {
		if !tbl.Indexed(col) {
			t.Fatalf("column %s not indexed", col)
		}
	}
	// The paper's query works end to end over loaded data.
	res, err := db.Query("SELECT forecast FROM runs WHERE code_version = 'v1' GROUP BY forecast")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "tillamook" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLoadRunsAppendsToExistingTable(t *testing.T) {
	db := NewDB()
	if _, err := LoadRuns(db, []*logs.RunRecord{rec("a", 1, 100, "v")}); err != nil {
		t.Fatal(err)
	}
	tbl, err := LoadRuns(db, []*logs.RunRecord{rec("a", 2, 110, "v")})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d after second load", tbl.Len())
	}
}

func TestLoadRunsIsIdempotent(t *testing.T) {
	// Loading the same records twice must not duplicate rows — the
	// harvester re-reads logs after a crash and relies on this.
	db := NewDB()
	recs := []*logs.RunRecord{rec("a", 1, 100, "v"), rec("a", 2, 110, "v")}
	if _, err := LoadRuns(db, recs); err != nil {
		t.Fatal(err)
	}
	tbl, err := LoadRuns(db, recs)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d after double load", tbl.Len())
	}
}

func TestUpsertRunsReplacesByKey(t *testing.T) {
	db := NewDB()
	running := rec("a", 1, 0, "v")
	running.Status = logs.StatusRunning
	running.End, running.Walltime = 0, 0
	if _, st, err := UpsertRuns(db, []*logs.RunRecord{running}, 10); err != nil {
		t.Fatal(err)
	} else if st.Inserted != 1 || st.Updated != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The completed record for the same (forecast, day, start) replaces
	// the provisional running row.
	done := rec("a", 1, 4000, "v")
	tbl, st, err := UpsertRuns(db, []*logs.RunRecord{done}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserted != 0 || st.Updated != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	si := tbl.Schema().Index("status")
	if got := tbl.Row(0)[si].Str(); got != logs.StatusCompleted {
		t.Fatalf("status = %q", got)
	}
	// A different start is a different execution, not a replacement.
	rerun := rec("a", 1, 4100, "v")
	rerun.Start = 7200
	if tbl, _, err = UpsertRuns(db, []*logs.RunRecord{rerun}, 30); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d after re-run", tbl.Len())
	}
}

func TestUpsertRunsFillsProvenanceColumns(t *testing.T) {
	db := NewDB()
	tbl, err := EnsureRunsTable(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn(Column{Name: ColHarvestedAt, Type: Float}, FloatVal(0)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn(Column{Name: ColSourcePath, Type: String}, StringVal("")); err != nil {
		t.Fatal(err)
	}
	r := rec("a", 1, 100, "v")
	r.SourcePath = "/runs/a/2005-001/run.log"
	if _, _, err := UpsertRuns(db, []*logs.RunRecord{r}, 42); err != nil {
		t.Fatal(err)
	}
	sch := tbl.Schema()
	row := tbl.Row(0)
	if got := row[sch.Index(ColHarvestedAt)].Float(); got != 42 {
		t.Fatalf("harvested_at = %v", got)
	}
	if got := row[sch.Index(ColSourcePath)].Str(); got != r.SourcePath {
		t.Fatalf("source_path = %q", got)
	}

	back, err := ReadRuns(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].SourcePath != r.SourcePath || back[0].Walltime != 100 {
		t.Fatalf("ReadRuns = %+v", back[0])
	}
}

func TestLoadRunsRejectsInvalidRecords(t *testing.T) {
	db := NewDB()
	bad := rec("a", 1, 100, "v")
	bad.Day = 0
	if _, err := LoadRuns(db, []*logs.RunRecord{bad}); err == nil {
		t.Fatal("invalid record accepted")
	}
}
