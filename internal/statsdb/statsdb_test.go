package statsdb

import (
	"strings"
	"testing"
	"testing/quick"
)

func runsFixture(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("runs", Schema{
		{Name: "forecast", Type: String},
		{Name: "day", Type: Int},
		{Name: "walltime", Type: Float},
		{Name: "code_version", Type: String},
		{Name: "ok", Type: Bool},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		f    string
		d    int64
		w    float64
		code string
		ok   bool
	}{
		{"tillamook", 1, 40000, "v1", true},
		{"tillamook", 2, 40100, "v1", true},
		{"tillamook", 3, 80000, "v2", true},
		{"dev", 1, 32000, "v1", true},
		{"dev", 2, 31900, "v1", false},
		{"dev", 3, 52000, "v3", true},
	}
	for _, r := range rows {
		err := tbl.Insert([]Value{StringVal(r.f), IntVal(r.d), FloatVal(r.w), StringVal(r.code), BoolVal(r.ok)})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestInsertTypeChecking(t *testing.T) {
	tbl := runsFixture(t)
	if err := tbl.Insert([]Value{IntVal(1), IntVal(1), FloatVal(1), StringVal("v"), BoolVal(true)}); err == nil {
		t.Fatal("wrong type accepted")
	}
	if err := tbl.Insert([]Value{StringVal("x")}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := tbl.Insert([]Value{StringVal("x"), IntVal(1), FloatVal(nan()), StringVal("v"), BoolVal(true)}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func nan() float64 {
	var z float64
	return 0 / z
}

func TestSelectAllPreservesInsertionOrder(t *testing.T) {
	tbl := runsFixture(t)
	res, err := Select(tbl).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 || len(res.Columns) != 5 {
		t.Fatalf("shape %dx%d", len(res.Rows), len(res.Columns))
	}
	if res.Rows[0][0].Str() != "tillamook" || res.Rows[3][0].Str() != "dev" {
		t.Fatal("row order wrong")
	}
}

func TestWherePredicates(t *testing.T) {
	tbl := runsFixture(t)
	res, err := Select(tbl, "forecast", "walltime").
		Where(Pred{"walltime", OpGt, FloatVal(40000)}, Pred{"ok", OpEq, BoolVal(true)}).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // 40100, 80000, 52000
		t.Fatalf("got %d rows: %v", len(res.Rows), res.Rows)
	}
}

func TestIndexProbeMatchesScan(t *testing.T) {
	tbl := runsFixture(t)
	scan, err := Select(tbl).Where(Pred{"forecast", OpEq, StringVal("dev")}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("forecast"); err != nil {
		t.Fatal(err)
	}
	if !tbl.Indexed("forecast") {
		t.Fatal("index not reported")
	}
	probe, err := Select(tbl).Where(Pred{"forecast", OpEq, StringVal("dev")}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Rows) != len(probe.Rows) {
		t.Fatalf("scan %d rows, probe %d rows", len(scan.Rows), len(probe.Rows))
	}
	for i := range scan.Rows {
		for j := range scan.Rows[i] {
			if scan.Rows[i][j] != probe.Rows[i][j] {
				t.Fatalf("row %d differs between scan and probe", i)
			}
		}
	}
}

func TestIndexMaintainedAcrossInserts(t *testing.T) {
	tbl := runsFixture(t)
	if err := tbl.CreateIndex("code_version"); err != nil {
		t.Fatal(err)
	}
	err := tbl.Insert([]Value{StringVal("new"), IntVal(9), FloatVal(1000), StringVal("v9"), BoolVal(true)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Select(tbl, "forecast").Where(Pred{"code_version", OpEq, StringVal("v9")}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "new" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestGroupByAggregates(t *testing.T) {
	tbl := runsFixture(t)
	res, err := Select(tbl, "forecast").
		Aggregate(Agg{AggCount, "*"}, Agg{AggAvg, "walltime"}, Agg{AggMin, "day"}, Agg{AggMax, "day"}).
		GroupBy("forecast").
		OrderBy(OrderKey{Col: "forecast"}).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// dev first (ordered).
	dev := res.Rows[0]
	if dev[0].Str() != "dev" || dev[1].Int() != 3 {
		t.Fatalf("dev row = %v", dev)
	}
	wantAvg := (32000.0 + 31900 + 52000) / 3
	if got := dev[res.Column("avg(walltime)")].Float(); got != wantAvg {
		t.Fatalf("avg = %v, want %v", got, wantAvg)
	}
	if dev[res.Column("min(day)")].Int() != 1 || dev[res.Column("max(day)")].Int() != 3 {
		t.Fatalf("min/max wrong: %v", dev)
	}
}

func TestGlobalAggregates(t *testing.T) {
	tbl := runsFixture(t)
	res, err := (&Query{table: tbl}).
		Aggregate(Agg{AggSum, "walltime"}, Agg{AggCount, "*"}).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if got := res.Rows[0][0].Float(); got != 276000 {
		t.Fatalf("sum = %v", got)
	}
	if res.Rows[0][1].Int() != 6 {
		t.Fatalf("count = %v", res.Rows[0][1])
	}
}

func TestSumOfIntsStaysInt(t *testing.T) {
	tbl := runsFixture(t)
	res, err := (&Query{table: tbl}).Aggregate(Agg{AggSum, "day"}).Run()
	if err != nil {
		t.Fatal(err)
	}
	v := res.Rows[0][0]
	if v.Type() != Int || v.Int() != 12 {
		t.Fatalf("sum(day) = %v (%s)", v, v.Type())
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	tbl := runsFixture(t)
	res, err := Select(tbl, "walltime").
		OrderBy(OrderKey{Col: "walltime", Desc: true}).
		Limit(2).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Float() != 80000 || res.Rows[1][0].Float() != 52000 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestQueryValidationErrors(t *testing.T) {
	tbl := runsFixture(t)
	cases := []*Query{
		Select(tbl, "missing"),
		Select(tbl).Where(Pred{"missing", OpEq, IntVal(1)}),
		Select(tbl, "forecast").GroupBy("missing"),
		Select(tbl, "walltime").Aggregate(Agg{AggCount, "*"}).GroupBy("forecast"),      // walltime not grouped
		Select(tbl, "forecast").Aggregate(Agg{AggSum, "forecast"}).GroupBy("forecast"), // sum of string
		(&Query{table: tbl}).Aggregate(Agg{AggSum, "*"}),
		Select(nil),
	}
	for i, q := range cases {
		if _, err := q.Run(); err == nil {
			t.Errorf("case %d: invalid query accepted", i)
		}
	}
}

func TestMixedTypeComparisonFails(t *testing.T) {
	tbl := runsFixture(t)
	if _, err := Select(tbl).Where(Pred{"forecast", OpLt, IntVal(3)}).Run(); err == nil {
		t.Fatal("string < int accepted")
	}
}

func TestIntFloatComparableInPredicates(t *testing.T) {
	tbl := runsFixture(t)
	res, err := Select(tbl).Where(Pred{"day", OpGe, FloatVal(2.5)}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDBTables(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("a", Schema{{Name: "x", Type: Int}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", Schema{{Name: "x", Type: Int}}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.CreateTable("", Schema{{Name: "x", Type: Int}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := db.CreateTable("b", Schema{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := db.CreateTable("c", Schema{{Name: "x", Type: Int}, {Name: "x", Type: Int}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if db.Table("a") == nil || db.Table("zz") != nil {
		t.Fatal("table lookup wrong")
	}
	if strings.Join(db.TableNames(), ",") != "a" {
		t.Fatalf("TableNames = %v", db.TableNames())
	}
}

func TestValueAccessorsAndStrings(t *testing.T) {
	if IntVal(3).Float() != 3 || FloatVal(2.5).Float() != 2.5 {
		t.Fatal("numeric accessors wrong")
	}
	if IntVal(3).String() != "3" || StringVal("x").String() != "x" || BoolVal(true).String() != "true" {
		t.Fatal("String renderings wrong")
	}
	if FloatVal(2.5).String() != "2.5" {
		t.Fatalf("FloatVal.String = %q", FloatVal(2.5).String())
	}
	for _, ty := range []Type{Int, Float, String, Bool, Type(9)} {
		if ty.String() == "" {
			t.Fatal("empty type name")
		}
	}
	for _, op := range []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, Op(9)} {
		if op.String() == "" {
			t.Fatal("empty op name")
		}
	}
	for _, fn := range []AggFn{AggCount, AggSum, AggAvg, AggMin, AggMax, AggFn(9)} {
		if fn.String() == "" {
			t.Fatal("empty agg name")
		}
	}
}

// Property: for random predicates over a random int table, the query
// result matches a straightforward reference filter.
func TestPropertyWhereMatchesReferenceFilter(t *testing.T) {
	f := func(data []int8, threshold int8, opRaw uint8) bool {
		tbl, err := NewTable("t", Schema{{Name: "v", Type: Int}})
		if err != nil {
			return false
		}
		for _, d := range data {
			if err := tbl.Insert([]Value{IntVal(int64(d))}); err != nil {
				return false
			}
		}
		op := Op(opRaw % 6)
		res, err := Select(tbl).Where(Pred{"v", op, IntVal(int64(threshold))}).Run()
		if err != nil {
			return false
		}
		var want []int64
		for _, d := range data {
			v, th := int64(d), int64(threshold)
			keep := false
			switch op {
			case OpEq:
				keep = v == th
			case OpNe:
				keep = v != th
			case OpLt:
				keep = v < th
			case OpLe:
				keep = v <= th
			case OpGt:
				keep = v > th
			case OpGe:
				keep = v >= th
			}
			if keep {
				want = append(want, v)
			}
		}
		if len(res.Rows) != len(want) {
			return false
		}
		for i, row := range res.Rows {
			if row[0].Int() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
