package statsdb

import (
	"fmt"
	"testing"
)

func testMigrations(counts *[2]int) []Migration {
	return []Migration{
		{Version: 1, Name: "create-runs", Apply: func(db *DB) error {
			counts[0]++
			_, err := EnsureRunsTable(db)
			return err
		}},
		{Version: 2, Name: "provenance", Apply: func(db *DB) error {
			counts[1]++
			t := db.Table(RunsTableName)
			if err := t.AddColumn(Column{Name: ColHarvestedAt, Type: Float}, FloatVal(0)); err != nil {
				return err
			}
			return t.AddColumn(Column{Name: ColSourcePath, Type: String}, StringVal(""))
		}},
	}
}

func TestMigrateAppliesOnceInOrder(t *testing.T) {
	db := NewDB()
	var counts [2]int
	applied, err := Migrate(db, testMigrations(&counts))
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 || applied[0] != 1 || applied[1] != 2 {
		t.Fatalf("applied = %v", applied)
	}
	if v := SchemaVersion(db); v != 2 {
		t.Fatalf("SchemaVersion = %d", v)
	}
	// Second call is a no-op: every version is recorded.
	applied, err = Migrate(db, testMigrations(&counts))
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 0 {
		t.Fatalf("re-applied = %v", applied)
	}
	if counts != [2]int{1, 1} {
		t.Fatalf("apply counts = %v", counts)
	}
	sch := db.Table(RunsTableName).Schema()
	if sch.Index(ColHarvestedAt) < 0 || sch.Index(ColSourcePath) < 0 {
		t.Fatalf("provenance columns missing: %v", sch)
	}
}

func TestMigratePartialUpgrade(t *testing.T) {
	// A database stopped at v1 picks up only v2 later.
	db := NewDB()
	var counts [2]int
	migs := testMigrations(&counts)
	if _, err := Migrate(db, migs[:1]); err != nil {
		t.Fatal(err)
	}
	if v := SchemaVersion(db); v != 1 {
		t.Fatalf("SchemaVersion = %d", v)
	}
	applied, err := Migrate(db, migs)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0] != 2 {
		t.Fatalf("applied = %v", applied)
	}
}

func TestMigrateRejectsBadVersions(t *testing.T) {
	db := NewDB()
	nop := func(*DB) error { return nil }
	if _, err := Migrate(db, []Migration{{Version: 0, Name: "zero", Apply: nop}}); err == nil {
		t.Fatal("version 0 accepted")
	}
	if _, err := Migrate(db, []Migration{
		{Version: 3, Name: "a", Apply: nop},
		{Version: 3, Name: "b", Apply: nop},
	}); err == nil {
		t.Fatal("duplicate version accepted")
	}
}

func TestMigrateStopsOnFailure(t *testing.T) {
	db := NewDB()
	applied, err := Migrate(db, []Migration{
		{Version: 1, Name: "good", Apply: func(*DB) error { return nil }},
		{Version: 2, Name: "bad", Apply: func(*DB) error { return fmt.Errorf("boom") }},
		{Version: 3, Name: "never", Apply: func(*DB) error {
			t.Fatal("migration after a failure ran")
			return nil
		}},
	})
	if err == nil {
		t.Fatal("failing migration reported no error")
	}
	if len(applied) != 1 || applied[0] != 1 {
		t.Fatalf("applied = %v", applied)
	}
	if v := SchemaVersion(db); v != 1 {
		t.Fatalf("SchemaVersion = %d after failure", v)
	}
}

func TestTableUpdateMaintainsIndexes(t *testing.T) {
	tbl, err := NewTable("t", Schema{
		{Name: "k", Type: String},
		{Name: "v", Type: Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "a"} {
		if err := tbl.Insert([]Value{StringVal(k), IntVal(1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Move row 0 from key "a" to key "c".
	if err := tbl.Update(0, []Value{StringVal("c"), IntVal(9)}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.lookupRows("k", StringVal("a")); len(got) != 1 || got[0] != 2 {
		t.Fatalf(`lookup "a" = %v`, got)
	}
	if got := tbl.lookupRows("k", StringVal("c")); len(got) != 1 || got[0] != 0 {
		t.Fatalf(`lookup "c" = %v`, got)
	}
	if tbl.Row(0)[1].Int() != 9 {
		t.Fatalf("row 0 = %v", tbl.Row(0))
	}
	if err := tbl.Update(5, []Value{StringVal("x"), IntVal(0)}); err == nil {
		t.Fatal("out-of-range update accepted")
	}
}

func TestTableAddColumn(t *testing.T) {
	tbl, err := NewTable("t", Schema{{Name: "a", Type: Int}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{IntVal(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn(Column{Name: "b", Type: String}, StringVal("x")); err != nil {
		t.Fatal(err)
	}
	if row := tbl.Row(0); len(row) != 2 || row[1].Str() != "x" {
		t.Fatalf("row = %v", row)
	}
	if err := tbl.AddColumn(Column{Name: "b", Type: String}, StringVal("")); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := tbl.AddColumn(Column{Name: "c", Type: Int}, StringVal("")); err == nil {
		t.Fatal("mistyped default accepted")
	}
}
