package core

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"testing"
	"time"
)

// plannerBenchPlant builds the fleet-scale drop-loop scenario: nRuns
// deadline runs spread over nNodes two-CPU nodes, deliberately
// over-committed (~1.5× the daily window) so BuildSchedule's drop loop
// has to shed a large fraction of the plan one victim at a time — the
// worst case the incremental engine exists for. Deterministic, so the
// incremental and full-repredict sides see identical inputs.
func plannerBenchPlant(nNodes, nRuns int) ([]NodeInfo, []Run) {
	nodes := make([]NodeInfo, nNodes)
	for i := range nodes {
		nodes[i] = NodeInfo{Name: fmt.Sprintf("node%03d", i), CPUs: 2, Speed: 1}
	}
	runs := make([]Run, nRuns)
	perNode := nRuns / nNodes
	if perNode < 1 {
		perNode = 1
	}
	// ~1.5× the 172800 capacity-seconds window per node, varied per run so
	// work ties are rare and the decreasing heuristics stay busy.
	meanWork := 1.5 * 172800 / float64(perNode)
	for i := range runs {
		runs[i] = Run{
			Name:     fmt.Sprintf("run%04d", i),
			Work:     meanWork * (0.5 + float64(i%perNode)/float64(perNode)),
			Start:    float64((i % 8) * 900),
			Deadline: 86400,
			Priority: i % 10,
		}
	}
	return nodes, runs
}

// benchDropLoop runs one full BuildSchedule pass over the scenario.
func benchDropLoop(nodes []NodeInfo, runs []Run, fullRepredict bool) *Schedule {
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{
		Heuristic:     WorstFitDecreasing,
		AllowDrop:     true,
		fullRepredict: fullRepredict,
	})
	if err != nil {
		panic(err)
	}
	return s
}

// BenchmarkDropLoopIncremental is the 200-node × 2000-run drop loop with
// the incremental engine: each drop re-sweeps only the victim's node.
func BenchmarkDropLoopIncremental(b *testing.B) {
	nodes, runs := plannerBenchPlant(200, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := benchDropLoop(nodes, runs, false)
		b.ReportMetric(float64(len(s.Dropped)), "drops/op")
	}
}

// BenchmarkDropLoopFullRepredict is the same scenario with a validated
// full-plan sweep after every drop — the pre-incremental behaviour, kept
// as the baseline the speedup gate measures against.
func BenchmarkDropLoopFullRepredict(b *testing.B) {
	nodes, runs := plannerBenchPlant(200, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchDropLoop(nodes, runs, true)
	}
}

// BenchmarkPredictFull times one full-plan prediction at fleet scale —
// the path the bounded worker pool parallelizes.
func BenchmarkPredictFull(b *testing.B) {
	nodes, runs := plannerBenchPlant(200, 2000)
	assign, err := Pack(nodes, runs, WorstFitDecreasing)
	if err != nil {
		b.Fatal(err)
	}
	plan := &Plan{Nodes: nodes, Runs: runs, Assign: assign}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Predict(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDropLoopIncrementalMatchesFullRepredict is the always-on
// cross-validation gate at a size small enough for every `go test` run:
// the incremental drop loop must drop the same victims and predict the
// same completions as the full-repredict baseline.
func TestDropLoopIncrementalMatchesFullRepredict(t *testing.T) {
	nodes, runs := plannerBenchPlant(20, 200)
	inc := benchDropLoop(nodes, runs, false)
	full := benchDropLoop(nodes, runs, true)
	if len(inc.Dropped) == 0 {
		t.Fatal("scenario did not exercise the drop loop")
	}
	if !reflect.DeepEqual(inc.Dropped, full.Dropped) {
		t.Fatalf("dropped sets diverge: incremental %v, full %v", inc.Dropped, full.Dropped)
	}
	if !sameCompletion(inc.Prediction.Completion, full.Prediction.Completion) {
		t.Fatal("incremental and full predictions diverge")
	}
	if !reflect.DeepEqual(inc.Plan.Assign, full.Plan.Assign) {
		t.Fatal("assignments diverge")
	}
}

// TestEmitPlannerBenchReport measures the incremental engine's speedup on
// the 200-node × 2000-run drop loop and writes a machine-readable report
// to the file named by BENCH_OUT; `make bench` sets it and CI uploads the
// result as an artifact. Without BENCH_OUT the test is skipped.
//
// Methodology (same as the usage sampler's report): full-repredict and
// incremental passes run as ABBA pairs — the order within a pair
// alternates so heap growth and machine drift cancel instead of always
// penalizing one side — and the reported speedup is the median of the
// per-pair ratios. The job fails if the two modes' predictions diverge or
// the speedup drops below the 5× floor.
func TestEmitPlannerBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("BENCH_OUT not set")
	}
	nodes, runs := plannerBenchPlant(200, 2000)

	// Equivalence gate first: a fast wrong answer must fail the job.
	inc := benchDropLoop(nodes, runs, false)
	full := benchDropLoop(nodes, runs, true)
	equivalent := reflect.DeepEqual(inc.Dropped, full.Dropped) &&
		sameCompletion(inc.Prediction.Completion, full.Prediction.Completion)
	if !equivalent {
		t.Errorf("incremental and full-repredict drop loops diverge")
	}

	const pairs = 6
	var fullSec, incSec, ratios []float64
	for i := 0; i < pairs; i++ {
		var f, n float64
		if i%2 == 0 {
			t0 := time.Now()
			benchDropLoop(nodes, runs, true)
			f = time.Since(t0).Seconds()
			t1 := time.Now()
			benchDropLoop(nodes, runs, false)
			n = time.Since(t1).Seconds()
		} else {
			t1 := time.Now()
			benchDropLoop(nodes, runs, false)
			n = time.Since(t1).Seconds()
			t0 := time.Now()
			benchDropLoop(nodes, runs, true)
			f = time.Since(t0).Seconds()
		}
		fullSec = append(fullSec, f)
		incSec = append(incSec, n)
		ratios = append(ratios, f/n)
	}
	sort.Float64s(ratios)
	speedup := (ratios[pairs/2-1] + ratios[pairs/2]) / 2
	mean := func(xs []float64) float64 {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	report := map[string]any{
		"scenario":            "drop-loop",
		"nodes":               len(nodes),
		"runs":                len(runs),
		"drops":               len(inc.Dropped),
		"pairs":               pairs,
		"full_seconds":        mean(fullSec),
		"incremental_seconds": mean(incSec),
		"speedup":             speedup,
		"speedup_floor":       5.0,
		"predictions_agree":   equivalent,
	}
	if speedup < 5.0 {
		t.Errorf("incremental speedup %.1f× below the 5× floor", speedup)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, data)
}
