package core

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/telemetry"
)

// ScheduleOptions configures BuildSchedule.
type ScheduleOptions struct {
	Heuristic Heuristic
	// AllowDrop lets the scheduler drop the lowest-priority runs when no
	// assignment meets every deadline (§4.1: ForeMan "may automatically
	// delay or drop lower priority forecasts if needed").
	AllowDrop bool
	// MaxDrops caps how many runs may be dropped (default: all but one).
	MaxDrops int
}

// Schedule is a packed, predicted plan.
type Schedule struct {
	Plan       *Plan
	Prediction Prediction
	Dropped    []string // runs dropped to restore feasibility
}

// Late returns the runs still predicted to miss their deadlines.
func (s *Schedule) Late() []string { return s.Prediction.Late(s.Plan) }

// Feasible reports whether the schedule meets every deadline.
func (s *Schedule) Feasible() bool { return s.Prediction.Feasible(s.Plan) }

// BuildSchedule packs runs onto nodes, predicts completion times, and —
// when allowed — drops the lowest-priority runs until the remainder is
// feasible.
func BuildSchedule(nodes []NodeInfo, runs []Run, opts ScheduleOptions) (*Schedule, error) {
	var span *telemetry.Span
	if t := plannerTelemetry(); t != nil {
		t.Registry().Describe("core_planner_invocations_total", "Planner passes executed, by pass and heuristic.")
		t.Registry().Counter("core_planner_invocations_total",
			telemetry.Labels{"pass": "schedule", "heuristic": opts.Heuristic.String()}).Inc()
		span = t.Trace().Begin("planner", "schedule:"+opts.Heuristic.String(), "planner", nil)
	}
	defer span.EndSpan()
	assign, err := Pack(nodes, runs, opts.Heuristic)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Nodes: nodes, Runs: runs, Assign: assign}
	s := &Schedule{Plan: plan}
	if err := s.repredict(); err != nil {
		return nil, err
	}
	if !opts.AllowDrop {
		return s, nil
	}
	maxDrops := opts.MaxDrops
	if maxDrops <= 0 {
		maxDrops = len(runs) - 1
	}
	for len(s.Dropped) < maxDrops && !s.Feasible() {
		victim, ok := s.dropCandidate()
		if !ok {
			break
		}
		s.drop(victim)
		span.SetArg("dropped", strconv.Itoa(len(s.Dropped)))
		if err := s.repredict(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// dropCandidate picks the lowest-priority run on any node with a late run
// (smallest priority, then largest work, then name).
func (s *Schedule) dropCandidate() (string, bool) {
	late := s.Late()
	if len(late) == 0 {
		return "", false
	}
	hotNodes := make(map[string]bool)
	for _, name := range late {
		hotNodes[s.Plan.Assign[name]] = true
	}
	var victim *Run
	for i := range s.Plan.Runs {
		r := &s.Plan.Runs[i]
		if !hotNodes[s.Plan.Assign[r.Name]] {
			continue
		}
		if victim == nil ||
			r.Priority < victim.Priority ||
			(r.Priority == victim.Priority && r.Work > victim.Work) ||
			(r.Priority == victim.Priority && r.Work == victim.Work && r.Name < victim.Name) {
			victim = r
		}
	}
	if victim == nil {
		return "", false
	}
	return victim.Name, true
}

// drop removes a run from the plan.
func (s *Schedule) drop(name string) {
	for i, r := range s.Plan.Runs {
		if r.Name == name {
			s.Plan.Runs = append(s.Plan.Runs[:i], s.Plan.Runs[i+1:]...)
			break
		}
	}
	delete(s.Plan.Assign, name)
	s.Dropped = append(s.Dropped, name)
	sort.Strings(s.Dropped)
}

func (s *Schedule) repredict() error {
	pred, err := s.Plan.Predict()
	if err != nil {
		return err
	}
	s.Prediction = pred
	return nil
}

// Move reassigns one run and repredicts — the what-if interaction of the
// ForeMan interface ("the tool will automatically recompute the expected
// completion times of all affected workflows").
func (s *Schedule) Move(run, node string) error {
	if err := s.Plan.Move(run, node); err != nil {
		return err
	}
	return s.repredict()
}

// Delay shifts a run's start time and repredicts — the response to late
// input data (§4.1: forecasts "may be delayed ... if data arrival is
// delayed"), or the other half of the ForeMan interaction ("their
// starting times may be adjusted").
func (s *Schedule) Delay(run string, newStart float64) error {
	if newStart < 0 {
		return fmt.Errorf("core: Delay(%q) to negative start %v", run, newStart)
	}
	for i := range s.Plan.Runs {
		if s.Plan.Runs[i].Name == run {
			s.Plan.Runs[i].Start = newStart
			return s.repredict()
		}
	}
	return fmt.Errorf("core: unknown run %q", run)
}

// ReschedulePolicy selects how much of the plan may change when the plant
// changes under it.
type ReschedulePolicy int

// Rescheduling policies (§4.1: "when a new forecast or node is permanently
// added to the factory, rescheduling all forecasts may be beneficial, but
// when a node temporarily fails users may wish to reschedule only a
// subset").
const (
	// MinimalMove keeps every assignment on surviving nodes and re-packs
	// only the displaced runs.
	MinimalMove ReschedulePolicy = iota
	// FullReshuffle re-packs every run from scratch.
	FullReshuffle
)

// String names the policy.
func (p ReschedulePolicy) String() string {
	switch p {
	case MinimalMove:
		return "minimal-move"
	case FullReshuffle:
		return "full-reshuffle"
	default:
		return fmt.Sprintf("ReschedulePolicy(%d)", int(p))
	}
}

// RescheduleAfterFailure marks a node down and reassigns its runs. With
// MinimalMove, displaced runs go to the least-loaded surviving nodes; with
// FullReshuffle everything is re-packed with the given heuristic.
func RescheduleAfterFailure(s *Schedule, failed string, pol ReschedulePolicy, h Heuristic) (*Schedule, error) {
	plan := s.Plan.Clone()
	found := false
	for i := range plan.Nodes {
		if plan.Nodes[i].Name == failed {
			plan.Nodes[i].Down = true
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("core: unknown node %q", failed)
	}

	switch pol {
	case FullReshuffle:
		assign, err := Pack(plan.Nodes, plan.Runs, h)
		if err != nil {
			return nil, err
		}
		plan.Assign = assign
	case MinimalMove:
		// Re-pack only the displaced runs against residual loads.
		var displaced []Run
		for _, r := range plan.Runs {
			if plan.Assign[r.Name] == failed {
				displaced = append(displaced, r)
				delete(plan.Assign, r.Name)
			}
		}
		sort.Slice(displaced, func(i, j int) bool {
			if displaced[i].Work != displaced[j].Work {
				return displaced[i].Work > displaced[j].Work
			}
			return displaced[i].Name < displaced[j].Name
		})
		load := make(map[string]float64)
		for _, r := range plan.Runs {
			if node, ok := plan.Assign[r.Name]; ok {
				load[node] += r.Work
			}
		}
		for _, r := range displaced {
			best := ""
			bestLoad := 0.0
			for _, n := range plan.Nodes {
				if n.Down {
					continue
				}
				l := load[n.Name] / n.Capacity()
				if best == "" || l < bestLoad {
					best, bestLoad = n.Name, l
				}
			}
			if best == "" {
				return nil, fmt.Errorf("core: no surviving node for run %q", r.Name)
			}
			plan.Assign[r.Name] = best
			load[best] += r.Work
		}
	default:
		return nil, fmt.Errorf("core: unknown reschedule policy %v", pol)
	}

	out := &Schedule{Plan: plan, Dropped: append([]string(nil), s.Dropped...)}
	if err := out.repredict(); err != nil {
		return nil, err
	}
	return out, nil
}

// MovedRuns returns the names of runs whose assignment differs between two
// schedules, sorted — the disruption metric for comparing policies.
func MovedRuns(before, after *Schedule) []string {
	var moved []string
	for run, node := range after.Plan.Assign {
		if prev, ok := before.Plan.Assign[run]; ok && prev != node {
			moved = append(moved, run)
		}
	}
	sort.Strings(moved)
	return moved
}
