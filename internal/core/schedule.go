package core

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/telemetry"
)

// ScheduleOptions configures BuildSchedule.
type ScheduleOptions struct {
	Heuristic Heuristic
	// AllowDrop lets the scheduler drop the lowest-priority runs when no
	// assignment meets every deadline (§4.1: ForeMan "may automatically
	// delay or drop lower priority forecasts if needed").
	AllowDrop bool
	// MaxDrops caps how many runs may be dropped (default: all but one).
	MaxDrops int
	// fullRepredict forces a from-scratch full-plan sweep after every
	// drop instead of the incremental re-sweep — the pre-incremental
	// behaviour, kept as the benchmark baseline and the cross-validation
	// reference.
	fullRepredict bool
}

// Schedule is a packed, predicted plan. Its what-if methods (Move, Delay)
// and the drop loop update Prediction incrementally and in place: only
// the nodes an edit touches are re-swept, and the Completion map is
// patched rather than replaced. Callers that need a frozen snapshot of a
// prediction across edits must copy the map.
type Schedule struct {
	Plan       *Plan
	Prediction Prediction
	Dropped    []string // runs dropped to restore feasibility

	pred *predictor // incremental prediction engine (nil until first sweep)
}

// Late returns the runs still predicted to miss their deadlines.
func (s *Schedule) Late() []string { return s.Prediction.Late(s.Plan) }

// Feasible reports whether the schedule meets every deadline.
func (s *Schedule) Feasible() bool { return s.Prediction.Feasible(s.Plan) }

// BuildSchedule packs runs onto nodes, predicts completion times, and —
// when allowed — drops the lowest-priority runs until the remainder is
// feasible. The input slices are cloned: the plan owns its runs and
// nodes, so the drop loop's in-place shifting and later Delay edits never
// corrupt the caller's data. The plan is validated once, by Pack; every
// later edit re-sweeps only the affected nodes.
func BuildSchedule(nodes []NodeInfo, runs []Run, opts ScheduleOptions) (*Schedule, error) {
	var span *telemetry.Span
	if t := plannerTelemetry(); t != nil {
		t.Registry().Describe("core_planner_invocations_total", "Planner passes executed, by pass and heuristic.")
		t.Registry().Counter("core_planner_invocations_total",
			telemetry.Labels{"pass": "schedule", "heuristic": opts.Heuristic.String()}).Inc()
		span = t.Trace().Begin("planner", "schedule:"+opts.Heuristic.String(), "planner", nil)
	}
	defer span.EndSpan()
	nodes = append([]NodeInfo(nil), nodes...)
	runs = append([]Run(nil), runs...)
	assign, err := Pack(nodes, runs, opts.Heuristic)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Nodes: nodes, Runs: runs, Assign: assign}
	s := &Schedule{Plan: plan}
	s.resyncValidated() // Pack already validated the plan
	if !opts.AllowDrop {
		return s, nil
	}
	maxDrops := opts.MaxDrops
	if maxDrops <= 0 {
		maxDrops = len(runs) - 1
	}
	for len(s.Dropped) < maxDrops {
		victim, ok := s.dropCandidate()
		if !ok {
			break
		}
		s.drop(victim)
		span.SetArg("dropped", strconv.Itoa(len(s.Dropped)))
		if opts.fullRepredict {
			if err := s.repredict(); err != nil {
				return nil, err
			}
		} else {
			s.flushDirty()
		}
	}
	return s, nil
}

// dropCandidate picks the lowest-priority run on any node with a late run
// (smallest priority, then largest work, then name), or ok=false when no
// run is late. With the incremental engine the per-node late counts
// restrict the scan to the hot nodes' runs.
func (s *Schedule) dropCandidate() (string, bool) {
	if pr := s.pred; pr != nil {
		var victim *Run
		for n, late := range pr.late {
			if late == 0 {
				continue
			}
			runs := pr.byNode[n]
			for i := range runs {
				if victim == nil || betterVictim(&runs[i], victim) {
					victim = &runs[i]
				}
			}
		}
		if victim == nil {
			return "", false
		}
		return victim.Name, true
	}
	late := s.Late()
	if len(late) == 0 {
		return "", false
	}
	hotNodes := make(map[string]bool)
	for _, name := range late {
		hotNodes[s.Plan.Assign[name]] = true
	}
	var victim *Run
	for i := range s.Plan.Runs {
		r := &s.Plan.Runs[i]
		if !hotNodes[s.Plan.Assign[r.Name]] {
			continue
		}
		if victim == nil || betterVictim(r, victim) {
			victim = r
		}
	}
	if victim == nil {
		return "", false
	}
	return victim.Name, true
}

// betterVictim reports whether r should be dropped before the current
// victim: smallest priority, then largest work, then name — a total
// order, so the selection is independent of scan order.
func betterVictim(r, victim *Run) bool {
	if r.Priority != victim.Priority {
		return r.Priority < victim.Priority
	}
	if r.Work != victim.Work {
		return r.Work > victim.Work
	}
	return r.Name < victim.Name
}

// drop removes a run from the plan and marks its node dirty; the caller
// flushes (or fully repredicts) afterwards.
func (s *Schedule) drop(name string) {
	node, assigned := s.Plan.Assign[name]
	for i, r := range s.Plan.Runs {
		if r.Name == name {
			s.Plan.Runs = append(s.Plan.Runs[:i], s.Plan.Runs[i+1:]...)
			break
		}
	}
	delete(s.Plan.Assign, name)
	s.Dropped = append(s.Dropped, name)
	sort.Strings(s.Dropped)
	if s.pred == nil {
		return
	}
	if assigned {
		s.pred.removeRun(node, name)
		s.markDirty(node)
	} else {
		delete(s.Prediction.Completion, name)
	}
}

// repredict resynchronises the engine with a validated full sweep — the
// escape hatch for code that edits s.Plan directly (PlanBackfill).
func (s *Schedule) repredict() error {
	return s.resync()
}

// Move reassigns one run and repredicts — the what-if interaction of the
// ForeMan interface ("the tool will automatically recompute the expected
// completion times of all affected workflows"). Only the source and
// destination nodes are re-swept.
func (s *Schedule) Move(run, node string) error {
	if s.pred == nil {
		if err := s.Plan.Move(run, node); err != nil {
			return err
		}
		return s.repredict()
	}
	old, hadOld := s.Plan.Assign[run]
	if err := s.Plan.Move(run, node); err != nil {
		return err
	}
	if hadOld && old == node {
		return nil // no-op move: nothing changed
	}
	r, _ := s.Plan.Run(run)
	if hadOld {
		s.pred.removeRun(old, run)
		s.markDirty(old)
	}
	s.pred.byNode[node] = append(s.pred.byNode[node], r)
	s.markDirty(node)
	s.flushDirty()
	return nil
}

// Delay shifts a run's start time and repredicts — the response to late
// input data (§4.1: forecasts "may be delayed ... if data arrival is
// delayed"), or the other half of the ForeMan interaction ("their
// starting times may be adjusted"). Only the run's node is re-swept.
func (s *Schedule) Delay(run string, newStart float64) error {
	if newStart < 0 {
		return fmt.Errorf("core: Delay(%q) to negative start %v", run, newStart)
	}
	for i := range s.Plan.Runs {
		if s.Plan.Runs[i].Name != run {
			continue
		}
		// Mirror Validate's deadline-after-start rule up front: the
		// incremental path skips whole-plan revalidation, and a full
		// repredict would otherwise reject the plan after mutating it.
		if d := s.Plan.Runs[i].Deadline; d > 0 && newStart > d {
			return fmt.Errorf("core: Delay(%q) to start %v past deadline %v", run, newStart, d)
		}
		s.Plan.Runs[i].Start = newStart
		if s.pred == nil {
			return s.repredict()
		}
		if node, ok := s.Plan.Assign[run]; ok {
			nodeRuns := s.pred.byNode[node]
			for j := range nodeRuns {
				if nodeRuns[j].Name == run {
					nodeRuns[j].Start = newStart
					break
				}
			}
			s.markDirty(node)
			s.flushDirty()
		}
		return nil
	}
	return fmt.Errorf("core: unknown run %q", run)
}

// ReschedulePolicy selects how much of the plan may change when the plant
// changes under it.
type ReschedulePolicy int

// Rescheduling policies (§4.1: "when a new forecast or node is permanently
// added to the factory, rescheduling all forecasts may be beneficial, but
// when a node temporarily fails users may wish to reschedule only a
// subset").
const (
	// MinimalMove keeps every assignment on surviving nodes and re-packs
	// only the displaced runs.
	MinimalMove ReschedulePolicy = iota
	// FullReshuffle re-packs every run from scratch.
	FullReshuffle
)

// String names the policy.
func (p ReschedulePolicy) String() string {
	switch p {
	case MinimalMove:
		return "minimal-move"
	case FullReshuffle:
		return "full-reshuffle"
	default:
		return fmt.Sprintf("ReschedulePolicy(%d)", int(p))
	}
}

// RescheduleAfterFailure marks a node down and reassigns its runs. With
// MinimalMove, displaced runs go to the least-loaded surviving nodes; with
// FullReshuffle everything is re-packed with the given heuristic. The new
// schedule inherits the old one's per-node sweeps and re-sweeps only the
// nodes whose run set changed (plus the failed node).
func RescheduleAfterFailure(s *Schedule, failed string, pol ReschedulePolicy, h Heuristic) (*Schedule, error) {
	plan := s.Plan.Clone()
	found := false
	for i := range plan.Nodes {
		if plan.Nodes[i].Name == failed {
			plan.Nodes[i].Down = true
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("core: unknown node %q", failed)
	}

	switch pol {
	case FullReshuffle:
		assign, err := Pack(plan.Nodes, plan.Runs, h)
		if err != nil {
			return nil, err
		}
		plan.Assign = assign
	case MinimalMove:
		// Re-pack only the displaced runs against residual loads, tracked
		// by the same indexed structure Pack uses.
		var displaced []Run
		for _, r := range plan.Runs {
			if plan.Assign[r.Name] == failed {
				displaced = append(displaced, r)
				delete(plan.Assign, r.Name)
			}
		}
		sort.Slice(displaced, func(i, j int) bool {
			if displaced[i].Work != displaced[j].Work {
				return displaced[i].Work > displaced[j].Work
			}
			return displaced[i].Name < displaced[j].Name
		})
		ix := newLoadIndex(plan.Nodes)
		for _, r := range plan.Runs {
			if node, ok := plan.Assign[r.Name]; ok {
				ix.add(node, r.Work) // loads on down nodes are ignored
			}
		}
		for _, r := range displaced {
			best, ok := ix.least()
			if !ok {
				return nil, fmt.Errorf("core: no surviving node for run %q", r.Name)
			}
			plan.Assign[r.Name] = best.Name
			ix.add(best.Name, r.Work)
		}
	default:
		return nil, fmt.Errorf("core: unknown reschedule policy %v", pol)
	}

	out := &Schedule{Plan: plan, Dropped: append([]string(nil), s.Dropped...)}
	if s.pred == nil {
		if err := out.resync(); err != nil {
			return nil, err
		}
		return out, nil
	}
	changed := map[string]bool{failed: true}
	for _, r := range plan.Runs {
		before, hadBefore := s.Plan.Assign[r.Name]
		after, hasAfter := plan.Assign[r.Name]
		if before == after && hadBefore == hasAfter {
			continue
		}
		if hadBefore {
			changed[before] = true
		}
		if hasAfter {
			changed[after] = true
		}
	}
	out.adopt(s)
	for n := range changed {
		out.markDirty(n)
	}
	out.flushDirty()
	return out, nil
}

// MovedRuns returns the names of runs whose assignment differs between two
// schedules, sorted — the disruption metric for comparing policies. Runs
// that became newly assigned or newly unassigned between the schedules
// (moves from or to the empty node) count as moved.
func MovedRuns(before, after *Schedule) []string {
	movedSet := make(map[string]bool)
	for run, node := range after.Plan.Assign {
		if prev, ok := before.Plan.Assign[run]; !ok || prev != node {
			movedSet[run] = true
		}
	}
	for run := range before.Plan.Assign {
		if _, ok := after.Plan.Assign[run]; !ok {
			movedSet[run] = true
		}
	}
	moved := make([]string, 0, len(movedSet))
	for run := range movedSet {
		moved = append(moved, run)
	}
	sort.Strings(moved)
	return moved
}
