package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

const eps = 1e-6

func almost(a, b float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func twoCPUNode() []NodeInfo {
	return []NodeInfo{{Name: "n1", CPUs: 2, Speed: 1.0}}
}

func TestPredictSingleRun(t *testing.T) {
	plan := &Plan{
		Nodes:  twoCPUNode(),
		Runs:   []Run{{Name: "a", Work: 40000, Start: 10800}},
		Assign: map[string]string{"a": "n1"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pred.Completion["a"], 50800) {
		t.Fatalf("completion = %v, want 50800", pred.Completion["a"])
	}
}

func TestPredictPaperExampleThreeRunsTwoCPUs(t *testing.T) {
	// §4.1: three concurrent forecasts on a 2-CPU node each get 2/3 of a
	// CPU.
	plan := &Plan{
		Nodes: twoCPUNode(),
		Runs: []Run{
			{Name: "a", Work: 1000},
			{Name: "b", Work: 1000},
			{Name: "c", Work: 1000},
		},
		Assign: map[string]string{"a": "n1", "b": "n1", "c": "n1"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if !almost(pred.Completion[name], 1500) {
			t.Fatalf("%s completes at %v, want 1500", name, pred.Completion[name])
		}
	}
}

func TestPredictStaggeredArrivals(t *testing.T) {
	// One CPU: a arrives at 0 (work 100), b at 50 (work 100).
	// a: 50 alone + shares until its 50 remaining done at rate 1/2 → 150.
	// b: 50 done by 150, then alone for 50 → 200.
	plan := &Plan{
		Nodes: []NodeInfo{{Name: "n1", CPUs: 1, Speed: 1.0}},
		Runs: []Run{
			{Name: "a", Work: 100, Start: 0},
			{Name: "b", Work: 100, Start: 50},
		},
		Assign: map[string]string{"a": "n1", "b": "n1"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pred.Completion["a"], 150) || !almost(pred.Completion["b"], 200) {
		t.Fatalf("completions = %v", pred.Completion)
	}
}

func TestPredictIdleGapBetweenRuns(t *testing.T) {
	plan := &Plan{
		Nodes: []NodeInfo{{Name: "n1", CPUs: 1, Speed: 1.0}},
		Runs: []Run{
			{Name: "a", Work: 10, Start: 0},
			{Name: "b", Work: 10, Start: 1000},
		},
		Assign: map[string]string{"a": "n1", "b": "n1"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pred.Completion["a"], 10) || !almost(pred.Completion["b"], 1010) {
		t.Fatalf("completions = %v", pred.Completion)
	}
}

func TestPredictNodeSpeedScales(t *testing.T) {
	plan := &Plan{
		Nodes:  []NodeInfo{{Name: "fast", CPUs: 2, Speed: 2.0}},
		Runs:   []Run{{Name: "a", Work: 1000}},
		Assign: map[string]string{"a": "fast"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pred.Completion["a"], 500) {
		t.Fatalf("completion = %v, want 500", pred.Completion["a"])
	}
}

func TestPredictDownNodeAndUnassigned(t *testing.T) {
	plan := &Plan{
		Nodes: []NodeInfo{
			{Name: "n1", CPUs: 2, Speed: 1, Down: true},
			{Name: "n2", CPUs: 2, Speed: 1},
		},
		Runs: []Run{
			{Name: "a", Work: 100},
			{Name: "b", Work: 100},
		},
		Assign: map[string]string{"a": "n1"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(pred.Completion["a"], 1) {
		t.Fatalf("down-node run completion = %v, want +Inf", pred.Completion["a"])
	}
	if !math.IsInf(pred.Completion["b"], 1) {
		t.Fatalf("unassigned run completion = %v, want +Inf", pred.Completion["b"])
	}
}

func TestPredictZeroWorkRun(t *testing.T) {
	plan := &Plan{
		Nodes:  twoCPUNode(),
		Runs:   []Run{{Name: "a", Work: 0, Start: 500}},
		Assign: map[string]string{"a": "n1"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pred.Completion["a"], 500) {
		t.Fatalf("completion = %v, want 500", pred.Completion["a"])
	}
}

func TestLateAndFeasible(t *testing.T) {
	plan := &Plan{
		Nodes: []NodeInfo{{Name: "n1", CPUs: 1, Speed: 1}},
		Runs: []Run{
			{Name: "a", Work: 100, Deadline: 150},
			{Name: "b", Work: 100, Deadline: 150},
			{Name: "c", Work: 50}, // no deadline: never late
		},
		Assign: map[string]string{"a": "n1", "b": "n1", "c": "n1"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	late := pred.Late(plan)
	if len(late) != 2 || late[0] != "a" || late[1] != "b" {
		t.Fatalf("late = %v", late)
	}
	if pred.Feasible(plan) {
		t.Fatal("infeasible plan reported feasible")
	}
	if pred.Makespan() <= 0 {
		t.Fatal("makespan not positive")
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	good := func() *Plan {
		return &Plan{
			Nodes:  twoCPUNode(),
			Runs:   []Run{{Name: "a", Work: 10}},
			Assign: map[string]string{"a": "n1"},
		}
	}
	cases := []func(*Plan){
		func(p *Plan) { p.Nodes[0].Name = "" },
		func(p *Plan) { p.Nodes = append(p.Nodes, p.Nodes[0]) },
		func(p *Plan) { p.Nodes[0].CPUs = 0 },
		func(p *Plan) { p.Nodes[0].Speed = -1 },
		func(p *Plan) { p.Runs[0].Name = "" },
		func(p *Plan) { p.Runs = append(p.Runs, p.Runs[0]) },
		func(p *Plan) { p.Runs[0].Work = -1 },
		func(p *Plan) { p.Runs[0].Start = -5 },
		func(p *Plan) { p.Runs[0].Deadline = 5; p.Runs[0].Start = 10 },
		func(p *Plan) { p.Assign["zz"] = "n1" },
		func(p *Plan) { p.Assign["a"] = "zz" },
	}
	for i, mutate := range cases {
		p := good()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad plan", i)
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
}

func TestPlanMoveAndClone(t *testing.T) {
	p := &Plan{
		Nodes:  []NodeInfo{{Name: "n1", CPUs: 2, Speed: 1}, {Name: "n2", CPUs: 2, Speed: 1}},
		Runs:   []Run{{Name: "a", Work: 10}},
		Assign: map[string]string{"a": "n1"},
	}
	c := p.Clone()
	if err := c.Move("a", "n2"); err != nil {
		t.Fatal(err)
	}
	if p.Assign["a"] != "n1" || c.Assign["a"] != "n2" {
		t.Fatal("Clone aliases assignment")
	}
	if err := c.Move("zz", "n1"); err == nil {
		t.Fatal("moved unknown run")
	}
	if err := c.Move("a", "zz"); err == nil {
		t.Fatal("moved to unknown node")
	}
	if got := (&Plan{Runs: []Run{{Name: "x"}}, Assign: map[string]string{}}).Unassigned(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("Unassigned = %v", got)
	}
}

// Property: the analytic predictor agrees with the discrete-event
// simulator on random single-node workloads — the same cross-validation
// the paper performed empirically for the CPU-sharing assumption.
func TestPropertyPredictorMatchesSimulator(t *testing.T) {
	f := func(worksRaw []uint16, startsRaw []uint8, cpusRaw, speedRaw uint8) bool {
		n := len(worksRaw)
		if n == 0 || n > 8 || len(startsRaw) < n {
			return true
		}
		cpus := int(cpusRaw%3) + 1
		speed := 0.5 + float64(speedRaw%8)*0.25
		node := NodeInfo{Name: "n", CPUs: cpus, Speed: speed}

		runs := make([]Run, n)
		assign := make(map[string]string, n)
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			runs[i] = Run{
				Name:  name,
				Work:  float64(worksRaw[i]%5000) + 1,
				Start: float64(startsRaw[i]) * 37,
			}
			assign[name] = "n"
		}
		plan := &Plan{Nodes: []NodeInfo{node}, Runs: runs, Assign: assign}
		pred, err := plan.Predict()
		if err != nil {
			return false
		}

		// Replay on the discrete-event simulator.
		eng := sim.NewEngine()
		cl := cluster.New(eng)
		cn := cl.AddNode("n", cpus, speed)
		simDone := make(map[string]float64, n)
		for _, r := range runs {
			r := r
			eng.At(r.Start, func() {
				cn.Submit(r.Name, r.Work, func() { simDone[r.Name] = eng.Now() })
			})
		}
		eng.Run()

		for _, r := range runs {
			a, b := pred.Completion[r.Name], simDone[r.Name]
			if math.Abs(a-b) > 1e-6*math.Max(1, b) {
				t.Logf("run %s: predictor %v vs simulator %v", r.Name, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
