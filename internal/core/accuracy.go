package core

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/logs"
	"repro/internal/telemetry"
)

// pctErrorBuckets bound the absolute-percentage-error histogram; run-time
// estimates in the paper's regime are good to a few percent, so the scale
// is much finer than the duration buckets.
var pctErrorBuckets = []float64{0.5, 1, 2, 5, 10, 20, 50, 100}

// EstimateSample is one replayed estimate: what the estimator would have
// predicted for a run given only the history that preceded it, versus the
// walltime the run actually took.
type EstimateSample struct {
	Forecast  string
	Year, Day int
	Node      string
	Predicted float64
	Actual    float64
}

// AbsPctError returns |predicted−actual|/actual as a percentage.
func (s EstimateSample) AbsPctError() float64 {
	return 100 * math.Abs(s.Predicted-s.Actual) / s.Actual
}

// EstimateAccuracy summarises how well the §4.3.2 estimator tracks the
// factory's actual walltimes.
type EstimateAccuracy struct {
	Samples []EstimateSample
	// MAPE is the mean absolute percentage error across all samples.
	MAPE float64
}

// EvaluateEstimates replays the estimator over history: every completed
// run beyond the first of its forecast is estimated from the records
// before it and compared to its actual walltime. When a telemetry sink is
// installed (SetTelemetry), each sample lands in the registry as
// core_estimate_predicted_seconds / core_estimate_actual_seconds gauges
// labelled by (forecast, day), and its error feeds the
// core_estimate_abs_pct_error histogram.
func EvaluateEstimates(records []*logs.RunRecord, nodes []NodeInfo) EstimateAccuracy {
	byForecast := make(map[string][]*logs.RunRecord)
	for _, r := range records {
		if r.Status != logs.StatusCompleted || r.Walltime <= 0 {
			continue
		}
		byForecast[r.Forecast] = append(byForecast[r.Forecast], r)
	}
	names := make([]string, 0, len(byForecast))
	for name := range byForecast {
		names = append(names, name)
	}
	sort.Strings(names)

	var reg *telemetry.Registry
	if t := plannerTelemetry(); t != nil {
		reg = t.Registry()
		reg.Describe("core_estimate_predicted_seconds", "Replayed runtime estimate, by forecast and day.")
		reg.Describe("core_estimate_actual_seconds", "Actual run walltime, by forecast and day.")
		reg.Describe("core_estimate_abs_pct_error", "Absolute percentage error of replayed estimates.")
	}

	var acc EstimateAccuracy
	var errSum float64
	for _, name := range names {
		rs := byForecast[name]
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].Year != rs[j].Year {
				return rs[i].Year < rs[j].Year
			}
			return rs[i].Day < rs[j].Day
		})
		for i := 1; i < len(rs); i++ {
			target := rs[i]
			prev := rs[i-1]
			adjust := 1.0
			if prev.CodeFactor > 0 && target.CodeFactor > 0 {
				adjust = target.CodeFactor / prev.CodeFactor
			}
			est, err := NewEstimator(rs[:i], nodes).Estimate(Request{
				Forecast:  name,
				Timesteps: target.Timesteps,
				MeshSides: target.MeshSides,
				Node:      target.Node,
				Adjust:    adjust,
			})
			if err != nil {
				continue
			}
			s := EstimateSample{
				Forecast:  name,
				Year:      target.Year,
				Day:       target.Day,
				Node:      target.Node,
				Predicted: est.Seconds,
				Actual:    target.Walltime,
			}
			acc.Samples = append(acc.Samples, s)
			errSum += s.AbsPctError()
			if reg != nil {
				lbl := telemetry.Labels{"forecast": name, "day": strconv.Itoa(target.Day)}
				reg.Gauge("core_estimate_predicted_seconds", lbl).Set(s.Predicted)
				reg.Gauge("core_estimate_actual_seconds", lbl).Set(s.Actual)
				reg.Histogram("core_estimate_abs_pct_error", pctErrorBuckets, nil).Observe(s.AbsPctError())
			}
		}
	}
	if len(acc.Samples) > 0 {
		acc.MAPE = errSum / float64(len(acc.Samples))
	}
	return acc
}
