// Package core implements ForeMan, the forecast-factory management layer
// of §4.1 of the paper: run-time estimation from historical statistics,
// completion-time prediction under the factory's CPU-sharing model,
// bin-packing node assignment, priorities with delay/drop, rescheduling
// after node failures and forecast additions, rough-cut capacity planning,
// what-if moves, and script generation through a pluggable back end.
//
// Planning operates on one production day: each run has an earliest start
// (constrained by input data arrival), an estimated amount of work, a
// deadline (forecasts are perishable), and a priority. Work is measured in
// reference CPU-seconds — the isolated runtime on a speed-1.0 CPU — so
// moving a run to a faster or slower node scales its expected running time
// by the relative node speed, exactly as ForeMan does.
package core

import (
	"fmt"
	"sort"
)

// NodeInfo describes a compute node for planning.
type NodeInfo struct {
	Name  string
	CPUs  int
	Speed float64 // relative speed; 1.0 = reference
	Down  bool
}

// Capacity returns the node's aggregate capacity in reference CPU-seconds
// per second (zero when down).
func (n NodeInfo) Capacity() float64 {
	if n.Down {
		return 0
	}
	return float64(n.CPUs) * n.Speed
}

// Run is one forecast run to place on the plant for a production day.
type Run struct {
	Name     string
	Work     float64 // reference CPU-seconds
	Start    float64 // earliest start, seconds after midnight
	Deadline float64 // desired completion, seconds after midnight
	Priority int     // higher = more important
	PrevNode string  // yesterday's node: the default assignment
	// Width is the number of CPUs a parallel ("mega-job") forecast can
	// consume at once; 0 or 1 means serial, the paper's default.
	Width int
}

// width returns the effective CPU width.
func (r Run) width() int {
	if r.Width < 1 {
		return 1
	}
	return r.Width
}

// Plan is a set of runs, a plant, and an assignment of runs to nodes.
type Plan struct {
	Nodes  []NodeInfo
	Runs   []Run
	Assign map[string]string // run name → node name
}

// Validate checks structural consistency: unique names, known nodes,
// sensible run parameters.
func (p *Plan) Validate() error {
	nodeSet := make(map[string]NodeInfo, len(p.Nodes))
	for _, n := range p.Nodes {
		if n.Name == "" {
			return fmt.Errorf("core: node with empty name")
		}
		if _, dup := nodeSet[n.Name]; dup {
			return fmt.Errorf("core: duplicate node %q", n.Name)
		}
		if n.CPUs <= 0 || n.Speed <= 0 {
			return fmt.Errorf("core: node %q needs positive CPUs (%d) and speed (%v)", n.Name, n.CPUs, n.Speed)
		}
		nodeSet[n.Name] = n
	}
	runSet := make(map[string]bool, len(p.Runs))
	for _, r := range p.Runs {
		if r.Name == "" {
			return fmt.Errorf("core: run with empty name")
		}
		if runSet[r.Name] {
			return fmt.Errorf("core: duplicate run %q", r.Name)
		}
		runSet[r.Name] = true
		if r.Work < 0 {
			return fmt.Errorf("core: run %q has negative work %v", r.Name, r.Work)
		}
		if r.Start < 0 {
			return fmt.Errorf("core: run %q has negative start %v", r.Name, r.Start)
		}
		if r.Deadline > 0 && r.Deadline < r.Start {
			return fmt.Errorf("core: run %q deadline %v before start %v", r.Name, r.Deadline, r.Start)
		}
		if r.Width < 0 {
			return fmt.Errorf("core: run %q has negative width %d", r.Name, r.Width)
		}
	}
	for run, node := range p.Assign {
		if !runSet[run] {
			return fmt.Errorf("core: assignment for unknown run %q", run)
		}
		if _, ok := nodeSet[node]; !ok {
			return fmt.Errorf("core: run %q assigned to unknown node %q", run, node)
		}
	}
	return nil
}

// Node returns the named node info and whether it exists.
func (p *Plan) Node(name string) (NodeInfo, bool) {
	for _, n := range p.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return NodeInfo{}, false
}

// Run returns the named run and whether it exists.
func (p *Plan) Run(name string) (Run, bool) {
	for _, r := range p.Runs {
		if r.Name == name {
			return r, true
		}
	}
	return Run{}, false
}

// Clone deep-copies the plan.
func (p *Plan) Clone() *Plan {
	c := &Plan{
		Nodes:  append([]NodeInfo(nil), p.Nodes...),
		Runs:   append([]Run(nil), p.Runs...),
		Assign: make(map[string]string, len(p.Assign)),
	}
	for k, v := range p.Assign {
		c.Assign[k] = v
	}
	return c
}

// runsOn returns the runs assigned to a node, in name order.
func (p *Plan) runsOn(node string) []Run {
	var out []Run
	for _, r := range p.Runs {
		if p.Assign[r.Name] == node {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Unassigned returns the names of runs without a node, sorted.
func (p *Plan) Unassigned() []string {
	var out []string
	for _, r := range p.Runs {
		if _, ok := p.Assign[r.Name]; !ok {
			out = append(out, r.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Move reassigns one run to a node (the interactive drag in the ForeMan
// interface). It returns an error for unknown runs or nodes.
func (p *Plan) Move(run, node string) error {
	if _, ok := p.Run(run); !ok {
		return fmt.Errorf("core: unknown run %q", run)
	}
	if _, ok := p.Node(node); !ok {
		return fmt.Errorf("core: unknown node %q", node)
	}
	p.Assign[run] = node
	return nil
}
