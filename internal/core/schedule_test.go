package core

import (
	"math"
	"strings"
	"testing"
)

func TestBuildScheduleFeasiblePlant(t *testing.T) {
	nodes := plant(3)
	runs := mkRuns(40000, 40000, 40000)
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: WorstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible() || len(s.Dropped) != 0 {
		t.Fatalf("late=%v dropped=%v", s.Late(), s.Dropped)
	}
}

func TestBuildScheduleDropsLowestPriority(t *testing.T) {
	// One 1-CPU node, three runs, only two can meet the deadline.
	nodes := []NodeInfo{{Name: "n1", CPUs: 1, Speed: 1}}
	runs := []Run{
		{Name: "critical", Work: 30000, Deadline: 86400, Priority: 9},
		{Name: "normal", Work: 30000, Deadline: 86400, Priority: 5},
		{Name: "scratch", Work: 40000, Deadline: 86400, Priority: 1},
	}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing, AllowDrop: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible() {
		t.Fatalf("still late: %v", s.Late())
	}
	if len(s.Dropped) != 1 || s.Dropped[0] != "scratch" {
		t.Fatalf("dropped = %v, want [scratch]", s.Dropped)
	}
}

func TestBuildScheduleWithoutDropReportsLate(t *testing.T) {
	nodes := []NodeInfo{{Name: "n1", CPUs: 1, Speed: 1}}
	runs := []Run{
		{Name: "a", Work: 60000, Deadline: 86400, Priority: 1},
		{Name: "b", Work: 60000, Deadline: 86400, Priority: 1},
	}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	if s.Feasible() || len(s.Late()) == 0 {
		t.Fatal("overload not reported late")
	}
	if len(s.Dropped) != 0 {
		t.Fatalf("dropped without permission: %v", s.Dropped)
	}
}

func TestMaxDropsCapsDropping(t *testing.T) {
	nodes := []NodeInfo{{Name: "n1", CPUs: 1, Speed: 1}}
	runs := []Run{
		{Name: "a", Work: 86400, Deadline: 86400, Priority: 3},
		{Name: "b", Work: 86400, Deadline: 86400, Priority: 2},
		{Name: "c", Work: 86400, Deadline: 86400, Priority: 1},
	}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{
		Heuristic: FirstFitDecreasing, AllowDrop: true, MaxDrops: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dropped) != 1 {
		t.Fatalf("dropped = %v, want exactly 1", s.Dropped)
	}
}

func TestScheduleMoveRecomputesPrediction(t *testing.T) {
	nodes := plant(2)
	runs := []Run{
		{Name: "a", Work: 100000, Deadline: 86400},
		{Name: "b", Work: 100000, Deadline: 86400},
	}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: WorstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	// Spread over two nodes: both finish at 100000.
	before := s.Prediction.Completion["a"]
	if !almost(before, 100000) {
		t.Fatalf("initial completion = %v", before)
	}
	// What-if: pile both on one node. Two serial runs on 2 CPUs still run
	// at full speed; the prediction must be recomputed either way.
	if err := s.Move("b", s.Plan.Assign["a"]); err != nil {
		t.Fatal(err)
	}
	if !almost(s.Prediction.Completion["b"], 100000) {
		t.Fatalf("completion after move = %v", s.Prediction.Completion["b"])
	}
	if err := s.Move("zz", "a"); err == nil {
		t.Fatal("moved unknown run")
	}
}

func TestScheduleDelayShiftsCompletion(t *testing.T) {
	nodes := plant(1)
	runs := []Run{{Name: "a", Work: 10000, Start: 3600, Deadline: 86400}}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Prediction.Completion["a"], 13600) {
		t.Fatalf("completion = %v", s.Prediction.Completion["a"])
	}
	// Input data three hours late.
	if err := s.Delay("a", 3600+3*3600); err != nil {
		t.Fatal(err)
	}
	if !almost(s.Prediction.Completion["a"], 13600+3*3600) {
		t.Fatalf("delayed completion = %v", s.Prediction.Completion["a"])
	}
	if err := s.Delay("zz", 0); err == nil {
		t.Fatal("unknown run accepted")
	}
	if err := s.Delay("a", -1); err == nil {
		t.Fatal("negative start accepted")
	}
}

func TestRescheduleMinimalMoveOnlyMovesDisplaced(t *testing.T) {
	nodes := plant(3)
	runs := mkRuns(50000, 50000, 50000)
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: WorstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	failed := s.Plan.Assign[runs[0].Name]
	after, err := RescheduleAfterFailure(s, failed, MinimalMove, WorstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	// Every displaced run moved off the failed node; everything else
	// stayed.
	for run, node := range after.Plan.Assign {
		if node == failed {
			t.Fatalf("run %s still on failed node", run)
		}
		if before := s.Plan.Assign[run]; before != failed && before != node {
			t.Fatalf("undisplaced run %s moved %s → %s", run, before, node)
		}
	}
	// Completion times remain finite: work continues elsewhere.
	for run, c := range after.Prediction.Completion {
		if math.IsInf(c, 1) {
			t.Fatalf("run %s unplaced after reschedule", run)
		}
	}
}

func TestRescheduleFullReshuffleCanMoveAnything(t *testing.T) {
	nodes := plant(2)
	runs := mkRuns(50000, 30000, 20000, 10000)
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	after, err := RescheduleAfterFailure(s, "a", FullReshuffle, WorstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	for run, node := range after.Plan.Assign {
		if node == "a" {
			t.Fatalf("run %s on failed node", run)
		}
	}
	if _, err := RescheduleAfterFailure(s, "nope", MinimalMove, StayPut); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := RescheduleAfterFailure(s, "a", ReschedulePolicy(9), StayPut); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestMinimalMoveDisruptsLessThanReshuffle(t *testing.T) {
	nodes := plant(4)
	runs := []Run{
		{Name: "r1", Work: 90000, Deadline: 86400, PrevNode: "a"},
		{Name: "r2", Work: 70000, Deadline: 86400, PrevNode: "a"},
		{Name: "r3", Work: 50000, Deadline: 86400, PrevNode: "b"},
		{Name: "r4", Work: 40000, Deadline: 86400, PrevNode: "b"},
		{Name: "r5", Work: 30000, Deadline: 86400, PrevNode: "c"},
		{Name: "r6", Work: 20000, Deadline: 86400, PrevNode: "c"},
		{Name: "r7", Work: 15000, Deadline: 86400, PrevNode: "d"},
		{Name: "r8", Work: 10000, Deadline: 86400, PrevNode: "d"},
	}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: StayPut})
	if err != nil {
		t.Fatal(err)
	}
	minimal, err := RescheduleAfterFailure(s, "a", MinimalMove, WorstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	reshuffle, err := RescheduleAfterFailure(s, "a", FullReshuffle, WorstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	nm, nr := len(MovedRuns(s, minimal)), len(MovedRuns(s, reshuffle))
	if nm > nr {
		t.Fatalf("minimal-move moved %d runs, reshuffle %d", nm, nr)
	}
	if nm != 2 {
		t.Fatalf("minimal-move moved %d runs, want exactly the 2 displaced", nm)
	}
	// The disruption metric counts assignment churn in full: a run whose
	// assignment disappears between plans registers as a move to the
	// empty node instead of vanishing from the count.
	trimmed := &Schedule{Plan: minimal.Plan.Clone()}
	delete(trimmed.Plan.Assign, "r3")
	if got := MovedRuns(minimal, trimmed); len(got) != 1 || got[0] != "r3" {
		t.Fatalf("unassigning r3 registered moves %v, want [r3]", got)
	}
}

func TestReschedulePolicyStrings(t *testing.T) {
	for _, p := range []ReschedulePolicy{MinimalMove, FullReshuffle, ReschedulePolicy(9)} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

func TestShellBackendGeneratesScripts(t *testing.T) {
	nodes := plant(2)
	runs := []Run{
		{Name: "tillamook", Work: 40000, Start: 10800, Deadline: 86400},
		{Name: "columbia", Work: 50000, Start: 7200, Deadline: 86400},
	}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: WorstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := ShellBackend{Repository: "/repo"}.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) != 2 {
		t.Fatalf("got %d scripts", len(scripts))
	}
	// Sorted by run name; commands reference the assigned node and start
	// time.
	if scripts[0].RunName != "columbia" || scripts[1].RunName != "tillamook" {
		t.Fatalf("order: %v, %v", scripts[0].RunName, scripts[1].RunName)
	}
	text := RenderScripts(scripts)
	for _, want := range []string{"02:00", "03:00", scripts[0].Node, "run_forecast.sh", "/repo"} {
		if !strings.Contains(text, want) {
			t.Fatalf("scripts missing %q:\n%s", want, text)
		}
	}
	if _, err := (ShellBackend{}).Generate(nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

func TestRoughCut(t *testing.T) {
	nodes := plant(2) // capacity 2×2×86400 = 345600 per day
	runs := mkRuns(100000, 100000)
	assign, err := Pack(nodes, runs, WorstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	rep := RoughCut(nodes, runs, 0, assign)
	if !rep.Feasible {
		t.Fatal("feasible plant reported infeasible")
	}
	if !almost(rep.TotalWork, 200000) || !almost(rep.TotalCapacity, 345600) {
		t.Fatalf("report = %+v", rep)
	}
	if rep.HeadroomRuns(100000) != 1 {
		t.Fatalf("HeadroomRuns = %d, want 1", rep.HeadroomRuns(100000))
	}
	if rep.HeadroomRuns(0) != 0 {
		t.Fatal("HeadroomRuns(0) should be 0")
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
	// Overload flips feasibility.
	over := RoughCut(nodes, mkRuns(400000, 400000), 86400, nil)
	if over.Feasible || over.Headroom >= 0 {
		t.Fatalf("overloaded report = %+v", over)
	}
}
