package core

import (
	"math"
	"sort"
)

// predictor is Schedule's incremental prediction engine. ForeMan must
// recompute "the expected completion times of all affected workflows"
// after every what-if move, delay, drop, or node failure (§4.1); because
// the CPU-sharing sweep of one node is independent of every other node,
// an edit that touches one or two nodes only needs those nodes re-swept.
// The engine caches each node's last sweep and tracks which nodes a plan
// edit dirtied, so interactive rescheduling costs O(affected nodes)
// instead of O(plant).
//
// Invariants (DESIGN.md §9):
//
//   - cache[n] is exactly the map the last sweepNode(n) returned. Sweep
//     maps are never mutated in place, only replaced wholesale, so
//     schedules derived through adopt() share them safely.
//   - byNode[n] holds copies of the runs currently assigned to node n and
//     is kept in lockstep with Plan.Runs/Plan.Assign by the Schedule
//     methods.
//   - late[n] is the number of deadline misses in cache[n]; the sum over
//     nodes is the plan's infeasibility count, maintained so the drop
//     loop never rescans the whole plan just to ask "still late?".
//   - Whenever no nodes are dirty, s.Prediction.Completion is
//     bit-for-bit equal to what a full s.Plan.Predict() sweep would
//     return — the equivalence the property tests and the CI
//     cross-validation gate assert.
//   - Every plan mutation must flow through the Schedule methods (Move,
//     Delay, drop, RescheduleAfterFailure). Code that edits s.Plan
//     directly must call s.repredict() to resynchronise from scratch —
//     PlanBackfill does exactly that.
type predictor struct {
	nodes  map[string]NodeInfo           // node name → info at last resync/adopt
	byNode map[string][]Run              // node name → runs assigned to it
	cache  map[string]map[string]float64 // node name → last sweep result
	late   map[string]int                // node name → deadline misses in cache
	dirty  map[string]bool               // nodes whose sweep is stale
}

// resync validates the plan and rebuilds the engine with a full sweep —
// the one-time Validate of construction; incremental edits afterwards
// never re-validate the whole plan.
func (s *Schedule) resync() error {
	if err := s.Plan.Validate(); err != nil {
		return err
	}
	s.resyncValidated()
	return nil
}

// resyncValidated rebuilds the engine from an already-validated plan.
func (s *Schedule) resyncValidated() {
	p := s.Plan
	pred, byNode, cache := p.sweepAll()
	pr := &predictor{
		nodes:  make(map[string]NodeInfo, len(p.Nodes)),
		byNode: byNode,
		cache:  cache,
		late:   make(map[string]int, len(p.Nodes)),
		dirty:  make(map[string]bool),
	}
	for _, n := range p.Nodes {
		pr.nodes[n.Name] = n
	}
	for name, m := range cache {
		pr.late[name] = lateCount(byNode[name], m)
	}
	s.pred = pr
	s.Prediction = pred
}

// adopt seeds a fresh schedule's engine from a predecessor over the same
// run set (a reschedule clone): unchanged nodes reuse the predecessor's
// sweep maps — bit-identical, since sweepNode is deterministic on
// identical inputs — and the caller marks the changed nodes dirty.
func (s *Schedule) adopt(from *Schedule) {
	p := s.Plan
	pr := &predictor{
		nodes:  make(map[string]NodeInfo, len(p.Nodes)),
		byNode: make(map[string][]Run, len(p.Nodes)),
		cache:  make(map[string]map[string]float64, len(from.pred.cache)),
		late:   make(map[string]int, len(from.pred.late)),
		dirty:  make(map[string]bool),
	}
	for _, n := range p.Nodes {
		pr.nodes[n.Name] = n
	}
	for _, r := range p.Runs {
		if node, ok := p.Assign[r.Name]; ok {
			pr.byNode[node] = append(pr.byNode[node], r)
		}
	}
	for n, m := range from.pred.cache {
		pr.cache[n] = m
	}
	for n, c := range from.pred.late {
		pr.late[n] = c
	}
	s.pred = pr
	s.Prediction = Prediction{Completion: make(map[string]float64, len(from.Prediction.Completion))}
	for name, t := range from.Prediction.Completion {
		s.Prediction.Completion[name] = t
	}
}

// markDirty queues nodes for re-sweep; empty names are ignored.
func (s *Schedule) markDirty(nodes ...string) {
	for _, n := range nodes {
		if n != "" {
			s.pred.dirty[n] = true
		}
	}
}

// flushDirty re-sweeps every dirty node and patches the prediction in
// place. Runs that left a re-swept node are re-resolved from the plan:
// dropped runs lose their entry, unassigned runs go to +Inf, and runs
// that moved take their new node's (freshly re-swept) value. If the
// engine finds the plan changed in a way it was not told about, it falls
// back to a full resync rather than serve a stale prediction.
func (s *Schedule) flushDirty() {
	pr := s.pred
	if pr == nil || len(pr.dirty) == 0 {
		return
	}
	names := make([]string, 0, len(pr.dirty))
	for n := range pr.dirty {
		names = append(names, n)
	}
	sort.Strings(names)
	type delta struct{ old, new map[string]float64 }
	deltas := make([]delta, 0, len(names))
	swept := 0
	for _, n := range names {
		node, known := pr.nodes[n]
		if !known {
			s.resyncValidated()
			return
		}
		runs := pr.byNode[n]
		m := sweepNode(node, runs)
		if !node.Down && len(runs) > 0 {
			swept++
		}
		deltas = append(deltas, delta{pr.cache[n], m})
		pr.cache[n] = m
		pr.late[n] = lateCount(runs, m)
	}
	for _, d := range deltas {
		for name, t := range d.new {
			s.Prediction.Completion[name] = t
		}
	}
	for _, d := range deltas {
		for name := range d.old {
			if _, still := d.new[name]; still {
				continue
			}
			if !s.refreshDeparted(name) {
				s.resyncValidated()
				return
			}
		}
	}
	pr.dirty = make(map[string]bool)
	countPredict("incremental", swept)
}

// refreshDeparted fixes the completion entry of a run that left a
// re-swept node, reporting false when its new node was never re-swept
// (the caller under-marked and a full resync is needed).
func (s *Schedule) refreshDeparted(name string) bool {
	node, ok := s.Plan.Assign[name]
	if !ok {
		if _, exists := s.Plan.Run(name); !exists {
			delete(s.Prediction.Completion, name)
			return true
		}
		s.Prediction.Completion[name] = math.Inf(1)
		return true
	}
	t, ok := s.pred.cache[node][name]
	if !ok {
		return false
	}
	s.Prediction.Completion[name] = t
	return true
}

// lateCount counts the deadline misses in one node's sweep (+Inf on a
// down node counts, matching Prediction.Late).
func lateCount(runs []Run, swept map[string]float64) int {
	late := 0
	for _, r := range runs {
		if r.Deadline > 0 && swept[r.Name] > r.Deadline {
			late++
		}
	}
	return late
}

// removeRun drops one run from a node's grouping.
func (pr *predictor) removeRun(node, name string) {
	runs := pr.byNode[node]
	for i := range runs {
		if runs[i].Name == name {
			pr.byNode[node] = append(runs[:i], runs[i+1:]...)
			return
		}
	}
}
