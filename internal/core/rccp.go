package core

import (
	"fmt"
	"sort"
	"strings"
)

// CapacityReport is a rough-cut capacity plan (RCCP): the optimistic
// aggregate comparison of demand against plant capacity that precedes
// detailed scheduling. The factory uses it to "estimate the running time
// of all forecasts for a day and compare it to available computing
// capacity, to ensure the collective resource requirements do not exceed
// the total capacity".
type CapacityReport struct {
	Window        float64 // planning window in seconds (one day by default)
	TotalWork     float64 // demand, reference CPU-seconds
	TotalCapacity float64 // supply, reference CPU-seconds over the window
	Utilization   float64 // demand / supply
	Feasible      bool    // Utilization <= 1
	// Headroom is how many more reference CPU-seconds fit in the window.
	Headroom float64
	PerNode  []NodeCapacity
}

// NodeCapacity is the per-node slice of the rough cut under a given
// assignment (zero loads when no assignment is supplied).
type NodeCapacity struct {
	Node        string
	Capacity    float64
	Load        float64
	Utilization float64
}

// RoughCut computes the aggregate capacity check. window is the planning
// horizon in seconds (<= 0 selects one day). assign may be nil; when
// given, per-node loads are reported against it.
func RoughCut(nodes []NodeInfo, runs []Run, window float64, assign map[string]string) CapacityReport {
	if window <= 0 {
		window = 86400
	}
	rep := CapacityReport{Window: window}
	loads := make(map[string]float64)
	for _, r := range runs {
		rep.TotalWork += r.Work
		if assign != nil {
			loads[assign[r.Name]] += r.Work
		}
	}
	for _, n := range nodes {
		cap := n.Capacity() * window
		rep.TotalCapacity += cap
		nc := NodeCapacity{Node: n.Name, Capacity: cap, Load: loads[n.Name]}
		if cap > 0 {
			nc.Utilization = nc.Load / cap
		}
		rep.PerNode = append(rep.PerNode, nc)
	}
	sort.Slice(rep.PerNode, func(i, j int) bool { return rep.PerNode[i].Node < rep.PerNode[j].Node })
	if rep.TotalCapacity > 0 {
		rep.Utilization = rep.TotalWork / rep.TotalCapacity
	}
	rep.Feasible = rep.TotalWork <= rep.TotalCapacity
	rep.Headroom = rep.TotalCapacity - rep.TotalWork
	return rep
}

// HeadroomRuns estimates how many more runs of the given work would fit in
// the window — the long-range question "how many forecasts can this plant
// take before we buy nodes?".
func (r CapacityReport) HeadroomRuns(workPerRun float64) int {
	if workPerRun <= 0 || r.Headroom <= 0 {
		return 0
	}
	return int(r.Headroom / workPerRun)
}

// String renders the report as a short table.
func (r CapacityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rough-cut capacity plan (window %.0fs)\n", r.Window)
	fmt.Fprintf(&b, "  demand %.0f CPU-s, capacity %.0f CPU-s, utilization %.1f%%, feasible=%v\n",
		r.TotalWork, r.TotalCapacity, 100*r.Utilization, r.Feasible)
	for _, n := range r.PerNode {
		fmt.Fprintf(&b, "  %-10s capacity %.0f load %.0f (%.1f%%)\n", n.Node, n.Capacity, n.Load, 100*n.Utilization)
	}
	return b.String()
}
