package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
)

// Prediction holds expected completion times for every assigned run, in
// seconds after midnight. Runs on a down node (or left unassigned) get
// +Inf.
type Prediction struct {
	Completion map[string]float64
}

// Makespan returns the latest completion time, or 0 with no runs.
func (p Prediction) Makespan() float64 {
	var m float64
	for _, t := range p.Completion {
		if t > m {
			m = t
		}
	}
	return m
}

// Late returns the names of runs predicted to miss their deadline, sorted.
// Runs with no deadline (0) are never late.
func (p Prediction) Late(plan *Plan) []string {
	var late []string
	for _, r := range plan.Runs {
		if r.Deadline <= 0 {
			continue
		}
		t, ok := p.Completion[r.Name]
		if ok && t > r.Deadline {
			late = append(late, r.Name)
		}
	}
	sort.Strings(late)
	return late
}

// Feasible reports whether every run with a deadline is predicted to meet
// it.
func (p Prediction) Feasible(plan *Plan) bool { return len(p.Late(plan)) == 0 }

// Predict computes per-run completion times under the paper's CPU-sharing
// model: on a node with c CPUs of speed s, each of k concurrent serial
// runs progresses at s·min(1, c/k). The implementation is an analytic
// sweep per node — independent of the discrete-event simulator, and
// cross-validated against it in the tests, mirroring the paper's
// empirical validation of the sharing assumption. Nodes are swept
// independently, concurrently on large plans; Schedule additionally keeps
// the per-node sweeps cached so interactive edits re-sweep only the
// affected nodes (see incremental.go).
func (p *Plan) Predict() (Prediction, error) {
	if err := p.Validate(); err != nil {
		return Prediction{}, err
	}
	pred, _, _ := p.sweepAll()
	return pred, nil
}

// parallelSweepMinRuns is the assigned-run count below which a full-plan
// sweep stays serial: the goroutine fan-out only pays for itself once the
// per-node sweeps dominate scheduling overhead.
const parallelSweepMinRuns = 128

// sweepAll sweeps every node of an already-validated plan and returns the
// merged prediction plus the per-node grouping and per-node completion
// maps that seed Schedule's incremental engine. Up nodes are swept by a
// bounded worker pool (GOMAXPROCS-capped) when the plan is large enough;
// the merge order never affects the result because every run completes on
// exactly one node.
func (p *Plan) sweepAll() (Prediction, map[string][]Run, map[string]map[string]float64) {
	pred := Prediction{Completion: make(map[string]float64, len(p.Runs))}
	byNode := make(map[string][]Run, len(p.Nodes))
	assigned := 0
	for _, r := range p.Runs {
		node, ok := p.Assign[r.Name]
		if !ok {
			pred.Completion[r.Name] = math.Inf(1)
			continue
		}
		byNode[node] = append(byNode[node], r)
		assigned++
	}
	cache := make(map[string]map[string]float64, len(byNode))
	var up []NodeInfo
	for _, node := range p.Nodes {
		runs := byNode[node.Name]
		if len(runs) == 0 {
			continue
		}
		if node.Down {
			cache[node.Name] = sweepNode(node, runs)
			continue
		}
		up = append(up, node)
	}
	results := make([]map[string]float64, len(up))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(up) {
		workers = len(up)
	}
	if workers > 1 && assigned >= parallelSweepMinRuns {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i] = predictNode(up[i], byNode[up[i].Name])
				}
			}()
		}
		for i := range up {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i := range up {
			results[i] = predictNode(up[i], byNode[up[i].Name])
		}
	}
	for i, node := range up {
		cache[node.Name] = results[i]
	}
	for _, m := range cache {
		for name, t := range m {
			pred.Completion[name] = t
		}
	}
	countPredict("full", len(up))
	return pred, byNode, cache
}

// sweepNode is the single-node unit of prediction: +Inf for every run
// when the node is down, the processor-sharing sweep otherwise.
func sweepNode(node NodeInfo, runs []Run) map[string]float64 {
	if node.Down {
		m := make(map[string]float64, len(runs))
		for _, r := range runs {
			m[r.Name] = math.Inf(1)
		}
		return m
	}
	return predictNode(node, runs)
}

// predictNode sweeps one node's processor-sharing timeline. Serial runs
// are capped at one CPU; parallel mega-jobs (Width > 1) at Width CPUs;
// the node's capacity is shared max-min fairly, matching the simulator's
// water-filling discipline by an independent implementation.
func predictNode(node NodeInfo, runs []Run) map[string]float64 {
	type state struct {
		run       Run
		remaining float64
		rate      float64
	}
	// Arrivals sorted by start time (name tiebreak for determinism).
	pending := append([]Run(nil), runs...)
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].Start != pending[j].Start {
			return pending[i].Start < pending[j].Start
		}
		return pending[i].Name < pending[j].Name
	})

	out := make(map[string]float64, len(runs))
	active := make(map[string]*state)
	t := 0.0
	if len(pending) > 0 {
		t = pending[0].Start
	}
	// refill recomputes max-min fair rates for the active set.
	refill := func() {
		states := make([]*state, 0, len(active))
		for _, s := range active {
			states = append(states, s)
		}
		sort.Slice(states, func(i, j int) bool {
			ci := float64(min(states[i].run.width(), node.CPUs)) * node.Speed
			cj := float64(min(states[j].run.width(), node.CPUs)) * node.Speed
			if ci != cj {
				return ci < cj
			}
			return states[i].run.Name < states[j].run.Name
		})
		remaining := float64(node.CPUs) * node.Speed
		for i, s := range states {
			cap := float64(min(s.run.width(), node.CPUs)) * node.Speed
			share := remaining / float64(len(states)-i)
			s.rate = math.Min(cap, share)
			remaining -= s.rate
		}
	}

	for len(pending) > 0 || len(active) > 0 {
		// Admit arrivals at time t.
		for len(pending) > 0 && pending[0].Start <= t {
			r := pending[0]
			pending = pending[1:]
			active[r.Name] = &state{run: r, remaining: r.Work}
		}
		if len(active) == 0 {
			// Idle gap: jump to the next arrival.
			t = pending[0].Start
			continue
		}
		refill()
		// Next event: earliest completion at current rates, or the next
		// arrival.
		nextEvent := math.Inf(1)
		for _, s := range active {
			if s.rate > 0 {
				if eta := t + s.remaining/s.rate; eta < nextEvent {
					nextEvent = eta
				}
			}
		}
		if len(pending) > 0 && pending[0].Start < nextEvent {
			nextEvent = pending[0].Start
		}
		dt := nextEvent - t
		for _, s := range active {
			s.remaining -= s.rate * dt
		}
		t = nextEvent
		// Retire completed runs (tolerate float dust).
		var done []string
		for name, s := range active {
			if s.remaining <= 1e-9*math.Max(1, s.run.Work) {
				done = append(done, name)
			}
		}
		sort.Strings(done)
		for _, name := range done {
			out[name] = t
			delete(active, name)
		}
	}
	return out
}
