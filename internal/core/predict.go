package core

import (
	"math"
	"sort"
)

// Prediction holds expected completion times for every assigned run, in
// seconds after midnight. Runs on a down node (or left unassigned) get
// +Inf.
type Prediction struct {
	Completion map[string]float64
}

// Makespan returns the latest completion time, or 0 with no runs.
func (p Prediction) Makespan() float64 {
	var m float64
	for _, t := range p.Completion {
		if t > m {
			m = t
		}
	}
	return m
}

// Late returns the names of runs predicted to miss their deadline, sorted.
// Runs with no deadline (0) are never late.
func (p Prediction) Late(plan *Plan) []string {
	var late []string
	for _, r := range plan.Runs {
		if r.Deadline <= 0 {
			continue
		}
		t, ok := p.Completion[r.Name]
		if ok && t > r.Deadline {
			late = append(late, r.Name)
		}
	}
	sort.Strings(late)
	return late
}

// Feasible reports whether every run with a deadline is predicted to meet
// it.
func (p Prediction) Feasible(plan *Plan) bool { return len(p.Late(plan)) == 0 }

// Predict computes per-run completion times under the paper's CPU-sharing
// model: on a node with c CPUs of speed s, each of k concurrent serial
// runs progresses at s·min(1, c/k). The implementation is an analytic
// sweep per node — independent of the discrete-event simulator, and
// cross-validated against it in the tests, mirroring the paper's
// empirical validation of the sharing assumption.
func (p *Plan) Predict() (Prediction, error) {
	if err := p.Validate(); err != nil {
		return Prediction{}, err
	}
	pred := Prediction{Completion: make(map[string]float64, len(p.Runs))}
	for _, r := range p.Runs {
		if _, ok := p.Assign[r.Name]; !ok {
			pred.Completion[r.Name] = math.Inf(1)
		}
	}
	for _, node := range p.Nodes {
		runs := p.runsOn(node.Name)
		if len(runs) == 0 {
			continue
		}
		if node.Down {
			for _, r := range runs {
				pred.Completion[r.Name] = math.Inf(1)
			}
			continue
		}
		completions := predictNode(node, runs)
		for name, t := range completions {
			pred.Completion[name] = t
		}
	}
	return pred, nil
}

// predictNode sweeps one node's processor-sharing timeline. Serial runs
// are capped at one CPU; parallel mega-jobs (Width > 1) at Width CPUs;
// the node's capacity is shared max-min fairly, matching the simulator's
// water-filling discipline by an independent implementation.
func predictNode(node NodeInfo, runs []Run) map[string]float64 {
	type state struct {
		run       Run
		remaining float64
		rate      float64
	}
	// Arrivals sorted by start time (name tiebreak for determinism).
	pending := append([]Run(nil), runs...)
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].Start != pending[j].Start {
			return pending[i].Start < pending[j].Start
		}
		return pending[i].Name < pending[j].Name
	})

	out := make(map[string]float64, len(runs))
	active := make(map[string]*state)
	t := 0.0
	if len(pending) > 0 {
		t = pending[0].Start
	}
	// refill recomputes max-min fair rates for the active set.
	refill := func() {
		states := make([]*state, 0, len(active))
		for _, s := range active {
			states = append(states, s)
		}
		sort.Slice(states, func(i, j int) bool {
			ci := float64(min(states[i].run.width(), node.CPUs)) * node.Speed
			cj := float64(min(states[j].run.width(), node.CPUs)) * node.Speed
			if ci != cj {
				return ci < cj
			}
			return states[i].run.Name < states[j].run.Name
		})
		remaining := float64(node.CPUs) * node.Speed
		for i, s := range states {
			cap := float64(min(s.run.width(), node.CPUs)) * node.Speed
			share := remaining / float64(len(states)-i)
			s.rate = math.Min(cap, share)
			remaining -= s.rate
		}
	}

	for len(pending) > 0 || len(active) > 0 {
		// Admit arrivals at time t.
		for len(pending) > 0 && pending[0].Start <= t {
			r := pending[0]
			pending = pending[1:]
			active[r.Name] = &state{run: r, remaining: r.Work}
		}
		if len(active) == 0 {
			// Idle gap: jump to the next arrival.
			t = pending[0].Start
			continue
		}
		refill()
		// Next event: earliest completion at current rates, or the next
		// arrival.
		nextEvent := math.Inf(1)
		for _, s := range active {
			if s.rate > 0 {
				if eta := t + s.remaining/s.rate; eta < nextEvent {
					nextEvent = eta
				}
			}
		}
		if len(pending) > 0 && pending[0].Start < nextEvent {
			nextEvent = pending[0].Start
		}
		dt := nextEvent - t
		for _, s := range active {
			s.remaining -= s.rate * dt
		}
		t = nextEvent
		// Retire completed runs (tolerate float dust).
		var done []string
		for name, s := range active {
			if s.remaining <= 1e-9*math.Max(1, s.run.Work) {
				done = append(done, name)
			}
		}
		sort.Strings(done)
		for _, name := range done {
			out[name] = t
			delete(active, name)
		}
	}
	return out
}
