package core

import (
	"math"
	"testing"

	"repro/internal/forecast"
	"repro/internal/logs"
)

func histRecord(forecastName string, day int, wall float64, node string, ts, sides int, codeFactor float64) *logs.RunRecord {
	return &logs.RunRecord{
		Forecast:    forecastName,
		Region:      "r",
		Year:        2005,
		Day:         day,
		Node:        node,
		CodeVersion: "v1",
		CodeFactor:  codeFactor,
		MeshName:    "m",
		MeshSides:   sides,
		Timesteps:   ts,
		Walltime:    wall,
		End:         wall,
		Status:      logs.StatusCompleted,
	}
}

func estPlant() []NodeInfo {
	return []NodeInfo{
		{Name: "ref", CPUs: 2, Speed: 1.0},
		{Name: "fast", CPUs: 2, Speed: 2.0},
		{Name: "slow", CPUs: 2, Speed: 0.5},
	}
}

func TestEstimateUsesMostRecentRun(t *testing.T) {
	e := NewEstimator([]*logs.RunRecord{
		histRecord("f", 1, 50000, "ref", 5760, 30000, 1),
		histRecord("f", 2, 40000, "ref", 5760, 30000, 1),
	}, estPlant())
	est, err := e.Estimate(Request{Forecast: "f", Node: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	if est.Seconds != 40000 || est.Basis.Day != 2 {
		t.Fatalf("est = %+v", est)
	}
}

func TestEstimateScalesByTimestepsAndSides(t *testing.T) {
	e := NewEstimator([]*logs.RunRecord{
		histRecord("f", 1, 40000, "ref", 5760, 30000, 1),
	}, estPlant())
	est, err := e.Estimate(Request{Forecast: "f", Timesteps: 11520, Node: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Seconds-80000) > 1 {
		t.Fatalf("doubled timesteps: %v, want 80000", est.Seconds)
	}
	est, err = e.Estimate(Request{Forecast: "f", MeshSides: 15000, Node: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Seconds-20000) > 1 {
		t.Fatalf("halved mesh: %v, want 20000", est.Seconds)
	}
}

func TestEstimateScalesByNodeSpeed(t *testing.T) {
	// "If a forecast is moved to a faster or slower node, ForeMan will
	// scale the expected running time of the forecast by the relative
	// node speed."
	e := NewEstimator([]*logs.RunRecord{
		histRecord("f", 1, 40000, "ref", 5760, 30000, 1),
	}, estPlant())
	fast, err := e.Estimate(Request{Forecast: "f", Node: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.Seconds-20000) > 1 {
		t.Fatalf("fast node: %v, want 20000", fast.Seconds)
	}
	slow, err := e.Estimate(Request{Forecast: "f", Node: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slow.Seconds-80000) > 1 {
		t.Fatalf("slow node: %v, want 80000", slow.Seconds)
	}
}

func TestEstimateUserAdjustment(t *testing.T) {
	// "A programmer may estimate that a new code version will run 10%
	// faster."
	e := NewEstimator([]*logs.RunRecord{
		histRecord("f", 1, 40000, "ref", 5760, 30000, 1),
	}, estPlant())
	est, err := e.Estimate(Request{Forecast: "f", Node: "ref", Adjust: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Seconds-36000) > 1 {
		t.Fatalf("adjusted: %v, want 36000", est.Seconds)
	}
}

func TestEstimateErrors(t *testing.T) {
	e := NewEstimator([]*logs.RunRecord{
		histRecord("f", 1, 40000, "ref", 5760, 30000, 1),
		histRecord("g", 1, 40000, "mystery", 5760, 30000, 1),
	}, estPlant())
	if _, err := e.Estimate(Request{Forecast: "never-ran", Node: "ref"}); err == nil {
		t.Fatal("estimate without history accepted")
	}
	if _, err := e.Estimate(Request{Forecast: "f", Node: "unknown-node"}); err == nil {
		t.Fatal("unknown target node accepted")
	}
	if _, err := e.Estimate(Request{Forecast: "g", Node: "ref"}); err == nil {
		t.Fatal("history on unknown node accepted")
	}
	// Running records are excluded from history.
	running := histRecord("h", 1, 0, "ref", 5760, 30000, 1)
	running.Status = logs.StatusRunning
	running.Walltime = 0
	e2 := NewEstimator([]*logs.RunRecord{running}, estPlant())
	if _, err := e2.Estimate(Request{Forecast: "h", Node: "ref"}); err == nil {
		t.Fatal("running-only history accepted")
	}
	if len(e.History("f")) != 1 || len(e.History("zz")) != 0 {
		t.Fatal("History accessor wrong")
	}
}

func TestEstimateCaveats(t *testing.T) {
	e := NewEstimator([]*logs.RunRecord{
		histRecord("f", 1, 40000, "ref", 5760, 30000, 1),
	}, estPlant())
	// No changes: no caveats.
	clean, err := e.Estimate(Request{Forecast: "f", Node: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Caveats) != 0 {
		t.Fatalf("caveats = %v, want none", clean.Caveats)
	}
	// User code factor: flagged as an estimate.
	adjusted, err := e.Estimate(Request{Forecast: "f", Node: "ref", Adjust: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(adjusted.Caveats) != 1 {
		t.Fatalf("caveats = %v, want the code-change warning", adjusted.Caveats)
	}
	// Large mesh change: flagged.
	remeshed, err := e.Estimate(Request{Forecast: "f", Node: "ref", MeshSides: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if len(remeshed.Caveats) != 1 {
		t.Fatalf("caveats = %v, want the mesh warning", remeshed.Caveats)
	}
	// Small mesh change: not flagged.
	tweaked, err := e.Estimate(Request{Forecast: "f", Node: "ref", MeshSides: 31000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tweaked.Caveats) != 0 {
		t.Fatalf("caveats = %v, want none for a 3%% change", tweaked.Caveats)
	}
}

func TestEstimateFromSpec(t *testing.T) {
	spec := forecast.Tillamook()
	est := EstimateFromSpec(spec, NodeInfo{Name: "fast", CPUs: 2, Speed: 2})
	if math.Abs(est.Work-spec.TotalWork()) > 1e-9 {
		t.Fatalf("work = %v", est.Work)
	}
	if math.Abs(est.Seconds-spec.TotalWork()/2) > 1e-9 {
		t.Fatalf("seconds = %v", est.Seconds)
	}
}

func TestPlanRunsCombinesHistoryAndSpecs(t *testing.T) {
	nodes := estPlant()
	veteran := forecast.NewSpec("veteran", "r", 5760, 30000, 2)
	veteran.StartOffset = 3600
	veteran.Priority = 7
	rookie := forecast.NewSpec("rookie", "r", 2880, 10000, 2)

	e := NewEstimator([]*logs.RunRecord{
		histRecord("veteran", 3, 50000, "fast", 5760, 30000, 1),
	}, nodes)
	runs := e.PlanRuns([]*forecast.Spec{veteran, rookie}, nodes)
	if len(runs) != 2 {
		t.Fatalf("got %d runs", len(runs))
	}
	var vet, rook *Run
	for i := range runs {
		switch runs[i].Name {
		case "veteran":
			vet = &runs[i]
		case "rookie":
			rook = &runs[i]
		}
	}
	if vet == nil || rook == nil {
		t.Fatal("missing runs")
	}
	// Veteran: history on "fast" (speed 2) with walltime 50000 → work
	// 100000 reference CPU-seconds; PrevNode recorded.
	if math.Abs(vet.Work-100000) > 1 || vet.PrevNode != "fast" {
		t.Fatalf("veteran run = %+v", vet)
	}
	if vet.Start != 3600 || vet.Priority != 7 || vet.Deadline != 86400 {
		t.Fatalf("veteran metadata = %+v", vet)
	}
	// Rookie: no history → work model.
	if math.Abs(rook.Work-rookie.TotalWork()) > 1e-6 || rook.PrevNode != "" {
		t.Fatalf("rookie run = %+v", rook)
	}
}

func TestPlanRunsAppliesCodeFactorRatio(t *testing.T) {
	nodes := estPlant()
	spec := forecast.NewSpec("f", "r", 5760, 30000, 2)
	spec.Code = forecast.CodeVersion{Name: "v2", CostFactor: 2.0}
	e := NewEstimator([]*logs.RunRecord{
		histRecord("f", 1, 40000, "ref", 5760, 30000, 1.0),
	}, nodes)
	runs := e.PlanRuns([]*forecast.Spec{spec}, nodes)
	if len(runs) != 1 || math.Abs(runs[0].Work-80000) > 1 {
		t.Fatalf("runs = %+v (want work 80000 after 2× code factor)", runs)
	}
}
