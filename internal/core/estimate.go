package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/forecast"
	"repro/internal/logs"
)

// Estimator predicts forecast running times from the statistics database
// of past runs (§4.3.2): the base estimate comes from the most recent
// completed run of the same forecast, scaled linearly by the timestep
// ratio, near-linearly by the mesh-side ratio, by the relative speed of
// the source and target nodes, and by a user-supplied adjustment factor
// for code-version changes ("a programmer may estimate that a new code
// version will run 10% faster").
type Estimator struct {
	byForecast map[string][]*logs.RunRecord // completed runs, day ascending
	nodeSpeed  map[string]float64
}

// NewEstimator indexes the completed records by forecast. nodes supplies
// the relative speed of every node that appears in history or as an
// estimation target.
func NewEstimator(records []*logs.RunRecord, nodes []NodeInfo) *Estimator {
	e := &Estimator{
		byForecast: make(map[string][]*logs.RunRecord),
		nodeSpeed:  make(map[string]float64, len(nodes)),
	}
	for _, n := range nodes {
		e.nodeSpeed[n.Name] = n.Speed
	}
	for _, r := range records {
		if r.Status != logs.StatusCompleted || r.Walltime <= 0 {
			continue
		}
		e.byForecast[r.Forecast] = append(e.byForecast[r.Forecast], r)
	}
	for _, rs := range e.byForecast {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].Year != rs[j].Year {
				return rs[i].Year < rs[j].Year
			}
			return rs[i].Day < rs[j].Day
		})
	}
	return e
}

// History returns the completed records for a forecast, day ascending.
func (e *Estimator) History(forecastName string) []*logs.RunRecord {
	return append([]*logs.RunRecord(nil), e.byForecast[forecastName]...)
}

// Request describes one estimation question: how long will this forecast
// take with these parameters on that node?
type Request struct {
	Forecast  string
	Timesteps int
	MeshSides int
	Node      string
	// Adjust is the user's code-change factor (1.0 = unchanged; 0.9 = the
	// programmer expects the new version to run 10% faster).
	Adjust float64
}

// Estimate is the answer: expected runtime on the target node, the
// equivalent work in reference CPU-seconds, and the historical record the
// estimate is based on. Caveats flag the situations §4.3.2 warns are hard
// to estimate automatically (code-version changes, large mesh changes).
type Estimate struct {
	Seconds float64
	Work    float64
	Basis   *logs.RunRecord
	Caveats []string
}

// Estimate computes a run-time estimate. It fails when the forecast has no
// completed history or the target node's speed is unknown — callers fall
// back to EstimateFromSpec for brand-new forecasts.
func (e *Estimator) Estimate(req Request) (Estimate, error) {
	hist := e.byForecast[req.Forecast]
	if len(hist) == 0 {
		return Estimate{}, fmt.Errorf("core: no completed history for forecast %q", req.Forecast)
	}
	base := hist[len(hist)-1]
	targetSpeed, ok := e.nodeSpeed[req.Node]
	if !ok || targetSpeed <= 0 {
		return Estimate{}, fmt.Errorf("core: unknown target node %q", req.Node)
	}
	baseSpeed, ok := e.nodeSpeed[base.Node]
	if !ok || baseSpeed <= 0 {
		return Estimate{}, fmt.Errorf("core: history for %q ran on unknown node %q", req.Forecast, base.Node)
	}
	adjust := req.Adjust
	if adjust <= 0 {
		adjust = 1
	}
	timesteps := req.Timesteps
	if timesteps <= 0 {
		timesteps = base.Timesteps
	}
	sides := req.MeshSides
	if sides <= 0 {
		sides = base.MeshSides
	}
	if base.Timesteps <= 0 || base.MeshSides <= 0 {
		return Estimate{}, fmt.Errorf("core: history record for %q lacks timesteps/mesh data", req.Forecast)
	}

	// The base run's walltime on its node corresponds to this much work in
	// reference CPU-seconds (assuming it ran without heavy contention — a
	// limitation the paper shares, since its statistics are walltimes).
	work := base.Walltime * baseSpeed
	work *= float64(timesteps) / float64(base.Timesteps)
	work *= float64(sides) / float64(base.MeshSides)
	work *= adjust

	// §4.3.2's warnings: code-version effects are "more difficult to
	// automate", and mesh changes "may also affect run times" beyond the
	// side count (depth changes) and "often accompany code version
	// changes". Surface those situations rather than estimating silently.
	var caveats []string
	if adjust != 1 {
		caveats = append(caveats,
			fmt.Sprintf("code-change factor %.2f is a user estimate, not measured history", adjust))
	}
	ratio := float64(sides) / float64(base.MeshSides)
	if ratio > 1.5 || ratio < 0.67 {
		caveats = append(caveats,
			fmt.Sprintf("mesh changed %.0f%% in sides; other mesh properties (e.g. depth) may shift run time further",
				100*math.Abs(ratio-1)))
	}
	return Estimate{
		Seconds: work / targetSpeed,
		Work:    work,
		Basis:   base,
		Caveats: caveats,
	}, nil
}

// EstimateFromSpec derives an estimate from a forecast specification's
// work model — the fallback when a forecast has never run (ForeMan seeds
// new forecasts this way until real statistics accumulate).
func EstimateFromSpec(spec *forecast.Spec, node NodeInfo) Estimate {
	work := spec.TotalWork()
	return Estimate{Seconds: work / node.Speed, Work: work}
}

// PlanRuns builds planner inputs for a production day from forecast specs
// and history: each spec becomes a Run with estimated work, its start
// offset, deadline, priority, and — when history exists — its previous
// node as the default assignment.
func (e *Estimator) PlanRuns(specs []*forecast.Spec, nodes []NodeInfo) []Run {
	byName := make(map[string]NodeInfo, len(nodes))
	for _, n := range nodes {
		byName[n.Name] = n
	}
	runs := make([]Run, 0, len(specs))
	for _, spec := range specs {
		r := Run{
			Name:     spec.Name,
			Start:    spec.StartOffset,
			Deadline: spec.Deadline,
			Priority: spec.Priority,
		}
		hist := e.byForecast[spec.Name]
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			r.PrevNode = last.Node
			adjust := 1.0
			if last.CodeFactor > 0 && spec.Code.CostFactor > 0 {
				adjust = spec.Code.CostFactor / last.CodeFactor
			}
			est, err := e.Estimate(Request{
				Forecast:  spec.Name,
				Timesteps: spec.Timesteps,
				MeshSides: spec.Mesh.Sides,
				Node:      last.Node,
				Adjust:    adjust,
			})
			if err == nil {
				r.Work = est.Work
				runs = append(runs, r)
				continue
			}
		}
		// New forecast (or unusable history): seed from the work model on
		// any node — work is node-independent.
		r.Work = spec.TotalWork()
		runs = append(runs, r)
	}
	return runs
}
