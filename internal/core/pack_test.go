package core

import (
	"testing"
	"testing/quick"
)

func plant(n int) []NodeInfo {
	nodes := make([]NodeInfo, n)
	for i := range nodes {
		nodes[i] = NodeInfo{Name: string(rune('a' + i)), CPUs: 2, Speed: 1.0}
	}
	return nodes
}

func mkRuns(works ...float64) []Run {
	runs := make([]Run, len(works))
	for i, w := range works {
		runs[i] = Run{Name: string(rune('p' + i)), Work: w, Deadline: 86400}
	}
	return runs
}

func TestStayPutHonorsPreviousNode(t *testing.T) {
	nodes := plant(3)
	runs := mkRuns(100, 100)
	runs[0].PrevNode = "c"
	runs[1].PrevNode = "b"
	assign, err := Pack(nodes, runs, StayPut)
	if err != nil {
		t.Fatal(err)
	}
	if assign[runs[0].Name] != "c" || assign[runs[1].Name] != "b" {
		t.Fatalf("assign = %v", assign)
	}
}

func TestStayPutFallsBackWhenPrevNodeGone(t *testing.T) {
	nodes := plant(2)
	nodes[1].Down = true
	runs := mkRuns(100)
	runs[0].PrevNode = "b" // down
	assign, err := Pack(nodes, runs, StayPut)
	if err != nil {
		t.Fatal(err)
	}
	if assign[runs[0].Name] != "a" {
		t.Fatalf("assign = %v", assign)
	}
}

func TestFFDSpreadsOverflow(t *testing.T) {
	// Two nodes, window capacity 2 CPUs × 86400 = 172800 each. Three runs
	// of 100k: FFD puts the first on a, second still fits a (wait: 200k >
	// 172800, does not fit) → b, third → a is full, b is full → least
	// loaded.
	nodes := plant(2)
	runs := mkRuns(100000, 100000, 100000)
	assign, err := Pack(nodes, runs, FirstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, n := range assign {
		counts[n]++
	}
	if counts["a"]+counts["b"] != 3 || counts["a"] == 0 || counts["b"] == 0 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestWFDBalancesLoad(t *testing.T) {
	nodes := plant(3)
	runs := mkRuns(300, 200, 100, 100, 100)
	assign, err := Pack(nodes, runs, WorstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]float64{}
	byName := map[string]Run{}
	for _, r := range runs {
		byName[r.Name] = r
		load[assign[r.Name]] += r.Work
	}
	// Perfect balance exists (300 | 200+100 | 100+100); WFD should land
	// within a modest spread.
	for _, l := range load {
		if l < 200 || l > 400 {
			t.Fatalf("unbalanced loads: %v", load)
		}
	}
}

func TestBFDTightensFit(t *testing.T) {
	// BFD places each run on the node with least remaining slack; with a
	// big run on node a, a second small run should co-locate on a only if
	// it still fits; here windows are tight so it goes where the fit is
	// tightest but feasible.
	nodes := plant(2)
	runs := []Run{
		{Name: "big", Work: 150000, Deadline: 86400},
		{Name: "small", Work: 10000, Deadline: 86400},
	}
	assign, err := Pack(nodes, runs, BestFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	// Node a after big: slack = 172800-150000-10000 = 12800; node b slack
	// = 172800-10000. BFD picks the tighter fit: a.
	if assign["small"] != assign["big"] {
		t.Fatalf("assign = %v, want co-located (tightest fit)", assign)
	}
}

func TestPackSkipsDownNodes(t *testing.T) {
	nodes := plant(3)
	nodes[0].Down = true
	runs := mkRuns(100, 100, 100, 100)
	for _, h := range []Heuristic{StayPut, FirstFitDecreasing, BestFitDecreasing, WorstFitDecreasing} {
		assign, err := Pack(nodes, runs, h)
		if err != nil {
			t.Fatal(err)
		}
		for run, node := range assign {
			if node == "a" {
				t.Fatalf("%v assigned %s to down node", h, run)
			}
		}
	}
}

func TestPackAllNodesDownFails(t *testing.T) {
	nodes := plant(1)
	nodes[0].Down = true
	if _, err := Pack(nodes, mkRuns(10), FirstFitDecreasing); err == nil {
		t.Fatal("packing onto a dead plant succeeded")
	}
}

func TestPackUnknownHeuristicFails(t *testing.T) {
	if _, err := Pack(plant(1), mkRuns(10), Heuristic(99)); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestPackInvalidInputFails(t *testing.T) {
	runs := mkRuns(10)
	runs[0].Work = -1
	if _, err := Pack(plant(1), runs, FirstFitDecreasing); err == nil {
		t.Fatal("invalid run accepted")
	}
}

func TestHeuristicStrings(t *testing.T) {
	for _, h := range []Heuristic{StayPut, FirstFitDecreasing, BestFitDecreasing, WorstFitDecreasing, Heuristic(9)} {
		if h.String() == "" {
			t.Fatal("empty heuristic name")
		}
	}
}

// Property: every heuristic assigns every run to an up node.
func TestPropertyPackTotalAndValid(t *testing.T) {
	f := func(worksRaw []uint16, hRaw uint8, downRaw uint8) bool {
		if len(worksRaw) == 0 || len(worksRaw) > 12 {
			return true
		}
		nodes := plant(4)
		down := int(downRaw % 3) // leave at least one node up
		for i := 0; i < down; i++ {
			nodes[i].Down = true
		}
		runs := make([]Run, len(worksRaw))
		for i, w := range worksRaw {
			runs[i] = Run{Name: string(rune('p' + i)), Work: float64(w), Deadline: 86400}
		}
		h := Heuristic(hRaw % 4)
		assign, err := Pack(nodes, runs, h)
		if err != nil {
			return false
		}
		if len(assign) != len(runs) {
			return false
		}
		for _, nodeName := range assign {
			n, ok := nodeByName(nodes, nodeName)
			if !ok || n.Down {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for equal-size runs, WFD never loads one node with two more
// runs than another (balance).
func TestPropertyWFDBalance(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		nodes := plant(4)
		runs := make([]Run, n)
		for i := range runs {
			runs[i] = Run{Name: string(rune('A' + i)), Work: 1000, Deadline: 86400}
		}
		assign, err := Pack(nodes, runs, WorstFitDecreasing)
		if err != nil {
			return false
		}
		counts := map[string]int{}
		for _, node := range assign {
			counts[node]++
		}
		minC, maxC := n, 0
		for _, node := range nodes {
			c := counts[node.Name]
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		return maxC-minC <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
