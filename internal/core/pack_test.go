package core

import (
	"testing"
	"testing/quick"
)

func plant(n int) []NodeInfo {
	nodes := make([]NodeInfo, n)
	for i := range nodes {
		nodes[i] = NodeInfo{Name: string(rune('a' + i)), CPUs: 2, Speed: 1.0}
	}
	return nodes
}

func mkRuns(works ...float64) []Run {
	runs := make([]Run, len(works))
	for i, w := range works {
		runs[i] = Run{Name: string(rune('p' + i)), Work: w, Deadline: 86400}
	}
	return runs
}

func TestStayPutHonorsPreviousNode(t *testing.T) {
	nodes := plant(3)
	runs := mkRuns(100, 100)
	runs[0].PrevNode = "c"
	runs[1].PrevNode = "b"
	assign, err := Pack(nodes, runs, StayPut)
	if err != nil {
		t.Fatal(err)
	}
	if assign[runs[0].Name] != "c" || assign[runs[1].Name] != "b" {
		t.Fatalf("assign = %v", assign)
	}
}

func TestStayPutFallsBackWhenPrevNodeGone(t *testing.T) {
	nodes := plant(2)
	nodes[1].Down = true
	runs := mkRuns(100)
	runs[0].PrevNode = "b" // down
	assign, err := Pack(nodes, runs, StayPut)
	if err != nil {
		t.Fatal(err)
	}
	if assign[runs[0].Name] != "a" {
		t.Fatalf("assign = %v", assign)
	}
}

func TestFFDSpreadsOverflow(t *testing.T) {
	// Two nodes, window capacity 2 CPUs × 86400 = 172800 each. Three runs
	// of 100k: FFD puts the first on a, second still fits a (wait: 200k >
	// 172800, does not fit) → b, third → a is full, b is full → least
	// loaded.
	nodes := plant(2)
	runs := mkRuns(100000, 100000, 100000)
	assign, err := Pack(nodes, runs, FirstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, n := range assign {
		counts[n]++
	}
	if counts["a"]+counts["b"] != 3 || counts["a"] == 0 || counts["b"] == 0 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestWFDBalancesLoad(t *testing.T) {
	nodes := plant(3)
	runs := mkRuns(300, 200, 100, 100, 100)
	assign, err := Pack(nodes, runs, WorstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]float64{}
	byName := map[string]Run{}
	for _, r := range runs {
		byName[r.Name] = r
		load[assign[r.Name]] += r.Work
	}
	// Perfect balance exists (300 | 200+100 | 100+100); WFD should land
	// within a modest spread.
	for _, l := range load {
		if l < 200 || l > 400 {
			t.Fatalf("unbalanced loads: %v", load)
		}
	}
}

func TestBFDTightensFit(t *testing.T) {
	// BFD places each run on the node with least remaining slack; with a
	// big run on node a, a second small run should co-locate on a only if
	// it still fits; here windows are tight so it goes where the fit is
	// tightest but feasible.
	nodes := plant(2)
	runs := []Run{
		{Name: "big", Work: 150000, Deadline: 86400},
		{Name: "small", Work: 10000, Deadline: 86400},
	}
	assign, err := Pack(nodes, runs, BestFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	// Node a after big: slack = 172800-150000-10000 = 12800; node b slack
	// = 172800-10000. BFD picks the tighter fit: a.
	if assign["small"] != assign["big"] {
		t.Fatalf("assign = %v, want co-located (tightest fit)", assign)
	}
}

func TestPackSkipsDownNodes(t *testing.T) {
	nodes := plant(3)
	nodes[0].Down = true
	runs := mkRuns(100, 100, 100, 100)
	for _, h := range []Heuristic{StayPut, FirstFitDecreasing, BestFitDecreasing, WorstFitDecreasing} {
		assign, err := Pack(nodes, runs, h)
		if err != nil {
			t.Fatal(err)
		}
		for run, node := range assign {
			if node == "a" {
				t.Fatalf("%v assigned %s to down node", h, run)
			}
		}
	}
}

func TestPackAllNodesDownFails(t *testing.T) {
	nodes := plant(1)
	nodes[0].Down = true
	if _, err := Pack(nodes, mkRuns(10), FirstFitDecreasing); err == nil {
		t.Fatal("packing onto a dead plant succeeded")
	}
}

func TestPackUnknownHeuristicFails(t *testing.T) {
	if _, err := Pack(plant(1), mkRuns(10), Heuristic(99)); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestPackInvalidInputFails(t *testing.T) {
	runs := mkRuns(10)
	runs[0].Work = -1
	if _, err := Pack(plant(1), runs, FirstFitDecreasing); err == nil {
		t.Fatal("invalid run accepted")
	}
}

func TestHeuristicStrings(t *testing.T) {
	for _, h := range []Heuristic{StayPut, FirstFitDecreasing, BestFitDecreasing, WorstFitDecreasing, Heuristic(9)} {
		if h.String() == "" {
			t.Fatal("empty heuristic name")
		}
	}
}

// A deadline-less run starting past the first production day (Start ≥
// 86400) must keep a positive packing window ("rest of the day it starts
// in"), not a negative one that fails every fit and silently falls back
// to the least-loaded node.
func TestSlackWindowLateStartFFD(t *testing.T) {
	// big lands on a; the late run's window is 86400-mod(90000,86400) =
	// 82800, so a has slack 2·82800-150000-10000 = 5600 ≥ 0 and first-fit
	// keeps it on a. The negative-window bug sent it to least-loaded b.
	nodes := plant(2)
	runs := []Run{
		{Name: "big", Work: 150000, Deadline: 86400},
		{Name: "late", Work: 10000, Start: 90000},
	}
	assign, err := Pack(nodes, runs, FirstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	if assign["big"] != "a" || assign["late"] != "a" {
		t.Fatalf("assign = %v, want both on a", assign)
	}
}

func TestSlackWindowLateStartBFD(t *testing.T) {
	// Same plant: a's slack 5600 beats b's 2·82800-10000 = 155600 for the
	// tightest fit; the bug's least-loaded fallback picked b.
	nodes := plant(2)
	runs := []Run{
		{Name: "big", Work: 150000, Deadline: 86400},
		{Name: "late", Work: 10000, Start: 90000},
	}
	assign, err := Pack(nodes, runs, BestFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	if assign["late"] != "a" {
		t.Fatalf("assign = %v, want late co-located on a (tightest fit)", assign)
	}
}

func TestSlackWindowLateStartWFD(t *testing.T) {
	// Unequal capacities make worst-fit and least-loaded disagree: r1→a,
	// r2→b, then the late run sees slack 3·82800-130000 = 118400 on a vs
	// 2·82800-70000 = 95600 on b → worst fit picks a. The bug's fallback
	// compared normalized loads (a: 40000, b: 30000) and picked b.
	nodes := []NodeInfo{
		{Name: "a", CPUs: 3, Speed: 1},
		{Name: "b", CPUs: 2, Speed: 1},
	}
	runs := []Run{
		{Name: "r1", Work: 120000, Deadline: 86400},
		{Name: "r2", Work: 60000, Deadline: 86400},
		{Name: "late", Work: 10000, Start: 90000},
	}
	assign, err := Pack(nodes, runs, WorstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	if assign["r1"] != "a" || assign["r2"] != "b" {
		t.Fatalf("setup assign = %v, want r1→a r2→b", assign)
	}
	if assign["late"] != "a" {
		t.Fatalf("assign = %v, want late on a (most slack)", assign)
	}
}

func TestLoadIndex(t *testing.T) {
	nodes := []NodeInfo{
		{Name: "c", CPUs: 2, Speed: 1},
		{Name: "a", CPUs: 2, Speed: 1},
		{Name: "dead", CPUs: 8, Speed: 1, Down: true},
		{Name: "b", CPUs: 4, Speed: 1},
	}
	ix := newLoadIndex(nodes)
	if _, ok := ix.node("dead"); ok {
		t.Fatal("down node indexed")
	}
	if n, ok := ix.least(); !ok || n.Name != "a" {
		t.Fatalf("least of zero loads = %v, want a (name tiebreak)", n.Name)
	}
	ix.add("dead", 100) // no-op
	ix.add("a", 100)    // a: 50/cpu, b: 0, c: 0
	if n, _ := ix.least(); n.Name != "b" {
		t.Fatalf("least = %v, want b", n.Name)
	}
	ix.add("b", 400) // a: 50, b: 100, c: 0
	if n, _ := ix.least(); n.Name != "c" {
		t.Fatalf("least = %v, want c", n.Name)
	}
	ix.add("c", 200) // a: 50, b: 100, c: 100 → tie b/c breaks by name
	if n, _ := ix.least(); n.Name != "a" {
		t.Fatalf("least = %v, want a", n.Name)
	}
	if ix.load("b") != 400 || ix.load("dead") != 0 || ix.load("nope") != 0 {
		t.Fatalf("loads: b=%v dead=%v", ix.load("b"), ix.load("dead"))
	}
	if n, ok := ix.node("c"); !ok || n.CPUs != 2 {
		t.Fatal("node lookup failed")
	}
	empty := newLoadIndex([]NodeInfo{{Name: "x", CPUs: 1, Speed: 1, Down: true}})
	if _, ok := empty.least(); ok {
		t.Fatal("least on empty index succeeded")
	}
}

// Property: every heuristic assigns every run to an up node.
func TestPropertyPackTotalAndValid(t *testing.T) {
	f := func(worksRaw []uint16, hRaw uint8, downRaw uint8) bool {
		if len(worksRaw) == 0 || len(worksRaw) > 12 {
			return true
		}
		nodes := plant(4)
		down := int(downRaw % 3) // leave at least one node up
		for i := 0; i < down; i++ {
			nodes[i].Down = true
		}
		runs := make([]Run, len(worksRaw))
		for i, w := range worksRaw {
			runs[i] = Run{Name: string(rune('p' + i)), Work: float64(w), Deadline: 86400}
		}
		h := Heuristic(hRaw % 4)
		assign, err := Pack(nodes, runs, h)
		if err != nil {
			return false
		}
		if len(assign) != len(runs) {
			return false
		}
		for _, nodeName := range assign {
			n, ok := nodeByName(nodes, nodeName)
			if !ok || n.Down {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for equal-size runs, WFD never loads one node with two more
// runs than another (balance).
func TestPropertyWFDBalance(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		nodes := plant(4)
		runs := make([]Run, n)
		for i := range runs {
			runs[i] = Run{Name: string(rune('A' + i)), Work: 1000, Deadline: 86400}
		}
		assign, err := Pack(nodes, runs, WorstFitDecreasing)
		if err != nil {
			return false
		}
		counts := map[string]int{}
		for _, node := range assign {
			counts[node]++
		}
		minC, maxC := n, 0
		for _, node := range nodes {
			c := counts[node.Name]
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		return maxC-minC <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
