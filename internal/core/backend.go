package core

import (
	"fmt"
	"sort"
	"strings"
)

// Script is the executable realization of one run's placement: the staging
// and launch commands the factory's existing scripts perform. When the
// user accepts an assignment in ForeMan, "the back end will automatically
// generate the needed scripts and commands" — and "can be tailored to any
// underlying scheduler or resource manager", hence the interface.
type Script struct {
	RunName  string
	Node     string
	Commands []string
}

// Backend turns an accepted schedule into scripts.
type Backend interface {
	Generate(s *Schedule) ([]Script, error)
}

// ShellBackend emits plain shell-style staging/launch/stage-out command
// lists against a shared repository path.
type ShellBackend struct {
	// Repository is the shared data repository runs stage from and to.
	Repository string
}

// Generate implements Backend.
func (b ShellBackend) Generate(s *Schedule) ([]Script, error) {
	if s == nil || s.Plan == nil {
		return nil, fmt.Errorf("core: Generate on nil schedule")
	}
	repo := b.Repository
	if repo == "" {
		repo = "/repository"
	}
	runs := append([]Run(nil), s.Plan.Runs...)
	sort.Slice(runs, func(i, j int) bool { return runs[i].Name < runs[j].Name })
	var out []Script
	for _, r := range runs {
		node, ok := s.Plan.Assign[r.Name]
		if !ok {
			return nil, fmt.Errorf("core: run %q has no assignment", r.Name)
		}
		dir := "/local/" + r.Name
		out = append(out, Script{
			RunName: r.Name,
			Node:    node,
			Commands: []string{
				fmt.Sprintf("ssh %s mkdir -p %s", node, dir),
				fmt.Sprintf("scp %s/inputs/%s/* %s:%s/", repo, r.Name, node, dir),
				fmt.Sprintf("ssh %s 'cd %s && at %s ./run_forecast.sh'", node, dir, clock(r.Start)),
				fmt.Sprintf("ssh %s 'cd %s && nohup rsync_incremental.sh %s/outgoing/%s &'", node, dir, repo, r.Name),
			},
		})
	}
	return out, nil
}

// clock renders seconds-after-midnight as HH:MM.
func clock(seconds float64) string {
	s := int(seconds)
	return fmt.Sprintf("%02d:%02d", (s/3600)%24, (s/60)%60)
}

// RenderScripts formats scripts for display.
func RenderScripts(scripts []Script) string {
	var b strings.Builder
	for _, s := range scripts {
		fmt.Fprintf(&b, "# %s on %s\n", s.RunName, s.Node)
		for _, c := range s.Commands {
			fmt.Fprintf(&b, "%s\n", c)
		}
	}
	return b.String()
}
