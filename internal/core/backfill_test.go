package core

import (
	"math"
	"strings"
	"testing"
)

func forecastSchedule(t *testing.T) *Schedule {
	t.Helper()
	nodes := []NodeInfo{
		{Name: "n1", CPUs: 2, Speed: 1},
		{Name: "n2", CPUs: 2, Speed: 1},
	}
	runs := []Run{
		{Name: "tillamook", Work: 40000, Start: 10800, Deadline: 86400, Priority: 8},
		{Name: "columbia", Work: 47000, Start: 7200, Deadline: 86400, Priority: 9},
	}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: WorstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBackfillFillsIdleCapacityWithoutLateness(t *testing.T) {
	s := forecastSchedule(t)
	placed, skipped, err := PlanBackfill(s, []BackfillJob{
		{Name: "hindcast-1999", Work: 60000, Priority: 2},
		{Name: "calibration-v2", Work: 30000, Priority: 5},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	if len(placed) != 2 {
		t.Fatalf("placed %d jobs", len(placed))
	}
	if !s.Feasible() {
		t.Fatalf("backfill made forecasts late: %v", s.Late())
	}
	// Higher-priority calibration run placed first.
	if placed[0].Job.Name != "calibration-v2" {
		t.Fatalf("placement order: %v first", placed[0].Job.Name)
	}
	// Placed jobs are visible in the plan for Gantt/what-if.
	if _, ok := s.Plan.Run("backfill:hindcast-1999"); !ok {
		t.Fatal("backfill run not in plan")
	}
}

func TestBackfillUsesSecondCPUImmediately(t *testing.T) {
	// Each 2-CPU node runs one serial forecast, so a backfill job can
	// start at t=0 on the idle CPU without slowing anything.
	s := forecastSchedule(t)
	placed, _, err := PlanBackfill(s, []BackfillJob{{Name: "h", Work: 20000}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 1 {
		t.Fatalf("placed = %v", placed)
	}
	if placed[0].Start != 0 {
		t.Fatalf("start = %v, want 0 (idle CPU available)", placed[0].Start)
	}
	if !almost(placed[0].Completion, 20000) {
		t.Fatalf("completion = %v, want 20000", placed[0].Completion)
	}
}

func TestBackfillDefersWhenImmediateWouldDelayForecasts(t *testing.T) {
	// Saturate both CPUs of the only node with forecasts that finish just
	// in time: immediate backfill would make them late, so the job starts
	// after they drain.
	nodes := []NodeInfo{{Name: "n1", CPUs: 2, Speed: 1}}
	runs := []Run{
		{Name: "f1", Work: 86000, Start: 0, Deadline: 86400, Priority: 9},
		{Name: "f2", Work: 86000, Start: 0, Deadline: 86400, Priority: 9},
	}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	placed, skipped, err := PlanBackfill(s, []BackfillJob{{Name: "h", Work: 10000}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(placed) != 1 {
		t.Fatalf("placed=%v skipped=%v", placed, skipped)
	}
	if placed[0].Start < 86000 {
		t.Fatalf("backfill started at %v, before forecasts drain at 86000", placed[0].Start)
	}
	if !s.Feasible() {
		t.Fatalf("forecasts late: %v", s.Late())
	}
}

func TestBackfillRespectsHorizon(t *testing.T) {
	s := forecastSchedule(t)
	_, skipped, err := PlanBackfill(s, []BackfillJob{
		{Name: "huge", Work: 500000},
	}, 86400)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0].Name != "huge" {
		t.Fatalf("skipped = %v; a week of work cannot fit in a day", skipped)
	}
}

func TestBackfillSkipsDownNodes(t *testing.T) {
	nodes := []NodeInfo{
		{Name: "n1", CPUs: 2, Speed: 1, Down: true},
		{Name: "n2", CPUs: 2, Speed: 1},
	}
	runs := []Run{{Name: "f", Work: 10000, Deadline: 86400}}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	placed, _, err := PlanBackfill(s, []BackfillJob{{Name: "h", Work: 1000}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 1 || placed[0].Node != "n2" {
		t.Fatalf("placed = %+v", placed)
	}
}

func TestBackfillErrors(t *testing.T) {
	if _, _, err := PlanBackfill(nil, nil, 0); err == nil {
		t.Fatal("nil schedule accepted")
	}
	s := forecastSchedule(t)
	if _, _, err := PlanBackfill(s, []BackfillJob{{Name: "bad", Work: -1}}, 0); err == nil {
		t.Fatal("negative work accepted")
	}
	if _, _, err := PlanBackfill(s, []BackfillJob{{Name: "dup", Work: 1}, {Name: "dup", Work: 1}}, 0); err == nil {
		t.Fatal("duplicate job accepted")
	}
}

func TestBackfillPredictionsConsistent(t *testing.T) {
	s := forecastSchedule(t)
	placed, _, err := PlanBackfill(s, []BackfillJob{{Name: "h", Work: 25000}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Prediction.Completion["backfill:h"]
	if math.Abs(got-placed[0].Completion) > 1e-9 {
		t.Fatalf("placement completion %v vs schedule prediction %v", placed[0].Completion, got)
	}
	if !strings.HasPrefix("backfill:h", "backfill:") {
		t.Fatal("unreachable")
	}
}
