package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestPredictParallelMegaJobAlone(t *testing.T) {
	plan := &Plan{
		Nodes:  []NodeInfo{{Name: "n", CPUs: 2, Speed: 1}},
		Runs:   []Run{{Name: "mega", Work: 1000, Width: 2}},
		Assign: map[string]string{"mega": "n"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pred.Completion["mega"], 500) {
		t.Fatalf("mega completes at %v, want 500 (2 CPUs)", pred.Completion["mega"])
	}
}

func TestPredictMegaJobWithSerialNeighbors(t *testing.T) {
	// 2 CPUs: serial (work 100) + mega width 2 (work 300). Max-min: both
	// rate 1 until serial done at 100; mega then rate 2 for remaining 200
	// → done at 200.
	plan := &Plan{
		Nodes: []NodeInfo{{Name: "n", CPUs: 2, Speed: 1}},
		Runs: []Run{
			{Name: "serial", Work: 100},
			{Name: "mega", Work: 300, Width: 2},
		},
		Assign: map[string]string{"serial": "n", "mega": "n"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pred.Completion["serial"], 100) || !almost(pred.Completion["mega"], 200) {
		t.Fatalf("completions = %v", pred.Completion)
	}
}

func TestPredictWidthClampedToCPUs(t *testing.T) {
	plan := &Plan{
		Nodes:  []NodeInfo{{Name: "n", CPUs: 2, Speed: 1}},
		Runs:   []Run{{Name: "wide", Work: 1000, Width: 16}},
		Assign: map[string]string{"wide": "n"},
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pred.Completion["wide"], 500) {
		t.Fatalf("completion = %v, want 500 (clamped to 2 CPUs)", pred.Completion["wide"])
	}
}

func TestValidateRejectsNegativeWidth(t *testing.T) {
	plan := &Plan{
		Nodes:  []NodeInfo{{Name: "n", CPUs: 2, Speed: 1}},
		Runs:   []Run{{Name: "r", Work: 10, Width: -1}},
		Assign: map[string]string{"r": "n"},
	}
	if err := plan.Validate(); err == nil {
		t.Fatal("negative width accepted")
	}
}

// Property: the predictor matches the simulator across a multi-node
// plant with heterogeneous speeds and staggered starts.
func TestPropertyPredictorMatchesSimulatorMultiNode(t *testing.T) {
	f := func(worksRaw []uint16, startsRaw []uint8, nodesRaw uint8) bool {
		n := len(worksRaw)
		if n == 0 || n > 10 || len(startsRaw) < n {
			return true
		}
		nNodes := int(nodesRaw%3) + 1
		nodes := make([]NodeInfo, nNodes)
		for i := range nodes {
			nodes[i] = NodeInfo{
				Name:  string(rune('A' + i)),
				CPUs:  1 + i%2,
				Speed: 0.5 + float64(i)*0.5,
			}
		}
		runs := make([]Run, n)
		assign := make(map[string]string, n)
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			runs[i] = Run{
				Name:  name,
				Work:  float64(worksRaw[i]%8000) + 1,
				Start: float64(startsRaw[i]) * 53,
			}
			assign[name] = nodes[i%nNodes].Name
		}
		plan := &Plan{Nodes: nodes, Runs: runs, Assign: assign}
		pred, err := plan.Predict()
		if err != nil {
			return false
		}

		eng := sim.NewEngine()
		cl := cluster.New(eng)
		for _, node := range nodes {
			cl.AddNode(node.Name, node.CPUs, node.Speed)
		}
		simDone := make(map[string]float64, n)
		for _, r := range runs {
			r := r
			node := cl.Node(assign[r.Name])
			eng.At(r.Start, func() {
				node.Submit(r.Name, r.Work, func() { simDone[r.Name] = eng.Now() })
			})
		}
		eng.Run()

		for _, r := range runs {
			a, b := pred.Completion[r.Name], simDone[r.Name]
			if math.Abs(a-b) > 1e-6*math.Max(1, b) {
				t.Logf("run %s: predictor %v vs simulator %v", r.Name, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with mega-jobs in the mix, the analytic predictor still
// matches the discrete-event simulator's water-filling.
func TestPropertyPredictorMatchesSimulatorWithWidths(t *testing.T) {
	f := func(worksRaw []uint16, widthsRaw []uint8, cpusRaw uint8) bool {
		n := len(worksRaw)
		if n == 0 || n > 6 || len(widthsRaw) < n {
			return true
		}
		cpus := int(cpusRaw%4) + 1
		node := NodeInfo{Name: "n", CPUs: cpus, Speed: 1}

		runs := make([]Run, n)
		assign := make(map[string]string, n)
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			runs[i] = Run{
				Name:  name,
				Work:  float64(worksRaw[i]%5000) + 1,
				Width: int(widthsRaw[i]%3) + 1,
			}
			assign[name] = "n"
		}
		plan := &Plan{Nodes: []NodeInfo{node}, Runs: runs, Assign: assign}
		pred, err := plan.Predict()
		if err != nil {
			return false
		}

		eng := sim.NewEngine()
		cl := cluster.New(eng)
		cn := cl.AddNode("n", cpus, 1)
		simDone := make(map[string]float64, n)
		for _, r := range runs {
			r := r
			cn.SubmitParallel(r.Name, r.Work, r.Width, func() { simDone[r.Name] = eng.Now() })
		}
		eng.Run()

		for _, r := range runs {
			a, b := pred.Completion[r.Name], simDone[r.Name]
			if math.Abs(a-b) > 1e-6*math.Max(1, b) {
				t.Logf("run %s (width %d): predictor %v vs simulator %v", r.Name, r.Width, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
