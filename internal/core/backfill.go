package core

import (
	"fmt"
	"math"
	"sort"
)

// BackfillJob is a calibration run or hindcast (§2 of the paper: "the
// system includes daily forecasts ... as well as calibration runs and
// hindcasts that are run retroactively for a fixed period of time").
// Unlike forecasts these are not perishable; they soak idle capacity but
// must never delay a forecast past its deadline.
type BackfillJob struct {
	Name     string
	Work     float64 // reference CPU-seconds
	Priority int     // higher backfills first
}

// BackfillPlacement records where and when a backfill job was scheduled.
type BackfillPlacement struct {
	Job        BackfillJob
	Node       string
	Start      float64
	Completion float64 // predicted
}

// PlanBackfill extends a forecast schedule with hindcast/calibration work
// without making any forecast late: each job is placed, highest priority
// first, on the node and start time yielding the earliest predicted
// completion among placements that keep every deadline in the schedule
// intact and finish within the horizon (seconds after midnight; <= 0
// means one week). Jobs that fit nowhere are returned in skipped.
//
// The schedule is modified in place: placed jobs appear as runs named
// "backfill:<name>" with priority as given, so the Gantt view and later
// what-ifs see them.
func PlanBackfill(s *Schedule, jobs []BackfillJob, horizon float64) (placed []BackfillPlacement, skipped []BackfillJob, err error) {
	if s == nil || s.Plan == nil {
		return nil, nil, fmt.Errorf("core: PlanBackfill on nil schedule")
	}
	if horizon <= 0 {
		horizon = 7 * 86400
	}
	ordered := append([]BackfillJob(nil), jobs...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Priority != ordered[j].Priority {
			return ordered[i].Priority > ordered[j].Priority
		}
		return ordered[i].Name < ordered[j].Name
	})

	for _, job := range ordered {
		if job.Work < 0 {
			return nil, nil, fmt.Errorf("core: backfill job %q has negative work", job.Name)
		}
		runName := "backfill:" + job.Name
		if _, exists := s.Plan.Run(runName); exists {
			return nil, nil, fmt.Errorf("core: backfill job %q already planned", job.Name)
		}

		type option struct {
			node       string
			start      float64
			completion float64
		}
		var best *option
		for _, node := range s.Plan.Nodes {
			if node.Down {
				continue
			}
			// Candidate starts: immediately, or when the node's existing
			// work is predicted to drain (idle capacity).
			starts := []float64{0}
			drain := 0.0
			for _, r := range s.Plan.runsOn(node.Name) {
				if c := s.Prediction.Completion[r.Name]; c > drain && !math.IsInf(c, 1) {
					drain = c
				}
			}
			if drain > 0 {
				starts = append(starts, drain)
			}
			for _, start := range starts {
				trial := s.Plan.Clone()
				trial.Runs = append(trial.Runs, Run{
					Name:     runName,
					Work:     job.Work,
					Start:    start,
					Priority: job.Priority,
				})
				trial.Assign[runName] = node.Name
				pred, err := trial.Predict()
				if err != nil {
					return nil, nil, err
				}
				if !pred.Feasible(trial) {
					continue
				}
				c := pred.Completion[runName]
				if c > horizon {
					continue
				}
				if best == nil || c < best.completion ||
					(c == best.completion && node.Name < best.node) {
					best = &option{node: node.Name, start: start, completion: c}
				}
			}
		}
		if best == nil {
			skipped = append(skipped, job)
			continue
		}
		s.Plan.Runs = append(s.Plan.Runs, Run{
			Name:     runName,
			Work:     job.Work,
			Start:    best.start,
			Priority: job.Priority,
		})
		s.Plan.Assign[runName] = best.node
		if err := s.repredict(); err != nil {
			return nil, nil, err
		}
		placed = append(placed, BackfillPlacement{
			Job:        job,
			Node:       best.node,
			Start:      best.start,
			Completion: s.Prediction.Completion[runName],
		})
	}
	return placed, skipped, nil
}
