package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sameCompletion reports bit-for-bit equality of two completion maps
// (+Inf compares equal to +Inf; no tolerance anywhere else).
func sameCompletion(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

// predictionMatchesFullSweep checks the incremental engine's equivalence
// guarantee: with no pending dirty nodes, Schedule.Prediction must equal a
// from-scratch full sweep of the current plan exactly.
func predictionMatchesFullSweep(t *testing.T, s *Schedule) bool {
	t.Helper()
	full, err := s.Plan.Predict()
	if err != nil {
		t.Logf("full predict failed: %v", err)
		return false
	}
	if !sameCompletion(s.Prediction.Completion, full.Completion) {
		t.Logf("incremental %v != full %v", s.Prediction.Completion, full.Completion)
		return false
	}
	return true
}

func randomPlant(rng *rand.Rand) ([]NodeInfo, []Run) {
	nodes := make([]NodeInfo, 2+rng.Intn(4))
	for i := range nodes {
		nodes[i] = NodeInfo{
			Name:  fmt.Sprintf("n%02d", i),
			CPUs:  1 + rng.Intn(4),
			Speed: 0.5 + rng.Float64(),
		}
	}
	runs := make([]Run, 1+rng.Intn(12))
	for i := range runs {
		r := Run{
			Name:     fmt.Sprintf("r%02d", i),
			Work:     float64(1 + rng.Intn(200000)),
			Start:    float64(rng.Intn(40000)),
			Priority: rng.Intn(5),
		}
		if rng.Intn(3) > 0 {
			r.Deadline = r.Start + float64(10000+rng.Intn(150000))
		}
		if rng.Intn(4) == 0 {
			r.Width = 1 + rng.Intn(3)
		}
		runs[i] = r
	}
	return nodes, runs
}

// Property: after BuildSchedule and an arbitrary sequence of incremental
// edits (moves, delays, node failures under either policy), the engine's
// patched prediction is identical to a full re-sweep — and the incremental
// drop loop picks the same victims and predictions as the full-repredict
// baseline.
func TestPropertyIncrementalMatchesFullSweep(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		nodes, runs := randomPlant(rng)
		h := Heuristic(rng.Intn(4))
		allowDrop := rng.Intn(2) == 0
		s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: h, AllowDrop: allowDrop})
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		if !predictionMatchesFullSweep(t, s) {
			return false
		}
		ref, err := BuildSchedule(nodes, runs, ScheduleOptions{
			Heuristic: h, AllowDrop: allowDrop, fullRepredict: true,
		})
		if err != nil {
			return false
		}
		if !sameCompletion(s.Prediction.Completion, ref.Prediction.Completion) ||
			!reflect.DeepEqual(s.Dropped, ref.Dropped) {
			t.Logf("seed %d: drop loop diverged from full-repredict baseline", seed)
			return false
		}

		var ancestors []*Schedule
		for op := 0; op < 8; op++ {
			switch rng.Intn(3) {
			case 0: // what-if move (possibly to a down node)
				if len(s.Plan.Runs) == 0 {
					continue
				}
				r := s.Plan.Runs[rng.Intn(len(s.Plan.Runs))]
				n := s.Plan.Nodes[rng.Intn(len(s.Plan.Nodes))]
				if err := s.Move(r.Name, n.Name); err != nil {
					t.Logf("seed %d: move: %v", seed, err)
					return false
				}
			case 1: // delay within the run's window
				if len(s.Plan.Runs) == 0 {
					continue
				}
				r := s.Plan.Runs[rng.Intn(len(s.Plan.Runs))]
				limit := r.Deadline
				if limit <= 0 {
					limit = 200000
				}
				if err := s.Delay(r.Name, rng.Float64()*limit); err != nil {
					t.Logf("seed %d: delay: %v", seed, err)
					return false
				}
			case 2: // node failure, both policies
				var up []string
				for _, n := range s.Plan.Nodes {
					if !n.Down {
						up = append(up, n.Name)
					}
				}
				if len(up) <= 1 {
					continue
				}
				pol := MinimalMove
				if rng.Intn(2) == 0 {
					pol = FullReshuffle
				}
				out, err := RescheduleAfterFailure(s, up[rng.Intn(len(up))], pol, h)
				if err != nil {
					t.Logf("seed %d: reschedule: %v", seed, err)
					return false
				}
				ancestors = append(ancestors, s)
				s = out
			}
			if !predictionMatchesFullSweep(t, s) {
				t.Logf("seed %d: diverged after op %d", seed, op)
				return false
			}
		}
		// Editing a derived schedule must never disturb its ancestors
		// (adopt shares sweep maps; they are replaced, not mutated).
		for _, old := range ancestors {
			if !predictionMatchesFullSweep(t, old) {
				t.Logf("seed %d: ancestor corrupted by descendant edits", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The parallel full-plan sweep must produce exactly what per-node serial
// sweeps produce. With 8 nodes × 240 runs this crosses the
// parallelSweepMinRuns threshold, so under -race it also exercises the
// worker pool for data races.
func TestParallelSweepMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nodes := plant(8)
	runs := make([]Run, 240)
	for i := range runs {
		runs[i] = Run{
			Name:  fmt.Sprintf("r%03d", i),
			Work:  float64(1000 + rng.Intn(50000)),
			Start: float64(rng.Intn(20000)),
		}
	}
	assign, err := Pack(nodes, runs, WorstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Nodes: nodes, Runs: runs, Assign: assign}
	got, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]float64, len(runs))
	for _, n := range nodes {
		byNode := make([]Run, 0, len(runs))
		for _, r := range runs {
			if assign[r.Name] == n.Name {
				byNode = append(byNode, r)
			}
		}
		for name, c := range predictNode(n, byNode) {
			want[name] = c
		}
	}
	if !sameCompletion(got.Completion, want) {
		t.Fatal("parallel sweep diverged from serial per-node sweeps")
	}
}

// BuildSchedule must clone its inputs: the drop loop's in-place shifting
// and Delay's element mutation may not corrupt the caller's slices.
func TestBuildScheduleClonesInputs(t *testing.T) {
	nodes := []NodeInfo{{Name: "n1", CPUs: 1, Speed: 1}}
	runs := []Run{
		{Name: "a", Work: 86400, Deadline: 86400, Priority: 3},
		{Name: "b", Work: 86400, Deadline: 86400, Priority: 2},
		{Name: "c", Work: 86400, Deadline: 86400, Priority: 1},
		{Name: "d", Work: 10000, Start: 100, Deadline: 86400, Priority: 5},
	}
	nodesOrig := append([]NodeInfo(nil), nodes...)
	runsOrig := append([]Run(nil), runs...)
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing, AllowDrop: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dropped) == 0 {
		t.Fatal("scenario did not exercise the drop loop")
	}
	if err := s.Delay("d", 5000); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runs, runsOrig) {
		t.Fatalf("caller's runs slice corrupted:\n got %+v\nwant %+v", runs, runsOrig)
	}
	if !reflect.DeepEqual(nodes, nodesOrig) {
		t.Fatalf("caller's nodes slice corrupted:\n got %+v\nwant %+v", nodes, nodesOrig)
	}
}

// dropCandidate's total order: lowest priority first, then largest work,
// then name — on both the incremental-engine path and the legacy scan.
func TestDropCandidateTieBreaking(t *testing.T) {
	nodes := []NodeInfo{{Name: "n1", CPUs: 1, Speed: 1}}
	runs := []Run{
		{Name: "z", Work: 60000, Deadline: 86400, Priority: 1},
		{Name: "y", Work: 60000, Deadline: 86400, Priority: 1},
		{Name: "x", Work: 70000, Deadline: 86400, Priority: 1},
		{Name: "w", Work: 90000, Deadline: 86400, Priority: 2},
	}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	victim, ok := s.dropCandidate()
	if !ok || victim != "x" {
		t.Fatalf("engine path victim = %q, %v; want x (priority 1, largest work)", victim, ok)
	}
	s.pred = nil // force the legacy whole-plan scan
	victim, ok = s.dropCandidate()
	if !ok || victim != "x" {
		t.Fatalf("legacy path victim = %q, %v; want x", victim, ok)
	}
	// Remove x: y and z tie on priority and work; name breaks the tie.
	runs2 := runs[:3]
	runs2[2] = runs[3]
	s, err = BuildSchedule(nodes, runs2, ScheduleOptions{Heuristic: FirstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	victim, ok = s.dropCandidate()
	if !ok || victim != "y" {
		t.Fatalf("victim = %q, %v; want y (name tiebreak)", victim, ok)
	}
}

// A failure with no surviving up node must surface an error from both
// policies, never panic.
func TestRescheduleNoSurvivingNode(t *testing.T) {
	nodes := plant(2)
	nodes[1].Down = true
	runs := mkRuns(1000, 2000)
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RescheduleAfterFailure(s, "a", MinimalMove, FirstFitDecreasing); err == nil {
		t.Fatal("MinimalMove with no survivors succeeded")
	}
	if _, err := RescheduleAfterFailure(s, "a", FullReshuffle, FirstFitDecreasing); err == nil {
		t.Fatal("FullReshuffle with no survivors succeeded")
	}
}

// Delaying a run past its deadline is rejected up front and leaves the
// schedule untouched.
func TestDelayPastDeadlineRejected(t *testing.T) {
	nodes := plant(1)
	runs := []Run{{Name: "a", Work: 10000, Start: 3600, Deadline: 50000}}
	s, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delay("a", 60000); err == nil {
		t.Fatal("delay past deadline accepted")
	}
	if s.Plan.Runs[0].Start != 3600 {
		t.Fatalf("rejected delay mutated Start to %v", s.Plan.Runs[0].Start)
	}
	if !predictionMatchesFullSweep(t, s) {
		t.Fatal("rejected delay corrupted the prediction")
	}
}

// MovedRuns counts newly assigned and newly unassigned runs as moves
// to/from the empty node, not just node-to-node reassignments.
func TestMovedRunsCountsAssignmentChurn(t *testing.T) {
	before := &Schedule{Plan: &Plan{Assign: map[string]string{
		"a": "n1", "b": "n2", "c": "n1",
	}}}
	after := &Schedule{Plan: &Plan{Assign: map[string]string{
		"a": "n2", // reassigned
		"c": "n1", // unchanged
		"d": "n3", // newly assigned
		// b: newly unassigned
	}}}
	got := MovedRuns(before, after)
	want := []string{"a", "b", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MovedRuns = %v, want %v", got, want)
	}
	// The disruption metric is symmetric in which runs moved.
	rev := MovedRuns(after, before)
	if !reflect.DeepEqual(rev, want) {
		t.Fatalf("MovedRuns reversed = %v, want %v", rev, want)
	}
}
