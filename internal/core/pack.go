package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/telemetry"
)

// Heuristic selects a node-assignment strategy. The paper's ForeMan
// approximates optimal assignment with bin-packing heuristics [Coffman,
// Garey & Johnson]; StayPut is its default behaviour of keeping each
// forecast where it ran the previous day.
type Heuristic int

// Assignment heuristics.
const (
	// StayPut assigns each run to its PrevNode when that node exists and
	// is up, falling back to the least-loaded node.
	StayPut Heuristic = iota
	// FirstFitDecreasing places runs in decreasing work order on the
	// first node (name order) with enough slack in the run's window.
	FirstFitDecreasing
	// BestFitDecreasing places runs in decreasing work order on the
	// feasible node with the least remaining slack (tightest fit).
	BestFitDecreasing
	// WorstFitDecreasing places runs in decreasing work order on the node
	// with the most remaining slack (best balance).
	WorstFitDecreasing
)

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case StayPut:
		return "stay-put"
	case FirstFitDecreasing:
		return "first-fit-decreasing"
	case BestFitDecreasing:
		return "best-fit-decreasing"
	case WorstFitDecreasing:
		return "worst-fit-decreasing"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// loadIndex tracks normalized node loads (reference CPU-seconds over
// capacity) in a binary min-heap keyed by (load, name), replacing the
// planner's O(nodes) least-loaded scans with O(1) peeks and O(log nodes)
// updates. Only up nodes are indexed; charging load to an unindexed node
// is a no-op. Ties break by node name — the same node the old strict-less
// scan over name-sorted nodes picked.
type loadIndex struct {
	entries []loadEntry
	pos     map[string]int // node name → heap position
}

type loadEntry struct {
	node NodeInfo
	load float64 // reference CPU-seconds charged so far
	norm float64 // load / capacity
}

// newLoadIndex indexes the up nodes with zero initial load.
func newLoadIndex(nodes []NodeInfo) *loadIndex {
	ix := &loadIndex{pos: make(map[string]int, len(nodes))}
	for _, n := range nodes {
		if n.Down {
			continue
		}
		ix.pos[n.Name] = len(ix.entries)
		ix.entries = append(ix.entries, loadEntry{node: n})
	}
	for i := len(ix.entries)/2 - 1; i >= 0; i-- {
		ix.siftDown(i)
	}
	return ix
}

func (ix *loadIndex) lessAt(i, j int) bool {
	a, b := &ix.entries[i], &ix.entries[j]
	if a.norm != b.norm {
		return a.norm < b.norm
	}
	return a.node.Name < b.node.Name
}

func (ix *loadIndex) swapAt(i, j int) {
	ix.entries[i], ix.entries[j] = ix.entries[j], ix.entries[i]
	ix.pos[ix.entries[i].node.Name] = i
	ix.pos[ix.entries[j].node.Name] = j
}

func (ix *loadIndex) siftDown(i int) {
	for {
		smallest := i
		if l := 2*i + 1; l < len(ix.entries) && ix.lessAt(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < len(ix.entries) && ix.lessAt(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		ix.swapAt(i, smallest)
		i = smallest
	}
}

// add charges work reference CPU-seconds to a node. Loads only grow, so
// the entry can only sink in the heap.
func (ix *loadIndex) add(name string, work float64) {
	i, ok := ix.pos[name]
	if !ok {
		return
	}
	e := &ix.entries[i]
	e.load += work
	e.norm = e.load / e.node.Capacity()
	ix.siftDown(i)
}

// least returns the node with the smallest normalized load (name
// tiebreak), or false when no up node is indexed.
func (ix *loadIndex) least() (NodeInfo, bool) {
	if len(ix.entries) == 0 {
		return NodeInfo{}, false
	}
	return ix.entries[0].node, true
}

// load returns a node's accumulated reference CPU-seconds.
func (ix *loadIndex) load(name string) float64 {
	if i, ok := ix.pos[name]; ok {
		return ix.entries[i].load
	}
	return 0
}

// node looks up an indexed (up) node by name.
func (ix *loadIndex) node(name string) (NodeInfo, bool) {
	if i, ok := ix.pos[name]; ok {
		return ix.entries[i].node, true
	}
	return NodeInfo{}, false
}

// Pack assigns every run to a node using the heuristic. The load model
// used for packing is capacity-seconds: a run contributes Work, a node
// offers Capacity() × window. Deadline feasibility of the resulting plan
// is the predictor's job — callers should Predict and, if needed, repair
// with delay/drop policies.
func Pack(nodes []NodeInfo, runs []Run, h Heuristic) (map[string]string, error) {
	iters := 0
	if t := plannerTelemetry(); t != nil {
		reg := t.Registry()
		reg.Describe("core_planner_invocations_total", "Planner passes executed, by pass and heuristic.")
		reg.Describe("core_pack_iterations_total", "Bin-packing fit evaluations across all Pack calls.")
		reg.Counter("core_planner_invocations_total",
			telemetry.Labels{"pass": "pack", "heuristic": h.String()}).Inc()
		span := t.Trace().Begin("planner", "pack:"+h.String(), "planner", nil)
		defer func() {
			reg.Counter("core_pack_iterations_total", nil).Add(float64(iters))
			span.SetArg("iterations", strconv.Itoa(iters))
			span.SetArg("runs", strconv.Itoa(len(runs)))
			span.EndSpan()
		}()
	}
	plan := &Plan{Nodes: nodes, Runs: runs, Assign: map[string]string{}}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	ix := newLoadIndex(nodes)
	up := make([]NodeInfo, 0, len(ix.entries))
	for _, n := range nodes {
		if !n.Down {
			up = append(up, n)
		}
	}
	if len(up) == 0 {
		return nil, fmt.Errorf("core: no nodes available for packing")
	}
	sort.Slice(up, func(i, j int) bool { return up[i].Name < up[j].Name })

	assign := make(map[string]string, len(runs))

	place := func(r Run, node NodeInfo) {
		assign[r.Name] = node.Name
		ix.add(node.Name, r.Work)
	}
	leastLoaded := func() NodeInfo {
		iters++
		n, _ := ix.least()
		return n
	}
	// slack is the remaining capacity-seconds of a node within the run's
	// window after placing the run; negative means the window is
	// over-committed.
	slack := func(r Run, n NodeInfo) float64 {
		iters++
		window := r.Deadline - r.Start
		if r.Deadline <= 0 {
			// No deadline: pack against the rest of the production day
			// the run starts in. The modulus keeps the window positive
			// for runs starting past the first day (Start ≥ 86400),
			// which would otherwise fail every fit and silently fall
			// through to the least-loaded node.
			window = 86400 - math.Mod(r.Start, 86400)
		}
		return n.Capacity()*window - (ix.load(n.Name) + r.Work)
	}

	switch h {
	case StayPut:
		for _, r := range runs {
			if prev, ok := ix.node(r.PrevNode); ok {
				place(r, prev)
				continue
			}
			place(r, leastLoaded())
		}
		return assign, nil

	case FirstFitDecreasing, BestFitDecreasing, WorstFitDecreasing:
		ordered := append([]Run(nil), runs...)
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].Work != ordered[j].Work {
				return ordered[i].Work > ordered[j].Work
			}
			return ordered[i].Name < ordered[j].Name
		})
		for _, r := range ordered {
			var chosen *NodeInfo
			switch h {
			case FirstFitDecreasing:
				for i := range up {
					if slack(r, up[i]) >= 0 {
						chosen = &up[i]
						break
					}
				}
			case BestFitDecreasing:
				bestSlack := 0.0
				for i := range up {
					s := slack(r, up[i])
					if s >= 0 && (chosen == nil || s < bestSlack) {
						chosen = &up[i]
						bestSlack = s
					}
				}
			case WorstFitDecreasing:
				bestSlack := 0.0
				for i := range up {
					s := slack(r, up[i])
					if s >= 0 && (chosen == nil || s > bestSlack) {
						chosen = &up[i]
						bestSlack = s
					}
				}
			}
			if chosen == nil {
				// Nothing fits in the window: overload the least-loaded
				// node and let the deadline policy sort it out.
				n := leastLoaded()
				chosen = &n
			}
			place(r, *chosen)
		}
		return assign, nil

	default:
		return nil, fmt.Errorf("core: unknown heuristic %v", h)
	}
}

func nodeByName(nodes []NodeInfo, name string) (NodeInfo, bool) {
	for _, n := range nodes {
		if n.Name == name {
			return n, true
		}
	}
	return NodeInfo{}, false
}
