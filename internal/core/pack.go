package core

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/telemetry"
)

// Heuristic selects a node-assignment strategy. The paper's ForeMan
// approximates optimal assignment with bin-packing heuristics [Coffman,
// Garey & Johnson]; StayPut is its default behaviour of keeping each
// forecast where it ran the previous day.
type Heuristic int

// Assignment heuristics.
const (
	// StayPut assigns each run to its PrevNode when that node exists and
	// is up, falling back to the least-loaded node.
	StayPut Heuristic = iota
	// FirstFitDecreasing places runs in decreasing work order on the
	// first node (name order) with enough slack in the run's window.
	FirstFitDecreasing
	// BestFitDecreasing places runs in decreasing work order on the
	// feasible node with the least remaining slack (tightest fit).
	BestFitDecreasing
	// WorstFitDecreasing places runs in decreasing work order on the node
	// with the most remaining slack (best balance).
	WorstFitDecreasing
)

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case StayPut:
		return "stay-put"
	case FirstFitDecreasing:
		return "first-fit-decreasing"
	case BestFitDecreasing:
		return "best-fit-decreasing"
	case WorstFitDecreasing:
		return "worst-fit-decreasing"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Pack assigns every run to a node using the heuristic. The load model
// used for packing is capacity-seconds: a run contributes Work, a node
// offers Capacity() × window. Deadline feasibility of the resulting plan
// is the predictor's job — callers should Predict and, if needed, repair
// with delay/drop policies.
func Pack(nodes []NodeInfo, runs []Run, h Heuristic) (map[string]string, error) {
	iters := 0
	if t := plannerTelemetry(); t != nil {
		reg := t.Registry()
		reg.Describe("core_planner_invocations_total", "Planner passes executed, by pass and heuristic.")
		reg.Describe("core_pack_iterations_total", "Bin-packing fit evaluations across all Pack calls.")
		reg.Counter("core_planner_invocations_total",
			telemetry.Labels{"pass": "pack", "heuristic": h.String()}).Inc()
		span := t.Trace().Begin("planner", "pack:"+h.String(), "planner", nil)
		defer func() {
			reg.Counter("core_pack_iterations_total", nil).Add(float64(iters))
			span.SetArg("iterations", strconv.Itoa(iters))
			span.SetArg("runs", strconv.Itoa(len(runs)))
			span.EndSpan()
		}()
	}
	plan := &Plan{Nodes: nodes, Runs: runs, Assign: map[string]string{}}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	up := make([]NodeInfo, 0, len(nodes))
	for _, n := range nodes {
		if !n.Down {
			up = append(up, n)
		}
	}
	if len(up) == 0 {
		return nil, fmt.Errorf("core: no nodes available for packing")
	}
	sort.Slice(up, func(i, j int) bool { return up[i].Name < up[j].Name })

	load := make(map[string]float64, len(up)) // reference CPU-seconds
	assign := make(map[string]string, len(runs))

	place := func(r Run, node NodeInfo) {
		assign[r.Name] = node.Name
		load[node.Name] += r.Work
	}
	leastLoaded := func() NodeInfo {
		iters += len(up)
		best := up[0]
		bestLoad := load[best.Name] / best.Capacity()
		for _, n := range up[1:] {
			if l := load[n.Name] / n.Capacity(); l < bestLoad {
				best, bestLoad = n, l
			}
		}
		return best
	}
	// slack is the remaining capacity-seconds of a node within the run's
	// window after placing the run; negative means the window is
	// over-committed.
	slack := func(r Run, n NodeInfo) float64 {
		iters++
		window := r.Deadline - r.Start
		if r.Deadline <= 0 {
			window = 86400 - r.Start
		}
		return n.Capacity()*window - (load[n.Name] + r.Work)
	}

	switch h {
	case StayPut:
		for _, r := range runs {
			if prev, ok := nodeByName(up, r.PrevNode); ok {
				place(r, prev)
				continue
			}
			place(r, leastLoaded())
		}
		return assign, nil

	case FirstFitDecreasing, BestFitDecreasing, WorstFitDecreasing:
		ordered := append([]Run(nil), runs...)
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].Work != ordered[j].Work {
				return ordered[i].Work > ordered[j].Work
			}
			return ordered[i].Name < ordered[j].Name
		})
		for _, r := range ordered {
			var chosen *NodeInfo
			switch h {
			case FirstFitDecreasing:
				for i := range up {
					if slack(r, up[i]) >= 0 {
						chosen = &up[i]
						break
					}
				}
			case BestFitDecreasing:
				bestSlack := 0.0
				for i := range up {
					s := slack(r, up[i])
					if s >= 0 && (chosen == nil || s < bestSlack) {
						chosen = &up[i]
						bestSlack = s
					}
				}
			case WorstFitDecreasing:
				bestSlack := 0.0
				for i := range up {
					s := slack(r, up[i])
					if s >= 0 && (chosen == nil || s > bestSlack) {
						chosen = &up[i]
						bestSlack = s
					}
				}
			}
			if chosen == nil {
				// Nothing fits in the window: overload the least-loaded
				// node and let the deadline policy sort it out.
				n := leastLoaded()
				chosen = &n
			}
			place(r, *chosen)
		}
		return assign, nil

	default:
		return nil, fmt.Errorf("core: unknown heuristic %v", h)
	}
}

func nodeByName(nodes []NodeInfo, name string) (NodeInfo, bool) {
	for _, n := range nodes {
		if n.Name == name {
			return n, true
		}
	}
	return NodeInfo{}, false
}
