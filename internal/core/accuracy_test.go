package core

import (
	"math"
	"testing"

	"repro/internal/logs"
	"repro/internal/telemetry"
)

// accRecord is histRecord (estimate_test.go) with the mesh/timestep/code
// parameters held fixed, so only walltime and placement vary.
func accRecord(forecast string, day int, wall float64, node string) *logs.RunRecord {
	return histRecord(forecast, day, wall, node, 5760, 30000, 1)
}

func TestEvaluateEstimatesReplaysHistory(t *testing.T) {
	nodes := []NodeInfo{{Name: "n1", CPUs: 2, Speed: 1}, {Name: "n2", CPUs: 2, Speed: 0.5}}
	records := []*logs.RunRecord{
		// f stays on n1 with identical parameters: days 2 and 3 estimate
		// exactly from the preceding day.
		accRecord("f", 1, 40000, "n1"),
		accRecord("f", 2, 40000, "n1"),
		// Day 3 moved to the half-speed node, so the actual doubles; the
		// estimator knows the speeds and still predicts it exactly.
		accRecord("f", 3, 80000, "n2"),
		// Day 4 back on n1, but 10% slower than history predicts.
		accRecord("f", 4, 44000, "n1"),
		// A single-record forecast yields no replayable sample.
		accRecord("lonely", 1, 1000, "n1"),
	}
	acc := EvaluateEstimates(records, nodes)
	if len(acc.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(acc.Samples))
	}
	for i, wantErr := range []float64{0, 0, 100.0 / 11.0} {
		s := acc.Samples[i]
		if math.Abs(s.AbsPctError()-wantErr) > 1e-9 {
			t.Fatalf("sample %d (day %d): error %.4f%%, want %.4f%%", i, s.Day, s.AbsPctError(), wantErr)
		}
	}
	wantMAPE := (100.0 / 11.0) / 3
	if math.Abs(acc.MAPE-wantMAPE) > 1e-9 {
		t.Fatalf("MAPE = %v, want %v", acc.MAPE, wantMAPE)
	}
}

func TestEvaluateEstimatesFeedsRegistry(t *testing.T) {
	tel := telemetry.New()
	SetTelemetry(tel)
	defer SetTelemetry(nil)

	nodes := []NodeInfo{{Name: "n1", CPUs: 2, Speed: 1}}
	records := []*logs.RunRecord{
		accRecord("f", 1, 40000, "n1"),
		accRecord("f", 2, 42000, "n1"),
	}
	EvaluateEstimates(records, nodes)

	reg := tel.Registry()
	lbl := telemetry.Labels{"forecast": "f", "day": "2"}
	if v := reg.Gauge("core_estimate_predicted_seconds", lbl).Value(); v != 40000 {
		t.Fatalf("predicted gauge = %v, want 40000", v)
	}
	if v := reg.Gauge("core_estimate_actual_seconds", lbl).Value(); v != 42000 {
		t.Fatalf("actual gauge = %v, want 42000", v)
	}
	if n := reg.Histogram("core_estimate_abs_pct_error", pctErrorBuckets, nil).Count(); n != 1 {
		t.Fatalf("error histogram count = %d, want 1", n)
	}
}

func TestPlannerTelemetryCounters(t *testing.T) {
	tel := telemetry.New()
	SetTelemetry(tel)
	defer SetTelemetry(nil)

	nodes := []NodeInfo{{Name: "n1", CPUs: 2, Speed: 1}, {Name: "n2", CPUs: 2, Speed: 1}}
	runs := []Run{
		{Name: "a", Work: 1000, Deadline: 86400},
		{Name: "b", Work: 2000, Deadline: 86400},
	}
	if _, err := BuildSchedule(nodes, runs, ScheduleOptions{Heuristic: FirstFitDecreasing}); err != nil {
		t.Fatal(err)
	}

	reg := tel.Registry()
	if v := reg.Counter("core_planner_invocations_total",
		telemetry.Labels{"pass": "schedule", "heuristic": "first-fit-decreasing"}).Value(); v != 1 {
		t.Fatalf("schedule invocations = %v, want 1", v)
	}
	if v := reg.Counter("core_planner_invocations_total",
		telemetry.Labels{"pass": "pack", "heuristic": "first-fit-decreasing"}).Value(); v != 1 {
		t.Fatalf("pack invocations = %v, want 1", v)
	}
	if v := reg.Counter("core_pack_iterations_total", nil).Value(); v <= 0 {
		t.Fatalf("pack iterations = %v, want > 0", v)
	}
	// Planner spans were recorded under the "planner" track.
	foundPack := false
	for _, s := range tel.Trace().Spans() {
		if s.Cat == "planner" && s.Name == "pack:first-fit-decreasing" {
			foundPack = true
			if s.Args["runs"] != "2" {
				t.Fatalf("pack span args = %v, want runs=2", s.Args)
			}
		}
	}
	if !foundPack {
		t.Fatal("no pack span recorded")
	}
}
