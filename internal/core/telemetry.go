package core

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// telSink is the package-level telemetry sink. Pack and BuildSchedule are
// free functions, so unlike the factory there is no object to hang cached
// instruments on; foreman installs a sink once at startup instead.
var telSink atomic.Pointer[telemetry.Telemetry]

// SetTelemetry installs the telemetry sink used by the planner's free
// functions (Pack, BuildSchedule, EvaluateEstimates). Pass nil to detach.
// Safe to call concurrently with running planners.
func SetTelemetry(t *telemetry.Telemetry) {
	telSink.Store(t)
}

// plannerTelemetry returns the current sink (nil when detached).
func plannerTelemetry() *telemetry.Telemetry {
	return telSink.Load()
}
