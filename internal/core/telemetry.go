package core

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// telSink is the package-level telemetry sink. Pack and BuildSchedule are
// free functions, so unlike the factory there is no object to hang cached
// instruments on; foreman installs a sink once at startup instead.
var telSink atomic.Pointer[telemetry.Telemetry]

// SetTelemetry installs the telemetry sink used by the planner's free
// functions (Pack, BuildSchedule, EvaluateEstimates). Pass nil to detach.
// Safe to call concurrently with running planners.
func SetTelemetry(t *telemetry.Telemetry) {
	telSink.Store(t)
}

// plannerTelemetry returns the current sink (nil when detached).
func plannerTelemetry() *telemetry.Telemetry {
	return telSink.Load()
}

// countPredict records one prediction pass. mode is "full" (every node
// swept from scratch) or "incremental" (only dirty nodes re-swept); the
// two counters together show the observatory how much sweep work the
// incremental engine avoids.
func countPredict(mode string, nodesSwept int) {
	t := plannerTelemetry()
	if t == nil {
		return
	}
	reg := t.Registry()
	reg.Describe("core_predict_invocations_total", "Completion-time predictions, by mode (full sweep vs incremental re-sweep).")
	reg.Describe("core_predict_nodes_swept_total", "Per-node processor-sharing sweeps executed, by prediction mode.")
	reg.Counter("core_predict_invocations_total", telemetry.Labels{"mode": mode}).Inc()
	reg.Counter("core_predict_nodes_swept_total", telemetry.Labels{"mode": mode}).Add(float64(nodesSwept))
}
