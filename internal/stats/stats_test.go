package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitLinearExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Slope, 2, 1e-9) || !almost(f.Intercept, 3, 1e-9) {
		t.Fatalf("fit = %+v", f)
	}
	if !almost(f.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
	if !almost(f.Predict(10), 23, 1e-9) {
		t.Fatalf("Predict(10) = %v", f.Predict(10))
	}
}

func TestFitLinearWalltimeVsTimesteps(t *testing.T) {
	// The paper's observation: walltime linear in timesteps
	// (Tillamook: 5760 → ≈40,000 s, 11520 → ≈80,000 s).
	x := []float64{5760, 5760, 5760, 11520, 11520}
	y := []float64{40100, 39900, 40000, 80050, 79950}
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if f.R2 < 0.999 {
		t.Fatalf("R2 = %v, want ≈1 (linear relationship)", f.R2)
	}
	if got := f.Predict(8640); got < 58000 || got > 62000 {
		t.Fatalf("Predict(8640) = %v, want ≈60000", got)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestFitLinearConstantY(t *testing.T) {
	f, err := FitLinear([]float64{1, 2, 3}, []float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Slope, 0, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestMeanMedianStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5, 1e-12) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !almost(Median(xs), 4.5, 1e-12) {
		t.Fatalf("Median = %v", Median(xs))
	}
	if !almost(StdDev(xs), 2.138, 0.001) {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if !almost(Median([]float64{3, 1, 2}), 2, 1e-12) {
		t.Fatal("odd-length median wrong")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) || !math.IsNaN(StdDev([]float64{1})) {
		t.Fatal("degenerate inputs should be NaN")
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	if !almost(MAD(xs), 1, 1e-12) {
		t.Fatalf("MAD = %v", MAD(xs))
	}
	if !math.IsNaN(MAD(nil)) {
		t.Fatal("MAD(nil) should be NaN")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("MovingAverage = %v, want %v", got, want)
		}
	}
	if got := MovingAverage(xs, 0); !almost(got[4], 5, 1e-12) {
		t.Fatal("window 0 should behave as window 1")
	}
}

func TestOutliersFlagSpikes(t *testing.T) {
	// A walltime series with two contention spikes (Figure 9 style).
	xs := []float64{52000, 52100, 51900, 52050, 64000, 52000, 51950, 57500, 52020}
	got := Outliers(xs, 5)
	if len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Fatalf("Outliers = %v, want [4 7]", got)
	}
}

func TestOutliersDegenerateSeries(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 9}
	got := Outliers(xs, 3)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("Outliers = %v, want [4]", got)
	}
	if Outliers(nil, 3) != nil {
		t.Fatal("Outliers(nil) should be nil")
	}
}

func TestControlChart(t *testing.T) {
	baseline := []float64{100, 102, 98, 101, 99}
	c, err := NewControlChart(baseline, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c.Center, 100, 1e-9) {
		t.Fatalf("Center = %v", c.Center)
	}
	out := c.OutOfControl([]float64{100, 103, 120, 80, 99})
	if len(out) != 2 || out[0] != 2 || out[1] != 3 {
		t.Fatalf("OutOfControl = %v", out)
	}
	if _, err := NewControlChart([]float64{1}, 3); err == nil {
		t.Fatal("short baseline accepted")
	}
	// k defaults to 3 when non-positive.
	c2, err := NewControlChart(baseline, 0)
	if err != nil || c2.K != 3 {
		t.Fatalf("default k = %v, err %v", c2.K, err)
	}
}

func TestLevelShiftsFindCodeChanges(t *testing.T) {
	// Step changes at indexes 10 (−5000) and 20 (+26000), as in Figure 9.
	var xs []float64
	for i := 0; i < 10; i++ {
		xs = append(xs, 32000)
	}
	for i := 0; i < 10; i++ {
		xs = append(xs, 27000)
	}
	for i := 0; i < 10; i++ {
		xs = append(xs, 53000)
	}
	got := LevelShifts(xs, 5, 3000)
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("LevelShifts = %v, want [10 20]", got)
	}
}

func TestLevelShiftsIgnoresNoise(t *testing.T) {
	var xs []float64
	for i := 0; i < 30; i++ {
		xs = append(xs, 32000+float64(i%3)*50)
	}
	if got := LevelShifts(xs, 5, 3000); len(got) != 0 {
		t.Fatalf("LevelShifts = %v, want none", got)
	}
	if got := LevelShifts(xs[:4], 5, 1); got != nil {
		t.Fatal("short series should yield nil")
	}
}

// Property: the least-squares fit recovers slope and intercept from
// noise-free data and R2 is within [0, 1] with noisy data.
func TestPropertyFitLinearRecovery(t *testing.T) {
	f := func(aRaw, bRaw int8, noise []int8) bool {
		a, b := float64(aRaw), float64(bRaw)
		n := len(noise)
		if n < 3 {
			return true
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
			y[i] = a + b*x[i]
		}
		fit, err := FitLinear(x, y)
		if err != nil {
			return false
		}
		if !almost(fit.Slope, b, 1e-6) || !almost(fit.Intercept, a, 1e-6) {
			return false
		}
		// Add noise; R2 must stay in [0, 1].
		for i := range y {
			y[i] += float64(noise[i]) * 0.1
		}
		fit2, err := FitLinear(x, y)
		if err != nil {
			return false
		}
		return fit2.R2 >= -1e-9 && fit2.R2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
