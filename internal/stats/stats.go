// Package stats provides the statistical tooling §4.3.2 of the paper
// builds on the run database: least-squares fits confirming that run time
// is linear in timesteps and near-linear in mesh sides, scaling-based
// run-time estimation, and statistical-process-control style analysis of
// walltime series (moving averages, MAD outlier detection, control
// charts) to spot contention spikes and code-change level shifts.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// LinearFit is a least-squares line y = Intercept + Slope·x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	R2        float64 // coefficient of determination
	N         int
}

// FitLinear computes the ordinary least squares fit of y on x. It requires
// at least two points with distinct x values.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: x and y lengths differ (%d vs %d)", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 points, got %d", n)
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: all x values identical")
	}
	slope := sxy / sxx
	fit := LinearFit{
		Intercept: my - slope*mx,
		Slope:     slope,
		N:         n,
	}
	if syy == 0 {
		fit.R2 = 1 // constant y perfectly explained
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (NaN for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the median (NaN for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation from the median.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Median(xs)
	devs := make([]float64, len(xs))
	for i, v := range xs {
		devs[i] = math.Abs(v - m)
	}
	return Median(devs)
}

// MovingAverage returns the trailing moving average with the given window
// (each output point averages the window ending at that index; shorter
// prefixes average what is available).
func MovingAverage(xs []float64, window int) []float64 {
	if window <= 0 {
		window = 1
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, v := range xs {
		sum += v
		if i >= window {
			sum -= xs[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Outliers flags points whose distance from the series median exceeds
// k × MAD (robust z-score). It returns the indexes of flagged points.
// Contention spikes like days 172 and 192 of Figure 9 surface this way.
func Outliers(xs []float64, k float64) []int {
	if len(xs) == 0 {
		return nil
	}
	m := Median(xs)
	mad := MAD(xs)
	if mad == 0 {
		// Degenerate series (over half the points identical): flag exact
		// departures from the median.
		var out []int
		for i, v := range xs {
			if v != m {
				out = append(out, i)
			}
		}
		return out
	}
	var out []int
	for i, v := range xs {
		if math.Abs(v-m) > k*mad {
			out = append(out, i)
		}
	}
	return out
}

// ControlChart is an SPC chart over a walltime series: a center line with
// upper/lower control limits at k sigma.
type ControlChart struct {
	Center float64
	Sigma  float64
	K      float64
	Upper  float64
	Lower  float64
}

// NewControlChart builds a chart from a baseline sample.
func NewControlChart(baseline []float64, k float64) (ControlChart, error) {
	if len(baseline) < 2 {
		return ControlChart{}, fmt.Errorf("stats: control chart needs ≥2 baseline points, got %d", len(baseline))
	}
	if k <= 0 {
		k = 3
	}
	c := ControlChart{Center: Mean(baseline), Sigma: StdDev(baseline), K: k}
	c.Upper = c.Center + k*c.Sigma
	c.Lower = c.Center - k*c.Sigma
	return c, nil
}

// OutOfControl returns the indexes of points outside the control limits.
func (c ControlChart) OutOfControl(xs []float64) []int {
	var out []int
	for i, v := range xs {
		if v > c.Upper || v < c.Lower {
			out = append(out, i)
		}
	}
	return out
}

// LevelShifts detects sustained changes of at least minDelta between the
// means of adjacent windows of the given size — the code-version and mesh
// step changes visible in Figures 8 and 9. It returns the indexes where a
// new level begins. The window-mean difference is tent-shaped around a
// clean step, so climbing to its local peak pinpoints the boundary.
func LevelShifts(xs []float64, window int, minDelta float64) []int {
	w := window
	n := len(xs)
	if w <= 0 || n < 2*w {
		return nil
	}
	diff := make([]float64, n)
	for i := w; i+w <= n; i++ {
		diff[i] = math.Abs(Mean(xs[i:i+w]) - Mean(xs[i-w:i]))
	}
	var shifts []int
	i := w
	for i+w <= n {
		if diff[i] < minDelta {
			i++
			continue
		}
		j := i
		for j+1+w <= n && diff[j+1] > diff[j] {
			j++
		}
		shifts = append(shifts, j)
		i = j + w // skip past the transition
	}
	return shifts
}
