package stats

import (
	"math"
	"testing"
)

// The estimators sit under the planner and the SPC observatory, both of
// which feed them whatever history exists — including none, one sample,
// or a flat line. These tests pin the degenerate-input contracts: scalar
// summaries answer NaN only where documented, slice-returning analyses
// stay empty (never NaN-bearing), and zero-variance baselines produce
// collapsed but usable control limits.

func TestZeroVarianceBaseline(t *testing.T) {
	flat := []float64{40000, 40000, 40000, 40000}
	if sd := StdDev(flat); sd != 0 {
		t.Fatalf("StdDev(flat) = %v, want 0", sd)
	}
	if mad := MAD(flat); mad != 0 {
		t.Fatalf("MAD(flat) = %v, want 0", mad)
	}
	c, err := NewControlChart(flat, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sigma != 0 || c.Upper != c.Center || c.Lower != c.Center {
		t.Fatalf("flat baseline chart = %+v, want collapsed limits", c)
	}
	// Collapsed limits still judge: any departure from the flat center is
	// out of control, the center itself is not.
	out := c.OutOfControl([]float64{40000, 40001, 39999, 40000})
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("OutOfControl = %v, want [1 2]", out)
	}
	// Zero-MAD outlier detection flags exact departures, not everything.
	if got := Outliers([]float64{5, 5, 5, 6, 5}, 3); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Outliers(near-flat) = %v, want [3]", got)
	}
}

func TestSingleSample(t *testing.T) {
	one := []float64{42}
	if m := Mean(one); m != 42 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Median(one); m != 42 {
		t.Fatalf("Median = %v", m)
	}
	if mad := MAD(one); mad != 0 {
		t.Fatalf("MAD = %v, want 0", mad)
	}
	// One sample has no spread to estimate: StdDev answers NaN and the
	// chart constructor refuses rather than emitting NaN limits.
	if sd := StdDev(one); !math.IsNaN(sd) {
		t.Fatalf("StdDev = %v, want NaN", sd)
	}
	if _, err := NewControlChart(one, 3); err == nil {
		t.Fatal("control chart accepted a single baseline point")
	}
	if ma := MovingAverage(one, 5); len(ma) != 1 || ma[0] != 42 {
		t.Fatalf("MovingAverage = %v", ma)
	}
	if got := Outliers(one, 3); len(got) != 0 {
		t.Fatalf("Outliers = %v, want none", got)
	}
	if got := LevelShifts(one, 3, 1); got != nil {
		t.Fatalf("LevelShifts = %v, want nil", got)
	}
}

func TestEmptyInputNaNFree(t *testing.T) {
	// Scalar summaries document NaN for empty input...
	for name, got := range map[string]float64{
		"Mean":   Mean(nil),
		"Median": Median(nil),
		"MAD":    MAD(nil),
		"StdDev": StdDev(nil),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s(nil) = %v, want NaN", name, got)
		}
	}
	// ...but every slice-returning analysis must come back empty, with no
	// NaN smuggled into an output element and no panic.
	if ma := MovingAverage(nil, 3); len(ma) != 0 {
		t.Errorf("MovingAverage(nil) = %v, want empty", ma)
	}
	if got := Outliers(nil, 3); got != nil {
		t.Errorf("Outliers(nil) = %v, want nil", got)
	}
	if got := LevelShifts(nil, 5, 1); got != nil {
		t.Errorf("LevelShifts(nil) = %v, want nil", got)
	}
	c, err := NewControlChart([]float64{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.OutOfControl(nil); got != nil {
		t.Errorf("OutOfControl(nil) = %v, want nil", got)
	}
	if _, err := FitLinear(nil, nil); err == nil {
		t.Error("FitLinear(nil, nil) accepted")
	}
}
