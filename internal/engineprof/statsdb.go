// Schema v6: the engine observatory's persisted state. engine_profile
// holds one row per scheduling label with its counters, wall-clock
// accumulators and cost histogram; engine_queue_depth holds the
// pending-queue-depth timeline. `foreman -engineprof`, /api/engine and
// the factory's campaign-end summary all render a Report read back from
// these rows, so the surfaces cannot disagree.

package engineprof

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/statsdb"
)

// Table names added by the schema v6 migration.
const (
	ProfileTableName = "engine_profile"
	DepthTableName   = "engine_queue_depth"
)

// ProfileSchema returns the schema of the engine_profile table: one row
// per scheduling label.
func ProfileSchema() statsdb.Schema {
	return statsdb.Schema{
		{Name: "label", Type: statsdb.String},
		{Name: "scheduled", Type: statsdb.Int},
		{Name: "fired", Type: statsdb.Int},
		{Name: "cancelled", Type: statsdb.Int},
		{Name: "wall_sampled", Type: statsdb.Int},
		{Name: "wall_ns", Type: statsdb.Int},
		{Name: "wall_max_ns", Type: statsdb.Int},
		{Name: "wall_hist", Type: statsdb.String}, // comma-joined decade counts
		{Name: "dwell_sum", Type: statsdb.Float},
		{Name: "dwell_max", Type: statsdb.Float},
	}
}

// DepthSchema returns the schema of the engine_queue_depth table: the
// depth timeline in sample order.
func DepthSchema() statsdb.Schema {
	return statsdb.Schema{
		{Name: "seq", Type: statsdb.Int},
		{Name: "t", Type: statsdb.Float},
		{Name: "depth", Type: statsdb.Int},
	}
}

// Migrations returns the engine observatory's schema migrations: v6
// creates the engine_profile and engine_queue_depth tables. Combine
// with harvest.Migrations() (v1, v2), usage.Migrations() (v3),
// forensics.Migrations() (v4) and spc.Migrations() (v5); Migrate tracks
// each independently.
func Migrations() []statsdb.Migration {
	return []statsdb.Migration{
		{
			Version: 6,
			Name:    "engine-observatory-tables",
			Apply: func(db *statsdb.DB) error {
				if db.Table(ProfileTableName) == nil {
					t, err := db.CreateTable(ProfileTableName, ProfileSchema())
					if err != nil {
						return err
					}
					if err := t.CreateIndex("label"); err != nil {
						return err
					}
				}
				if db.Table(DepthTableName) == nil {
					if _, err := db.CreateTable(DepthTableName, DepthSchema()); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

// finite guards statsdb's NaN rejection: non-finite floats persist as 0.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// histString flattens the decade histogram for the wall_hist column.
func histString(h [HistBuckets]int64) string {
	parts := make([]string, HistBuckets)
	for i, n := range h {
		parts[i] = strconv.FormatInt(n, 10)
	}
	return strings.Join(parts, ",")
}

// parseHist reads a wall_hist column value back; malformed or short
// strings yield zeros for the missing buckets.
func parseHist(s string) (h [HistBuckets]int64) {
	for i, part := range strings.Split(s, ",") {
		if i >= HistBuckets {
			break
		}
		n, err := strconv.ParseInt(part, 10, 64)
		if err == nil {
			h[i] = n
		}
	}
	return h
}

// LoadReport persists one observatory snapshot into the engine_profile
// and engine_queue_depth tables (created via the v6 migration when
// missing). One snapshot covers a whole campaign, so load each report
// once.
func LoadReport(db *statsdb.DB, rep *Report) error {
	if _, err := statsdb.Migrate(db, Migrations()); err != nil {
		return err
	}
	pt := db.Table(ProfileTableName)
	dt := db.Table(DepthTableName)
	for _, l := range rep.Labels {
		if l.Label == "" {
			return fmt.Errorf("engineprof: label report with empty label")
		}
		err := pt.Insert([]statsdb.Value{
			statsdb.StringVal(l.Label),
			statsdb.IntVal(l.Scheduled),
			statsdb.IntVal(l.Fired),
			statsdb.IntVal(l.Cancelled),
			statsdb.IntVal(l.WallSampled),
			statsdb.IntVal(l.WallNS),
			statsdb.IntVal(l.WallMaxNS),
			statsdb.StringVal(histString(l.WallHist)),
			statsdb.FloatVal(finite(l.DwellSum)),
			statsdb.FloatVal(finite(l.DwellMax)),
		})
		if err != nil {
			return err
		}
	}
	for i, p := range rep.Depth {
		err := dt.Insert([]statsdb.Value{
			statsdb.IntVal(int64(i)),
			statsdb.FloatVal(finite(p.T)),
			statsdb.IntVal(int64(p.Depth)),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadReport reconstructs a Report from the persisted tables — the
// replayable half of the pipeline: the CLI tables, the JSON endpoint
// and the dashboard panel all derive from the same statsdb rows.
// Returns an empty report when the tables are absent.
func ReadReport(db *statsdb.DB) (*Report, error) {
	rep := &Report{}
	pt := db.Table(ProfileTableName)
	if pt == nil {
		return rep, nil
	}
	schema := pt.Schema()
	col := make(map[string]int, len(schema))
	for i, c := range schema {
		col[c.Name] = i
	}
	for i := 0; i < pt.Len(); i++ {
		row := pt.Row(i)
		rep.Labels = append(rep.Labels, LabelReport{
			Label:       row[col["label"]].Str(),
			Scheduled:   row[col["scheduled"]].Int(),
			Fired:       row[col["fired"]].Int(),
			Cancelled:   row[col["cancelled"]].Int(),
			WallSampled: row[col["wall_sampled"]].Int(),
			WallNS:      row[col["wall_ns"]].Int(),
			WallMaxNS:   row[col["wall_max_ns"]].Int(),
			WallHist:    parseHist(row[col["wall_hist"]].Str()),
			DwellSum:    row[col["dwell_sum"]].Float(),
			DwellMax:    row[col["dwell_max"]].Float(),
		})
	}
	sortLabels(rep.Labels)
	if dt := db.Table(DepthTableName); dt != nil {
		dSchema := dt.Schema()
		dcol := make(map[string]int, len(dSchema))
		for i, c := range dSchema {
			dcol[c.Name] = i
		}
		type seqPoint struct {
			seq int64
			p   DepthPoint
		}
		pts := make([]seqPoint, 0, dt.Len())
		for i := 0; i < dt.Len(); i++ {
			row := dt.Row(i)
			pts = append(pts, seqPoint{
				seq: row[dcol["seq"]].Int(),
				p: DepthPoint{
					T:     row[dcol["t"]].Float(),
					Depth: int(row[dcol["depth"]].Int()),
				},
			})
		}
		// Rows normally come back in insertion order, but the timeline's
		// meaning depends on order, so honor the explicit seq column.
		for i := 1; i < len(pts); i++ {
			for j := i; j > 0 && pts[j].seq < pts[j-1].seq; j-- {
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
		for _, sp := range pts {
			rep.Depth = append(rep.Depth, sp.p)
		}
	}
	return rep, nil
}
