// Package engineprof is the event-loop observatory: an event-exact
// profiler over the simulation kernel. It implements sim.Probe, so
// attaching it to an engine (eng.SetProbe) records — per scheduling
// label — events fired and cancelled, wall-clock handler cost
// (cumulative, max, and a decade histogram), sim-time dwell between
// schedule and fire, and an event-exact pending-queue-depth timeline.
//
// The same Report feeds every surface: `foreman -engineprof` renders the
// hotspot table and queue-depth chart, the monitor serves it at
// /api/engine and draws the dashboard panel, and cmd/factory prints a
// campaign-end summary. Reports persist through statsdb schema v6
// (LoadReport/ReadReport), so all surfaces read the same rows.
package engineprof

import (
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// HistBuckets is the number of decade buckets in the wall-clock handler
// cost histogram: <1µs, <10µs, <100µs, <1ms, <10ms, and ≥10ms.
const HistBuckets = 6

// HistBucketLabels names the histogram buckets, in order.
var HistBucketLabels = [HistBuckets]string{"<1µs", "<10µs", "<100µs", "<1ms", "<10ms", "≥10ms"}

// histBucket maps a handler duration to its decade bucket.
func histBucket(d time.Duration) int {
	ns := d.Nanoseconds()
	switch {
	case ns < 1_000:
		return 0
	case ns < 10_000:
		return 1
	case ns < 100_000:
		return 2
	case ns < 1_000_000:
		return 3
	case ns < 10_000_000:
		return 4
	default:
		return 5
	}
}

// labelStats accumulates per-label counters while the profiler is
// attached. Wall-clock figures cover only the sampled (timed) handlers;
// fired/cancelled/dwell counts are exact.
type labelStats struct {
	scheduled   int64
	fired       int64
	cancelled   int64
	wallSampled int64 // handlers actually timed (engine sampling)
	wallNS      int64 // cumulative wall-clock over sampled handlers
	wallMaxNS   int64
	wallHist    [HistBuckets]int64
	dwellSum    float64 // Σ (fire time − schedule time), sim seconds
	dwellMax    float64
}

// DepthCap bounds the queue-depth timeline: when a campaign outgrows
// DepthCap buckets, bucket width doubles and adjacent pairs merge, so
// the timeline stays event-exact in its maxima while memory stays O(1).
const DepthCap = 512

// depthTimeline records the maximum pending-queue depth per sim-time
// bucket, with adaptive bucket width.
type depthTimeline struct {
	width   float64 // bucket width, sim seconds
	start   float64 // sim time of bucket 0's left edge
	buckets []int   // max depth seen in each bucket (-1: no observation)
	began   bool
}

func (d *depthTimeline) observe(t float64, depth int) {
	if !d.began {
		d.began = true
		d.start = t
		d.width = 1
		d.buckets = make([]int, 0, DepthCap)
	}
	if t < d.start {
		t = d.start // defensive; sim time is monotone
	}
	idx := int((t - d.start) / d.width)
	for idx >= DepthCap {
		d.rescale()
		idx = int((t - d.start) / d.width)
	}
	for len(d.buckets) <= idx {
		d.buckets = append(d.buckets, -1)
	}
	if depth > d.buckets[idx] {
		d.buckets[idx] = depth
	}
}

// rescale doubles the bucket width, merging adjacent pairs by max.
func (d *depthTimeline) rescale() {
	d.width *= 2
	half := (len(d.buckets) + 1) / 2
	for i := 0; i < half; i++ {
		v := d.buckets[2*i]
		if 2*i+1 < len(d.buckets) && d.buckets[2*i+1] > v {
			v = d.buckets[2*i+1]
		}
		d.buckets[i] = v
	}
	d.buckets = d.buckets[:half]
}

// points renders the timeline as (bucket midpoint, max depth) samples,
// carrying the last observed depth forward through empty buckets.
func (d *depthTimeline) points() []DepthPoint {
	if !d.began {
		return nil
	}
	pts := make([]DepthPoint, 0, len(d.buckets))
	last := 0
	for i, v := range d.buckets {
		if v < 0 {
			v = last // carry forward through empty buckets
		}
		last = v
		pts = append(pts, DepthPoint{T: d.start + (float64(i)+0.5)*d.width, Depth: v})
	}
	return pts
}

// Profiler observes one engine. Attach with eng.SetProbe(p); detach with
// eng.SetProbe(nil). Safe for concurrent Report calls while the engine
// runs (the monitor's HTTP goroutine reads live state).
type Profiler struct {
	mu     sync.Mutex
	labels map[string]*labelStats
	depth  depthTimeline
	// One-entry lookup cache: scopes pass the same label string on every
	// call, so consecutive events usually hit the same stats entry and
	// skip the map. Guarded by mu like everything else.
	lastLabel string
	lastStats *labelStats
}

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{labels: make(map[string]*labelStats)}
}

var _ sim.Probe = (*Profiler)(nil)

func (p *Profiler) stats(label string) *labelStats {
	if label == p.lastLabel && p.lastStats != nil {
		return p.lastStats
	}
	st := p.labels[label]
	if st == nil {
		st = &labelStats{}
		p.labels[label] = st
	}
	p.lastLabel, p.lastStats = label, st
	return st
}

// EventScheduled implements sim.Probe.
func (p *Profiler) EventScheduled(label string, now, when float64, pending int) {
	p.mu.Lock()
	p.stats(label).scheduled++
	p.depth.observe(now, pending)
	p.mu.Unlock()
}

// EventFired implements sim.Probe.
func (p *Profiler) EventFired(label string, born, when float64, wall time.Duration, pending int) {
	p.mu.Lock()
	st := p.stats(label)
	st.fired++
	if wall >= 0 { // negative: this fire's handler was not timed
		st.wallSampled++
		ns := wall.Nanoseconds()
		st.wallNS += ns
		if ns > st.wallMaxNS {
			st.wallMaxNS = ns
		}
		st.wallHist[histBucket(wall)]++
	}
	dwell := when - born
	st.dwellSum += dwell
	if dwell > st.dwellMax {
		st.dwellMax = dwell
	}
	p.depth.observe(when, pending)
	p.mu.Unlock()
}

// EventCancelled implements sim.Probe.
func (p *Profiler) EventCancelled(label string, born, when, now float64, pending int) {
	p.mu.Lock()
	p.stats(label).cancelled++
	p.depth.observe(now, pending)
	p.mu.Unlock()
}

// LabelReport is one label's aggregated kernel cost. Event counts and
// dwell figures are exact; wall-clock figures cover the sampled subset
// of handlers the engine timed (sim.DefaultProbeSampleEvery), with
// WallEstNS extrapolating to the full fire count.
type LabelReport struct {
	Label       string             `json:"label"`
	Scheduled   int64              `json:"scheduled"`
	Fired       int64              `json:"fired"`
	Cancelled   int64              `json:"cancelled"`
	WallSampled int64              `json:"wall_sampled"` // handlers actually timed
	WallNS      int64              `json:"wall_ns"`      // cumulative wall-clock over timed handlers
	WallMaxNS   int64              `json:"wall_max_ns"`  // slowest timed handler
	WallHist    [HistBuckets]int64 `json:"wall_hist"`    // decade buckets over timed handlers
	DwellSum    float64            `json:"dwell_sum_s"`  // Σ schedule→fire lag, sim seconds
	DwellMax    float64            `json:"dwell_max_s"`  // longest single lag
}

// WallMeanNS is the mean cost of a timed handler, 0 when none were.
func (l LabelReport) WallMeanNS() float64 {
	if l.WallSampled == 0 {
		return 0
	}
	return float64(l.WallNS) / float64(l.WallSampled)
}

// WallEstNS extrapolates the label's total handler wall-clock from the
// sampled mean: mean timed cost × total fires. Sampling is proportional
// to fire frequency, so the estimate is unbiased per label.
func (l LabelReport) WallEstNS() float64 {
	return l.WallMeanNS() * float64(l.Fired)
}

// DwellMean is the mean schedule→fire lag in sim seconds.
func (l LabelReport) DwellMean() float64 {
	if l.Fired == 0 {
		return 0
	}
	return l.DwellSum / float64(l.Fired)
}

// DepthPoint is one sample of the pending-queue-depth timeline.
type DepthPoint struct {
	T     float64 `json:"t"`     // sim time, bucket midpoint
	Depth int     `json:"depth"` // max pending events in the bucket
}

// Report is a snapshot of everything the profiler has observed. Labels
// are sorted by cumulative wall-clock cost, hottest first.
type Report struct {
	Labels []LabelReport `json:"labels"`
	Depth  []DepthPoint  `json:"depth"`
}

// Report snapshots the profiler. Callable while the engine runs.
func (p *Profiler) Report() *Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := &Report{Depth: p.depth.points()}
	for label, st := range p.labels {
		rep.Labels = append(rep.Labels, LabelReport{
			Label:       label,
			Scheduled:   st.scheduled,
			Fired:       st.fired,
			Cancelled:   st.cancelled,
			WallSampled: st.wallSampled,
			WallNS:      st.wallNS,
			WallMaxNS:   st.wallMaxNS,
			WallHist:    st.wallHist,
			DwellSum:    st.dwellSum,
			DwellMax:    st.dwellMax,
		})
	}
	sortLabels(rep.Labels)
	return rep
}

// sortLabels orders hottest-first by estimated cumulative wall cost,
// breaking ties by fired count then name so reports are deterministic.
func sortLabels(ls []LabelReport) {
	sort.Slice(ls, func(i, j int) bool {
		ei, ej := ls[i].WallEstNS(), ls[j].WallEstNS()
		if ei != ej {
			return ei > ej
		}
		if ls[i].Fired != ls[j].Fired {
			return ls[i].Fired > ls[j].Fired
		}
		return ls[i].Label < ls[j].Label
	})
}

// TopK returns the k hottest labels (all of them when k <= 0 or k
// exceeds the label count).
func (r *Report) TopK(k int) []LabelReport {
	if k <= 0 || k > len(r.Labels) {
		k = len(r.Labels)
	}
	return r.Labels[:k]
}

// TotalFired sums fired events across labels.
func (r *Report) TotalFired() int64 {
	var n int64
	for _, l := range r.Labels {
		n += l.Fired
	}
	return n
}

// TotalCancelled sums cancelled events across labels.
func (r *Report) TotalCancelled() int64 {
	var n int64
	for _, l := range r.Labels {
		n += l.Cancelled
	}
	return n
}

// TotalWallNS sums timed handler wall-clock across labels.
func (r *Report) TotalWallNS() int64 {
	var n int64
	for _, l := range r.Labels {
		n += l.WallNS
	}
	return n
}

// TotalWallEstNS sums the per-label extrapolated wall-clock estimates.
func (r *Report) TotalWallEstNS() float64 {
	var n float64
	for _, l := range r.Labels {
		n += l.WallEstNS()
	}
	return n
}

// MaxDepth is the deepest pending queue observed.
func (r *Report) MaxDepth() int {
	max := 0
	for _, p := range r.Depth {
		if p.Depth > max {
			max = p.Depth
		}
	}
	return max
}

// Untagged returns the untagged label's report (zero value when every
// event was scheduled through a named scope — the healthy state).
func (r *Report) Untagged() LabelReport {
	for _, l := range r.Labels {
		if l.Label == sim.Untagged {
			return l
		}
	}
	return LabelReport{}
}
