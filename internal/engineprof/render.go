// Terminal rendering of the engine observatory: the hotspot table that
// `foreman -engineprof` prints, the campaign-end summary in cmd/factory,
// and the queue-depth chart. The monitor dashboard renders the same
// Report client-side from /api/engine.

package engineprof

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/plot"
)

// fmtNS renders nanoseconds human-readably (µs/ms/s).
func fmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	}
}

// SummaryTable renders the top-k hotspot report: one row per label,
// hottest first, with share of total handler wall-clock, counts, mean
// and max handler cost, and mean sim-time dwell. Wall figures are
// extrapolated from the engine's sampled handler timings (the timed
// column counts the handlers actually measured).
func SummaryTable(rep *Report, k int) string {
	var b strings.Builder
	total := rep.TotalWallEstNS()
	fmt.Fprintf(&b, "engine observatory: %d events fired, %d cancelled, ~%s handler wall-clock (sampled), peak queue depth %d\n",
		rep.TotalFired(), rep.TotalCancelled(), fmtNS(int64(total)), rep.MaxDepth())
	fmt.Fprintf(&b, "%-10s %6s %10s %10s %10s %8s %10s %10s %12s\n",
		"label", "wall%", "wall", "fired", "cancelled", "timed", "mean", "max", "dwell(mean)")
	for _, l := range rep.TopK(k) {
		share := 0.0
		if total > 0 {
			share = 100 * l.WallEstNS() / total
		}
		fmt.Fprintf(&b, "%-10s %5.1f%% %10s %10d %10d %8d %10s %10s %11.0fs\n",
			l.Label, share, fmtNS(int64(l.WallEstNS())), l.Fired, l.Cancelled,
			l.WallSampled, fmtNS(int64(l.WallMeanNS())), fmtNS(l.WallMaxNS), l.DwellMean())
	}
	if n := len(rep.Labels); k > 0 && n > k {
		fmt.Fprintf(&b, "... and %d more labels\n", n-k)
	}
	return b.String()
}

// HistTable renders the handler-cost decade histogram for the top-k
// labels: how many timed handlers of each label landed in each cost
// decade.
func HistTable(rep *Report, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "label")
	for _, h := range HistBucketLabels {
		fmt.Fprintf(&b, " %8s", h)
	}
	b.WriteByte('\n')
	for _, l := range rep.TopK(k) {
		fmt.Fprintf(&b, "%-10s", l.Label)
		for _, n := range l.WallHist {
			fmt.Fprintf(&b, " %8d", n)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DepthChart renders the pending-queue-depth timeline as an ASCII chart
// with sim time in days on the x axis.
func DepthChart(rep *Report) string {
	if len(rep.Depth) == 0 {
		return "engine observatory: no queue-depth samples\n"
	}
	xs := make([]float64, len(rep.Depth))
	ys := make([]float64, len(rep.Depth))
	for i, p := range rep.Depth {
		xs[i] = p.T / 86400
		ys[i] = float64(p.Depth)
	}
	return plot.Chart{
		Title:  "pending-queue depth (max per bucket)",
		XLabel: "sim time (days)",
		YLabel: "events",
		Series: []plot.Series{{Name: "depth", X: xs, Y: ys}},
	}.Render()
}
