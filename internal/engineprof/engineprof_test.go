package engineprof_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/engineprof"
	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/sim"
	"repro/internal/statsdb"
)

func TestProfilerAggregatesPerLabel(t *testing.T) {
	e := sim.NewEngine()
	p := engineprof.New()
	e.SetProbe(p)
	e.SetProbeSampling(1) // time every handler: exact wall totals below
	ps := e.Scope("ps")
	wf := e.Scope("workflow")
	ps.At(10, func() {})
	ps.At(20, func() {})
	wf.After(5, func() { time.Sleep(time.Millisecond) })
	doomed := ps.At(99, func() { t.Fatal("cancelled event fired") })
	doomed.Cancel()
	e.At(1, func() {}) // plain At: untagged
	e.Run()

	rep := p.Report()
	byLabel := map[string]engineprof.LabelReport{}
	for _, l := range rep.Labels {
		byLabel[l.Label] = l
	}
	psRep := byLabel["ps"]
	if psRep.Scheduled != 3 || psRep.Fired != 2 || psRep.Cancelled != 1 {
		t.Fatalf("ps = %+v, want scheduled 3 fired 2 cancelled 1", psRep)
	}
	wfRep := byLabel["workflow"]
	if wfRep.Fired != 1 {
		t.Fatalf("workflow fired = %d, want 1", wfRep.Fired)
	}
	if wfRep.WallNS < int64(time.Millisecond) {
		t.Fatalf("workflow wall = %dns, want >= 1ms (handler slept)", wfRep.WallNS)
	}
	if wfRep.DwellMax != 5 {
		t.Fatalf("workflow dwell max = %v, want 5", wfRep.DwellMax)
	}
	ut := rep.Untagged()
	if ut.Fired != 1 {
		t.Fatalf("untagged fired = %d, want 1", ut.Fired)
	}
	if rep.TotalFired() != 4 || rep.TotalCancelled() != 1 {
		t.Fatalf("totals fired %d cancelled %d, want 4 and 1",
			rep.TotalFired(), rep.TotalCancelled())
	}
	// The slow workflow handler must rank hottest.
	if rep.Labels[0].Label != "workflow" {
		t.Fatalf("hottest label = %q, want workflow", rep.Labels[0].Label)
	}
	if wfRep.WallSampled != wfRep.Fired {
		t.Fatalf("workflow timed %d of %d fires, want all (sampling 1)",
			wfRep.WallSampled, wfRep.Fired)
	}
	var histTotal int64
	for _, n := range wfRep.WallHist {
		histTotal += n
	}
	if histTotal != wfRep.WallSampled {
		t.Fatalf("workflow histogram sums to %d, want %d", histTotal, wfRep.WallSampled)
	}
}

func TestTopK(t *testing.T) {
	rep := &engineprof.Report{Labels: []engineprof.LabelReport{
		{Label: "a", Fired: 1, WallSampled: 1, WallNS: 300},
		{Label: "b", Fired: 1, WallSampled: 1, WallNS: 200},
		{Label: "c", Fired: 1, WallSampled: 1, WallNS: 100},
	}}
	if got := rep.TopK(2); len(got) != 2 || got[0].Label != "a" || got[1].Label != "b" {
		t.Fatalf("TopK(2) = %v", got)
	}
	if got := rep.TopK(0); len(got) != 3 {
		t.Fatalf("TopK(0) returned %d labels, want all 3", len(got))
	}
	if got := rep.TopK(99); len(got) != 3 {
		t.Fatalf("TopK(99) returned %d labels, want all 3", len(got))
	}
}

// The depth timeline is event-exact in its maxima and bounded in size:
// a long campaign collapses into wider buckets instead of growing.
func TestDepthTimelineAdaptiveWidth(t *testing.T) {
	e := sim.NewEngine()
	p := engineprof.New()
	e.SetProbe(p)
	s := e.Scope("x")
	// Schedule a long chain spanning far more than DepthCap seconds of
	// sim time at 1s spacing, forcing several width doublings.
	const n = 10_000
	var tick func()
	i := 0
	tick = func() {
		i++
		if i < n {
			s.After(1, tick)
		}
	}
	s.At(0, tick)
	// A burst early on sets a depth spike the rescaling must preserve.
	for j := 0; j < 50; j++ {
		s.At(0.5, func() {})
	}
	e.Run()

	rep := p.Report()
	if len(rep.Depth) > engineprof.DepthCap {
		t.Fatalf("depth timeline has %d buckets, cap is %d", len(rep.Depth), engineprof.DepthCap)
	}
	if len(rep.Depth) == 0 {
		t.Fatal("no depth samples")
	}
	if rep.MaxDepth() < 50 {
		t.Fatalf("max depth = %d, want >= 50 (burst lost in rescaling)", rep.MaxDepth())
	}
	// The spike must be in the first bucket (sim time ~0.5s).
	if rep.Depth[0].Depth < 50 {
		t.Fatalf("first bucket depth = %d, want >= 50", rep.Depth[0].Depth)
	}
}

func TestStatsdbRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	p := engineprof.New()
	e.SetProbe(p)
	s := e.Scope("ps")
	for i := 0; i < 20; i++ {
		s.At(float64(i), func() {})
	}
	e.Scope("harvest").At(3, func() {})
	doomed := s.At(100, func() {})
	doomed.Cancel()
	e.Run()
	rep := p.Report()

	db := statsdb.NewDB()
	if err := engineprof.LoadReport(db, rep); err != nil {
		t.Fatal(err)
	}
	if v := statsdb.SchemaVersion(db); v != 6 {
		t.Fatalf("schema version = %d, want 6", v)
	}
	got, err := engineprof.ReadReport(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Labels) != len(rep.Labels) {
		t.Fatalf("read %d labels, wrote %d", len(got.Labels), len(rep.Labels))
	}
	for i := range rep.Labels {
		w, g := rep.Labels[i], got.Labels[i]
		if w != g {
			t.Fatalf("label %d round-trip mismatch:\n wrote %+v\n  read %+v", i, w, g)
		}
	}
	if len(got.Depth) != len(rep.Depth) {
		t.Fatalf("read %d depth points, wrote %d", len(got.Depth), len(rep.Depth))
	}
	for i := range rep.Depth {
		if rep.Depth[i] != got.Depth[i] {
			t.Fatalf("depth %d: wrote %+v read %+v", i, rep.Depth[i], got.Depth[i])
		}
	}
}

func TestReadReportEmptyDB(t *testing.T) {
	rep, err := engineprof.ReadReport(statsdb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Labels) != 0 || len(rep.Depth) != 0 {
		t.Fatalf("empty DB produced non-empty report: %+v", rep)
	}
}

func TestRenderSurfaces(t *testing.T) {
	e := sim.NewEngine()
	p := engineprof.New()
	e.SetProbe(p)
	e.Scope("ps").At(1, func() {})
	e.Run()
	rep := p.Report()
	table := engineprof.SummaryTable(rep, 10)
	if !strings.Contains(table, "ps") || !strings.Contains(table, "label") {
		t.Fatalf("summary table missing content:\n%s", table)
	}
	hist := engineprof.HistTable(rep, 10)
	if !strings.Contains(hist, "<1µs") {
		t.Fatalf("hist table missing bucket headers:\n%s", hist)
	}
	chart := engineprof.DepthChart(rep)
	if !strings.Contains(chart, "depth") {
		t.Fatalf("depth chart missing series:\n%s", chart)
	}
	empty := engineprof.DepthChart(&engineprof.Report{})
	if !strings.Contains(empty, "no queue-depth samples") {
		t.Fatalf("empty chart = %q", empty)
	}
}

// The acceptance bar for the labeling sweep: a seeded campaign replay
// schedules every event through a named scope — zero untagged events.
func TestCampaignHasZeroUntaggedEvents(t *testing.T) {
	tillamook := forecast.Tillamook()
	c, err := factory.New(factory.Config{
		Year: 2005,
		Days: 3,
		Forecasts: []factory.Assignment{
			{Spec: tillamook, Node: "fnode01"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := engineprof.New()
	c.Engine().SetProbe(p)
	c.Run()
	rep := p.Report()
	if rep.TotalFired() == 0 {
		t.Fatal("campaign fired no events")
	}
	ut := rep.Untagged()
	if ut.Scheduled != 0 || ut.Fired != 0 || ut.Cancelled != 0 {
		t.Fatalf("campaign scheduled untagged events: %+v (labels: %v)",
			ut, rep.Labels)
	}
	byLabel := map[string]bool{}
	for _, l := range rep.Labels {
		byLabel[l.Label] = true
	}
	for _, want := range []string{"factory", "workflow", "ps"} {
		if !byLabel[want] {
			t.Fatalf("campaign missing %q events; labels: %v", want, rep.Labels)
		}
	}
}
