package engineprof_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"syscall"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engineprof"
	"repro/internal/sim"
	"repro/internal/usage"
)

// benchReplay drives a campaign replay at observatory scale: nodes×days
// runs (one per node per day, runsWanted total), each a chained-
// increment simulation on its node with the usage sampler watching the
// cluster. Every event goes through a named scope — the launches via
// "replay", completions via the cluster's "ps" resources, sampler ticks
// via "usage" — which the attached arm's zero-untagged assertion
// depends on. When profile is true the kernel profiler is attached for
// the whole replay; the delta against profile=false is what the 5%
// budget bounds. Returns the events fired and the profiler (nil when
// detached).
func benchReplay(nodes, runsWanted, incs int, profile bool) (int64, *engineprof.Profiler) {
	days := (runsWanted + nodes - 1) / nodes
	e := sim.NewEngine()
	var prof *engineprof.Profiler
	if profile {
		prof = engineprof.New()
		e.SetProbe(prof)
	}
	cl := cluster.New(e)
	cn := make([]*cluster.Node, nodes)
	for i := range cn {
		cn[i] = cl.AddNode(fmt.Sprintf("bn%03d", i), 2, 1.0)
	}
	samp := usage.NewSampler(cl, usage.Options{Interval: 900})
	horizon := float64(days) * 86400
	samp.Start(horizon)
	sched := e.Scope("replay")
	runs := 0
	for d := 0; d < days && runs < runsWanted; d++ {
		for f := 0; f < nodes && runs < runsWanted; f++ {
			f, d := f, d
			runs++
			name := fmt.Sprintf("bf%03d", f)
			start := float64(d)*86400 + float64(f%8)*450
			cost := 3000.0 + float64((f*7+d*13)%11)
			sched.At(start, func() {
				var next func(i int)
				next = func(i int) {
					if i >= incs {
						return
					}
					cn[f].Submit(fmt.Sprintf("%s[%d]", name, i),
						cost/float64(incs), func() { next(i + 1) })
				}
				next(0)
			})
		}
	}
	e.Run()
	samp.Finalize(e.Now())
	return e.EventsFired(), prof
}

// BenchmarkReplayDetached is the 200-node × 2000-run replay with no
// probe attached: the denominator of the overhead budget, and the
// headline events/sec number.
func BenchmarkReplayDetached(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchReplay(200, 2000, 96, false)
	}
}

// BenchmarkReplayProfiled is the same replay with the kernel profiler
// observing every schedule, fire and cancel.
func BenchmarkReplayProfiled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, prof := benchReplay(200, 2000, 96, true); prof == nil {
			b.Fatal("profiled replay returned no profiler")
		}
	}
}

// TestEmitBenchReport measures the kernel's replay throughput — events
// per CPU second with the profiler detached and attached — on a
// 200-node × 2000-run campaign replay and writes a machine-readable
// report to the file named by BENCH_OUT; `make bench` sets it and CI
// uploads the result as an artifact. Without BENCH_OUT the test is
// skipped.
//
// Methodology (inherited from the SPC and forensics benches): detached
// and profiled replays alternate in ABBA order, samples are process CPU
// seconds from rusage rather than wall time, and each arm's cost is the
// MINIMUM across its samples — the fastest interleaved sample
// approaches the uncontended cost on a shared, noisy box. A measurement
// that exceeds budget is re-taken once and the quieter (lower-baseline)
// of the two is reported.
//
// When BENCH_BASELINE names a committed baseline report, the detached
// events/sec must stay within 20% of it — the trajectory gate that
// catches kernel regressions in CI.
func TestEmitBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("BENCH_OUT not set")
	}
	const (
		samples = 12 // per arm
		nodes   = 200
		runs    = 2000
		incs    = 96
	)
	cpuSeconds := func() float64 {
		var ru syscall.Rusage
		if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
			t.Fatal(err)
		}
		return float64(ru.Utime.Sec+ru.Stime.Sec) +
			float64(ru.Utime.Usec+ru.Stime.Usec)/1e6
	}
	// Warm-up, and the acceptance assertion: the replay schedules zero
	// untagged events.
	events, _ := benchReplay(nodes, runs, incs, false)
	_, prof := benchReplay(nodes, runs, incs, true)
	rep := prof.Report()
	if ut := rep.Untagged(); ut.Scheduled != 0 || ut.Fired != 0 || ut.Cancelled != 0 {
		t.Fatalf("replay scheduled untagged events: %+v", ut)
	}
	if rep.TotalFired() != events {
		t.Fatalf("profiler counted %d fired events, engine counted %d",
			rep.TotalFired(), events)
	}
	// Each timed segment starts from a collected heap so a replay pays
	// for its own garbage, not its neighbor's.
	timed := func(profile bool) float64 {
		runtime.GC()
		t0 := cpuSeconds()
		benchReplay(nodes, runs, incs, profile)
		return cpuSeconds() - t0
	}
	measure := func() (minBase, minProf float64) {
		minBase, minProf = math.Inf(1), math.Inf(1)
		for i := 0; i < samples; i++ {
			var b, a float64
			if i%2 == 0 {
				b = timed(false)
				a = timed(true)
			} else {
				a = timed(true)
				b = timed(false)
			}
			minBase = math.Min(minBase, b)
			minProf = math.Min(minProf, a)
		}
		return minBase, minProf
	}
	minBase, minProf := measure()
	overhead := 100 * (minProf - minBase) / minBase
	if overhead > 5 {
		b2, p2 := measure()
		if b2 < minBase {
			minBase, minProf = b2, p2
			overhead = 100 * (minProf - minBase) / minBase
		}
	}
	epsDetached := float64(events) / minBase
	epsProfiled := float64(events) / minProf
	report := map[string]any{
		"scenario":                "sim-replay-200x2000",
		"nodes":                   nodes,
		"runs":                    runs,
		"samples_per_arm":         samples,
		"events_fired":            events,
		"detached_cpu_seconds":    minBase,
		"profiled_cpu_seconds":    minProf,
		"events_per_sec_detached": epsDetached,
		"events_per_sec_profiled": epsProfiled,
		"overhead_pct":            overhead,
		"overhead_budget_pct":     5.0,
	}
	if overhead > 5 {
		t.Errorf("profiler overhead %.1f%% exceeds the 5%% budget", overhead)
	}
	if basePath := os.Getenv("BENCH_BASELINE"); basePath != "" {
		raw, err := os.ReadFile(basePath)
		if err != nil {
			t.Fatalf("BENCH_BASELINE: %v", err)
		}
		var baseline struct {
			EventsPerSecDetached float64 `json:"events_per_sec_detached"`
		}
		if err := json.Unmarshal(raw, &baseline); err != nil {
			t.Fatalf("BENCH_BASELINE: %v", err)
		}
		if baseline.EventsPerSecDetached > 0 {
			ratio := epsDetached / baseline.EventsPerSecDetached
			report["baseline_events_per_sec"] = baseline.EventsPerSecDetached
			report["baseline_ratio"] = ratio
			if ratio < 0.8 {
				t.Errorf("events/sec regressed to %.0f (%.0f%% of the %.0f baseline; floor is 80%%)",
					epsDetached, 100*ratio, baseline.EventsPerSecDetached)
			}
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, data)
}
