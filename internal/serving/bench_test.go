package serving

import (
	"encoding/json"
	"os"
	"testing"
)

// benchScenario is the BENCH_serving.json workload: two days, a late
// day-1 forecast, and a flash crowd focused on the storm region — sized
// so well over a million simulated user requests hit the edge.
func benchScenario(users int) ScenarioConfig {
	return ScenarioConfig{
		Days:     2,
		Users:    users,
		Products: stormProducts(),
		LateDay:  1,
		LateBy:   3 * 3600,
		Load: LoadConfig{
			Storms: []Storm{{
				Start: 86400 + 7*3600, Duration: 5 * 3600, Multiplier: 6,
				Forecast: "columbia",
			}},
		},
	}
}

func BenchmarkStormScenario(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunScenario(benchScenario(300000))
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Requests == 0 {
			b.Fatal("no requests served")
		}
	}
}

// TestEmitBenchReport runs the storm scenario with 1.2M simulated users
// and writes the serving-quality report to the file named by BENCH_OUT;
// `make bench` sets it and CI uploads the result as an artifact. Without
// BENCH_OUT the test is skipped.
//
// The report gates on the tentpole's acceptance criteria: ≥1M simulated
// user requests measured, and zero made-to-stock deadlines displaced by
// render load during the flash crowd.
func TestEmitBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("BENCH_OUT not set")
	}
	const users = 1_200_000
	res, err := RunScenario(benchScenario(users))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Requests < 1_000_000 {
		t.Errorf("requests = %d, want ≥ 1M simulated user requests", st.Requests)
	}
	if len(res.StockLate) != 0 {
		t.Errorf("made-to-stock deadlines displaced under storm load: %v", res.StockLate)
	}
	report := map[string]any{
		"scenario":                 "serving-storm-2day",
		"users":                    users,
		"days":                     2,
		"requests":                 st.Requests,
		"cache_hit_rate":           st.HitRate,
		"shed_fraction":            st.ShedFraction,
		"coalesced":                st.Coalesced,
		"renders":                  st.Renders,
		"served_stale":             st.ServedStale,
		"staleness_p50_seconds":    st.StalenessP50,
		"staleness_p99_seconds":    st.StalenessP99,
		"staleness_max_seconds":    st.StalenessMax,
		"mean_render_wait_seconds": st.MeanWait,
		"stock_late":               len(res.StockLate),
		"stock_runs":               len(res.StockCompletion),
		"min_requests_gate":        1_000_000,
		"stock_late_gate":          0,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, data)
}
