package serving

import (
	"testing"
)

// stormProducts uses a cycle-long TTL so the coalescing assertion is
// exact: within one forecast cycle each product renders at most once.
func stormProducts() []Product {
	weights := map[string]float64{"columbia": 10, "willapa": 6, "grays": 4, "fraser": 3, "yaquina": 2}
	var out []Product
	for _, f := range []string{"columbia", "fraser", "grays", "willapa", "yaquina"} {
		out = append(out, Product{Name: f + "/plot", Forecast: f, RenderWork: 300,
			Perish: 86400, Weight: weights[f]})
	}
	return out
}

// The headline acceptance scenario: a flash crowd hits while the
// forecast is deliberately late. Coalescing collapses the miss storm to
// one render per product, shedding keeps every made-to-stock deadline,
// and ≥1M simulated user requests flow through the edge.
func TestStormScenarioWithLateForecast(t *testing.T) {
	storm := ScenarioConfig{
		Days:     2,
		Users:    600000,
		Products: stormProducts(),
		LateDay:  1,
		LateBy:   3 * 3600, // day 1 data lands ~09:00 instead of 06:00
		Load: LoadConfig{
			Storms: []Storm{{
				Start: 86400 + 7*3600, Duration: 5 * 3600, Multiplier: 6,
				Forecast: "columbia", // the storm region's flash crowd
			}},
		},
	}
	res, err := RunScenario(storm)
	if err != nil {
		t.Fatal(err)
	}

	if res.TotalRequests < 1_000_000 {
		t.Fatalf("total requests = %d, want ≥ 1M", res.TotalRequests)
	}
	if res.TotalRequests != res.Stats.Requests {
		t.Fatalf("generator sent %d, edge saw %d", res.TotalRequests, res.Stats.Requests)
	}

	// Shedding + the admission oracle kept every made-to-stock deadline.
	if len(res.StockLate) != 0 {
		t.Fatalf("made-to-stock runs went late: %v (completions %v, deadlines %v)",
			res.StockLate, res.StockCompletion, res.StockDeadlines)
	}
	if len(res.StockCompletion) != storm.Days {
		t.Fatalf("stock completions = %d, want %d", len(res.StockCompletion), storm.Days)
	}

	// Coalescing: the flash-crowd cycle triggered exactly one render per
	// product despite tens of thousands of concurrent misses.
	renders := res.StormCycleRenders(1)
	for _, p := range storm.Products {
		if n := renders[p.Name]; n > 1 {
			t.Fatalf("product %s rendered %d times in the storm cycle, want ≤ 1 (all: %v)",
				p.Name, n, renders)
		}
	}
	if renders["columbia/plot"] != 1 {
		t.Fatalf("columbia/plot renders in storm cycle = %d, want exactly 1 (%v)",
			renders["columbia/plot"], renders)
	}
	if res.Stats.Coalesced < 1000 {
		t.Fatalf("coalesced = %d, want a miss storm (≥1000) collapsed onto in-flight renders",
			res.Stats.Coalesced)
	}

	// Load was genuinely shed (pre-publish day 0 has nothing to serve)
	// and the cache carried the bulk of the traffic.
	if res.Stats.Shed == 0 {
		t.Fatal("no requests shed — the scenario never stressed admission")
	}
	if res.Stats.HitRate < 0.5 {
		t.Fatalf("hit rate = %.3f, want the cache to absorb most traffic", res.Stats.HitRate)
	}

	// The late forecast shows up as staleness-at-delivery: p99 must be
	// materially worse than an on-time control run.
	control := storm
	control.LateDay = -1
	control.LateBy = 0
	control.Load.Storms = nil
	ctl, err := RunScenario(control)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctl.StockLate) != 0 {
		t.Fatalf("control stock late: %v", ctl.StockLate)
	}
	if res.Stats.StalenessP99 <= ctl.Stats.StalenessP99 {
		t.Fatalf("late-day p99 staleness %v not worse than on-time control %v",
			res.Stats.StalenessP99, ctl.Stats.StalenessP99)
	}
}

// The stock guard is what keeps deadlines: the same render-heavy load
// with the admission oracle disabled makes made-to-stock runs late.
func TestStockGuardVersusUnguarded(t *testing.T) {
	churn := func() []Product {
		var out []Product
		for _, f := range []string{"a", "b", "c", "d", "e", "f"} {
			out = append(out, Product{Name: f + "/plot", Forecast: f,
				RenderWork: 1800, Perish: 600, Weight: 1})
		}
		return out
	}
	base := ScenarioConfig{
		Days:       1,
		Users:      200000,
		Products:   churn(),
		MaxRenders: 8,
		MaxQueue:   16,
	}

	unguarded := base
	unguarded.NoStockGuard = true
	ung, err := RunScenario(unguarded)
	if err != nil {
		t.Fatal(err)
	}
	if len(ung.StockLate) == 0 {
		t.Fatal("unguarded render churn should have made the stock late")
	}

	grd, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(grd.StockLate) != 0 {
		t.Fatalf("guarded run made stock late: %v (completions %v, deadlines %v)",
			grd.StockLate, grd.StockCompletion, grd.StockDeadlines)
	}
	// The guard defers renders rather than refusing service outright:
	// renders still happen, just never at the stock's expense.
	if grd.Stats.Renders == 0 {
		t.Fatal("guarded edge rendered nothing")
	}
}

// The demand feedback signal reflects the flash crowd: the storm-hit
// forecast dominates ForecastDemand and earns the top boosted priority.
func TestDemandFeedbackFollowsStorm(t *testing.T) {
	cfg := ScenarioConfig{
		Days:     1,
		Users:    100000,
		Products: stormProducts(),
		Load: LoadConfig{
			Storms: []Storm{{Start: 8 * 3600, Duration: 6 * 3600, Multiplier: 20,
				Forecast: "yaquina"}},
		},
	}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// yaquina has the smallest weight (2/25) but the 20× storm makes it
	// the busiest forecast of the day.
	for f, d := range res.Demand {
		if f != "yaquina" && d >= res.Demand["yaquina"] {
			t.Fatalf("demand %v: storm-hit yaquina should dominate", res.Demand)
		}
	}
	base := map[string]int{"columbia": 10, "willapa": 6, "grays": 4, "fraser": 3, "yaquina": 2}
	boosted := DemandPriorities(base, res.Demand)
	if boosted["yaquina"] != 2+len(base) {
		t.Fatalf("boosted priorities %v: yaquina should take the top boost", boosted)
	}
}
