// Synthetic public demand: a diurnal base curve plus storm-event flash
// crowds. CORIE is coastal forecasting — the public hammers the site
// exactly when a storm makes the runs slowest, so the generator lets a
// flash crowd focus on one forecast's products.
package serving

import (
	"fmt"
	"math"
	"math/rand"
)

// Storm is a flash crowd: demand multiplies by Multiplier between Start
// and Start+Duration. When Forecast is set the surge hits only that
// forecast's products (everyone wants the storm region's plots).
type Storm struct {
	Start      float64
	Duration   float64
	Multiplier float64
	Forecast   string
}

// LoadConfig describes the synthetic user population.
type LoadConfig struct {
	// Users is the simulated population size.
	Users int
	// RequestsPerUserDay is the mean daily request rate per user
	// (default 2).
	RequestsPerUserDay float64
	// Step is the batching interval in seconds (default 60): one event
	// per step issues the whole step's requests via ArriveN, so 1M+ users
	// cost ~1440 events/day.
	Step float64
	// DiurnalAmplitude in [0,1) shapes the day curve (default 0.6);
	// PeakHour is the local-time maximum (default 9).
	DiurnalAmplitude float64
	PeakHour         float64
	Storms           []Storm
	// Seed makes the jittered per-product split deterministic (default 1).
	Seed int64
}

// Generator drives synthetic demand into an edge.
type Generator struct {
	edge  *Edge
	cfg   LoadConfig
	rng   *rand.Rand
	total int64
	// weights are cached per product, in catalog order.
	names   []string
	weights []float64
	byFcst  map[string][]int // product indices per forecast
	wsum    float64
}

// NewGenerator builds a generator over the edge's catalog.
func NewGenerator(e *Edge, cfg LoadConfig) (*Generator, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("serving: load needs Users > 0")
	}
	if cfg.RequestsPerUserDay <= 0 {
		cfg.RequestsPerUserDay = 2
	}
	if cfg.Step <= 0 {
		cfg.Step = 60
	}
	if cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude >= 1 {
		return nil, fmt.Errorf("serving: diurnal amplitude must be in [0,1)")
	}
	if cfg.DiurnalAmplitude == 0 {
		cfg.DiurnalAmplitude = 0.6
	}
	if cfg.PeakHour == 0 {
		cfg.PeakHour = 9
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	g := &Generator{edge: e, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)),
		byFcst: make(map[string][]int)}
	for i, name := range e.order {
		p := e.products[name].p
		w := p.Weight
		if w <= 0 {
			w = 1
		}
		g.names = append(g.names, name)
		g.weights = append(g.weights, w)
		g.byFcst[p.Forecast] = append(g.byFcst[p.Forecast], i)
		g.wsum += w
	}
	return g, nil
}

// diurnal is the day-shape factor at simulation time t.
func (g *Generator) diurnal(t float64) float64 {
	h := math.Mod(t/3600, 24)
	return 1 + g.cfg.DiurnalAmplitude*math.Cos(2*math.Pi*(h-g.cfg.PeakHour)/24)
}

// Start schedules one batch event per step until the horizon.
func (g *Generator) Start(until float64) {
	sched := g.edge.cfg.Engine.Scope("load")
	var step func()
	step = func() {
		g.emit(g.edge.cfg.Engine.Now())
		if g.edge.cfg.Engine.Now()+g.cfg.Step <= until {
			sched.After(g.cfg.Step, step)
		}
	}
	sched.After(g.cfg.Step, step)
}

// emit issues one step's worth of requests, split over products by
// weight with small multiplicative jitter.
func (g *Generator) emit(now float64) {
	base := float64(g.cfg.Users) * g.cfg.RequestsPerUserDay / 86400 * g.diurnal(now)
	// Storm surges: global multiplier, plus per-forecast focus.
	focus := make(map[string]float64)
	mult := 1.0
	for _, s := range g.cfg.Storms {
		if now < s.Start || now >= s.Start+s.Duration || s.Multiplier <= 1 {
			continue
		}
		if s.Forecast == "" {
			mult *= s.Multiplier
		} else {
			f := focus[s.Forecast]
			if f == 0 {
				f = 1
			}
			focus[s.Forecast] = f * s.Multiplier
		}
	}
	perStep := base * mult * g.cfg.Step
	for i, name := range g.names {
		share := perStep * g.weights[i] / g.wsum
		if f := focus[g.edge.products[name].p.Forecast]; f > 1 {
			share *= f
		}
		jitter := 0.9 + 0.2*g.rng.Float64()
		exp := share * jitter
		n := int64(exp)
		if g.rng.Float64() < exp-float64(n) {
			n++
		}
		if n > 0 {
			g.edge.ArriveN(name, n)
			g.total += n
		}
	}
}

// Total is the number of requests issued so far.
func (g *Generator) Total() int64 { return g.total }
