// Package serving is the public product edge of the forecast factory —
// the piece of Architecture 2 the public actually touches. Product files
// land on the public server via the netsim rsync path; this package
// models the HTTP tier in front of them: a TTL cache keyed by product and
// forecast cycle, request coalescing so a cache-miss storm after a late
// forecast triggers one render per product instead of thousands, and
// admission control with priority-tiered load shedding that consults the
// on-demand what-if oracle so render work provably never displaces a
// made-to-stock deadline. Request counts feed back into product priority
// — the closed demand loop the paper's §4.2 public server lacks.
package serving

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ondemand"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Product is one public-facing product derived from a forecast's outputs
// (a plot, an animation, a transect).
type Product struct {
	Name     string
	Forecast string
	// RenderWork is the CPU-seconds to render the product from the
	// forecast's data files on the public server.
	RenderWork float64
	// Perish is the cache TTL in seconds: how long a rendered copy stays
	// servable within one forecast cycle (the paper's perishability).
	Perish float64
	// Weight scales this product's share of synthetic public demand.
	Weight float64
}

// Staleness histogram: 60-second buckets spanning 48 hours plus one
// overflow bucket. Quantiles over millions of deliveries cost a fixed
// 2881 ints.
const (
	stalenessBucket  = 60.0
	stalenessBuckets = 48*60 + 1
)

// Config describes the edge.
type Config struct {
	Engine *sim.Engine
	// Server is the public server node renders execute on.
	Server *cluster.Node
	// Products is the public catalog.
	Products []Product
	// CycleLength is the forecast cycle in seconds (default 86400: the
	// daily forecast). A cached entry from an older cycle is stale.
	CycleLength float64
	// MaxRenders bounds concurrent renders (default: server CPUs).
	MaxRenders int
	// MaxQueue bounds the render queue; beyond it requests degrade to
	// stale copies or are shed (default 32).
	MaxQueue int
	// HotRate is the decayed requests-per-hour rate above which a product
	// counts as popular (default 600).
	HotRate float64
	// DemandTau is the demand decay time constant in seconds (default 3600).
	DemandTau float64
	// RetryInterval re-polls the admission oracle for queued renders
	// (default 60).
	RetryInterval float64
	// Stock, when set, returns the current made-to-stock state for the
	// admission oracle. A render is admitted only if DeadlineAwarePolicy
	// says every stock deadline still holds with the render's work (and
	// all in-flight renders) added to the server.
	Stock func(now float64) *ondemand.State
	// Telemetry optionally counts requests by outcome.
	Telemetry *telemetry.Registry
}

// Priority tiers for queueing and shedding: fresh beats stale, popular
// beats cold. Stale-cold work is shed first; fresh-hot renders are never
// displaced by lower tiers.
const (
	tierFreshHot = iota
	tierFreshCold
	tierStaleHot
	tierStaleCold
	tierCount
)

func tierName(t int) string {
	switch t {
	case tierFreshHot:
		return "fresh+hot"
	case tierFreshCold:
		return "fresh+cold"
	case tierStaleHot:
		return "stale+hot"
	case tierStaleCold:
		return "stale+cold"
	default:
		return fmt.Sprintf("tier%d", t)
	}
}

// entry is one cached render.
type entry struct {
	cycle      int
	dataT      float64 // data time of the rendered cycle
	renderedAt float64
	expires    float64
}

// waitBatch groups coalesced requests that arrived together.
type waitBatch struct {
	n  int64
	at float64
}

// renderJob is one render, queued or running, with its coalesced waiters.
type renderJob struct {
	ps      *productState
	cycle   int
	dataT   float64
	tier    int
	running bool
	job     *cluster.Job
	batches []waitBatch
}

func (r *renderJob) waiting() int64 {
	var n int64
	for _, b := range r.batches {
		n += b.n
	}
	return n
}

type productState struct {
	p       Product
	cycle   int // latest published cycle (-1 = nothing published yet)
	dataT   float64
	cached  *entry
	render  *renderJob // in-flight or queued render for this product
	rate    float64    // exponentially decayed requests/hour
	rateAt  float64
	demand  int64 // cumulative requests (the planner feedback signal)
	req     int64
	hits    int64
	misses  int64
	shed    int64
	stale   int64
	renders int64
	// rendersByCycle proves coalescing: renders per forecast cycle.
	rendersByCycle map[int]int64
}

// Edge is the public product-serving tier.
type Edge struct {
	mu    sync.Mutex
	cfg   Config
	sched sim.Scope

	products map[string]*productState
	order    []string // catalog order for deterministic iteration

	queue  []*renderJob
	active int
	// activeJobs feeds in-flight render remainders into the admission
	// oracle so the stock guarantee holds with renders already running.
	activeJobs map[string]*cluster.Job
	retry      sim.Timer

	requests, hits, misses, coalesced, shed, servedStale, unknown, renders int64
	shedByTier                                                             [tierCount]int64
	staleHist                                                              [stalenessBuckets]int64
	staleSum, staleMax                                                     float64
	delivered                                                              int64
	waitSum                                                                float64
	waited                                                                 int64

	mReq *telemetry.Counter
	mOut map[string]*telemetry.Counter
}

// New builds an edge over the public server.
func New(cfg Config) (*Edge, error) {
	if cfg.Engine == nil || cfg.Server == nil {
		return nil, fmt.Errorf("serving: engine and server are required")
	}
	if len(cfg.Products) == 0 {
		return nil, fmt.Errorf("serving: empty product catalog")
	}
	if cfg.CycleLength <= 0 {
		cfg.CycleLength = 86400
	}
	if cfg.MaxRenders <= 0 {
		cfg.MaxRenders = cfg.Server.CPUs()
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 32
	}
	if cfg.HotRate <= 0 {
		cfg.HotRate = 600
	}
	if cfg.DemandTau <= 0 {
		cfg.DemandTau = 3600
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 60
	}
	e := &Edge{
		cfg:        cfg,
		sched:      cfg.Engine.Scope("serving"),
		products:   make(map[string]*productState, len(cfg.Products)),
		activeJobs: make(map[string]*cluster.Job),
	}
	for _, p := range cfg.Products {
		if p.RenderWork <= 0 || p.Perish <= 0 {
			return nil, fmt.Errorf("serving: product %q needs positive RenderWork and Perish", p.Name)
		}
		if _, dup := e.products[p.Name]; dup {
			return nil, fmt.Errorf("serving: duplicate product %q", p.Name)
		}
		e.products[p.Name] = &productState{p: p, cycle: -1, rendersByCycle: make(map[int]int64)}
		e.order = append(e.order, p.Name)
	}
	if reg := cfg.Telemetry; reg != nil {
		reg.Describe("serving_requests_total", "public product requests by outcome")
		e.mOut = make(map[string]*telemetry.Counter)
		for _, o := range []string{"hit", "coalesced", "render", "stale", "shed"} {
			e.mOut[o] = reg.Counter("serving_requests_total", telemetry.Labels{"outcome": o})
		}
	}
	return e, nil
}

func (e *Edge) count(outcome string, n int64) {
	if e.mOut != nil {
		e.mOut[outcome].Add(float64(n))
	}
}

// Publish records that a new forecast cycle's data for the product is on
// the public server (rsync delivered it, or the campaign's run-log hook
// fired). dataT is the delivery time; staleness-at-delivery is measured
// against it.
func (e *Edge) Publish(product string, cycle int, dataT float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ps, ok := e.products[product]
	if !ok || cycle < ps.cycle {
		return
	}
	ps.cycle = cycle
	ps.dataT = dataT
}

// PublishForecast publishes every product derived from the forecast.
func (e *Edge) PublishForecast(forecast string, cycle int, dataT float64) {
	e.mu.Lock()
	names := make([]string, 0, 2)
	for _, name := range e.order {
		if e.products[name].p.Forecast == forecast {
			names = append(names, name)
		}
	}
	e.mu.Unlock()
	for _, n := range names {
		e.Publish(n, cycle, dataT)
	}
}

// Arrive serves one request for the product.
func (e *Edge) Arrive(product string) { e.ArriveN(product, 1) }

// ArriveN serves n simultaneous requests for the product — the batched
// form the synthetic load generator uses so millions of simulated users
// cost thousands of events, not millions.
func (e *Edge) ArriveN(product string, n int64) {
	if n <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.cfg.Engine.Now()
	ps, ok := e.products[product]
	if !ok {
		e.unknown += n
		return
	}
	e.requests += n
	ps.req += n
	ps.demand += n
	e.noteDemand(ps, now, n)

	// Fresh cache hit: latest published cycle, not past its TTL.
	if c := ps.cached; c != nil && c.cycle == ps.cycle && now < c.expires {
		e.hits += n
		ps.hits += n
		e.observeDelivery(now, c.dataT, 0, n)
		e.count("hit", n)
		return
	}

	e.misses += n
	ps.misses += n

	if ps.cycle < 0 {
		// Nothing published yet: serve a stale copy if one exists, else shed.
		e.degrade(ps, now, n)
		return
	}

	// Coalesce onto the in-flight (or queued) render for this product.
	if r := ps.render; r != nil {
		r.batches = append(r.batches, waitBatch{n: n, at: now})
		e.coalesced += n
		e.count("coalesced", n)
		return
	}

	job := &renderJob{ps: ps, cycle: ps.cycle, dataT: ps.dataT,
		tier: e.tier(ps, now), batches: []waitBatch{{n: n, at: now}}}
	if e.active < e.cfg.MaxRenders && e.admit(now, ps.p.RenderWork) {
		e.startRender(job, now)
		return
	}
	e.enqueue(job, now)
}

// tier classifies the product right now: fresh (a render would serve the
// current cycle) beats stale, hot (decayed demand above HotRate) beats cold.
func (e *Edge) tier(ps *productState, now float64) int {
	fresh := ps.cycle >= 0 && ps.cycle == int(now/e.cfg.CycleLength)
	hot := e.decayedRate(ps, now) >= e.cfg.HotRate
	switch {
	case fresh && hot:
		return tierFreshHot
	case fresh:
		return tierFreshCold
	case hot:
		return tierStaleHot
	default:
		return tierStaleCold
	}
}

func (e *Edge) noteDemand(ps *productState, now float64, n int64) {
	ps.rate = e.decayedRate(ps, now) + float64(n)*3600/e.cfg.DemandTau
	ps.rateAt = now
}

func (e *Edge) decayedRate(ps *productState, now float64) float64 {
	if now <= ps.rateAt {
		return ps.rate
	}
	return ps.rate * math.Exp(-(now-ps.rateAt)/e.cfg.DemandTau)
}

// admit asks the on-demand what-if oracle whether the server can absorb
// `work` more CPU-seconds without slipping a made-to-stock deadline. All
// in-flight renders' remaining work rides along in the trial plan so the
// guarantee is sound with renders already running.
func (e *Edge) admit(now, work float64) bool {
	if e.cfg.Stock == nil {
		return true
	}
	st := e.cfg.Stock(now)
	if st == nil || st.Stock == nil {
		return true
	}
	server := e.cfg.Server.Name()
	for label, job := range e.activeJobs {
		if job.Finished() {
			continue
		}
		name := "render:" + label
		st.Stock.Runs = append(st.Stock.Runs, core.Run{Name: name, Work: job.Remaining(), Start: now})
		st.Stock.Assign[name] = server
	}
	_, outcome := ondemand.DeadlineAwarePolicy{}.Decide(
		ondemand.Request{ID: "edge-render", Work: work}, st)
	return outcome == ondemand.Admitted
}

func (e *Edge) startRender(r *renderJob, now float64) {
	ps := r.ps
	// Render the latest published cycle, not the one current when the job
	// was queued — a queued render that waited past a publish serves the
	// newer data.
	if ps.cycle > r.cycle {
		r.cycle, r.dataT = ps.cycle, ps.dataT
	}
	r.running = true
	ps.render = r
	e.active++
	e.renders++
	ps.renders++
	ps.rendersByCycle[r.cycle]++
	e.count("render", 1)
	label := fmt.Sprintf("%s@%d", ps.p.Name, r.cycle)
	job := e.cfg.Server.Submit("render:"+label, ps.p.RenderWork, func() {
		e.finishRender(r, label)
	})
	r.job = job
	e.activeJobs[label] = job
}

func (e *Edge) finishRender(r *renderJob, label string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.cfg.Engine.Now()
	delete(e.activeJobs, label)
	e.active--
	ps := r.ps
	ps.cached = &entry{cycle: r.cycle, dataT: r.dataT, renderedAt: now,
		expires: now + ps.p.Perish}
	if ps.render == r {
		ps.render = nil
	}
	for _, b := range r.batches {
		e.observeDelivery(now, r.dataT, now-b.at, b.n)
	}
	e.drainQueue(now)
}

func (e *Edge) enqueue(r *renderJob, now float64) {
	if len(e.queue) >= e.cfg.MaxQueue {
		// Full queue: a better tier displaces the worst queued render,
		// whose waiters degrade; otherwise the newcomer degrades.
		worst := -1
		for i, q := range e.queue {
			if worst < 0 || q.tier > e.queue[worst].tier {
				worst = i
			}
		}
		if worst >= 0 && e.queue[worst].tier > r.tier {
			evicted := e.queue[worst]
			e.queue[worst] = r
			r.ps.render = r
			evicted.ps.render = nil
			e.degradeBatches(evicted, now)
			return
		}
		e.degradeBatches(r, now)
		return
	}
	r.ps.render = r
	e.queue = append(e.queue, r)
	e.armRetry()
}

// drainQueue starts queued renders in tier order while slots and the
// stock oracle allow.
func (e *Edge) drainQueue(now float64) {
	sort.SliceStable(e.queue, func(i, j int) bool {
		if e.queue[i].tier != e.queue[j].tier {
			return e.queue[i].tier < e.queue[j].tier
		}
		return e.queue[i].waiting() > e.queue[j].waiting()
	})
	for len(e.queue) > 0 && e.active < e.cfg.MaxRenders {
		r := e.queue[0]
		if !e.admit(now, r.ps.p.RenderWork) {
			break
		}
		e.queue = e.queue[1:]
		e.startRender(r, now)
	}
	if len(e.queue) > 0 {
		e.armRetry()
	}
}

func (e *Edge) armRetry() {
	if e.retry.Active() {
		return
	}
	e.retry = e.sched.After(e.cfg.RetryInterval, func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		e.drainQueue(e.cfg.Engine.Now())
	})
}

// degrade serves a stale cached copy when one exists, else sheds.
func (e *Edge) degrade(ps *productState, now float64, n int64) {
	if c := ps.cached; c != nil {
		e.servedStale += n
		ps.stale += n
		e.observeDelivery(now, c.dataT, 0, n)
		e.count("stale", n)
		return
	}
	e.shed += n
	ps.shed += n
	e.shedByTier[e.tier(ps, now)] += n
	e.count("shed", n)
}

func (e *Edge) degradeBatches(r *renderJob, now float64) {
	for _, b := range r.batches {
		e.degrade(r.ps, now, b.n)
	}
}

func (e *Edge) observeDelivery(now, dataT, wait float64, n int64) {
	staleness := now - dataT
	if staleness < 0 {
		staleness = 0
	}
	b := int(staleness / stalenessBucket)
	if b >= stalenessBuckets {
		b = stalenessBuckets - 1
	}
	e.staleHist[b] += n
	e.staleSum += staleness * float64(n)
	if staleness > e.staleMax {
		e.staleMax = staleness
	}
	e.delivered += n
	if wait > 0 {
		e.waitSum += wait * float64(n)
		e.waited += n
	}
}

func (e *Edge) quantile(q float64) float64 {
	if e.delivered == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(e.delivered)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range e.staleHist {
		cum += c
		if cum >= target {
			return float64(i+1) * stalenessBucket
		}
	}
	return e.staleMax
}

// ForecastDemand sums cumulative request counts per forecast — the
// demand signal fed back into planner and on-demand priorities.
func (e *Edge) ForecastDemand() map[string]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := make(map[string]int64)
	for _, name := range e.order {
		ps := e.products[name]
		d[ps.p.Forecast] += ps.demand
	}
	return d
}

// DemandPriorities closes the loop: forecasts ranked by observed demand
// get priority boosts on top of their configured base priority, busiest
// first — popular products get built first the next cycle.
func DemandPriorities(base map[string]int, demand map[string]int64) map[string]int {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if demand[names[i]] != demand[names[j]] {
			return demand[names[i]] > demand[names[j]]
		}
		return names[i] < names[j]
	})
	out := make(map[string]int, len(base))
	for rank, name := range names {
		out[name] = base[name] + (len(names) - rank)
	}
	return out
}

// ProductStats is one product's counters in a Stats snapshot.
type ProductStats struct {
	Product     string  `json:"product"`
	Forecast    string  `json:"forecast"`
	Requests    int64   `json:"requests"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Renders     int64   `json:"renders"`
	Shed        int64   `json:"shed"`
	ServedStale int64   `json:"served_stale"`
	DemandRate  float64 `json:"demand_rate"` // decayed requests/hour
	Cycle       int     `json:"cycle"`
	Hot         bool    `json:"hot"`
}

// Stats is a consistent snapshot of the edge.
type Stats struct {
	Now           float64          `json:"now"`
	Requests      int64            `json:"requests"`
	Hits          int64            `json:"hits"`
	Misses        int64            `json:"misses"`
	Coalesced     int64            `json:"coalesced"`
	Renders       int64            `json:"renders"`
	Shed          int64            `json:"shed"`
	ServedStale   int64            `json:"served_stale"`
	Unknown       int64            `json:"unknown"`
	HitRate       float64          `json:"hit_rate"`
	ShedFraction  float64          `json:"shed_fraction"`
	StalenessP50  float64          `json:"staleness_p50_seconds"`
	StalenessP99  float64          `json:"staleness_p99_seconds"`
	StalenessMax  float64          `json:"staleness_max_seconds"`
	MeanStaleness float64          `json:"staleness_mean_seconds"`
	MeanWait      float64          `json:"mean_wait_seconds"`
	ActiveRenders int              `json:"active_renders"`
	QueuedRenders int              `json:"queued_renders"`
	ShedByTier    map[string]int64 `json:"shed_by_tier,omitempty"`
	Products      []ProductStats   `json:"products"`
}

// Stats snapshots the edge. Safe to call from the monitor's HTTP
// goroutine while the simulation runs.
func (e *Edge) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.cfg.Engine.Now()
	st := Stats{
		Now: now, Requests: e.requests, Hits: e.hits, Misses: e.misses,
		Coalesced: e.coalesced, Renders: e.renders, Shed: e.shed,
		ServedStale: e.servedStale, Unknown: e.unknown,
		StalenessP50: e.quantile(0.50), StalenessP99: e.quantile(0.99),
		StalenessMax:  e.staleMax,
		ActiveRenders: e.active, QueuedRenders: len(e.queue),
	}
	if e.requests > 0 {
		st.HitRate = float64(e.hits) / float64(e.requests)
		st.ShedFraction = float64(e.shed) / float64(e.requests)
	}
	if e.delivered > 0 {
		st.MeanStaleness = e.staleSum / float64(e.delivered)
	}
	if e.waited > 0 {
		st.MeanWait = e.waitSum / float64(e.waited)
	}
	st.ShedByTier = make(map[string]int64)
	for t, n := range e.shedByTier {
		if n > 0 {
			st.ShedByTier[tierName(t)] = n
		}
	}
	for _, name := range e.order {
		ps := e.products[name]
		st.Products = append(st.Products, ProductStats{
			Product: ps.p.Name, Forecast: ps.p.Forecast,
			Requests: ps.req, Hits: ps.hits, Misses: ps.misses,
			Renders: ps.renders, Shed: ps.shed, ServedStale: ps.stale,
			DemandRate: e.decayedRate(ps, now), Cycle: ps.cycle,
			Hot: e.decayedRate(ps, now) >= e.cfg.HotRate,
		})
	}
	return st
}

// RenderCounts returns renders per product and cycle, keyed
// "product@cycle" — the coalescing proof: a miss storm on one product in
// one cycle must show exactly one render.
func (e *Edge) RenderCounts() map[string]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int64)
	for _, name := range e.order {
		for cycle, n := range e.products[name].rendersByCycle {
			out[fmt.Sprintf("%s@%d", name, cycle)] = n
		}
	}
	return out
}

// DefaultProducts derives the public catalog from a forecast roster: each
// forecast publishes a quick-look plot (short TTL, demand scales with
// priority) and an animation (longer render, longer TTL).
func DefaultProducts(priorities map[string]int) []Product {
	names := make([]string, 0, len(priorities))
	for n := range priorities {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Product
	for _, n := range names {
		w := float64(priorities[n])
		if w < 1 {
			w = 1
		}
		out = append(out,
			Product{Name: n + "/plot", Forecast: n, RenderWork: 300, Perish: 2 * 3600, Weight: w},
			Product{Name: n + "/anim", Forecast: n, RenderWork: 900, Perish: 6 * 3600, Weight: w / 2},
		)
	}
	return out
}
