// Schema v7: the serving edge's persisted counters. serving_stats holds
// one row per product plus one edge-total row (product = "__edge__")
// carrying the staleness quantiles and queueing aggregates. `foreman
// -serving`, /api/serving, and the campaign-end summary all render a
// Stats read back from these rows, so the surfaces cannot disagree.

package serving

import (
	"math"

	"repro/internal/statsdb"
)

// TableName is the serving edge's statsdb table.
const TableName = "serving_stats"

// EdgeRow is the product key of the edge-total row.
const EdgeRow = "__edge__"

// Schema returns the serving_stats schema: one row per product plus the
// edge-total row; quantile columns are meaningful only on the edge row.
func Schema() statsdb.Schema {
	return statsdb.Schema{
		{Name: "product", Type: statsdb.String},
		{Name: "forecast", Type: statsdb.String},
		{Name: "requests", Type: statsdb.Int},
		{Name: "hits", Type: statsdb.Int},
		{Name: "misses", Type: statsdb.Int},
		{Name: "coalesced", Type: statsdb.Int},
		{Name: "renders", Type: statsdb.Int},
		{Name: "shed", Type: statsdb.Int},
		{Name: "served_stale", Type: statsdb.Int},
		{Name: "demand_rate", Type: statsdb.Float},
		{Name: "cycle", Type: statsdb.Int},
		{Name: "hot", Type: statsdb.Bool},
		{Name: "staleness_p50", Type: statsdb.Float},
		{Name: "staleness_p99", Type: statsdb.Float},
		{Name: "staleness_max", Type: statsdb.Float},
		{Name: "staleness_mean", Type: statsdb.Float},
		{Name: "mean_wait", Type: statsdb.Float},
	}
}

// Migrations returns the serving layer's schema migrations: v7 creates
// serving_stats with its product index. Combine with the earlier layers
// (harvest v1–v2, usage v3, forensics v4, spc v5, engineprof v6).
func Migrations() []statsdb.Migration {
	return []statsdb.Migration{
		{
			Version: 7,
			Name:    "serving-tables",
			Apply: func(db *statsdb.DB) error {
				if db.Table(TableName) != nil {
					return nil
				}
				t, err := db.CreateTable(TableName, Schema())
				if err != nil {
					return err
				}
				return t.CreateIndex("product")
			},
		},
	}
}

// finite guards statsdb's NaN rejection: non-finite floats persist as 0.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// LoadReport persists one edge snapshot (created via the v7 migration
// when missing). One snapshot covers a whole campaign; load each once.
func LoadReport(db *statsdb.DB, st Stats) error {
	if _, err := statsdb.Migrate(db, Migrations()); err != nil {
		return err
	}
	t := db.Table(TableName)
	err := t.Insert([]statsdb.Value{
		statsdb.StringVal(EdgeRow),
		statsdb.StringVal(""),
		statsdb.IntVal(st.Requests),
		statsdb.IntVal(st.Hits),
		statsdb.IntVal(st.Misses),
		statsdb.IntVal(st.Coalesced),
		statsdb.IntVal(st.Renders),
		statsdb.IntVal(st.Shed),
		statsdb.IntVal(st.ServedStale),
		statsdb.FloatVal(0),
		statsdb.IntVal(0),
		statsdb.BoolVal(false),
		statsdb.FloatVal(finite(st.StalenessP50)),
		statsdb.FloatVal(finite(st.StalenessP99)),
		statsdb.FloatVal(finite(st.StalenessMax)),
		statsdb.FloatVal(finite(st.MeanStaleness)),
		statsdb.FloatVal(finite(st.MeanWait)),
	})
	if err != nil {
		return err
	}
	for _, p := range st.Products {
		err := t.Insert([]statsdb.Value{
			statsdb.StringVal(p.Product),
			statsdb.StringVal(p.Forecast),
			statsdb.IntVal(p.Requests),
			statsdb.IntVal(p.Hits),
			statsdb.IntVal(p.Misses),
			statsdb.IntVal(0),
			statsdb.IntVal(p.Renders),
			statsdb.IntVal(p.Shed),
			statsdb.IntVal(p.ServedStale),
			statsdb.FloatVal(finite(p.DemandRate)),
			statsdb.IntVal(int64(p.Cycle)),
			statsdb.BoolVal(p.Hot),
			statsdb.FloatVal(0),
			statsdb.FloatVal(0),
			statsdb.FloatVal(0),
			statsdb.FloatVal(0),
			statsdb.FloatVal(0),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadReport reconstructs a Stats from the persisted rows. Derived rates
// are recomputed from the stored counters. Returns an empty Stats when
// the table is absent.
func ReadReport(db *statsdb.DB) (Stats, error) {
	var st Stats
	t := db.Table(TableName)
	if t == nil {
		return st, nil
	}
	schema := t.Schema()
	col := make(map[string]int, len(schema))
	for i, c := range schema {
		col[c.Name] = i
	}
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		if row[col["product"]].Str() == EdgeRow {
			st.Requests = row[col["requests"]].Int()
			st.Hits = row[col["hits"]].Int()
			st.Misses = row[col["misses"]].Int()
			st.Coalesced = row[col["coalesced"]].Int()
			st.Renders = row[col["renders"]].Int()
			st.Shed = row[col["shed"]].Int()
			st.ServedStale = row[col["served_stale"]].Int()
			st.StalenessP50 = row[col["staleness_p50"]].Float()
			st.StalenessP99 = row[col["staleness_p99"]].Float()
			st.StalenessMax = row[col["staleness_max"]].Float()
			st.MeanStaleness = row[col["staleness_mean"]].Float()
			st.MeanWait = row[col["mean_wait"]].Float()
			continue
		}
		st.Products = append(st.Products, ProductStats{
			Product:     row[col["product"]].Str(),
			Forecast:    row[col["forecast"]].Str(),
			Requests:    row[col["requests"]].Int(),
			Hits:        row[col["hits"]].Int(),
			Misses:      row[col["misses"]].Int(),
			Renders:     row[col["renders"]].Int(),
			Shed:        row[col["shed"]].Int(),
			ServedStale: row[col["served_stale"]].Int(),
			DemandRate:  row[col["demand_rate"]].Float(),
			Cycle:       int(row[col["cycle"]].Int()),
			Hot:         row[col["hot"]].Bool(),
		})
	}
	if st.Requests > 0 {
		st.HitRate = float64(st.Hits) / float64(st.Requests)
		st.ShedFraction = float64(st.Shed) / float64(st.Requests)
	}
	return st, nil
}
