// End-to-end serving scenario: product files are published on the
// factory side, rsync'd over a netsim link to the public server, and
// served to a synthetic population through the edge — while the public
// server also carries made-to-stock product generation with hard
// deadlines. This is the harness behind the storm tests, `foreman
// -serving`, and BENCH_serving.json.
package serving

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/ondemand"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// ScenarioConfig sizes a self-contained serving scenario.
type ScenarioConfig struct {
	Days     int
	Users    int
	Products []Product // default: DefaultProducts over five CORIE-style forecasts
	Load     LoadConfig

	// PublishOffset is when each day's product files appear on the
	// factory side (default 6h after midnight). LateDay (0-based; -1 =
	// none; zero value means day 0 is never late — use ≥1) publishes
	// LateBy seconds late: the headline cache-miss-storm failure mode.
	PublishOffset float64
	LateDay       int
	LateBy        float64

	// ProductBytes per product file (default 8 MB) over a Bandwidth
	// bytes/s link (default 12.5e6 ≈ 100 Mb/s), scanned every
	// RsyncInterval seconds (default 300).
	ProductBytes  int64
	Bandwidth     float64
	RsyncInterval float64

	// StockWork is the made-to-stock product generation the public server
	// runs each day (default 3h of CPU), due StockDeadline seconds after
	// the day's data actually arrives (default 4h).
	StockWork     float64
	StockDeadline float64
	// NoStockGuard disables the admission oracle — the control arm that
	// shows why the guard matters.
	NoStockGuard bool

	MaxRenders int
	MaxQueue   int
	HotRate    float64
}

// ScenarioResult is one scenario's outcome.
type ScenarioResult struct {
	Stats           Stats
	TotalRequests   int64
	StockLate       []string
	StockCompletion map[string]float64
	StockDeadlines  map[string]float64
	Renders         map[string]int64 // product@cycle → render count
	Demand          map[string]int64 // per-forecast request totals
	Edge            *Edge
}

func (c *ScenarioConfig) defaults() {
	if c.Days <= 0 {
		c.Days = 2
	}
	if c.Users <= 0 {
		c.Users = 100000
	}
	if len(c.Products) == 0 {
		c.Products = DefaultProducts(map[string]int{
			"columbia": 10, "willapa": 6, "grays": 4, "fraser": 3, "yaquina": 2,
		})
	}
	if c.PublishOffset <= 0 {
		c.PublishOffset = 6 * 3600
	}
	if c.ProductBytes <= 0 {
		c.ProductBytes = 8 << 20
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = 12.5e6
	}
	if c.RsyncInterval <= 0 {
		c.RsyncInterval = 300
	}
	if c.StockWork <= 0 {
		c.StockWork = 3 * 3600
	}
	if c.StockDeadline <= 0 {
		c.StockDeadline = 4 * 3600
	}
}

// RunScenario simulates the configured days and returns the edge's
// statistics plus the made-to-stock verdict.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	cfg.defaults()
	eng := sim.NewEngine()
	cl := cluster.New(eng)
	server := cl.AddNode("public-server", 2, 1.0)
	sched := eng.Scope("scenario")

	srcFS := vfs.New(eng.Now)
	dstFS := vfs.New(eng.Now)
	link := netsim.NewLink(eng, "wan", cfg.Bandwidth)

	// Made-to-stock product generation on the public server, due a fixed
	// window after each day's data arrives.
	stockJobs := make(map[string]*cluster.Job)
	completions := make(map[string]float64)
	deadlines := make(map[string]float64)
	serverInfo := []core.NodeInfo{{Name: server.Name(), CPUs: server.CPUs(), Speed: server.Speed()}}

	var edge *Edge

	// expected maps a delivered path to its product and cycle; Publish
	// fires when the destination copy is complete.
	type target struct {
		product string
		cycle   int
	}
	expected := make(map[string]target, cfg.Days*len(cfg.Products))
	observer := func(t float64, path string, destSize int64) {
		if destSize >= cfg.ProductBytes {
			if tg, ok := expected[path]; ok {
				edge.Publish(tg.product, tg.cycle, t)
				delete(expected, path)
			}
		}
	}
	rsync := netsim.NewRsync(eng, srcFS, dstFS, link, cfg.RsyncInterval, []string{"/products"}, observer)

	for d := 0; d < cfg.Days; d++ {
		d := d
		pub := float64(d)*86400 + cfg.PublishOffset
		if d == cfg.LateDay && cfg.LateBy > 0 {
			pub += cfg.LateBy
		}
		for _, p := range cfg.Products {
			path := fmt.Sprintf("/products/%s/day%d", p.Name, d)
			expected[path] = target{product: p.Name, cycle: d}
			sched.At(pub, func() {
				if err := srcFS.Append(path, cfg.ProductBytes); err != nil {
					panic(err)
				}
			})
		}
		name := fmt.Sprintf("stock-d%d", d)
		sched.At(pub, func() {
			deadlines[name] = eng.Now() + cfg.StockDeadline
			stockJobs[name] = server.Submit("stock:"+name, cfg.StockWork, func() {
				completions[name] = eng.Now()
				delete(stockJobs, name)
			})
		})
	}

	var stockState func(now float64) *ondemand.State
	if !cfg.NoStockGuard {
		stockState = func(now float64) *ondemand.State {
			plan := &core.Plan{Nodes: serverInfo, Assign: map[string]string{}}
			for name, job := range stockJobs {
				plan.Runs = append(plan.Runs, core.Run{
					Name: name, Work: job.Remaining(), Start: now, Deadline: deadlines[name],
				})
				plan.Assign[name] = server.Name()
			}
			return &ondemand.State{
				Now:    now,
				Nodes:  serverInfo,
				Stock:  plan,
				Active: map[string]int{server.Name(): server.Active()},
			}
		}
	}

	var err error
	edge, err = New(Config{
		Engine:     eng,
		Server:     server,
		Products:   cfg.Products,
		MaxRenders: cfg.MaxRenders,
		MaxQueue:   cfg.MaxQueue,
		HotRate:    cfg.HotRate,
		Stock:      stockState,
	})
	if err != nil {
		return nil, err
	}

	load := cfg.Load
	load.Users = cfg.Users
	gen, err := NewGenerator(edge, load)
	if err != nil {
		return nil, err
	}
	horizon := float64(cfg.Days) * 86400
	gen.Start(horizon)
	rsync.Start()
	eng.RunUntil(horizon)
	rsync.Stop()

	res := &ScenarioResult{
		Stats:           edge.Stats(),
		TotalRequests:   gen.Total(),
		StockCompletion: completions,
		StockDeadlines:  deadlines,
		Renders:         edge.RenderCounts(),
		Demand:          edge.ForecastDemand(),
		Edge:            edge,
	}
	// Stock verdict: missed deadline, or never completed by the horizon.
	for name, dl := range deadlines {
		c, done := completions[name]
		if !done || c > dl {
			res.StockLate = append(res.StockLate, name)
		}
	}
	// Stock submitted but never even started (publish past horizon) is
	// not judged — the scenario horizon ends at the last simulated day.
	sort.Strings(res.StockLate)
	return res, nil
}

// StormCycleRenders extracts render counts for one cycle, keyed by
// product — the coalescing proof for the flash-crowd cycle.
func (r *ScenarioResult) StormCycleRenders(cycle int) map[string]int64 {
	suffix := "@" + strconv.Itoa(cycle)
	out := make(map[string]int64)
	for k, n := range r.Renders {
		if strings.HasSuffix(k, suffix) {
			out[strings.TrimSuffix(k, suffix)] = n
		}
	}
	return out
}
