// Terminal rendering for the serving edge — the `foreman -serving` and
// campaign-end summary surface. The same Stats the JSON endpoint serves
// renders here as an edge summary, a per-product table, and the demand
// feedback view.

package serving

import (
	"fmt"
	"sort"
	"strings"
)

func fmtDur(s float64) string {
	switch {
	case s >= 3600:
		return fmt.Sprintf("%.1fh", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1fm", s/60)
	default:
		return fmt.Sprintf("%.0fs", s)
	}
}

// SummaryTable renders the edge-wide counters and staleness quantiles.
func SummaryTable(st Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d  hits %d (%.1f%%)  coalesced %d  renders %d\n",
		st.Requests, st.Hits, 100*st.HitRate, st.Coalesced, st.Renders)
	fmt.Fprintf(&b, "shed %d (%.2f%%)  served-stale %d  queue %d active %d\n",
		st.Shed, 100*st.ShedFraction, st.ServedStale, st.QueuedRenders, st.ActiveRenders)
	fmt.Fprintf(&b, "staleness-at-delivery p50 %s  p99 %s  max %s  mean %s\n",
		fmtDur(st.StalenessP50), fmtDur(st.StalenessP99),
		fmtDur(st.StalenessMax), fmtDur(st.MeanStaleness))
	if st.MeanWait > 0 {
		fmt.Fprintf(&b, "mean render wait %s\n", fmtDur(st.MeanWait))
	}
	if len(st.ShedByTier) > 0 {
		tiers := make([]string, 0, len(st.ShedByTier))
		for t := range st.ShedByTier {
			tiers = append(tiers, t)
		}
		sort.Strings(tiers)
		parts := make([]string, 0, len(tiers))
		for _, t := range tiers {
			parts = append(parts, fmt.Sprintf("%s %d", t, st.ShedByTier[t]))
		}
		fmt.Fprintf(&b, "shed by tier: %s\n", strings.Join(parts, "  "))
	}
	return b.String()
}

// ProductTable renders the top-n products by request volume.
func ProductTable(st Stats, n int) string {
	prods := append([]ProductStats(nil), st.Products...)
	sort.Slice(prods, func(i, j int) bool {
		if prods[i].Requests != prods[j].Requests {
			return prods[i].Requests > prods[j].Requests
		}
		return prods[i].Product < prods[j].Product
	})
	if n > 0 && len(prods) > n {
		prods = prods[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-12s %10s %6s %7s %6s %6s %9s %4s\n",
		"product", "forecast", "requests", "hit%", "renders", "shed", "stale", "rate/h", "hot")
	for _, p := range prods {
		hitPct := 0.0
		if p.Requests > 0 {
			hitPct = 100 * float64(p.Hits) / float64(p.Requests)
		}
		hot := ""
		if p.Hot {
			hot = "HOT"
		}
		fmt.Fprintf(&b, "%-22s %-12s %10d %5.1f%% %7d %6d %6d %9.0f %4s\n",
			p.Product, p.Forecast, p.Requests, hitPct, p.Renders, p.Shed,
			p.ServedStale, p.DemandRate, hot)
	}
	if len(prods) == 0 {
		b.WriteString("(no products)\n")
	}
	return b.String()
}

// DemandTable renders the closed feedback loop: forecasts ranked by
// observed public demand, with base priorities and the demand-boosted
// priorities the next planning cycle would use.
func DemandTable(base map[string]int, demand map[string]int64) string {
	boosted := DemandPriorities(base, demand)
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if demand[names[i]] != demand[names[j]] {
			return demand[names[i]] > demand[names[j]]
		}
		return names[i] < names[j]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %9s %9s\n", "forecast", "demand", "base-pri", "next-pri")
	for _, n := range names {
		fmt.Fprintf(&b, "%-12s %12d %9d %9d\n", n, demand[n], base[n], boosted[n])
	}
	return b.String()
}
