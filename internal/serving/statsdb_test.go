package serving

import (
	"testing"

	"repro/internal/statsdb"
)

func TestStatsRoundTrip(t *testing.T) {
	db := statsdb.NewDB()
	st := Stats{
		Requests: 1000, Hits: 700, Misses: 300, Coalesced: 150, Renders: 12,
		Shed: 40, ServedStale: 9,
		StalenessP50: 1800, StalenessP99: 14400, StalenessMax: 20000,
		MeanStaleness: 2500, MeanWait: 120,
		Products: []ProductStats{
			{Product: "x/plot", Forecast: "x", Requests: 600, Hits: 500, Misses: 100,
				Renders: 7, Shed: 30, ServedStale: 9, DemandRate: 321.5, Cycle: 2, Hot: true},
			{Product: "x/anim", Forecast: "x", Requests: 400, Hits: 200, Misses: 200,
				Renders: 5, Shed: 10, Cycle: 1},
		},
	}
	if err := LoadReport(db, st); err != nil {
		t.Fatal(err)
	}
	if v := statsdb.SchemaVersion(db); v != 7 {
		t.Fatalf("schema version = %d, want 7", v)
	}
	got, err := ReadReport(db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests != st.Requests || got.Hits != st.Hits || got.Coalesced != st.Coalesced ||
		got.Renders != st.Renders || got.Shed != st.Shed || got.ServedStale != st.ServedStale {
		t.Fatalf("edge counters round-trip mismatch: %+v", got)
	}
	if got.StalenessP99 != st.StalenessP99 || got.StalenessP50 != st.StalenessP50 ||
		got.MeanWait != st.MeanWait {
		t.Fatalf("staleness round-trip mismatch: %+v", got)
	}
	if got.HitRate != 0.7 {
		t.Fatalf("hit rate recomputed = %v, want 0.7", got.HitRate)
	}
	if len(got.Products) != 2 {
		t.Fatalf("products = %d, want 2", len(got.Products))
	}
	for i, p := range got.Products {
		w := st.Products[i]
		if p != w {
			t.Fatalf("product %d round-trip: got %+v want %+v", i, p, w)
		}
	}
}

func TestReadReportEmptyDB(t *testing.T) {
	st, err := ReadReport(statsdb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 0 || len(st.Products) != 0 {
		t.Fatalf("empty db yielded %+v", st)
	}
}

func TestRenderTables(t *testing.T) {
	st := Stats{
		Requests: 10, Hits: 5, HitRate: 0.5, Shed: 1,
		ShedByTier: map[string]int64{"stale+cold": 1},
		Products: []ProductStats{
			{Product: "x/plot", Forecast: "x", Requests: 10, Hits: 5, Hot: true},
		},
	}
	if out := SummaryTable(st); out == "" {
		t.Fatal("empty summary")
	}
	if out := ProductTable(st, 5); out == "" {
		t.Fatal("empty product table")
	}
	if out := ProductTable(Stats{}, 5); out == "" {
		t.Fatal("empty-catalog table should still render a placeholder")
	}
	if out := DemandTable(map[string]int{"x": 1}, map[string]int64{"x": 10}); out == "" {
		t.Fatal("empty demand table")
	}
}
