package serving

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func onePlot() []Product {
	return []Product{{Name: "x/plot", Forecast: "x", RenderWork: 100, Perish: 3600, Weight: 1}}
}

func testEdge(t *testing.T, products []Product, tweak func(*Config)) (*sim.Engine, *Edge) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng)
	srv := cl.AddNode("public-server", 2, 1)
	cfg := Config{Engine: eng, Server: srv, Products: products}
	if tweak != nil {
		tweak(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, e
}

func TestMissRendersThenHits(t *testing.T) {
	eng, e := testEdge(t, onePlot(), nil)
	eng.At(10, func() { e.Publish("x/plot", 0, 10) })
	eng.At(20, func() { e.Arrive("x/plot") })  // miss → render (done at 120)
	eng.At(500, func() { e.Arrive("x/plot") }) // fresh cache hit
	eng.Run()
	st := e.Stats()
	if st.Renders != 1 || st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("renders/misses/hits = %d/%d/%d, want 1/1/1", st.Renders, st.Misses, st.Hits)
	}
	// The hit at t=500 served data published at t=10: staleness 490.
	if st.StalenessMax < 490 || st.StalenessMax > 500 {
		t.Fatalf("staleness max = %v, want ≈490", st.StalenessMax)
	}
	if st.MeanWait != 100 {
		t.Fatalf("mean render wait = %v, want 100", st.MeanWait)
	}
}

func TestTTLExpiryForcesRerender(t *testing.T) {
	prods := onePlot()
	prods[0].Perish = 300
	eng, e := testEdge(t, prods, nil)
	eng.At(10, func() { e.Publish("x/plot", 0, 10) })
	eng.At(20, func() { e.Arrive("x/plot") })  // render done 120, expires 420
	eng.At(500, func() { e.Arrive("x/plot") }) // expired → re-render same cycle
	eng.Run()
	st := e.Stats()
	if st.Renders != 2 || st.Hits != 0 {
		t.Fatalf("renders/hits = %d/%d, want 2/0", st.Renders, st.Hits)
	}
	if n := e.RenderCounts()["x/plot@0"]; n != 2 {
		t.Fatalf("renders for cycle 0 = %d, want 2", n)
	}
}

func TestCoalescingCollapsesConcurrentMisses(t *testing.T) {
	eng, e := testEdge(t, onePlot(), nil)
	eng.At(10, func() { e.Publish("x/plot", 0, 10) })
	eng.At(20, func() { e.Arrive("x/plot") })       // starts the render
	eng.At(50, func() { e.ArriveN("x/plot", 500) }) // coalesce
	eng.At(60, func() { e.Arrive("x/plot") })       // coalesce
	eng.Run()
	st := e.Stats()
	if st.Renders != 1 {
		t.Fatalf("renders = %d, want 1 (singleflight)", st.Renders)
	}
	if st.Coalesced != 501 {
		t.Fatalf("coalesced = %d, want 501", st.Coalesced)
	}
	if st.Shed != 0 || st.ServedStale != 0 {
		t.Fatalf("shed/stale = %d/%d, want 0/0", st.Shed, st.ServedStale)
	}
}

func TestNewCycleInvalidatesCache(t *testing.T) {
	prods := onePlot()
	prods[0].Perish = 7 * 86400 // TTL never expires within the test
	eng, e := testEdge(t, prods, nil)
	eng.At(10, func() { e.Publish("x/plot", 0, 10) })
	eng.At(20, func() { e.Arrive("x/plot") })
	eng.At(86400+100, func() { e.Publish("x/plot", 1, 86400+100) })
	eng.At(86400+200, func() { e.Arrive("x/plot") }) // cached cycle 0 is stale now
	eng.Run()
	st := e.Stats()
	if st.Renders != 2 {
		t.Fatalf("renders = %d, want 2 (new cycle re-renders)", st.Renders)
	}
	rc := e.RenderCounts()
	if rc["x/plot@0"] != 1 || rc["x/plot@1"] != 1 {
		t.Fatalf("render counts = %v, want one per cycle", rc)
	}
}

func TestShedWhenNothingPublished(t *testing.T) {
	eng, e := testEdge(t, onePlot(), nil)
	eng.At(20, func() { e.ArriveN("x/plot", 7) })
	eng.Run()
	st := e.Stats()
	if st.Shed != 7 || st.Renders != 0 {
		t.Fatalf("shed/renders = %d/%d, want 7/0", st.Shed, st.Renders)
	}
	if st.ShedByTier["stale+cold"] != 7 {
		t.Fatalf("shed by tier = %v, want 7 stale+cold", st.ShedByTier)
	}
}

// A hot fresh product displaces a cold one from a full render queue; the
// displaced waiters shed.
func TestQueueDisplacementPrefersHotTier(t *testing.T) {
	prods := []Product{
		{Name: "a/plot", Forecast: "a", RenderWork: 100, Perish: 3600, Weight: 1},
		{Name: "b/plot", Forecast: "b", RenderWork: 100, Perish: 3600, Weight: 1},
		{Name: "c/plot", Forecast: "c", RenderWork: 100, Perish: 3600, Weight: 1},
	}
	eng, e := testEdge(t, prods, func(c *Config) {
		c.MaxRenders = 1
		c.MaxQueue = 1
		c.HotRate = 50
	})
	// Build c's demand rate while nothing is published (those shed).
	eng.At(5, func() { e.ArriveN("c/plot", 1000) })
	eng.At(10, func() {
		e.Publish("a/plot", 0, 10)
		e.Publish("b/plot", 0, 10)
		e.Publish("c/plot", 0, 10)
	})
	eng.At(20, func() { e.Arrive("a/plot") }) // occupies the render slot
	eng.At(30, func() { e.Arrive("b/plot") }) // queued (cold)
	eng.At(40, func() { e.Arrive("c/plot") }) // hot: displaces b
	eng.Run()
	st := e.Stats()
	var a, b, c ProductStats
	for _, p := range st.Products {
		switch p.Product {
		case "a/plot":
			a = p
		case "b/plot":
			b = p
		case "c/plot":
			c = p
		}
	}
	if b.Shed != 1 {
		t.Fatalf("b shed = %d, want 1 (displaced from the queue)", b.Shed)
	}
	if a.Renders != 1 || c.Renders != 1 || b.Renders != 0 {
		t.Fatalf("renders a/b/c = %d/%d/%d, want 1/0/1", a.Renders, b.Renders, c.Renders)
	}
	if st.QueuedRenders != 0 || st.ActiveRenders != 0 {
		t.Fatalf("queue/active = %d/%d at end, want 0/0", st.QueuedRenders, st.ActiveRenders)
	}
}

func TestPublishOlderCycleIgnored(t *testing.T) {
	eng, e := testEdge(t, onePlot(), nil)
	eng.At(10, func() {
		e.Publish("x/plot", 1, 10)
		e.Publish("x/plot", 0, 10) // stale publish must not roll back
	})
	eng.Run()
	if got := e.Stats().Products[0].Cycle; got != 1 {
		t.Fatalf("cycle = %d, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng)
	srv := cl.AddNode("pub", 2, 1)
	cases := []Config{
		{Engine: eng, Server: srv},
		{Engine: eng, Server: srv, Products: []Product{{Name: "p", RenderWork: 0, Perish: 60}}},
		{Engine: eng, Server: srv, Products: []Product{
			{Name: "p", RenderWork: 1, Perish: 60},
			{Name: "p", RenderWork: 1, Perish: 60},
		}},
		{Server: srv, Products: onePlot()},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestUnknownProductCounted(t *testing.T) {
	eng, e := testEdge(t, onePlot(), nil)
	eng.At(20, func() { e.ArriveN("nope", 3) })
	eng.Run()
	if st := e.Stats(); st.Unknown != 3 || st.Requests != 0 {
		t.Fatalf("unknown/requests = %d/%d, want 3/0", st.Unknown, st.Requests)
	}
}

func TestDemandPriorities(t *testing.T) {
	base := map[string]int{"a": 5, "b": 3, "c": 1}
	demand := map[string]int64{"c": 100, "a": 10, "b": 1}
	got := DemandPriorities(base, demand)
	want := map[string]int{"c": 4, "a": 7, "b": 4}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("priorities = %v, want %v", got, want)
		}
	}
}

func TestDefaultProductsDeterministic(t *testing.T) {
	a := DefaultProducts(map[string]int{"x": 2, "y": 1})
	b := DefaultProducts(map[string]int{"y": 1, "x": 2})
	if len(a) != 4 || len(a) != len(b) {
		t.Fatalf("catalog sizes = %d/%d, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalog order not deterministic: %v vs %v", a[i], b[i])
		}
	}
}

func TestForecastDemandAggregatesProducts(t *testing.T) {
	prods := DefaultProducts(map[string]int{"x": 2})
	eng, e := testEdge(t, prods, nil)
	eng.At(10, func() {
		e.ArriveN("x/plot", 5)
		e.ArriveN("x/anim", 3)
	})
	eng.Run()
	if d := e.ForecastDemand(); d["x"] != 8 {
		t.Fatalf("forecast demand = %v, want x:8", d)
	}
}
