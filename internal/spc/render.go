// Terminal rendering for the SPC report — the `foreman -spc` surface.
// The same Report the JSON endpoint serves renders here as a standings
// table, per-series control charts, and a changepoint log.

package spc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plot"
)

// SummaryTable renders one line per monitored series: its baseline,
// limits, judged-point and violation counts, changepoints, and whether
// it is currently in control.
func SummaryTable(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-24s %5s %10s %10s %5s %6s %-8s\n",
		"kind", "subject", "n", "center", "sigma", "viol", "shift", "state")
	for i := range rep.Series {
		sr := &rep.Series[i]
		state := "in"
		if sr.Out {
			state = "OUT"
		}
		judged := 0
		for j := range sr.Points {
			if !sr.Points[j].Learning {
				judged++
			}
		}
		if judged == 0 {
			state = "learning"
		}
		fmt.Fprintf(&b, "%-15s %-24s %5d %10.4g %10.4g %5d %6d %-8s\n",
			sr.Kind, sr.Subject, len(sr.Points), sr.Center, sr.Sigma,
			sr.Violations, len(sr.Changepoints), state)
	}
	if len(rep.Series) == 0 {
		b.WriteString("(no monitored series)\n")
	}
	return b.String()
}

// SeriesChart renders one series as a terminal control chart: values
// against sequence, limits overlaid, violations and changepoints marked.
func SeriesChart(sr *SeriesReport, width, height int) string {
	c := plot.ControlChart{
		Title:  fmt.Sprintf("%s / %s", sr.Kind, sr.Subject),
		XLabel: "observation",
		YLabel: sr.Kind,
		Width:  width,
		Height: height,
		Center: sr.Center,
		UCL:    sr.UCL,
		LCL:    sr.LCL,
	}
	for _, p := range sr.Points {
		c.X = append(c.X, float64(p.Seq))
		c.Y = append(c.Y, p.Value)
		c.Out = append(c.Out, p.Out)
		c.Learning = append(c.Learning, p.Learning)
	}
	for _, cp := range sr.Changepoints {
		c.Changepoints = append(c.Changepoints, float64(cp.Seq))
	}
	return c.Render()
}

// ChangepointTable renders every changepoint in the report, ordered by
// detection day then series.
func ChangepointTable(rep *Report) string {
	type row struct {
		kind, subject string
		cp            Changepoint
	}
	var rows []row
	for i := range rep.Series {
		for _, cp := range rep.Series[i].Changepoints {
			rows = append(rows, row{rep.Series[i].Kind, rep.Series[i].Subject, cp})
		}
	}
	if len(rows) == 0 {
		return "(no changepoints)\n"
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cp.DetectedDay != rows[j].cp.DetectedDay {
			return rows[i].cp.DetectedDay < rows[j].cp.DetectedDay
		}
		if rows[i].kind != rows[j].kind {
			return rows[i].kind < rows[j].kind
		}
		return rows[i].subject < rows[j].subject
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-24s %5s %8s %-13s %10s %10s %8s\n",
		"kind", "subject", "day", "detected", "cause", "before", "after", "shift")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %-24s %5d %8d %-13s %10.4g %10.4g %+8.3g\n",
			r.kind, r.subject, r.cp.Day, r.cp.DetectedDay, r.cp.Cause,
			r.cp.Before, r.cp.After, r.cp.Shift())
	}
	return b.String()
}

// Subjects returns the distinct subjects monitored for a kind, sorted.
func Subjects(rep *Report, kind string) []string {
	seen := make(map[string]bool)
	var out []string
	for i := range rep.Series {
		if rep.Series[i].Kind != kind {
			continue
		}
		if s := rep.Series[i].Subject; !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// FilterSubject returns a report restricted to one subject (plus the
// factory-wide series, which belong to every view); "" or "all" returns
// rep unchanged.
func FilterSubject(rep *Report, subject string) *Report {
	if subject == "" || subject == "all" {
		return rep
	}
	out := &Report{}
	for i := range rep.Series {
		sr := rep.Series[i]
		if sr.Subject == subject || sr.Subject == SubjectFactory {
			out.Series = append(out.Series, sr)
		}
	}
	return out
}
