// Package spc is the statistical-process-control observatory over the
// factory's vital signs — the "control-chart-style analysis of run-time
// series" §4.3 of the paper sketches, run online instead of post-hoc.
// Every series the earlier observability layers measure (per-forecast run
// time, estimate error, plan-vs-actual drift, daily lateness, per-node
// mean CPU share) streams through one engine that keeps, per series:
//
//   - a Shewhart individuals chart (center ± K·sigma, sigma estimated
//     from the mean moving range, the standard individuals/moving-range
//     pairing) with the Western Electric run rules,
//   - an EWMA chart with time-varying limits (sensitive to small
//     sustained shifts the Shewhart limits miss),
//   - a two-sided standardized CUSUM whose decision doubles as a
//     changepoint detector: when an arm crosses the decision interval the
//     shift is dated to the point where that arm last sat at zero — the
//     paper's user-supplied code-version factor becomes a detected
//     changepoint — and the series re-baselines itself from the
//     post-change points.
//
// A series is out of control while its latest judged point violates any
// rule and back in control at the next clean point, the same
// firing→resolved shape the monitor's alert book keeps. Events stream to
// a callback seam (the replan-trigger hook uncertainty-aware planning
// will consume); the full state persists as statsdb schema v5
// (control_points, changepoints) so `foreman -spc`, /api/spc, and the
// dashboard panel all render one ReadReport.
package spc

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Series kinds — the factory vital signs under control. Subject is the
// forecast name for run_time/estimate_error/drift, the node name for
// node_share, and SubjectFactory for the aggregate daily-lateness series.
const (
	KindRunTime       = "run_time"       // completed-run walltime, seconds
	KindEstimateError = "estimate_error" // actual minus estimated walltime, seconds
	KindDrift         = "drift"          // actual minus predicted completion, seconds
	KindLateness      = "lateness"       // summed positive lateness per day, seconds
	KindNodeShare     = "node_share"     // per-node daily mean CPU share in [0, 1]
)

// SubjectFactory is the subject of factory-wide series (daily lateness).
const SubjectFactory = "factory"

// Kinds lists the series kinds in canonical report order.
func Kinds() []string {
	return []string{KindRunTime, KindEstimateError, KindDrift, KindLateness, KindNodeShare}
}

// Rule names, as recorded on Point.Rules and persisted in the rules
// column. we1–we4 are the Western Electric run rules on the Shewhart
// chart; ewma and cusum are the auxiliary charts' own signals.
const (
	RuleWE1   = "we1"   // one point beyond K sigma
	RuleWE2   = "we2"   // two of three consecutive beyond 2 sigma, same side
	RuleWE3   = "we3"   // four of five consecutive beyond 1 sigma, same side
	RuleWE4   = "we4"   // eight consecutive on the same side of center
	RuleEWMA  = "ewma"  // EWMA statistic beyond its control limits
	RuleCUSUM = "cusum" // CUSUM decision interval crossed (level shift)
)

// RuleSet is the set of rules a point violated, stored as a bit set.
// Points keep their verdicts this way — not as a []string — so the
// accumulated per-series point arrays contain no pointers: the GC
// classifies the backing arrays as noscan and the chart history, which
// only grows over a campaign, costs nothing on every mark pass. The set
// marshals to and from the same JSON string array the dashboard and
// /api/spc clients always saw.
type RuleSet uint8

const (
	ruleBitWE1 RuleSet = 1 << iota
	ruleBitWE2
	ruleBitWE3
	ruleBitWE4
	ruleBitEWMA
	ruleBitCUSUM
)

// ruleBitNames maps bits to names in canonical report order.
var ruleBitNames = []struct {
	bit  RuleSet
	name string
}{
	{ruleBitWE1, RuleWE1},
	{ruleBitWE2, RuleWE2},
	{ruleBitWE3, RuleWE3},
	{ruleBitWE4, RuleWE4},
	{ruleBitEWMA, RuleEWMA},
	{ruleBitCUSUM, RuleCUSUM},
}

// ParseRuleSet builds a set from rule names; unknown names are ignored.
func ParseRuleSet(names ...string) RuleSet {
	var r RuleSet
	for _, n := range names {
		for _, b := range ruleBitNames {
			if b.name == n {
				r |= b.bit
			}
		}
	}
	return r
}

// Has reports whether the named rule is in the set.
func (r RuleSet) Has(name string) bool { return r&ParseRuleSet(name) != 0 }

// Names returns the violated rule names in canonical order, nil when
// the set is empty.
func (r RuleSet) Names() []string {
	if r == 0 {
		return nil
	}
	names := make([]string, 0, len(ruleBitNames))
	for _, b := range ruleBitNames {
		if r&b.bit != 0 {
			names = append(names, b.name)
		}
	}
	return names
}

// String renders the set comma-joined ("" when empty) — the form the
// statsdb rules column stores.
func (r RuleSet) String() string { return strings.Join(r.Names(), ",") }

// MarshalJSON writes the set as a string array, the wire shape Rules
// had when it was a []string.
func (r RuleSet) MarshalJSON() ([]byte, error) {
	names := r.Names()
	if names == nil {
		names = []string{}
	}
	return json.Marshal(names)
}

// UnmarshalJSON accepts the string-array form.
func (r *RuleSet) UnmarshalJSON(data []byte) error {
	var names []string
	if err := json.Unmarshal(data, &names); err != nil {
		return err
	}
	*r = ParseRuleSet(names...)
	return nil
}

// Params tune the control charts. The zero value is unusable; start from
// DefaultParams. Sigma-denominated knobs are in units of the series'
// estimated sigma.
type Params struct {
	// SigmaK places the Shewhart individuals limits (default 3).
	SigmaK float64
	// EWMALambda is the EWMA smoothing weight (default 0.2) and EWMAK its
	// limit multiplier (default 3); limits are time-varying, so the chart
	// is exact from the first judged point.
	EWMALambda float64
	EWMAK      float64
	// CUSUMSlack is the CUSUM reference value k (default 0.5: tuned for
	// one-sigma shifts) and CUSUMDecision the decision interval h
	// (default 5).
	CUSUMSlack    float64
	CUSUMDecision float64
	// CUSUMClamp bounds each standardized deviation fed to the CUSUM
	// (default 4): one wild outlier — a node failure day — cannot cross
	// the decision interval alone, a sustained shift still accumulates.
	CUSUMClamp float64
	// MinShiftRun is the minimum number of consecutive points an arm must
	// span before a decision is declared a changepoint (default 5), the
	// second guard separating level shifts from transients. The last
	// MinShiftRun points must also all sit beyond the slack on the arm's
	// side: a transient excursion — a failed node's two- or three-day
	// backlog — banks enough in the arm to cross the decision interval,
	// but once the series reverts the recent evidence goes quiet and no
	// changepoint is declared while the arm drains.
	MinShiftRun int
	// MinBaseline is how many points a series collects before freezing
	// its first baseline and judging further points (default 8). Seeded
	// baselines (SetBaseline / Seed) skip the learning phase.
	MinBaseline int
}

// DefaultParams returns the standard chart tuning.
func DefaultParams() Params {
	return Params{
		SigmaK:        3,
		EWMALambda:    0.2,
		EWMAK:         3,
		CUSUMSlack:    0.5,
		CUSUMDecision: 5,
		CUSUMClamp:    4,
		MinShiftRun:   5,
		MinBaseline:   8,
	}
}

// normalize fills unset (zero) parameters with their defaults.
func (p Params) normalize() Params {
	d := DefaultParams()
	if p.SigmaK <= 0 {
		p.SigmaK = d.SigmaK
	}
	if p.EWMALambda <= 0 || p.EWMALambda > 1 {
		p.EWMALambda = d.EWMALambda
	}
	if p.EWMAK <= 0 {
		p.EWMAK = d.EWMAK
	}
	if p.CUSUMSlack <= 0 {
		p.CUSUMSlack = d.CUSUMSlack
	}
	if p.CUSUMDecision <= 0 {
		p.CUSUMDecision = d.CUSUMDecision
	}
	if p.CUSUMClamp <= 0 {
		p.CUSUMClamp = d.CUSUMClamp
	}
	if p.MinShiftRun <= 0 {
		p.MinShiftRun = d.MinShiftRun
	}
	if p.MinBaseline < 2 {
		p.MinBaseline = d.MinBaseline
	}
	return p
}

// d2 is the control-chart constant E[MR]/sigma for moving ranges of two
// consecutive points; sigma-hat = mean moving range / d2.
const d2 = 1.128

// Point is one observation as judged by its series' charts at the time
// it arrived. Learning points predate the baseline and carry no verdict.
type Point struct {
	Seq   int     `json:"seq"`
	Day   int     `json:"day"`
	T     float64 `json:"t"`
	Value float64 `json:"value"`

	Center float64 `json:"center"`
	Sigma  float64 `json:"sigma"`
	UCL    float64 `json:"ucl"`
	LCL    float64 `json:"lcl"`
	Z      float64 `json:"z"`

	EWMA      float64 `json:"ewma"`
	EWMAUpper float64 `json:"ewma_upper"`
	EWMALower float64 `json:"ewma_lower"`
	CusumPos  float64 `json:"cusum_pos"`
	CusumNeg  float64 `json:"cusum_neg"`

	// Rules is the set of violated rules (empty = clean); Out mirrors
	// !Rules.Empty(). Learning marks baseline-collection points.
	Rules    RuleSet `json:"rules,omitempty"`
	Out      bool    `json:"out,omitempty"`
	Learning bool    `json:"learning,omitempty"`
}

// Changepoint is one detected (or history-supplied) level shift in a
// series: the mean moved from Before to After starting at Seq/Day, and
// the CUSUM noticed at DetectedSeq/DetectedDay. Cause is "detected" for
// CUSUM decisions and "code_version" for shifts aligned with a
// code-version change in harvested history.
type Changepoint struct {
	Seq         int     `json:"seq"`
	Day         int     `json:"day"`
	T           float64 `json:"t"`
	Cause       string  `json:"cause"`
	Before      float64 `json:"before"`
	After       float64 `json:"after"`
	DetectedSeq int     `json:"detected_seq"`
	DetectedDay int     `json:"detected_day"`
}

// Changepoint causes.
const (
	CauseDetected    = "detected"
	CauseCodeVersion = "code_version"
)

// Shift returns the level change After − Before.
func (c Changepoint) Shift() float64 { return c.After - c.Before }

// Event is one judged observation, delivered to the observatory's event
// hook: the point as charted, the series' sticky in/out-of-control state,
// its transitions, and the changepoint if this point triggered one.
type Event struct {
	Kind    string
	Subject string
	Point   Point
	// SeriesOut is the sticky state after this point; WentOut/CameBack
	// mark the transitions (fire/resolve edges for alerting).
	SeriesOut   bool
	WentOut     bool
	CameBack    bool
	Changepoint *Changepoint
}

// seriesKey identifies one monitored series.
type seriesKey struct {
	kind    string
	subject string
}

// series is the online state of one control chart set.
type series struct {
	kind    string
	subject string

	points       []Point
	changepoints []Changepoint

	// Baseline: frozen center/sigma once fitted (from history or from the
	// first MinBaseline observed points).
	frozen bool
	center float64
	sigma  float64
	learn  []float64 // values collected while learning

	// Chart state since the current segment began.
	ewma     float64
	ewmaN    int // judged points since segment start (for time-varying limits)
	cPos     float64
	cNeg     float64
	cPosRun  int // points since the positive arm last sat at zero
	cNegRun  int
	cPosSeq  int // seq where the positive arm left zero
	cNegSeq  int
	recentZ  []float64 // trailing z values for the run rules (last 8)
	segStart int       // seq of the first point of the current segment

	out bool // sticky out-of-control state
}

// Observatory is the online SPC engine: a set of monitored series fed by
// Observe* calls, judged point by point. Safe for concurrent use; the
// event hook is invoked with the lock released.
type Observatory struct {
	mu     sync.Mutex
	params Params
	series map[seriesKey]*series
	order  []seriesKey

	onEvent  func(Event)
	onReplan func(Event)

	// Daily-lateness accumulation: positive lateness summed per day,
	// emitted as the lateness/factory series when the day closes (a run
	// two days ahead arrives, or Finalize).
	dayLateness map[int]float64
	dayEnd      map[int]float64
	maxDay      int
	finalized   bool
}

// New builds an Observatory with the given chart parameters (zero fields
// fall back to DefaultParams).
func New(p Params) *Observatory {
	return &Observatory{
		params:      p.normalize(),
		series:      make(map[seriesKey]*series),
		dayLateness: make(map[int]float64),
		dayEnd:      make(map[int]float64),
	}
}

// OnEvent registers the per-point hook: every judged observation is
// delivered, in order, with its verdict and any changepoint. This is the
// seam the monitor's out-of-control and changepoint rules consume.
func (o *Observatory) OnEvent(fn func(Event)) {
	o.mu.Lock()
	o.onEvent = fn
	o.mu.Unlock()
}

// OnReplan registers the replan-trigger hook: invoked when a drift
// series transitions out of control — the signal the uncertainty-aware
// planner will use to schedule a replan (observed completions no longer
// match the plan the factory is executing).
func (o *Observatory) OnReplan(fn func(Event)) {
	o.mu.Lock()
	o.onReplan = fn
	o.mu.Unlock()
}

// SetBaseline freezes a series' baseline before any observation arrives
// — typically from a history fit (see FitRunHistory) — so judging starts
// at the first point instead of after MinBaseline learning points.
// Non-positive sigma keeps the sigma floor behavior of learned baselines.
func (o *Observatory) SetBaseline(kind, subject string, center, sigma float64) {
	o.mu.Lock()
	s := o.get(kind, subject)
	s.center = center
	s.sigma = sigmaFloor(sigma, center)
	s.frozen = true
	o.mu.Unlock()
}

// get finds or creates a series. Callers hold the lock.
func (o *Observatory) get(kind, subject string) *series {
	k := seriesKey{kind, subject}
	s, ok := o.series[k]
	if !ok {
		s = &series{
			kind: kind, subject: subject,
			points: make([]Point, 0, 16),
			learn:  make([]float64, 0, o.params.MinBaseline),
		}
		o.series[k] = s
		o.order = append(o.order, k)
	}
	return s
}

// sigmaFloor keeps chart math finite on zero-variance baselines (a
// deterministic replay produces identical walltimes): any departure from
// the center still registers as a large z, never NaN.
func sigmaFloor(sigma, center float64) float64 {
	floor := 1e-9 * math.Max(1, math.Abs(center))
	return math.Max(sigma, floor)
}

// RunObs is one completed run as the observatory consumes it: the
// observed walltime, the planner's estimate (0 = unknown), and the
// completion against the deadline for lateness accounting. End and
// Deadline are absolute campaign seconds.
type RunObs struct {
	Forecast string
	Day      int
	Node     string
	Walltime float64
	// EstimatedWalltime is the launch-time predicted duration; when > 0
	// the estimate_error series receives Walltime − EstimatedWalltime.
	EstimatedWalltime float64
	End               float64
	Deadline          float64
}

// ObserveRun feeds one completed run: its walltime into run_time/<f>,
// its estimate error into estimate_error/<f>, and its positive lateness
// into the pending daily-lateness bucket. The run's series are judged
// under one lock acquisition — this is the replay hot path.
func (o *Observatory) ObserveRun(r RunObs) {
	var pending [2]Event
	n := 0
	o.mu.Lock()
	if !math.IsNaN(r.Walltime) && !math.IsInf(r.Walltime, 0) {
		if ev, emit := o.observeLocked(o.get(KindRunTime, r.Forecast), r.Day, r.End, r.Walltime); emit {
			pending[n] = ev
			n++
		}
		if r.EstimatedWalltime > 0 {
			if ev, emit := o.observeLocked(o.get(KindEstimateError, r.Forecast), r.Day, r.End, r.Walltime-r.EstimatedWalltime); emit {
				pending[n] = ev
				n++
			}
		}
	}
	if r.Deadline > 0 {
		if late := r.End - r.Deadline; late > 0 {
			o.dayLateness[r.Day] += late
		} else {
			o.dayLateness[r.Day] += 0
		}
	}
	if r.End > o.dayEnd[r.Day] {
		o.dayEnd[r.Day] = r.End
	}
	// A run from day d+2 closes day d: every day-d run (even one that
	// slipped past midnight) has landed by then. Buckets can only become
	// closable when a new latest day appears, so the scan is paid once
	// per day boundary, not once per run; a bucket reopened by a
	// straggler is swept up by the next boundary or by Finalize.
	var closed []latenessPoint
	if r.Day > o.maxDay {
		o.maxDay = r.Day
		for day := range o.dayLateness {
			if day <= r.Day-2 {
				closed = append(closed, latenessPoint{day, o.dayEnd[day], o.dayLateness[day]})
				delete(o.dayLateness, day)
				delete(o.dayEnd, day)
			}
		}
	}
	onEvent, onReplan := o.onEvent, o.onReplan
	o.mu.Unlock()
	for i := 0; i < n; i++ {
		if onEvent != nil {
			onEvent(pending[i])
		}
		if onReplan != nil && pending[i].Kind == KindDrift && pending[i].WentOut {
			onReplan(pending[i])
		}
	}
	o.emitLateness(closed)
}

type latenessPoint struct {
	day      int
	t        float64
	lateness float64
}

// emitLateness feeds closed days into the lateness series, oldest first.
// The common case is nothing or one day closing; the sort (and its
// closure) is only paid when a batch actually needs ordering.
func (o *Observatory) emitLateness(closed []latenessPoint) {
	if len(closed) == 0 {
		return
	}
	if len(closed) > 1 {
		sort.Slice(closed, func(i, j int) bool { return closed[i].day < closed[j].day })
	}
	for _, c := range closed {
		o.Observe(KindLateness, SubjectFactory, c.day, c.t, c.lateness)
	}
}

// ObserveDrift feeds one plan-vs-actual completion delta (seconds late
// of the launch-time prediction, negative = early) into drift/<forecast>.
func (o *Observatory) ObserveDrift(forecastName string, day int, t, endDelta float64) {
	o.Observe(KindDrift, forecastName, day, t, endDelta)
}

// ObserveNodeShare feeds one node's daily mean CPU share into
// node_share/<node>.
func (o *Observatory) ObserveNodeShare(node string, day int, t, share float64) {
	o.Observe(KindNodeShare, node, day, t, share)
}

// Finalize closes any pending daily-lateness buckets. Call once when the
// campaign (or replay) drains.
func (o *Observatory) Finalize() {
	o.mu.Lock()
	if o.finalized {
		o.mu.Unlock()
		return
	}
	o.finalized = true
	var closed []latenessPoint
	for day := range o.dayLateness {
		closed = append(closed, latenessPoint{day, o.dayEnd[day], o.dayLateness[day]})
		delete(o.dayLateness, day)
		delete(o.dayEnd, day)
	}
	o.mu.Unlock()
	o.emitLateness(closed)
}

// Observe feeds one raw observation into a series, judging it against
// the series' charts. NaN and infinite values are dropped (a sensor that
// produced no number has nothing to chart).
func (o *Observatory) Observe(kind, subject string, day int, t, value float64) {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return
	}
	o.mu.Lock()
	s := o.get(kind, subject)
	ev, emit := o.observeLocked(s, day, t, value)
	onEvent, onReplan := o.onEvent, o.onReplan
	o.mu.Unlock()
	if !emit {
		return
	}
	if onEvent != nil {
		onEvent(ev)
	}
	if onReplan != nil && ev.Kind == KindDrift && ev.WentOut {
		onReplan(ev)
	}
}

// observeLocked appends and judges one point. It returns the event and
// whether to emit it (learning points are recorded but not emitted).
func (o *Observatory) observeLocked(s *series, day int, t, value float64) (Event, bool) {
	p := Point{Seq: len(s.points), Day: day, T: t, Value: value}

	if !s.frozen {
		s.learn = append(s.learn, value)
		p.Learning = true
		s.points = append(s.points, p)
		if len(s.learn) >= o.params.MinBaseline {
			s.center, s.sigma = fitBaseline(s.learn)
			s.frozen = true
			s.learn = nil
			s.segStart = len(s.points)
			s.resetCharts()
		}
		return Event{}, false
	}

	p.Center, p.Sigma = s.center, s.sigma
	p.UCL = s.center + o.params.SigmaK*s.sigma
	p.LCL = s.center - o.params.SigmaK*s.sigma
	p.Z = (value - s.center) / s.sigma

	// Both accumulating charts see deviations clamped to ±CUSUMClamp
	// sigma: one wild outlier (a node-failure day) registers on the
	// Shewhart chart but cannot drag the EWMA out for a dozen points or
	// cross the CUSUM decision interval alone; sustained shifts pass the
	// clamp untouched.
	zc := math.Max(-o.params.CUSUMClamp, math.Min(o.params.CUSUMClamp, p.Z))

	// EWMA with time-varying limits.
	lam := o.params.EWMALambda
	if s.ewmaN == 0 {
		s.ewma = s.center
	}
	s.ewma = lam*(s.center+zc*s.sigma) + (1-lam)*s.ewma
	s.ewmaN++
	sz := s.sigma * math.Sqrt(lam/(2-lam)*(1-math.Pow(1-lam, 2*float64(s.ewmaN))))
	p.EWMA = s.ewma
	p.EWMAUpper = s.center + o.params.EWMAK*sz
	p.EWMALower = s.center - o.params.EWMAK*sz

	// Two-sided standardized CUSUM on the same clamped deviations.
	s.cPos = math.Max(0, s.cPos+zc-o.params.CUSUMSlack)
	if s.cPos == 0 {
		s.cPosRun, s.cPosSeq = 0, p.Seq+1
	} else if s.cPosRun == 0 {
		s.cPosRun, s.cPosSeq = 1, p.Seq
	} else {
		s.cPosRun++
	}
	s.cNeg = math.Max(0, s.cNeg-zc-o.params.CUSUMSlack)
	if s.cNeg == 0 {
		s.cNegRun, s.cNegSeq = 0, p.Seq+1
	} else if s.cNegRun == 0 {
		s.cNegRun, s.cNegSeq = 1, p.Seq
	} else {
		s.cNegRun++
	}
	p.CusumPos, p.CusumNeg = s.cPos, s.cNeg

	// Western Electric run rules on the Shewhart z. The trailing window
	// shifts in place (copy-down, not reslice) so the steady state
	// allocates nothing.
	if keep := max(8, o.params.MinShiftRun); len(s.recentZ) < keep {
		s.recentZ = append(s.recentZ, p.Z)
	} else {
		copy(s.recentZ, s.recentZ[1:])
		s.recentZ[len(s.recentZ)-1] = p.Z
	}
	p.Rules = o.runRules(s, p)

	// CUSUM decision: a changepoint when the arm crossed the decision
	// interval over a sustained run of points AND the shift is still
	// present in the last MinShiftRun observations. The second clause is
	// what separates a level shift from a transient: a short excursion
	// leaves the arm above the decision interval for many points while
	// it drains, but its trailing deviations have already gone quiet.
	var cp *Changepoint
	run := o.params.MinShiftRun
	if s.cPos > o.params.CUSUMDecision && s.cPosRun >= run &&
		lastRunBeyond(s.recentZ, run, o.params.CUSUMSlack, true) {
		cp = o.changepointLocked(s, p, s.cPosSeq)
	} else if s.cNeg > o.params.CUSUMDecision && s.cNegRun >= run &&
		lastRunBeyond(s.recentZ, run, o.params.CUSUMSlack, false) {
		cp = o.changepointLocked(s, p, s.cNegSeq)
	}
	if cp != nil {
		p.Rules |= ruleBitCUSUM
	}

	p.Out = p.Rules != 0
	wasOut := s.out
	s.out = p.Out
	s.points = append(s.points, p)

	if cp != nil {
		o.rebaselineLocked(s, cp.Seq)
	}

	return Event{
		Kind: s.kind, Subject: s.subject, Point: p,
		SeriesOut:   s.out,
		WentOut:     !wasOut && s.out,
		CameBack:    wasOut && !s.out,
		Changepoint: cp,
	}, true
}

// runRules evaluates we1–we4 and the EWMA limit on the latest point.
// Callers hold the lock; s.recentZ already includes p.Z.
func (o *Observatory) runRules(s *series, p Point) RuleSet {
	var rules RuleSet
	zs := s.recentZ
	if math.Abs(p.Z) > o.params.SigmaK {
		rules |= ruleBitWE1
	}
	if sideCount(zs, 3, 2) >= 2 {
		rules |= ruleBitWE2
	}
	if sideCount(zs, 5, 1) >= 4 {
		rules |= ruleBitWE3
	}
	if sameSideRun(zs) >= 8 {
		rules |= ruleBitWE4
	}
	if p.EWMA > p.EWMAUpper || p.EWMA < p.EWMALower {
		rules |= ruleBitEWMA
	}
	return rules
}

// sideCount returns the larger one-sided count of |z| > bound among the
// trailing window values, counting only values on the same side as the
// most recent such excursion (the Western Electric "m of n on one side").
func sideCount(zs []float64, window int, bound float64) int {
	if len(zs) > window {
		zs = zs[len(zs)-window:]
	}
	var hi, lo int
	for _, z := range zs {
		if z > bound {
			hi++
		} else if z < -bound {
			lo++
		}
	}
	if hi > lo {
		return hi
	}
	return lo
}

// lastRunBeyond reports whether the trailing n z values all sit beyond
// the slack on the given side — the CUSUM's "shift still present"
// check: the arm may hold banked evidence from an excursion that has
// already reverted, but the trailing window cannot.
func lastRunBeyond(zs []float64, n int, slack float64, positive bool) bool {
	if len(zs) < n {
		return false
	}
	for _, z := range zs[len(zs)-n:] {
		if positive && z <= slack {
			return false
		}
		if !positive && z >= -slack {
			return false
		}
	}
	return true
}

// sameSideRun returns the length of the trailing run of z values
// strictly on one side of center.
func sameSideRun(zs []float64) int {
	n := 0
	side := 0
	for i := len(zs) - 1; i >= 0; i-- {
		s := 0
		if zs[i] > 0 {
			s = 1
		} else if zs[i] < 0 {
			s = -1
		}
		if s == 0 {
			break
		}
		if side == 0 {
			side = s
		}
		if s != side {
			break
		}
		n++
	}
	return n
}

// changepointLocked dates a CUSUM decision: the shift began where the
// deciding arm last sat at zero. Callers hold the lock; p is the current
// (not yet appended) point.
func (o *Observatory) changepointLocked(s *series, p Point, startSeq int) *Changepoint {
	if startSeq < s.segStart {
		startSeq = s.segStart
	}
	cp := Changepoint{
		Seq: startSeq, Cause: CauseDetected,
		Before:      s.center,
		DetectedSeq: p.Seq, DetectedDay: p.Day,
	}
	if startSeq < len(s.points) {
		cp.Day = s.points[startSeq].Day
		cp.T = s.points[startSeq].T
	} else {
		cp.Day, cp.T = p.Day, p.T
	}
	// After: the mean of the shifted segment observed so far.
	var sum float64
	n := 0
	for i := startSeq; i < len(s.points); i++ {
		sum += s.points[i].Value
		n++
	}
	sum += p.Value
	n++
	cp.After = sum / float64(n)
	s.changepoints = append(s.changepoints, cp)
	return &s.changepoints[len(s.changepoints)-1]
}

// rebaselineLocked starts a new segment at seq: the points observed
// since the changepoint (plus the current one) seed the new baseline —
// refit immediately when there are enough, otherwise fall back to the
// shifted segment's mean with the old sigma (refined as points arrive is
// deliberately not done: a frozen baseline keeps the charts honest).
func (o *Observatory) rebaselineLocked(s *series, seq int) {
	var vals []float64
	for i := seq; i < len(s.points); i++ {
		vals = append(vals, s.points[i].Value)
	}
	if len(vals) >= 2 {
		center, sigma := fitBaseline(vals)
		s.center = center
		if len(vals) >= o.params.MinBaseline {
			s.sigma = sigma
		} else {
			s.sigma = sigmaFloor(s.sigma, center) // keep the proven noise scale
		}
	} else if len(vals) == 1 {
		s.center = vals[0]
		s.sigma = sigmaFloor(s.sigma, s.center)
	}
	s.segStart = len(s.points)
	s.resetCharts()
}

// resetCharts clears the chart state at a segment boundary.
func (s *series) resetCharts() {
	s.ewma, s.ewmaN = 0, 0
	s.cPos, s.cNeg = 0, 0
	s.cPosRun, s.cNegRun = 0, 0
	s.cPosSeq, s.cNegSeq = s.segStart, s.segStart
	s.recentZ = s.recentZ[:0]
}

// fitBaseline estimates center and sigma from a sample: center is the
// mean, sigma the mean moving range over d2 (the individuals-chart
// estimator, robust to slow trends), floored to keep math finite on
// zero-variance samples.
func fitBaseline(vals []float64) (center, sigma float64) {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	center = sum / float64(len(vals))
	var mrSum float64
	for i := 1; i < len(vals); i++ {
		mrSum += math.Abs(vals[i] - vals[i-1])
	}
	if len(vals) > 1 {
		sigma = mrSum / float64(len(vals)-1) / d2
	}
	return center, sigmaFloor(sigma, center)
}

// SeriesReport is one series' full charted history plus its current
// standing, as served by /api/spc and rendered by `foreman -spc`.
type SeriesReport struct {
	Kind    string `json:"kind"`
	Subject string `json:"subject"`

	// Current baseline and limits (zero while still learning).
	Center float64 `json:"center"`
	Sigma  float64 `json:"sigma"`
	UCL    float64 `json:"ucl"`
	LCL    float64 `json:"lcl"`

	Points       []Point       `json:"points"`
	Changepoints []Changepoint `json:"changepoints,omitempty"`

	// Violations counts judged points with at least one rule violation;
	// Out is the sticky state after the last judged point.
	Violations int  `json:"violations"`
	Out        bool `json:"out"`
}

// LastDay returns the day of the newest point (0 when empty).
func (sr *SeriesReport) LastDay() int {
	if len(sr.Points) == 0 {
		return 0
	}
	return sr.Points[len(sr.Points)-1].Day
}

// Report is one observatory's full state: every monitored series with
// its points, verdicts, and changepoints, ordered by (kind, subject).
type Report struct {
	Series []SeriesReport `json:"series"`
}

// Find returns the series report for (kind, subject), nil when absent.
func (r *Report) Find(kind, subject string) *SeriesReport {
	for i := range r.Series {
		if r.Series[i].Kind == kind && r.Series[i].Subject == subject {
			return &r.Series[i]
		}
	}
	return nil
}

// OutOfControl lists the series currently out of control.
func (r *Report) OutOfControl() []*SeriesReport {
	var out []*SeriesReport
	for i := range r.Series {
		if r.Series[i].Out {
			out = append(out, &r.Series[i])
		}
	}
	return out
}

// Report snapshots the observatory. The snapshot is deep: mutating it
// does not touch the live series.
func (o *Observatory) Report() *Report {
	o.mu.Lock()
	defer o.mu.Unlock()
	rep := &Report{Series: make([]SeriesReport, 0, len(o.order))}
	keys := append([]seriesKey(nil), o.order...)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return kindRank(keys[i].kind) < kindRank(keys[j].kind)
		}
		return keys[i].subject < keys[j].subject
	})
	for _, k := range keys {
		s := o.series[k]
		sr := SeriesReport{
			Kind: s.kind, Subject: s.subject,
			Points:       clonePoints(s.points),
			Changepoints: append([]Changepoint(nil), s.changepoints...),
			Out:          s.out,
		}
		if s.frozen {
			sr.Center, sr.Sigma = s.center, s.sigma
			sr.UCL = s.center + o.params.SigmaK*s.sigma
			sr.LCL = s.center - o.params.SigmaK*s.sigma
		}
		for i := range sr.Points {
			if sr.Points[i].Out {
				sr.Violations++
			}
		}
		rep.Series = append(rep.Series, sr)
	}
	return rep
}

// kindRank orders kinds canonically, unknown kinds last alphabetically.
func kindRank(kind string) string {
	for i, k := range Kinds() {
		if k == kind {
			return fmt.Sprintf("%d", i)
		}
	}
	return "9" + kind
}

// clonePoints copies points; Point holds no pointers, so a flat copy is
// a deep copy.
func clonePoints(ps []Point) []Point {
	out := make([]Point, len(ps))
	copy(out, ps)
	return out
}
