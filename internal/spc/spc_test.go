package spc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/logs"
	"repro/internal/statsdb"
)

// feed pushes a flat sequence into one series, one point per day.
func feed(o *Observatory, kind, subject string, vals []float64) {
	for i, v := range vals {
		o.Observe(kind, subject, i, float64(i)*86400, v)
	}
}

func TestLearningThenJudging(t *testing.T) {
	o := New(DefaultParams())
	feed(o, KindRunTime, "fc", []float64{100, 101, 99, 100, 102, 98, 100, 101})
	rep := o.Report()
	sr := rep.Find(KindRunTime, "fc")
	if sr == nil {
		t.Fatal("series missing from report")
	}
	if len(sr.Points) != 8 {
		t.Fatalf("points = %d, want 8", len(sr.Points))
	}
	for i, p := range sr.Points {
		if !p.Learning {
			t.Fatalf("point %d judged during baseline collection", i)
		}
	}
	if sr.Center == 0 || sr.Sigma == 0 {
		t.Fatalf("baseline not frozen after MinBaseline points: center=%g sigma=%g", sr.Center, sr.Sigma)
	}
	if math.Abs(sr.Center-100.125) > 1e-9 {
		t.Fatalf("center = %g, want 100.125", sr.Center)
	}

	// The ninth point is judged against the frozen baseline.
	o.Observe(KindRunTime, "fc", 8, 8*86400, 100)
	sr = o.Report().Find(KindRunTime, "fc")
	p := sr.Points[8]
	if p.Learning || p.Out {
		t.Fatalf("in-control point judged wrong: %+v", p)
	}
	if p.UCL <= p.Center || p.LCL >= p.Center {
		t.Fatalf("limits not around center: %+v", p)
	}
}

func TestShewhartSpikeFiresWE1(t *testing.T) {
	o := New(DefaultParams())
	var events []Event
	o.OnEvent(func(e Event) { events = append(events, e) })
	feed(o, KindRunTime, "fc", []float64{100, 102, 98, 101, 99, 100, 102, 98})
	o.Observe(KindRunTime, "fc", 8, 8*86400, 160) // wild spike
	o.Observe(KindRunTime, "fc", 9, 9*86400, 100) // back to normal

	sr := o.Report().Find(KindRunTime, "fc")
	spike := sr.Points[8]
	if !spike.Out || !spike.Rules.Has(RuleWE1) {
		t.Fatalf("spike not flagged we1: %+v", spike)
	}
	if len(sr.Changepoints) != 0 {
		t.Fatalf("single spike declared a changepoint: %+v", sr.Changepoints)
	}
	// Event stream: went out at the spike, came back at the next point.
	var wentOut, cameBack bool
	for _, e := range events {
		if e.Point.Seq == 8 && e.WentOut {
			wentOut = true
		}
		if e.Point.Seq == 9 && e.CameBack {
			cameBack = true
		}
	}
	if !wentOut || !cameBack {
		t.Fatalf("event transitions wrong: wentOut=%v cameBack=%v", wentOut, cameBack)
	}
}

func TestCUSUMDetectsSustainedShift(t *testing.T) {
	o := New(DefaultParams())
	base := []float64{100, 102, 98, 101, 99, 100, 102, 98}
	feed(o, KindRunTime, "fc", base)
	// Sustained +1.4x level shift starting at seq 8 (day 8).
	shifted := []float64{140, 141, 139, 140, 142, 138, 140}
	for i, v := range shifted {
		o.Observe(KindRunTime, "fc", 8+i, float64(8+i)*86400, v)
	}
	sr := o.Report().Find(KindRunTime, "fc")
	if len(sr.Changepoints) != 1 {
		t.Fatalf("changepoints = %d, want 1 (%+v)", len(sr.Changepoints), sr.Changepoints)
	}
	cp := sr.Changepoints[0]
	if cp.Cause != CauseDetected {
		t.Fatalf("cause = %q", cp.Cause)
	}
	if cp.Seq != 8 || cp.Day != 8 {
		t.Fatalf("changepoint located at seq %d day %d, want 8/8", cp.Seq, cp.Day)
	}
	if cp.After <= cp.Before {
		t.Fatalf("shift direction wrong: before=%g after=%g", cp.Before, cp.After)
	}
	// After re-baselining, shifted-level points are back in control.
	o.Observe(KindRunTime, "fc", 16, 16*86400, 140)
	sr = o.Report().Find(KindRunTime, "fc")
	last := sr.Points[len(sr.Points)-1]
	if last.Out {
		t.Fatalf("post-rebaseline point still out: %+v", last)
	}
	if math.Abs(sr.Center-140) > 2 {
		t.Fatalf("rebaselined center = %g, want ~140", sr.Center)
	}
}

func TestSingleOutlierDoesNotTripCUSUM(t *testing.T) {
	o := New(DefaultParams())
	feed(o, KindRunTime, "fc", []float64{100, 102, 98, 101, 99, 100, 102, 98})
	// One enormous outlier (a node-failure day) then normal points: the
	// clamp and MinShiftRun guards must keep the CUSUM from declaring a
	// changepoint.
	o.Observe(KindRunTime, "fc", 8, 8*86400, 1000)
	for i := 0; i < 6; i++ {
		o.Observe(KindRunTime, "fc", 9+i, float64(9+i)*86400, 100)
	}
	sr := o.Report().Find(KindRunTime, "fc")
	if len(sr.Changepoints) != 0 {
		t.Fatalf("outlier declared a changepoint: %+v", sr.Changepoints)
	}
	if !sr.Points[8].Out {
		t.Fatal("outlier not flagged at all")
	}
	if sr.Out {
		t.Fatal("series stuck out of control after recovery")
	}
}

func TestEWMACatchesSmallShift(t *testing.T) {
	o := New(DefaultParams())
	// Alternating noise, sigma-hat = MR/d2 = 2/1.128 ≈ 1.77.
	feed(o, KindRunTime, "fc", []float64{100, 102, 98, 101, 99, 100, 102, 98})
	// A ~1.5-sigma sustained shift: under the Shewhart 3-sigma radar,
	// but the EWMA accumulates it.
	hit := false
	for i := 0; i < 12 && !hit; i++ {
		o.Observe(KindRunTime, "fc", 8+i, float64(8+i)*86400, 103.5)
		sr := o.Report().Find(KindRunTime, "fc")
		last := sr.Points[len(sr.Points)-1]
		hit = last.Rules.Has(RuleEWMA)
	}
	if !hit {
		t.Fatal("EWMA never flagged a 1.2-sigma sustained shift in 12 points")
	}
}

func TestZeroVarianceSeriesStaysFinite(t *testing.T) {
	o := New(DefaultParams())
	feed(o, KindRunTime, "fc", []float64{100, 100, 100, 100, 100, 100, 100, 100})
	o.Observe(KindRunTime, "fc", 8, 8*86400, 100) // identical: in control
	o.Observe(KindRunTime, "fc", 9, 9*86400, 101) // any departure: out
	sr := o.Report().Find(KindRunTime, "fc")
	for _, p := range sr.Points {
		for _, v := range []float64{p.Z, p.EWMA, p.CusumPos, p.CusumNeg, p.UCL, p.LCL} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite chart value on zero-variance series: %+v", p)
			}
		}
	}
	if sr.Points[8].Out {
		t.Fatal("identical value flagged on zero-variance series")
	}
	if !sr.Points[9].Out {
		t.Fatal("departure not flagged on zero-variance series")
	}
}

func TestSetBaselineSkipsLearning(t *testing.T) {
	o := New(DefaultParams())
	o.SetBaseline(KindRunTime, "fc", 100, 2)
	o.Observe(KindRunTime, "fc", 0, 0, 120) // 10 sigma out, judged immediately
	sr := o.Report().Find(KindRunTime, "fc")
	if len(sr.Points) != 1 || sr.Points[0].Learning {
		t.Fatalf("seeded series still learning: %+v", sr.Points)
	}
	if !sr.Points[0].Out {
		t.Fatal("seeded series missed a 10-sigma point")
	}
}

func TestObserveRunFeedsSeriesAndLateness(t *testing.T) {
	o := New(DefaultParams())
	day := func(d int) float64 { return float64(d) * 86400 }
	for d := 0; d < 12; d++ {
		end := day(d) + 6*3600
		deadline := day(d) + 5*3600 // one hour late every day
		o.ObserveRun(RunObs{
			Forecast: "fc", Day: d, Node: "n1",
			Walltime: 3600, EstimatedWalltime: 3500,
			End: end, Deadline: deadline,
		})
	}
	// Days 0..9 close once day-11 runs arrive (d-2 margin); 10, 11 pend.
	rep := o.Report()
	lat := rep.Find(KindLateness, SubjectFactory)
	if lat == nil || len(lat.Points) != 10 {
		t.Fatalf("lateness points = %v, want 10 closed days", lat)
	}
	if lat.Points[0].Value != 3600 {
		t.Fatalf("day-0 lateness = %g, want 3600", lat.Points[0].Value)
	}
	o.Finalize()
	lat = o.Report().Find(KindLateness, SubjectFactory)
	if len(lat.Points) != 12 {
		t.Fatalf("lateness points after Finalize = %d, want 12", len(lat.Points))
	}
	if rt := rep.Find(KindRunTime, "fc"); rt == nil || len(rt.Points) != 12 {
		t.Fatal("run_time series not fed")
	}
	ee := rep.Find(KindEstimateError, "fc")
	if ee == nil || ee.Points[0].Value != 100 {
		t.Fatalf("estimate_error series wrong: %+v", ee)
	}
}

func TestReplanHookFiresOnDriftOnly(t *testing.T) {
	o := New(DefaultParams())
	var replans []Event
	o.OnReplan(func(e Event) { replans = append(replans, e) })
	o.SetBaseline(KindDrift, "fc", 0, 60)
	o.SetBaseline(KindRunTime, "fc", 100, 2)
	o.Observe(KindRunTime, "fc", 0, 0, 200) // out, but not drift
	if len(replans) != 0 {
		t.Fatal("replan hook fired for a non-drift series")
	}
	o.Observe(KindDrift, "fc", 1, 86400, 600) // 10 sigma drift
	if len(replans) != 1 {
		t.Fatalf("replan hook fired %d times, want 1", len(replans))
	}
	if !replans[0].WentOut || replans[0].Kind != KindDrift {
		t.Fatalf("replan event wrong: %+v", replans[0])
	}
	o.Observe(KindDrift, "fc", 2, 2*86400, 650) // still out: no re-fire
	if len(replans) != 1 {
		t.Fatal("replan hook re-fired while already out")
	}
}

func TestFitRunHistorySegmentsAtCodeVersion(t *testing.T) {
	var records []*logs.RunRecord
	mk := func(day int, version string, wall float64) *logs.RunRecord {
		return &logs.RunRecord{
			Forecast: "fc", Region: "r", Year: 2005, Day: day, Node: "n1",
			CodeVersion: version, CodeFactor: 1, MeshName: "m", MeshSides: 100,
			Timesteps: 10, Start: float64(day) * 86400,
			End: float64(day)*86400 + wall, Walltime: wall,
			Status: logs.StatusCompleted,
		}
	}
	for d := 0; d < 10; d++ {
		records = append(records, mk(d, "v1.0", 100+float64(d%3)))
	}
	for d := 10; d < 20; d++ {
		records = append(records, mk(d, "v2.0", 140+float64(d%3)))
	}
	fits := FitRunHistory(records)
	if len(fits) != 1 {
		t.Fatalf("fits = %d, want 1", len(fits))
	}
	f := fits[0]
	if f.CodeVersion != "v2.0" || f.N != 10 {
		t.Fatalf("baseline from wrong segment: %+v", f)
	}
	if math.Abs(f.Center-141) > 1 {
		t.Fatalf("center = %g, want ~141", f.Center)
	}
	if len(f.Changepoints) != 1 || f.Changepoints[0].Cause != CauseCodeVersion || f.Changepoints[0].Day != 10 {
		t.Fatalf("version changepoint wrong: %+v", f.Changepoints)
	}

	// Seeding an observatory applies baseline and changepoint.
	o := New(DefaultParams())
	o.SeedFits(fits)
	sr := o.Report().Find(KindRunTime, "fc")
	if sr == nil || len(sr.Changepoints) != 1 {
		t.Fatalf("seeded series wrong: %+v", sr)
	}
	o.Observe(KindRunTime, "fc", 20, 20*86400, 141)
	if p := o.Report().Find(KindRunTime, "fc").Points[0]; p.Learning || p.Out {
		t.Fatalf("seeded series judged wrong: %+v", p)
	}
}

func TestStatsDBRoundTrip(t *testing.T) {
	o := New(DefaultParams())
	feed(o, KindRunTime, "fc", []float64{100, 102, 98, 101, 99, 100, 102, 98})
	for i, v := range []float64{140, 141, 139, 140, 142, 138, 140} {
		o.Observe(KindRunTime, "fc", 8+i, float64(8+i)*86400, v)
	}
	o.SetBaseline(KindNodeShare, "node-1", 0.8, 0.05)
	o.Observe(KindNodeShare, "node-1", 3, 3*86400, 0.2)
	want := o.Report()

	db := statsdb.NewDB()
	if err := LoadReport(db, want); err != nil {
		t.Fatalf("LoadReport: %v", err)
	}
	if v := statsdb.SchemaVersion(db); v != 5 {
		t.Fatalf("schema version = %d, want 5", v)
	}
	got, err := ReadReport(db)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("series = %d, want %d", len(got.Series), len(want.Series))
	}
	for i := range want.Series {
		w, g := &want.Series[i], &got.Series[i]
		if w.Kind != g.Kind || w.Subject != g.Subject {
			t.Fatalf("series %d order mismatch: %s/%s vs %s/%s", i, w.Kind, w.Subject, g.Kind, g.Subject)
		}
		if len(w.Points) != len(g.Points) || len(w.Changepoints) != len(g.Changepoints) {
			t.Fatalf("series %s/%s shape mismatch", w.Kind, w.Subject)
		}
		if w.Violations != g.Violations || w.Out != g.Out {
			t.Fatalf("series %s/%s standing mismatch: %d/%v vs %d/%v",
				w.Kind, w.Subject, w.Violations, w.Out, g.Violations, g.Out)
		}
		if math.Abs(w.Center-g.Center) > 1e-9 || math.Abs(w.UCL-g.UCL) > 1e-9 {
			t.Fatalf("series %s/%s limits mismatch", w.Kind, w.Subject)
		}
		for j := range w.Points {
			wp, gp := w.Points[j], g.Points[j]
			if wp.Seq != gp.Seq || wp.Out != gp.Out || wp.Learning != gp.Learning {
				t.Fatalf("point %s/%s[%d] verdict mismatch", w.Kind, w.Subject, j)
			}
			if math.Abs(wp.Value-gp.Value) > 1e-9 || math.Abs(wp.Z-gp.Z) > 1e-9 {
				t.Fatalf("point %s/%s[%d] value mismatch", w.Kind, w.Subject, j)
			}
			if wp.Rules != gp.Rules {
				t.Fatalf("point %s/%s[%d] rules mismatch: %v vs %v",
					w.Kind, w.Subject, j, wp.Rules, gp.Rules)
			}
		}
		if len(w.Changepoints) > 0 && w.Changepoints[0] != g.Changepoints[0] {
			t.Fatalf("changepoint mismatch: %+v vs %+v", w.Changepoints[0], g.Changepoints[0])
		}
	}
}

func TestRenderSurfaces(t *testing.T) {
	o := New(DefaultParams())
	feed(o, KindRunTime, "fc", []float64{100, 102, 98, 101, 99, 100, 102, 98})
	for i, v := range []float64{140, 141, 139, 140, 142, 138, 140} {
		o.Observe(KindRunTime, "fc", 8+i, float64(8+i)*86400, v)
	}
	rep := o.Report()
	sum := SummaryTable(rep)
	if !strings.Contains(sum, "run_time") || !strings.Contains(sum, "fc") {
		t.Fatalf("summary missing series:\n%s", sum)
	}
	chart := SeriesChart(rep.Find(KindRunTime, "fc"), 60, 12)
	for _, want := range []string{"run_time / fc", "UCL", "LCL", "^"} {
		if !strings.Contains(chart, want) {
			t.Fatalf("chart missing %q:\n%s", want, chart)
		}
	}
	cps := ChangepointTable(rep)
	if !strings.Contains(cps, CauseDetected) {
		t.Fatalf("changepoint table empty:\n%s", cps)
	}
	// Subject filter keeps the named subject plus factory-wide series.
	o.Observe(KindLateness, SubjectFactory, 1, 86400, 0)
	o.Observe(KindRunTime, "other", 1, 86400, 50)
	f := FilterSubject(o.Report(), "fc")
	if f.Find(KindRunTime, "other") != nil {
		t.Fatal("filter kept foreign subject")
	}
	if f.Find(KindRunTime, "fc") == nil || f.Find(KindLateness, SubjectFactory) == nil {
		t.Fatal("filter dropped wanted series")
	}
}
