package spc_test

import (
	"sort"
	"testing"

	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/monitor"
	"repro/internal/spc"
	"repro/internal/statsdb"
	"repro/internal/telemetry"
)

// TestCampaignChangepointBlamesCodeVersionNotFailure is the issue's
// acceptance scenario: a campaign with an engineered mid-campaign code
// slowdown AND an injected one-day node failure. The CUSUM must locate
// the changepoint at the version change — a sustained level shift — and
// must NOT declare one for the failure day, which is a single spike the
// clamped statistics are designed to ride out. The out_of_control alert
// fires for the affected series and resolves through the standard
// lifecycle once the charts rebaseline.
func TestCampaignChangepointBlamesCodeVersionNotFailure(t *testing.T) {
	const (
		slowDay   = 20
		failDay   = 28
		repairDay = 29
		days      = 40
	)
	tillamook := forecast.Tillamook()
	columbia := forecast.NewSpec("forecast-columbia", "columbia", 5760, 28000, 8)
	columbia.StartOffset = 2 * 3600

	tel := telemetry.New()
	c, err := factory.New(factory.Config{
		Year: 2005,
		Days: days,
		Forecasts: []factory.Assignment{
			{Spec: tillamook, Node: "fnode01"},
			{Spec: columbia, Node: "fnode02"},
		},
		Events: []factory.Event{
			factory.SetCode{Day: slowDay, Forecast: tillamook.Name,
				Code: forecast.CodeVersion{Name: "elcirc-5.02", CostFactor: 1.35}},
			factory.FailNode{Day: failDay, Node: "fnode02"},
			factory.RepairNode{Day: repairDay, Node: "fnode02"},
		},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := monitor.DefaultOptions()
	opts.OutOfControl = monitor.OutOfControlRule{Enabled: true, Severity: monitor.SevWarning}
	opts.Changepoint = monitor.ChangepointRule{Enabled: true, Severity: monitor.SevWarning}
	mon := monitor.New(opts, tel.Registry())
	mon.Attach(c)
	c.Run()
	mon.Finalize(c.Engine().Now())

	// Stream the campaign's completed runs through the observatory in
	// completion order, verdicts feeding the alert book — exactly what
	// foreman -spc and the factory's live hook do.
	obs := spc.New(spc.DefaultParams())
	obs.OnEvent(func(e spc.Event) {
		if cp := e.Changepoint; cp != nil {
			mon.ObserveChangepoint(e.Kind, e.Subject, cp.Day, cp.DetectedDay, cp.Cause, cp.Before, cp.After)
		}
		mon.ObserveControl(e.Kind, e.Subject, e.Point.Day, e.SeriesOut, e.Point.Value, e.Point.Center, e.Point.Rules.Names())
	})
	runs := mon.Status().Runs
	sort.Slice(runs, func(i, j int) bool { return runs[i].End < runs[j].End })
	completed := 0
	for _, r := range runs {
		if r.End == 0 {
			continue
		}
		completed++
		var estWall float64
		if r.LaunchETA > r.Start {
			estWall = r.LaunchETA - r.Start
		}
		obs.ObserveRun(spc.RunObs{
			Forecast: r.Forecast, Day: r.Day, Node: r.Node,
			Walltime: r.Walltime, EstimatedWalltime: estWall,
			End: r.End, Deadline: r.Deadline,
		})
	}
	if completed < 2*days-4 {
		t.Fatalf("campaign completed only %d runs", completed)
	}
	obs.Finalize()
	rep := obs.Report()

	// The slowed forecast's run-time chart pins the shift at the version
	// change, with the mean moving up.
	tr := rep.Find(spc.KindRunTime, tillamook.Name)
	if tr == nil {
		t.Fatal("no run_time series for the slowed forecast")
	}
	var atSlow *spc.Changepoint
	for i := range tr.Changepoints {
		cp := &tr.Changepoints[i]
		if cp.Day >= slowDay-1 && cp.Day <= slowDay+3 {
			atSlow = cp
		}
		if cp.Day >= failDay-1 && cp.Day <= repairDay+2 {
			t.Errorf("changepoint on the failure day: %+v", *cp)
		}
	}
	if atSlow == nil {
		t.Fatalf("CUSUM did not flag the day-%d code-version change; changepoints: %+v",
			slowDay, tr.Changepoints)
	}
	if atSlow.After <= atSlow.Before {
		t.Errorf("slowdown changepoint shifted down: %+v", *atSlow)
	}

	// The failed node's forecast took a one-day hit — a spike, not a
	// shift. No changepoint may be declared anywhere near it.
	cr := rep.Find(spc.KindRunTime, columbia.Name)
	if cr == nil {
		t.Fatal("no run_time series for the failure-day forecast")
	}
	for _, cp := range cr.Changepoints {
		if cp.Day >= failDay-1 && cp.Day <= repairDay+2 {
			t.Errorf("node failure misattributed as a level shift: %+v", cp)
		}
	}

	// The alerts went through the standard lifecycle: out_of_control
	// fired while the charts were out and resolved once rebaselined, and
	// the changepoint alert names the slowed forecast.
	var sawOut, sawOutResolved, sawCP bool
	for _, a := range mon.Alerts() {
		switch a.Rule {
		case "out_of_control":
			sawOut = true
			if !a.Firing() {
				sawOutResolved = true
			}
		case "changepoint":
			if a.Forecast == tillamook.Name {
				sawCP = true
			}
		}
	}
	if !sawOut || !sawOutResolved {
		t.Errorf("out_of_control lifecycle: fired=%v resolved=%v, want both", sawOut, sawOutResolved)
	}
	if !sawCP {
		t.Error("no changepoint alert for the slowed forecast")
	}

	// Round-trip the verdict through the v5 tables — the rows foreman
	// -spc, /api/spc, and the dashboard all render.
	db := statsdb.NewDB()
	if err := spc.LoadReport(db, rep); err != nil {
		t.Fatal(err)
	}
	rt, err := spc.ReadReport(db)
	if err != nil {
		t.Fatal(err)
	}
	ptr := rt.Find(spc.KindRunTime, tillamook.Name)
	if ptr == nil || len(ptr.Changepoints) != len(tr.Changepoints) {
		t.Fatalf("persisted report lost the changepoint: %+v", ptr)
	}
	if ptr.Changepoints[0].Day != tr.Changepoints[0].Day {
		t.Errorf("persisted changepoint day %d, live %d", ptr.Changepoints[0].Day, tr.Changepoints[0].Day)
	}
}
