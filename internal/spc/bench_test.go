package spc_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"syscall"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// benchReplay drives a campaign replay at observatory scale: nodes×days
// runs (one per node per day, runsWanted total), each a traced
// chained-increment simulation on its node with the usage sampler
// watching the cluster — the factory's standing instrumentation, present
// in both arms like the forensics bench. When observe is true every
// completed run additionally streams through the SPC observatory — run
// time, estimate error and drift per forecast, daily lateness, per-node
// daily shares from the sampler — and the final report is assembled; the
// delta against observe=false is what the 5% budget bounds.
func benchReplay(nodes, runsWanted, incs int, observe bool) int {
	days := (runsWanted + nodes - 1) / nodes
	e := sim.NewEngine()
	cl := cluster.New(e)
	tel := telemetry.New()
	tel.SetClock(e.Now)
	tr := tel.Trace()
	var obs *spc.Observatory
	if observe {
		obs = spc.New(spc.DefaultParams())
	}
	names := make([]string, nodes)
	cn := make([]*cluster.Node, nodes)
	for i := range cn {
		names[i] = fmt.Sprintf("bn%03d", i)
		cn[i] = cl.AddNode(names[i], 2, 1.0)
	}
	samp := usage.NewSampler(cl, usage.Options{Interval: 900})
	horizon := float64(days) * 86400
	samp.Start(horizon)
	root := tr.Begin("campaign", "bench", "factory", nil)
	runs := 0
	for d := 0; d < days && runs < runsWanted; d++ {
		for f := 0; f < nodes && runs < runsWanted; f++ {
			f, d := f, d
			runs++
			name := fmt.Sprintf("bf%03d", f)
			start := float64(d)*86400 + float64(f%8)*450
			// Deterministic jitter so the charts judge varied points
			// instead of a flat line.
			cost := 3000.0 + float64((f*7+d*13)%11)
			e.At(start, func() {
				launched := e.Now()
				rs := tr.Begin("run", name, names[f], root)
				var next func(i int)
				next = func(i int) {
					if i >= incs {
						rs.EndSpan()
						if obs != nil {
							obs.ObserveRun(spc.RunObs{
								Forecast: name, Day: d + 1, Node: names[f],
								Walltime: e.Now() - launched, EstimatedWalltime: 3000,
								End: e.Now(), Deadline: start + 7200,
							})
							obs.ObserveDrift(name, d+1, e.Now(), e.Now()-(start+3000))
						}
						return
					}
					cn[f].Submit(fmt.Sprintf("%s[%d]", name, i),
						cost/float64(incs), func() { next(i + 1) })
				}
				next(0)
			})
		}
	}
	e.Run()
	root.EndSpan()
	samp.Finalize(e.Now())
	if obs == nil {
		return 0
	}
	for d := 0; d < days; d++ {
		t0, t1 := float64(d)*86400, float64(d+1)*86400
		for _, n := range names {
			obs.ObserveNodeShare(n, d+1, t1, samp.MeanShareOver(n, t0, t1))
		}
	}
	obs.Finalize()
	return len(obs.Report().Series)
}

// BenchmarkReplayBaseline is the 200-node × 2000-run replay with no SPC
// observation: the denominator of the overhead budget.
func BenchmarkReplayBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchReplay(200, 2000, 96, false)
	}
}

// BenchmarkReplayObserved is the same replay with every run, drift value
// and node-share streaming through the observatory's charts.
func BenchmarkReplayObserved(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if n := benchReplay(200, 2000, 96, true); n == 0 {
			b.Fatal("observed replay produced no series")
		}
	}
}

// TestEmitBenchReport measures the observatory's cost on a 200-node ×
// 2000-run campaign replay and writes a machine-readable report to the
// file named by BENCH_OUT; `make bench` sets it and CI uploads the
// result as an artifact. Without BENCH_OUT the test is skipped.
//
// Methodology: plain and observed replays alternate in ABBA order
// (pairing inherited from the forensics bench), samples are process CPU
// seconds from rusage rather than wall time, and each arm's cost is the
// MINIMUM across its samples. The minimum — not a mean or a median of
// paired ratios — is what survives this class of machine: a shared box
// where cache and memory-bandwidth contention from neighbors swings the
// memory-heavy replay's CPU cost by ±20% sample to sample (a register-
// only spin probe stays within ±3%, so it is not frequency), too fast
// for pairing to cancel. The fastest interleaved sample of each arm
// approaches the uncontended cost. Because a whole measurement can still
// land inside a loud window, a measurement that exceeds budget is
// re-taken once and the quieter (lower-baseline) of the two is reported.
func TestEmitBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("BENCH_OUT not set")
	}
	const (
		samples = 12 // per arm
		nodes   = 200
		runs    = 2000
		incs    = 96
	)
	cpuSeconds := func() float64 {
		var ru syscall.Rusage
		if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
			t.Fatal(err)
		}
		return float64(ru.Utime.Sec+ru.Stime.Sec) +
			float64(ru.Utime.Usec+ru.Stime.Usec)/1e6
	}
	benchReplay(nodes, runs, incs, false) // warm-up
	benchReplay(nodes, runs, incs, true)
	// Each timed segment starts from a collected heap so a replay pays
	// for its own garbage, not its neighbor's.
	timed := func(observe bool) float64 {
		runtime.GC()
		t0 := cpuSeconds()
		benchReplay(nodes, runs, incs, observe)
		return cpuSeconds() - t0
	}
	measure := func() (minBase, minObs float64) {
		minBase, minObs = math.Inf(1), math.Inf(1)
		for i := 0; i < samples; i++ {
			var b, a float64
			if i%2 == 0 {
				b = timed(false)
				a = timed(true)
			} else {
				a = timed(true)
				b = timed(false)
			}
			minBase = math.Min(minBase, b)
			minObs = math.Min(minObs, a)
		}
		return minBase, minObs
	}
	minBase, minObs := measure()
	overhead := 100 * (minObs - minBase) / minBase
	if overhead > 5 {
		b2, o2 := measure()
		if b2 < minBase {
			minBase, minObs = b2, o2
			overhead = 100 * (minObs - minBase) / minBase
		}
	}
	report := map[string]any{
		"scenario":             "spc-replay-200x2000",
		"nodes":                nodes,
		"runs":                 runs,
		"samples_per_arm":      samples,
		"baseline_cpu_seconds": minBase,
		"observed_cpu_seconds": minObs,
		"overhead_pct":         overhead,
		"overhead_budget_pct":  5.0,
	}
	if overhead > 5 {
		t.Errorf("spc overhead %.1f%% exceeds the 5%% budget", overhead)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, data)
}
