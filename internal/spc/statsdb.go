// Schema v5: the SPC observatory's persisted state. control_points
// holds every charted observation with its verdict; changepoints holds
// the detected (and history-supplied) level shifts. `foreman -spc`,
// /api/spc, and the dashboard all render a Report read back from these
// rows, so the three surfaces cannot disagree.

package spc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/statsdb"
)

// Table names added by the schema v5 migration.
const (
	PointsTableName       = "control_points"
	ChangepointsTableName = "changepoints"
)

// PointsSchema returns the schema of the control_points table: one row
// per charted observation, keyed by (kind, subject, seq).
func PointsSchema() statsdb.Schema {
	return statsdb.Schema{
		{Name: "kind", Type: statsdb.String},
		{Name: "subject", Type: statsdb.String},
		{Name: "seq", Type: statsdb.Int},
		{Name: "day", Type: statsdb.Int},
		{Name: "t", Type: statsdb.Float},
		{Name: "value", Type: statsdb.Float},
		{Name: "center", Type: statsdb.Float},
		{Name: "sigma", Type: statsdb.Float},
		{Name: "ucl", Type: statsdb.Float},
		{Name: "lcl", Type: statsdb.Float},
		{Name: "z", Type: statsdb.Float},
		{Name: "ewma", Type: statsdb.Float},
		{Name: "ewma_upper", Type: statsdb.Float},
		{Name: "ewma_lower", Type: statsdb.Float},
		{Name: "cusum_pos", Type: statsdb.Float},
		{Name: "cusum_neg", Type: statsdb.Float},
		{Name: "rules", Type: statsdb.String},
		{Name: "out", Type: statsdb.Bool},
		{Name: "learning", Type: statsdb.Bool},
	}
}

// ChangepointsSchema returns the schema of the changepoints table: one
// row per detected or history-derived level shift.
func ChangepointsSchema() statsdb.Schema {
	return statsdb.Schema{
		{Name: "kind", Type: statsdb.String},
		{Name: "subject", Type: statsdb.String},
		{Name: "seq", Type: statsdb.Int},
		{Name: "day", Type: statsdb.Int},
		{Name: "t", Type: statsdb.Float},
		{Name: "cause", Type: statsdb.String},
		{Name: "before", Type: statsdb.Float},
		{Name: "after", Type: statsdb.Float},
		{Name: "detected_seq", Type: statsdb.Int},
		{Name: "detected_day", Type: statsdb.Int},
	}
}

// Migrations returns the SPC layer's schema migrations: v5 creates the
// control_points and changepoints tables with their lookup indexes.
// Combine with harvest.Migrations() (v1, v2), usage.Migrations() (v3),
// and forensics.Migrations() (v4); Migrate tracks each independently.
func Migrations() []statsdb.Migration {
	return []statsdb.Migration{
		{
			Version: 5,
			Name:    "spc-tables",
			Apply: func(db *statsdb.DB) error {
				if db.Table(PointsTableName) == nil {
					t, err := db.CreateTable(PointsTableName, PointsSchema())
					if err != nil {
						return err
					}
					for _, col := range []string{"kind", "subject"} {
						if err := t.CreateIndex(col); err != nil {
							return err
						}
					}
				}
				if db.Table(ChangepointsTableName) == nil {
					t, err := db.CreateTable(ChangepointsTableName, ChangepointsSchema())
					if err != nil {
						return err
					}
					if err := t.CreateIndex("subject"); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

// finite guards statsdb's NaN rejection: non-finite floats persist as 0.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// LoadReport persists one observatory snapshot into the control_points
// and changepoints tables (created via the v5 migration when missing).
// One snapshot covers a whole campaign, so load each report once.
func LoadReport(db *statsdb.DB, rep *Report) error {
	if _, err := statsdb.Migrate(db, Migrations()); err != nil {
		return err
	}
	pt := db.Table(PointsTableName)
	ct := db.Table(ChangepointsTableName)
	for i := range rep.Series {
		sr := &rep.Series[i]
		if sr.Kind == "" || sr.Subject == "" {
			return fmt.Errorf("spc: series with empty kind or subject")
		}
		for _, p := range sr.Points {
			err := pt.Insert([]statsdb.Value{
				statsdb.StringVal(sr.Kind),
				statsdb.StringVal(sr.Subject),
				statsdb.IntVal(int64(p.Seq)),
				statsdb.IntVal(int64(p.Day)),
				statsdb.FloatVal(finite(p.T)),
				statsdb.FloatVal(finite(p.Value)),
				statsdb.FloatVal(finite(p.Center)),
				statsdb.FloatVal(finite(p.Sigma)),
				statsdb.FloatVal(finite(p.UCL)),
				statsdb.FloatVal(finite(p.LCL)),
				statsdb.FloatVal(finite(p.Z)),
				statsdb.FloatVal(finite(p.EWMA)),
				statsdb.FloatVal(finite(p.EWMAUpper)),
				statsdb.FloatVal(finite(p.EWMALower)),
				statsdb.FloatVal(finite(p.CusumPos)),
				statsdb.FloatVal(finite(p.CusumNeg)),
				statsdb.StringVal(p.Rules.String()),
				statsdb.BoolVal(p.Out),
				statsdb.BoolVal(p.Learning),
			})
			if err != nil {
				return err
			}
		}
		for _, cp := range sr.Changepoints {
			err := ct.Insert([]statsdb.Value{
				statsdb.StringVal(sr.Kind),
				statsdb.StringVal(sr.Subject),
				statsdb.IntVal(int64(cp.Seq)),
				statsdb.IntVal(int64(cp.Day)),
				statsdb.FloatVal(finite(cp.T)),
				statsdb.StringVal(cp.Cause),
				statsdb.FloatVal(finite(cp.Before)),
				statsdb.FloatVal(finite(cp.After)),
				statsdb.IntVal(int64(cp.DetectedSeq)),
				statsdb.IntVal(int64(cp.DetectedDay)),
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadReport reconstructs a Report from the persisted tables — the
// replayable half of the pipeline: the CLI charts, the JSON endpoint,
// and the dashboard panel all derive from the same statsdb rows.
// Baselines, limits, and violation counts are recomputed from the
// latest judged point per series. Returns an empty report when the
// tables are absent.
func ReadReport(db *statsdb.DB) (*Report, error) {
	rep := &Report{}
	pt := db.Table(PointsTableName)
	if pt == nil {
		return rep, nil
	}
	schema := pt.Schema()
	col := make(map[string]int, len(schema))
	for i, c := range schema {
		col[c.Name] = i
	}
	bySeries := make(map[seriesKey]*SeriesReport)
	var order []seriesKey
	for i := 0; i < pt.Len(); i++ {
		row := pt.Row(i)
		key := seriesKey{row[col["kind"]].Str(), row[col["subject"]].Str()}
		sr, ok := bySeries[key]
		if !ok {
			sr = &SeriesReport{Kind: key.kind, Subject: key.subject}
			bySeries[key] = sr
			order = append(order, key)
		}
		p := Point{
			Seq:       int(row[col["seq"]].Int()),
			Day:       int(row[col["day"]].Int()),
			T:         row[col["t"]].Float(),
			Value:     row[col["value"]].Float(),
			Center:    row[col["center"]].Float(),
			Sigma:     row[col["sigma"]].Float(),
			UCL:       row[col["ucl"]].Float(),
			LCL:       row[col["lcl"]].Float(),
			Z:         row[col["z"]].Float(),
			EWMA:      row[col["ewma"]].Float(),
			EWMAUpper: row[col["ewma_upper"]].Float(),
			EWMALower: row[col["ewma_lower"]].Float(),
			CusumPos:  row[col["cusum_pos"]].Float(),
			CusumNeg:  row[col["cusum_neg"]].Float(),
			Out:       row[col["out"]].Bool(),
			Learning:  row[col["learning"]].Bool(),
		}
		if rules := row[col["rules"]].Str(); rules != "" {
			p.Rules = ParseRuleSet(strings.Split(rules, ",")...)
		}
		sr.Points = append(sr.Points, p)
	}
	if ct := db.Table(ChangepointsTableName); ct != nil {
		cSchema := ct.Schema()
		ccol := make(map[string]int, len(cSchema))
		for i, c := range cSchema {
			ccol[c.Name] = i
		}
		for i := 0; i < ct.Len(); i++ {
			row := ct.Row(i)
			key := seriesKey{row[ccol["kind"]].Str(), row[ccol["subject"]].Str()}
			sr, ok := bySeries[key]
			if !ok {
				sr = &SeriesReport{Kind: key.kind, Subject: key.subject}
				bySeries[key] = sr
				order = append(order, key)
			}
			sr.Changepoints = append(sr.Changepoints, Changepoint{
				Seq:         int(row[ccol["seq"]].Int()),
				Day:         int(row[ccol["day"]].Int()),
				T:           row[ccol["t"]].Float(),
				Cause:       row[ccol["cause"]].Str(),
				Before:      row[ccol["before"]].Float(),
				After:       row[ccol["after"]].Float(),
				DetectedSeq: int(row[ccol["detected_seq"]].Int()),
				DetectedDay: int(row[ccol["detected_day"]].Int()),
			})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].kind != order[j].kind {
			return kindRank(order[i].kind) < kindRank(order[j].kind)
		}
		return order[i].subject < order[j].subject
	})
	for _, key := range order {
		sr := bySeries[key]
		sort.Slice(sr.Points, func(a, b int) bool { return sr.Points[a].Seq < sr.Points[b].Seq })
		sort.Slice(sr.Changepoints, func(a, b int) bool { return sr.Changepoints[a].Seq < sr.Changepoints[b].Seq })
		// Re-aggregate standing from the stored verdicts: the latest
		// judged point carries the live baseline and the sticky state.
		for i := range sr.Points {
			p := &sr.Points[i]
			if p.Out {
				sr.Violations++
			}
			if !p.Learning {
				sr.Center, sr.Sigma = p.Center, p.Sigma
				sr.UCL, sr.LCL = p.UCL, p.LCL
				sr.Out = p.Out
			}
		}
		rep.Series = append(rep.Series, *sr)
	}
	return rep, nil
}
