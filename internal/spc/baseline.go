// History-fit baselines: seed the observatory's control limits from the
// harvested runs table instead of burning the first MinBaseline live
// points on learning. History is segmented at code-version changes — the
// paper's user-supplied version factor is exactly a known level shift —
// so only the latest version's runs define "in control", and each
// earlier boundary is recorded as a code_version changepoint.

package spc

import (
	"sort"

	"repro/internal/logs"
	"repro/internal/statsdb"
)

// BaselineFit is one per-forecast history fit: the walltime baseline of
// the newest code-version segment plus the changepoints at each earlier
// version boundary.
type BaselineFit struct {
	Forecast string
	// Center and Sigma describe run_time/<forecast> under the current
	// code version; N is how many runs the segment holds.
	Center float64
	Sigma  float64
	N      int
	// CodeVersion is the version the baseline describes.
	CodeVersion string
	// Changepoints are the version boundaries in the history, oldest
	// first, with Cause = CauseCodeVersion.
	Changepoints []Changepoint
}

// FitRunHistory fits per-forecast walltime baselines from harvested run
// records, segmenting at code-version changes. Only completed runs
// count; forecasts whose newest segment holds fewer than two runs are
// skipped (no sigma estimate). Records may arrive in any order.
func FitRunHistory(records []*logs.RunRecord) []BaselineFit {
	byForecast := make(map[string][]*logs.RunRecord)
	var names []string
	for _, r := range records {
		if r.Status != logs.StatusCompleted || r.Forecast == "" {
			continue
		}
		if _, ok := byForecast[r.Forecast]; !ok {
			names = append(names, r.Forecast)
		}
		byForecast[r.Forecast] = append(byForecast[r.Forecast], r)
	}
	sort.Strings(names)

	var fits []BaselineFit
	for _, name := range names {
		runs := byForecast[name]
		sort.Slice(runs, func(i, j int) bool {
			if runs[i].Day != runs[j].Day {
				return runs[i].Day < runs[j].Day
			}
			return runs[i].Start < runs[j].Start
		})
		fit := BaselineFit{Forecast: name}
		// Split into contiguous same-version segments.
		type segment struct {
			version string
			day     int
			t       float64
			vals    []float64
		}
		var segs []segment
		for _, r := range runs {
			if len(segs) == 0 || segs[len(segs)-1].version != r.CodeVersion {
				segs = append(segs, segment{version: r.CodeVersion, day: r.Day, t: r.Start})
			}
			s := &segs[len(segs)-1]
			s.vals = append(s.vals, r.Walltime)
		}
		for i := 1; i < len(segs); i++ {
			before, _ := fitBaseline(segs[i-1].vals)
			after, _ := fitBaseline(segs[i].vals)
			fit.Changepoints = append(fit.Changepoints, Changepoint{
				Day: segs[i].day, T: segs[i].t,
				Cause:  CauseCodeVersion,
				Before: before, After: after,
				DetectedDay: segs[i].day,
			})
		}
		last := segs[len(segs)-1]
		if len(last.vals) < 2 {
			continue
		}
		fit.Center, fit.Sigma = fitBaseline(last.vals)
		fit.N = len(last.vals)
		fit.CodeVersion = last.version
		fits = append(fits, fit)
	}
	return fits
}

// SeedFromDB fits baselines from a harvested stats database and seeds
// the observatory's run_time series with them, recording code-version
// boundaries as changepoints. Returns the fits applied; a database with
// no runs table seeds nothing.
func (o *Observatory) SeedFromDB(db *statsdb.DB) ([]BaselineFit, error) {
	records, err := statsdb.ReadRuns(db)
	if err != nil {
		return nil, err
	}
	fits := FitRunHistory(records)
	o.SeedFits(fits)
	return fits, nil
}

// SeedFits applies history fits: each seeds run_time/<forecast> with a
// frozen baseline and pre-loads its code-version changepoints.
func (o *Observatory) SeedFits(fits []BaselineFit) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, f := range fits {
		s := o.get(KindRunTime, f.Forecast)
		s.center = f.Center
		s.sigma = sigmaFloor(f.Sigma, f.Center)
		s.frozen = true
		s.changepoints = append(s.changepoints, f.Changepoints...)
	}
}
