package ondemand

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
)

func plant() []core.NodeInfo {
	return []core.NodeInfo{
		{Name: "n1", CPUs: 2, Speed: 1},
		{Name: "n2", CPUs: 2, Speed: 1},
	}
}

// tightStock loads both nodes so any naive extra work makes a deadline
// slip: each node runs two serial jobs that finish just before midnight.
func tightStock() ([]core.Run, map[string]string) {
	runs := []core.Run{
		{Name: "s1", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s2", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s3", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s4", Work: 80000, Start: 3600, Deadline: 86400},
	}
	assign := map[string]string{"s1": "n1", "s2": "n1", "s3": "n2", "s4": "n2"}
	return runs, assign
}

// looseStock leaves plenty of headroom.
func looseStock() ([]core.Run, map[string]string) {
	runs := []core.Run{
		{Name: "s1", Work: 30000, Start: 3600, Deadline: 86400},
		{Name: "s2", Work: 30000, Start: 3600, Deadline: 86400},
	}
	assign := map[string]string{"s1": "n1", "s2": "n2"}
	return runs, assign
}

func TestDeadlineAwareAdmitsWithHeadroom(t *testing.T) {
	runs, assign := looseStock()
	res, err := Run(Config{
		Nodes:  plant(),
		Stock:  runs,
		Assign: assign,
		Requests: []Request{
			{ID: "r1", Arrival: 20000, Work: 5000},
			{ID: "r2", Arrival: 25000, Work: 5000},
		},
		Policy: DeadlineAwarePolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(Admitted) != 2 {
		t.Fatalf("admitted %d of 2: %+v", res.Count(Admitted), res.Requests)
	}
	if len(res.StockLate) != 0 {
		t.Fatalf("stock late: %v", res.StockLate)
	}
	for _, rr := range res.Requests {
		if math.IsNaN(rr.Completed) {
			t.Fatalf("request %s never completed", rr.Request.ID)
		}
	}
}

func TestDeadlineAwareProtectsStockUnderLoad(t *testing.T) {
	runs, assign := tightStock()
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{
			ID:      fmt.Sprintf("r%d", i),
			Arrival: 20000 + float64(i)*1000,
			Work:    20000,
		})
	}
	res, err := Run(Config{
		Nodes:    plant(),
		Stock:    runs,
		Assign:   assign,
		Requests: reqs,
		Policy:   DeadlineAwarePolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StockLate) != 0 {
		t.Fatalf("deadline-aware policy made stock late: %v", res.StockLate)
	}
	if res.Count(Deferred) == 0 {
		t.Fatal("expected deferrals under a tight stock load")
	}
	// Deferred requests still complete eventually (night shift).
	for _, rr := range res.Requests {
		if rr.Outcome == Deferred && math.IsNaN(rr.Completed) {
			t.Fatalf("deferred request %s never ran", rr.Request.ID)
		}
		if rr.Outcome == Deferred && rr.Started < 83600 {
			t.Fatalf("deferred request %s started at %v, before stock drained", rr.Request.ID, rr.Started)
		}
	}
}

func TestGreedyMakesStockLateUnderSameLoad(t *testing.T) {
	runs, assign := tightStock()
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{
			ID:      fmt.Sprintf("r%d", i),
			Arrival: 20000 + float64(i)*1000,
			Work:    20000,
		})
	}
	res, err := Run(Config{
		Nodes:    plant(),
		Stock:    runs,
		Assign:   assign,
		Requests: reqs,
		Policy:   GreedyPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(Admitted) != 6 {
		t.Fatalf("greedy admitted %d of 6", res.Count(Admitted))
	}
	if len(res.StockLate) == 0 {
		t.Fatal("greedy policy should have made made-to-stock runs late")
	}
}

func TestGreedyLowerLatencyAtStockExpense(t *testing.T) {
	runs, assign := tightStock()
	reqs := []Request{{ID: "r", Arrival: 20000, Work: 20000}}
	greedy, err := Run(Config{Nodes: plant(), Stock: runs, Assign: assign, Requests: reqs, Policy: GreedyPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Run(Config{Nodes: plant(), Stock: runs, Assign: assign, Requests: reqs, Policy: DeadlineAwarePolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.MeanLatency() >= aware.MeanLatency() {
		t.Fatalf("greedy latency %v should beat deadline-aware %v (that is its one virtue)",
			greedy.MeanLatency(), aware.MeanLatency())
	}
}

func TestRejectWhenDeadlineUnreachable(t *testing.T) {
	runs, assign := tightStock()
	res, err := Run(Config{
		Nodes:  plant(),
		Stock:  runs,
		Assign: assign,
		Requests: []Request{
			// Wants completion by noon, but the stock is saturated until
			// nearly midnight and deferral would be far too late.
			{ID: "urgent", Arrival: 20000, Work: 20000, Deadline: 43200},
		},
		Policy: DeadlineAwarePolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests[0].Outcome != Rejected {
		t.Fatalf("outcome = %v, want rejected", res.Requests[0].Outcome)
	}
	if !math.IsNaN(res.Requests[0].Completed) {
		t.Fatal("rejected request ran anyway")
	}
}

func TestRequestWithFeasibleDeadlineAdmitted(t *testing.T) {
	runs, assign := looseStock()
	res, err := Run(Config{
		Nodes:    plant(),
		Stock:    runs,
		Assign:   assign,
		Requests: []Request{{ID: "r", Arrival: 10000, Work: 5000, Deadline: 30000}},
		Policy:   DeadlineAwarePolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Requests[0]
	if rr.Outcome != Admitted || rr.Completed > 30000 {
		t.Fatalf("result = %+v", rr)
	}
}

func TestDefaultPolicyIsDeadlineAware(t *testing.T) {
	runs, assign := looseStock()
	res, err := Run(Config{
		Nodes:    plant(),
		Stock:    runs,
		Assign:   assign,
		Requests: []Request{{ID: "r", Arrival: 10000, Work: 1000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests[0].Outcome != Admitted {
		t.Fatalf("outcome = %v", res.Requests[0].Outcome)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	_, err := Run(Config{
		Nodes:  plant(),
		Stock:  []core.Run{{Name: "s", Work: -1}},
		Assign: map[string]string{"s": "n1"},
	})
	if err == nil {
		t.Fatal("invalid stock accepted")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{Admitted, Deferred, Rejected, Outcome(9)} {
		if o.String() == "" {
			t.Fatal("empty outcome name")
		}
	}
	if (GreedyPolicy{}).String() == "" || (DeadlineAwarePolicy{}).String() == "" {
		t.Fatal("empty policy name")
	}
}

func TestNoRequests(t *testing.T) {
	runs, assign := looseStock()
	res, err := Run(Config{Nodes: plant(), Stock: runs, Assign: assign})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != 0 || len(res.StockLate) != 0 {
		t.Fatalf("res = %+v", res)
	}
	if !math.IsNaN(res.MeanLatency()) {
		t.Fatal("MeanLatency of empty set should be NaN")
	}
}

// Regression: a made-to-stock run wedged on a down node never completes;
// it must still be flagged late rather than silently missing from
// StockLate (the missing map entry used to read as completion at t=0).
func TestWedgedStockRunFlaggedLate(t *testing.T) {
	nodes := []core.NodeInfo{
		{Name: "n1", CPUs: 2, Speed: 1},
		{Name: "n2", CPUs: 2, Speed: 1, Down: true},
	}
	runs := []core.Run{
		{Name: "s1", Work: 30000, Start: 3600, Deadline: 86400},
		{Name: "s2", Work: 30000, Start: 3600, Deadline: 86400},
	}
	assign := map[string]string{"s1": "n1", "s2": "n2"}
	res, err := Run(Config{Nodes: nodes, Stock: runs, Assign: assign})
	if err != nil {
		t.Fatal(err)
	}
	if _, finished := res.StockCompletion["s2"]; finished {
		t.Fatal("s2 completed on a node that is down for the whole horizon")
	}
	if len(res.StockLate) != 1 || res.StockLate[0] != "s2" {
		t.Fatalf("StockLate = %v, want [s2]", res.StockLate)
	}
}

// Regression: if every node is down when the night shift drains the
// deferred queue, the requests must stay queued for the next poll rather
// than being dropped with no retry.
func TestDeferredSurvivesAllNodesDownAtDrain(t *testing.T) {
	runs, assign := tightStock()
	res, err := Run(Config{
		Nodes:    plant(),
		Stock:    runs,
		Assign:   assign,
		Requests: []Request{{ID: "r", Arrival: 20000, Work: 20000}},
		Policy:   DeadlineAwarePolicy{},
		Outages: []Outage{
			// Both nodes go down right after the stock drains (83600) and
			// come back at 90000 — the first drain polls find no node up.
			{Node: "n1", From: 83650, To: 90000},
			{Node: "n2", From: 83650, To: 90000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Requests[0]
	if rr.Outcome != Deferred {
		t.Fatalf("outcome = %v, want deferred", rr.Outcome)
	}
	if math.IsNaN(rr.Completed) {
		t.Fatal("deferred request dropped when all nodes were down at drain time")
	}
	if rr.Started < 90000 {
		t.Fatalf("request started at %v, before the nodes were repaired", rr.Started)
	}
}

// Regression: the deferred queue drains by priority, not arrival order —
// the high-priority request gets the fast node even though it arrived
// second.
func TestDeferredDrainsByPriority(t *testing.T) {
	nodes := []core.NodeInfo{
		{Name: "n1", CPUs: 2, Speed: 10},
		{Name: "n2", CPUs: 2, Speed: 1},
	}
	// Two serial jobs per node finishing at 83600 with only 50s of slack:
	// any admitted extra work slips a deadline, so requests defer.
	runs := []core.Run{
		{Name: "s1", Work: 800000, Start: 3600, Deadline: 83650},
		{Name: "s2", Work: 800000, Start: 3600, Deadline: 83650},
		{Name: "s3", Work: 80000, Start: 3600, Deadline: 83650},
		{Name: "s4", Work: 80000, Start: 3600, Deadline: 83650},
	}
	assign := map[string]string{"s1": "n1", "s2": "n1", "s3": "n2", "s4": "n2"}
	res, err := Run(Config{
		Nodes:  nodes,
		Stock:  runs,
		Assign: assign,
		Requests: []Request{
			{ID: "low", Arrival: 20000, Work: 50000, Priority: 1},
			{ID: "high", Arrival: 21000, Work: 50000, Priority: 9},
		},
		Policy: DeadlineAwarePolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StockLate) != 0 {
		t.Fatalf("stock late: %v", res.StockLate)
	}
	var low, high RequestResult
	for _, rr := range res.Requests {
		switch rr.Request.ID {
		case "low":
			low = rr
		case "high":
			high = rr
		}
	}
	if low.Outcome != Deferred || high.Outcome != Deferred {
		t.Fatalf("outcomes = %v/%v, want both deferred", low.Outcome, high.Outcome)
	}
	if high.Node != "n1" {
		t.Fatalf("high-priority request drained to %s, want the fast node n1", high.Node)
	}
	if !(high.Completed < low.Completed) {
		t.Fatalf("high-priority completed at %v, low at %v — priority ignored at drain",
			high.Completed, low.Completed)
	}
}

// Direct coverage of the reject path: no node can absorb the request
// without slipping the stock, and deferral provably misses the request's
// own deadline.
func TestDecideRejectsWhenDrainMissesDeadline(t *testing.T) {
	nodes := []core.NodeInfo{{Name: "n1", CPUs: 1, Speed: 1}}
	stock := &core.Plan{
		Nodes:  nodes,
		Runs:   []core.Run{{Name: "s", Work: 50000, Start: 0, Deadline: 50500}},
		Assign: map[string]string{"s": "n1"},
	}
	st := &State{Now: 0, Nodes: nodes, Stock: stock, Active: map[string]int{"n1": 1}}

	node, out := DeadlineAwarePolicy{}.Decide(Request{ID: "r", Work: 10000, Deadline: 20000}, st)
	if node != "" || out != Rejected {
		t.Fatalf("decide = (%q, %v), want rejected: drain 50000 + work 10000 > deadline 20000", node, out)
	}

	// Same request with a deadline past the drain is deferred, not rejected.
	node, out = DeadlineAwarePolicy{}.Decide(Request{ID: "r", Work: 10000, Deadline: 70000}, st)
	if node != "" || out != Deferred {
		t.Fatalf("decide = (%q, %v), want deferred", node, out)
	}
}

// Direct coverage of the Predict-error continue: a stock plan that fails
// validation (assignment to an unknown node) errors in every trial, so no
// node is chosen; the drain estimate degrades to zero.
func TestDecideSkipsNodesOnPredictError(t *testing.T) {
	nodes := []core.NodeInfo{{Name: "n1", CPUs: 2, Speed: 1}}
	stock := &core.Plan{
		Nodes:  nodes,
		Runs:   []core.Run{{Name: "s", Work: 1000, Start: 0}},
		Assign: map[string]string{"s": "ghost"},
	}
	st := &State{Now: 0, Nodes: nodes, Stock: stock, Active: map[string]int{"n1": 1}}

	node, out := DeadlineAwarePolicy{}.Decide(Request{ID: "r", Work: 100}, st)
	if node != "" || out != Deferred {
		t.Fatalf("decide = (%q, %v), want deferred when every Predict errors", node, out)
	}

	// With a deadline, the zero drain estimate still rejects impossible work.
	node, out = DeadlineAwarePolicy{}.Decide(Request{ID: "r", Work: 100, Deadline: 50}, st)
	if node != "" || out != Rejected {
		t.Fatalf("decide = (%q, %v), want rejected (work alone exceeds deadline)", node, out)
	}
}

// Outages must name known nodes.
func TestOutageUnknownNodeRejected(t *testing.T) {
	runs, assign := looseStock()
	_, err := Run(Config{
		Nodes:   plant(),
		Stock:   runs,
		Assign:  assign,
		Outages: []Outage{{Node: "ghost", From: 100}},
	})
	if err == nil {
		t.Fatal("outage for unknown node accepted")
	}
}
