package ondemand

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
)

func plant() []core.NodeInfo {
	return []core.NodeInfo{
		{Name: "n1", CPUs: 2, Speed: 1},
		{Name: "n2", CPUs: 2, Speed: 1},
	}
}

// tightStock loads both nodes so any naive extra work makes a deadline
// slip: each node runs two serial jobs that finish just before midnight.
func tightStock() ([]core.Run, map[string]string) {
	runs := []core.Run{
		{Name: "s1", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s2", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s3", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s4", Work: 80000, Start: 3600, Deadline: 86400},
	}
	assign := map[string]string{"s1": "n1", "s2": "n1", "s3": "n2", "s4": "n2"}
	return runs, assign
}

// looseStock leaves plenty of headroom.
func looseStock() ([]core.Run, map[string]string) {
	runs := []core.Run{
		{Name: "s1", Work: 30000, Start: 3600, Deadline: 86400},
		{Name: "s2", Work: 30000, Start: 3600, Deadline: 86400},
	}
	assign := map[string]string{"s1": "n1", "s2": "n2"}
	return runs, assign
}

func TestDeadlineAwareAdmitsWithHeadroom(t *testing.T) {
	runs, assign := looseStock()
	res, err := Run(Config{
		Nodes:  plant(),
		Stock:  runs,
		Assign: assign,
		Requests: []Request{
			{ID: "r1", Arrival: 20000, Work: 5000},
			{ID: "r2", Arrival: 25000, Work: 5000},
		},
		Policy: DeadlineAwarePolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(Admitted) != 2 {
		t.Fatalf("admitted %d of 2: %+v", res.Count(Admitted), res.Requests)
	}
	if len(res.StockLate) != 0 {
		t.Fatalf("stock late: %v", res.StockLate)
	}
	for _, rr := range res.Requests {
		if math.IsNaN(rr.Completed) {
			t.Fatalf("request %s never completed", rr.Request.ID)
		}
	}
}

func TestDeadlineAwareProtectsStockUnderLoad(t *testing.T) {
	runs, assign := tightStock()
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{
			ID:      fmt.Sprintf("r%d", i),
			Arrival: 20000 + float64(i)*1000,
			Work:    20000,
		})
	}
	res, err := Run(Config{
		Nodes:    plant(),
		Stock:    runs,
		Assign:   assign,
		Requests: reqs,
		Policy:   DeadlineAwarePolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StockLate) != 0 {
		t.Fatalf("deadline-aware policy made stock late: %v", res.StockLate)
	}
	if res.Count(Deferred) == 0 {
		t.Fatal("expected deferrals under a tight stock load")
	}
	// Deferred requests still complete eventually (night shift).
	for _, rr := range res.Requests {
		if rr.Outcome == Deferred && math.IsNaN(rr.Completed) {
			t.Fatalf("deferred request %s never ran", rr.Request.ID)
		}
		if rr.Outcome == Deferred && rr.Started < 83600 {
			t.Fatalf("deferred request %s started at %v, before stock drained", rr.Request.ID, rr.Started)
		}
	}
}

func TestGreedyMakesStockLateUnderSameLoad(t *testing.T) {
	runs, assign := tightStock()
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{
			ID:      fmt.Sprintf("r%d", i),
			Arrival: 20000 + float64(i)*1000,
			Work:    20000,
		})
	}
	res, err := Run(Config{
		Nodes:    plant(),
		Stock:    runs,
		Assign:   assign,
		Requests: reqs,
		Policy:   GreedyPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(Admitted) != 6 {
		t.Fatalf("greedy admitted %d of 6", res.Count(Admitted))
	}
	if len(res.StockLate) == 0 {
		t.Fatal("greedy policy should have made made-to-stock runs late")
	}
}

func TestGreedyLowerLatencyAtStockExpense(t *testing.T) {
	runs, assign := tightStock()
	reqs := []Request{{ID: "r", Arrival: 20000, Work: 20000}}
	greedy, err := Run(Config{Nodes: plant(), Stock: runs, Assign: assign, Requests: reqs, Policy: GreedyPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Run(Config{Nodes: plant(), Stock: runs, Assign: assign, Requests: reqs, Policy: DeadlineAwarePolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.MeanLatency() >= aware.MeanLatency() {
		t.Fatalf("greedy latency %v should beat deadline-aware %v (that is its one virtue)",
			greedy.MeanLatency(), aware.MeanLatency())
	}
}

func TestRejectWhenDeadlineUnreachable(t *testing.T) {
	runs, assign := tightStock()
	res, err := Run(Config{
		Nodes:  plant(),
		Stock:  runs,
		Assign: assign,
		Requests: []Request{
			// Wants completion by noon, but the stock is saturated until
			// nearly midnight and deferral would be far too late.
			{ID: "urgent", Arrival: 20000, Work: 20000, Deadline: 43200},
		},
		Policy: DeadlineAwarePolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests[0].Outcome != Rejected {
		t.Fatalf("outcome = %v, want rejected", res.Requests[0].Outcome)
	}
	if !math.IsNaN(res.Requests[0].Completed) {
		t.Fatal("rejected request ran anyway")
	}
}

func TestRequestWithFeasibleDeadlineAdmitted(t *testing.T) {
	runs, assign := looseStock()
	res, err := Run(Config{
		Nodes:    plant(),
		Stock:    runs,
		Assign:   assign,
		Requests: []Request{{ID: "r", Arrival: 10000, Work: 5000, Deadline: 30000}},
		Policy:   DeadlineAwarePolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Requests[0]
	if rr.Outcome != Admitted || rr.Completed > 30000 {
		t.Fatalf("result = %+v", rr)
	}
}

func TestDefaultPolicyIsDeadlineAware(t *testing.T) {
	runs, assign := looseStock()
	res, err := Run(Config{
		Nodes:    plant(),
		Stock:    runs,
		Assign:   assign,
		Requests: []Request{{ID: "r", Arrival: 10000, Work: 1000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests[0].Outcome != Admitted {
		t.Fatalf("outcome = %v", res.Requests[0].Outcome)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	_, err := Run(Config{
		Nodes:  plant(),
		Stock:  []core.Run{{Name: "s", Work: -1}},
		Assign: map[string]string{"s": "n1"},
	})
	if err == nil {
		t.Fatal("invalid stock accepted")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{Admitted, Deferred, Rejected, Outcome(9)} {
		if o.String() == "" {
			t.Fatal("empty outcome name")
		}
	}
	if (GreedyPolicy{}).String() == "" || (DeadlineAwarePolicy{}).String() == "" {
		t.Fatal("empty policy name")
	}
}

func TestNoRequests(t *testing.T) {
	runs, assign := looseStock()
	res, err := Run(Config{Nodes: plant(), Stock: runs, Assign: assign})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != 0 || len(res.StockLate) != 0 {
		t.Fatalf("res = %+v", res)
	}
	if !math.IsNaN(res.MeanLatency()) {
		t.Fatal("MeanLatency of empty set should be NaN")
	}
}
