// Package ondemand adds made-to-order products to the factory — the
// future work named in the paper's conclusion ("we are investigating how
// to incorporate made-to-order (on-demand) products into the system along
// with the made-to-stock products currently manufactured in the factory").
//
// Requests for custom products (a transect at a new location, an
// animation over specific depths, a hindcast product) arrive during the
// production day. An admission policy decides, per request, whether to
// run it now — and where — or defer it until the made-to-stock forecasts
// are safe, or reject it. The deadline-aware policy uses ForeMan's
// completion-time predictor as a what-if oracle: a request is only placed
// on a node if the resulting plan still meets every made-to-stock
// deadline.
package ondemand

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// Request is one made-to-order product request.
type Request struct {
	ID       string
	Arrival  float64 // seconds after midnight
	Work     float64 // reference CPU-seconds to compute the product
	Deadline float64 // 0 = best effort
	Priority int
}

// Outcome classifies what happened to a request.
type Outcome int

// Request outcomes.
const (
	// Admitted requests ran immediately on some node.
	Admitted Outcome = iota
	// Deferred requests waited until the made-to-stock runs finished.
	Deferred
	// Rejected requests were never run.
	Rejected
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case Deferred:
		return "deferred"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Policy decides placement for a request at its arrival instant.
type Policy interface {
	// Decide returns the chosen node name for immediate execution, or ""
	// with an outcome of Deferred/Rejected. state describes the factory
	// at the arrival instant.
	Decide(req Request, state *State) (node string, outcome Outcome)
	fmt.Stringer
}

// State is the factory's condition at a decision instant.
type State struct {
	Now   float64
	Nodes []core.NodeInfo
	// Stock is the plan of made-to-stock runs with their REMAINING work
	// at Now (completed runs are absent).
	Stock *core.Plan
	// Active is the number of jobs currently executing per node
	// (made-to-stock and already-admitted requests).
	Active map[string]int
}

// GreedyPolicy places every request on the node with the fewest active
// jobs, ignoring made-to-stock deadlines — the baseline that shows why
// admission control matters.
type GreedyPolicy struct{}

// Decide implements Policy.
func (GreedyPolicy) Decide(req Request, state *State) (string, Outcome) {
	best := ""
	bestActive := 0
	for _, n := range state.Nodes {
		if n.Down {
			continue
		}
		a := state.Active[n.Name]
		if best == "" || a < bestActive {
			best, bestActive = n.Name, a
		}
	}
	if best == "" {
		return "", Rejected
	}
	return best, Admitted
}

func (GreedyPolicy) String() string { return "greedy" }

// DeadlineAwarePolicy admits a request only onto a node where the
// predictor says every made-to-stock run still meets its deadline with
// the request's work added; otherwise the request is deferred (or
// rejected if it has a deadline that deferral would miss).
type DeadlineAwarePolicy struct{}

// Decide implements Policy.
func (DeadlineAwarePolicy) Decide(req Request, state *State) (string, Outcome) {
	type candidate struct {
		node       string
		completion float64
	}
	var best *candidate
	for _, n := range state.Nodes {
		if n.Down {
			continue
		}
		trial := state.Stock.Clone()
		trial.Runs = append(trial.Runs, core.Run{
			Name:     "ondemand:" + req.ID,
			Work:     req.Work,
			Start:    state.Now,
			Priority: req.Priority,
		})
		trial.Assign["ondemand:"+req.ID] = n.Name
		pred, err := trial.Predict()
		if err != nil {
			continue
		}
		if !pred.Feasible(trial) {
			continue
		}
		c := pred.Completion["ondemand:"+req.ID]
		if req.Deadline > 0 && c > req.Deadline {
			continue
		}
		if best == nil || c < best.completion {
			best = &candidate{node: n.Name, completion: c}
		}
	}
	if best != nil {
		return best.node, Admitted
	}
	if req.Deadline > 0 {
		// Deferral runs after the stock drains; if that provably misses
		// the request's deadline, reject outright.
		drain := 0.0
		if pred, err := state.Stock.Predict(); err == nil {
			drain = pred.Makespan()
		}
		if drain+req.Work > req.Deadline {
			return "", Rejected
		}
	}
	return "", Deferred
}

func (DeadlineAwarePolicy) String() string { return "deadline-aware" }

// RequestResult is one request's fate.
type RequestResult struct {
	Request   Request
	Outcome   Outcome
	Node      string
	Started   float64
	Completed float64 // NaN if never ran
}

// Latency is completion minus arrival (NaN if never ran).
func (r RequestResult) Latency() float64 { return r.Completed - r.Request.Arrival }

// Outage takes a node down mid-simulation and, when To > From, repairs
// it again. Queued work on the node resumes at repair (cluster
// semantics); the admission policy sees the live down state.
type Outage struct {
	Node     string
	From, To float64
}

// Config describes an on-demand simulation: a plant, the day's
// made-to-stock runs, the request stream, and the admission policy.
type Config struct {
	Nodes    []core.NodeInfo
	Stock    []core.Run        // made-to-stock runs (with Start, Deadline)
	Assign   map[string]string // stock assignment
	Requests []Request
	Policy   Policy
	Outages  []Outage
}

// Result summarizes a simulated day.
type Result struct {
	Requests []RequestResult
	// StockCompletion holds actual completion times of made-to-stock runs.
	StockCompletion map[string]float64
	// StockLate lists made-to-stock runs that missed their deadlines,
	// sorted.
	StockLate []string
}

// Count returns how many requests had the outcome.
func (r Result) Count(o Outcome) int {
	n := 0
	for _, rr := range r.Requests {
		if rr.Outcome == o {
			n++
		}
	}
	return n
}

// MeanLatency averages latency over requests that ran.
func (r Result) MeanLatency() float64 {
	var sum float64
	n := 0
	for _, rr := range r.Requests {
		if !math.IsNaN(rr.Completed) {
			sum += rr.Latency()
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Run simulates the day on the discrete-event engine.
func Run(cfg Config) (Result, error) {
	plan := &core.Plan{Nodes: cfg.Nodes, Runs: cfg.Stock, Assign: cfg.Assign}
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Policy == nil {
		cfg.Policy = DeadlineAwarePolicy{}
	}

	eng := sim.NewEngine()
	sched := eng.Scope("ondemand")
	cl := cluster.New(eng)
	nodeInfo := make(map[string]core.NodeInfo, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		node := cl.AddNode(n.Name, n.CPUs, n.Speed)
		if n.Down {
			node.Fail()
		}
		nodeInfo[n.Name] = n
	}
	for _, o := range cfg.Outages {
		if _, ok := nodeInfo[o.Node]; !ok {
			return Result{}, fmt.Errorf("ondemand: outage for unknown node %q", o.Node)
		}
		node := cl.Node(o.Node)
		sched.At(o.From, node.Fail)
		if o.To > o.From {
			sched.At(o.To, node.Repair)
		}
	}

	res := Result{StockCompletion: make(map[string]float64, len(cfg.Stock))}

	// Track remaining stock work for what-if states.
	stockJobs := make(map[string]*cluster.Job, len(cfg.Stock))
	stockDone := 0
	for _, r := range cfg.Stock {
		r := r
		sched.At(r.Start, func() {
			node := cl.Node(cfg.Assign[r.Name])
			stockJobs[r.Name] = node.Submit("stock:"+r.Name, r.Work, func() {
				res.StockCompletion[r.Name] = eng.Now()
				delete(stockJobs, r.Name)
				stockDone++
			})
		})
	}

	// Deferred requests queue here and drain when the stock finishes.
	var deferred []*RequestResult
	results := make([]*RequestResult, len(cfg.Requests))

	runRequest := func(rr *RequestResult, nodeName string) {
		rr.Node = nodeName
		rr.Started = eng.Now()
		cl.Node(nodeName).Submit("ondemand:"+rr.Request.ID, rr.Request.Work, func() {
			rr.Completed = eng.Now()
		})
	}

	leastLoadedUp := func() string {
		best, bestActive := "", 0
		for _, n := range cfg.Nodes {
			node := cl.Node(n.Name)
			if node.Down() {
				continue
			}
			if best == "" || node.Active() < bestActive {
				best, bestActive = n.Name, node.Active()
			}
		}
		return best
	}

	var drainDeferred func()
	drainDeferred = func() {
		if stockDone < len(cfg.Stock) {
			return
		}
		// Highest priority first; FIFO within a priority class.
		sort.SliceStable(deferred, func(i, j int) bool {
			return deferred[i].Request.Priority > deferred[j].Request.Priority
		})
		kept := deferred[:0]
		for _, rr := range deferred {
			if node := leastLoadedUp(); node != "" {
				runRequest(rr, node)
			} else {
				// Every node is down: keep the request queued for the next
				// night-shift poll instead of dropping it.
				kept = append(kept, rr)
			}
		}
		deferred = kept
	}

	// currentState snapshots remaining stock work for the policy. Node
	// infos carry the LIVE down state so mid-day outages are visible to
	// the what-if oracle, not just the configured state at t=0.
	currentState := func() *State {
		now := eng.Now()
		nodesNow := make([]core.NodeInfo, len(cfg.Nodes))
		for i, n := range cfg.Nodes {
			n.Down = cl.Node(n.Name).Down()
			nodesNow[i] = n
		}
		st := &State{
			Now:    now,
			Nodes:  nodesNow,
			Active: make(map[string]int, len(cfg.Nodes)),
		}
		for _, n := range cfg.Nodes {
			st.Active[n.Name] = cl.Node(n.Name).Active()
		}
		stock := &core.Plan{Nodes: nodesNow, Assign: map[string]string{}}
		for _, r := range cfg.Stock {
			job, running := stockJobs[r.Name]
			if _, finished := res.StockCompletion[r.Name]; finished {
				continue
			}
			rem := r
			rem.Start = now
			if running {
				rem.Work = job.Remaining()
			} else if r.Start > now {
				rem.Start = r.Start // not yet launched
			}
			stock.Runs = append(stock.Runs, rem)
			stock.Assign[rem.Name] = cfg.Assign[r.Name]
		}
		st.Stock = stock
		return st
	}

	reqs := append([]Request(nil), cfg.Requests...)
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Arrival != reqs[j].Arrival {
			return reqs[i].Arrival < reqs[j].Arrival
		}
		return reqs[i].ID < reqs[j].ID
	})
	for i, req := range reqs {
		i, req := i, req
		results[i] = &RequestResult{Request: req, Completed: math.NaN()}
		sched.At(req.Arrival, func() {
			node, outcome := cfg.Policy.Decide(req, currentState())
			results[i].Outcome = outcome
			switch outcome {
			case Admitted:
				runRequest(results[i], node)
			case Deferred:
				deferred = append(deferred, results[i])
			}
		})
	}

	// Poll for stock completion to drain deferred requests (the night
	// shift picks up what the day deferred). The horizon bounds the
	// simulation when a down node wedges the stock forever.
	const horizon = 7 * 86400.0
	var nightShift func()
	nightShift = func() {
		drainDeferred()
		if (len(deferred) > 0 || stockDone < len(cfg.Stock)) && eng.Now() < horizon {
			sched.After(300, nightShift)
		}
	}
	sched.After(300, nightShift)

	eng.Run()

	for _, rr := range results {
		res.Requests = append(res.Requests, *rr)
	}
	for _, r := range cfg.Stock {
		if r.Deadline <= 0 {
			continue
		}
		// A run that never completed (wedged on a down node until the
		// horizon) is late too — the missing map entry must not read as
		// completion at t=0.
		completion, finished := res.StockCompletion[r.Name]
		if !finished || completion > r.Deadline {
			res.StockLate = append(res.StockLate, r.Name)
		}
	}
	sort.Strings(res.StockLate)
	return res, nil
}
