package logs

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

func sample() *RunRecord {
	return &RunRecord{
		Forecast:    "forecast-tillamook",
		Region:      "tillamook",
		Year:        2005,
		Day:         21,
		Node:        "fnode01",
		CodeVersion: "elcirc-5.01",
		CodeFactor:  1.0,
		MeshName:    "tillamook-mesh-v1",
		MeshSides:   30000,
		Timesteps:   11520,
		Start:       1738800,
		End:         1819133,
		Walltime:    80333,
		Status:      StatusCompleted,
		Products:    8,
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	r := sample()
	got, err := Parse(Format(r))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestParseIgnoresUnknownKeysAndComments(t *testing.T) {
	text := Format(sample()) + "future_field: whatever\n# trailing comment\n\n"
	got, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.Forecast != "forecast-tillamook" {
		t.Fatalf("Forecast = %q", got.Forecast)
	}
}

func TestParseRejectsMalformedValues(t *testing.T) {
	bad := []string{
		strings.Replace(Format(sample()), "day: 21", "day: twenty-one", 1),
		strings.Replace(Format(sample()), "walltime: 80333.00", "walltime: NaNish", 1),
		"forecast=tillamook\n", // no colon separator
	}
	for i, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("case %d: Parse accepted malformed log", i)
		}
	}
}

func TestParseFailureModes(t *testing.T) {
	mangle := func(old, new string) string {
		return strings.Replace(Format(sample()), old, new, 1)
	}
	cases := []struct {
		name string
		text string
		want string // substring the error must carry
	}{
		{"empty log", "", "empty log"},
		{"truncated last line", strings.TrimSuffix(Format(sample()), "\n"), "truncated log"},
		{"truncated mid-value", mangle("walltime: 80333.00\nstatus: completed\nproducts: 8\n", "walltime: 803"), "truncated log"},
		{"no separator", "forecast tillamook\n", "no key separator"},
		{"empty key", mangle("day: 21", ": 21"), "empty key"},
		{"non-integer day", mangle("day: 21", "day: twenty-one"), `bad day value "twenty-one"`},
		{"non-float walltime", mangle("walltime: 80333.00", "walltime: NaNish"), "bad walltime value"},
		{"NaN walltime", mangle("walltime: 80333.00", "walltime: NaN"), "non-finite walltime"},
		{"infinite start", mangle("start: 1738800.00", "start: +Inf"), "non-finite start"},
		{"duplicate key", mangle("region: tillamook", "region: tillamook\nday: 22"), "duplicate key day"},
		{"invalid record", mangle("status: completed", "status: exploded"), "unknown status"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.text)
		if err == nil {
			t.Errorf("%s: Parse accepted malformed log", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseFileErrorsCarryPathAndLine(t *testing.T) {
	fs := vfs.New(nil)
	if err := fs.WriteString("/runs/f/2005-001/run.log", "forecast: f\nday: zebra\n"); err != nil {
		t.Fatal(err)
	}
	_, err := ParseFile(fs, "/runs/f/2005-001/run.log")
	if err == nil {
		t.Fatal("ParseFile accepted corrupt log")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Path != "/runs/f/2005-001/run.log" || pe.Line != 2 {
		t.Fatalf("ParseError context = %q line %d, want path and line 2", pe.Path, pe.Line)
	}
	if !strings.Contains(err.Error(), "/runs/f/2005-001/run.log:2:") {
		t.Fatalf("error %q lacks file:line prefix", err)
	}
	// Crawl surfaces the same context.
	if _, err := Crawl(fs, "/runs"); err == nil || !strings.Contains(err.Error(), "run.log:2:") {
		t.Fatalf("Crawl error = %v, want file:line context", err)
	}
}

func TestValidateRules(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*RunRecord)
	}{
		{"empty forecast", func(r *RunRecord) { r.Forecast = "" }},
		{"day zero", func(r *RunRecord) { r.Day = 0 }},
		{"day too large", func(r *RunRecord) { r.Day = 400 }},
		{"bad status", func(r *RunRecord) { r.Status = "exploded" }},
		{"completed without walltime", func(r *RunRecord) { r.Walltime = 0 }},
	}
	for _, tc := range cases {
		r := sample()
		tc.mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad record", tc.name)
		}
	}
	running := sample()
	running.Status = StatusRunning
	running.Walltime = 0
	running.End = 0
	if err := running.Validate(); err != nil {
		t.Errorf("running record rejected: %v", err)
	}
}

func TestRunDirLayout(t *testing.T) {
	if got := RunDir("forecast-tillamook", 2005, 7); got != "/runs/forecast-tillamook/2005-007" {
		t.Fatalf("RunDir = %q", got)
	}
	if got := LogPath("/runs/f/2005-007"); got != "/runs/f/2005-007/run.log" {
		t.Fatalf("LogPath = %q", got)
	}
}

func TestWriteAndCrawl(t *testing.T) {
	fs := vfs.New(nil)
	r1 := sample()
	r2 := sample()
	r2.Day = 22
	r3 := sample()
	r3.Forecast = "forecast-columbia"
	r3.Day = 5
	for _, r := range []*RunRecord{r1, r2, r3} {
		if err := Write(fs, r); err != nil {
			t.Fatal(err)
		}
	}
	// Unrelated files must not break the crawl.
	if err := fs.Append("/runs/forecast-tillamook/2005-021/outputs/1_salt.63", 100); err != nil {
		t.Fatal(err)
	}
	records, err := Crawl(fs, "/runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("crawled %d records, want 3", len(records))
	}
	// Sorted by forecast then day.
	if records[0].Forecast != "forecast-columbia" || records[1].Day != 21 || records[2].Day != 22 {
		t.Fatalf("order: %v %v %v", records[0].Forecast, records[1].Day, records[2].Day)
	}
}

func TestParsedRecordsCarrySourcePath(t *testing.T) {
	// Every record parsed from a file names that file, so statsdb rows
	// trace back to disk without re-crawling the run tree.
	fs := vfs.New(nil)
	r := sample()
	if err := Write(fs, r); err != nil {
		t.Fatal(err)
	}
	path := LogPath(RunDir(r.Forecast, r.Year, r.Day))
	got, err := ParseFile(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SourcePath != path {
		t.Fatalf("ParseFile SourcePath = %q, want %q", got.SourcePath, path)
	}
	records, err := Crawl(fs, "/runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].SourcePath != path {
		t.Fatalf("Crawl SourcePath = %q, want %q", records[0].SourcePath, path)
	}
	fromText, err := ParseFrom(Format(r), path)
	if err != nil {
		t.Fatal(err)
	}
	if fromText.SourcePath != path {
		t.Fatalf("ParseFrom SourcePath = %q", fromText.SourcePath)
	}
	inMemory, err := Parse(Format(r))
	if err != nil {
		t.Fatal(err)
	}
	if inMemory.SourcePath != "" {
		t.Fatalf("Parse SourcePath = %q, want empty", inMemory.SourcePath)
	}
}

func TestCrawlMissingRootIsEmpty(t *testing.T) {
	records, err := Crawl(vfs.New(nil), "/runs")
	if err != nil || records != nil {
		t.Fatalf("Crawl(missing) = %v, %v", records, err)
	}
}

func TestCrawlPropagatesParseErrors(t *testing.T) {
	fs := vfs.New(nil)
	if err := fs.WriteString("/runs/f/2005-001/run.log", "day: zebra\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := Crawl(fs, "/runs"); err == nil {
		t.Fatal("Crawl accepted corrupt log")
	}
}

func TestWriteOverwritesRunningWithCompleted(t *testing.T) {
	// The factory writes a provisional "running" log at launch and the
	// final log at completion; the crawler must see the final one.
	fs := vfs.New(nil)
	r := sample()
	r.Status = StatusRunning
	r.Walltime = 0
	r.End = 0
	if err := Write(fs, r); err != nil {
		t.Fatal(err)
	}
	r.Status = StatusCompleted
	r.Walltime = 80333
	r.End = r.Start + r.Walltime
	if err := Write(fs, r); err != nil {
		t.Fatal(err)
	}
	records, err := Crawl(fs, "/runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Status != StatusCompleted {
		t.Fatalf("records = %+v", records)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	fs := vfs.New(nil)
	r := sample()
	r.Day = 0
	if err := Write(fs, r); err == nil {
		t.Fatal("Write accepted invalid record")
	}
}

// Property: Format→Parse round-trips arbitrary well-formed records.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(day uint16, steps uint16, sides uint16, wall uint32, factor uint8) bool {
		r := sample()
		r.Day = int(day%366) + 1
		r.Timesteps = int(steps) + 1
		r.MeshSides = int(sides) + 1
		r.Walltime = float64(wall%1000000) + 1
		r.CodeFactor = math.Round((0.5+float64(factor)*0.01)*1e4) / 1e4
		r.End = r.Start + r.Walltime
		got, err := Parse(Format(r))
		if err != nil {
			return false
		}
		return *got == *r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
