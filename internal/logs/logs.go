// Package logs implements the forecast factory's per-run-directory log
// files: writing them as runs complete, parsing them back, and crawling a
// directory tree of past runs to harvest statistics — the pipeline §4.3.2
// of the paper uses to populate its statistics database.
//
// Each forecast runs in its own directory holding executables, inputs,
// outputs, and log files; that flat structure makes longitudinal questions
// ("find all forecasts that use code version X") hard to answer directly,
// which is exactly why the statistics database exists.
package logs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vfs"
)

// Run status values recorded in logs.
const (
	StatusCompleted = "completed"
	StatusRunning   = "running"
	StatusDropped   = "dropped"
)

// RunRecord is one run execution: one tuple per (forecast, day), matching
// the paper's observation that the statistics database stays small because
// it records runs, not the thousands of per-task executions inside them.
type RunRecord struct {
	Forecast    string
	Region      string
	Year        int
	Day         int // day of year, 1-based
	Node        string
	CodeVersion string
	CodeFactor  float64
	MeshName    string
	MeshSides   int
	Timesteps   int
	Start       float64 // seconds since campaign epoch
	End         float64 // seconds since campaign epoch (0 if running)
	Walltime    float64 // seconds (0 if running)
	Status      string
	Products    int
	// SourcePath is the log file this record was parsed from ("" when the
	// record was built in memory). It travels with the record into the
	// statistics database so every row is traceable back to disk without
	// re-crawling the run tree; it is derived from the file's location,
	// never written into the log text itself.
	SourcePath string
}

// Validate checks the record for the fields every consumer relies on.
func (r *RunRecord) Validate() error {
	if r.Forecast == "" {
		return fmt.Errorf("logs: record has empty forecast name")
	}
	if r.Day <= 0 || r.Day > 366 {
		return fmt.Errorf("logs: record %s has invalid day %d", r.Forecast, r.Day)
	}
	switch r.Status {
	case StatusCompleted, StatusRunning, StatusDropped:
	default:
		return fmt.Errorf("logs: record %s/%d has unknown status %q", r.Forecast, r.Day, r.Status)
	}
	if r.Status == StatusCompleted && r.Walltime <= 0 {
		return fmt.Errorf("logs: completed record %s/%d has walltime %v", r.Forecast, r.Day, r.Walltime)
	}
	return nil
}

// RunDir returns the conventional run directory for a forecast execution:
// /runs/<forecast>/<year>-<day> with the day zero-padded to three digits.
func RunDir(forecast string, year, day int) string {
	return fmt.Sprintf("/runs/%s/%d-%03d", forecast, year, day)
}

// LogPath returns the run log path inside a run directory.
func LogPath(dir string) string { return dir + "/run.log" }

// Format renders a record as the textual run log.
func Format(r *RunRecord) string {
	var b strings.Builder
	b.WriteString("# CORIE forecast run log\n")
	fmt.Fprintf(&b, "forecast: %s\n", r.Forecast)
	fmt.Fprintf(&b, "region: %s\n", r.Region)
	fmt.Fprintf(&b, "year: %d\n", r.Year)
	fmt.Fprintf(&b, "day: %d\n", r.Day)
	fmt.Fprintf(&b, "node: %s\n", r.Node)
	fmt.Fprintf(&b, "code_version: %s\n", r.CodeVersion)
	fmt.Fprintf(&b, "code_factor: %.4f\n", r.CodeFactor)
	fmt.Fprintf(&b, "mesh: %s\n", r.MeshName)
	fmt.Fprintf(&b, "mesh_sides: %d\n", r.MeshSides)
	fmt.Fprintf(&b, "timesteps: %d\n", r.Timesteps)
	fmt.Fprintf(&b, "start: %.2f\n", r.Start)
	fmt.Fprintf(&b, "end: %.2f\n", r.End)
	fmt.Fprintf(&b, "walltime: %.2f\n", r.Walltime)
	fmt.Fprintf(&b, "status: %s\n", r.Status)
	fmt.Fprintf(&b, "products: %d\n", r.Products)
	return b.String()
}

// Write stores the record's log file in its run directory.
func Write(fs *vfs.FS, r *RunRecord) error {
	if err := r.Validate(); err != nil {
		return err
	}
	return fs.WriteString(LogPath(RunDir(r.Forecast, r.Year, r.Day)), Format(r))
}

// ParseError describes a malformed run log, pointing at the file and
// line where parsing failed so corrupt logs in a tree of thousands of
// run directories can be located directly.
type ParseError struct {
	Path string // log file path; empty when parsing from memory
	Line int    // 1-based line number; 0 when not line-specific
	Msg  string
}

// Error renders "logs: <path>:<line>: <msg>", omitting absent context.
func (e *ParseError) Error() string {
	switch {
	case e.Path != "" && e.Line > 0:
		return fmt.Sprintf("logs: %s:%d: %s", e.Path, e.Line, e.Msg)
	case e.Path != "":
		return fmt.Sprintf("logs: %s: %s", e.Path, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("logs: line %d: %s", e.Line, e.Msg)
	default:
		return "logs: " + e.Msg
	}
}

// Parse reads a run log back into a record. Unknown keys are ignored so
// log formats can grow; malformed values for known keys, duplicated
// keys, truncated logs, and non-finite numbers are *ParseError values.
func Parse(text string) (*RunRecord, error) {
	return parse(text, "")
}

// ParseFrom parses log text already read from path, recording path both
// in any ParseError and as the record's SourcePath — for callers (the
// harvester) that read the file themselves to hash it.
func ParseFrom(text, path string) (*RunRecord, error) {
	return parse(text, path)
}

// ParseFile reads and parses a run log, reporting failures with file and
// line context.
func ParseFile(fs *vfs.FS, path string) (*RunRecord, error) {
	text, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parse(text, path)
}

func parse(text, path string) (*RunRecord, error) {
	fail := func(line int, format string, args ...any) error {
		return &ParseError{Path: path, Line: line, Msg: fmt.Sprintf(format, args...)}
	}
	if text == "" {
		return nil, fail(0, "empty log")
	}
	if !strings.HasSuffix(text, "\n") {
		// Every writer ends the log with a newline; its absence means the
		// file was cut off mid-write (a crashed run, a partial rsync).
		lines := strings.Split(text, "\n")
		return nil, fail(len(lines), "truncated log: last line %q has no newline", lines[len(lines)-1])
	}
	r := &RunRecord{}
	seen := make(map[string]int)
	for i, raw := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fail(lineNo, "no key separator in %q", line)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if key == "" {
			return nil, fail(lineNo, "empty key in %q", line)
		}
		known := true
		var err error
		switch key {
		case "forecast":
			r.Forecast = value
		case "region":
			r.Region = value
		case "year":
			r.Year, err = strconv.Atoi(value)
		case "day":
			r.Day, err = strconv.Atoi(value)
		case "node":
			r.Node = value
		case "code_version":
			r.CodeVersion = value
		case "code_factor":
			r.CodeFactor, err = strconv.ParseFloat(value, 64)
		case "mesh":
			r.MeshName = value
		case "mesh_sides":
			r.MeshSides, err = strconv.Atoi(value)
		case "timesteps":
			r.Timesteps, err = strconv.Atoi(value)
		case "start":
			r.Start, err = strconv.ParseFloat(value, 64)
		case "end":
			r.End, err = strconv.ParseFloat(value, 64)
		case "walltime":
			r.Walltime, err = strconv.ParseFloat(value, 64)
		case "status":
			r.Status = value
		case "products":
			r.Products, err = strconv.Atoi(value)
		default:
			known = false
		}
		if err != nil {
			return nil, fail(lineNo, "bad %s value %q: %v", key, value, err)
		}
		if known {
			if prev, dup := seen[key]; dup {
				return nil, fail(lineNo, "duplicate key %s (first on line %d)", key, prev)
			}
			seen[key] = lineNo
		}
	}
	for _, f := range []struct {
		key string
		val float64
	}{
		{"code_factor", r.CodeFactor},
		{"start", r.Start},
		{"end", r.End},
		{"walltime", r.Walltime},
	} {
		if math.IsNaN(f.val) || math.IsInf(f.val, 0) {
			return nil, fail(seen[f.key], "non-finite %s value %v", f.key, f.val)
		}
	}
	if err := r.Validate(); err != nil {
		return nil, &ParseError{Path: path, Msg: strings.TrimPrefix(err.Error(), "logs: ")}
	}
	r.SourcePath = path
	return r, nil
}

// Crawl walks all run directories under root (conventionally "/runs"),
// parses every run.log, and returns the records sorted by forecast then
// day. Directories without a run.log are skipped; parse errors abort the
// crawl so corrupt logs are noticed rather than silently dropped.
func Crawl(fs *vfs.FS, root string) ([]*RunRecord, error) {
	if !fs.Exists(root) {
		return nil, nil
	}
	var records []*RunRecord
	err := fs.Walk(root, func(info vfs.FileInfo) error {
		if info.IsDir || info.Name != "run.log" {
			return nil
		}
		rec, err := ParseFile(fs, info.Path)
		if err != nil {
			return err
		}
		records = append(records, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].Forecast != records[j].Forecast {
			return records[i].Forecast < records[j].Forecast
		}
		if records[i].Year != records[j].Year {
			return records[i].Year < records[j].Year
		}
		return records[i].Day < records[j].Day
	})
	return records, nil
}
