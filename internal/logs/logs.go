// Package logs implements the forecast factory's per-run-directory log
// files: writing them as runs complete, parsing them back, and crawling a
// directory tree of past runs to harvest statistics — the pipeline §4.3.2
// of the paper uses to populate its statistics database.
//
// Each forecast runs in its own directory holding executables, inputs,
// outputs, and log files; that flat structure makes longitudinal questions
// ("find all forecasts that use code version X") hard to answer directly,
// which is exactly why the statistics database exists.
package logs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vfs"
)

// Run status values recorded in logs.
const (
	StatusCompleted = "completed"
	StatusRunning   = "running"
	StatusDropped   = "dropped"
)

// RunRecord is one run execution: one tuple per (forecast, day), matching
// the paper's observation that the statistics database stays small because
// it records runs, not the thousands of per-task executions inside them.
type RunRecord struct {
	Forecast    string
	Region      string
	Year        int
	Day         int // day of year, 1-based
	Node        string
	CodeVersion string
	CodeFactor  float64
	MeshName    string
	MeshSides   int
	Timesteps   int
	Start       float64 // seconds since campaign epoch
	End         float64 // seconds since campaign epoch (0 if running)
	Walltime    float64 // seconds (0 if running)
	Status      string
	Products    int
}

// Validate checks the record for the fields every consumer relies on.
func (r *RunRecord) Validate() error {
	if r.Forecast == "" {
		return fmt.Errorf("logs: record has empty forecast name")
	}
	if r.Day <= 0 || r.Day > 366 {
		return fmt.Errorf("logs: record %s has invalid day %d", r.Forecast, r.Day)
	}
	switch r.Status {
	case StatusCompleted, StatusRunning, StatusDropped:
	default:
		return fmt.Errorf("logs: record %s/%d has unknown status %q", r.Forecast, r.Day, r.Status)
	}
	if r.Status == StatusCompleted && r.Walltime <= 0 {
		return fmt.Errorf("logs: completed record %s/%d has walltime %v", r.Forecast, r.Day, r.Walltime)
	}
	return nil
}

// RunDir returns the conventional run directory for a forecast execution:
// /runs/<forecast>/<year>-<day> with the day zero-padded to three digits.
func RunDir(forecast string, year, day int) string {
	return fmt.Sprintf("/runs/%s/%d-%03d", forecast, year, day)
}

// LogPath returns the run log path inside a run directory.
func LogPath(dir string) string { return dir + "/run.log" }

// Format renders a record as the textual run log.
func Format(r *RunRecord) string {
	var b strings.Builder
	b.WriteString("# CORIE forecast run log\n")
	fmt.Fprintf(&b, "forecast: %s\n", r.Forecast)
	fmt.Fprintf(&b, "region: %s\n", r.Region)
	fmt.Fprintf(&b, "year: %d\n", r.Year)
	fmt.Fprintf(&b, "day: %d\n", r.Day)
	fmt.Fprintf(&b, "node: %s\n", r.Node)
	fmt.Fprintf(&b, "code_version: %s\n", r.CodeVersion)
	fmt.Fprintf(&b, "code_factor: %.4f\n", r.CodeFactor)
	fmt.Fprintf(&b, "mesh: %s\n", r.MeshName)
	fmt.Fprintf(&b, "mesh_sides: %d\n", r.MeshSides)
	fmt.Fprintf(&b, "timesteps: %d\n", r.Timesteps)
	fmt.Fprintf(&b, "start: %.2f\n", r.Start)
	fmt.Fprintf(&b, "end: %.2f\n", r.End)
	fmt.Fprintf(&b, "walltime: %.2f\n", r.Walltime)
	fmt.Fprintf(&b, "status: %s\n", r.Status)
	fmt.Fprintf(&b, "products: %d\n", r.Products)
	return b.String()
}

// Write stores the record's log file in its run directory.
func Write(fs *vfs.FS, r *RunRecord) error {
	if err := r.Validate(); err != nil {
		return err
	}
	return fs.WriteString(LogPath(RunDir(r.Forecast, r.Year, r.Day)), Format(r))
}

// Parse reads a run log back into a record. Unknown keys are ignored so
// log formats can grow; malformed values for known keys are errors.
func Parse(text string) (*RunRecord, error) {
	r := &RunRecord{}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("logs: line %d: no key separator in %q", lineNo+1, line)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		var err error
		switch key {
		case "forecast":
			r.Forecast = value
		case "region":
			r.Region = value
		case "year":
			r.Year, err = strconv.Atoi(value)
		case "day":
			r.Day, err = strconv.Atoi(value)
		case "node":
			r.Node = value
		case "code_version":
			r.CodeVersion = value
		case "code_factor":
			r.CodeFactor, err = strconv.ParseFloat(value, 64)
		case "mesh":
			r.MeshName = value
		case "mesh_sides":
			r.MeshSides, err = strconv.Atoi(value)
		case "timesteps":
			r.Timesteps, err = strconv.Atoi(value)
		case "start":
			r.Start, err = strconv.ParseFloat(value, 64)
		case "end":
			r.End, err = strconv.ParseFloat(value, 64)
		case "walltime":
			r.Walltime, err = strconv.ParseFloat(value, 64)
		case "status":
			r.Status = value
		case "products":
			r.Products, err = strconv.Atoi(value)
		}
		if err != nil {
			return nil, fmt.Errorf("logs: line %d: bad %s value %q: %v", lineNo+1, key, value, err)
		}
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// Crawl walks all run directories under root (conventionally "/runs"),
// parses every run.log, and returns the records sorted by forecast then
// day. Directories without a run.log are skipped; parse errors abort the
// crawl so corrupt logs are noticed rather than silently dropped.
func Crawl(fs *vfs.FS, root string) ([]*RunRecord, error) {
	if !fs.Exists(root) {
		return nil, nil
	}
	var records []*RunRecord
	err := fs.Walk(root, func(info vfs.FileInfo) error {
		if info.IsDir || info.Name != "run.log" {
			return nil
		}
		text, err := fs.ReadFile(info.Path)
		if err != nil {
			return err
		}
		rec, err := Parse(text)
		if err != nil {
			return fmt.Errorf("%s: %w", info.Path, err)
		}
		records = append(records, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].Forecast != records[j].Forecast {
			return records[i].Forecast < records[j].Forecast
		}
		if records[i].Year != records[j].Year {
			return records[i].Year < records[j].Year
		}
		return records[i].Day < records[j].Day
	})
	return records, nil
}
