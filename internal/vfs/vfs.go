// Package vfs is an in-memory virtual filesystem used by the factory
// simulator.
//
// Bulk scientific data (model outputs, data products) is tracked by size
// only — the simulator never materializes gigabytes of bytes — while small
// text files (run logs, configuration) carry real content so the log
// parser and crawler exercise the same code paths they would against a
// real directory tree. Paths use forward slashes; the root is "/".
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
)

// Common errors returned by FS operations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotDir   = errors.New("vfs: not a directory")
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Path  string  // cleaned absolute path
	Name  string  // base name
	Size  int64   // logical size in bytes
	MTime float64 // virtual time of last modification
	IsDir bool
}

// file is a node in the tree.
type file struct {
	info     FileInfo
	content  []byte // only for text files; nil for size-only bulk data
	children map[string]*file
}

// FS is an in-memory filesystem. The zero value is not usable; use New.
type FS struct {
	root *file
	// clock supplies the virtual time for mtimes. It may be nil, in which
	// case mtimes are zero.
	clock func() float64
}

// New creates an empty filesystem. clock, if non-nil, supplies virtual
// timestamps for modification times (typically sim.Engine.Now).
func New(clock func() float64) *FS {
	return &FS{
		root: &file{
			info:     FileInfo{Path: "/", Name: "/", IsDir: true},
			children: make(map[string]*file),
		},
		clock: clock,
	}
}

func (fs *FS) now() float64 {
	if fs.clock == nil {
		return 0
	}
	return fs.clock()
}

// clean normalizes a path to an absolute, slash-separated form.
func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// lookup walks to the node for p, or returns nil.
func (fs *FS) lookup(p string) *file {
	p = clean(p)
	if p == "/" {
		return fs.root
	}
	cur := fs.root
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if cur.children == nil {
			return nil
		}
		next, ok := cur.children[part]
		if !ok {
			return nil
		}
		cur = next
	}
	return cur
}

// MkdirAll creates a directory and all missing parents. Creating an
// existing directory is a no-op; a path component that is a regular file
// is an error.
func (fs *FS) MkdirAll(p string) error {
	p = clean(p)
	if p == "/" {
		return nil
	}
	cur := fs.root
	walked := ""
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		walked += "/" + part
		next, ok := cur.children[part]
		if !ok {
			next = &file{
				info:     FileInfo{Path: walked, Name: part, IsDir: true, MTime: fs.now()},
				children: make(map[string]*file),
			}
			cur.children[part] = next
		} else if !next.info.IsDir {
			return fmt.Errorf("mkdir %s: %w", walked, ErrNotDir)
		}
		cur = next
	}
	return nil
}

// create makes a regular file node, creating parents as needed.
func (fs *FS) create(p string) (*file, error) {
	p = clean(p)
	dir, name := path.Split(p)
	if name == "" {
		return nil, fmt.Errorf("create %s: %w", p, ErrIsDir)
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	parent := fs.lookup(dir)
	if existing, ok := parent.children[name]; ok {
		if existing.info.IsDir {
			return nil, fmt.Errorf("create %s: %w", p, ErrIsDir)
		}
		return nil, fmt.Errorf("create %s: %w", p, ErrExist)
	}
	f := &file{info: FileInfo{Path: p, Name: name, MTime: fs.now()}}
	parent.children[name] = f
	return f, nil
}

// Create makes an empty regular file (size-only). Parents are created as
// needed. It is an error if the file already exists.
func (fs *FS) Create(p string) error {
	_, err := fs.create(p)
	return err
}

// Append grows a size-only file by n bytes, creating it if absent.
func (fs *FS) Append(p string, n int64) error {
	if n < 0 {
		return fmt.Errorf("append %s: negative size %d", p, n)
	}
	f := fs.lookup(p)
	if f == nil {
		var err error
		f, err = fs.create(p)
		if err != nil {
			return err
		}
	}
	if f.info.IsDir {
		return fmt.Errorf("append %s: %w", p, ErrIsDir)
	}
	if f.content != nil {
		return fmt.Errorf("append %s: size-only append to content file", p)
	}
	f.info.Size += n
	f.info.MTime = fs.now()
	return nil
}

// WriteString replaces the content of a text file, creating it if absent.
func (fs *FS) WriteString(p, s string) error {
	f := fs.lookup(p)
	if f == nil {
		var err error
		f, err = fs.create(p)
		if err != nil {
			return err
		}
	}
	if f.info.IsDir {
		return fmt.Errorf("write %s: %w", p, ErrIsDir)
	}
	f.content = []byte(s)
	f.info.Size = int64(len(f.content))
	f.info.MTime = fs.now()
	return nil
}

// AppendString appends text to a text file, creating it if absent.
func (fs *FS) AppendString(p, s string) error {
	f := fs.lookup(p)
	if f == nil {
		var err error
		f, err = fs.create(p)
		if err != nil {
			return err
		}
		f.content = []byte{}
	}
	if f.info.IsDir {
		return fmt.Errorf("append %s: %w", p, ErrIsDir)
	}
	if f.content == nil && f.info.Size > 0 {
		return fmt.Errorf("append %s: text append to size-only file", p)
	}
	f.content = append(f.content, s...)
	f.info.Size = int64(len(f.content))
	f.info.MTime = fs.now()
	return nil
}

// ReadFile returns the content of a text file.
func (fs *FS) ReadFile(p string) (string, error) {
	f := fs.lookup(p)
	if f == nil {
		return "", fmt.Errorf("read %s: %w", p, ErrNotExist)
	}
	if f.info.IsDir {
		return "", fmt.Errorf("read %s: %w", p, ErrIsDir)
	}
	if f.content == nil {
		return "", fmt.Errorf("read %s: size-only file has no content", p)
	}
	return string(f.content), nil
}

// SetMTime overrides a file's modification time. Mirrors of real
// directory trees (foreman -harvest) use it to carry the on-disk mtimes
// the harvester's watermarks compare against; files written afterwards
// revert to clock-supplied mtimes.
func (fs *FS) SetMTime(p string, mtime float64) error {
	f := fs.lookup(p)
	if f == nil {
		return fmt.Errorf("setmtime %s: %w", clean(p), ErrNotExist)
	}
	f.info.MTime = mtime
	return nil
}

// Stat returns metadata for a path.
func (fs *FS) Stat(p string) (FileInfo, error) {
	f := fs.lookup(p)
	if f == nil {
		return FileInfo{}, fmt.Errorf("stat %s: %w", clean(p), ErrNotExist)
	}
	return f.info, nil
}

// Exists reports whether the path exists.
func (fs *FS) Exists(p string) bool { return fs.lookup(p) != nil }

// Size returns the logical size of a file, or 0 if it does not exist.
func (fs *FS) Size(p string) int64 {
	f := fs.lookup(p)
	if f == nil || f.info.IsDir {
		return 0
	}
	return f.info.Size
}

// Remove deletes a file or empty directory.
func (fs *FS) Remove(p string) error {
	p = clean(p)
	if p == "/" {
		return errors.New("vfs: cannot remove root")
	}
	f := fs.lookup(p)
	if f == nil {
		return fmt.Errorf("remove %s: %w", p, ErrNotExist)
	}
	if f.info.IsDir && len(f.children) > 0 {
		return fmt.Errorf("remove %s: directory not empty", p)
	}
	parent := fs.lookup(path.Dir(p))
	delete(parent.children, f.info.Name)
	return nil
}

// ReadDir lists the entries of a directory in name order.
func (fs *FS) ReadDir(p string) ([]FileInfo, error) {
	f := fs.lookup(p)
	if f == nil {
		return nil, fmt.Errorf("readdir %s: %w", clean(p), ErrNotExist)
	}
	if !f.info.IsDir {
		return nil, fmt.Errorf("readdir %s: %w", clean(p), ErrNotDir)
	}
	names := make([]string, 0, len(f.children))
	for name := range f.children {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]FileInfo, len(names))
	for i, name := range names {
		infos[i] = f.children[name].info
	}
	return infos, nil
}

// Walk visits every file and directory under root in depth-first,
// name-sorted order, calling fn for each. Returning a non-nil error from fn
// stops the walk and propagates the error.
func (fs *FS) Walk(root string, fn func(info FileInfo) error) error {
	f := fs.lookup(root)
	if f == nil {
		return fmt.Errorf("walk %s: %w", clean(root), ErrNotExist)
	}
	return walk(f, fn)
}

func walk(f *file, fn func(info FileInfo) error) error {
	if err := fn(f.info); err != nil {
		return err
	}
	if !f.info.IsDir {
		return nil
	}
	names := make([]string, 0, len(f.children))
	for name := range f.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := walk(f.children[name], fn); err != nil {
			return err
		}
	}
	return nil
}

// Glob returns the paths of files (not directories) whose base name matches
// the pattern (path.Match syntax) anywhere under root, sorted.
func (fs *FS) Glob(root, pattern string) ([]string, error) {
	var out []string
	err := fs.Walk(root, func(info FileInfo) error {
		if info.IsDir {
			return nil
		}
		ok, err := path.Match(pattern, info.Name)
		if err != nil {
			return err
		}
		if ok {
			out = append(out, info.Path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// TreeSize returns the total size in bytes of all regular files under root.
func (fs *FS) TreeSize(root string) int64 {
	var total int64
	_ = fs.Walk(root, func(info FileInfo) error {
		if !info.IsDir {
			total += info.Size
		}
		return nil
	})
	return total
}
