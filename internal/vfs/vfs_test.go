package vfs

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCreateAndStat(t *testing.T) {
	fs := New(nil)
	if err := fs.Create("/runs/tillamook/out.63"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/runs/tillamook/out.63")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 0 || info.IsDir || info.Name != "out.63" {
		t.Fatalf("unexpected info %+v", info)
	}
	// Parents were created.
	dir, err := fs.Stat("/runs/tillamook")
	if err != nil || !dir.IsDir {
		t.Fatalf("parent dir: %+v, %v", dir, err)
	}
}

func TestCreateExistingFails(t *testing.T) {
	fs := New(nil)
	if err := fs.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/a"); !errors.Is(err, ErrExist) {
		t.Fatalf("err = %v, want ErrExist", err)
	}
}

func TestAppendGrowsFile(t *testing.T) {
	fs := New(nil)
	if err := fs.Append("/data/1_salt.63", 1000); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("/data/1_salt.63", 500); err != nil {
		t.Fatal(err)
	}
	if got := fs.Size("/data/1_salt.63"); got != 1500 {
		t.Fatalf("Size = %d, want 1500", got)
	}
}

func TestAppendNegativeFails(t *testing.T) {
	fs := New(nil)
	if err := fs.Append("/a", -1); err == nil {
		t.Fatal("negative append succeeded")
	}
}

func TestTextFiles(t *testing.T) {
	fs := New(nil)
	if err := fs.WriteString("/runs/f1/run.log", "walltime: 40000\n"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendString("/runs/f1/run.log", "code: elcirc-5.01\n"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/runs/f1/run.log")
	if err != nil {
		t.Fatal(err)
	}
	want := "walltime: 40000\ncode: elcirc-5.01\n"
	if got != want {
		t.Fatalf("ReadFile = %q, want %q", got, want)
	}
	if fs.Size("/runs/f1/run.log") != int64(len(want)) {
		t.Fatalf("Size = %d, want %d", fs.Size("/runs/f1/run.log"), len(want))
	}
}

func TestMixingSizeOnlyAndContentFails(t *testing.T) {
	fs := New(nil)
	if err := fs.Append("/bulk", 10); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendString("/bulk", "text"); err == nil {
		t.Fatal("text append to size-only file succeeded")
	}
	if _, err := fs.ReadFile("/bulk"); err == nil {
		t.Fatal("ReadFile of size-only file succeeded")
	}
	if err := fs.WriteString("/text", "hi"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("/text", 10); err == nil {
		t.Fatal("size-only append to content file succeeded")
	}
}

func TestMTimeUsesClock(t *testing.T) {
	now := 0.0
	fs := New(func() float64 { return now })
	now = 42
	if err := fs.Append("/f", 1); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/f")
	if info.MTime != 42 {
		t.Fatalf("MTime = %v, want 42", info.MTime)
	}
	now = 100
	_ = fs.Append("/f", 1)
	info, _ = fs.Stat("/f")
	if info.MTime != 100 {
		t.Fatalf("MTime = %v, want 100", info.MTime)
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := New(nil)
	for _, name := range []string{"/d/c", "/d/a", "/d/b"} {
		if err := fs.Create(name); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, info := range infos {
		names = append(names, info.Name)
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("names = %v", names)
	}
}

func TestReadDirErrors(t *testing.T) {
	fs := New(nil)
	if _, err := fs.ReadDir("/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	_ = fs.Create("/file")
	if _, err := fs.ReadDir("/file"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("err = %v, want ErrNotDir", err)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	fs := New(nil)
	paths := []string{"/runs/a/out.63", "/runs/a/run.log", "/runs/b/out.63"}
	for _, p := range paths {
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	err := fs.Walk("/runs", func(info FileInfo) error {
		visited = append(visited, info.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/runs", "/runs/a", "/runs/a/out.63", "/runs/a/run.log", "/runs/b", "/runs/b/out.63"}
	if len(visited) != len(want) {
		t.Fatalf("visited = %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited = %v, want %v", visited, want)
		}
	}
}

func TestWalkErrorStops(t *testing.T) {
	fs := New(nil)
	_ = fs.Create("/d/a")
	_ = fs.Create("/d/b")
	sentinel := errors.New("stop")
	count := 0
	err := fs.Walk("/d", func(info FileInfo) error {
		count++
		if count == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestGlob(t *testing.T) {
	fs := New(nil)
	for _, p := range []string{"/runs/f1/1_salt.63", "/runs/f1/2_salt.63", "/runs/f1/1_temp.63", "/runs/f1/run.log"} {
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := fs.Glob("/runs", "*_salt.63")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "/runs/f1/1_salt.63" || got[1] != "/runs/f1/2_salt.63" {
		t.Fatalf("Glob = %v", got)
	}
}

func TestTreeSize(t *testing.T) {
	fs := New(nil)
	_ = fs.Append("/d/a", 100)
	_ = fs.Append("/d/sub/b", 250)
	if got := fs.TreeSize("/d"); got != 350 {
		t.Fatalf("TreeSize = %d, want 350", got)
	}
	if got := fs.TreeSize("/missing"); got != 0 {
		t.Fatalf("TreeSize(missing) = %d, want 0", got)
	}
}

func TestRemove(t *testing.T) {
	fs := New(nil)
	_ = fs.Create("/d/a")
	if err := fs.Remove("/d"); err == nil {
		t.Fatal("removed non-empty directory")
	}
	if err := fs.Remove("/d/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d") {
		t.Fatal("directory still exists after Remove")
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestMkdirAllOverFileFails(t *testing.T) {
	fs := New(nil)
	_ = fs.Create("/a")
	if err := fs.MkdirAll("/a/b"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("err = %v, want ErrNotDir", err)
	}
}

func TestPathNormalization(t *testing.T) {
	fs := New(nil)
	if err := fs.Create("runs//f1/./out.63"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/runs/f1/out.63") {
		t.Fatal("normalized path not found")
	}
}

// Property: TreeSize equals the sum of appended bytes regardless of the
// directory layout the appends land in.
func TestPropertyTreeSizeConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		fs := New(nil)
		var total int64
		for i, s := range sizes {
			p := "/d"
			switch i % 3 {
			case 0:
				p += "/x/f"
			case 1:
				p += "/y/f"
			case 2:
				p += "/f"
			}
			p += string(rune('a' + i%7))
			if err := fs.Append(p, int64(s)); err != nil {
				return false
			}
			total += int64(s)
		}
		return fs.TreeSize("/d") == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
