package harvest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/statsdb"
)

// ForecastProvenance aggregates the runs of one forecast under a code
// version.
type ForecastProvenance struct {
	Forecast  string   `json:"forecast"`
	Runs      int      `json:"runs"`
	FirstYear int      `json:"first_year"`
	FirstDay  int      `json:"first_day"`
	LastYear  int      `json:"last_year"`
	LastDay   int      `json:"last_day"`
	Nodes     []string `json:"nodes"`
	// Sources sample the run-log files behind the rows (capped so the
	// report stays readable for year-long campaigns).
	Sources []string `json:"sources,omitempty"`
}

// maxSourceSample caps Sources per forecast.
const maxSourceSample = 3

// Provenance answers the paper's manageability query — "find all the
// forecasts that use a particular version of the code" — from a harvested
// database, with enough context (days, nodes, source files) to act on the
// answer: re-run them, exclude them from skill statistics, or page whoever
// deployed the version.
type Provenance struct {
	CodeVersion string               `json:"code_version"`
	TotalRuns   int                  `json:"total_runs"`
	Forecasts   []ForecastProvenance `json:"forecasts"`
	// Available lists the code versions present in the database; filled
	// when the queried version matches nothing, so the caller can see what
	// to ask for instead.
	Available []string `json:"available_versions,omitempty"`
}

// QueryProvenance reports every forecast whose runs used codeVersion.
// The lookup is an index probe on the runs table's code_version index.
func QueryProvenance(db *statsdb.DB, codeVersion string) (*Provenance, error) {
	if codeVersion == "" {
		return nil, fmt.Errorf("provenance: empty code version")
	}
	t := db.Table(statsdb.RunsTableName)
	if t == nil {
		return nil, fmt.Errorf("provenance: no %s table — harvest first", statsdb.RunsTableName)
	}
	sch := t.Schema()
	cols := []string{"forecast", "year", "day", "node"}
	hasSource := sch.Index(statsdb.ColSourcePath) >= 0
	if hasSource {
		cols = append(cols, statsdb.ColSourcePath)
	}
	res, err := statsdb.Select(t, cols...).
		Where(statsdb.Pred{Col: "code_version", Op: statsdb.OpEq, Val: statsdb.StringVal(codeVersion)}).
		Run()
	if err != nil {
		return nil, err
	}

	p := &Provenance{CodeVersion: codeVersion}
	if len(res.Rows) == 0 {
		versions, err := statsdb.Select(t, "code_version").GroupBy("code_version").
			OrderBy(statsdb.OrderKey{Col: "code_version"}).Run()
		if err != nil {
			return nil, err
		}
		for _, row := range versions.Rows {
			p.Available = append(p.Available, row[0].Str())
		}
		return p, nil
	}

	fi, yi, di, ni := res.Column("forecast"), res.Column("year"), res.Column("day"), res.Column("node")
	si := res.Column(statsdb.ColSourcePath)
	byForecast := make(map[string]*ForecastProvenance)
	nodes := make(map[string]map[string]bool)
	for _, row := range res.Rows {
		name := row[fi].Str()
		year, day := int(row[yi].Int()), int(row[di].Int())
		fp := byForecast[name]
		if fp == nil {
			fp = &ForecastProvenance{
				Forecast:  name,
				FirstYear: year, FirstDay: day,
				LastYear: year, LastDay: day,
			}
			byForecast[name] = fp
			nodes[name] = make(map[string]bool)
		}
		fp.Runs++
		if year < fp.FirstYear || (year == fp.FirstYear && day < fp.FirstDay) {
			fp.FirstYear, fp.FirstDay = year, day
		}
		if year > fp.LastYear || (year == fp.LastYear && day > fp.LastDay) {
			fp.LastYear, fp.LastDay = year, day
		}
		nodes[name][row[ni].Str()] = true
		if si >= 0 && len(fp.Sources) < maxSourceSample {
			if src := row[si].Str(); src != "" {
				fp.Sources = append(fp.Sources, src)
			}
		}
		p.TotalRuns++
	}
	for name, fp := range byForecast {
		for n := range nodes[name] {
			fp.Nodes = append(fp.Nodes, n)
		}
		sort.Strings(fp.Nodes)
		p.Forecasts = append(p.Forecasts, *fp)
	}
	sort.Slice(p.Forecasts, func(i, j int) bool { return p.Forecasts[i].Forecast < p.Forecasts[j].Forecast })
	return p, nil
}

// String renders the provenance report for the foreman CLI.
func (p *Provenance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "provenance: code version %s\n", p.CodeVersion)
	if len(p.Forecasts) == 0 {
		b.WriteString("  no runs found\n")
		if len(p.Available) > 0 {
			fmt.Fprintf(&b, "  available versions: %s\n", strings.Join(p.Available, ", "))
		}
		return b.String()
	}
	fmt.Fprintf(&b, "  %d run(s) across %d forecast(s)\n", p.TotalRuns, len(p.Forecasts))
	for _, fp := range p.Forecasts {
		fmt.Fprintf(&b, "  %-28s %4d runs  %d-%03d .. %d-%03d  nodes %s\n",
			fp.Forecast, fp.Runs, fp.FirstYear, fp.FirstDay, fp.LastYear, fp.LastDay,
			strings.Join(fp.Nodes, ","))
		for _, src := range fp.Sources {
			fmt.Fprintf(&b, "      %s\n", src)
		}
	}
	return b.String()
}
