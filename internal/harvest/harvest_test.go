package harvest

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/logs"
	"repro/internal/sim"
	"repro/internal/statsdb"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// countingFS wraps a vfs and counts body reads, proving the watermark
// fast path never opens unchanged logs.
type countingFS struct {
	*vfs.FS
	reads int
}

func (c *countingFS) ReadFile(path string) (string, error) {
	c.reads++
	return c.FS.ReadFile(path)
}

func record(forecast string, day int, code string) *logs.RunRecord {
	return &logs.RunRecord{
		Forecast:    forecast,
		Region:      "r",
		Year:        2005,
		Day:         day,
		Node:        "fnode01",
		CodeVersion: code,
		CodeFactor:  1,
		MeshName:    "m",
		MeshSides:   30000,
		Timesteps:   5760,
		Start:       float64(day) * 86400,
		End:         float64(day)*86400 + 40000,
		Walltime:    40000,
		Status:      logs.StatusCompleted,
		Products:    8,
	}
}

// tree writes n run logs per forecast into a fresh vfs whose mtimes come
// from clock.
func tree(t *testing.T, clock *float64, forecasts []string, days int) *vfs.FS {
	t.Helper()
	fs := vfs.New(func() float64 { return *clock })
	for _, f := range forecasts {
		for d := 1; d <= days; d++ {
			if err := logs.Write(fs, record(f, d, "elcirc-5.01")); err != nil {
				t.Fatal(err)
			}
		}
	}
	return fs
}

func newHarvester(t *testing.T, fs FS, clock *float64) *Harvester {
	t.Helper()
	h, err := New(fs, statsdb.NewDB(), NewVFSJournal(vfs.New(nil), "/harvest/journal.jsonl"),
		Options{Clock: func() float64 { return *clock }})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPassIngestsTreeIncrementally(t *testing.T) {
	clock := 100.0
	base := tree(t, &clock, []string{"forecast-a", "forecast-b"}, 3)
	fs := &countingFS{FS: base}
	h := newHarvester(t, fs, &clock)

	// Cold pass: every log read and ingested.
	st, err := h.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 6 || st.BodiesRead != 6 || st.Ingested != 6 || st.WatermarkHits != 0 {
		t.Fatalf("cold pass = %+v", st)
	}

	// Warm pass over the unchanged tree: zero ingests AND zero body reads.
	fs.reads = 0
	clock = 200
	st, err = h.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 0 || st.Updated != 0 || st.BodiesRead != 0 || st.WatermarkHits != 6 {
		t.Fatalf("warm pass = %+v", st)
	}
	if fs.reads != 0 {
		t.Fatalf("warm pass read %d log bodies, want 0", fs.reads)
	}

	// One new run dir: exactly its records ingested, nothing else re-read.
	clock = 300
	if err := logs.Write(base, record("forecast-a", 4, "elcirc-5.02")); err != nil {
		t.Fatal(err)
	}
	fs.reads = 0
	st, err = h.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 1 || st.BodiesRead != 1 || st.WatermarkHits != 6 {
		t.Fatalf("incremental pass = %+v", st)
	}
	if fs.reads != 1 {
		t.Fatalf("incremental pass read %d bodies, want 1", fs.reads)
	}
	if n := h.DB().Table(statsdb.RunsTableName).Len(); n != 7 {
		t.Fatalf("runs table has %d rows, want 7", n)
	}
}

func TestPassUpdatesChangedLogInPlace(t *testing.T) {
	clock := 50.0
	fs := vfs.New(func() float64 { return clock })
	running := record("forecast-a", 1, "v1")
	running.Status = logs.StatusRunning
	running.End, running.Walltime = 0, 0
	if err := logs.Write(fs, running); err != nil {
		t.Fatal(err)
	}
	h := newHarvester(t, fs, &clock)
	if _, err := h.Pass(); err != nil {
		t.Fatal(err)
	}

	// The factory rewrites the log when the run completes.
	clock = 90000
	if err := logs.Write(fs, record("forecast-a", 1, "v1")); err != nil {
		t.Fatal(err)
	}
	st, err := h.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 0 || st.Updated != 1 {
		t.Fatalf("rewrite pass = %+v", st)
	}
	tbl := h.DB().Table(statsdb.RunsTableName)
	if tbl.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (update in place)", tbl.Len())
	}
	if got := tbl.Row(0)[tbl.Schema().Index("status")].Str(); got != logs.StatusCompleted {
		t.Fatalf("status = %q", got)
	}
}

func TestPassRefreshesTouchedButIdenticalLog(t *testing.T) {
	clock := 10.0
	fs := vfs.New(func() float64 { return clock })
	r := record("forecast-a", 1, "v1")
	if err := logs.Write(fs, r); err != nil {
		t.Fatal(err)
	}
	h := newHarvester(t, fs, &clock)
	if _, err := h.Pass(); err != nil {
		t.Fatal(err)
	}

	// Re-write identical content with a newer mtime (a re-copied file).
	clock = 20
	if err := logs.Write(fs, r); err != nil {
		t.Fatal(err)
	}
	st, err := h.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.BodiesRead != 1 || st.Refreshed != 1 || st.Ingested != 0 || st.Updated != 0 {
		t.Fatalf("refresh pass = %+v", st)
	}
	// The refreshed watermark silences the file on the next pass.
	st, err = h.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.WatermarkHits != 1 || st.BodiesRead != 0 {
		t.Fatalf("post-refresh pass = %+v", st)
	}
}

func TestQuarantineHoldsCorruptLogsWithoutAborting(t *testing.T) {
	clock := 10.0
	fs := tree(t, &clock, []string{"forecast-a"}, 2)
	bad := logs.LogPath(logs.RunDir("forecast-a", 2005, 99))
	if err := fs.WriteString(bad, "forecast: forecast-a\nday: zebra\n"); err != nil {
		t.Fatal(err)
	}
	h := newHarvester(t, fs, &clock)
	st, err := h.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 2 || st.Quarantined != 1 {
		t.Fatalf("pass = %+v", st)
	}
	q := h.Quarantine()
	if len(q) != 1 || q[0].Path != bad || !strings.Contains(q[0].Error, "zebra") {
		t.Fatalf("quarantine = %+v", q)
	}

	// Unchanged corrupt file is not re-read, let alone re-reported.
	counting := &countingFS{FS: fs}
	h2, err := New(counting, h.DB(), h.journal, Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	st, err = h2.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined != 0 || counting.reads != 0 {
		t.Fatalf("quarantined file re-read: %+v, reads %d", st, counting.reads)
	}

	// Fixing the file releases it from quarantine and ingests it.
	clock = 20
	if err := logs.Write(fs, record("forecast-a", 99, "v9")); err != nil {
		t.Fatal(err)
	}
	st, err = h2.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 1 || st.Quarantined != 0 {
		t.Fatalf("fix pass = %+v", st)
	}
	if len(h2.Quarantine()) != 0 {
		t.Fatalf("quarantine not cleared: %+v", h2.Quarantine())
	}
}

func TestCrashMidPassResumesWithoutDuplicatesOrLoss(t *testing.T) {
	clock := 10.0
	fs := tree(t, &clock, []string{"forecast-a", "forecast-b"}, 3)
	db := statsdb.NewDB()
	journalFS := vfs.New(nil)
	journal := NewVFSJournal(journalFS, "/harvest/journal.jsonl")

	h, err := New(fs, db, journal, Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	// Crash after the third file's database upsert but BEFORE its journal
	// line — the torn window the journal's write ordering protects.
	crash := errors.New("simulated crash")
	ingested := 0
	h.onIngest = func(path string) error {
		ingested++
		if ingested == 3 {
			return crash
		}
		return nil
	}
	if _, err := h.Pass(); !errors.Is(err, crash) {
		t.Fatalf("Pass error = %v, want simulated crash", err)
	}
	// Three rows made it into the database, but only two are journaled.
	if n := db.Table(statsdb.RunsTableName).Len(); n != 3 {
		t.Fatalf("rows after crash = %d", n)
	}

	// Restart: same journal, same database. The unjournaled file is
	// re-read and its upsert lands on the existing row.
	h2, err := New(fs, db, journal, Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	st, err := h2.Pass()
	if err != nil {
		t.Fatal(err)
	}
	// 2 journaled files skip; 4 files re-read: 1 updated (the torn one,
	// already in the db), 3 inserted.
	if st.WatermarkHits != 2 || st.BodiesRead != 4 || st.Ingested != 3 || st.Updated != 1 {
		t.Fatalf("resume pass = %+v", st)
	}
	if n := db.Table(statsdb.RunsTableName).Len(); n != 6 {
		t.Fatalf("rows after resume = %d, want 6 (no duplicates, none missing)", n)
	}

	// Each file's watermark was journaled exactly once across the crash.
	text, err := journal.Load()
	if err != nil {
		t.Fatal(err)
	}
	perPath := make(map[string]int)
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, `"type":"watermark"`) {
			start := strings.Index(line, `"path":"`) + len(`"path":"`)
			end := strings.Index(line[start:], `"`)
			perPath[line[start:start+end]]++
		}
	}
	for path, n := range perPath {
		if n != 1 {
			t.Fatalf("watermark for %s journaled %d times, want exactly 1", path, n)
		}
	}
	if len(perPath) != 6 {
		t.Fatalf("journaled %d paths, want 6", len(perPath))
	}
}

func TestCrashAfterJournalAppendIsIdempotent(t *testing.T) {
	clock := 10.0
	fs := tree(t, &clock, []string{"forecast-a"}, 2)
	db := statsdb.NewDB()
	journal := NewVFSJournal(vfs.New(nil), "/j")
	h, err := New(fs, db, journal, Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	// Crash after the last file is fully committed (upsert + journal) but
	// before the pass record lands.
	crash := errors.New("crash")
	count := 0
	h.onIngest = func(string) error {
		count++
		return nil
	}
	origJournal := h.journal
	h.journal = &failNthAppend{JournalStore: origJournal, failAt: 3, err: crash} // 2 watermarks ok, pass entry fails
	if _, err := h.Pass(); !errors.Is(err, crash) {
		// The pass entry append happens after both ingests succeed.
		t.Fatalf("Pass error = %v", err)
	}

	h2, err := New(fs, db, origJournal.(*VFSJournal), Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	st, err := h2.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.WatermarkHits != 2 || st.Ingested != 0 || st.Updated != 0 {
		t.Fatalf("resume pass = %+v", st)
	}
	if st.Pass != 1 {
		t.Fatalf("pass counter = %d, want 1 (crashed pass never recorded)", st.Pass)
	}
	if n := db.Table(statsdb.RunsTableName).Len(); n != 2 {
		t.Fatalf("rows = %d", n)
	}
}

// failNthAppend fails the nth Append call, simulating a crash at a chosen
// journal write.
type failNthAppend struct {
	JournalStore
	calls  int
	failAt int
	err    error
}

func (f *failNthAppend) Append(line string) error {
	f.calls++
	if f.calls == f.failAt {
		return f.err
	}
	return f.JournalStore.Append(line)
}

func TestJournalToleratesTornTrailingLine(t *testing.T) {
	clock := 10.0
	fs := tree(t, &clock, []string{"forecast-a"}, 2)
	journalFS := vfs.New(nil)
	journal := NewVFSJournal(journalFS, "/j")
	h, err := New(fs, statsdb.NewDB(), journal, Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Pass(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a torn half-line at the tail.
	if err := journalFS.AppendString("/j", `{"type":"watermark","watermark":{"pa`); err != nil {
		t.Fatal(err)
	}
	h2, err := New(fs, h.DB(), journal, Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	if h2.torn != 1 {
		t.Fatalf("torn = %d, want 1", h2.torn)
	}
	st, err := h2.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.WatermarkHits != 2 || st.Ingested != 0 {
		t.Fatalf("pass after torn line = %+v", st)
	}
	if h2.Status().TornLines != 1 {
		t.Fatalf("Status().TornLines = %d", h2.Status().TornLines)
	}
}

func TestMigrationsAdoptDatabaseBuiltByLoadRuns(t *testing.T) {
	// A database populated by the one-shot loader gains the provenance
	// columns without losing its rows.
	db := statsdb.NewDB()
	if _, err := statsdb.LoadRuns(db, []*logs.RunRecord{record("forecast-a", 1, "v1")}); err != nil {
		t.Fatal(err)
	}
	clock := 5.0
	fs := tree(t, &clock, []string{"forecast-a"}, 1)
	h, err := New(fs, db, NewVFSJournal(vfs.New(nil), "/j"), Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.Table(statsdb.RunsTableName)
	sch := tbl.Schema()
	if sch.Index(statsdb.ColHarvestedAt) < 0 || sch.Index(statsdb.ColSourcePath) < 0 {
		t.Fatalf("provenance columns missing after migration: %v", sch)
	}
	if got := statsdb.SchemaVersion(db); got != 2 {
		t.Fatalf("schema version = %d", got)
	}
	// The harvested copy of the same run updates the loader's row.
	st, err := h.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Updated != 1 || st.Ingested != 0 || tbl.Len() != 1 {
		t.Fatalf("pass = %+v, rows = %d", st, tbl.Len())
	}
}

func TestHarvestMetricsAndStatus(t *testing.T) {
	clock := 10.0
	fs := tree(t, &clock, []string{"forecast-a"}, 2)
	tel := telemetry.New()
	tel.SetClock(func() float64 { return clock })
	h, err := New(fs, statsdb.NewDB(), NewVFSJournal(vfs.New(nil), "/j"),
		Options{Telemetry: tel, Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	clock = 86500 // one day later than the newest log mtime (10)
	if _, err := h.Pass(); err != nil {
		t.Fatal(err)
	}
	reg := tel.Registry()
	if got := reg.Counter(MetricIngestedTotal, nil).Value(); got != 2 {
		t.Fatalf("%s = %v", MetricIngestedTotal, got)
	}
	if got := reg.Counter(MetricPassesTotal, nil).Value(); got != 1 {
		t.Fatalf("%s = %v", MetricPassesTotal, got)
	}
	if got := reg.Gauge(MetricLastPassTime, nil).Value(); got != 86500 {
		t.Fatalf("%s = %v", MetricLastPassTime, got)
	}
	if got := reg.Gauge(MetricWatermarkLag, nil).Value(); got != 86490 {
		t.Fatalf("%s = %v", MetricWatermarkLag, got)
	}
	st := h.Status()
	if st.Passes != 1 || st.Watermarks != 2 || st.Totals.Ingested != 2 {
		t.Fatalf("status = %+v", st)
	}
	if st.WatermarkLag != 86490 {
		t.Fatalf("status lag = %v", st.WatermarkLag)
	}
	if st.SchemaVersion != 2 {
		t.Fatalf("schema version = %d", st.SchemaVersion)
	}
}

func TestScheduleRunsPassesOnEngine(t *testing.T) {
	eng := sim.NewEngine()
	clock := func() float64 { return eng.Now() }
	fs := vfs.New(clock)
	h, err := New(fs, statsdb.NewDB(), NewVFSJournal(vfs.New(nil), "/j"), Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	// Logs appear over sim time; the scheduled harvester picks each up.
	for d := 1; d <= 3; d++ {
		day := d
		eng.At(float64(day)*3600-100, func() {
			if err := logs.Write(fs, record("forecast-a", day, "v1")); err != nil {
				t.Fatal(err)
			}
		})
	}
	Schedule(eng, h, 3600, 4*3600, nil)
	eng.RunUntil(5 * 3600)
	if h.Status().Passes != 4 {
		t.Fatalf("passes = %d, want 4", h.Status().Passes)
	}
	if n := h.DB().Table(statsdb.RunsTableName).Len(); n != 3 {
		t.Fatalf("rows = %d", n)
	}
	records, err := h.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[0].Day != 1 || records[2].Day != 3 {
		t.Fatalf("records = %v", records)
	}
}

func TestQueryProvenanceAnswersCodeVersionQuestion(t *testing.T) {
	clock := 10.0
	fs := vfs.New(func() float64 { return clock })
	for d := 1; d <= 3; d++ {
		if err := logs.Write(fs, record("forecast-a", d, "elcirc-5.01")); err != nil {
			t.Fatal(err)
		}
	}
	if err := logs.Write(fs, record("forecast-b", 2, "elcirc-5.01")); err != nil {
		t.Fatal(err)
	}
	if err := logs.Write(fs, record("forecast-c", 1, "elcirc-5.02")); err != nil {
		t.Fatal(err)
	}
	h := newHarvester(t, fs, &clock)
	if _, err := h.Pass(); err != nil {
		t.Fatal(err)
	}

	p, err := QueryProvenance(h.DB(), "elcirc-5.01")
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalRuns != 4 || len(p.Forecasts) != 2 {
		t.Fatalf("provenance = %+v", p)
	}
	if p.Forecasts[0].Forecast != "forecast-a" || p.Forecasts[0].Runs != 3 ||
		p.Forecasts[0].FirstDay != 1 || p.Forecasts[0].LastDay != 3 {
		t.Fatalf("forecast-a provenance = %+v", p.Forecasts[0])
	}
	if len(p.Forecasts[0].Sources) == 0 ||
		!strings.Contains(p.Forecasts[0].Sources[0], "/runs/forecast-a/") {
		t.Fatalf("sources = %v", p.Forecasts[0].Sources)
	}
	report := p.String()
	for _, want := range []string{"elcirc-5.01", "forecast-a", "forecast-b", "4 run(s)"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report lacks %q:\n%s", want, report)
		}
	}

	// Unknown version lists what exists instead.
	miss, err := QueryProvenance(h.DB(), "elcirc-9.99")
	if err != nil {
		t.Fatal(err)
	}
	if miss.TotalRuns != 0 || fmt.Sprint(miss.Available) != "[elcirc-5.01 elcirc-5.02]" {
		t.Fatalf("miss = %+v", miss)
	}
}

func TestOSJournalPersistsAcrossInstances(t *testing.T) {
	path := t.TempDir() + "/journal.jsonl"
	j := NewOSJournal(path)
	if err := appendEntry(j, journalEntry{Type: entryWatermark, Watermark: &Watermark{Path: "/runs/x", MTime: 5, Size: 9, Hash: "h"}}); err != nil {
		t.Fatal(err)
	}
	marks, _, _, torn, err := loadJournal(NewOSJournal(path))
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(marks) != 1 || marks["/runs/x"].MTime != 5 {
		t.Fatalf("reload = %+v torn=%d", marks, torn)
	}
}

func TestJournalOutlivingDatabaseSelfHeals(t *testing.T) {
	clock := 100.0
	fs := tree(t, &clock, []string{"forecast-a"}, 3)
	journal := NewVFSJournal(vfs.New(nil), "/j")
	h1, err := New(fs, statsdb.NewDB(), journal, Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := h1.Pass(); err != nil || st.Ingested != 3 {
		t.Fatalf("cold pass = %+v, %v", st, err)
	}

	// "Restart" against a fresh (empty) database while the journal
	// survives: a watermark without its row would silently skip data, so
	// the orphaned marks are dropped and the files re-read.
	h2, err := New(fs, statsdb.NewDB(), journal, Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.Status().Recovered; got != 3 {
		t.Fatalf("Recovered = %d, want 3", got)
	}
	st, err := h2.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 3 || st.WatermarkHits != 0 {
		t.Fatalf("recovery pass = %+v", st)
	}
	recs, err := h2.Records()
	if err != nil || len(recs) != 3 {
		t.Fatalf("records = %d, %v", len(recs), err)
	}
}

func TestSnapshotWarmsFreshDatabase(t *testing.T) {
	clock := 100.0
	base := tree(t, &clock, []string{"forecast-a", "forecast-b"}, 2)
	journal := NewVFSJournal(vfs.New(nil), "/j")
	h1, err := New(base, statsdb.NewDB(), journal, Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Pass(); err != nil {
		t.Fatal(err)
	}
	recs, err := h1.Records()
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "snapshot.jsonl")
	if err := SaveSnapshot(snap, recs); err != nil {
		t.Fatal(err)
	}

	// A fresh process: the snapshot restores the rows the journal's
	// watermarks vouch for, so the pass is warm — no marks dropped, no
	// bodies read.
	db := statsdb.NewDB()
	if n, err := LoadSnapshot(db, snap); err != nil || n != 4 {
		t.Fatalf("LoadSnapshot = %d, %v", n, err)
	}
	cfs := &countingFS{FS: base}
	h2, err := New(cfs, db, journal, Options{Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.Status().Recovered; got != 0 {
		t.Fatalf("Recovered = %d, want 0", got)
	}
	st, err := h2.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if st.WatermarkHits != 4 || st.BodiesRead != 0 || st.Ingested != 0 || cfs.reads != 0 {
		t.Fatalf("warm pass = %+v (reads %d)", st, cfs.reads)
	}
	recs2, err := h2.Records()
	if err != nil || len(recs2) != 4 {
		t.Fatalf("records = %d, %v", len(recs2), err)
	}
	if recs2[0].SourcePath == "" {
		t.Fatalf("snapshot lost source path: %+v", recs2[0])
	}
}

func TestLoadSnapshotMissingFileIsColdStart(t *testing.T) {
	n, err := LoadSnapshot(statsdb.NewDB(), filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || n != 0 {
		t.Fatalf("LoadSnapshot = %d, %v", n, err)
	}
}
