package harvest

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/logs"
	"repro/internal/statsdb"
	"repro/internal/vfs"
)

// benchTree builds a run tree with forecasts×days logs.
func benchTree(tb testing.TB, forecasts, days int) *vfs.FS {
	tb.Helper()
	fs := vfs.New(nil)
	for i := 0; i < forecasts; i++ {
		name := fmt.Sprintf("forecast-%03d", i)
		for d := 1; d <= days; d++ {
			if err := logs.Write(fs, record(name, d, "elcirc-5.01")); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return fs
}

// BenchmarkHarvestColdPass measures a first pass over a 200-log tree:
// every body read, parsed, and upserted.
func BenchmarkHarvestColdPass(b *testing.B) {
	fs := benchTree(b, 50, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := New(fs, statsdb.NewDB(), NewVFSJournal(vfs.New(nil), "/j"), Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Pass(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarvestWarmPass measures the watermark fast path: the same
// tree, nothing changed, no body reads.
func BenchmarkHarvestWarmPass(b *testing.B) {
	fs := benchTree(b, 50, 4)
	h, err := New(fs, statsdb.NewDB(), NewVFSJournal(vfs.New(nil), "/j"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := h.Pass(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Pass(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEmitBenchReport writes a machine-readable harvest benchmark to the
// file named by BENCH_OUT; `make bench` sets it and CI uploads the result
// as an artifact. Without BENCH_OUT the test is skipped.
func TestEmitBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("BENCH_OUT not set")
	}
	const forecasts, days = 100, 4
	fs := benchTree(t, forecasts, days)
	h, err := New(fs, statsdb.NewDB(), NewVFSJournal(vfs.New(nil), "/j"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	st, err := h.Pass()
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start).Seconds()
	if st.Ingested != forecasts*days {
		t.Fatalf("cold pass ingested %d, want %d", st.Ingested, forecasts*days)
	}
	const warmIters = 20
	start = time.Now()
	for i := 0; i < warmIters; i++ {
		if _, err := h.Pass(); err != nil {
			t.Fatal(err)
		}
	}
	warm := time.Since(start).Seconds() / warmIters
	report := map[string]any{
		"logs":               forecasts * days,
		"cold_pass_seconds":  cold,
		"warm_pass_seconds":  warm,
		"warm_speedup":       cold / warm,
		"records_per_second": float64(st.Ingested) / cold,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, data)
}
