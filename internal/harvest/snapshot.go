package harvest

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/logs"
	"repro/internal/statsdb"
)

// Snapshots give one-shot CLI harvesters a durable database. The journal
// persists watermarks across invocations, but the statistics database is
// in-memory: without a warm start every new process would have to re-read
// every log (pruneStaleMarks would drop the orphaned watermarks). A
// snapshot is the harvested records as JSONL, rewritten atomically after
// each pass; loading it before New restores the rows the watermarks vouch
// for, so the next pass is incremental across processes too.
//
// Crash-safety leans on pruneStaleMarks: if a process dies after
// journalling a file but before the snapshot rewrite, the next start
// finds a watermark without its row, drops it, and re-reads the file.

// LoadSnapshot applies the harvest migrations to db and upserts the
// records stored at path into it. A missing snapshot is a cold start, not
// an error. Unparsable lines (a torn final write) are skipped — their
// files simply get re-read. Returns the number of records loaded.
func LoadSnapshot(db *statsdb.DB, path string) (int, error) {
	if _, err := statsdb.Migrate(db, Migrations()); err != nil {
		return 0, err
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("harvest: load snapshot: %w", err)
	}
	defer f.Close()
	var recs []*logs.RunRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec := &logs.RunRecord{}
		if err := json.Unmarshal(line, rec); err != nil || rec.Validate() != nil {
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("harvest: load snapshot: %w", err)
	}
	if _, _, err := statsdb.UpsertRuns(db, recs, 0); err != nil {
		return 0, err
	}
	return len(recs), nil
}

// SaveSnapshot atomically rewrites the snapshot at path from records
// (write to a temp file, fsync, rename).
func SaveSnapshot(path string, records []*logs.RunRecord) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("harvest: save snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, r := range records {
		data, err := json.Marshal(r)
		if err == nil {
			_, err = w.Write(append(data, '\n'))
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("harvest: save snapshot: %w", err)
		}
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("harvest: save snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("harvest: save snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("harvest: save snapshot: %w", err)
	}
	return nil
}
