package harvest

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/vfs"
)

// JournalStore is the append-only byte store behind the harvest journal.
// The journal's crash-safety contract needs only two operations: append
// one line durably, and read everything back at startup. Two stores
// exist: a vfs-backed one for simulated campaigns and an OS-file one for
// harvesting real directory trees across process restarts.
type JournalStore interface {
	// Append durably appends one newline-terminated chunk.
	Append(line string) error
	// Load returns the whole journal ("" when it does not exist yet).
	Load() (string, error)
}

// VFSJournal stores the journal inside a virtual filesystem (typically
// the campaign's own, beside the run tree it describes).
type VFSJournal struct {
	FS   *vfs.FS
	Path string
}

// NewVFSJournal returns a journal store at path inside fs.
func NewVFSJournal(fs *vfs.FS, path string) *VFSJournal {
	return &VFSJournal{FS: fs, Path: path}
}

// Append appends one chunk to the journal file.
func (j *VFSJournal) Append(line string) error {
	return j.FS.AppendString(j.Path, line)
}

// Load reads the journal file ("" when absent).
func (j *VFSJournal) Load() (string, error) {
	if !j.FS.Exists(j.Path) {
		return "", nil
	}
	return j.FS.ReadFile(j.Path)
}

// OSJournal stores the journal in a real file, fsynced on every append,
// so foreman -harvest resumes incrementally across invocations and a
// crash loses at most the line being written (which the loader then
// discards as torn).
type OSJournal struct {
	Path string
}

// NewOSJournal returns a journal store backed by the file at path.
func NewOSJournal(path string) *OSJournal {
	return &OSJournal{Path: path}
}

// Append opens, appends, syncs, and closes the journal file.
func (j *OSJournal) Append(line string) error {
	f, err := os.OpenFile(j.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(line); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads the journal file ("" when absent).
func (j *OSJournal) Load() (string, error) {
	data, err := os.ReadFile(j.Path)
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Journal entry types.
const (
	entryWatermark = "watermark"
	entryPass      = "pass"
)

// journalEntry is one JSONL line of the harvest journal. Exactly one of
// the payload fields is set, selected by Type.
type journalEntry struct {
	Type      string     `json:"type"`
	Watermark *Watermark `json:"watermark,omitempty"`
	Pass      *PassStats `json:"pass,omitempty"`
}

// Watermark is the per-log-file high-water mark deciding whether a file
// needs re-reading (mtime or size changed) and re-ingesting (content hash
// changed). One watermark line is appended per ingest, after the database
// write it describes, so a crash between the two re-ingests idempotently
// on restart rather than losing or duplicating rows.
type Watermark struct {
	Path  string  `json:"path"`
	MTime float64 `json:"mtime"`
	Size  int64   `json:"size"`
	Hash  string  `json:"hash"`
	// At is the sim time the file was harvested.
	At float64 `json:"at"`
	// Quarantined marks a file that failed to parse; Error keeps the
	// ParseError text. The watermark still advances so an unchanged
	// corrupt file is not re-read (and re-reported) every pass.
	Quarantined bool   `json:"quarantined,omitempty"`
	Error       string `json:"error,omitempty"`
}

// appendEntry marshals and durably appends one journal line.
func appendEntry(store JournalStore, e journalEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return store.Append(string(data) + "\n")
}

// loadJournal replays the journal: later watermarks for a path supersede
// earlier ones, and the pass counter resumes from the last pass line. A
// torn final line (a crash mid-append) is discarded; corrupt lines
// elsewhere are counted but skipped, so one bad line cannot brick the
// harvester.
func loadJournal(store JournalStore) (marks map[string]*Watermark, lastPass PassStats, passes int, torn int, err error) {
	text, err := store.Load()
	if err != nil {
		return nil, PassStats{}, 0, 0, err
	}
	marks = make(map[string]*Watermark)
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e journalEntry
		if jsonErr := json.Unmarshal([]byte(line), &e); jsonErr != nil {
			torn++
			continue
		}
		switch e.Type {
		case entryWatermark:
			if e.Watermark == nil || e.Watermark.Path == "" {
				torn++
				continue
			}
			wm := *e.Watermark
			marks[wm.Path] = &wm
		case entryPass:
			if e.Pass == nil {
				torn++
				continue
			}
			lastPass = *e.Pass
			if e.Pass.Pass > passes {
				passes = e.Pass.Pass
			}
		default:
			torn++
		}
	}
	return marks, lastPass, passes, torn, nil
}

// fnvHash is FNV-1a over the log body, rendered as fixed-width hex — the
// content half of the watermark. Collisions would silently skip an
// ingest, but only for a file whose mtime or size already changed AND
// whose 64-bit hash collides, which is beyond the failure budget of a
// statistics harvest.
func fnvHash(s string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return fmt.Sprintf("%016x", h)
}
