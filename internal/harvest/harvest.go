// Package harvest is the factory's continuous log-ingestion pipeline: an
// incremental, fault-tolerant harvester that crawls run directories,
// parses run logs, and upserts them into the statistics database.
//
// The paper's §4.3.2 crawler is a nightly one-shot: walk every run
// directory, parse every log, reload the database. That neither scales
// (every pass re-reads the whole year) nor survives corruption (one bad
// log aborts the load). This harvester instead keeps a per-file watermark
// (mtime + size + content hash) persisted in a crash-safe JSONL journal:
// unchanged files are skipped without reading their bodies, corrupt files
// are quarantined with their ParseError rather than aborting the pass,
// and a crash mid-pass resumes idempotently because ingestion is an
// upsert keyed on (forecast, day, start) and the journal line for a file
// is appended only after its database write.
//
// Ingestion is versioned: Migrations evolves the runs table with the
// provenance columns (harvested_at, source_path) that power the paper's
// "find all forecasts that use code version X" query as a first-class
// report (QueryProvenance).
//
// The harvester is itself observable: telemetry counters, gauges, and
// histograms under harvest_*, one trace span per pass, and a Status
// snapshot served by the control room's /api/harvest endpoint.
package harvest

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/logs"
	"repro/internal/sim"
	"repro/internal/statsdb"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// Harvest metric names, exported so alert rules (monitor.StalenessRule,
// monitor.RateRule) can reference them without importing this package's
// internals.
const (
	MetricPassesTotal       = "harvest_passes_total"
	MetricFilesScannedTotal = "harvest_files_scanned_total"
	MetricBodiesReadTotal   = "harvest_log_reads_total"
	MetricIngestedTotal     = "harvest_records_ingested_total"
	MetricUpdatedTotal      = "harvest_records_updated_total"
	MetricQuarantinedTotal  = "harvest_quarantined_total"
	MetricWatermarkHits     = "harvest_watermark_hits_total"
	MetricLastPassTime      = "harvest_last_pass_timestamp"
	MetricWatermarkLag      = "harvest_watermark_lag_seconds"
	MetricWatermarks        = "harvest_watermarks"
	MetricQuarantineSize    = "harvest_quarantine_size"
	MetricPassWallSeconds   = "harvest_pass_wall_seconds"
)

// FS is the slice of vfs.FS the harvester needs. Tests substitute a
// counting wrapper to prove the watermark fast path reads no log bodies.
type FS interface {
	Walk(root string, fn func(info vfs.FileInfo) error) error
	ReadFile(path string) (string, error)
	Exists(path string) bool
}

// Options configure a Harvester. The zero value harvests /runs with no
// telemetry.
type Options struct {
	// Root is the run-tree root to crawl (default "/runs").
	Root string
	// LogName is the per-run log file name (default "run.log").
	LogName string
	// Telemetry receives the harvester's metrics and pass spans (nil
	// disables collection).
	Telemetry *telemetry.Telemetry
	// Clock supplies sim time for watermarks, harvested_at, and the
	// staleness gauge (nil pins it at 0). Campaigns pass Engine.Now.
	Clock func() float64
	// OnRecord, when set, is called with every record ingested or
	// updated — how a monitor feeds from the harvest rather than from
	// in-script hooks.
	OnRecord func(*logs.RunRecord)
}

// Migrations returns the schema migrations the harvester applies to its
// database before ingesting:
//
//	v1 create-runs            the base runs table with its indexes
//	v2 runs-provenance        adds harvested_at and source_path columns
//
// Both are idempotent against databases that already carry the state, so
// a harvester can adopt a database built by one-shot LoadRuns.
func Migrations() []statsdb.Migration {
	return []statsdb.Migration{
		{Version: 1, Name: "create-runs", Apply: func(db *statsdb.DB) error {
			_, err := statsdb.EnsureRunsTable(db)
			return err
		}},
		{Version: 2, Name: "runs-provenance", Apply: func(db *statsdb.DB) error {
			t, err := statsdb.EnsureRunsTable(db)
			if err != nil {
				return err
			}
			if t.Schema().Index(statsdb.ColHarvestedAt) < 0 {
				err = t.AddColumn(statsdb.Column{Name: statsdb.ColHarvestedAt, Type: statsdb.Float}, statsdb.FloatVal(0))
				if err != nil {
					return err
				}
			}
			if t.Schema().Index(statsdb.ColSourcePath) < 0 {
				err = t.AddColumn(statsdb.Column{Name: statsdb.ColSourcePath, Type: statsdb.String}, statsdb.StringVal(""))
				if err != nil {
					return err
				}
			}
			return nil
		}},
	}
}

// PassStats summarizes one harvest pass.
type PassStats struct {
	Pass int     `json:"pass"`
	At   float64 `json:"at"` // sim time the pass ran
	// WallSeconds is the real-time latency of the pass. Passes execute at
	// a single sim instant, so their cost is wall-clock, not sim-clock.
	WallSeconds   float64 `json:"wall_seconds"`
	Scanned       int     `json:"scanned"`
	WatermarkHits int     `json:"watermark_hits"`
	BodiesRead    int     `json:"bodies_read"`
	Refreshed     int     `json:"refreshed"` // mtime changed, content did not
	Ingested      int     `json:"ingested"`
	Updated       int     `json:"updated"`
	Quarantined   int     `json:"quarantined"`
}

// QuarantineEntry is one corrupt log held out of the database.
type QuarantineEntry struct {
	Path  string  `json:"path"`
	Error string  `json:"error"`
	At    float64 `json:"at"`
}

// Status is the harvester's observable state, served as /api/harvest.
type Status struct {
	Root          string    `json:"root"`
	Passes        int       `json:"passes"`
	LastPass      PassStats `json:"last_pass"`
	Watermarks    int       `json:"watermarks"`
	WatermarkLag  float64   `json:"watermark_lag_seconds"`
	SchemaVersion int64     `json:"schema_version"`
	TornLines     int       `json:"torn_journal_lines,omitempty"`
	// Recovered counts journal watermarks dropped at startup because
	// their rows were missing from the database (the files re-read on the
	// next pass).
	Recovered  int               `json:"recovered_watermarks,omitempty"`
	Totals     Totals            `json:"totals"`
	Quarantine []QuarantineEntry `json:"quarantine,omitempty"`
}

// Totals accumulate across every pass since the journal began.
type Totals struct {
	Scanned       int `json:"scanned"`
	WatermarkHits int `json:"watermark_hits"`
	BodiesRead    int `json:"bodies_read"`
	Ingested      int `json:"ingested"`
	Updated       int `json:"updated"`
	Quarantined   int `json:"quarantined"`
}

// Harvester incrementally ingests a run tree into a statistics database.
// Create with New; Pass is safe to call from the engine goroutine while
// Status is read from HTTP handlers.
type Harvester struct {
	mu      sync.Mutex
	fs      FS
	db      *statsdb.DB
	journal JournalStore
	opts    Options

	marks     map[string]*Watermark
	passes    int
	lastPass  PassStats
	totals    Totals
	torn      int
	recovered int

	// onIngest, when set (tests only), runs after a record's database
	// upsert and before its journal append — the crash window the
	// journal's ordering contract protects. A non-nil error aborts the
	// pass as a crash would.
	onIngest func(path string) error

	mPasses      *telemetry.Counter
	mScanned     *telemetry.Counter
	mBodies      *telemetry.Counter
	mIngested    *telemetry.Counter
	mUpdated     *telemetry.Counter
	mQuarantined *telemetry.Counter
	mHits        *telemetry.Counter
	mLastPass    *telemetry.Gauge
	mLag         *telemetry.Gauge
	mMarks       *telemetry.Gauge
	mQuarSize    *telemetry.Gauge
	mPassWall    *telemetry.Histogram
}

// New builds a Harvester over fs, ingesting into db through journal.
// It applies the schema migrations to db and replays the journal so a
// restarted harvester resumes from its watermarks instead of re-scanning.
func New(fs FS, db *statsdb.DB, journal JournalStore, opts Options) (*Harvester, error) {
	if fs == nil || db == nil || journal == nil {
		return nil, fmt.Errorf("harvest: fs, db, and journal are all required")
	}
	if opts.Root == "" {
		opts.Root = "/runs"
	}
	if opts.LogName == "" {
		opts.LogName = "run.log"
	}
	if opts.Clock == nil {
		opts.Clock = func() float64 { return 0 }
	}
	if _, err := statsdb.Migrate(db, Migrations()); err != nil {
		return nil, err
	}
	marks, lastPass, passes, torn, err := loadJournal(journal)
	if err != nil {
		return nil, fmt.Errorf("harvest: load journal: %w", err)
	}
	recovered := pruneStaleMarks(db, marks)
	h := &Harvester{
		fs:        fs,
		db:        db,
		journal:   journal,
		opts:      opts,
		marks:     marks,
		passes:    passes,
		lastPass:  lastPass,
		torn:      torn,
		recovered: recovered,
	}
	reg := opts.Telemetry.Registry()
	reg.Describe(MetricPassesTotal, "Harvest passes completed.")
	reg.Describe(MetricFilesScannedTotal, "Run logs considered across all passes.")
	reg.Describe(MetricBodiesReadTotal, "Run log bodies actually read (watermark misses).")
	reg.Describe(MetricIngestedTotal, "Run records newly inserted into statsdb.")
	reg.Describe(MetricUpdatedTotal, "Run records updated in place (content changed).")
	reg.Describe(MetricQuarantinedTotal, "Corrupt run logs quarantined instead of ingested.")
	reg.Describe(MetricWatermarkHits, "Run logs skipped unchanged (mtime+size watermark hit).")
	reg.Describe(MetricLastPassTime, "Sim time the last harvest pass completed — staleness rules watch this.")
	reg.Describe(MetricWatermarkLag, "Sim seconds between now and the newest harvested log mtime.")
	reg.Describe(MetricWatermarks, "Run logs currently covered by a watermark.")
	reg.Describe(MetricQuarantineSize, "Corrupt run logs currently quarantined.")
	reg.Describe(MetricPassWallSeconds, "Wall-clock latency of harvest passes.")
	h.mPasses = reg.Counter(MetricPassesTotal, nil)
	h.mScanned = reg.Counter(MetricFilesScannedTotal, nil)
	h.mBodies = reg.Counter(MetricBodiesReadTotal, nil)
	h.mIngested = reg.Counter(MetricIngestedTotal, nil)
	h.mUpdated = reg.Counter(MetricUpdatedTotal, nil)
	h.mQuarantined = reg.Counter(MetricQuarantinedTotal, nil)
	h.mHits = reg.Counter(MetricWatermarkHits, nil)
	h.mLastPass = reg.Gauge(MetricLastPassTime, nil)
	h.mLag = reg.Gauge(MetricWatermarkLag, nil)
	h.mMarks = reg.Gauge(MetricWatermarks, nil)
	h.mQuarSize = reg.Gauge(MetricQuarantineSize, nil)
	h.mPassWall = reg.Histogram(MetricPassWallSeconds,
		[]float64{0.0001, 0.001, 0.01, 0.1, 1, 10}, nil)
	h.refreshGaugesLocked()
	return h, nil
}

// pruneStaleMarks drops every non-quarantined watermark whose row is
// missing from the database. The journal and the database have
// independent lifetimes — an in-memory database restarts empty while its
// journal persists on disk — and a watermark without its row would
// silently skip a file whose data was lost. Dropping the mark forces a
// re-read, which the idempotent upsert absorbs; quarantined marks carry
// no rows by design and are kept.
func pruneStaleMarks(db *statsdb.DB, marks map[string]*Watermark) int {
	if len(marks) == 0 {
		return 0
	}
	have := map[string]bool{}
	if t := db.Table(statsdb.RunsTableName); t != nil && t.Schema().Index(statsdb.ColSourcePath) >= 0 {
		if res, err := statsdb.Select(t, statsdb.ColSourcePath).Run(); err == nil {
			for _, row := range res.Rows {
				have[row[0].Str()] = true
			}
		}
	}
	dropped := 0
	for path, wm := range marks {
		if wm.Quarantined || have[path] {
			continue
		}
		delete(marks, path)
		dropped++
	}
	return dropped
}

// DB returns the database the harvester ingests into.
func (h *Harvester) DB() *statsdb.DB { return h.db }

// Pass runs one incremental harvest over the tree: scan every run log,
// skip files whose watermark still matches, parse and upsert the rest,
// quarantine what fails to parse. The error return covers infrastructure
// failures (journal writes, walk errors) only; parse failures never abort
// a pass.
func (h *Harvester) Pass() (PassStats, error) {
	h.mu.Lock()
	defer h.mu.Unlock()

	now := h.opts.Clock()
	wallStart := time.Now()
	span := h.opts.Telemetry.Trace().Begin("harvest", fmt.Sprintf("pass-%03d", h.passes+1), "harvest", nil)
	stats := PassStats{Pass: h.passes + 1, At: now}

	err := func() error {
		if !h.fs.Exists(h.opts.Root) {
			return nil // nothing harvested yet; an empty pass, not an error
		}
		return h.fs.Walk(h.opts.Root, func(info vfs.FileInfo) error {
			if info.IsDir || info.Name != h.opts.LogName {
				return nil
			}
			stats.Scanned++
			h.mScanned.Inc()

			wm := h.marks[info.Path]
			if wm != nil && wm.MTime == info.MTime && wm.Size == info.Size {
				// Watermark hit: nothing about the file changed; its body
				// is never read.
				stats.WatermarkHits++
				h.mHits.Inc()
				return nil
			}

			body, err := h.fs.ReadFile(info.Path)
			if err != nil {
				// Size-only or vanished files are quarantined like corrupt
				// ones; a transient read failure retries next pass because
				// no watermark advances.
				return h.quarantineLocked(&stats, info, "", now, err)
			}
			stats.BodiesRead++
			h.mBodies.Inc()
			hash := fnvHash(body)
			if wm != nil && wm.Hash == hash && !wm.Quarantined {
				// Touched but unchanged (a re-copied file, a rewritten
				// identical log): refresh the watermark, skip the ingest.
				stats.Refreshed++
				return h.markLocked(&Watermark{
					Path: info.Path, MTime: info.MTime, Size: info.Size, Hash: hash, At: wm.At,
				})
			}

			rec, err := logs.ParseFrom(body, info.Path)
			if err != nil {
				return h.quarantineLocked(&stats, info, hash, now, err)
			}
			_, up, err := statsdb.UpsertRuns(h.db, []*logs.RunRecord{rec}, now)
			if err != nil {
				return err
			}
			stats.Ingested += up.Inserted
			stats.Updated += up.Updated
			h.mIngested.Add(float64(up.Inserted))
			h.mUpdated.Add(float64(up.Updated))
			if h.onIngest != nil {
				if err := h.onIngest(info.Path); err != nil {
					return err
				}
			}
			if err := h.markLocked(&Watermark{
				Path: info.Path, MTime: info.MTime, Size: info.Size, Hash: hash, At: now,
			}); err != nil {
				return err
			}
			if h.opts.OnRecord != nil {
				h.opts.OnRecord(rec)
			}
			return nil
		})
	}()
	if err != nil {
		span.SetArg("aborted", "true")
		span.EndSpan()
		return stats, err
	}

	stats.WallSeconds = time.Since(wallStart).Seconds()
	h.passes++
	stats.Pass = h.passes
	h.lastPass = stats
	h.totals.Scanned += stats.Scanned
	h.totals.WatermarkHits += stats.WatermarkHits
	h.totals.BodiesRead += stats.BodiesRead
	h.totals.Ingested += stats.Ingested
	h.totals.Updated += stats.Updated
	h.totals.Quarantined += stats.Quarantined
	h.mPasses.Inc()
	h.mLastPass.Set(now)
	h.mPassWall.Observe(stats.WallSeconds)
	h.refreshGaugesLocked()
	span.SetArg("scanned", fmt.Sprint(stats.Scanned))
	span.SetArg("ingested", fmt.Sprint(stats.Ingested))
	span.SetArg("quarantined", fmt.Sprint(stats.Quarantined))
	span.EndSpan()
	if err := appendEntry(h.journal, journalEntry{Type: entryPass, Pass: &stats}); err != nil {
		return stats, err
	}
	return stats, nil
}

// markLocked records a watermark in memory and appends it to the journal.
func (h *Harvester) markLocked(wm *Watermark) error {
	h.marks[wm.Path] = wm
	return appendEntry(h.journal, journalEntry{Type: entryWatermark, Watermark: wm})
}

// quarantineLocked holds a corrupt file out of the database, watermarked
// so it is not re-read until it changes.
func (h *Harvester) quarantineLocked(stats *PassStats, info vfs.FileInfo, hash string, now float64, cause error) error {
	stats.Quarantined++
	h.mQuarantined.Inc()
	return h.markLocked(&Watermark{
		Path: info.Path, MTime: info.MTime, Size: info.Size, Hash: hash, At: now,
		Quarantined: true, Error: cause.Error(),
	})
}

// refreshGaugesLocked recomputes the derived gauges after a pass or load.
func (h *Harvester) refreshGaugesLocked() {
	h.mMarks.Set(float64(len(h.marks)))
	quar := 0
	newest := 0.0
	for _, wm := range h.marks {
		if wm.Quarantined {
			quar++
		}
		if wm.MTime > newest {
			newest = wm.MTime
		}
	}
	h.mQuarSize.Set(float64(quar))
	if len(h.marks) > 0 {
		lag := h.opts.Clock() - newest
		if lag < 0 {
			lag = 0
		}
		h.mLag.Set(lag)
	}
}

// Status snapshots the harvester for the /api/harvest endpoint and the
// dashboard's harvest panel.
func (h *Harvester) Status() Status {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Status{
		Root:          h.opts.Root,
		Passes:        h.passes,
		LastPass:      h.lastPass,
		Watermarks:    len(h.marks),
		SchemaVersion: statsdb.SchemaVersion(h.db),
		TornLines:     h.torn,
		Recovered:     h.recovered,
		Totals:        h.totals,
	}
	newest := 0.0
	for _, wm := range h.marks {
		if wm.Quarantined {
			st.Quarantine = append(st.Quarantine, QuarantineEntry{Path: wm.Path, Error: wm.Error, At: wm.At})
		}
		if wm.MTime > newest {
			newest = wm.MTime
		}
	}
	sort.Slice(st.Quarantine, func(i, j int) bool { return st.Quarantine[i].Path < st.Quarantine[j].Path })
	if len(h.marks) > 0 {
		if lag := h.opts.Clock() - newest; lag > 0 {
			st.WatermarkLag = lag
		}
	}
	return st
}

// Quarantine returns the quarantined files, sorted by path.
func (h *Harvester) Quarantine() []QuarantineEntry {
	return h.Status().Quarantine
}

// Records reads the harvested run records back from the database, sorted
// by (forecast, year, day) like logs.Crawl, so planners built on crawled
// slices can feed from a harvested database unchanged.
func (h *Harvester) Records() ([]*logs.RunRecord, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	records, err := statsdb.ReadRuns(h.db)
	if err != nil {
		return nil, err
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].Forecast != records[j].Forecast {
			return records[i].Forecast < records[j].Forecast
		}
		if records[i].Year != records[j].Year {
			return records[i].Year < records[j].Year
		}
		return records[i].Day < records[j].Day
	})
	return records, nil
}

// Schedule runs a harvest pass every interval sim-seconds on eng, from
// interval after now until horizon — the always-on companion to the
// monitor's rule tick. Pass errors stop the schedule and are reported
// through onErr (which may be nil).
func Schedule(eng *sim.Engine, h *Harvester, interval, horizon float64, onErr func(error)) {
	if interval <= 0 {
		return
	}
	sched := eng.Scope("harvest")
	var tick func()
	tick = func() {
		if _, err := h.Pass(); err != nil {
			if onErr != nil {
				onErr(err)
			}
			return
		}
		if eng.Now()+interval <= horizon {
			sched.After(interval, tick)
		}
	}
	sched.After(interval, tick)
}
