package monitor

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/logs"
	"repro/internal/telemetry"
)

// day4 is midnight of day 4 in campaign seconds (StartDay 1).
const day4 = 3 * 86400.0

// completedRec builds a completed run record.
func completedRec(forecastName string, day int, start, walltime float64) *logs.RunRecord {
	return &logs.RunRecord{
		Forecast: forecastName, Region: "r", Year: 2005, Day: day, Node: "fnode01",
		CodeVersion: "v1", CodeFactor: 1, MeshName: "m", MeshSides: 10000, Timesteps: 960,
		Start: start, End: start + walltime, Walltime: walltime,
		Status: logs.StatusCompleted, Products: 2,
	}
}

// runningRec builds a launch record.
func runningRec(forecastName string, day int, start float64) *logs.RunRecord {
	r := completedRec(forecastName, day, start, 0)
	r.Status = logs.StatusRunning
	r.End = 0
	r.Walltime = 0
	return r
}

// seedHistory returns n completed runs of forecastName on days 1..n with
// the given walltimes (len(walltimes) == n), launched at 1h after
// midnight.
func seedHistory(forecastName string, walltimes ...float64) []*logs.RunRecord {
	recs := make([]*logs.RunRecord, len(walltimes))
	for i, wt := range walltimes {
		recs[i] = completedRec(forecastName, i+1, float64(i)*86400+3600, wt)
	}
	return recs
}

func testMonitor(opts Options) *Monitor {
	opts.Nodes = []core.NodeInfo{{Name: "fnode01", CPUs: 2, Speed: 1}}
	return New(opts, telemetry.NewRegistry())
}

// findAlert returns the first alert matching rule, or nil.
func findAlert(alerts []Alert, rule string) *Alert {
	for i := range alerts {
		if alerts[i].Rule == rule {
			return &alerts[i]
		}
	}
	return nil
}

// TestAlertEngine is the table-driven rule test: each case feeds a
// scripted sequence of run records and clock ticks through the monitor
// and checks the resulting alert history.
func TestAlertEngine(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		drive func(m *Monitor)
		check func(t *testing.T, m *Monitor)
	}{
		{
			// A run whose estimator ETA overshoots a tight deadline: the
			// predicted miss fires at launch — before the run ends — and
			// escalates to an actual (critical) miss at completion.
			name: "deadline miss predicted before it occurs",
			opts: Options{
				History:   seedHistory("f", 10000, 10000, 10000),
				Deadlines: map[string]float64{"f": 7200}, // 2h after midnight
			},
			drive: func(m *Monitor) {
				m.ObserveRecord(runningRec("f", 4, day4+3600))
				// Mid-flight, before the deadline passes.
				m.Tick(day4 + 5400)
				m.ObserveRecord(completedRec("f", 4, day4+3600, 10000))
			},
			check: func(t *testing.T, m *Monitor) {
				alerts := m.Alerts()
				a := findAlert(alerts, "deadline")
				if a == nil {
					t.Fatalf("no deadline alert in %+v", alerts)
				}
				if a.FiredAt != day4+3600 {
					t.Errorf("alert fired at %v, want launch time %v (before the miss occurred)",
						a.FiredAt, day4+3600)
				}
				end := day4 + 3600 + 10000
				if a.FiredAt >= end {
					t.Errorf("predicted alert fired at %v, not before the run ended at %v", a.FiredAt, end)
				}
				// After completion the alert is an actual critical miss.
				if a.Predicted || a.Severity != SevCritical || !a.Firing() {
					t.Errorf("after the miss occurred: predicted=%v severity=%v state=%v, want actual critical firing",
						a.Predicted, a.Severity, a.State)
				}
				st := m.Status()
				if st.Summary.Late != 1 {
					t.Errorf("late = %d, want 1", st.Summary.Late)
				}
				if got := m.runs["f/4"].State; got != RunLate {
					t.Errorf("run state = %q, want %q", got, RunLate)
				}
			},
		},
		{
			// The ETA predicts a miss, but the run lands in time: the
			// predicted alert resolves instead of escalating.
			name: "predicted miss resolved by on-time landing",
			opts: Options{
				History:   seedHistory("f", 10000, 10000, 10000),
				Deadlines: map[string]float64{"f": 7200},
			},
			drive: func(m *Monitor) {
				m.ObserveRecord(runningRec("f", 4, day4+3600))
				m.ObserveRecord(completedRec("f", 4, day4+3600, 3000)) // lands at +4600 < 7200
			},
			check: func(t *testing.T, m *Monitor) {
				a := findAlert(m.Alerts(), "deadline")
				if a == nil {
					t.Fatal("predicted alert never fired")
				}
				if !a.Predicted || a.Firing() || a.ResolvedAt != day4+3600+3000 {
					t.Errorf("alert = %+v, want predicted, resolved at landing", a)
				}
				if got := m.runs["f/4"].State; got != RunOnTime {
					t.Errorf("run state = %q, want %q", got, RunOnTime)
				}
			},
		},
		{
			// A run that doubles its walltime against the trailing median
			// trips the regression rule; the next normal run resolves it.
			name: "runtime regression against trailing history",
			opts: Options{
				History: seedHistory("f", 980, 1000, 1010, 990, 1000, 1020, 1000),
			},
			drive: func(m *Monitor) {
				m.ObserveRecord(completedRec("f", 8, 7*86400+3600, 2000))
				m.ObserveRecord(completedRec("f", 9, 8*86400+3600, 1000))
			},
			check: func(t *testing.T, m *Monitor) {
				a := findAlert(m.Alerts(), "runtime_regression")
				if a == nil {
					t.Fatal("no regression alert")
				}
				if a.Value != 2000 {
					t.Errorf("alert value = %v, want the regressed walltime 2000", a.Value)
				}
				if a.Threshold != 1.5*1000 {
					t.Errorf("alert threshold = %v, want 1.5 × median 1000", a.Threshold)
				}
				if a.Firing() {
					t.Error("regression alert still firing after a normal run")
				}
				if a.ResolvedAt != 8*86400+3600+1000 {
					t.Errorf("resolved at %v, want the normal run's end", a.ResolvedAt)
				}
			},
		},
		{
			// Too little history: the regression rule stays silent.
			name: "regression needs MinSamples of history",
			opts: Options{History: seedHistory("f", 1000, 1000)},
			drive: func(m *Monitor) {
				m.ObserveRecord(completedRec("f", 3, 2*86400+3600, 9000))
			},
			check: func(t *testing.T, m *Monitor) {
				if a := findAlert(m.Alerts(), "runtime_regression"); a != nil {
					t.Errorf("regression fired on 2 samples: %+v", a)
				}
			},
		},
		{
			// A run executing past its deadline is a real miss even before
			// it completes.
			name: "still-running past deadline is an actual miss",
			opts: Options{Deadlines: map[string]float64{"f": 7200}},
			drive: func(m *Monitor) {
				m.ObserveRecord(runningRec("f", 4, day4+3600)) // no history: ETA unknown
				m.Tick(day4 + 8000)                            // clock passes the deadline
			},
			check: func(t *testing.T, m *Monitor) {
				a := findAlert(m.Alerts(), "deadline")
				if a == nil {
					t.Fatal("no deadline alert for a run executing past its deadline")
				}
				if a.Predicted || a.Severity != SevCritical || !a.Firing() {
					t.Errorf("alert = %+v, want actual critical firing", a)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testMonitor(tc.opts)
			tc.drive(m)
			tc.check(t, m)
		})
	}
}

func TestThresholdRuleLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := New(Options{
		Thresholds: []ThresholdRule{{
			Name: "wip_high", Metric: "factory_wip_carryover", Above: 2, Severity: SevWarning,
		}},
	}, reg)
	g := reg.Gauge("factory_wip_carryover", nil)

	g.Set(5)
	m.Tick(1000)
	firing := m.FiringAlerts()
	if len(firing) != 1 || firing[0].Rule != "wip_high" || firing[0].Value != 5 {
		t.Fatalf("firing = %+v, want one wip_high alert at value 5", firing)
	}

	g.Set(1)
	m.Tick(2000)
	if n := len(m.FiringAlerts()); n != 0 {
		t.Fatalf("still %d firing after the gauge recovered", n)
	}
	all := m.Alerts()
	if len(all) != 1 || all[0].State != StateResolved || all[0].ResolvedAt != 2000 {
		t.Fatalf("history = %+v, want one alert resolved at t=2000", all)
	}
}

func TestMonitorSelfMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := New(Options{
		History:   seedHistory("f", 10000, 10000, 10000),
		Deadlines: map[string]float64{"f": 7200},
		Nodes:     []core.NodeInfo{{Name: "fnode01", CPUs: 2, Speed: 1}},
	}, reg)
	m.ObserveRecord(runningRec("f", 4, day4+3600))
	m.ObserveRecord(completedRec("f", 4, day4+3600, 10000))

	if v := reg.Counter("monitor_predicted_misses_total", nil).Value(); v != 1 {
		t.Errorf("predicted misses = %v, want 1", v)
	}
	if v := reg.Counter("monitor_deadline_misses_total", nil).Value(); v != 1 {
		t.Errorf("deadline misses = %v, want 1", v)
	}
	if v := reg.Gauge("monitor_alerts_firing", nil).Value(); v != 1 {
		t.Errorf("alerts firing gauge = %v, want 1", v)
	}
}

func TestSLOReport(t *testing.T) {
	m := testMonitor(Options{Deadlines: map[string]float64{"a": 7200, "b": 86400}})
	// a: one on-time (end 3600+1000 < 7200), one late (end 10000 > 7200).
	m.ObserveRecord(completedRec("a", 1, 3600, 1000))
	m.ObserveRecord(completedRec("a", 2, 86400+3600, 6400+3000))
	// b: one on-time.
	m.ObserveRecord(completedRec("b", 1, 3600, 2000))

	rep := m.Report()
	if len(rep.Forecasts) != 2 {
		t.Fatalf("forecasts in report = %d, want 2", len(rep.Forecasts))
	}
	a := rep.Forecasts[0]
	if a.Forecast != "a" || a.Runs != 2 || a.OnTime != 1 || a.Late != 1 {
		t.Errorf("a = %+v, want 2 runs, 1 on-time, 1 late", a)
	}
	if a.Attainment != 0.5 {
		t.Errorf("a attainment = %v, want 0.5", a.Attainment)
	}
	if want := (86400 + 3600 + 9400) - (86400 + 7200); math.Abs(a.WorstLateness-float64(want)) > 1e-9 {
		t.Errorf("a worst lateness = %v, want %d", a.WorstLateness, want)
	}
	if rep.Total.Runs != 3 || rep.Total.OnTime != 2 || rep.Total.Late != 1 {
		t.Errorf("total = %+v", rep.Total)
	}
	if got := rep.String(); got == "" {
		t.Error("report renders empty")
	}
}

func TestDroppedRunAlert(t *testing.T) {
	m := testMonitor(Options{})
	rec := runningRec("f", 1, 3600)
	rec.Status = logs.StatusDropped
	m.ObserveRecord(rec)
	a := findAlert(m.Alerts(), "run_dropped")
	if a == nil || a.Severity != SevWarning {
		t.Fatalf("alerts = %+v, want a run_dropped warning", m.Alerts())
	}
	if got := m.Status().Summary.Dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
}
