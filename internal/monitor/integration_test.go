package monitor

import (
	"testing"

	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/logs"
	"repro/internal/statsdb"
	"repro/internal/telemetry"
)

// attachSpec builds a small forecast spec with the given deadline
// (seconds after midnight).
func attachSpec(name string, deadline float64) *forecast.Spec {
	s := forecast.NewSpec(name, "r", 960, 10000, 2)
	s.StartOffset = 3600
	s.Deadline = deadline
	return s
}

// TestMonitorAttachedToCampaign runs a real campaign with the monitor
// attached: one forecast with an impossible deadline (1 s after
// midnight, before its own 1 h input constraint) must be tracked late
// with a deadline alert every day; one with an end-of-day deadline must
// land on time.
func TestMonitorAttachedToCampaign(t *testing.T) {
	tel := telemetry.New()
	c, err := factory.New(factory.Config{
		Days: 3,
		Forecasts: []factory.Assignment{
			{Spec: attachSpec("f-tight", 1), Node: "fnode01"},
			{Spec: attachSpec("f-easy", 86400), Node: "fnode02"},
		},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultOptions(), tel.Registry())
	m.Attach(c)
	c.Run()
	m.Finalize(c.Engine().Now())

	st := m.Status()
	if !st.Done {
		t.Error("status not marked done after Finalize")
	}
	if len(st.Runs) != 6 {
		t.Fatalf("tracked %d runs, want 6 (2 forecasts × 3 days)", len(st.Runs))
	}
	var late, onTime int
	for _, r := range st.Runs {
		switch {
		case r.Forecast == "f-tight" && r.State == RunLate:
			late++
		case r.Forecast == "f-easy" && r.State == RunOnTime:
			onTime++
		default:
			t.Errorf("run %s/%d in state %q", r.Forecast, r.Day, r.State)
		}
	}
	if late != 3 || onTime != 3 {
		t.Errorf("late=%d onTime=%d, want 3 and 3", late, onTime)
	}
	if len(st.Nodes) == 0 {
		t.Error("node utilization never captured by the tick")
	}

	// One deadline alert per late run, all still firing at campaign end.
	var deadlineAlerts int
	for _, a := range m.Alerts() {
		if a.Rule == "deadline" {
			deadlineAlerts++
			if a.Forecast != "f-tight" {
				t.Errorf("deadline alert for %q, want f-tight only", a.Forecast)
			}
		}
	}
	if deadlineAlerts != 3 {
		t.Errorf("deadline alerts = %d, want 3", deadlineAlerts)
	}

	rep := m.Report()
	if rep.Total.Runs != 6 || rep.Total.Late != 3 || rep.Total.OnTime != 3 {
		t.Errorf("report total = %+v", rep.Total)
	}
	if rep.Total.Attainment != 0.5 {
		t.Errorf("attainment = %v, want 0.5", rep.Total.Attainment)
	}
}

// TestAlertsQueryableViaSQL checks the foreman -sql path end to end:
// alerts persisted into statsdb join against the runs table.
func TestAlertsQueryableViaSQL(t *testing.T) {
	history := seedHistory("f", 10000, 10000, 10000)
	m := testMonitor(Options{
		History:   history,
		Deadlines: map[string]float64{"f": 7200},
	})
	day4rec := completedRec("f", 4, day4+3600, 10000)
	m.ObserveRecord(runningRec("f", 4, day4+3600))
	m.ObserveRecord(day4rec)

	db := statsdb.NewDB()
	if _, err := statsdb.LoadRuns(db, append(history, day4rec)); err != nil {
		t.Fatal(err)
	}
	tab, err := LoadAlerts(db, m.Alerts())
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Indexed("rule") || !tab.Indexed("forecast") {
		t.Error("alerts table not indexed on rule and forecast")
	}

	res, err := db.Query("SELECT alerts.rule, alerts.severity, runs.walltime, runs.node " +
		"FROM alerts JOIN runs ON alerts.forecast = runs.forecast " +
		"WHERE alerts.day = 4 AND runs.day = 4 AND rule = 'deadline'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("joined rows = %d, want 1\n%+v", len(res.Rows), res.Rows)
	}
	row := res.Rows[0]
	if row[0].String() != "deadline" || row[1].String() != "critical" {
		t.Errorf("row = %v, want the critical deadline alert", row)
	}
	if row[2].Float() != 10000 {
		t.Errorf("joined walltime = %v, want 10000", row[2].Float())
	}

	// Aggregates work over the alerts table like any other.
	res, err = db.Query("SELECT rule, COUNT(*) FROM alerts GROUP BY rule ORDER BY rule")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no alert rows grouped")
	}
}

// TestObserveSnapshotRefinesETA drives a campaign halfway, feeds the
// monitor a snapshot, and checks progress-based ETA refinement.
func TestObserveSnapshotRefinesETA(t *testing.T) {
	c, err := factory.New(factory.Config{
		Days: 1,
		Forecasts: []factory.Assignment{
			{Spec: attachSpec("f", 86400), Node: "fnode01"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := testMonitor(Options{})
	c.AddRunLogHook(m.ObserveRecord)
	c.Prepare()
	c.Engine().RunUntil(5000) // mid-run: the ~2800 s run launched at 3600
	snap := c.Snapshot()
	if len(snap.Active) != 1 {
		t.Fatalf("active = %+v, want the one run", snap.Active)
	}
	m.ObserveSnapshot(snap, []NodeStatus{{Name: "fnode01", CPUs: 2, Utilization: 0.5}})

	st := m.Status()
	if len(st.Runs) != 1 {
		t.Fatalf("runs = %+v", st.Runs)
	}
	r := st.Runs[0]
	if r.Progress <= 0 || r.Progress >= 1 {
		t.Errorf("progress = %v, want mid-run fraction", r.Progress)
	}
	if r.ETA <= snap.Now {
		t.Errorf("ETA = %v, want extrapolation past now %v", r.ETA, snap.Now)
	}
	if len(st.Nodes) != 1 || st.Nodes[0].Utilization != 0.5 {
		t.Errorf("nodes = %+v", st.Nodes)
	}
	c.Finish()
}

// TestLoadAlertsExtends checks incremental loads extend the table.
func TestLoadAlertsExtends(t *testing.T) {
	db := statsdb.NewDB()
	a := Alert{ID: 1, Rule: "deadline", Severity: SevCritical, State: StateFiring,
		Forecast: "f", Day: 1, Node: "n", Message: "m", FiredAt: 10}
	if _, err := LoadAlerts(db, []Alert{a}); err != nil {
		t.Fatal(err)
	}
	b := a
	b.ID = 2
	tab, err := LoadAlerts(db, []Alert{b})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Errorf("table len = %d, want 2", tab.Len())
	}
}

// Ensure a record stream that resembles the factory's (running then
// completed at distinct times) keeps the monitor's clock monotonic.
func TestClockMonotonic(t *testing.T) {
	m := testMonitor(Options{})
	m.ObserveRecord(runningRec("f", 1, 3600))
	m.ObserveRecord(completedRec("f", 1, 3600, 5000))
	if now := m.Now(); now != 8600 {
		t.Errorf("now = %v, want 8600 (the completion instant)", now)
	}
	m.ObserveRecord(&logs.RunRecord{Forecast: "g", Day: 1, Node: "n", Status: logs.StatusRunning, Start: 4000})
	if now := m.Now(); now != 8600 {
		t.Errorf("now = %v after an older record, want clock to hold at 8600", now)
	}
}
