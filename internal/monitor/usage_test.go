package monitor

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// driftMonitor builds a monitor whose estimator predicts ~10000s runs
// and whose drift rule tolerates 25% relative error.
func driftMonitor(rule DriftRule) *Monitor {
	return testMonitor(Options{
		History: seedHistory("f", 10000, 10000, 10000),
		Drift:   rule,
	})
}

func TestDriftAlert(t *testing.T) {
	cases := []struct {
		name     string
		rule     DriftRule
		walltime float64
		fires    bool
		word     string // expected direction in the message
	}{
		// Predicted ~10000s; landing at 16000s is 60% late drift.
		{"late landing fires", DriftRule{RelAbove: 0.25, Severity: SevWarning}, 16000, true, "late"},
		// Landing at 5000s is 50% early drift — wrong plans fire both ways.
		{"early landing fires", DriftRule{RelAbove: 0.25, Severity: SevWarning}, 5000, true, "early"},
		// 5% drift is within the 25% tolerance.
		{"within tolerance", DriftRule{RelAbove: 0.25, Severity: SevWarning}, 10500, false, ""},
		// 60% relative drift but only 6000s absolute, under the floor.
		{"min-secs suppression", DriftRule{RelAbove: 0.25, MinSecs: 8000, Severity: SevWarning}, 16000, false, ""},
		// The zero value disables the rule entirely.
		{"zero rule disabled", DriftRule{}, 16000, false, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := driftMonitor(tc.rule)
			m.ObserveRecord(runningRec("f", 4, day4+3600))
			m.ObserveRecord(completedRec("f", 4, day4+3600, tc.walltime))
			a := findAlert(m.Alerts(), "plan_drift")
			if !tc.fires {
				if a != nil {
					t.Fatalf("unexpected drift alert: %+v", a)
				}
				return
			}
			if a == nil {
				t.Fatalf("no plan_drift alert in %+v", m.Alerts())
			}
			if !a.Firing() || a.Severity != SevWarning {
				t.Errorf("alert state=%v severity=%v, want firing warning", a.State, a.Severity)
			}
			if a.Value <= tc.rule.RelAbove {
				t.Errorf("alert value %v not above threshold %v", a.Value, tc.rule.RelAbove)
			}
			if !strings.Contains(a.Message, tc.word) {
				t.Errorf("message %q does not say the landing was %s", a.Message, tc.word)
			}
		})
	}
}

// A corrected completion record that lands back on plan retires the
// drift alert for that run.
func TestDriftAlertResolves(t *testing.T) {
	m := driftMonitor(DriftRule{RelAbove: 0.25, Severity: SevWarning})
	m.ObserveRecord(runningRec("f", 4, day4+3600))
	m.ObserveRecord(completedRec("f", 4, day4+3600, 16000))
	if a := findAlert(m.Alerts(), "plan_drift"); a == nil || !a.Firing() {
		t.Fatalf("drift alert should fire first: %+v", a)
	}
	m.ObserveRecord(completedRec("f", 4, day4+3600, 10000))
	if a := findAlert(m.Alerts(), "plan_drift"); a == nil || a.Firing() {
		t.Fatalf("drift alert should have resolved: %+v", a)
	}
}

func TestUsageRules(t *testing.T) {
	rules := UsageRules([]string{"a", "b"}, 0, SevWarning)
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 2 saturation + 1 imbalance", len(rules))
	}
	for i, node := range []string{"a", "b"} {
		r := rules[i]
		if r.Name != "saturation:"+node || r.Metric != usage.MetricContentionAge ||
			r.Labels["node"] != node || r.Above != 1800 || r.Severity != SevWarning {
			t.Errorf("saturation rule %d = %+v", i, r)
		}
	}
	imb := rules[2]
	if imb.Name != "imbalance" || imb.Metric != usage.MetricImbalanceAge || imb.Above != 1800 {
		t.Errorf("imbalance rule = %+v", imb)
	}
	// An explicit sustain overrides the default.
	if r := UsageRules([]string{"a"}, 600, SevCritical)[0]; r.Above != 600 || r.Severity != SevCritical {
		t.Errorf("custom sustain rule = %+v", r)
	}
}

// Without an attached sampler the utilization endpoint 404s; with one,
// it serves the sampler's JSON snapshot.
func TestUtilizationEndpoint(t *testing.T) {
	m, reg, srv := testServer(t)
	code, _, _ := get(t, srv, "/api/utilization")
	if code != 404 {
		t.Fatalf("unattached utilization status = %d, want 404", code)
	}

	// Run a small campaign under a real sampler and attach its Status.
	e := sim.NewEngine()
	c := cluster.New(e)
	n := c.AddNode("unode01", 1, 1.0)
	smp := usage.NewSampler(c, usage.Options{Interval: 300})
	smp.Start(3600)
	e.At(0, func() {
		n.Submit("a", 600, nil)
		n.Submit("b", 600, nil)
	})
	e.Run()
	smp.Finalize(e.Now())

	s := NewServer(m, reg)
	s.AttachUtilization(func() any { return smp.Status() })
	srv2 := httptest.NewServer(s.Handler())
	t.Cleanup(srv2.Close)

	code, body, ctype := get(t, srv2, "/api/utilization")
	if code != 200 {
		t.Fatalf("attached utilization status = %d\n%s", code, body)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("content type = %q", ctype)
	}
	var st usage.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("utilization is not a usage.Status: %v\n%s", err, body)
	}
	if len(st.Nodes) != 1 || st.Nodes[0].Name != "unode01" {
		t.Errorf("nodes = %+v, want the sampled node", st.Nodes)
	}
	// Two 600-work jobs sharing one CPU: a contention window must have
	// been detected and serialized.
	if len(st.Windows) == 0 {
		t.Errorf("no contention windows in snapshot: %s", body)
	}
}

// pprof routes are opt-in: absent by default, mounted after
// EnablePprof.
func TestPprofGating(t *testing.T) {
	m, reg, srv := testServer(t)
	if code, _, _ := get(t, srv, "/debug/pprof/"); code != 404 {
		t.Fatalf("pprof served without EnablePprof: status %d", code)
	}
	s := NewServer(m, reg)
	s.EnablePprof()
	srv2 := httptest.NewServer(s.Handler())
	t.Cleanup(srv2.Close)
	code, body, _ := get(t, srv2, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index status %d:\n%.200s", code, body)
	}
}

// The metrics endpoint collects Go runtime gauges on every scrape.
func TestRuntimeGaugesInMetrics(t *testing.T) {
	_, _, srv := testServer(t)
	code, body, _ := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	for _, metric := range []string{
		telemetry.MetricGoroutines,
		telemetry.MetricHeapAlloc,
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics output missing runtime gauge %q", metric)
		}
	}
}
