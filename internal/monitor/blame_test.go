package monitor

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/forensics"
	"repro/internal/statsdb"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

func TestBlameShiftRule(t *testing.T) {
	m := testMonitor(Options{Blame: BlameShiftRule{MinLateness: 600, Severity: SevWarning}})

	m.ObserveBlame(1, "contention", 3000)
	if len(m.FiringAlerts()) != 0 {
		t.Fatal("first observed day must only set the baseline")
	}
	// Same dominant the next day: no shift.
	m.ObserveBlame(2, "contention", 2500)
	if len(m.FiringAlerts()) != 0 {
		t.Fatal("unchanged dominant fired an alert")
	}
	// A quiet day (below MinLateness) carries no signal.
	m.ObserveBlame(3, "failure", 100)
	if len(m.FiringAlerts()) != 0 {
		t.Fatal("sub-threshold day fired an alert")
	}
	// The dominant cause moves: assignable-cause alert.
	m.ObserveBlame(4, "failure", 4000)
	firing := m.FiringAlerts()
	if len(firing) != 1 {
		t.Fatalf("dominant shift fired %d alerts, want 1", len(firing))
	}
	a := firing[0]
	if a.Rule != "blame_shift" || a.Severity != SevWarning || a.Day != 4 {
		t.Errorf("alert = %+v", a)
	}
	// Steady again: the alert resolves.
	m.ObserveBlame(5, "failure", 3500)
	if len(m.FiringAlerts()) != 0 {
		t.Error("alert did not resolve once the dominant cause settled")
	}
	// Replayed or out-of-order days are ignored.
	m.ObserveBlame(2, "queue_wait", 9000)
	if len(m.FiringAlerts()) != 0 {
		t.Error("out-of-order day fired an alert")
	}
	// "none" days are skipped, not treated as a shift.
	m.ObserveBlame(6, "none", 9000)
	m.ObserveBlame(7, "failure", 3000)
	if len(m.FiringAlerts()) != 0 {
		t.Error("a no-blame day broke the baseline")
	}
}

func TestBlameShiftRuleDisabled(t *testing.T) {
	m := testMonitor(Options{})
	m.ObserveBlame(1, "contention", 5000)
	m.ObserveBlame(2, "failure", 5000)
	if len(m.FiringAlerts()) != 0 {
		t.Error("zero-value rule must be disabled")
	}
}

// TestForensicsEndpointServesPersistedReport is the issue's agreement
// check: /api/forensics serves exactly what ReadReport returns from the
// stats database — the same rows the foreman -blame report renders.
func TestForensicsEndpointServesPersistedReport(t *testing.T) {
	rep, err := forensics.Analyze(forensics.Input{
		Spans: []telemetry.Span{
			{ID: 1, Cat: "run", Name: "f1", Track: "n1", Start: 100, End: 700,
				Args: map[string]string{"forecast": "f1", "day": "1", "node": "n1"}},
			{ID: 2, Parent: 1, Cat: "simulation", Name: "sim f1", Track: "n1", Start: 150, End: 700},
		},
		Plan: []forensics.PlanEntry{
			{Forecast: "f1", Day: 1, Node: "n1", Start: 50, End: 434, Deadline: 600},
		},
		Timeline: forensics.NewTimeline([]usage.Sample{
			{Node: "n1", Start: 100, End: 700, MeanShare: 0.75, DownSecs: 30},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	db := statsdb.NewDB()
	if err := forensics.LoadReport(db, rep); err != nil {
		t.Fatal(err)
	}

	m := testMonitor(Options{})
	s := NewServer(m, nil)
	s.AttachForensics(func() any {
		r, err := forensics.ReadReport(db)
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return r
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body, ctype := get(t, srv, "/api/forensics")
	if code != 200 || ctype != "application/json" {
		t.Fatalf("forensics endpoint = %d %s", code, ctype)
	}
	var got forensics.Report
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("forensics response is not a Report: %v\n%s", err, body)
	}
	want, err := forensics.ReadReport(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != len(want.Runs) || len(got.Days) != len(want.Days) {
		t.Fatalf("served %d runs / %d days, statsdb has %d / %d",
			len(got.Runs), len(got.Days), len(want.Runs), len(want.Days))
	}
	for i := range want.Runs {
		a, b := got.Runs[i], want.Runs[i]
		if a.Forecast != b.Forecast || a.Day != b.Day || a.Dominant != b.Dominant {
			t.Errorf("run %d: served %+v, statsdb %+v", i, a, b)
		}
		if math.Abs(a.Lateness-b.Lateness) > 1e-9 || math.Abs(a.BlameSum()-b.BlameSum()) > 1e-9 {
			t.Errorf("run %d numbers diverge between endpoint and statsdb", i)
		}
		if len(a.Path) != len(b.Path) {
			t.Errorf("run %d path length %d vs %d", i, len(a.Path), len(b.Path))
		}
	}
}

func TestForensicsEndpointWithoutAttachment(t *testing.T) {
	m := testMonitor(Options{})
	srv := httptest.NewServer(NewServer(m, nil).Handler())
	defer srv.Close()
	code, _, _ := get(t, srv, "/api/forensics")
	if code != 404 {
		t.Errorf("unattached forensics endpoint = %d, want 404", code)
	}
}

func TestDashboardHasBlamePanel(t *testing.T) {
	m := testMonitor(Options{})
	srv := httptest.NewServer(NewServer(m, nil).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/")
	if code != 200 {
		t.Fatalf("dashboard = %d", code)
	}
	for _, want := range []string{"blame-panel", "api/forensics", "estimate_error"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
