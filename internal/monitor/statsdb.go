package monitor

import (
	"repro/internal/statsdb"
)

// AlertsTableName is the conventional name of the alert-history table.
const AlertsTableName = "alerts"

// AlertsSchema returns the schema of the alert-history table: one tuple
// per alert, joinable with the runs and spans tables on forecast (and
// day), so lateness can be probed with the same SQL as run statistics —
// e.g. walltimes of the runs that tripped the regression rule.
func AlertsSchema() statsdb.Schema {
	return statsdb.Schema{
		{Name: "id", Type: statsdb.Int},
		{Name: "rule", Type: statsdb.String},
		{Name: "severity", Type: statsdb.String},
		{Name: "state", Type: statsdb.String},
		{Name: "forecast", Type: statsdb.String},
		{Name: "day", Type: statsdb.Int},
		{Name: "node", Type: statsdb.String},
		{Name: "predicted", Type: statsdb.Bool},
		{Name: "value", Type: statsdb.Float},
		{Name: "threshold", Type: statsdb.Float},
		{Name: "fired_at", Type: statsdb.Float},
		{Name: "resolved_at", Type: statsdb.Float},
		{Name: "message", Type: statsdb.String},
	}
}

// LoadAlerts creates (or extends) the alerts table from an alert
// history (Monitor.Alerts), indexing rule and forecast. resolved_at is
// zero for alerts still firing when the history was taken.
func LoadAlerts(db *statsdb.DB, alerts []Alert) (*statsdb.Table, error) {
	t := db.Table(AlertsTableName)
	if t == nil {
		var err error
		t, err = db.CreateTable(AlertsTableName, AlertsSchema())
		if err != nil {
			return nil, err
		}
		for _, col := range []string{"rule", "forecast"} {
			if err := t.CreateIndex(col); err != nil {
				return nil, err
			}
		}
	}
	for _, a := range alerts {
		row := []statsdb.Value{
			statsdb.IntVal(a.ID),
			statsdb.StringVal(a.Rule),
			statsdb.StringVal(a.Severity.String()),
			statsdb.StringVal(a.State),
			statsdb.StringVal(a.Forecast),
			statsdb.IntVal(int64(a.Day)),
			statsdb.StringVal(a.Node),
			statsdb.BoolVal(a.Predicted),
			statsdb.FloatVal(a.Value),
			statsdb.FloatVal(a.Threshold),
			statsdb.FloatVal(a.FiredAt),
			statsdb.FloatVal(a.ResolvedAt),
			statsdb.StringVal(a.Message),
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}
