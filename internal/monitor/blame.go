package monitor

import "fmt"

// BlameShiftRule fires when the dominant lateness component changes
// between campaign days — the SPC "assignable cause" signal: a factory
// whose lateness was explained by contention yesterday and by failures
// today has a new problem, not more of the old one. Day verdicts come
// from the forensics layer's per-day blame aggregation and are reported
// via ObserveBlame. The zero value disables the rule.
type BlameShiftRule struct {
	// MinLateness is the summed positive lateness (sim seconds) a day
	// must show before its dominant component is trusted; quieter days
	// carry no signal and are skipped. Zero or negative disables the
	// rule entirely.
	MinLateness float64
	Severity    Severity
}

// blameState remembers the last qualifying day's verdict between
// ObserveBlame calls.
type blameState struct {
	seen     bool
	day      int
	dominant string
}

// ObserveBlame reports one day's forensic verdict: its dominant lateness
// component (forensics.CompNone / "none" when nothing is to blame) and
// its summed positive lateness. Days arriving out of order are ignored.
// When the dominant component differs from the previous qualifying day's,
// the blame_shift alert fires; while the component stays put the alert
// resolves. Plain values keep the monitor free of a forensics import —
// callers iterate a forensics report's Days.
func (m *Monitor) ObserveBlame(day int, dominant string, lateness float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rule := m.opts.Blame
	if rule.MinLateness <= 0 {
		return
	}
	if m.blame.seen && day <= m.blame.day {
		return
	}
	if dominant == "" || dominant == "none" || lateness < rule.MinLateness {
		return // no trustworthy verdict; keep the previous baseline
	}
	if !m.blame.seen {
		m.blame = blameState{seen: true, day: day, dominant: dominant}
		return
	}
	prev := m.blame
	m.blame = blameState{seen: true, day: day, dominant: dominant}
	key := "blame_shift"
	if dominant == prev.dominant {
		m.book.resolve(m.now, key)
		return
	}
	m.book.fire(m.now, Alert{
		Rule: "blame_shift", Key: key, Severity: rule.Severity,
		Day: day, Value: lateness, Threshold: rule.MinLateness,
		Message: fmt.Sprintf("dominant lateness cause shifted from %s (day %d) to %s (day %d)",
			prev.dominant, prev.day, dominant, day),
	})
}
