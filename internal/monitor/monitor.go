// Package monitor is the factory control room: the consumer of the
// telemetry layer that closes the loop between measurement and operator
// action. It tracks every run against its deadline SLO, predicts misses
// before they happen using the ForeMan estimator and observed simulation
// progress, evaluates alert rules (deadline, run-time regression,
// metric thresholds) with a firing→resolved lifecycle, and serves the
// whole picture over HTTP (Prometheus /metrics, a JSON status API, and
// a live HTML dashboard).
//
// The paper's forecasts are perishable (§4.1): a product that lands
// after its deadline has lost most of its value, yet §4.3's statistics
// database only reveals lateness after the fact. The monitor watches
// the factory online instead — the way Tuor et al. (arXiv:1905.09219)
// argue for continuously collected, centrally evaluated run telemetry.
//
// The monitor is driven entirely by simulation-side events (run-log
// writes and periodic engine ticks), so its state is deterministic;
// the HTTP server reads immutable snapshots under a lock and never
// touches the engine, making it safe to serve from wall-clock
// goroutines while the campaign replays.
package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/logs"
	"repro/internal/telemetry"
)

// Run states reported by the SLO tracker.
const (
	RunRunning = "running"
	RunOnTime  = "on-time"
	RunLate    = "late"
	RunDropped = "dropped"
)

// RunSLO is one run's standing against its deadline. Times are absolute
// campaign seconds; zero ETA/End mean "not known yet".
type RunSLO struct {
	Forecast string  `json:"forecast"`
	Day      int     `json:"day"`
	Node     string  `json:"node"`
	State    string  `json:"state"`
	Start    float64 `json:"start"`
	Deadline float64 `json:"deadline"`
	// ETA is the current completion prediction: the estimator's figure at
	// launch, refined from simulation progress while the run executes,
	// and the actual end once finished.
	ETA float64 `json:"eta,omitempty"`
	// LaunchETA preserves the launch-time prediction after ETA is refined
	// or overwritten by the actual end — the plan the drift rule compares
	// reality against.
	LaunchETA float64 `json:"launch_eta,omitempty"`
	End       float64 `json:"end,omitempty"`
	Walltime  float64 `json:"walltime,omitempty"`
	// Budget is the lateness budget remaining: deadline minus ETA.
	// Negative means the run is (predicted) late.
	Budget float64 `json:"budget"`
	// Progress is the simulation fraction completed (running runs).
	Progress float64 `json:"progress"`
	// PredictedMiss is set while the tracker expects the deadline to be
	// missed (and stays set if it actually was).
	PredictedMiss bool `json:"predicted_miss,omitempty"`
}

// NodeStatus is one node's cached utilization for the status API.
type NodeStatus struct {
	Name        string  `json:"name"`
	CPUs        int     `json:"cpus"`
	Utilization float64 `json:"utilization"`
}

// Options configure a Monitor. The zero value is usable; DefaultOptions
// fills in the standard rule set.
type Options struct {
	// TickEvery is the rule-evaluation interval in sim seconds when
	// attached to a campaign (default 900 = 15 sim-minutes).
	TickEvery float64
	// PredictedSeverity and MissSeverity grade the deadline rule's two
	// stages (defaults: warning, critical).
	PredictedSeverity Severity
	MissSeverity      Severity
	// Regression is the rolling-window walltime anomaly rule.
	Regression RegressionRule
	// Thresholds are metric threshold rules evaluated every tick.
	Thresholds []ThresholdRule
	// Staleness rules watch timestamp gauges (harvest heartbeat) for
	// silence; Rates watch counter growth (quarantine spikes). Both are
	// evaluated every tick, after Thresholds.
	Staleness []StalenessRule
	Rates     []RateRule
	// Drift fires when a completed run lands far from its launch-time
	// prediction — the plan-vs-actual feedback rule. The zero value
	// (RelAbove 0) disables it.
	Drift DriftRule
	// Blame fires when the dominant lateness component (from a forensics
	// pass, fed via ObserveBlame) changes between days. The zero value
	// (MinLateness 0) disables it.
	Blame BlameShiftRule
	// OutOfControl fires while an SPC series (fed via ObserveControl) is
	// out of control; Changepoint fires when the SPC layer detects a
	// level shift (fed via ObserveChangepoint). Zero values disable both.
	OutOfControl OutOfControlRule
	Changepoint  ChangepointRule
	// Expected lists the forecasts that must produce a run every campaign
	// day — the data-quality rule for "a run we expected never appeared".
	// Attach fills it from the campaign roster. Empty disables the check.
	Expected []string
	// LastDay bounds the missing-run check (Attach sets it to the last
	// campaign day so drain time is not flagged).
	LastDay int
	// MissingRunGrace is how far past a day's deadline the monitor waits
	// before declaring an expected run missing (sim seconds).
	MissingRunGrace float64
	// MissingRunSeverity grades missing-run alerts (default critical).
	MissingRunSeverity Severity
	// History seeds the estimator and the regression baselines with
	// completed run records (e.g. harvested from the statsdb runs table).
	History []*logs.RunRecord
	// StartDay anchors day-of-year to campaign seconds (default 1).
	// Attach overrides it from the campaign.
	StartDay int
	// Nodes supplies node speeds for the estimator. Attach overrides it
	// from the campaign's cluster.
	Nodes []core.NodeInfo
	// Deadlines overrides the per-forecast deadline (seconds after
	// midnight). Unlisted forecasts use the spec's deadline via SpecOf,
	// else end of day.
	Deadlines map[string]float64
	// SpecOf resolves a forecast's current spec for deadline lookup and
	// history-less estimates. Attach wires it to Campaign.Spec.
	SpecOf func(name string) *forecast.Spec
}

// DefaultOptions returns the standard control-room configuration.
func DefaultOptions() Options {
	return Options{
		TickEvery:         900,
		PredictedSeverity: SevWarning,
		MissSeverity:      SevCritical,
		Regression:        RegressionRule{Window: 7, Ratio: 1.5, MinSamples: 3, Severity: SevWarning},
		StartDay:          1,
	}
}

// Monitor is the control room's state: the SLO tracker, the alert
// engine, and cached node utilization. All exported methods are safe for
// concurrent use; the HTTP server reads while the simulation writes.
type Monitor struct {
	mu   sync.Mutex
	opts Options
	reg  *telemetry.Registry

	now  float64
	done bool

	runs  map[string]*RunSLO // key "forecast/day"
	order []string           // insertion order of runs

	// Completed-run history per forecast (walltimes, oldest first) for
	// regression baselines, plus the full records for the estimator.
	walltimes map[string][]float64
	records   []*logs.RunRecord
	est       *core.Estimator
	estDirty  bool

	nodes []NodeStatus

	book  *alertBook
	rates map[string]*rateState // per-RateRule counter state between ticks
	blame blameState            // last qualifying day seen by ObserveBlame

	mLate      *telemetry.Counter
	mPredicted *telemetry.Counter
	mRunning   *telemetry.Gauge
}

// New builds a Monitor. reg (may be nil) receives the monitor's own
// metrics: alerts firing/fired, deadline misses, predicted misses.
func New(opts Options, reg *telemetry.Registry) *Monitor {
	if opts.TickEvery <= 0 {
		opts.TickEvery = 900
	}
	if opts.StartDay <= 0 {
		opts.StartDay = 1
	}
	if opts.Regression.Window <= 0 {
		opts.Regression.Window = 7
	}
	if opts.Regression.Ratio <= 0 {
		opts.Regression.Ratio = 1.5
	}
	if opts.Regression.MinSamples <= 0 {
		opts.Regression.MinSamples = 3
	}
	if opts.PredictedSeverity == 0 && opts.MissSeverity == 0 {
		opts.PredictedSeverity = SevWarning
		opts.MissSeverity = SevCritical
	}
	if opts.MissingRunSeverity == 0 {
		opts.MissingRunSeverity = SevCritical
	}
	reg.Describe("monitor_deadline_misses_total", "Runs that completed (or are executing) past their deadline.")
	reg.Describe("monitor_predicted_misses_total", "Deadline misses predicted before they occurred.")
	reg.Describe("monitor_runs_tracked", "Runs currently tracked as executing.")
	m := &Monitor{
		opts:       opts,
		reg:        reg,
		runs:       make(map[string]*RunSLO),
		walltimes:  make(map[string][]float64),
		rates:      make(map[string]*rateState),
		book:       newAlertBook(reg),
		mLate:      reg.Counter("monitor_deadline_misses_total", nil),
		mPredicted: reg.Counter("monitor_predicted_misses_total", nil),
		mRunning:   reg.Gauge("monitor_runs_tracked", nil),
	}
	for _, r := range opts.History {
		if r.Status == logs.StatusCompleted && r.Walltime > 0 {
			m.records = append(m.records, r)
			m.walltimes[r.Forecast] = append(m.walltimes[r.Forecast], r.Walltime)
		}
	}
	m.estDirty = len(m.records) > 0
	return m
}

// Attach wires the monitor to a campaign: it subscribes to run-log
// writes, reads specs and node speeds from the campaign, and schedules
// the periodic rule-evaluation tick on the campaign's engine. Call
// before the campaign runs.
func (m *Monitor) Attach(c *factory.Campaign) {
	m.mu.Lock()
	m.opts.StartDay = c.StartDay()
	m.opts.SpecOf = c.Spec
	m.opts.Expected = c.Forecasts()
	m.opts.LastDay = c.StartDay() + c.Days() - 1
	m.opts.Nodes = nil
	for _, n := range c.Cluster().Nodes() {
		m.opts.Nodes = append(m.opts.Nodes, core.NodeInfo{Name: n.Name(), CPUs: n.CPUs(), Speed: n.Speed()})
	}
	m.estDirty = true
	m.mu.Unlock()

	c.AddRunLogHook(m.ObserveRecord)

	eng := c.Engine()
	sched := eng.Scope("monitor")
	horizon := c.Horizon()
	interval := m.opts.TickEvery
	var tick func()
	tick = func() {
		snap := c.Snapshot()
		var nodes []NodeStatus
		for _, n := range c.Cluster().Nodes() {
			nodes = append(nodes, NodeStatus{Name: n.Name(), CPUs: n.CPUs(), Utilization: n.Utilization()})
		}
		m.ObserveSnapshot(snap, nodes)
		if eng.Now()+interval <= horizon {
			sched.After(interval, tick)
		}
	}
	sched.After(interval, tick)
}

// runKey builds the tracker key for a record.
func runKey(forecastName string, day int) string {
	return fmt.Sprintf("%s/%d", forecastName, day)
}

// dayStart converts a day of year to campaign seconds.
func (m *Monitor) dayStart(day int) float64 {
	return float64(day-m.opts.StartDay) * factory.SecondsPerDay
}

// deadlineFor resolves a forecast's absolute deadline for a day.
func (m *Monitor) deadlineFor(forecastName string, day int) float64 {
	rel, ok := m.opts.Deadlines[forecastName]
	if !ok {
		if m.opts.SpecOf != nil {
			if s := m.opts.SpecOf(forecastName); s != nil && s.Deadline > 0 {
				rel = s.Deadline
			}
		}
		if rel <= 0 {
			rel = factory.SecondsPerDay // end of day
		}
	}
	return m.dayStart(day) + rel
}

// estimator returns the (lazily rebuilt) run-time estimator.
func (m *Monitor) estimator() *core.Estimator {
	if m.estDirty || m.est == nil {
		m.est = core.NewEstimator(m.records, m.opts.Nodes)
		m.estDirty = false
	}
	return m.est
}

// launchETA predicts a freshly launched run's completion time: the
// estimator scaled from history when available, the spec work model
// otherwise, zero (unknown) as a last resort.
func (m *Monitor) launchETA(rec *logs.RunRecord) float64 {
	est, err := m.estimator().Estimate(core.Request{
		Forecast:  rec.Forecast,
		Timesteps: rec.Timesteps,
		MeshSides: rec.MeshSides,
		Node:      rec.Node,
		Adjust:    1,
	})
	if err == nil {
		return rec.Start + est.Seconds
	}
	if m.opts.SpecOf != nil {
		if spec := m.opts.SpecOf(rec.Forecast); spec != nil {
			for _, n := range m.opts.Nodes {
				if n.Name == rec.Node && n.Speed > 0 {
					return rec.Start + core.EstimateFromSpec(spec, n).Seconds
				}
			}
		}
	}
	return 0
}

// ObserveRecord feeds one run-log write into the tracker — the factory
// calls this (via AddRunLogHook) at the virtual instant each record is
// written, mirroring §4.3.2's in-script database updates.
func (m *Monitor) ObserveRecord(rec *logs.RunRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()

	key := runKey(rec.Forecast, rec.Day)
	switch rec.Status {
	case logs.StatusRunning:
		if rec.Start > m.now {
			m.now = rec.Start
		}
		r, ok := m.runs[key]
		if !ok {
			r = &RunSLO{Forecast: rec.Forecast, Day: rec.Day}
			m.runs[key] = r
			m.order = append(m.order, key)
		}
		r.Node = rec.Node
		r.State = RunRunning
		r.Start = rec.Start
		r.Deadline = m.deadlineFor(rec.Forecast, rec.Day)
		r.ETA = m.launchETA(rec)
		r.LaunchETA = r.ETA
		if r.ETA > 0 {
			r.Budget = r.Deadline - r.ETA
		} else {
			r.Budget = r.Deadline - m.now
		}
		m.mRunning.Add(1)
		m.checkDeadline(r)

	case logs.StatusCompleted:
		if rec.End > m.now {
			m.now = rec.End
		}
		r, ok := m.runs[key]
		if !ok {
			// Standalone feeds may deliver completions without a prior
			// launch record; synthesize the entry.
			r = &RunSLO{Forecast: rec.Forecast, Day: rec.Day, Start: rec.Start,
				Deadline: m.deadlineFor(rec.Forecast, rec.Day)}
			m.runs[key] = r
			m.order = append(m.order, key)
		} else {
			m.mRunning.Add(-1)
		}
		r.Node = rec.Node
		r.End = rec.End
		r.ETA = rec.End
		r.Walltime = rec.Walltime
		r.Progress = 1
		r.Budget = r.Deadline - rec.End
		if rec.End > r.Deadline {
			r.State = RunLate
			m.fireMiss(r, false)
		} else {
			r.State = RunOnTime
			r.PredictedMiss = false
			// An on-time landing retires any predicted-miss alert.
			m.book.resolve(m.now, "deadline:"+key)
		}
		m.checkRegression(rec)
		m.checkDrift(r)
		m.records = append(m.records, rec)
		m.walltimes[rec.Forecast] = append(m.walltimes[rec.Forecast], rec.Walltime)
		m.estDirty = true

	case logs.StatusDropped:
		r, ok := m.runs[key]
		if !ok {
			r = &RunSLO{Forecast: rec.Forecast, Day: rec.Day, Start: rec.Start,
				Deadline: m.deadlineFor(rec.Forecast, rec.Day)}
			m.runs[key] = r
			m.order = append(m.order, key)
		} else if r.State == RunRunning {
			m.mRunning.Add(-1)
		}
		r.Node = rec.Node
		r.State = RunDropped
		m.book.fire(m.now, Alert{
			Rule: "run_dropped", Key: "dropped:" + key, Severity: SevWarning,
			Forecast: rec.Forecast, Day: rec.Day, Node: rec.Node,
			Message: fmt.Sprintf("%s day %d dropped (capacity short)", rec.Forecast, rec.Day),
		})
	}
}

// ObserveSnapshot ingests a factory snapshot (taken on the engine's
// goroutine): it advances the clock, refreshes progress-based ETAs for
// executing runs, caches node utilization, and evaluates all rules.
func (m *Monitor) ObserveSnapshot(snap factory.Snapshot, nodes []NodeStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if snap.Now > m.now {
		m.now = snap.Now
	}
	if nodes != nil {
		m.nodes = nodes
	}
	for _, a := range snap.Active {
		r := m.runs[runKey(a.Forecast, a.Day)]
		if r == nil || r.State != RunRunning {
			continue
		}
		r.Progress = a.SimProgress
		// Linear extrapolation from simulation progress, as the ForeMan
		// monitor view draws it; keep the launch-time estimate until
		// there is enough progress signal to beat it.
		if a.SimProgress > 0.02 {
			eta := a.Started + (snap.Now-a.Started)/a.SimProgress
			if eta < snap.Now {
				eta = snap.Now
			}
			r.ETA = eta
			r.Budget = r.Deadline - eta
		}
	}
	m.evaluateLocked()
}

// Tick advances the monitor clock and evaluates all rules — the
// standalone equivalent of a campaign tick for tests and replays.
func (m *Monitor) Tick(now float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now > m.now {
		m.now = now
	}
	m.evaluateLocked()
}

// evaluateLocked runs deadline and threshold rules at the current clock.
func (m *Monitor) evaluateLocked() {
	for _, key := range m.order {
		if r := m.runs[key]; r.State == RunRunning {
			m.checkDeadline(r)
		}
	}
	if len(m.opts.Thresholds)+len(m.opts.Staleness)+len(m.opts.Rates) > 0 {
		fams := m.reg.Snapshot()
		for _, rule := range m.opts.Thresholds {
			key := "threshold:" + rule.Name
			v, ok := rule.value(fams)
			if ok && v > rule.Above {
				m.book.fire(m.now, Alert{
					Rule: rule.Name, Key: key, Severity: rule.Severity,
					Value: v, Threshold: rule.Above,
					Message: fmt.Sprintf("%s: %s = %g above %g", rule.Name, rule.Metric, v, rule.Above),
				})
			} else {
				m.book.resolve(m.now, key)
			}
		}
		m.checkStaleness(fams)
		m.checkRates(fams)
	}
	m.checkMissingRuns()
}

// checkStaleness fires staleness rules whose timestamp gauge has gone
// quiet for longer than MaxAge.
func (m *Monitor) checkStaleness(fams []telemetry.FamilySnapshot) {
	for _, rule := range m.opts.Staleness {
		key := "stale:" + rule.Name
		v, ok := metricValue(fams, rule.Metric, rule.Labels)
		if age := m.now - v; ok && age > rule.MaxAge {
			m.book.fire(m.now, Alert{
				Rule: rule.Name, Key: key, Severity: rule.Severity,
				Value: age, Threshold: rule.MaxAge,
				Message: fmt.Sprintf("%s: %s last updated %s ago (limit %s)",
					rule.Name, rule.Metric, hhmm(age), hhmm(rule.MaxAge)),
			})
		} else {
			m.book.resolve(m.now, key)
		}
	}
}

// checkRates differentiates rate-rule counters between ticks and fires
// while the growth rate exceeds the per-hour bound.
func (m *Monitor) checkRates(fams []telemetry.FamilySnapshot) {
	for _, rule := range m.opts.Rates {
		key := "rate:" + rule.Name
		v, ok := metricValue(fams, rule.Metric, rule.Labels)
		if !ok {
			continue
		}
		st := m.rates[key]
		if st == nil {
			st = &rateState{}
			m.rates[key] = st
		}
		if st.seen && m.now > st.at {
			perHour := (v - st.value) / (m.now - st.at) * 3600
			if perHour > rule.PerHourAbove {
				m.book.fire(m.now, Alert{
					Rule: rule.Name, Key: key, Severity: rule.Severity,
					Value: perHour, Threshold: rule.PerHourAbove,
					Message: fmt.Sprintf("%s: %s growing %.1f/h, above %.1f/h",
						rule.Name, rule.Metric, perHour, rule.PerHourAbove),
				})
			} else {
				m.book.resolve(m.now, key)
			}
		}
		st.value, st.at, st.seen = v, m.now, true
	}
}

// checkMissingRuns flags expected forecast runs that never produced any
// record — not even a launch or a drop — once their day's deadline (plus
// grace) has passed. A record appearing later (a delayed harvest, a
// backfill) resolves the alert.
func (m *Monitor) checkMissingRuns() {
	if len(m.opts.Expected) == 0 || m.opts.LastDay < m.opts.StartDay {
		return
	}
	curDay := m.opts.StartDay + int(m.now/factory.SecondsPerDay)
	lastDay := m.opts.LastDay
	if curDay < lastDay {
		lastDay = curDay
	}
	for day := m.opts.StartDay; day <= lastDay; day++ {
		for _, f := range m.opts.Expected {
			key := runKey(f, day)
			if _, ok := m.runs[key]; ok {
				m.book.resolve(m.now, "missing_run:"+key)
				continue
			}
			if m.now > m.deadlineFor(f, day)+m.opts.MissingRunGrace {
				m.book.fire(m.now, Alert{
					Rule: "missing_run", Key: "missing_run:" + key,
					Severity: m.opts.MissingRunSeverity, Forecast: f, Day: day,
					Message: fmt.Sprintf("%s day %d: no run record past its deadline — expected production missing", f, day),
				})
			}
		}
	}
}

// checkDeadline evaluates the deadline SLO for a running run: an actual
// miss once the clock passes the deadline, a predicted miss as soon as
// the ETA does.
func (m *Monitor) checkDeadline(r *RunSLO) {
	key := runKey(r.Forecast, r.Day)
	switch {
	case m.now > r.Deadline:
		// The run is executing past its deadline — the miss is real even
		// though the run hasn't finished.
		m.fireMiss(r, false)
	case r.ETA > r.Deadline:
		if !r.PredictedMiss {
			r.PredictedMiss = true
			m.mPredicted.Inc()
		}
		m.book.fire(m.now, Alert{
			Rule: "deadline", Key: "deadline:" + key, Severity: m.opts.PredictedSeverity,
			Forecast: r.Forecast, Day: r.Day, Node: r.Node,
			Value: r.ETA, Threshold: r.Deadline, Predicted: true,
			Message: fmt.Sprintf("%s day %d predicted to finish %s after its deadline",
				r.Forecast, r.Day, hhmm(r.ETA-r.Deadline)),
		})
	case r.PredictedMiss:
		// The ETA recovered (faster progress than estimated): resolve.
		r.PredictedMiss = false
		m.book.resolve(m.now, "deadline:"+key)
	}
}

// fireMiss raises (or escalates) the actual deadline-miss alert.
func (m *Monitor) fireMiss(r *RunSLO, predicted bool) {
	key := runKey(r.Forecast, r.Day)
	over := m.now - r.Deadline
	if r.End > 0 {
		over = r.End - r.Deadline
	}
	prior := m.book.firing["deadline:"+key]
	escalating := prior == nil || prior.Predicted
	m.book.fire(m.now, Alert{
		Rule: "deadline", Key: "deadline:" + key, Severity: m.opts.MissSeverity,
		Forecast: r.Forecast, Day: r.Day, Node: r.Node,
		Value: m.now, Threshold: r.Deadline, Predicted: predicted,
		Message: fmt.Sprintf("%s day %d missed its deadline by %s", r.Forecast, r.Day, hhmm(over)),
	})
	if escalating {
		m.mLate.Inc()
	}
}

// checkRegression compares a completed run against the trailing median
// of its forecast's previous runs.
func (m *Monitor) checkRegression(rec *logs.RunRecord) {
	rule := m.opts.Regression
	if rule.Disabled {
		return
	}
	median, ok := rule.baseline(m.walltimes[rec.Forecast])
	if !ok {
		return
	}
	key := "regression:" + rec.Forecast
	bound := rule.Ratio * median
	if rec.Walltime > bound {
		m.book.fire(m.now, Alert{
			Rule: "runtime_regression", Key: key, Severity: rule.Severity,
			Forecast: rec.Forecast, Day: rec.Day, Node: rec.Node,
			Value: rec.Walltime, Threshold: bound,
			Message: fmt.Sprintf("%s day %d ran %.0fs, %.1f× the trailing %d-run median %.0fs",
				rec.Forecast, rec.Day, rec.Walltime, rec.Walltime/median, rule.Window, median),
		})
	} else {
		m.book.resolve(m.now, key)
	}
}

// Finalize marks the campaign over at the given virtual time. Runs still
// tracked as executing are counted as late if past deadline; firing
// alerts remain firing (the operator resolves them by reading the report).
func (m *Monitor) Finalize(now float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now > m.now {
		m.now = now
	}
	m.done = true
	m.evaluateLocked()
}

// Now returns the monitor's clock (the latest virtual time observed).
func (m *Monitor) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Alerts returns the full alert history, oldest first.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.book.snapshotAll()
}

// FiringAlerts returns the currently firing alerts, oldest first.
func (m *Monitor) FiringAlerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.book.snapshotFiring()
}

// Summary aggregates the tracker's counts for the status API.
type Summary struct {
	Running       int `json:"running"`
	OnTime        int `json:"on_time"`
	Late          int `json:"late"`
	Dropped       int `json:"dropped"`
	PredictedLate int `json:"predicted_late"`
	AlertsFiring  int `json:"alerts_firing"`
	// Attainment is on-time completions over all completions (1 when
	// nothing has completed yet).
	Attainment float64 `json:"attainment"`
}

// Status is the control room's full picture at one instant.
type Status struct {
	Now     float64      `json:"now"`
	Day     int          `json:"day"`
	Done    bool         `json:"done"`
	Summary Summary      `json:"summary"`
	Runs    []RunSLO     `json:"runs"`
	Nodes   []NodeStatus `json:"nodes"`
	Firing  []Alert      `json:"firing"`
}

// Status snapshots the monitor.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Now:  m.now,
		Day:  m.opts.StartDay + int(m.now/factory.SecondsPerDay),
		Done: m.done,
	}
	st.Runs = make([]RunSLO, 0, len(m.order))
	for _, key := range m.order {
		r := *m.runs[key]
		st.Runs = append(st.Runs, r)
		switch r.State {
		case RunRunning:
			st.Summary.Running++
			if r.PredictedMiss {
				st.Summary.PredictedLate++
			}
		case RunOnTime:
			st.Summary.OnTime++
		case RunLate:
			st.Summary.Late++
		case RunDropped:
			st.Summary.Dropped++
		}
	}
	sort.Slice(st.Runs, func(i, j int) bool {
		if st.Runs[i].Day != st.Runs[j].Day {
			return st.Runs[i].Day > st.Runs[j].Day
		}
		return st.Runs[i].Forecast < st.Runs[j].Forecast
	})
	if done := st.Summary.OnTime + st.Summary.Late; done > 0 {
		st.Summary.Attainment = float64(st.Summary.OnTime) / float64(done)
	} else {
		st.Summary.Attainment = 1
	}
	st.Nodes = append([]NodeStatus(nil), m.nodes...)
	st.Firing = m.book.snapshotFiring()
	st.Summary.AlertsFiring = len(st.Firing)
	return st
}

// ForecastSLO is one forecast's aggregate standing in the SLO report.
type ForecastSLO struct {
	Forecast      string  `json:"forecast"`
	Runs          int     `json:"runs"`
	OnTime        int     `json:"on_time"`
	Late          int     `json:"late"`
	Dropped       int     `json:"dropped"`
	Attainment    float64 `json:"attainment"`
	WorstLateness float64 `json:"worst_lateness"` // seconds past deadline
	MeanBudget    float64 `json:"mean_budget"`    // mean (deadline − end)
}

// SLOReport aggregates deadline attainment per forecast and overall.
type SLOReport struct {
	Forecasts []ForecastSLO `json:"forecasts"`
	Total     ForecastSLO   `json:"total"`
}

// Report computes the SLO report over everything observed so far.
func (m *Monitor) Report() SLOReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg := make(map[string]*ForecastSLO)
	var names []string
	budgets := make(map[string]float64)
	get := func(name string) *ForecastSLO {
		f, ok := agg[name]
		if !ok {
			f = &ForecastSLO{Forecast: name}
			agg[name] = f
			names = append(names, name)
		}
		return f
	}
	for _, key := range m.order {
		r := m.runs[key]
		f := get(r.Forecast)
		switch r.State {
		case RunOnTime, RunLate:
			f.Runs++
			budgets[r.Forecast] += r.Deadline - r.End
			if r.State == RunLate {
				f.Late++
				if over := r.End - r.Deadline; over > f.WorstLateness {
					f.WorstLateness = over
				}
			} else {
				f.OnTime++
			}
		case RunDropped:
			f.Runs++
			f.Dropped++
		}
	}
	sort.Strings(names)
	rep := SLOReport{Total: ForecastSLO{Forecast: "TOTAL"}}
	var totalBudget float64
	for _, n := range names {
		f := agg[n]
		if done := f.OnTime + f.Late; done > 0 {
			f.Attainment = float64(f.OnTime) / float64(done)
			f.MeanBudget = budgets[n] / float64(done)
		} else {
			f.Attainment = 1
		}
		rep.Forecasts = append(rep.Forecasts, *f)
		rep.Total.Runs += f.Runs
		rep.Total.OnTime += f.OnTime
		rep.Total.Late += f.Late
		rep.Total.Dropped += f.Dropped
		totalBudget += budgets[n]
		if f.WorstLateness > rep.Total.WorstLateness {
			rep.Total.WorstLateness = f.WorstLateness
		}
	}
	if done := rep.Total.OnTime + rep.Total.Late; done > 0 {
		rep.Total.Attainment = float64(rep.Total.OnTime) / float64(done)
		rep.Total.MeanBudget = totalBudget / float64(done)
	} else {
		rep.Total.Attainment = 1
	}
	return rep
}

// String renders the report as the foreman CLI's SLO table.
func (r SLOReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %5s %7s %5s %7s %10s %12s %12s\n",
		"forecast", "runs", "on-time", "late", "dropped", "attainment", "worst-late", "mean-budget")
	row := func(f ForecastSLO) {
		fmt.Fprintf(&b, "%-26s %5d %7d %5d %7d %9.1f%% %12s %12s\n",
			f.Forecast, f.Runs, f.OnTime, f.Late, f.Dropped,
			100*f.Attainment, hhmm(f.WorstLateness), hhmm(f.MeanBudget))
	}
	for _, f := range r.Forecasts {
		row(f)
	}
	row(r.Total)
	return b.String()
}

// hhmm renders a duration in seconds as ±h:mm.
func hhmm(sec float64) string {
	sign := ""
	if sec < 0 {
		sign = "-"
		sec = -sec
	}
	h := int(sec) / 3600
	m := (int(sec) % 3600) / 60
	return fmt.Sprintf("%s%d:%02d", sign, h, m)
}
