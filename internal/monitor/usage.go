package monitor

import (
	"fmt"
	"math"

	"repro/internal/telemetry"
	"repro/internal/usage"
)

// DriftRule fires when a completed run lands further from its
// launch-time prediction than tolerated: |actual end − launch ETA| over
// the predicted duration exceeds RelAbove — the plan-quality alert that
// closes the loop between ForeMan's schedule and the observed factory.
// Both early and late drift fire (a plan wrong in either direction is a
// plan not to trust). The zero value disables the rule.
type DriftRule struct {
	// RelAbove is the relative-error bound (e.g. 0.25 = 25% of the
	// predicted duration). Zero or negative disables the rule.
	RelAbove float64
	// MinSecs suppresses drift smaller than this many sim seconds, so
	// short runs with tiny absolute deltas don't page (default 0).
	MinSecs  float64
	Severity Severity
}

// checkDrift compares a just-completed run's landing against its
// launch-time prediction. Callers hold the monitor's lock.
func (m *Monitor) checkDrift(r *RunSLO) {
	rule := m.opts.Drift
	if rule.RelAbove <= 0 || r.LaunchETA <= 0 || r.End <= 0 {
		return
	}
	key := "drift:" + runKey(r.Forecast, r.Day)
	delta := r.End - r.LaunchETA
	rel := math.Abs(delta) / math.Max(r.LaunchETA-r.Start, 1)
	if rel > rule.RelAbove && math.Abs(delta) >= rule.MinSecs {
		direction := "late"
		if delta < 0 {
			direction = "early"
		}
		m.book.fire(m.now, Alert{
			Rule: "plan_drift", Key: key, Severity: rule.Severity,
			Forecast: r.Forecast, Day: r.Day, Node: r.Node,
			Value: rel, Threshold: rule.RelAbove,
			Message: fmt.Sprintf("%s day %d landed %s %s of plan (%.0f%% of predicted duration)",
				r.Forecast, r.Day, hhmm(math.Abs(delta)), direction, 100*rel),
		})
	} else {
		m.book.resolve(m.now, key)
	}
}

// UsageRules builds the utilization alert set over the usage sampler's
// gauges: per-node sustained saturation (an open contention window older
// than sustain seconds) and cluster imbalance (idle nodes while another
// node is saturated, sustained). Append the result to Options.Thresholds
// when a Sampler feeds the same registry the monitor evaluates.
func UsageRules(nodes []string, sustain float64, sev Severity) []ThresholdRule {
	if sustain <= 0 {
		sustain = 1800
	}
	var rules []ThresholdRule
	for _, n := range nodes {
		rules = append(rules, ThresholdRule{
			Name:     "saturation:" + n,
			Metric:   usage.MetricContentionAge,
			Labels:   telemetry.Labels{"node": n},
			Above:    sustain,
			Severity: sev,
		})
	}
	rules = append(rules, ThresholdRule{
		Name:     "imbalance",
		Metric:   usage.MetricImbalanceAge,
		Above:    sustain,
		Severity: sev,
	})
	return rules
}
