package monitor

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/harvest"
	"repro/internal/logs"
	"repro/internal/statsdb"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

func TestStalenessRuleFiresAndResolves(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := New(Options{
		Staleness: []StalenessRule{{
			Name: "harvest_stale", Metric: "harvest_last_pass_timestamp",
			MaxAge: 7200, Severity: SevWarning,
		}},
	}, reg)

	// No metric yet: the rule stays silent (nothing has ever harvested).
	m.Tick(10000)
	if a := findAlert(m.Alerts(), "harvest_stale"); a != nil {
		t.Fatalf("rule fired before the metric existed: %+v", a)
	}

	hb := reg.Gauge("harvest_last_pass_timestamp", nil)
	hb.Set(10000)
	m.Tick(12000) // age 2000 < 7200
	if a := findAlert(m.Alerts(), "harvest_stale"); a != nil {
		t.Fatalf("rule fired within MaxAge: %+v", a)
	}

	m.Tick(20000) // age 10000 > 7200
	a := findAlert(m.FiringAlerts(), "harvest_stale")
	if a == nil {
		t.Fatal("staleness alert did not fire")
	}
	if a.Severity != SevWarning || !strings.Contains(a.Message, "harvest_last_pass_timestamp") {
		t.Fatalf("alert = %+v", a)
	}

	// The heartbeat returning resolves the alert.
	hb.Set(20500)
	m.Tick(21000)
	if len(m.FiringAlerts()) != 0 {
		t.Fatalf("alert did not resolve: %+v", m.FiringAlerts())
	}
}

func TestRateRuleFiresOnCounterSpike(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := New(Options{
		Rates: []RateRule{{
			Name: "quarantine_spike", Metric: "harvest_quarantined_total",
			PerHourAbove: 2, Severity: SevCritical,
		}},
	}, reg)
	ctr := reg.Counter("harvest_quarantined_total", nil)

	// First observation only seeds the rate state.
	ctr.Add(1)
	m.Tick(3600)
	if a := findAlert(m.Alerts(), "quarantine_spike"); a != nil {
		t.Fatalf("rule fired on first sample: %+v", a)
	}

	// +1 over the next hour: 1/h, under the bound.
	ctr.Add(1)
	m.Tick(7200)
	if a := findAlert(m.Alerts(), "quarantine_spike"); a != nil {
		t.Fatalf("rule fired at 1/h: %+v", a)
	}

	// +10 in the next hour: spike.
	ctr.Add(10)
	m.Tick(10800)
	a := findAlert(m.FiringAlerts(), "quarantine_spike")
	if a == nil {
		t.Fatal("rate alert did not fire on spike")
	}
	if a.Value != 10 || a.Severity != SevCritical {
		t.Fatalf("alert = %+v", a)
	}

	// Quiet hour: resolves.
	m.Tick(14400)
	if len(m.FiringAlerts()) != 0 {
		t.Fatalf("rate alert did not resolve: %+v", m.FiringAlerts())
	}
}

func TestMissingRunRule(t *testing.T) {
	m := testMonitor(Options{
		Expected:        []string{"f", "g"},
		LastDay:         3,
		Deadlines:       map[string]float64{"f": 7200, "g": 7200},
		MissingRunGrace: 1800,
	})

	// Day 1, both produce records (g's run is dropped — still a record).
	m.ObserveRecord(completedRec("f", 1, 3600, 1800))
	g := runningRec("g", 1, 3600)
	g.Status = logs.StatusDropped
	m.ObserveRecord(g)
	m.Tick(10000) // past deadline+grace for day 1
	if a := findAlert(m.Alerts(), "missing_run"); a != nil {
		t.Fatalf("missing_run fired although records exist: %+v", a)
	}

	// Day 2: f produces, g goes silent. At deadline+grace the alert fires
	// for g day 2 only.
	m.ObserveRecord(completedRec("f", 2, 86400+3600, 1800))
	m.Tick(86400 + 7200 + 1801)
	firing := m.FiringAlerts()
	a := findAlert(firing, "missing_run")
	if a == nil {
		t.Fatal("missing_run did not fire for the silent forecast")
	}
	if a.Forecast != "g" || a.Day != 2 || a.Severity != SevCritical {
		t.Fatalf("alert = %+v", a)
	}
	missing := 0
	for _, al := range firing {
		if al.Rule == "missing_run" {
			missing++
		}
	}
	if missing != 1 {
		t.Fatalf("firing = %+v", firing)
	}

	// The record arriving late (a backfilled harvest) resolves it.
	m.ObserveRecord(completedRec("g", 2, 86400+3600, 1800))
	m.Tick(86400 + 12000)
	if a := findAlert(m.FiringAlerts(), "missing_run"); a != nil {
		t.Fatalf("missing_run did not resolve on backfill: %+v", a)
	}
	// Days beyond LastDay are never flagged.
	m.Tick(10 * 86400)
	for _, al := range m.FiringAlerts() {
		if al.Rule == "missing_run" && al.Day > 3 {
			t.Fatalf("missing_run fired past LastDay: %+v", al)
		}
	}
}

// TestStaleHarvestAlertReachesDashboard is the end-to-end data-quality
// path: a live harvester heartbeats through telemetry; when it stops, the
// staleness rule fires and the alert is visible through the control
// room's HTTP API, alongside the harvest panel's status JSON.
func TestStaleHarvestAlertReachesDashboard(t *testing.T) {
	clock := 1000.0
	fs := vfs.New(func() float64 { return clock })
	rec := completedRec("forecast-a", 1, 900, 60)
	rec.Node = "fnode01"
	if err := logs.Write(fs, rec); err != nil {
		t.Fatal(err)
	}

	tel := telemetry.New()
	tel.SetClock(func() float64 { return clock })
	h, err := harvest.New(fs, statsdb.NewDB(), harvest.NewVFSJournal(vfs.New(nil), "/j"),
		harvest.Options{Telemetry: tel, Clock: func() float64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	m := New(Options{
		Staleness: []StalenessRule{{
			Name: "harvest_stale", Metric: harvest.MetricLastPassTime,
			MaxAge: 2 * 3600, Severity: SevCritical,
		}},
	}, tel.Registry())
	srv := NewServer(m, tel.Registry())
	srv.AttachHarvest(func() any { return h.Status() })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// While the harvester runs, no staleness alert.
	if _, err := h.Pass(); err != nil {
		t.Fatal(err)
	}
	clock += 3600
	m.Tick(clock)
	if len(m.FiringAlerts()) != 0 {
		t.Fatalf("alert fired while harvester healthy: %+v", m.FiringAlerts())
	}

	// The harvester stops; sim time moves past MaxAge; the alert fires
	// and is served at /api/alerts.
	clock += 3 * 3600
	m.Tick(clock)
	resp, err := ts.Client().Get(ts.URL + "/api/alerts?state=firing")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var alerts []Alert
	if err := json.NewDecoder(resp.Body).Decode(&alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Rule != "harvest_stale" || alerts[0].Severity != SevCritical {
		t.Fatalf("firing via API = %+v", alerts)
	}

	// The harvest panel endpoint serves the harvester's own status.
	hr, err := ts.Client().Get(ts.URL + "/api/harvest")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var hs harvest.Status
	if err := json.NewDecoder(hr.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	if hs.Passes != 1 || hs.Totals.Ingested != 1 || hs.SchemaVersion != 2 {
		t.Fatalf("/api/harvest = %+v", hs)
	}

	// The dashboard HTML carries the harvest panel markup.
	dr, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	html, err := io.ReadAll(dr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), `id="harvest-panel"`) {
		t.Fatal("dashboard lacks harvest panel")
	}
}

func TestHarvestEndpointWithoutHarvester(t *testing.T) {
	tel := telemetry.New()
	srv := NewServer(New(Options{}, tel.Registry()), tel.Registry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/api/harvest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}
