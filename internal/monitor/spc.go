package monitor

import (
	"fmt"
	"strings"
)

// OutOfControlRule fires while an SPC-monitored series (a control chart
// kept by internal/spc) is out of control — a run-rule violation on any
// of the factory's vital signs — and resolves when the series' next
// judged point is clean. The zero value disables the rule.
type OutOfControlRule struct {
	Enabled  bool
	Severity Severity
}

// ChangepointRule fires when the SPC layer's CUSUM detects a level shift
// in a monitored series — the "assignable cause located" signal, e.g. a
// code-version change moving a forecast's run-time mean. The alert
// resolves once the series is back in control under its re-fit baseline.
// The zero value disables the rule.
type ChangepointRule struct {
	Enabled  bool
	Severity Severity
}

// spcKeys builds the dedupe keys for one monitored series.
func spcKeys(kind, subject string) (control, changepoint string) {
	return "spc:" + kind + ":" + subject, "changepoint:" + kind + ":" + subject
}

// spcAttribution maps a series identity onto the alert's forecast/node
// fields: node_share subjects are nodes, factory-wide subjects are
// neither, everything else is a forecast.
func spcAttribution(kind, subject string) (forecastName, node string) {
	switch {
	case kind == "node_share":
		return "", subject
	case subject == "factory":
		return "", ""
	default:
		return subject, ""
	}
}

// ObserveControl reports one judged SPC point: whether the series is out
// of control after it, the observed value against its center line, and
// the violated rule names. While the series is out the out_of_control
// alert fires (observation fields refreshed in place); a clean point
// resolves it along with any changepoint alert on the same series.
// Plain values keep the monitor free of an spc import — callers relay
// the observatory's event stream.
func (m *Monitor) ObserveControl(kind, subject string, day int, out bool, value, center float64, rules []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rule := m.opts.OutOfControl
	if !rule.Enabled {
		return
	}
	key, cpKey := spcKeys(kind, subject)
	if !out {
		m.book.resolve(m.now, key)
		m.book.resolve(m.now, cpKey)
		return
	}
	forecastName, node := spcAttribution(kind, subject)
	m.book.fire(m.now, Alert{
		Rule: "out_of_control", Key: key, Severity: rule.Severity,
		Forecast: forecastName, Day: day, Node: node,
		Value: value, Threshold: center,
		Message: fmt.Sprintf("%s/%s out of control on day %d: %g against center %g (rules %s)",
			kind, subject, day, value, center, strings.Join(rules, ",")),
	})
}

// ObserveChangepoint reports one detected level shift in an SPC series.
// The changepoint alert fires keyed to the series and resolves when
// ObserveControl later sees the series clean under its new baseline.
func (m *Monitor) ObserveChangepoint(kind, subject string, day, detectedDay int, cause string, before, after float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rule := m.opts.Changepoint
	if !rule.Enabled {
		return
	}
	_, cpKey := spcKeys(kind, subject)
	forecastName, node := spcAttribution(kind, subject)
	m.book.fire(m.now, Alert{
		Rule: "changepoint", Key: cpKey, Severity: rule.Severity,
		Forecast: forecastName, Day: day, Node: node,
		Value: after, Threshold: before,
		Message: fmt.Sprintf("%s/%s level shift on day %d (detected day %d, %s): mean %g → %g",
			kind, subject, day, detectedDay, cause, before, after),
	})
}
