package monitor

import (
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// Severity ranks an alert's urgency.
type Severity int

// Severities, least to most urgent.
const (
	SevInfo Severity = iota
	SevWarning
	SevCritical
)

// String names the severity for reports and the alerts table.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a severity name back into its rank.
func (s *Severity) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"info"`:
		*s = SevInfo
	case `"warning"`:
		*s = SevWarning
	case `"critical"`:
		*s = SevCritical
	default:
		return fmt.Errorf("monitor: unknown severity %s", data)
	}
	return nil
}

// Alert states.
const (
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Alert is one occurrence of a rule condition, with a firing→resolved
// lifecycle. Times are virtual campaign seconds; ResolvedAt is zero while
// the alert is firing.
type Alert struct {
	ID       int64    `json:"id"`
	Rule     string   `json:"rule"`
	Key      string   `json:"key"` // dedupe key: one firing alert per key
	Severity Severity `json:"severity"`
	State    string   `json:"state"`
	Forecast string   `json:"forecast,omitempty"`
	Day      int      `json:"day,omitempty"`
	Node     string   `json:"node,omitempty"`
	Message  string   `json:"message"`
	// Value and Threshold record the observation that tripped the rule
	// (e.g. predicted completion vs deadline, walltime vs median bound).
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Predicted marks alerts raised before the condition has actually
	// occurred (an ETA past the deadline, rather than a late completion).
	Predicted  bool    `json:"predicted,omitempty"`
	FiredAt    float64 `json:"fired_at"`
	ResolvedAt float64 `json:"resolved_at,omitempty"`
}

// Firing reports whether the alert is still active.
func (a *Alert) Firing() bool { return a.State == StateFiring }

// alertBook is the alert engine's ledger: full history plus the currently
// firing alert per dedupe key. Callers hold the monitor's lock.
type alertBook struct {
	nextID  int64
	history []*Alert
	firing  map[string]*Alert

	mFiring *telemetry.Gauge
	reg     *telemetry.Registry
}

func newAlertBook(reg *telemetry.Registry) *alertBook {
	reg.Describe("monitor_alerts_firing", "Alerts currently firing.")
	reg.Describe("monitor_alerts_fired_total", "Alerts fired, by rule and severity.")
	return &alertBook{
		firing:  make(map[string]*Alert),
		reg:     reg,
		mFiring: reg.Gauge("monitor_alerts_firing", nil),
	}
}

// fire raises (or refreshes) the alert for a.Key. If an alert with the
// same key is already firing, its observation fields are updated in place
// and no new history entry is created.
func (b *alertBook) fire(now float64, a Alert) *Alert {
	if cur, ok := b.firing[a.Key]; ok {
		cur.Value = a.Value
		cur.Threshold = a.Threshold
		cur.Message = a.Message
		// Escalation (a predicted miss becoming an actual one) replaces
		// severity and sheds the predicted flag.
		if a.Severity > cur.Severity {
			cur.Severity = a.Severity
		}
		if !a.Predicted {
			cur.Predicted = false
		}
		return cur
	}
	b.nextID++
	a.ID = b.nextID
	a.State = StateFiring
	a.FiredAt = now
	n := new(Alert)
	*n = a
	b.history = append(b.history, n)
	b.firing[a.Key] = n
	b.mFiring.Add(1)
	b.reg.Counter("monitor_alerts_fired_total",
		telemetry.Labels{"rule": a.Rule, "severity": a.Severity.String()}).Inc()
	return n
}

// resolve closes the firing alert for key, if any.
func (b *alertBook) resolve(now float64, key string) *Alert {
	a, ok := b.firing[key]
	if !ok {
		return nil
	}
	delete(b.firing, key)
	a.State = StateResolved
	a.ResolvedAt = now
	b.mFiring.Add(-1)
	return a
}

// snapshotFiring returns copies of the firing alerts, oldest first.
func (b *alertBook) snapshotFiring() []Alert {
	out := make([]Alert, 0, len(b.firing))
	for _, a := range b.firing {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// snapshotAll returns copies of the whole alert history in firing order.
func (b *alertBook) snapshotAll() []Alert {
	out := make([]Alert, len(b.history))
	for i, a := range b.history {
		out[i] = *a
	}
	return out
}

// ThresholdRule fires while a metric series exceeds a bound — the simple
// "node is saturated / too much WIP" class of alert. The metric value is
// read from the registry snapshot on every monitor tick; counters and
// gauges compare their value, histograms their observation count.
type ThresholdRule struct {
	Name     string           // rule name; also the dedupe key suffix
	Metric   string           // metric family name in the registry
	Labels   telemetry.Labels // series selector (nil = the unlabelled series)
	Above    float64          // fire while value > Above
	Severity Severity
}

// value extracts the rule's series value from a registry snapshot.
func (r ThresholdRule) value(fams []telemetry.FamilySnapshot) (float64, bool) {
	return metricValue(fams, r.Metric, r.Labels)
}

// metricValue finds a series in a registry snapshot: counters and gauges
// yield their value, histograms their observation count.
func metricValue(fams []telemetry.FamilySnapshot, metric string, labels telemetry.Labels) (float64, bool) {
	for _, f := range fams {
		if f.Name != metric {
			continue
		}
		for _, s := range f.Series {
			if !labelsEqual(s.Labels, labels) {
				continue
			}
			if f.Kind == telemetry.KindHistogram {
				return float64(s.Count), true
			}
			return s.Value, true
		}
	}
	return 0, false
}

// StalenessRule fires when a timestamp gauge falls too far behind the
// monitor clock — the data-quality alert for "the harvester stopped": the
// harvester publishes the sim time of its last pass, and this rule pages
// when that heartbeat goes quiet. The rule stays silent until the metric
// exists, so a campaign that never harvests never alerts.
type StalenessRule struct {
	Name     string           // rule name; also the dedupe key suffix
	Metric   string           // gauge holding a sim-time timestamp
	Labels   telemetry.Labels // series selector (nil = the unlabelled series)
	MaxAge   float64          // fire while now − value > MaxAge (sim seconds)
	Severity Severity
}

// RateRule fires when a counter grows faster than a bound — the
// data-quality alert for quarantine-rate spikes: a corrupt log or two is
// routine, a burst means a code deployment is writing garbage. The
// monitor differentiates the counter between consecutive ticks; the rule
// resolves once the rate falls back under the bound.
type RateRule struct {
	Name         string           // rule name; also the dedupe key suffix
	Metric       string           // counter to differentiate
	Labels       telemetry.Labels // series selector (nil = the unlabelled series)
	PerHourAbove float64          // fire while d(value)/dt > PerHourAbove per sim hour
	Severity     Severity
}

// rateState holds one RateRule's previous observation between ticks.
type rateState struct {
	value float64
	at    float64
	seen  bool
}

func labelsEqual(a, b telemetry.Labels) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// RegressionRule fires when a completed run's walltime exceeds Ratio
// times the trailing median of that forecast's previous Window completed
// runs — the rolling-window anomaly detector for the step changes of
// Figures 8 and 9 (a doubled timestep count, a slower code version)
// and for creeping contention. It resolves when a later run of the same
// forecast comes back under the bound.
type RegressionRule struct {
	Window     int     // trailing runs forming the baseline (default 7)
	Ratio      float64 // fire when walltime > Ratio × median (default 1.5)
	MinSamples int     // baseline runs required before judging (default 3)
	Severity   Severity
	Disabled   bool
}

// baseline computes the trailing median of walltimes (already oldest
// first). It returns false with fewer than MinSamples samples.
func (r RegressionRule) baseline(walltimes []float64) (float64, bool) {
	n := len(walltimes)
	if n > r.Window {
		walltimes = walltimes[n-r.Window:]
		n = r.Window
	}
	if n < r.MinSamples || n == 0 {
		return 0, false
	}
	sorted := append([]float64(nil), walltimes...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2], true
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2, true
}
