package monitor

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/spc"
	"repro/internal/statsdb"
)

func TestOutOfControlRuleLifecycle(t *testing.T) {
	m := testMonitor(Options{
		OutOfControl: OutOfControlRule{Enabled: true, Severity: SevWarning},
		Changepoint:  ChangepointRule{Enabled: true, Severity: SevWarning},
	})

	m.ObserveControl("run_time", "fc", 3, false, 100, 100, nil)
	if len(m.FiringAlerts()) != 0 {
		t.Fatal("clean point fired an alert")
	}
	m.ObserveControl("run_time", "fc", 4, true, 160, 100, []string{"we1"})
	firing := m.FiringAlerts()
	if len(firing) != 1 {
		t.Fatalf("out-of-control point fired %d alerts, want 1", len(firing))
	}
	a := firing[0]
	if a.Rule != "out_of_control" || a.Severity != SevWarning || a.Forecast != "fc" || a.Day != 4 {
		t.Errorf("alert = %+v", a)
	}
	if !strings.Contains(a.Message, "we1") {
		t.Errorf("message missing rule names: %s", a.Message)
	}
	// Still out: refreshed in place, not duplicated.
	m.ObserveControl("run_time", "fc", 5, true, 150, 100, []string{"we1"})
	if len(m.FiringAlerts()) != 1 {
		t.Fatal("sustained violation duplicated the alert")
	}
	// Clean point: resolves through the standard lifecycle.
	m.ObserveControl("run_time", "fc", 6, false, 101, 100, nil)
	if len(m.FiringAlerts()) != 0 {
		t.Fatal("alert did not resolve on a clean point")
	}
	all := m.Alerts()
	if len(all) != 1 || all[0].State != StateResolved {
		t.Fatalf("history = %+v", all)
	}
}

func TestChangepointAlertResolvesWhenBackInControl(t *testing.T) {
	m := testMonitor(Options{
		OutOfControl: OutOfControlRule{Enabled: true, Severity: SevWarning},
		Changepoint:  ChangepointRule{Enabled: true, Severity: SevCritical},
	})
	m.ObserveChangepoint("run_time", "fc", 20, 23, "detected", 100, 140)
	firing := m.FiringAlerts()
	if len(firing) != 1 {
		t.Fatalf("changepoint fired %d alerts, want 1", len(firing))
	}
	a := firing[0]
	if a.Rule != "changepoint" || a.Severity != SevCritical || a.Day != 20 {
		t.Errorf("alert = %+v", a)
	}
	// A clean point under the re-fit baseline resolves the changepoint.
	m.ObserveControl("run_time", "fc", 24, false, 141, 140, nil)
	if len(m.FiringAlerts()) != 0 {
		t.Fatal("changepoint alert did not resolve once back in control")
	}
}

func TestSPCNodeShareAttribution(t *testing.T) {
	m := testMonitor(Options{OutOfControl: OutOfControlRule{Enabled: true, Severity: SevWarning}})
	m.ObserveControl("node_share", "node-3", 7, true, 0.2, 0.8, []string{"we1"})
	firing := m.FiringAlerts()
	if len(firing) != 1 || firing[0].Node != "node-3" || firing[0].Forecast != "" {
		t.Fatalf("node series attribution wrong: %+v", firing)
	}
}

func TestSPCRulesDisabledByDefault(t *testing.T) {
	m := testMonitor(Options{})
	m.ObserveControl("run_time", "fc", 1, true, 160, 100, []string{"we1"})
	m.ObserveChangepoint("run_time", "fc", 1, 2, "detected", 100, 140)
	if len(m.FiringAlerts()) != 0 {
		t.Error("zero-value SPC rules must be disabled")
	}
}

// TestSPCEndpointServesPersistedReport is the issue's agreement check:
// /api/spc serves exactly what spc.ReadReport returns from the stats
// database — the same report foreman -spc renders.
func TestSPCEndpointServesPersistedReport(t *testing.T) {
	o := spc.New(spc.DefaultParams())
	for i, v := range []float64{100, 102, 98, 101, 99, 100, 102, 98, 140, 141, 139, 140, 142} {
		o.Observe(spc.KindRunTime, "f1", i, float64(i)*86400, v)
	}
	db := statsdb.NewDB()
	if err := spc.LoadReport(db, o.Report()); err != nil {
		t.Fatal(err)
	}

	m := testMonitor(Options{})
	s := NewServer(m, nil)
	s.AttachSPC(func() any {
		r, err := spc.ReadReport(db)
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return r
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body, ctype := get(t, srv, "/api/spc")
	if code != 200 || ctype != "application/json" {
		t.Fatalf("spc endpoint = %d %s", code, ctype)
	}
	var got spc.Report
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("spc response is not a Report: %v\n%s", err, body)
	}
	want, err := spc.ReadReport(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("served %d series, statsdb has %d", len(got.Series), len(want.Series))
	}
	for i := range want.Series {
		a, b := got.Series[i], want.Series[i]
		if a.Kind != b.Kind || a.Subject != b.Subject || a.Out != b.Out ||
			a.Violations != b.Violations || len(a.Points) != len(b.Points) ||
			len(a.Changepoints) != len(b.Changepoints) {
			t.Errorf("series %d: served %s/%s (%d pts), statsdb %s/%s (%d pts)",
				i, a.Kind, a.Subject, len(a.Points), b.Kind, b.Subject, len(b.Points))
		}
		if math.Abs(a.Center-b.Center) > 1e-9 || math.Abs(a.UCL-b.UCL) > 1e-9 {
			t.Errorf("series %d limits diverge between endpoint and statsdb", i)
		}
	}
}

func TestSPCEndpointWithoutAttachment(t *testing.T) {
	m := testMonitor(Options{})
	srv := httptest.NewServer(NewServer(m, nil).Handler())
	defer srv.Close()
	code, _, _ := get(t, srv, "/api/spc")
	if code != 404 {
		t.Errorf("unattached spc endpoint = %d, want 404", code)
	}
}

func TestDashboardHasSPCPanelAndSharedRefresh(t *testing.T) {
	m := testMonitor(Options{})
	srv := httptest.NewServer(NewServer(m, nil).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/")
	if code != 200 {
		t.Fatalf("dashboard = %d", code)
	}
	for _, want := range []string{"spc-panel", "api/spc", "changepoint"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// Satellite: one shared refresh interval and per-panel sim-time
	// stamps, so panels cannot silently show mixed-age data.
	if !strings.Contains(body, "REFRESH_MS") || strings.Contains(body, "setInterval(refresh, 2000)") {
		t.Error("dashboard panels do not share one refresh interval")
	}
	for _, want := range []string{"spc-asof", "blame-asof", "util-asof", "last updated", "STALE"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing freshness stamp %q", want)
		}
	}
}
