package monitor

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engineprof"
	"repro/internal/sim"
)

// /api/engine serves exactly the profiler's live Report — the same
// snapshot foreman -engineprof renders from statsdb after the campaign.
func TestEngineEndpointServesProfilerReport(t *testing.T) {
	e := sim.NewEngine()
	prof := engineprof.New()
	e.SetProbe(prof)
	for i := 0; i < 10; i++ {
		e.Scope("ps").At(float64(i), func() {})
	}
	e.Scope("workflow").At(2, func() {})
	e.Run()

	m := testMonitor(Options{})
	s := NewServer(m, nil)
	s.AttachEngine(func() any { return prof.Report() })
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body, ctype := get(t, srv, "/api/engine")
	if code != 200 || ctype != "application/json" {
		t.Fatalf("engine endpoint = %d %s", code, ctype)
	}
	var got engineprof.Report
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("engine response is not a Report: %v\n%s", err, body)
	}
	want := prof.Report()
	if len(got.Labels) != len(want.Labels) {
		t.Fatalf("served %d labels, profiler has %d", len(got.Labels), len(want.Labels))
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Errorf("label %d: served %+v, profiler %+v", i, got.Labels[i], want.Labels[i])
		}
	}
	if got.TotalFired() != 11 {
		t.Errorf("served total fired = %d, want 11", got.TotalFired())
	}
}

func TestEngineEndpointWithoutAttachment(t *testing.T) {
	m := testMonitor(Options{})
	srv := httptest.NewServer(NewServer(m, nil).Handler())
	defer srv.Close()
	code, _, _ := get(t, srv, "/api/engine")
	if code != 404 {
		t.Errorf("unattached engine endpoint = %d, want 404", code)
	}
}

func TestDashboardHasEnginePanel(t *testing.T) {
	m := testMonitor(Options{})
	srv := httptest.NewServer(NewServer(m, nil).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/")
	if code != 200 {
		t.Fatalf("dashboard = %d", code)
	}
	for _, want := range []string{"engine-panel", "api/engine", "engine-asof", "engine-depth"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
