package monitor

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// testServer builds a monitor with one predicted-then-actual deadline
// miss and returns its HTTP handler.
func testServer(t *testing.T) (*Monitor, *telemetry.Registry, *httptest.Server) {
	t.Helper()
	reg := telemetry.NewRegistry()
	m := New(Options{
		History:   seedHistory("f", 10000, 10000, 10000),
		Deadlines: map[string]float64{"f": 7200},
		Nodes:     []core.NodeInfo{{Name: "fnode01", CPUs: 2, Speed: 1}},
	}, reg)
	m.ObserveRecord(runningRec("f", 4, day4+3600))
	m.ObserveRecord(completedRec("f", 4, day4+3600, 10000))
	srv := httptest.NewServer(NewServer(m, reg).Handler())
	t.Cleanup(srv.Close)
	return m, reg, srv
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestHealthzEndpoint(t *testing.T) {
	_, _, srv := testServer(t)
	code, body, _ := get(t, srv, "/healthz")
	if code != 200 {
		t.Fatalf("healthz status = %d", code)
	}
	var h map[string]any
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if h["status"] != "ok" || h["alerts_firing"] != float64(1) {
		t.Errorf("healthz = %v, want status ok with 1 firing alert", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, _, srv := testServer(t)
	code, body, ctype := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE monitor_alerts_firing gauge",
		"monitor_alerts_firing 1",
		`monitor_alerts_fired_total{rule="deadline",severity="warning"} 1`,
		"monitor_deadline_misses_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsEndpointWithoutRegistry(t *testing.T) {
	m := testMonitor(Options{})
	srv := httptest.NewServer(NewServer(m, nil).Handler())
	defer srv.Close()
	code, _, _ := get(t, srv, "/metrics")
	if code != 404 {
		t.Errorf("metrics without registry = %d, want 404", code)
	}
}

func TestStatusEndpoint(t *testing.T) {
	_, _, srv := testServer(t)
	code, body, ctype := get(t, srv, "/api/status")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("status = %d %s", code, ctype)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status is not JSON: %v\n%s", err, body)
	}
	if len(st.Runs) != 1 {
		t.Fatalf("status runs = %+v, want 1 entry", st.Runs)
	}
	r := st.Runs[0]
	if r.Forecast != "f" || r.Day != 4 || r.State != RunLate {
		t.Errorf("run = %+v, want f day 4 late", r)
	}
	if r.Budget >= 0 {
		t.Errorf("late run budget = %v, want negative", r.Budget)
	}
	if st.Summary.Late != 1 || st.Summary.AlertsFiring != 1 {
		t.Errorf("summary = %+v", st.Summary)
	}
}

func TestAlertsEndpoint(t *testing.T) {
	m, _, srv := testServer(t)
	code, body, _ := get(t, srv, "/api/alerts")
	if code != 200 {
		t.Fatalf("alerts status = %d", code)
	}
	var alerts []Alert
	if err := json.Unmarshal([]byte(body), &alerts); err != nil {
		t.Fatalf("alerts is not JSON: %v\n%s", err, body)
	}
	if len(alerts) != len(m.Alerts()) || len(alerts) == 0 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].Rule != "deadline" || alerts[0].Severity != SevCritical {
		t.Errorf("alert = %+v, want escalated deadline alert", alerts[0])
	}

	// The ?state=firing filter returns only active alerts.
	_, body, _ = get(t, srv, "/api/alerts?state=firing")
	var firing []Alert
	if err := json.Unmarshal([]byte(body), &firing); err != nil {
		t.Fatal(err)
	}
	if len(firing) != 1 {
		t.Errorf("firing alerts = %+v, want 1", firing)
	}
}

func TestSLOEndpoint(t *testing.T) {
	_, _, srv := testServer(t)
	code, body, _ := get(t, srv, "/api/slo")
	if code != 200 {
		t.Fatalf("slo status = %d", code)
	}
	var rep SLOReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("slo is not JSON: %v\n%s", err, body)
	}
	if rep.Total.Late != 1 || rep.Total.Runs != 1 {
		t.Errorf("slo total = %+v, want 1 late of 1", rep.Total)
	}
}

func TestDashboardEndpoint(t *testing.T) {
	_, _, srv := testServer(t)
	code, body, ctype := get(t, srv, "/")
	if code != 200 || !strings.HasPrefix(ctype, "text/html") {
		t.Fatalf("dashboard = %d %s", code, ctype)
	}
	for _, want := range []string{"control room", "api/status", "<table"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// Unknown paths are 404, not the dashboard.
	if code, _, _ := get(t, srv, "/nosuch"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}
