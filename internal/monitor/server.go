package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"repro/internal/telemetry"
)

// Server exposes the control room over HTTP:
//
//	GET /                 live HTML dashboard (auto-refreshing)
//	GET /healthz          liveness JSON: clock, tracked runs, firing alerts
//	GET /metrics          the telemetry registry in Prometheus text format
//	GET /api/status       the full Status snapshot as JSON
//	GET /api/alerts       the alert history as JSON
//	GET /api/slo          the SLO report as JSON
//	GET /api/harvest      the harvest pipeline's status (when attached)
//	GET /api/utilization  the usage sampler's status (when attached)
//	GET /api/forensics    the lateness-blame report (when attached)
//	GET /api/spc          the SPC control-chart report (when attached)
//	GET /api/engine       the kernel profiler's hotspot report (when attached)
//	GET /api/serving      the product-serving edge's stats (when attached)
//	GET /debug/pprof/     Go profiling endpoints (when EnablePprof)
//
// Handlers read monitor snapshots under its lock and never touch the
// simulation engine, so the server can run on wall-clock goroutines
// while a campaign replays. All handlers are httptest-able via Handler.
type Server struct {
	mon         *Monitor
	reg         *telemetry.Registry
	harvestFn   func() any
	utilFn      func() any
	forensicsFn func() any
	spcFn       func() any
	engineFn    func() any
	servingFn   func() any
	runtime     *telemetry.RuntimeCollector
	pprofOn     bool
}

// NewServer builds a Server for a monitor. reg (may be nil) backs
// /metrics and receives the Go runtime gauges, collected on every
// scrape — the control room watches its own serving process too.
func NewServer(mon *Monitor, reg *telemetry.Registry) *Server {
	return &Server{mon: mon, reg: reg, runtime: telemetry.NewRuntimeCollector(reg)}
}

// AttachHarvest wires the harvest pipeline's status into the server: fn
// (typically a closure over Harvester.Status) backs GET /api/harvest and
// the dashboard's harvest panel. The server stays decoupled from the
// harvest package — it serves whatever snapshot fn returns. Call before
// the server starts handling requests.
func (s *Server) AttachHarvest(fn func() any) { s.harvestFn = fn }

// AttachUtilization wires the usage sampler's status into the server: fn
// (typically a closure over Sampler.Status) backs GET /api/utilization
// and the dashboard's heatmap panel. Call before the server starts
// handling requests.
func (s *Server) AttachUtilization(fn func() any) { s.utilFn = fn }

// AttachForensics wires a lateness-blame report into the server: fn
// (typically a closure over forensics.ReadReport on the stats database,
// so the endpoint serves exactly the persisted rows the CLI report
// renders) backs GET /api/forensics and the dashboard's blame panel.
// Call before the server starts handling requests.
func (s *Server) AttachForensics(fn func() any) { s.forensicsFn = fn }

// AttachSPC wires the SPC observatory's control-chart report into the
// server: fn (typically a closure over spc.ReadReport on the stats
// database, or a live Observatory.Report) backs GET /api/spc and the
// dashboard's control-chart panel. Call before the server starts
// handling requests.
func (s *Server) AttachSPC(fn func() any) { s.spcFn = fn }

// AttachEngine wires the kernel profiler's report into the server: fn
// (typically a closure over engineprof.Profiler.Report, whose snapshot
// is safe to take while the engine runs) backs GET /api/engine and the
// dashboard's engine panel. Call before the server starts handling
// requests.
func (s *Server) AttachEngine(fn func() any) { s.engineFn = fn }

// AttachServing wires the product-serving edge into the server: fn
// (typically a closure over serving.Edge.Stats, whose snapshot is safe to
// take while the simulation runs) backs GET /api/serving and the
// dashboard's serving panel. Call before the server starts handling
// requests.
func (s *Server) AttachServing(fn func() any) { s.servingFn = fn }

// EnablePprof mounts net/http/pprof under /debug/pprof/ on the next
// Handler call — opt-in, because the profiler exposes stacks and heap
// contents an operator console should not serve by default.
func (s *Server) EnablePprof() { s.pprofOn = true }

// Handler returns the control room's routing mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/status", s.handleStatus)
	mux.HandleFunc("GET /api/alerts", s.handleAlerts)
	mux.HandleFunc("GET /api/slo", s.handleSLO)
	mux.HandleFunc("GET /api/harvest", s.handleHarvest)
	mux.HandleFunc("GET /api/utilization", s.handleUtilization)
	mux.HandleFunc("GET /api/forensics", s.handleForensics)
	mux.HandleFunc("GET /api/spc", s.handleSPC)
	mux.HandleFunc("GET /api/engine", s.handleEngine)
	mux.HandleFunc("GET /api/serving", s.handleServing)
	if s.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.mon.Status()
	writeJSON(w, map[string]any{
		"status":        "ok",
		"sim_time":      st.Now,
		"day":           st.Day,
		"done":          st.Done,
		"runs_tracked":  len(st.Runs),
		"alerts_firing": st.Summary.AlertsFiring,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		http.Error(w, "no metrics registry configured", http.StatusNotFound)
		return
	}
	s.runtime.Collect()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleUtilization(w http.ResponseWriter, r *http.Request) {
	if s.utilFn == nil {
		http.Error(w, "no usage sampler attached", http.StatusNotFound)
		return
	}
	writeJSON(w, s.utilFn())
}

func (s *Server) handleForensics(w http.ResponseWriter, r *http.Request) {
	if s.forensicsFn == nil {
		http.Error(w, "no forensics report attached", http.StatusNotFound)
		return
	}
	writeJSON(w, s.forensicsFn())
}

func (s *Server) handleSPC(w http.ResponseWriter, r *http.Request) {
	if s.spcFn == nil {
		http.Error(w, "no spc observatory attached", http.StatusNotFound)
		return
	}
	writeJSON(w, s.spcFn())
}

func (s *Server) handleEngine(w http.ResponseWriter, r *http.Request) {
	if s.engineFn == nil {
		http.Error(w, "no kernel profiler attached", http.StatusNotFound)
		return
	}
	writeJSON(w, s.engineFn())
}

func (s *Server) handleServing(w http.ResponseWriter, r *http.Request) {
	if s.servingFn == nil {
		http.Error(w, "no serving edge attached", http.StatusNotFound)
		return
	}
	writeJSON(w, s.servingFn())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.mon.Status())
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	alerts := s.mon.Alerts()
	if r.URL.Query().Get("state") == StateFiring {
		alerts = s.mon.FiringAlerts()
	}
	writeJSON(w, alerts)
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.mon.Report())
}

func (s *Server) handleHarvest(w http.ResponseWriter, r *http.Request) {
	if s.harvestFn == nil {
		http.Error(w, "no harvester attached", http.StatusNotFound)
		return
	}
	writeJSON(w, s.harvestFn())
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}

// dashboardHTML is the minimal live dashboard: plain JS polling
// /api/status, no external assets, so it renders from an air-gapped
// operator console.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>forecast factory — control room</title>
<style>
body { font: 13px/1.5 monospace; margin: 1.5em; background: #111; color: #ddd; }
h1 { font-size: 16px; } h2 { font-size: 14px; margin: 1em 0 .3em; }
table { border-collapse: collapse; }
td, th { padding: 2px 10px; border-bottom: 1px solid #333; text-align: left; }
.ok { color: #7c7; } .warn { color: #fc6; } .crit { color: #f66; } .dim { color: #888; }
.bar { display: inline-block; height: 9px; background: #4a8; vertical-align: middle; }
.asof { font-weight: normal; font-size: 11px; }
</style>
</head>
<body>
<h1>forecast factory — control room</h1>
<div id="summary" class="dim">loading…</div>
<h2>alerts</h2><table id="alerts"></table>
<h2>runs</h2><table id="runs"></table>
<h2>nodes</h2><table id="nodes"></table>
<div id="util-panel" style="display:none">
<h2>utilization <span id="util-asof" class="asof dim"></span> <span id="util-legend" class="dim"></span></h2>
<pre id="util-heatmap" style="line-height:1.1"></pre>
<table id="util-windows"></table>
</div>
<div id="harvest-panel" style="display:none">
<h2>harvest <span id="harvest-asof" class="asof dim"></span></h2>
<div id="harvest-summary" class="dim"></div>
<table id="harvest-quarantine"></table>
</div>
<div id="blame-panel" style="display:none">
<h2>lateness blame <span id="blame-asof" class="asof dim"></span> <span id="blame-legend" class="dim"></span></h2>
<table id="blame-days"></table>
</div>
<div id="spc-panel" style="display:none">
<h2>process control <span id="spc-asof" class="asof dim"></span></h2>
<table id="spc-series"></table>
<table id="spc-changepoints"></table>
</div>
<div id="engine-panel" style="display:none">
<h2>engine observatory <span id="engine-asof" class="asof dim"></span></h2>
<div id="engine-summary" class="dim"></div>
<table id="engine-labels"></table>
<pre id="engine-depth" style="line-height:1.1"></pre>
</div>
<div id="serving-panel" style="display:none">
<h2>product serving <span id="serving-asof" class="asof dim"></span></h2>
<div id="serving-summary" class="dim"></div>
<table id="serving-products"></table>
</div>
<script>
// One shared refresh interval drives every panel, and each panel stamps
// the sim time of the pass that produced its data — a panel whose fetch
// failed is marked stale instead of silently showing mixed-age data.
const REFRESH_MS = 2000;
function hhmm(s) {
  const sign = s < 0 ? "-" : ""; s = Math.abs(s);
  return sign + Math.floor(s/3600) + ":" + String(Math.floor(s%3600/60)).padStart(2, "0");
}
function cls(state) {
  return {late: "crit", "on-time": "ok", running: "", dropped: "warn",
          critical: "crit", warning: "warn", info: "dim"}[state] || "";
}
function stamp(panel, simNow, simDay, ok) {
  const el = document.getElementById(panel + "-asof");
  if (!el) return;
  if (ok && simNow !== null) {
    el.textContent = "· last updated day " + simDay + " t=" + hhmm(simNow);
    el.className = "asof dim";
  } else {
    el.textContent = "· STALE (fetch failed)";
    el.className = "asof crit";
  }
}
async function refresh() {
  let simNow = null, simDay = null;
  try {
    const st = await (await fetch("api/status")).json();
    simNow = st.now; simDay = st.day;
    const sm = st.summary;
    document.getElementById("summary").textContent =
      "sim day " + st.day + " (t=" + hhmm(st.now) + ")" + (st.done ? " — campaign done" : "") +
      " · running " + sm.running + " · on-time " + sm.on_time + " · late " + sm.late +
      " · predicted-late " + sm.predicted_late + " · attainment " +
      (100*sm.attainment).toFixed(1) + "% · alerts firing " + sm.alerts_firing;
    const rows = (hdr, items, render, limit) => hdr +
      items.slice(0, limit || 40).map(render).join("");
    document.getElementById("alerts").innerHTML = rows(
      "<tr><th>sev</th><th>rule</th><th>subject</th><th>message</th><th>fired</th></tr>",
      st.firing.slice().reverse(),
      a => '<tr><td class="' + cls(a.severity) + '">' + a.severity + (a.predicted ? " (predicted)" : "") +
           "</td><td>" + a.rule + "</td><td>" + (a.forecast || "-") +
           "</td><td>" + a.message + "</td><td>" + hhmm(a.fired_at) + "</td></tr>");
    document.getElementById("runs").innerHTML = rows(
      "<tr><th>forecast</th><th>day</th><th>node</th><th>state</th><th>progress</th>" +
      "<th>eta</th><th>deadline</th><th>budget</th></tr>",
      st.runs,
      r => '<tr><td>' + r.forecast + "</td><td>" + r.day + "</td><td>" + r.node +
           '</td><td class="' + cls(r.state) + '">' + r.state + (r.predicted_miss ? " ⚠" : "") +
           '</td><td><span class="bar" style="width:' + Math.round(60*r.progress) + 'px"></span> ' +
           Math.round(100*r.progress) + "%</td><td>" + (r.eta ? hhmm(r.eta) : "—") +
           "</td><td>" + hhmm(r.deadline) + '</td><td class="' + (r.budget < 0 ? "crit" : "ok") + '">' +
           hhmm(r.budget) + "</td></tr>");
    document.getElementById("nodes").innerHTML = rows(
      "<tr><th>node</th><th>cpus</th><th>utilization</th></tr>",
      st.nodes || [],
      n => "<tr><td>" + n.name + "</td><td>" + n.cpus +
           '</td><td><span class="bar" style="width:' + Math.round(100*n.utilization) +
           'px"></span> ' + (100*n.utilization).toFixed(1) + "%</td></tr>");
  } catch (e) {
    document.getElementById("summary").textContent = "status fetch failed: " + e;
  }
  try {
    const resp = await fetch("api/harvest");
    if (resp.ok) {
      const h = await resp.json();
      document.getElementById("harvest-panel").style.display = "";
      const lp = h.last_pass || {};
      document.getElementById("harvest-summary").textContent =
        "pass " + h.passes + " @ t=" + hhmm(lp.at || 0) +
        " · scanned " + (lp.scanned || 0) + " · ingested " + (lp.ingested || 0) +
        " · updated " + (lp.updated || 0) + " · watermark hits " + (lp.watermark_hits || 0) +
        " · lag " + hhmm(h.watermark_lag_seconds || 0) +
        " · totals: " + h.totals.ingested + " ingested / " +
        h.totals.quarantined + " quarantined · schema v" + h.schema_version;
      const q = h.quarantine || [];
      document.getElementById("harvest-quarantine").innerHTML = q.length === 0 ? "" :
        "<tr><th>quarantined file</th><th>error</th></tr>" +
        q.slice(0, 20).map(e =>
          '<tr><td class="warn">' + e.path + '</td><td class="dim">' + e.error + "</td></tr>").join("");
      stamp("harvest", simNow, simDay, true);
    }
  } catch (e) { stamp("harvest", simNow, simDay, false); }
  try {
    const resp = await fetch("api/utilization");
    if (resp.ok) {
      const u = await resp.json();
      document.getElementById("util-panel").style.display = "";
      const shades = [" ", "░", "▒", "▓", "█"];
      const grid = u.grid || {};
      const names = grid.nodes || [];
      const width = Math.max(...names.map(n => n.length), 4);
      const lines = names.map((name, i) => {
        const row = (grid.utilization || [])[i] || [];
        const cells = row.slice(-120).map(v => {
          v = Math.max(0, Math.min(1, v));
          let k = Math.round(v * (shades.length - 1));
          if (v > 0 && k === 0) k = 1;
          return shades[k];
        }).join("");
        return name.padEnd(width) + " |" + cells + "|";
      });
      document.getElementById("util-heatmap").textContent = lines.join("\n");
      document.getElementById("util-legend").textContent =
        "· per-node utilization, " + hhmm(grid.step || 0) + " per column · " +
        "scale " + shades.map((s, i) => s + "=" + (i / (shades.length - 1)).toFixed(2)).join(" ");
      const ws = (u.windows || []).filter(w => w.kind === "contention").slice(-10).reverse();
      document.getElementById("util-windows").innerHTML = ws.length === 0 ? "" :
        "<tr><th>contention window</th><th>from</th><th>to</th><th>peak k</th><th>mean share</th></tr>" +
        ws.map(w =>
          '<tr><td class="warn">' + w.node + "</td><td>" + hhmm(w.start) + "</td><td>" + hhmm(w.end) +
          "</td><td>" + (w.peak_active || "-") + "</td><td>" +
          (w.mean_share ? w.mean_share.toFixed(2) : "-") + "</td></tr>").join("");
      stamp("util", simNow, simDay, true);
    }
  } catch (e) { stamp("util", simNow, simDay, false); }
  try {
    const resp = await fetch("api/forensics");
    if (resp.ok) {
      const f = await resp.json();
      const days = f.days || [];
      const comps = ["queue_wait", "contention", "failure", "upstream_wait", "estimate_error"];
      const colors = {queue_wait: "#48a", contention: "#a84", failure: "#a44",
                      upstream_wait: "#848", estimate_error: "#666"};
      document.getElementById("blame-panel").style.display = "";
      document.getElementById("blame-legend").innerHTML = "· " + comps.map(c =>
        '<span class="bar" style="width:9px;background:' + colors[c] + '"></span> ' + c).join(" ");
      const maxLate = Math.max(1, ...days.map(d => d.lateness));
      document.getElementById("blame-days").innerHTML =
        "<tr><th>day</th><th>runs</th><th>lateness</th><th>dominant</th><th>blame mix</th></tr>" +
        days.slice(-40).map(d => {
          const total = comps.reduce((s, c) => s + ((d.components || {})[c] || 0), 0);
          const width = Math.round(300 * d.lateness / maxLate);
          const bar = total <= 0 ? "" : comps.map(c => {
            const w = Math.round(width * ((d.components || {})[c] || 0) / total);
            return w <= 0 ? "" :
              '<span class="bar" style="width:' + w + 'px;background:' + colors[c] + '"></span>';
          }).join("");
          return "<tr><td>" + d.day + "</td><td>" + d.runs + "</td><td>" + hhmm(d.lateness) +
                 "</td><td>" + d.dominant + "</td><td>" + bar + "</td></tr>";
        }).join("");
      stamp("blame", simNow, simDay, true);
    }
  } catch (e) { stamp("blame", simNow, simDay, false); }
  try {
    const resp = await fetch("api/spc");
    if (resp.ok) {
      const rep = await resp.json();
      const series = rep.series || [];
      document.getElementById("spc-panel").style.display = "";
      document.getElementById("spc-series").innerHTML =
        "<tr><th>kind</th><th>subject</th><th>n</th><th>center</th><th>sigma</th>" +
        "<th>viol</th><th>state</th><th>recent (· ok, ! violation, : learning)</th></tr>" +
        series.map(s => {
          const pts = s.points || [];
          const trace = pts.slice(-60).map(p =>
            p.learning ? ":" : (p.out ? "!" : "·")).join("");
          const state = pts.some(p => !p.learning)
            ? (s.out ? '<span class="crit">OUT</span>' : '<span class="ok">in</span>')
            : '<span class="dim">learning</span>';
          return "<tr><td>" + s.kind + "</td><td>" + s.subject + "</td><td>" + pts.length +
                 "</td><td>" + s.center.toPrecision(4) + "</td><td>" + s.sigma.toPrecision(4) +
                 "</td><td>" + (s.violations || 0) + "</td><td>" + state +
                 "</td><td><code>" + trace + "</code></td></tr>";
        }).join("");
      const cps = series.flatMap(s =>
        (s.changepoints || []).map(c => ({kind: s.kind, subject: s.subject, ...c})));
      cps.sort((a, b) => a.detected_day - b.detected_day);
      document.getElementById("spc-changepoints").innerHTML = cps.length === 0 ? "" :
        "<tr><th>changepoint</th><th>day</th><th>detected</th><th>cause</th>" +
        "<th>before</th><th>after</th></tr>" +
        cps.slice(-20).map(c =>
          '<tr><td class="warn">' + c.kind + "/" + c.subject + "</td><td>" + c.day +
          "</td><td>" + c.detected_day + "</td><td>" + c.cause +
          "</td><td>" + c.before.toPrecision(4) + "</td><td>" + c.after.toPrecision(4) +
          "</td></tr>").join("");
      stamp("spc", simNow, simDay, true);
    }
  } catch (e) { stamp("spc", simNow, simDay, false); }
  try {
    const resp = await fetch("api/engine");
    if (resp.ok) {
      const rep = await resp.json();
      const labels = rep.labels || [];
      document.getElementById("engine-panel").style.display = "";
      const fmtNs = ns => ns < 1e3 ? ns + "ns" : ns < 1e6 ? (ns/1e3).toFixed(1) + "µs"
                        : ns < 1e9 ? (ns/1e6).toFixed(2) + "ms" : (ns/1e9).toFixed(3) + "s";
      // Handler timing is sampled in the kernel: extrapolate each
      // label's wall-clock as (sampled mean) x (total fires).
      const wallEst = l => l.wall_sampled > 0 ? l.wall_ns/l.wall_sampled*l.fired : 0;
      const totalWall = labels.reduce((s, l) => s + wallEst(l), 0);
      const totalFired = labels.reduce((s, l) => s + l.fired, 0);
      const depth = rep.depth || [];
      const peak = Math.max(0, ...depth.map(p => p.depth));
      document.getElementById("engine-summary").textContent =
        totalFired + " events fired · " + labels.reduce((s, l) => s + l.cancelled, 0) +
        " cancelled · ~" + fmtNs(totalWall) + " handler wall-clock (sampled) · peak queue depth " + peak;
      document.getElementById("engine-labels").innerHTML =
        "<tr><th>label</th><th>wall%</th><th>wall</th><th>fired</th><th>cancelled</th>" +
        "<th>mean</th><th>max</th><th>dwell(mean)</th></tr>" +
        labels.slice(0, 10).map(l => {
          const est = wallEst(l);
          const share = totalWall > 0 ? (100*est/totalWall).toFixed(1) : "0.0";
          const mean = l.wall_sampled > 0 ? l.wall_ns/l.wall_sampled : 0;
          const dwell = l.fired > 0 ? l.dwell_sum_s/l.fired : 0;
          return "<tr><td>" + l.label + '</td><td><span class="bar" style="width:' +
            Math.round(share) + 'px"></span> ' + share + "%</td><td>" + fmtNs(est) +
            "</td><td>" + l.fired + "</td><td>" + l.cancelled + "</td><td>" + fmtNs(mean) +
            "</td><td>" + fmtNs(l.wall_max_ns) + "</td><td>" + hhmm(dwell) + "</td></tr>";
        }).join("");
      const shades = [" ", "░", "▒", "▓", "█"];
      const cells = depth.slice(-120).map(p => {
        if (peak <= 0) return shades[0];
        let k = Math.round(p.depth / peak * (shades.length - 1));
        if (p.depth > 0 && k === 0) k = 1;
        return shades[k];
      }).join("");
      document.getElementById("engine-depth").textContent =
        depth.length === 0 ? "" : "queue depth |" + cells + "| peak " + peak;
      stamp("engine", simNow, simDay, true);
    }
  } catch (e) { stamp("engine", simNow, simDay, false); }
  try {
    const resp = await fetch("api/serving");
    if (resp.ok) {
      const sv = await resp.json();
      document.getElementById("serving-panel").style.display = "";
      document.getElementById("serving-summary").textContent =
        sv.requests + " requests · hit " + (100*(sv.hit_rate || 0)).toFixed(1) + "%" +
        " · coalesced " + sv.coalesced + " · renders " + sv.renders +
        " (" + sv.active_renders + " active, " + sv.queued_renders + " queued)" +
        " · shed " + sv.shed + " (" + (100*(sv.shed_fraction || 0)).toFixed(2) + "%)" +
        " · stale served " + sv.served_stale +
        " · staleness p50 " + hhmm(sv.staleness_p50_seconds || 0) +
        " p99 " + hhmm(sv.staleness_p99_seconds || 0);
      const prods = (sv.products || []).slice().sort((a, b) => b.requests - a.requests);
      document.getElementById("serving-products").innerHTML =
        "<tr><th>product</th><th>forecast</th><th>requests</th><th>hit%</th>" +
        "<th>renders</th><th>shed</th><th>rate/h</th><th>cycle</th></tr>" +
        prods.slice(0, 12).map(p => {
          const hit = p.requests > 0 ? (100*p.hits/p.requests).toFixed(1) : "0.0";
          return "<tr><td>" + p.product + (p.hot ? ' <span class="warn">HOT</span>' : "") +
            "</td><td>" + p.forecast + "</td><td>" + p.requests + "</td><td>" + hit +
            "%</td><td>" + p.renders + "</td><td>" + (p.shed || 0) +
            "</td><td>" + Math.round(p.demand_rate || 0) + "</td><td>" + p.cycle + "</td></tr>";
        }).join("");
      stamp("serving", simNow, simDay, true);
    }
  } catch (e) { stamp("serving", simNow, simDay, false); }
}
refresh();
setInterval(refresh, REFRESH_MS);
</script>
</body>
</html>
`
