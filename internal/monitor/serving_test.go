package monitor

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serving"
	"repro/internal/sim"
)

// /api/serving serves exactly the edge's live Stats — the same snapshot
// the campaign-end summary and foreman -serving render.
func TestServingEndpointServesEdgeStats(t *testing.T) {
	e := sim.NewEngine()
	cl := cluster.New(e)
	srvNode := cl.AddNode("public-server", 2, 1)
	edge, err := serving.New(serving.Config{
		Engine: e,
		Server: srvNode,
		Products: []serving.Product{
			{Name: "x/plot", Forecast: "x", RenderWork: 100, Perish: 3600, Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.At(10, func() { edge.Publish("x/plot", 0, 10) })
	e.At(20, func() { edge.ArriveN("x/plot", 5) })
	e.Run()

	m := testMonitor(Options{})
	s := NewServer(m, nil)
	s.AttachServing(func() any { return edge.Stats() })
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body, ctype := get(t, srv, "/api/serving")
	if code != 200 || ctype != "application/json" {
		t.Fatalf("serving endpoint = %d %s", code, ctype)
	}
	var got serving.Stats
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("serving response is not a Stats: %v\n%s", err, body)
	}
	want := edge.Stats()
	if got.Requests != want.Requests || got.Renders != want.Renders ||
		got.Coalesced != want.Coalesced || len(got.Products) != len(want.Products) {
		t.Fatalf("served %+v, edge has %+v", got, want)
	}
}

func TestServingEndpointWithoutAttachment(t *testing.T) {
	m := testMonitor(Options{})
	srv := httptest.NewServer(NewServer(m, nil).Handler())
	defer srv.Close()
	code, _, _ := get(t, srv, "/api/serving")
	if code != 404 {
		t.Errorf("unattached serving endpoint = %d, want 404", code)
	}
}

func TestDashboardHasServingPanel(t *testing.T) {
	m := testMonitor(Options{})
	srv := httptest.NewServer(NewServer(m, nil).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/")
	if code != 200 {
		t.Fatalf("dashboard = %d", code)
	}
	for _, want := range []string{"serving-panel", "api/serving", "serving-asof", "serving-products"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
