package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/logs"
	"repro/internal/plot"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/statsdb"
)

// EndToEnd reproduces the §4.2 headline comparison: "Running all tasks at
// a single node has an end-to-end time of about 18,000 seconds (5 hours),
// while running the simulation model and data product generation at
// separate nodes takes about 11,000 seconds (around 3 hours)."
func EndToEnd() Report {
	r1 := dataflow.Run(dataflow.Architecture1, withTelemetry(dataflow.Params{}))
	r2 := dataflow.Run(dataflow.Architecture2, withTelemetry(dataflow.Params{}))
	return Report{
		ID:     "t1",
		Title:  "End-to-end time by architecture",
		XLabel: "architecture",
		YLabel: "end-to-end time (s)",
		Series: []plot.Series{
			{Name: "end-to-end", X: []float64{1, 2}, Y: []float64{r1.EndToEnd, r2.EndToEnd}},
		},
		Comparisons: []Comparison{
			{Metric: "Architecture 1 end-to-end", Paper: 18000, Measured: r1.EndToEnd, Unit: "s"},
			{Metric: "Architecture 2 end-to-end", Paper: 11000, Measured: r2.EndToEnd, Unit: "s"},
			{Metric: "speedup of Architecture 2", Paper: 18000.0 / 11000, Measured: r1.EndToEnd / r2.EndToEnd, Unit: "×"},
		},
	}
}

// ConcurrentProducts reproduces the §4.2 scalability check: "running these
// four sets of tasks concurrently increases the completion time by only a
// small amount (about 3000 seconds)."
func ConcurrentProducts() Report {
	base := dataflow.Run(dataflow.Architecture2, withTelemetry(dataflow.Params{}))
	spec4 := forecast.ReplicateProducts(forecast.DataflowForecast(), 4)
	multi := dataflow.Run(dataflow.Architecture2, withTelemetry(dataflow.Params{
		Spec:    spec4,
		Workers: 4,
	}))
	return Report{
		ID:     "t2",
		Title:  "Concurrent product sets at the server (Architecture 2)",
		XLabel: "product sets",
		YLabel: "end-to-end time (s)",
		Series: []plot.Series{
			{Name: "end-to-end", X: []float64{1, 4}, Y: []float64{base.EndToEnd, multi.EndToEnd}},
		},
		Comparisons: []Comparison{
			{Metric: "completion increase, 4 sets vs 1", Paper: 3000, Measured: multi.EndToEnd - base.EndToEnd, Unit: "s",
				Note: "server CPU is idle between model-output increments, so extra product sets mostly absorb idle cycles"},
		},
	}
}

// BandwidthShare reproduces the §4.2 volume observation: "For many
// forecasts, data products account for as much as 20% of all data
// generated in a run. Thus, this architecture could significantly reduce
// bandwidth consumption."
func BandwidthShare() Report {
	spec := forecast.DataflowForecast()
	products := spec.ProductBytes()
	outputs := spec.OutputBytes()
	share := products / (products + outputs)
	r2 := dataflow.Run(dataflow.Architecture2, withTelemetry(dataflow.Params{}))
	return Report{
		ID:     "t3",
		Title:  "Data products as a share of run data volume",
		XLabel: "series",
		YLabel: "fraction",
		Series: []plot.Series{
			{Name: "product share", X: []float64{0, 1}, Y: []float64{share, r2.BandwidthSaving()}},
		},
		Comparisons: []Comparison{
			{Metric: "product share of run data", Paper: 0.20, Measured: share},
			{Metric: "Architecture 2 bandwidth saving", Paper: 0.20, Measured: r2.BandwidthSaving(),
				Note: "bytes not moved over the LAN relative to Architecture 1's full copy"},
		},
	}
}

// PredictorValidation reproduces the §4.1 CPU-sharing validation: "if
// three forecasts run concurrently on a node with two CPUs, ForeMan will
// compute the expected completion time of each assuming each forecast
// gets 2/3 of the available CPU cycles. We have validated this assumption
// empirically." Here the analytic predictor is validated against the
// discrete-event simulator for k = 1..6 concurrent runs.
func PredictorValidation() Report {
	const work = 36000.0
	var ks, predicted, simulated []float64
	maxRel := 0.0
	for k := 1; k <= 6; k++ {
		runs := make([]core.Run, k)
		assign := make(map[string]string, k)
		for i := range runs {
			name := fmt.Sprintf("f%d", i)
			runs[i] = core.Run{Name: name, Work: work}
			assign[name] = "n"
		}
		plan := &core.Plan{
			Nodes:  []core.NodeInfo{{Name: "n", CPUs: 2, Speed: 1}},
			Runs:   runs,
			Assign: assign,
		}
		pred, err := plan.Predict()
		if err != nil {
			panic(fmt.Sprintf("experiments: t4: %v", err))
		}

		eng := sim.NewEngine()
		cl := cluster.New(eng)
		node := cl.AddNode("n", 2, 1)
		for i := 0; i < k; i++ {
			node.Submit(fmt.Sprintf("f%d", i), work, nil)
		}
		simEnd := eng.Run()

		ks = append(ks, float64(k))
		predicted = append(predicted, pred.Makespan())
		simulated = append(simulated, simEnd)
		if rel := math.Abs(pred.Makespan()-simEnd) / simEnd; rel > maxRel {
			maxRel = rel
		}
	}
	return Report{
		ID:     "t4",
		Title:  "CPU-sharing model: predictor vs simulator, k runs on 2 CPUs",
		XLabel: "concurrent runs",
		YLabel: "completion time (s)",
		Series: []plot.Series{
			{Name: "predicted", X: ks, Y: predicted},
			{Name: "simulated", X: ks, Y: simulated},
		},
		Comparisons: []Comparison{
			{Metric: "k=3 completion vs 2/3-CPU model", Paper: work / (2.0 / 3.0), Measured: predicted[2], Unit: "s"},
			{Metric: "max predictor-vs-simulator deviation", Paper: 0, Measured: maxRel,
				Note: "the paper validated the sharing assumption empirically; here the analytic predictor matches an independent discrete-event implementation"},
		},
	}
}

// EstimatorValidation reproduces §4.3.2: run times are linear in
// timesteps, so estimates scaled from the statistics database track
// observed walltimes. A campaign with a timestep change supplies the
// history; the estimator predicts the post-change walltime from
// pre-change statistics plus scaling, and a least-squares fit confirms
// linearity.
func EstimatorValidation() Report {
	till := forecast.Tillamook()
	cfg := factory.Config{
		Year: 2005,
		Days: 30,
		Forecasts: []factory.Assignment{
			{Spec: till, Node: "fnode01"},
		},
		Events: []factory.Event{
			factory.SetTimesteps{Day: 11, Forecast: till.Name, Timesteps: 8640},
			factory.SetTimesteps{Day: 21, Forecast: till.Name, Timesteps: 11520},
		},
	}
	c, err := factory.New(telemetered(cfg))
	if err != nil {
		panic(fmt.Sprintf("experiments: t5: %v", err))
	}
	results := c.Run()

	records, err := logs.Crawl(c.FS(), "/runs")
	if err != nil {
		panic(fmt.Sprintf("experiments: t5: crawl: %v", err))
	}
	db := statsdb.NewDB()
	if _, err := statsdb.LoadRuns(db, records); err != nil {
		panic(fmt.Sprintf("experiments: t5: load: %v", err))
	}
	res, err := db.Query(
		"SELECT timesteps, AVG(walltime) FROM runs WHERE status = 'completed' GROUP BY timesteps ORDER BY timesteps")
	if err != nil {
		panic(fmt.Sprintf("experiments: t5: query: %v", err))
	}
	ts, err := res.Floats("timesteps")
	if err != nil {
		panic(fmt.Sprintf("experiments: t5: %v", err))
	}
	wall, err := res.Floats("avg(walltime)")
	if err != nil {
		panic(fmt.Sprintf("experiments: t5: %v", err))
	}
	fit, err := stats.FitLinear(ts, wall)
	if err != nil {
		panic(fmt.Sprintf("experiments: t5: fit: %v", err))
	}

	// Estimate the day-21 walltime from pre-day-21 history only.
	var history []*logs.RunRecord
	for _, r := range records {
		if r.Day < 21 && r.Status == logs.StatusCompleted {
			history = append(history, r)
		}
	}
	nodes := []core.NodeInfo{{Name: "fnode01", CPUs: 2, Speed: 1}}
	est := core.NewEstimator(history, nodes)
	pred, err := est.Estimate(core.Request{
		Forecast:  till.Name,
		Timesteps: 11520,
		Node:      "fnode01",
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: t5: estimate: %v", err))
	}
	var actual float64
	for _, r := range results {
		if r.Day == 25 && r.Finished {
			actual = r.Walltime
		}
	}

	return Report{
		ID:     "t5",
		Title:  "Run-time estimation from the statistics database",
		XLabel: "timesteps",
		YLabel: "avg walltime (s)",
		Series: []plot.Series{
			{Name: "observed", X: ts, Y: wall},
			{Name: "fit", X: ts, Y: []float64{fit.Predict(ts[0]), fit.Predict(ts[1]), fit.Predict(ts[2])}},
		},
		Comparisons: []Comparison{
			{Metric: "R² of walltime vs timesteps", Paper: 1.0, Measured: fit.R2,
				Note: "paper: running times \"appear linearly proportional to the number of timesteps\""},
			{Metric: "estimated post-change walltime", Paper: actual, Measured: pred.Seconds, Unit: "s",
				Note: "\"paper\" column holds the observed walltime; the estimate is scaled from pre-change history"},
		},
	}
}
