package experiments

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/factory"
	"repro/internal/plot"
)

// archSeries converts dataflow sample series into plot series.
func archSeries(res dataflow.Result) []plot.Series {
	out := make([]plot.Series, len(res.Series))
	for i, s := range res.Series {
		out[i] = plot.Series{Name: s.Name, X: s.Times, Y: s.Fraction}
	}
	return out
}

// Fig6 reproduces Figure 6: time until data appears at the server with
// Architecture 1 (model and data products generated at the compute node).
func Fig6() Report {
	res := dataflow.Run(dataflow.Architecture1, withTelemetry(dataflow.Params{}))
	return Report{
		ID:     "fig6",
		Title:  "Time until all data appears at server, Architecture 1",
		XLabel: "time (s)",
		YLabel: "fraction of data at server",
		Series: archSeries(res),
		Comparisons: []Comparison{
			{Metric: "end-to-end time", Paper: 18000, Measured: res.EndToEnd, Unit: "s"},
		},
		Notes: []string{
			"final model outputs and data products arrive at the server at around the same time",
		},
	}
}

// Fig7 reproduces Figure 7: the same series with Architecture 2 (data
// products generated at the server).
func Fig7() Report {
	res := dataflow.Run(dataflow.Architecture2, withTelemetry(dataflow.Params{}))
	return Report{
		ID:     "fig7",
		Title:  "Time until all data appears at server, Architecture 2",
		XLabel: "time (s)",
		YLabel: "fraction of data at server",
		Series: archSeries(res),
		Comparisons: []Comparison{
			{Metric: "end-to-end time", Paper: 11000, Measured: res.EndToEnd, Unit: "s"},
		},
		Notes: []string{
			"final data products appear slightly later than the final model outputs",
		},
	}
}

// Fig8 reproduces Figure 8: effects of timestep changes and the addition
// of new runs on the Tillamook forecast (days 1–76 of 2005).
func Fig8() Report {
	c, err := factory.New(telemetered(factory.Figure8Scenario()))
	if err != nil {
		panic(fmt.Sprintf("experiments: fig8: %v", err))
	}
	results := c.Run()
	days, wt := factory.Walltimes(results, "forecast-tillamook")
	xs := make([]float64, len(days))
	for i, d := range days {
		xs[i] = float64(d)
	}

	at := func(day int) float64 {
		for i, d := range days {
			if d == day {
				return wt[i]
			}
		}
		return 0
	}
	peak := 0.0
	for i, d := range days {
		if d >= 50 && d <= 60 && wt[i] > peak {
			peak = wt[i]
		}
	}

	return Report{
		ID:     "fig8",
		Title:  "forecast-tillamook 2005: walltime by day of year",
		XLabel: "day of year",
		YLabel: "total walltime (s)",
		Series: []plot.Series{{Name: "walltime", X: xs, Y: wt}},
		Comparisons: []Comparison{
			{Metric: "walltime before day 21", Paper: 40000, Measured: at(10), Unit: "s"},
			{Metric: "walltime after timestep doubling", Paper: 80000, Measured: at(30), Unit: "s"},
			{Metric: "walltime on day 50 (new forecasts land)", Paper: 100000, Measured: at(50), Unit: "s"},
			{Metric: "cascading hump peak (days 50-60)", Paper: 130000, Measured: peak, Unit: "s"},
			{Metric: "walltime after recovery (day 65)", Paper: 80000, Measured: at(65), Unit: "s"},
		},
		Notes: []string{
			"day 21: timesteps doubled 5760 → 11520",
			"day 50: new forecasts placed on the Tillamook node; runs exceed 86,400 s, so successive days overlap and the delay cascades",
			"day 56: operators move the new forecasts to other nodes; walltime decays back over a couple of days",
		},
	}
}

// Fig9 reproduces Figure 9: effects of code and mesh changes on the dev
// forecast (days 140–270 of 2005).
func Fig9() Report {
	c, err := factory.New(telemetered(factory.Figure9Scenario()))
	if err != nil {
		panic(fmt.Sprintf("experiments: fig9: %v", err))
	}
	results := c.Run()
	days, wt := factory.Walltimes(results, "forecasts-dev")
	xs := make([]float64, len(days))
	for i, d := range days {
		xs[i] = float64(d)
	}
	at := func(day int) float64 {
		for i, d := range days {
			if d == day {
				return wt[i]
			}
		}
		return 0
	}

	return Report{
		ID:     "fig9",
		Title:  "forecasts-dev 2005: walltime by day of year",
		XLabel: "day of year",
		YLabel: "total walltime (s)",
		Series: []plot.Series{{Name: "walltime", X: xs, Y: wt}},
		Comparisons: []Comparison{
			{Metric: "drop at day ~150 (mesh + code change)", Paper: 5000, Measured: at(145) - at(155), Unit: "s"},
			{Metric: "jump at day ~160 (major code version)", Paper: 26000, Measured: at(165) - at(155), Unit: "s"},
			{Metric: "drop at day ~180 (code change)", Paper: 7000, Measured: at(175) - at(185), Unit: "s"},
			{Metric: "day 172 contention spike height", Paper: 12000, Measured: at(172) - at(170), Unit: "s",
				Note: "the paper reports the spikes' existence, not their height; 12000 is read off its figure"},
			{Metric: "day 192 contention spike height", Paper: 12000, Measured: at(192) - at(190), Unit: "s",
				Note: "as above"},
		},
		Notes: []string{
			"spikes on days 172 and 192 are contention with other forecasts for CPU cycles",
		},
	}
}
