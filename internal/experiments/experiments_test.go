package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestEndToEndMatchesPaper(t *testing.T) {
	r := EndToEnd()
	for _, c := range r.Comparisons {
		if c.RelError() > 0.20 {
			t.Errorf("%s: paper %v, measured %v (%.0f%% off)", c.Metric, c.Paper, c.Measured, 100*c.RelError())
		}
	}
}

func TestConcurrentProductsSmallIncrease(t *testing.T) {
	r := ConcurrentProducts()
	c := r.Comparisons[0]
	if c.Measured < 1000 || c.Measured > 6000 {
		t.Errorf("4-set increase = %v s, want ≈3000", c.Measured)
	}
}

func TestBandwidthShareNear20Percent(t *testing.T) {
	r := BandwidthShare()
	for _, c := range r.Comparisons {
		if c.Measured < 0.12 || c.Measured > 0.28 {
			t.Errorf("%s = %v, want ≈0.20", c.Metric, c.Measured)
		}
	}
}

func TestPredictorValidationExact(t *testing.T) {
	r := PredictorValidation()
	if dev := r.Comparisons[1].Measured; dev > 1e-9 {
		t.Errorf("predictor deviates from simulator by %v", dev)
	}
	if k3 := r.Comparisons[0]; math.Abs(k3.Measured-k3.Paper) > 1 {
		t.Errorf("k=3 completion %v, want %v", k3.Measured, k3.Paper)
	}
	// Both series should show the CPU-sharing knee: flat for k ≤ 2, then
	// linear growth.
	for _, s := range r.Series {
		if math.Abs(s.Y[0]-s.Y[1]) > 1 {
			t.Errorf("%s: k=1 (%v) and k=2 (%v) should match on 2 CPUs", s.Name, s.Y[0], s.Y[1])
		}
		if s.Y[5] <= s.Y[2] {
			t.Errorf("%s: no growth beyond the CPU count", s.Name)
		}
	}
}

func TestEstimatorValidation(t *testing.T) {
	r := EstimatorValidation()
	if r2 := r.Comparisons[0].Measured; r2 < 0.999 {
		t.Errorf("R² = %v, want ≈1 (linear in timesteps)", r2)
	}
	est := r.Comparisons[1]
	if est.RelError() > 0.05 {
		t.Errorf("estimate %v vs actual %v (%.1f%% off)", est.Measured, est.Paper, 100*est.RelError())
	}
}

func TestFig6Fig7Reports(t *testing.T) {
	f6, f7 := Fig6(), Fig7()
	if len(f6.Series) != 5 || len(f7.Series) != 5 {
		t.Fatalf("series counts %d, %d; want 5 each", len(f6.Series), len(f7.Series))
	}
	if f6.Comparisons[0].RelError() > 0.15 || f7.Comparisons[0].RelError() > 0.15 {
		t.Errorf("end-to-end off: fig6 %v, fig7 %v", f6.Comparisons[0].Measured, f7.Comparisons[0].Measured)
	}
	if f7.Comparisons[0].Measured >= f6.Comparisons[0].Measured {
		t.Error("Architecture 2 not faster")
	}
}

func TestFig8Report(t *testing.T) {
	r := Fig8()
	if len(r.Series) != 1 || len(r.Series[0].X) != 76 {
		t.Fatalf("series shape wrong")
	}
	for _, c := range r.Comparisons {
		if c.RelError() > 0.15 {
			t.Errorf("%s: paper %v, measured %v", c.Metric, c.Paper, c.Measured)
		}
	}
}

func TestFig9Report(t *testing.T) {
	r := Fig9()
	if len(r.Series) != 1 || len(r.Series[0].X) != 131 {
		t.Fatalf("series shape wrong")
	}
	for _, c := range r.Comparisons {
		if c.RelError() > 0.25 {
			t.Errorf("%s: paper %v, measured %v", c.Metric, c.Paper, c.Measured)
		}
	}
}

func TestRenderingsNonEmpty(t *testing.T) {
	r := PredictorValidation()
	if !strings.Contains(r.Chart(), "predicted") {
		t.Error("chart missing series legend")
	}
	if !strings.Contains(r.CSV(), "simulated") {
		t.Error("CSV missing header")
	}
	if !strings.Contains(r.Table(), "paper") {
		t.Error("table missing header")
	}
	if !strings.Contains(r.Render(), "note:") && len(r.Notes) > 0 {
		t.Error("render missing notes")
	}
}

func TestByIDAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if id == "fig6" || id == "fig7" || id == "fig8" || id == "fig9" {
			continue // exercised above; skip recomputation
		}
		r, ok := ByID(id)
		if !ok || r.ID != id {
			t.Errorf("ByID(%s) = %v, %v", id, r.ID, ok)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id accepted")
	}
	if len(IDs()) != 9 {
		t.Errorf("IDs() = %v", IDs())
	}
}

func TestMarkdownSummary(t *testing.T) {
	r := PredictorValidation()
	md := MarkdownSummary([]Report{r})
	for _, want := range []string{"| ID | Metric |", "| t4 |", "k=3 completion"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestComparisonRelError(t *testing.T) {
	if (Comparison{Paper: 100, Measured: 110}).RelError() != 0.1 {
		t.Error("RelError wrong")
	}
	if !math.IsNaN((Comparison{Paper: 0, Measured: 1}).RelError()) {
		t.Error("RelError with zero paper should be NaN")
	}
}
