// Package experiments regenerates every quantitative result in the
// paper's evaluation: Figures 6–9 and the in-text measurements of §4
// (end-to-end architecture comparison, concurrent product sets, bandwidth
// share, the CPU-sharing validation, and run-time estimation accuracy).
//
// Each experiment returns a Report holding the measured series, a
// paper-vs-measured comparison table, and renderers for ASCII charts and
// CSV. EXPERIMENTS.md is generated from these reports.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/plot"
)

// Comparison is one paper-vs-measured row.
type Comparison struct {
	Metric   string
	Paper    float64
	Measured float64
	Unit     string
	Note     string
}

// RelError returns |measured−paper| / |paper| (NaN when paper is 0).
func (c Comparison) RelError() float64 {
	if c.Paper == 0 {
		return math.NaN()
	}
	return math.Abs(c.Measured-c.Paper) / math.Abs(c.Paper)
}

// Report is one regenerated experiment.
type Report struct {
	ID          string // "fig6" ... "fig9", "t1" ... "t5"
	Title       string
	XLabel      string
	YLabel      string
	Series      []plot.Series
	Comparisons []Comparison
	Notes       []string
}

// Chart renders the report's series as an ASCII chart.
func (r Report) Chart() string {
	return plot.Chart{
		Title:  fmt.Sprintf("[%s] %s", r.ID, r.Title),
		XLabel: r.XLabel,
		YLabel: r.YLabel,
		Series: r.Series,
	}.Render()
}

// CSV renders the report's series as CSV.
func (r Report) CSV() string {
	return plot.CSV(r.XLabel, r.Series)
}

// Table renders the paper-vs-measured comparison table.
func (r Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %14s %14s %8s\n", "metric", "paper", "measured", "rel.err")
	for _, c := range r.Comparisons {
		rel := "-"
		if !math.IsNaN(c.RelError()) {
			rel = fmt.Sprintf("%.1f%%", 100*c.RelError())
		}
		metric := c.Metric
		if c.Unit != "" {
			metric += " (" + c.Unit + ")"
		}
		fmt.Fprintf(&b, "%-44s %14.4g %14.4g %8s\n", metric, c.Paper, c.Measured, rel)
		if c.Note != "" {
			fmt.Fprintf(&b, "    %s\n", c.Note)
		}
	}
	return b.String()
}

// Render produces the full textual report.
func (r Report) Render() string {
	var b strings.Builder
	b.WriteString(r.Chart())
	b.WriteString("\n")
	b.WriteString(r.Table())
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// MarkdownSummary renders a paper-vs-measured markdown table over a set
// of reports — the regenerable core of EXPERIMENTS.md.
func MarkdownSummary(reports []Report) string {
	var b strings.Builder
	b.WriteString("# Paper vs. measured (regenerated)\n\n")
	b.WriteString("| ID | Metric | Paper | Measured | Rel. err |\n")
	b.WriteString("|---|---|---:|---:|---:|\n")
	for _, r := range reports {
		for _, c := range r.Comparisons {
			rel := "—"
			if !math.IsNaN(c.RelError()) {
				rel = fmt.Sprintf("%.1f%%", 100*c.RelError())
			}
			metric := c.Metric
			if c.Unit != "" {
				metric += " (" + c.Unit + ")"
			}
			fmt.Fprintf(&b, "| %s | %s | %.4g | %.4g | %s |\n", r.ID, metric, c.Paper, c.Measured, rel)
		}
	}
	return b.String()
}

// All runs every experiment, in the paper's order.
func All() []Report {
	return []Report{
		Fig6(),
		Fig7(),
		Fig8(),
		Fig9(),
		EndToEnd(),
		ConcurrentProducts(),
		BandwidthShare(),
		PredictorValidation(),
		EstimatorValidation(),
	}
}

// ByID returns the named experiment report, or false.
func ByID(id string) (Report, bool) {
	switch id {
	case "fig6":
		return Fig6(), true
	case "fig7":
		return Fig7(), true
	case "fig8":
		return Fig8(), true
	case "fig9":
		return Fig9(), true
	case "t1":
		return EndToEnd(), true
	case "t2":
		return ConcurrentProducts(), true
	case "t3":
		return BandwidthShare(), true
	case "t4":
		return PredictorValidation(), true
	case "t5":
		return EstimatorValidation(), true
	default:
		return extensionByID(id)
	}
}

// IDs lists the experiment identifiers in order.
func IDs() []string {
	return []string{"fig6", "fig7", "fig8", "fig9", "t1", "t2", "t3", "t4", "t5"}
}
