package experiments

import (
	"sync/atomic"

	"repro/internal/dataflow"
	"repro/internal/factory"
	"repro/internal/telemetry"
)

// telSink is the package-level telemetry sink. Experiments are free
// functions invoked by id, so — like the planner in package core — there
// is no object to carry instruments; cmd/experiments installs a sink once
// at startup and every figure and in-text run it triggers records spans
// and metrics there. A nil sink (the default) disables collection.
var telSink atomic.Pointer[telemetry.Telemetry]

// SetTelemetry installs the telemetry sink threaded into every
// experiment's factory campaigns and dataflow runs, so paper-figure
// reproductions leave traces the forensics layer can analyze. Pass nil
// to detach.
func SetTelemetry(t *telemetry.Telemetry) {
	telSink.Store(t)
}

// withTelemetry threads the current sink into dataflow run parameters.
func withTelemetry(p dataflow.Params) dataflow.Params {
	p.Telemetry = telSink.Load()
	return p
}

// telemetered threads the current sink into a factory campaign config.
func telemetered(cfg factory.Config) factory.Config {
	cfg.Telemetry = telSink.Load()
	return cfg
}
