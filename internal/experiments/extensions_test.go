package experiments

import "testing"

func TestDatabaseFreshness(t *testing.T) {
	r := DatabaseFreshness()
	daily := r.Comparisons[0].Measured
	hourly := r.Comparisons[1].Measured
	live := r.Comparisons[2].Measured
	if live != 0 {
		t.Errorf("live staleness = %v, want 0", live)
	}
	if !(daily > hourly && hourly > live) {
		t.Errorf("staleness ordering wrong: daily %v, hourly %v, live %v", daily, hourly, live)
	}
	// Daily crawl staleness should be within the interval, of half-interval order.
	if daily < 10000 || daily > 86400 {
		t.Errorf("daily staleness = %v, implausible", daily)
	}
}

func TestPartitionedProductsReport(t *testing.T) {
	r := PartitionedProducts()
	today := r.Comparisons[0]
	if today.RelError() > 0.10 {
		t.Errorf("today's load: Arch3 %v vs Arch2 %v — should be close (little benefit)",
			today.Measured, today.Paper)
	}
	bytes := r.Comparisons[1]
	if bytes.Measured < 3*bytes.Paper {
		t.Errorf("Arch3 bytes %v not ≫ Arch2 bytes %v", bytes.Measured, bytes.Paper)
	}
	heavy := r.Comparisons[2]
	if heavy.Measured >= heavy.Paper {
		t.Errorf("heavy load: partitioned %v not faster than single server %v",
			heavy.Measured, heavy.Paper)
	}
}

func TestOnDemandPoliciesReport(t *testing.T) {
	r := OnDemandPolicies()
	greedyLate := r.Comparisons[0].Measured
	awareLate := r.Comparisons[1].Measured
	if greedyLate == 0 {
		t.Error("greedy policy should make made-to-stock runs late under this load")
	}
	if awareLate != 0 {
		t.Errorf("deadline-aware policy made %v stock runs late", awareLate)
	}
	greedyLatency := r.Comparisons[3].Measured
	awareLatency := r.Comparisons[4].Measured
	if greedyLatency >= awareLatency {
		t.Errorf("greedy latency %v should beat deadline-aware %v (its only advantage)",
			greedyLatency, awareLatency)
	}
}

func TestIncrementalLeadReport(t *testing.T) {
	r := IncrementalLead()
	worst := r.Comparisons[0]
	if worst.Measured >= worst.Paper {
		t.Errorf("Arch1 worst-case lead %v should be below Arch2's %v", worst.Measured, worst.Paper)
	}
	early := r.Comparisons[1]
	if early.Measured >= early.Paper {
		t.Errorf("Arch1 early lead %v should be below Arch2's %v", early.Measured, early.Paper)
	}
	// The captain still gets positive lead from the day-1 data either way.
	if early.Paper <= 0 {
		t.Errorf("Arch2 early lead %v should be positive", early.Paper)
	}
}

func TestExtensionsListAndByID(t *testing.T) {
	if len(ExtensionIDs()) != 4 {
		t.Fatalf("ExtensionIDs = %v", ExtensionIDs())
	}
	for _, id := range ExtensionIDs() {
		r, ok := ByID(id)
		if !ok || r.ID != id {
			t.Errorf("ByID(%s) = %v, %v", id, r.ID, ok)
		}
	}
	reports := Extensions()
	if len(reports) != 4 {
		t.Fatalf("Extensions() returned %d reports", len(reports))
	}
}
