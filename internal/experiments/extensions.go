package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/logs"
	"repro/internal/ondemand"
	"repro/internal/plot"
)

// Extensions runs the experiments for the paper's named future work:
// database freshness (x1), partitioned product generation (x2),
// made-to-order products (x3), and the incremental-delivery lead metric
// (x4). These have no paper numbers to compare against — the Comparisons
// pit the alternatives against each other.
func Extensions() []Report {
	return []Report{
		DatabaseFreshness(),
		PartitionedProducts(),
		OnDemandPolicies(),
		IncrementalLead(),
	}
}

// extensionByID resolves extension experiment IDs.
func extensionByID(id string) (Report, bool) {
	switch id {
	case "x1":
		return DatabaseFreshness(), true
	case "x2":
		return PartitionedProducts(), true
	case "x3":
		return OnDemandPolicies(), true
	case "x4":
		return IncrementalLead(), true
	default:
		return Report{}, false
	}
}

// ExtensionIDs lists the extension experiment identifiers.
func ExtensionIDs() []string { return []string{"x1", "x2", "x3", "x4"} }

// IncrementalLead quantifies the paper's newspaper analogy: partial
// forecasts are valuable because "the portion of the forecast completed
// by 7am might cover the time period up until noon". For each
// architecture it reports the worst-case lead (how far ahead of real time
// the day-1 salinity data at the server reaches, at its lowest point) and
// the lead at 7am.
func IncrementalLead() Report {
	r1 := dataflow.Run(dataflow.Architecture1, withTelemetry(dataflow.Params{}))
	r2 := dataflow.Run(dataflow.Architecture2, withTelemetry(dataflow.Params{}))
	const series = "1_salt.63"
	pick := func(r dataflow.Result) dataflow.Series {
		for _, s := range r.Series {
			if s.Name == series {
				return s
			}
		}
		panic("experiments: x4: series missing")
	}
	s1, s2 := pick(r1), pick(r2)
	// Two hours into the run the architectures differ most: Architecture 2
	// has already delivered all of day 1, Architecture 1 is still grinding.
	const earlyCheck = 2 * 3600.0
	leadAt := func(s dataflow.Series, t float64) float64 {
		lead := math.Inf(-1)
		for i := range s.Times {
			if s.Times[i] <= t {
				lead = s.Fraction[i]*dataflow.DefaultForecastHorizon - t
			}
		}
		return lead
	}
	curve1 := dataflow.LeadCurve(s1, dataflow.DefaultForecastHorizon)
	curve2 := dataflow.LeadCurve(s2, dataflow.DefaultForecastHorizon)
	return Report{
		ID:     "x4",
		Title:  "Incremental delivery: forecast lead over real time (1_salt.63)",
		XLabel: "time (s)",
		YLabel: "lead (s)",
		Series: []plot.Series{
			{Name: "Architecture 1", X: curve1.Times, Y: curve1.Fraction},
			{Name: "Architecture 2", X: curve2.Times, Y: curve2.Fraction},
		},
		Comparisons: []Comparison{
			{Metric: "Arch1 worst-case lead after first delivery",
				Paper:    dataflow.MinLead(s2, dataflow.DefaultForecastHorizon),
				Measured: dataflow.MinLead(s1, dataflow.DefaultForecastHorizon), Unit: "s",
				Note: "\"paper\" column holds Architecture 2's lead for comparison"},
			{Metric: "Arch1 lead two hours in", Paper: leadAt(s2, earlyCheck), Measured: leadAt(s1, earlyCheck), Unit: "s",
				Note: "as above: Arch2 vs Arch1 when the fishing-boat captain checks before dawn"},
		},
		Notes: []string{
			"the newspaper analogy: partial forecasts cover the near term, so users read them before the run completes",
		},
	}
}

// DatabaseFreshness compares §4.3.2's two database-maintenance options:
// periodic directory crawling (daily Perl scripts in the paper) versus
// update commands embedded in the run scripts. The metric is staleness:
// how long after a run completes does the database learn its walltime?
func DatabaseFreshness() Report {
	const days = 10

	mkConfig := func() factory.Config {
		till := forecast.Tillamook()
		columbia := forecast.NewSpec("forecast-columbia", "columbia", 5760, 28000, 8)
		columbia.StartOffset = 2 * 3600
		return factory.Config{
			Days: days,
			Forecasts: []factory.Assignment{
				{Spec: till, Node: "fnode01"},
				{Spec: columbia, Node: "fnode02"},
			},
		}
	}

	// Live updates: the run script writes the record the instant the run
	// completes — staleness zero by construction; measure it anyway.
	type seen struct {
		completed float64 // actual completion (campaign time)
		learned   float64 // when the database heard about it
	}
	var live []seen
	cfgLive := mkConfig()
	var campLive *factory.Campaign
	cfgLive.OnRunLog = func(r *logs.RunRecord) {
		if r.Status == logs.StatusCompleted {
			live = append(live, seen{completed: r.End, learned: campLive.Engine().Now()})
		}
	}
	var err error
	campLive, err = factory.New(telemetered(cfgLive))
	if err != nil {
		panic(fmt.Sprintf("experiments: x1: %v", err))
	}
	campLive.Run()

	// Periodic crawling at interval T: a run completing at t becomes
	// visible at the first crawl after t.
	crawlStaleness := func(interval float64) float64 {
		camp, err := factory.New(telemetered(mkConfig()))
		if err != nil {
			panic(fmt.Sprintf("experiments: x1: %v", err))
		}
		results := camp.Run()
		var total float64
		n := 0
		for _, r := range results {
			if !r.Finished {
				continue
			}
			firstCrawl := math.Ceil(r.End/interval) * interval
			total += firstCrawl - r.End
			n++
		}
		if n == 0 {
			return math.NaN()
		}
		return total / float64(n)
	}
	dailyCrawl := crawlStaleness(86400)
	hourlyCrawl := crawlStaleness(3600)

	var liveStaleness float64
	for _, s := range live {
		liveStaleness += s.learned - s.completed
	}
	if len(live) > 0 {
		liveStaleness /= float64(len(live))
	}

	return Report{
		ID:     "x1",
		Title:  "Statistics-database freshness: crawling vs run-script updates",
		XLabel: "strategy (1=daily crawl, 2=hourly crawl, 3=live)",
		YLabel: "mean staleness (s)",
		Series: []plot.Series{{
			Name: "staleness",
			X:    []float64{1, 2, 3},
			Y:    []float64{dailyCrawl, hourlyCrawl, liveStaleness},
		}},
		Comparisons: []Comparison{
			{Metric: "daily crawl mean staleness", Paper: 43200, Measured: dailyCrawl, Unit: "s",
				Note: "\"paper\" column: expected value of half the crawl interval"},
			{Metric: "hourly crawl mean staleness", Paper: 1800, Measured: hourlyCrawl, Unit: "s"},
			{Metric: "run-script updates mean staleness", Paper: 0, Measured: liveStaleness, Unit: "s"},
		},
		Notes: []string{
			"§4.3.2: 'periodically crawling directories does not provide the most up-to-date statistics for currently executing forecasts'",
		},
	}
}

// PartitionedProducts measures the §2.2 option of spreading one
// forecast's product generation over several nodes, in both regimes the
// paper discusses: today's load (little benefit, multiplied transfer
// cost) and a grown product load (clear win).
func PartitionedProducts() Report {
	a2 := dataflow.Run(dataflow.Architecture2, withTelemetry(dataflow.Params{}))
	a3 := dataflow.RunPartitioned(withTelemetry(dataflow.Params{}), 4)

	heavy := forecast.ReplicateProducts(forecast.DataflowForecast(), 4)
	heavyOne := dataflow.Run(dataflow.Architecture2, withTelemetry(dataflow.Params{Spec: heavy, Workers: 4}))
	heavyFour := dataflow.RunPartitioned(withTelemetry(dataflow.Params{Spec: heavy, Workers: 4}), 4)

	return Report{
		ID:     "x2",
		Title:  "Partitioned product generation (Architecture 3, k=4 workers)",
		XLabel: "configuration (1=Arch2, 2=Arch3; 3,4 = 4× load)",
		YLabel: "run walltime (s)",
		Series: []plot.Series{{
			Name: "run walltime",
			X:    []float64{1, 2, 3, 4},
			Y:    []float64{a2.RunWalltime, a3.RunWalltime, heavyOne.RunWalltime, heavyFour.RunWalltime},
		}},
		Comparisons: []Comparison{
			{Metric: "today's load: Arch3 vs Arch2 end-to-end", Paper: a2.EndToEnd, Measured: a3.EndToEnd, Unit: "s",
				Note: "\"paper\" column holds Arch2; §2.2 predicts little benefit today"},
			{Metric: "today's load: Arch3 bytes over LAN", Paper: a2.BytesOverLink, Measured: a3.BytesOverLink, Unit: "B",
				Note: "the transfer-overhead multiplication §2.2 warns about"},
			{Metric: "4× product load: partitioned vs single server", Paper: heavyOne.RunWalltime, Measured: heavyFour.RunWalltime, Unit: "s",
				Note: "the future regime where partitioning becomes attractive"},
		},
	}
}

// OnDemandPolicies measures the made-to-order extension (§5 future work):
// a greedy admission policy versus ForeMan-predictive admission control,
// under a request burst against a tightly loaded plant.
func OnDemandPolicies() Report {
	nodes := []core.NodeInfo{
		{Name: "n1", CPUs: 2, Speed: 1},
		{Name: "n2", CPUs: 2, Speed: 1},
	}
	stock := []core.Run{
		{Name: "s1", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s2", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s3", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s4", Work: 80000, Start: 3600, Deadline: 86400},
	}
	assign := map[string]string{"s1": "n1", "s2": "n1", "s3": "n2", "s4": "n2"}
	var requests []ondemand.Request
	for i := 0; i < 8; i++ {
		requests = append(requests, ondemand.Request{
			ID:      fmt.Sprintf("r%d", i),
			Arrival: 18000 + float64(i)*2400,
			Work:    15000,
		})
	}

	run := func(p ondemand.Policy) ondemand.Result {
		res, err := ondemand.Run(ondemand.Config{
			Nodes: nodes, Stock: stock, Assign: assign,
			Requests: requests, Policy: p,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: x3: %v", err))
		}
		return res
	}
	greedy := run(ondemand.GreedyPolicy{})
	aware := run(ondemand.DeadlineAwarePolicy{})

	return Report{
		ID:     "x3",
		Title:  "Made-to-order products: greedy vs predictive admission",
		XLabel: "policy (1=greedy, 2=deadline-aware)",
		YLabel: "count / seconds",
		Series: []plot.Series{
			{Name: "stock runs late", X: []float64{1, 2},
				Y: []float64{float64(len(greedy.StockLate)), float64(len(aware.StockLate))}},
			{Name: "mean request latency", X: []float64{1, 2},
				Y: []float64{greedy.MeanLatency(), aware.MeanLatency()}},
		},
		Comparisons: []Comparison{
			{Metric: "greedy: made-to-stock runs late", Paper: 0, Measured: float64(len(greedy.StockLate)),
				Note: "the failure mode admission control exists to prevent"},
			{Metric: "deadline-aware: made-to-stock runs late", Paper: 0, Measured: float64(len(aware.StockLate))},
			{Metric: "deadline-aware: requests deferred", Paper: 0, Measured: float64(aware.Count(ondemand.Deferred)),
				Note: "deferred work drains after the stock completes"},
			{Metric: "greedy mean request latency", Paper: 0, Measured: greedy.MeanLatency(), Unit: "s"},
			{Metric: "deadline-aware mean request latency", Paper: 0, Measured: aware.MeanLatency(), Unit: "s"},
		},
		Notes: []string{
			"§5: 'we are investigating how to incorporate made-to-order (on-demand) products into the system'",
		},
	}
}
