package dataflow

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/forecast"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/workflow"
)

// RunPartitioned executes "Architecture 3": the simulation at the compute
// node, model outputs rsync'd to k secondary nodes that each generate a
// partition of the data products, and everything mirrored to the public
// server. §2.2 of the paper sets this option aside for the present
// ("little benefit ... due to high data transfer overhead and limited
// node availability") while expecting it to become attractive as product
// loads grow — this implementation lets both regimes be measured.
//
// The partitioner keeps dependency groups together: a product lands in
// the partition of its first dependency so cross-partition gating never
// arises.
func RunPartitioned(p Params, k int) Result {
	p.fillDefaults()
	if err := p.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("dataflow: %v", err))
	}
	if k < 1 {
		k = 1
	}

	eng := sim.NewEngine()
	cl := cluster.New(eng)
	client := cl.AddNode("client", p.ClientCPUs, p.ClientSpeed)
	clientFS := vfs.New(eng.Now)
	serverFS := vfs.New(eng.Now)
	link := netsim.NewLink(eng, "lan", p.Bandwidth)

	secondaries := make([]*cluster.Node, k)
	secondaryFS := make([]*vfs.FS, k)
	for i := 0; i < k; i++ {
		secondaries[i] = cl.AddNode(fmt.Sprintf("worker%02d", i+1), p.ServerCPUs, p.ServerSpeed)
		secondaryFS[i] = vfs.New(eng.Now)
	}

	dir := "/runs/" + p.Spec.Name + "/day1"
	simSpec := p.Spec.Clone()
	simSpec.Products = nil
	run := workflow.Start(eng, workflow.Config{
		Spec:       simSpec,
		Dir:        dir,
		SimNode:    client,
		SimFS:      clientFS,
		Increments: p.Increments,
	})

	// Partition the catalog, keeping each product with its dependencies.
	parts := partitionProducts(p.Spec.Products, k)
	totals := make(map[string]int64, len(p.Spec.Outputs))
	for _, o := range p.Spec.Outputs {
		totals[o.Name] = run.TotalOutputBytes(o.Name)
	}
	engines := make([]*workflow.ProductEngine, 0, k)
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		engines = append(engines, workflow.StartProducts(eng, workflow.ProductConfig{
			Products:    part,
			Dir:         dir,
			Node:        secondaries[i],
			FS:          secondaryFS[i],
			InputTotals: totals,
			Workers:     p.Workers,
			Poll:        p.Poll,
		}))
	}

	// rsync fabric: outputs client → each secondary and client → server;
	// products each secondary → server. All share the one LAN link.
	var lastDelivery float64
	observe := func(t float64, _ string, _ int64) { lastDelivery = t }
	var rsyncs []*netsim.Rsync
	outRoots := []string{run.OutputsDir()}
	for i := range engines {
		rs := netsim.NewRsync(eng, clientFS, secondaryFS[i], link, p.RsyncInterval, outRoots, nil)
		rs.Start()
		rsyncs = append(rsyncs, rs)
	}
	serverOut := netsim.NewRsync(eng, clientFS, serverFS, link, p.RsyncInterval, outRoots, observe)
	serverOut.Start()
	rsyncs = append(rsyncs, serverOut)
	prodRoots := []string{dir + "/products", dir + "/process"}
	for i := range engines {
		rs := netsim.NewRsync(eng, secondaryFS[i], serverFS, link, p.RsyncInterval, prodRoots, observe)
		rs.Start()
		rsyncs = append(rsyncs, rs)
	}

	sched := eng.Scope("dataflow")
	allDone := func() bool {
		if !run.Finished() {
			return false
		}
		for _, e := range engines {
			if !e.Finished() {
				return false
			}
		}
		for _, rs := range rsyncs {
			if !rs.Synced() {
				return false
			}
		}
		return true
	}
	var watchdog func()
	watchdog = func() {
		if allDone() {
			for _, rs := range rsyncs {
				rs.Stop()
			}
			return
		}
		if eng.Now() > watchdogDeadline {
			panic("dataflow: partitioned run did not complete")
		}
		sched.After(p.SampleInterval, watchdog)
	}
	sched.After(p.SampleInterval, watchdog)

	eng.Run()

	productsDone := run.SimFinishedAt()
	for _, e := range engines {
		if e.FinishedAt() > productsDone {
			productsDone = e.FinishedAt()
		}
	}
	totalBytes := float64(clientFS.TreeSize(dir))
	for i := range engines {
		totalBytes += float64(secondaryFS[i].TreeSize(dir + "/products"))
		totalBytes += float64(secondaryFS[i].TreeSize(dir + "/process"))
	}
	return Result{
		Architecture:  Architecture(3),
		EndToEnd:      lastDelivery,
		SimWalltime:   run.SimFinishedAt() - run.Started(),
		RunWalltime:   productsDone - run.Started(),
		BytesOverLink: link.BytesMoved(),
		TotalBytes:    totalBytes,
	}
}

// partitionProducts splits a catalog into k parts, keeping whole
// dependency components together (union-find over dependency edges) and
// balancing components across parts by estimated CPU cost, largest first.
func partitionProducts(products []forecast.ProductSpec, k int) [][]forecast.ProductSpec {
	index := make(map[string]int, len(products))
	for i, p := range products {
		index[p.Name] = i
	}
	parent := make([]int, len(products))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i, p := range products {
		for _, dep := range p.DependsOn {
			if j, ok := index[dep]; ok {
				union(i, j)
			}
		}
	}

	cost := func(p forecast.ProductSpec) float64 {
		cpuPerMB, _ := p.Class.Profile()
		return cpuPerMB * p.Scale
	}
	type component struct {
		members []int
		cost    float64
	}
	byRoot := make(map[int]*component)
	var order []int // roots in first-appearance order, for determinism
	for i, p := range products {
		root := find(i)
		c, ok := byRoot[root]
		if !ok {
			c = &component{}
			byRoot[root] = c
			order = append(order, root)
		}
		c.members = append(c.members, i)
		c.cost += cost(p)
	}
	comps := make([]*component, len(order))
	for i, root := range order {
		comps[i] = byRoot[root]
	}
	sort.SliceStable(comps, func(i, j int) bool { return comps[i].cost > comps[j].cost })

	parts := make([][]forecast.ProductSpec, k)
	load := make([]float64, k)
	for _, c := range comps {
		target := 0
		for i := 1; i < k; i++ {
			if load[i] < load[target] {
				target = i
			}
		}
		for _, m := range c.members {
			parts[target] = append(parts[target], products[m])
		}
		load[target] += c.cost
	}
	return parts
}
