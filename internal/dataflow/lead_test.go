package dataflow

import (
	"math"
	"testing"
)

func TestLeadCurveArithmetic(t *testing.T) {
	s := Series{
		Name:     "1_salt.63",
		Times:    []float64{0, 3600, 7200},
		Fraction: []float64{0, 0.25, 0.5},
	}
	lead := LeadCurve(s, DefaultForecastHorizon)
	want := []float64{0, 0.25*DefaultForecastHorizon - 3600, 0.5*DefaultForecastHorizon - 7200}
	for i := range want {
		if math.Abs(lead.Fraction[i]-want[i]) > 1e-9 {
			t.Fatalf("lead = %v, want %v", lead.Fraction, want)
		}
	}
	if lead.Name != "1_salt.63 lead" {
		t.Fatalf("name = %q", lead.Name)
	}
}

func TestMinLead(t *testing.T) {
	s := Series{
		Times:    []float64{0, 10000, 20000},
		Fraction: []float64{0, 0.05, 1.0},
	}
	// Leads: 0, 0.05·H−10000 = −1360, 1·H−20000.
	got := MinLead(s, DefaultForecastHorizon)
	if math.Abs(got-(-1360)) > 1e-9 {
		t.Fatalf("MinLead = %v, want -1360", got)
	}
	if !math.IsInf(MinLead(Series{}, 1), 1) {
		t.Fatal("empty series should give +Inf")
	}
}

func TestArchitecture2ImprovesWorstCaseLead(t *testing.T) {
	// Architecture 2 delivers model outputs to the server sooner, so the
	// fishing-boat captain's worst-case lead improves.
	r1 := Run(Architecture1, Params{})
	r2 := Run(Architecture2, Params{})
	lead := func(r Result, name string) float64 {
		for _, s := range r.Series {
			if s.Name == name {
				return MinLead(s, DefaultForecastHorizon)
			}
		}
		t.Fatalf("series %s missing", name)
		return 0
	}
	for _, series := range []string{"1_salt.63", "2_salt.63"} {
		l1, l2 := lead(r1, series), lead(r2, series)
		if l2 <= l1 {
			t.Errorf("%s: Arch2 min lead %v not better than Arch1 %v", series, l2, l1)
		}
	}
	// Both architectures keep the model-output lead positive: data for a
	// forecast time arrives before that time passes.
	if l := lead(r2, "1_salt.63"); l <= 0 {
		t.Errorf("Arch2 lead went negative: %v", l)
	}
}
